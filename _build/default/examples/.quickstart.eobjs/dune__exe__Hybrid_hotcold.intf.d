examples/hybrid_hotcold.mli:
