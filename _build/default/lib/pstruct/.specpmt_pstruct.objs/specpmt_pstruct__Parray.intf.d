lib/pstruct/parray.mli: Addr Ctx Specpmt_pmem Specpmt_txn
