(** See the implementation header and {!Workload} for the kernel's
    description. *)

val workload : Wtypes.t
