(** Shared workload types (see {!Workload} for documentation). *)

open Specpmt_pmalloc
open Specpmt_txn

type scale = Quick | Small | Full

type prepared = { work : unit -> unit; checksum : unit -> int }

type t = {
  name : string;
  description : string;
  prepare : scale -> Heap.t -> Ctx.backend -> prepared;
}

(** Combine ints into a running digest. *)
let mix acc v =
  let h = (acc lxor v) * 0x100000001B3 in
  h land max_int

(** Charge algorithmic (non-memory) work to the simulated clock.  The
    STAMP applications spend much of their time computing between
    transactional updates (hashing, distance evaluation, path search...);
    the OCaml computation itself is invisible to the device model, so the
    workloads account for it explicitly.  Without this, crash-consistency
    overheads relative to the raw baseline would be meaninglessly
    inflated. *)
let compute_scale_key = Domain.DLS.new_key (fun () -> ref 1.0)
(** Per-domain multiplier on workload compute charges.  The paper's
    software figures come from a real machine (deep computation relative
    to persistence cost) while its hardware figures come from gem5 with
    simulator inputs; benchmarks can move this knob to explore that
    compute-to-persistence sensitivity (see the ablation bench).
    Domain-local so parallel bench workers can measure different scales
    concurrently without racing. *)

let compute_scale () = !(Domain.DLS.get compute_scale_key)
let set_compute_scale v = Domain.DLS.get compute_scale_key := v

let compute heap ns =
  Specpmt_pmem.Pmem.charge_ns (Heap.pmem heap)
    (ns *. !(Domain.DLS.get compute_scale_key))
