examples/quickstart.ml: Ctx Heap Pmem Pmem_config Printf Specpmt Stats
