(* Exactly-once job processing over a persistent queue.

     dune exec examples/job_queue.exe [-- <scheme>]

   A classic crash-consistency pattern: pop a job, process it, record the
   result — all in ONE transaction, so a crash either leaves the job in
   the queue (it will be re-processed) or persists its result (it never
   re-runs).  The demo crashes the worker dozens of times and audits that
   every job was processed exactly once. *)

open Specpmt
module Pqueue = Specpmt_pstruct.Pqueue
module Phashtbl = Specpmt_pstruct.Phashtbl

let scheme = if Array.length Sys.argv > 1 then Sys.argv.(1) else "SpecSPMT"
let jobs = 400

let () =
  Printf.printf "exactly-once processing of %d jobs under %s\n" jobs scheme;
  let pm =
    Pmem.create ~seed:33
      { Pmem_config.default with crash_word_persist_prob = 0.8 }
  in
  let heap = Heap.create pm in
  let tx = create_scheme heap scheme in
  let queue, results =
    tx.Ctx.run_tx (fun ctx -> (Pqueue.create ctx, Phashtbl.create ctx 128))
  in
  (* enqueue the jobs durably *)
  tx.Ctx.run_tx (fun ctx ->
      for j = 1 to jobs do
        Pqueue.push ctx queue j
      done);
  let rand = Random.State.make [| 2 |] in
  let crashes = ref 0 in
  let raw = Ctx.raw_ctx heap in
  while Pqueue.size raw queue > 0 do
    Pmem.set_fuse pm (Some (50 + Random.State.int rand 800));
    (try
       while true do
         tx.Ctx.run_tx (fun ctx ->
             match Pqueue.pop ctx queue with
             | None -> raise Exit
             | Some j ->
                 (* "process": an idempotent pure function of the job *)
                 let result = (j * j) + 7 in
                 ignore (Phashtbl.add_if_absent ctx results j result))
       done
     with
    | Pmem.Crash ->
        incr crashes;
        Pmem.crash pm;
        tx.Ctx.recover ()
    | Exit -> Pmem.set_fuse pm None)
  done;
  (* audit: every job processed exactly once, with the right result *)
  let ok = ref true in
  for j = 1 to jobs do
    match Phashtbl.find raw results j with
    | Some r when r = (j * j) + 7 -> ()
    | Some r ->
        Printf.printf "job %d: wrong result %d!\n" j r;
        ok := false
    | None ->
        Printf.printf "job %d: LOST!\n" j;
        ok := false
  done;
  if Phashtbl.length raw results <> jobs then begin
    Printf.printf "results table has %d entries, expected %d\n"
      (Phashtbl.length raw results) jobs;
    ok := false
  end;
  if not !ok then exit 1;
  Printf.printf
    "all %d jobs processed exactly once, across %d crashes and recoveries\n"
    jobs !crashes
