lib/hwtxn/nt_log.ml: Addr Bytes Checksum Heap Int64 List Pmem Specpmt_pmalloc Specpmt_pmem Specpmt_txn
