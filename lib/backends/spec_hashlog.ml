(** Hash-table speculative log — the memory-saving alternative the paper
    rejects (Section 4): one (dual-versioned) log slot per datum, located
    by hashing its address.

    Conserves memory (at most two records per cell) but turns the log
    write and flush pattern from sequential to random, which is exactly
    what persistent memory dislikes; the paper measured a 3.2x slowdown
    over the sequential log design.  We keep two versions per bucket so
    that the previous committed value survives an uncommitted overwrite,
    preserving recoverability.

    Bucket layout (one 64-byte line): two versions of
    [addr+1:8][value:8][ts:8][crc:8] — the stored address is biased by one
    so that a zeroed slot is empty. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  tsc : Tsc.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable table : Addr.t;
  mutable buckets : int;
  mutable in_tx : bool;
  mutable touched : Addr.t list; (* bucket lines dirtied by the open tx *)
}

let bucket_bytes = 64
let version_bytes = 32

let slot_crc ~addr ~value ~ts = Checksum.words [ addr + 1; value; ts ]

let bucket_addr t i = t.table + (i * bucket_bytes)

let hash a =
  (* Fibonacci hashing on the cell index *)
  let h = (a lsr 3) * 0x1E3779B97F4A7C15 in
  (h lsr 17) land max_int

let find_bucket t a =
  let n = t.buckets in
  let start = hash a mod n in
  let rec probe i tries =
    if tries > n then invalid_arg "Spec_hashlog: table full";
    let b = bucket_addr t i in
    let a0 = Pmem.load_int t.pm b in
    if a0 = 0 || a0 = a + 1 then b
    else
      let a1 = Pmem.load_int t.pm (b + version_bytes) in
      if a1 = a + 1 then b else probe ((i + 1) mod n) (tries + 1)
  in
  probe start 0

(* Write [value] into the bucket's version that does not hold the newest
   other-timestamp record: re-logging within the same transaction reuses
   the same version; otherwise the older version is sacrificed. *)
let write_version t a value ts =
  let b = find_bucket t a in
  let ts0 = Pmem.load_int t.pm (b + 16) in
  let ts1 = Pmem.load_int t.pm (b + version_bytes + 16) in
  let v_off =
    if Pmem.load_int t.pm b = a + 1 && ts0 = ts then 0
    else if Pmem.load_int t.pm (b + version_bytes) = a + 1 && ts1 = ts then
      version_bytes
    else if ts0 <= ts1 then 0
    else version_bytes
  in
  let base = b + v_off in
  Pmem.store_int t.pm base (a + 1);
  Pmem.store_int t.pm (base + 8) value;
  Pmem.store_int t.pm (base + 16) ts;
  Pmem.store_int t.pm (base + 24) (slot_crc ~addr:a ~value ~ts);
  if not (List.mem b t.touched) then t.touched <- b :: t.touched

let tx_write t a v =
  let old_value = Pmem.load_int t.pm a in
  ignore (Write_set.record t.ws a ~old_value);
  write_version t a v (Tsc.peek t.tsc);
  Pmem.store_int t.pm a v

let committed_ts_addr t = Heap.root_slot t.heap Slots.hashlog_committed_ts

let commit t =
  let ts = Tsc.peek t.tsc in
  ignore (Tsc.next t.tsc);
  (* random-pattern flushes: the lines of every touched bucket *)
  List.iter (fun b -> Pmem.flush_range t.pm b bucket_bytes) t.touched;
  Pmem.sfence t.pm;
  Pmem.store_int t.pm (committed_ts_addr t) ts;
  Pmem.clwb t.pm (committed_ts_addr t);
  Pmem.sfence t.pm;
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  t.touched <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let rollback t =
  Write_set.iter_newest_first t.ws (fun a slot ->
      Pmem.store_int t.pm a slot.Write_set.old_value;
      write_version t a slot.Write_set.old_value (Tsc.peek t.tsc));
  t.frees <- [];
  commit t

let run_tx t f =
  if t.in_tx then invalid_arg "Spec_hashlog: nested transaction";
  t.in_tx <- true;
  (* outcome hooks fire from these dispatch arms, never from
     [commit]/[rollback] — [rollback] itself ends in [commit] *)
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write = (fun a v -> tx_write t a v);
      alloc = (fun n -> Heap.alloc t.heap n);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      Ctx.Hooks.fire hooks false;
      raise e

let recover t =
  Heap.recover t.heap;
  t.table <- Pmem.load_int t.pm (Heap.root_slot t.heap Slots.hashlog_table);
  t.buckets <-
    Pmem.load_int t.pm (Heap.root_slot t.heap Slots.hashlog_capacity);
  let committed = Pmem.load_int t.pm (committed_ts_addr t) in
  (* gather valid versions not newer than the last committed timestamp,
     then apply the freshest per address in timestamp order *)
  let best = Hashtbl.create 256 in
  for i = 0 to t.buckets - 1 do
    let b = bucket_addr t i in
    List.iter
      (fun off ->
        let a1 = Pmem.load_int t.pm (b + off) in
        if a1 > 0 then begin
          let a = a1 - 1 in
          let value = Pmem.load_int t.pm (b + off + 8) in
          let ts = Pmem.load_int t.pm (b + off + 16) in
          let crc = Pmem.load_int t.pm (b + off + 24) in
          if ts <= committed && crc = slot_crc ~addr:a ~value ~ts then
            match Hashtbl.find_opt best a with
            | Some (ts0, _) when ts0 >= ts -> ()
            | _ -> Hashtbl.replace best a (ts, value)
        end)
      [ 0; version_bytes ]
  done;
  Hashtbl.iter
    (fun a (_, v) ->
      Pmem.store_int t.pm a v;
      Pmem.clwb t.pm a)
    best;
  Pmem.sfence t.pm;
  Tsc.restart_above t.tsc committed;
  t.touched <- [];
  t.frees <- [] (* deferred frees of a crashed transaction are dead *);
  Write_set.clear t.ws;
  t.in_tx <- false

let create ?buckets heap =
  let pm = Heap.pmem heap in
  let buckets =
    match buckets with
    | Some b -> b
    | None ->
        (* size the table to a sixteenth of the pool by default *)
        max 256 (Pmem.mem_size pm / (16 * bucket_bytes))
  in
  let table = Heap.alloc_log heap (buckets * bucket_bytes) in
  Pmem.with_unmetered pm (fun () ->
      for i = 0 to buckets - 1 do
        Pmem.store_int pm (table + (i * bucket_bytes)) 0;
        Pmem.store_int pm (table + (i * bucket_bytes) + version_bytes) 0
      done;
      Pmem.store_int pm (Layout.root_slot Slots.hashlog_table) table;
      Pmem.store_int pm (Layout.root_slot Slots.hashlog_capacity) buckets;
      Pmem.store_int pm (Layout.root_slot Slots.hashlog_committed_ts) 0;
      Pmem.flush_range pm (Layout.root_slot Slots.hashlog_table) 24;
      Pmem.sfence pm);
  let t =
    {
      heap;
      pm;
      tsc = Tsc.create ();
      ws = Write_set.create ();
      frees = [];
      table;
      buckets;
      in_tx = false;
      touched = [];
    }
  in
  {
    Ctx.name = "Spec-hashlog";
    run_tx = (fun f -> run_tx t f);
    recover = (fun () -> recover t);
    drain = (fun () -> ());
    log_footprint = (fun () -> t.buckets * bucket_bytes);
    supports_recovery = true;
  }
