type event = { seq : int; phase : Phase.phase; label : string; a : int; b : int }

let nil = { seq = -1; phase = Phase.Other; label = ""; a = 0; b = 0 }

(* One ring per domain.  A child domain inherits the parent's capacity
   (with an empty ring), so enabling tracing before fanning work out to a
   domain pool enables it in every worker; each worker's events stay
   local and are harvested (e.g. into crashmc failures) on the worker
   itself before join. *)
type state = { mutable ring : event array; mutable pos : int }

let key =
  Domain.DLS.new_key
    ~split_from_parent:(fun (parent : state) ->
      let n = Array.length parent.ring in
      { ring = (if n = 0 then [||] else Array.make n nil); pos = 0 })
    (fun () -> { ring = [||]; pos = 0 })

let st () = Domain.DLS.get key

let set_capacity n =
  let s = st () in
  s.ring <- (if n <= 0 then [||] else Array.make n nil);
  s.pos <- 0

let enabled () = Array.length (st ()).ring > 0
let clear () = set_capacity (Array.length (st ()).ring)

let emit ?(a = 0) ?(b = 0) label =
  let s = st () in
  let r = s.ring in
  let n = Array.length r in
  if n > 0 then begin
    r.(s.pos mod n) <- { seq = s.pos; phase = Phase.current (); label; a; b };
    s.pos <- s.pos + 1
  end

let recent () =
  let s = st () in
  let r = s.ring in
  let n = Array.length r in
  let count = min n s.pos in
  List.init count (fun i -> r.((s.pos - count + i) mod n))

let pp_event ppf e =
  Fmt.pf ppf "#%d [%s] %s a=%d b=%d" e.seq (Phase.name e.phase) e.label e.a
    e.b

let dump ppf () =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (recent ())

let to_json () =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("seq", Json.Int e.seq);
             ("phase", Json.Str (Phase.name e.phase));
             ("label", Json.Str e.label);
             ("a", Json.Int e.a);
             ("b", Json.Int e.b);
           ])
       (recent ()))
