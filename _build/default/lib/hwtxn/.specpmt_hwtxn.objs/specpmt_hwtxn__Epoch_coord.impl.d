lib/hwtxn/epoch_coord.ml: Epoch_protocol List
