(** Construction of the simulated-hardware transaction schemes by name. *)

open Specpmt_pmalloc
open Specpmt_txn

type kind =
  | Ede  (** hardware undo logging without ordering fences (baseline) *)
  | Hoop  (** out-of-place updates + background GC *)
  | Spec_hw_dp  (** hardware SpecPMT with forced data persistence *)
  | Spec_hw  (** hardware SpecPMT (hybrid logging + epochs) *)
  | Nolog  (** ideal, not crash consistent *)

val all : kind list
val name : kind -> string
val of_name : string -> kind option
val create : Heap.t -> kind -> Ctx.backend
