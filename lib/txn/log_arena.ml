open Specpmt_pmem
open Specpmt_pmalloc

(* Record layout:
     meta:   [size:8][timestamp:8][checksum:8]
     entry:  [target:8][value:8]          (target >= 0)
     marker: [-1:8][next_block_addr:8]    (record continues there)
   Block layout: [next:8][payload ...].
   [size] counts entry+marker bytes.  Torn or garbage metadata past the
   valid prefix is caught by the checksum.

   Shared geometry rule (append and scan agree on it): if fewer than
   [min_space] bytes remain in a block, the log continues in the next
   block. *)

let meta_bytes = 24
let entry_bytes = 16
let marker_target = -1
let min_space = meta_bytes + entry_bytes + 8 (* meta + one entry + slack *)

(* A page entry embeds a whole page image: [page_tag][page base address]
   followed by 4096 raw bytes, never spanning blocks.  This is the format
   the hardware bulk-copy engine writes on a cold-to-hot transition
   (Section 5.1) — 4 KiB of payload for 4 KiB of data. *)
let page_tag = -2
let page_entry_bytes = entry_bytes + Addr.page_size

(* A size word of [skip_tag] tells the scanner that the log continues in
   the block's successor even though room remained — written by
   [seal_block] when an epoch boundary forces a fresh block. *)
let skip_tag = -1

type entry_pos = int

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  head_slot : int;
  block_bytes : int;
  mutable blocks : Addr.t list; (* newest first *)
  mutable n_blocks : int; (* cached [List.length blocks] — [footprint]
                             runs on every commit *)
  mutable head_block : Addr.t; (* cached chain head (oldest block) *)
  mutable cur_block : Addr.t;
  mutable pos : Addr.t; (* next append address *)
  (* open-record state *)
  mutable rec_meta : Addr.t; (* -1 when no record is open *)
  mutable rec_block : Addr.t; (* block containing rec_meta *)
  mutable rec_size : int; (* entry+marker bytes appended so far *)
  mutable rec_entries : int;
  (* [start,stop) spans of the open record, oldest first, as parallel
     flat arrays — the commit path appends and iterates these without
     allocating *)
  mutable seg_a : Addr.t array;
  mutable seg_b : Addr.t array;
  mutable n_segs : int;
  mutable seg_start : Addr.t;
  (* block-header next pointers written since the last commit; they must
     persist with the next committed record for the chain to be
     followable after a crash.  Oldest first. *)
  mutable pend_a : Addr.t array;
  mutable pend_b : Addr.t array;
  mutable n_pend : int;
  (* group commit: records committed with a deliberately poisoned
     checksum, oldest first — metadata address and true checksum per
     record, plus every record's spans concatenated in commit order.
     Invisible to every scan until [seal_tentative] patches the
     checksums and persists the whole batch under one flush run and a
     single fence. *)
  mutable tent_meta : Addr.t array;
  mutable tent_crc : int array;
  mutable n_tent : int;
  mutable tseg_a : Addr.t array;
  mutable tseg_b : Addr.t array;
  mutable n_tseg : int;
  (* volatile accounting for the adaptive reclamation scheduler: entry
     populations per block and which blocks start on a record boundary
     (only those are legal prefix-evacuation splice points — a scan must
     never land mid-record).  Rebuilt by [attach], maintained by appends
     and reclamation. *)
  mutable total_entries : int;
  entries_per_block : (Addr.t, int) Hashtbl.t;
  clean_starts : (Addr.t, unit) Hashtbl.t;
}

type compact_stats = {
  records_scanned : int;
  entries_scanned : int;
  entries_live : int;
  blocks_freed : int;
  blocks_allocated : int;
}

let pm t = t.pm
let block_end t b = b + t.block_bytes
let payload b = b + 8
let has_open_record t = t.rec_meta >= 0
let entry_words t = t.rec_entries
let footprint t = t.n_blocks * t.block_bytes
let block_count t = t.n_blocks

(* flat span buffers: amortized O(1) push, reset by zeroing the count;
   capacity never shrinks, so a steady-state commit path stops allocating
   after warm-up *)
let grown arr n =
  if n < Array.length arr then arr
  else begin
    let bigger = Array.make (2 * Array.length arr) 0 in
    Array.blit arr 0 bigger 0 n;
    bigger
  end

let push_seg t a b =
  t.seg_a <- grown t.seg_a t.n_segs;
  t.seg_b <- grown t.seg_b t.n_segs;
  t.seg_a.(t.n_segs) <- a;
  t.seg_b.(t.n_segs) <- b;
  t.n_segs <- t.n_segs + 1

let push_pend t a b =
  t.pend_a <- grown t.pend_a t.n_pend;
  t.pend_b <- grown t.pend_b t.n_pend;
  t.pend_a.(t.n_pend) <- a;
  t.pend_b.(t.n_pend) <- b;
  t.n_pend <- t.n_pend + 1

let push_tseg t a b =
  t.tseg_a <- grown t.tseg_a t.n_tseg;
  t.tseg_b <- grown t.tseg_b t.n_tseg;
  t.tseg_a.(t.n_tseg) <- a;
  t.tseg_b.(t.n_tseg) <- b;
  t.n_tseg <- t.n_tseg + 1

let push_tent t meta crc =
  t.tent_meta <- grown t.tent_meta t.n_tent;
  t.tent_crc <- grown t.tent_crc t.n_tent;
  t.tent_meta.(t.n_tent) <- meta;
  t.tent_crc.(t.n_tent) <- crc;
  t.n_tent <- t.n_tent + 1

let flush_pending t =
  for i = 0 to t.n_pend - 1 do
    Pmem.flush_range t.pm t.pend_a.(i) (t.pend_b.(i) - t.pend_a.(i))
  done;
  t.n_pend <- 0

let alloc_block t =
  let b = Heap.alloc_log t.heap t.block_bytes in
  (* zero the next pointer and the first size word so that a scan arriving
     here stops cleanly even before anything is committed *)
  Pmem.store_int t.pm b 0;
  Pmem.store_int t.pm (payload b) 0;
  b

let mk heap ~head_slot ~block_bytes b =
  let clean_starts = Hashtbl.create 16 in
  Hashtbl.replace clean_starts b ();
  {
    heap;
    pm = Heap.pmem heap;
    head_slot;
    block_bytes;
    blocks = [ b ];
    n_blocks = 1;
    head_block = b;
    cur_block = b;
    pos = payload b;
    rec_meta = -1;
    rec_block = -1;
    rec_size = 0;
    rec_entries = 0;
    seg_a = Array.make 8 0;
    seg_b = Array.make 8 0;
    n_segs = 0;
    seg_start = -1;
    pend_a = Array.make 8 0;
    pend_b = Array.make 8 0;
    n_pend = 0;
    tent_meta = Array.make 8 0;
    tent_crc = Array.make 8 0;
    n_tent = 0;
    tseg_a = Array.make 8 0;
    tseg_b = Array.make 8 0;
    n_tseg = 0;
    total_entries = 0;
    entries_per_block = Hashtbl.create 16;
    clean_starts;
  }

let total_entries t = t.total_entries

let entries_in_block t b =
  Option.value ~default:0 (Hashtbl.find_opt t.entries_per_block b)

let is_clean_start t b = Hashtbl.mem t.clean_starts b
let chain t = List.rev t.blocks

let count_entries t b n =
  t.total_entries <- t.total_entries + n;
  Hashtbl.replace t.entries_per_block b (entries_in_block t b + n)

let publish_head t b =
  let slot = Heap.root_slot t.heap t.head_slot in
  Pmem.store_int t.pm slot b;
  Pmem.clwb t.pm slot;
  Pmem.sfence t.pm

let create heap ~head_slot ~block_bytes =
  assert (block_bytes >= 256 && block_bytes mod 8 = 0);
  let pm = Heap.pmem heap in
  let b = Heap.alloc_log heap block_bytes in
  Pmem.store_int pm b 0;
  Pmem.store_int pm (payload b) 0;
  Pmem.flush_range pm b 16;
  let t = mk heap ~head_slot ~block_bytes b in
  publish_head t b;
  t

(* Chain a fresh block onto the open end of the log.  If a record is open,
   a marker entry redirects the scanner; either way the predecessor's next
   pointer is set, and its cell is queued to persist with the next commit. *)
let chain_block t =
  let nb = alloc_block t in
  (* a block chained between records starts on a record boundary and is a
     legal prefix-evacuation splice point; one chained mid-record is not *)
  if not (has_open_record t) then Hashtbl.replace t.clean_starts nb ();
  if has_open_record t then begin
    Pmem.store_int t.pm t.pos marker_target;
    Pmem.store_int t.pm (t.pos + 8) nb;
    t.rec_size <- t.rec_size + entry_bytes;
    push_seg t t.seg_start (t.pos + entry_bytes);
    t.seg_start <- payload nb
  end;
  Pmem.store_int t.pm t.cur_block nb;
  push_pend t t.cur_block (t.cur_block + 8);
  t.blocks <- nb :: t.blocks;
  t.n_blocks <- t.n_blocks + 1;
  t.cur_block <- nb;
  t.pos <- payload nb

let ensure_room t n =
  if t.pos + n + entry_bytes + 8 > block_end t t.cur_block then chain_block t

let begin_record t =
  assert (not (has_open_record t));
  if block_end t t.cur_block - t.pos < min_space then chain_block t;
  t.rec_meta <- t.pos;
  t.rec_block <- t.cur_block;
  t.rec_size <- 0;
  t.rec_entries <- 0;
  t.n_segs <- 0;
  t.seg_start <- t.pos;
  t.pos <- t.pos + meta_bytes

let add_entry t ~target ~value =
  assert (has_open_record t && target >= 0);
  ensure_room t entry_bytes;
  let p = t.pos in
  Pmem.store_int t.pm p target;
  Pmem.store_int t.pm (p + 8) value;
  t.pos <- p + entry_bytes;
  t.rec_size <- t.rec_size + entry_bytes;
  t.rec_entries <- t.rec_entries + 1;
  count_entries t t.cur_block 1;
  p + 8

let set_entry_value t pos v =
  assert (has_open_record t);
  Pmem.store_int t.pm pos v

(* Drop an open record that received no entries: a zero-size record is
   indistinguishable from the end-of-log sentinel, so empty transactions
   must not leave one behind.  Only legal while the record is empty —
   nothing has been chained past its metadata. *)
let abandon_record t =
  assert (has_open_record t && t.rec_size = 0);
  t.pos <- t.rec_meta;
  Pmem.store_int t.pm t.pos 0;
  t.rec_meta <- -1;
  t.rec_block <- -1;
  t.rec_entries <- 0;
  t.n_segs <- 0;
  t.seg_start <- -1

(* Walk the entry stream of a record, following markers.  [block] is the
   block containing [meta].  Calls [f ~block target value] for every entry
   and marker ([block] is the block holding that entry); returns
   [Some (next_pos, next_block)] one past the stream, or [None] if the
   stream is malformed (torn size or dangling marker). *)
let walk_entries pm ~block_bytes ~block ~meta ~size f =
  let pos = ref (meta + meta_bytes) in
  let cur_block = ref block in
  let consumed = ref 0 in
  let ok = ref true in
  let mem = Pmem.mem_size pm in
  while !ok && !consumed < size do
    if !pos + entry_bytes > !cur_block + block_bytes then ok := false
    else begin
      let target = Pmem.load_int pm !pos in
      let value = Pmem.load_int pm (!pos + 8) in
      if target = marker_target then
        if value <= 0 || value + block_bytes > mem then ok := false
        else begin
          f ~block:!cur_block target value;
          consumed := !consumed + entry_bytes;
          cur_block := value;
          pos := payload value
        end
      else if target = page_tag then
        if
          value < 0
          || value + Addr.page_size > mem
          || Addr.page_of value <> value
          || !pos + page_entry_bytes > !cur_block + block_bytes
        then ok := false
        else begin
          f ~block:!cur_block target value;
          for w = 0 to (Addr.page_size / 8) - 1 do
            f ~block:!cur_block
              (value + (w * 8))
              (Pmem.load_int pm (!pos + entry_bytes + (w * 8)))
          done;
          consumed := !consumed + page_entry_bytes;
          pos := !pos + page_entry_bytes
        end
      else if target < 0 then ok := false
      else begin
        f ~block:!cur_block target value;
        consumed := !consumed + entry_bytes;
        pos := !pos + entry_bytes
      end
    end
  done;
  if !ok then Some (!pos, !cur_block) else None

let record_checksum pm ~block_bytes ~block ~meta ~size ~ts =
  (* incremental fold over the stream [size; ts; tgt0; v0; ...] — the
     commit hot path builds no list and no byte buffer ([Checksum.words]
     remains the differential-test oracle for this fold) *)
  let crc = ref (Checksum.crc32c_word (Checksum.crc32c_word 0 size) ts) in
  match
    walk_entries pm ~block_bytes ~block ~meta ~size (fun ~block:_ tgt v ->
        crc := Checksum.crc32c_word (Checksum.crc32c_word !crc tgt) v)
  with
  | None -> None
  | Some next -> Some (!crc, next)

let commit_record ?(fence = true) ?(flush = true) ?(tentative = false) t
    ~timestamp =
  assert (has_open_record t);
  (* a valid record appended past pending tentative ones would sit behind
     a checksum gap and be unreachable by the valid-prefix scan — the
     open batch must be sealed before any individually-persisted commit *)
  assert (tentative || t.n_tent = 0);
  let meta = t.rec_meta in
  (* sentinel for the record that will follow *)
  Pmem.store_int t.pm t.pos 0;
  push_seg t t.seg_start (t.pos + 8);
  (match
     record_checksum t.pm ~block_bytes:t.block_bytes ~block:t.rec_block
       ~meta ~size:t.rec_size ~ts:timestamp
   with
  | None -> assert false
  | Some (crc, _) ->
      Pmem.store_int t.pm meta t.rec_size;
      Pmem.store_int t.pm (meta + 8) timestamp;
      if tentative then begin
        (* group commit: the poisoned checksum keeps the record invisible
           to every scan — whatever subset of its lines a crash persists,
           the prefix walk stops here.  [seal_tentative] writes the true
           checksum and persists the whole batch under one fence. *)
        Pmem.store_int t.pm (meta + 16) (crc lxor 1);
        push_tent t meta crc;
        for i = 0 to t.n_segs - 1 do
          push_tseg t t.seg_a.(i) t.seg_b.(i)
        done
      end
      else Pmem.store_int t.pm (meta + 16) crc);
  (* one flush run over the record's spans, then a single fence: the
     speculative-logging commit of Figure 2 (right).  Tentative records
     defer both to the seal.  Pending chain pointers go first, then the
     record spans in append order. *)
  if flush && not tentative then begin
    flush_pending t;
    for i = 0 to t.n_segs - 1 do
      Pmem.flush_range t.pm t.seg_a.(i) (t.seg_b.(i) - t.seg_a.(i))
    done;
    if fence then Pmem.sfence t.pm
  end;
  Specpmt_obs.Trace.emit "arena.commit" ~a:timestamp ~b:t.rec_entries;
  t.rec_meta <- -1;
  t.rec_block <- -1;
  t.rec_size <- 0;
  t.rec_entries <- 0;
  t.n_segs <- 0;
  t.seg_start <- -1

let tentative_records t = t.n_tent

(* Seal a group-commit batch: patch the true checksum into every
   tentative record (plain stores, oldest first), then persist all of
   them — every record span plus the chain pointers written since the
   last persisted commit — with one flush run and a single fence.  The
   whole batch amortizes the one ordering point SpecPMT has left, so K
   batched transactions cost ~1/K fences each.  At a crash inside the
   seal the records become durable in append order: the valid-prefix
   scan stops at the first unpatched (still poisoned) checksum. *)
let seal_tentative t =
  assert (not (has_open_record t));
  if t.n_tent = 0 then 0
  else begin
    for i = 0 to t.n_tent - 1 do
      Pmem.store_int t.pm (t.tent_meta.(i) + 16) t.tent_crc.(i)
    done;
    flush_pending t;
    for i = 0 to t.n_tseg - 1 do
      Pmem.flush_range t.pm t.tseg_a.(i) (t.tseg_b.(i) - t.tseg_a.(i))
    done;
    Pmem.sfence t.pm;
    let n = t.n_tent in
    t.n_tent <- 0;
    t.n_tseg <- 0;
    Specpmt_obs.Trace.emit "arena.seal" ~a:n;
    n
  end

(* Shared valid-prefix walk, one pass per record: the checksum words and
   the entry list are accumulated by the same [walk_entries] traversal, so
   every log line is loaded once (the scan is the sequential stream the
   device's read fast path models).  Calls
   [f ~ts ~meta ~meta_block entries] per valid record, oldest first, where
   [entries] carries each entry's target, value and holding block; returns
   (max_ts, end_pos, end_block). *)
let scan_records pm ~block_bytes ~head ~f =
  let mem = Pmem.mem_size pm in
  let max_ts = ref 0 in
  let continue = ref true in
  let cur_block = ref head in
  let pos = ref (payload head) in
  while !continue do
    if !cur_block + block_bytes - !pos < min_space then begin
      (* geometry rule: the log continued in the next block, if any *)
      let nb = Pmem.load_int pm !cur_block in
      if nb <= 0 || nb + block_bytes > mem then continue := false
      else begin
        cur_block := nb;
        pos := payload nb
      end
    end
    else begin
      let size = Pmem.load_int pm !pos in
      if size = skip_tag then begin
        (* sealed block: continue in the successor *)
        let nb = Pmem.load_int pm !cur_block in
        if nb <= 0 || nb + block_bytes > mem then continue := false
        else begin
          cur_block := nb;
          pos := payload nb
        end
      end
      else if size < entry_bytes || size mod entry_bytes <> 0 || size > mem
      then continue := false
      else begin
        let ts = Pmem.load_int pm (!pos + 8) in
        let crc = Pmem.load_int pm (!pos + 16) in
        let fold = ref (Checksum.crc32c_word (Checksum.crc32c_word 0 size) ts) in
        let entries = ref [] in
        match
          walk_entries pm ~block_bytes ~block:!cur_block ~meta:!pos ~size
            (fun ~block tgt v ->
              fold := Checksum.crc32c_word (Checksum.crc32c_word !fold tgt) v;
              if tgt >= 0 then entries := (tgt, v, block) :: !entries)
        with
        | Some (next_pos, next_block) when !fold = crc && ts > 0 ->
            f ~ts ~meta:!pos ~meta_block:!cur_block
              (Array.of_list (List.rev !entries));
            if ts > !max_ts then max_ts := ts;
            pos := next_pos;
            cur_block := next_block
        | Some _ | None -> continue := false
      end
    end
  done;
  (!max_ts, !pos, !cur_block)

(* Compatibility wrapper: per-record callback without entry blocks. *)
let scan_prefix pm ~block_bytes ~head ~f =
  scan_records pm ~block_bytes ~head
    ~f:(fun ~ts ~meta:_ ~meta_block:_ entries ->
      f ~ts (Array.map (fun (tgt, v, _) -> (tgt, v)) entries))

let recover_scan pm ~head_slot ~block_bytes ~f =
  let slot = Layout.root_slot head_slot in
  let head = Pmem.load_int pm slot in
  if head <= 0 then 0
  else
    let max_ts, _, _ = scan_prefix pm ~block_bytes ~head ~f in
    max_ts

(* Coalescing scan: one walk over the valid prefix folds every entry into
   a last-writer-wins index instead of materialising the records.  Within
   one log, scan order is timestamp order, so a plain [>=] replacement
   resolves both intra-record duplicates and cross-record staleness; when
   several logs share a timestamp counter the same rule merges them by
   global timestamp (timestamps are globally unique across threads, and a
   compacted log keeps one entry per datum per timestamp). *)
let recover_collect pm ~head_slot ~block_bytes ~index =
  let slot = Layout.root_slot head_slot in
  let head = Pmem.load_int pm slot in
  if head <= 0 then (0, 0, 0)
  else begin
    let records = ref 0 and scanned = ref 0 in
    let max_ts, _, _ =
      scan_records pm ~block_bytes ~head
        ~f:(fun ~ts ~meta:_ ~meta_block:_ entries ->
          incr records;
          scanned := !scanned + Array.length entries;
          Array.iter
            (fun (tgt, v, block) ->
              match Hashtbl.find_opt index tgt with
              | Some (_, ts', _) when ts' > ts -> ()
              | _ -> Hashtbl.replace index tgt (v, ts, block))
            entries)
    in
    (max_ts, !records, !scanned)
  end

let attach heap ~head_slot ~block_bytes =
  let pm = Heap.pmem heap in
  let slot = Layout.root_slot head_slot in
  let head = Pmem.load_int pm slot in
  if head <= 0 then create heap ~head_slot ~block_bytes
  else begin
    (* one scan both finds the append point and rebuilds the volatile
       reclamation accounting: entry populations per block and which
       blocks start on a record boundary *)
    let per_block : (Addr.t, int) Hashtbl.t = Hashtbl.create 16 in
    let clean : (Addr.t, unit) Hashtbl.t = Hashtbl.create 16 in
    let entries_total = ref 0 in
    let _, pos, cur_block =
      scan_records pm ~block_bytes ~head
        ~f:(fun ~ts:_ ~meta ~meta_block entries ->
          if meta = payload meta_block then Hashtbl.replace clean meta_block ();
          entries_total := !entries_total + Array.length entries;
          Array.iter
            (fun (_, _, b) ->
              Hashtbl.replace per_block b
                (Option.value ~default:0 (Hashtbl.find_opt per_block b) + 1))
            entries)
    in
    (* rebuild the block list by walking the chain; a hashed visited set
       keeps the cycle check O(1) per block on long chains *)
    let blocks = ref [] in
    let visited : (Addr.t, unit) Hashtbl.t = Hashtbl.create 64 in
    let b = ref head in
    let mem = Pmem.mem_size pm in
    let looping = ref true in
    while !looping do
      blocks := !b :: !blocks;
      Hashtbl.replace visited !b ();
      let nb = Pmem.load_int pm !b in
      if nb <= 0 || nb + block_bytes > mem || Hashtbl.mem visited nb then
        looping := false
      else b := nb
    done;
    let t = mk heap ~head_slot ~block_bytes head in
    t.blocks <- !blocks;
    t.n_blocks <- List.length !blocks;
    t.cur_block <- cur_block;
    t.pos <- pos;
    Hashtbl.iter (Hashtbl.replace t.entries_per_block) per_block;
    Hashtbl.iter (fun b () -> Hashtbl.replace t.clean_starts b ()) clean;
    t.total_entries <- !entries_total;
    (* Make sure torn garbage right at the append point cannot be mistaken
       for a record before the next commit.  The sentinel must itself be
       persisted: a crash before the next commit would otherwise drop the
       volatile zero while leaving whatever the media held at [pos] — and
       if post-attach appends re-populate the torn record's entry words
       (a re-executed transaction writes the same entries at the same
       offsets), a second crash can leak them and complete a stale record
       whose checksum validates. *)
    Pmem.store_int pm pos 0;
    Pmem.clwb pm pos;
    Pmem.sfence pm;
    Specpmt_obs.Trace.emit "arena.attach" ~a:head ~b:pos;
    t
  end

(* Append a standalone committed record embedding the current image of
   one page — the bulk-copy engine's cold-to-hot page adoption.  The whole
   record (metadata + page entry) is contiguous within one block; if the
   current block lacks room, a skip marker redirects the scanner to a
   fresh block.  Fence-free by default: the flushes are persistent on
   write-pending-queue acceptance and the engine orders them before the
   page is marked hot. *)
let append_page_record ?(fence = false) t ~timestamp ~page_base =
  assert (not (has_open_record t));
  assert (t.n_tent = 0);
  assert (Addr.page_of page_base = page_base);
  let need = meta_bytes + page_entry_bytes + 8 in
  if t.block_bytes < need + 8 then
    Fmt.invalid_arg "Log_arena: block size %d too small for page records"
      t.block_bytes;
  if t.pos + need > block_end t t.cur_block then begin
    Pmem.store_int t.pm t.pos skip_tag;
    push_pend t t.pos (t.pos + 8);
    chain_block t
  end;
  let meta = t.pos in
  let size = page_entry_bytes in
  Pmem.store_int t.pm (meta + meta_bytes) page_tag;
  Pmem.store_int t.pm (meta + meta_bytes + 8) page_base;
  let content = Pmem.load_bytes t.pm page_base Addr.page_size in
  Pmem.store_bytes t.pm (meta + meta_bytes + entry_bytes) content;
  t.pos <- meta + meta_bytes + size;
  Pmem.store_int t.pm t.pos 0;
  (* folded in stream order [size; ts; tag; base; a0; v0; ...] — the
     same word sequence [record_checksum] sees when scanning *)
  let crc =
    ref
      (Checksum.crc32c_word
         (Checksum.crc32c_word
            (Checksum.crc32c_word (Checksum.crc32c_word 0 size) timestamp)
            page_tag)
         page_base)
  in
  for w = 0 to (Addr.page_size / 8) - 1 do
    crc :=
      Checksum.crc32c_word
        (Checksum.crc32c_word !crc (page_base + (w * 8)))
        (Int64.to_int (Bytes.get_int64_le content (w * 8)))
  done;
  Pmem.store_int t.pm meta size;
  Pmem.store_int t.pm (meta + 8) timestamp;
  Pmem.store_int t.pm (meta + 16) !crc;
  Pmem.flush_range t.pm meta (t.pos + 8 - meta);
  flush_pending t;
  if fence then Pmem.sfence t.pm;
  (* the page image scans as one word entry per page word *)
  count_entries t t.cur_block (Addr.page_size / 8)

let current_block t = t.cur_block

(* Force the next record to start in a fresh block, so that a chain prefix
   ending just before it can be dropped wholesale (epoch reclamation).
   The skip marker and the successor pointer persist with the next
   committed record's flush run. *)
let seal_block t =
  assert (not (has_open_record t));
  assert (t.n_tent = 0);
  Pmem.store_int t.pm t.pos skip_tag;
  push_pend t t.pos (t.pos + 8);
  chain_block t

let drop_prefix t ~keep_from =
  assert (not (has_open_record t));
  assert (t.n_tent = 0);
  (* blocks is newest-first; everything after [keep_from] is the prefix.
     One pass both finds the boundary and splits, instead of a [List.mem]
     probe followed by a second walk. *)
  let rec split acc = function
    | [] -> invalid_arg "Log_arena.drop_prefix: unknown boundary block"
    | b :: rest when b = keep_from -> (List.rev (b :: acc), rest)
    | b :: rest -> split (b :: acc) rest
  in
  let kept, dropped = split [] t.blocks in
  if dropped = [] then 0
  else begin
    (* atomic head switch, then the prefix blocks are dead *)
    publish_head t keep_from;
    List.iter
      (fun b ->
        t.total_entries <- t.total_entries - entries_in_block t b;
        Hashtbl.remove t.entries_per_block b;
        Hashtbl.remove t.clean_starts b;
        Heap.free t.heap b)
      dropped;
    t.blocks <- kept;
    t.n_blocks <- List.length kept;
    t.head_block <- keep_from;
    List.length dropped
  end

(* Durably empty the log: persist an end-of-log sentinel over the head
   block's payload, sever its successor pointer, and only then recycle
   the other blocks.  The two invalidation stores must NOT be combined
   into one flush: a crash can persist any per-word subset, and the
   subset {next = 0, first size word intact} leaves a scannable record
   PREFIX behind a severed chain — replaying that prefix rolls cells
   already covered by fresher (durable, possibly truncated) records back
   to stale values.  Both the full log and the empty log replay to the
   current durable data (the caller persisted everything the log covers
   before calling), so the sentinel is made the single 8-byte commit
   point of the transition: persist it alone first, then sever the
   chain — a scan that still sees the old successor pointer stops at the
   sentinel before ever following it. *)
let reset t =
  assert (not (has_open_record t));
  assert (t.n_tent = 0);
  let head = t.head_block in
  Pmem.store_int t.pm (payload head) 0;
  Pmem.clwb t.pm (payload head);
  Pmem.sfence t.pm;
  (* the chain pointer must be durably dead before appends refill the
     head block: a scan past a refilled block would otherwise follow it
     into recycled successors whose old records still checksum *)
  Pmem.store_int t.pm head 0;
  Pmem.clwb t.pm head;
  Pmem.sfence t.pm;
  List.iter (fun b -> if b <> head then Heap.free t.heap b) t.blocks;
  t.blocks <- [ head ];
  t.n_blocks <- 1;
  t.cur_block <- head;
  t.pos <- payload head;
  t.n_pend <- 0;
  t.total_entries <- 0;
  Hashtbl.reset t.entries_per_block;
  Hashtbl.reset t.clean_starts;
  Hashtbl.replace t.clean_starts head ();
  Specpmt_obs.Trace.emit "arena.reset" ~a:head

let compact t =
  assert (not (has_open_record t));
  assert (t.n_tent = 0);
  (* freshest surviving (value, commit timestamp) per datum *)
  let freshest : (Addr.t, int * int) Hashtbl.t = Hashtbl.create 256 in
  let records = ref 0 and scanned = ref 0 in
  let _, _, _ =
    scan_prefix t.pm ~block_bytes:t.block_bytes ~head:t.head_block
      ~f:(fun ~ts entries ->
        incr records;
        Array.iter
          (fun (tgt, v) ->
            incr scanned;
            Hashtbl.replace freshest tgt (v, ts))
          entries)
  in
  let live = Hashtbl.length freshest in
  let old_blocks = t.blocks in
  (* Build the replacement chain.  Each entry must keep the timestamp of
     the record it came from: collapsing everything into one record
     stamped with the newest contributing timestamp would reorder entries
     against other logs replayed in global timestamp order (Section
     5.2.2) — thread A's stale x@ts1, restamped ts3, would replay after
     thread B's fresher x@ts2.  So the compacted output is one record per
     contributing timestamp, committed in ascending timestamp order (the
     scan order of the new chain then agrees with the timestamp order,
     as required of any single log). *)
  let by_ts : (int, (Addr.t * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun tgt (v, ts) ->
      match Hashtbl.find_opt by_ts ts with
      | Some l -> l := (tgt, v) :: !l
      | None -> Hashtbl.add by_ts ts (ref [ (tgt, v) ]))
    freshest;
  let timestamps =
    List.sort compare (Hashtbl.fold (fun ts _ acc -> ts :: acc) by_ts [])
  in
  let b0 = Heap.alloc_log t.heap t.block_bytes in
  Pmem.store_int t.pm b0 0;
  Pmem.store_int t.pm (payload b0) 0;
  let t2 = mk t.heap ~head_slot:t.head_slot ~block_bytes:t.block_bytes b0 in
  if live > 0 then begin
    List.iter
      (fun ts ->
        begin_record t2;
        List.iter
          (fun (tgt, v) -> ignore (add_entry t2 ~target:tgt ~value:v))
          !(Hashtbl.find by_ts ts);
        (* flushes are persistent on WPQ acceptance; one fence after the
           last record covers the whole new chain *)
        commit_record t2 ~timestamp:ts ~fence:false)
      timestamps;
    Pmem.sfence t.pm (* fence #1 *)
  end
  else begin
    Pmem.flush_range t.pm b0 16;
    Pmem.sfence t.pm
  end;
  (* atomic switch of the head pointer: fence #2.  A crash on either side
     of it leaves a fully valid chain (old or new). *)
  publish_head t2 b0;
  (* only now is the old chain dead; recycle it *)
  List.iter (fun b -> Heap.free t.heap b) old_blocks;
  t.blocks <- t2.blocks;
  t.n_blocks <- t2.n_blocks;
  t.head_block <- t2.head_block;
  t.cur_block <- t2.cur_block;
  t.pos <- t2.pos;
  t.pend_a <- t2.pend_a;
  t.pend_b <- t2.pend_b;
  t.n_pend <- t2.n_pend;
  t.total_entries <- t2.total_entries;
  Hashtbl.reset t.entries_per_block;
  Hashtbl.iter (Hashtbl.replace t.entries_per_block) t2.entries_per_block;
  Hashtbl.reset t.clean_starts;
  Hashtbl.iter (fun b () -> Hashtbl.replace t.clean_starts b ())
    t2.clean_starts;
  let stats =
    {
      records_scanned = !records;
      entries_scanned = !scanned;
      entries_live = live;
      blocks_freed = List.length old_blocks;
      blocks_allocated = t2.n_blocks;
    }
  in
  let open Specpmt_obs in
  Metrics.incr (Metrics.counter "log.compact.cycles");
  Metrics.add (Metrics.counter "log.compact.records_scanned") !records;
  Metrics.add (Metrics.counter "log.compact.entries_scanned") !scanned;
  Metrics.add (Metrics.counter "log.compact.entries_live") live;
  Metrics.add (Metrics.counter "log.compact.blocks_freed") stats.blocks_freed;
  Metrics.add (Metrics.counter "log.compact.blocks_allocated")
    stats.blocks_allocated;
  Trace.emit "arena.compact" ~a:stats.blocks_freed ~b:live;
  stats

(* Index-driven reclamation: rewrite from a caller-supplied live set — no
   scan of the old chain at all, O(live) instead of O(log).  With
   [keep_from] set, only the chain prefix strictly older than that block
   is evacuated: the new chain carries the prefix's live entries and is
   spliced onto the retained suffix with a seal marker, so a scan flows
   new-prefix -> suffix.  The boundary must be a clean-start block (a
   record boundary): records never span such a boundary, and append order
   is timestamp order, so every evacuated timestamp precedes every
   retained one and the scan-order-equals-timestamp-order invariant
   survives.  Crash safety is the same 2-fence splice as {!compact}: the
   entire new chain (including its splice pointer) persists with fence #1
   while still unreachable, and becomes live only at the atomic head
   publish (fence #2) — the order in which live entries were gathered or
   written is invisible to every crash point. *)
let compact_indexed ?keep_from ?(on_place = fun _ ~block:_ -> ()) t ~live =
  assert (not (has_open_record t));
  assert (t.n_tent = 0);
  (match keep_from with
  | Some b ->
      if not (List.mem b t.blocks) || not (Hashtbl.mem t.clean_starts b) then
        invalid_arg
          "Log_arena.compact_indexed: keep_from must be a clean-start chain \
           block"
  | None -> ());
  ignore
    (List.fold_left
       (fun prev (ts, _) ->
         assert (ts > prev);
         ts)
       0 live);
  let copied = List.fold_left (fun n (_, es) -> n + List.length es) 0 live in
  let zero =
    {
      records_scanned = 0;
      entries_scanned = 0;
      entries_live = copied;
      blocks_freed = 0;
      blocks_allocated = 0;
    }
  in
  let finish stats =
    let open Specpmt_obs in
    Metrics.incr (Metrics.counter "log.compact.indexed_cycles");
    Metrics.add (Metrics.counter "log.compact.entries_live") copied;
    Metrics.add (Metrics.counter "log.compact.blocks_freed")
      stats.blocks_freed;
    Metrics.add (Metrics.counter "log.compact.blocks_allocated")
      stats.blocks_allocated;
    Trace.emit "arena.compact_indexed" ~a:stats.blocks_freed ~b:copied;
    stats
  in
  match keep_from with
  | Some b when b = t.head_block -> finish zero (* empty prefix: no-op *)
  | Some b when copied = 0 ->
      (* fully stale prefix: drop it with one pointer persist, zero copies *)
      finish { zero with blocks_freed = drop_prefix t ~keep_from:b }
  | _ ->
      let b0 = alloc_block t in
      let t2 =
        mk t.heap ~head_slot:t.head_slot ~block_bytes:t.block_bytes b0
      in
      List.iter
        (fun (ts, entries) ->
          begin_record t2;
          List.iter
            (fun (tgt, v) ->
              ignore (add_entry t2 ~target:tgt ~value:v);
              on_place tgt ~block:t2.cur_block)
            entries;
          (* flushes persist on WPQ acceptance; one fence below covers the
             whole new chain *)
          commit_record t2 ~timestamp:ts ~fence:false)
        live;
      (match keep_from with
      | Some b ->
          (* seal the new chain into the retained suffix: the scanner must
             flow past the last evacuated record into [b], not stop at an
             end-of-log sentinel *)
          Pmem.store_int t.pm t2.pos skip_tag;
          Pmem.clwb t.pm t2.pos;
          Pmem.store_int t.pm t2.cur_block b;
          Pmem.clwb t.pm t2.cur_block
      | None -> if copied = 0 then Pmem.flush_range t.pm b0 16);
      Pmem.sfence t.pm (* fence #1: new chain durable, still unreachable *);
      publish_head t2 t2.head_block (* fence #2: atomic switch *);
      let dropped =
        match keep_from with
        | None ->
            let old = t.blocks in
            t.blocks <- t2.blocks;
            t.n_blocks <- t2.n_blocks;
            t.head_block <- t2.head_block;
            t.cur_block <- t2.cur_block;
            t.pos <- t2.pos;
            t.pend_a <- t2.pend_a;
            t.pend_b <- t2.pend_b;
            t.n_pend <- t2.n_pend;
            t.total_entries <- t2.total_entries;
            Hashtbl.reset t.entries_per_block;
            Hashtbl.iter
              (Hashtbl.replace t.entries_per_block)
              t2.entries_per_block;
            Hashtbl.reset t.clean_starts;
            Hashtbl.iter
              (fun blk () -> Hashtbl.replace t.clean_starts blk ())
              t2.clean_starts;
            old
        | Some b ->
            let rec split acc = function
              | [] -> assert false (* membership checked above *)
              | blk :: rest when blk = b -> (List.rev (blk :: acc), rest)
              | blk :: rest -> split (blk :: acc) rest
            in
            let kept, dropped = split [] t.blocks in
            let is_dropped = Hashtbl.create 16 in
            List.iter (fun blk -> Hashtbl.replace is_dropped blk ()) dropped;
            List.iter
              (fun blk ->
                t.total_entries <- t.total_entries - entries_in_block t blk;
                Hashtbl.remove t.entries_per_block blk;
                Hashtbl.remove t.clean_starts blk)
              dropped;
            t.blocks <- kept @ t2.blocks;
            t.n_blocks <- List.length t.blocks;
            t.head_block <- t2.head_block;
            (* drop pending chain-pointer spans that lived in evacuated
               blocks; in-place filter keeps the append order *)
            let kept_pend = ref 0 in
            for i = 0 to t.n_pend - 1 do
              if not (Hashtbl.mem is_dropped t.pend_a.(i)) then begin
                t.pend_a.(!kept_pend) <- t.pend_a.(i);
                t.pend_b.(!kept_pend) <- t.pend_b.(i);
                incr kept_pend
              end
            done;
            t.n_pend <- !kept_pend;
            t.total_entries <- t.total_entries + t2.total_entries;
            Hashtbl.iter
              (Hashtbl.replace t.entries_per_block)
              t2.entries_per_block;
            Hashtbl.iter
              (fun blk () -> Hashtbl.replace t.clean_starts blk ())
              t2.clean_starts;
            dropped
      in
      List.iter (fun blk -> Heap.free t.heap blk) dropped;
      finish
        {
          zero with
          blocks_freed = List.length dropped;
          blocks_allocated = t2.n_blocks;
        }
