lib/backends/spec_soft.mli: Addr Ctx Hashtbl Heap Log_arena Pmem Specpmt_pmalloc Specpmt_pmem Specpmt_txn
