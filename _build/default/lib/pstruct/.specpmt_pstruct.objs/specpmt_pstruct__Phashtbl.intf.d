lib/pstruct/phashtbl.mli: Ctx Specpmt_txn
