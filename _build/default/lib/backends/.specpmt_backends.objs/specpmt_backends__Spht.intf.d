lib/backends/spht.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
