(** DRAM shadow mirror for the {!Pbtree} hot path.

    A volatile copy of a tree's node contents — meta, high key, right
    link and the key/payload arrays — keyed by node address, plus the
    header's root and count.  Descents and read-only operations are
    served from this mirror with binary search inside nodes, never
    touching the device model; only the persistence events a mutation
    actually needs (leaf-level logged writes, the commit fence) remain
    on the metered path.  That split is exactly the speculative-logging
    cost model: volatile state is free, persistence events cost.

    {b Coherence protocol.}  The mirror holds two layers: [base], the
    committed image, and [stage], a copy-on-write overlay populated by
    the open transaction ({!stage} clones a node on first touch;
    {!stage_free} writes a tombstone).  Reads go overlay-first, so a
    transaction observes its own structural updates.  The first staging
    call of a transaction arms a {!Specpmt_txn.Ctx.ctx.on_end} hook:
    on commit the overlay is folded into [base]; on abort {e or on a
    crash escaping the transaction} it is dropped wholesale — [base]
    never sees uncommitted state.

    {b Crash story.}  A crash inside the commit protocol can leave the
    transaction durable on media while the hook reported failure (the
    hook fires only after the backend's commit returns), so after any
    crash the mirror must be rebuilt from media — attach paths do a
    fresh unmetered rebuild and recovery never trusts a pre-crash
    mirror.  The mirror is pure DRAM: it writes nothing to the device,
    so it cannot perturb recovery, the line-disjointness invariant, or
    any crash-consistency guarantee of the underlying scheme. *)

open Specpmt_pmem
open Specpmt_txn

type node = {
  mutable meta : int;  (** [nkeys*2 + is_leaf], [-1] marks a staged tombstone *)
  mutable high : int;  (** inclusive upper bound of the subtree *)
  mutable right : int;  (** right-sibling link, [0] at the spine end *)
  keys : int array;  (** slots [0..nkeys); the rest is dead *)
  pays : int array;  (** child pointers (internal) or payloads (leaf) *)
}
(** Mirrored node contents.  Array slots beyond the current key count
    are dead: they are neither read nor compared, and may disagree with
    whatever junk the media holds there. *)

type t
(** One tree's mirror.  Domain-local, like the handle that owns it:
    never share across domains. *)

val create : order:int -> root:int -> count:int -> t
(** Empty mirror for a tree of the given order; {!load} fills it. *)

val order : t -> int

val root : t -> int
(** Root node address, staged view (a transaction that grew or shrank
    the root sees its own update). *)

val count : t -> int
(** Entry count, staged view. *)

val node : t -> Addr.t -> node
(** Staged view of a node: the open transaction's overlay wins, a
    staged tombstone hides the base node.  Raises [Not_found] when the
    mirror does not cover the address — callers fall back to metered
    ctx reads and count a {!miss}. *)

val mem : t -> Addr.t -> bool

val load : t -> Addr.t -> node
(** Install a zeroed node in the committed image and return it for the
    rebuild pass to fill.  Only attach/rebuild may call this. *)

val stage : t -> Ctx.ctx -> Addr.t -> node
(** Copy-on-write handle for a mutation: returns the staged clone of
    the node (created from [base], or zeroed for a fresh allocation)
    and arms the transaction's outcome hook.  The caller updates the
    returned fields {e mirroring each transactional write it issues}. *)

val stage_free : t -> Ctx.ctx -> Addr.t -> unit
(** Stage removal of a node (transactional [free]); applied on commit,
    dropped on abort. *)

val stage_root : t -> Ctx.ctx -> int -> unit
(** Stage a root change (root growth/collapse). *)

val stage_count : t -> Ctx.ctx -> int -> unit
(** Stage a count change. *)

val size : t -> int
(** Nodes in the committed image. *)

val stage_size : t -> int
(** Staged entries of the open transaction (0 between transactions). *)

val fold_base : t -> (Addr.t -> node -> 'a -> 'a) -> 'a -> 'a
(** Fold over the committed image — audit use.  Raises
    [Invalid_argument] while a transaction has staged entries. *)

val hit : t -> unit
(** Count a mirror-served node fetch. *)

val miss : t -> unit
(** Count a fetch the mirror could not serve (fell back to ctx reads). *)

val add_rebuild_ns : t -> int -> unit
(** Account host wall time spent rebuilding the mirror. *)

val totals : t -> int * int * int
(** [(hits, misses, rebuild_ns)] since creation. *)

val publish : t -> unit
(** Push the counter deltas since the last publish into the calling
    domain's metrics registry as [shadow.hits], [shadow.misses] and
    [shadow.rebuild_ns].  Call from the domain that owns the mirror. *)

val lower_bound : int array -> int -> int -> int
(** [lower_bound keys n key] is the smallest [i < n] with
    [keys.(i) >= key], or [n] — the in-node binary search replacing the
    linear slot scans. *)
