test/test_stamp.ml: Alcotest List Option Printf Run Spec_hw Specpmt Workload
