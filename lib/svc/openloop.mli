(** Deterministic open-loop load: scheduled arrivals, coordinated-
    omission-safe latency, goodput vs offered load, and recovery under
    load.

    {b Why open-loop.}  A closed-loop generator ({!Loadgen}) slows its
    own offered load down the moment the service saturates — each
    client waits for its ack before issuing again — so it structurally
    cannot show queueing collapse.  Here ops {e arrive} on a
    precomputed schedule whether or not the service has kept up;
    arrivals the service cannot admit pile into a per-shard backlog,
    and the gap between offered load and {e goodput} (acks per second
    of virtual time) is the overload signal.

    {b Determinism.}  The schedule is a seeded pure function, and the
    driver's clock is the device model's simulated ns plus an idle-jump
    offset (waiting for the next arrival costs no device time).
    Nothing reads the host clock, so a report is a pure function of
    (stream, config, service config): byte-identical across [--jobs],
    domain placement and host load.

    {b Coordinated omission.}  Latency is measured from each op's
    {e scheduled arrival} to its ack.  Ops held in the backlog after an
    admission shed keep accruing latency the whole time; nothing is
    re-timed from its eventually-successful submit. *)

type arrivals =
  | Poisson  (** exponential inter-arrival gaps *)
  | Burst of { on_ns : float; off_ns : float }
      (** on/off (bursty) arrivals: Poisson inside [on_ns] windows —
          intensified so the long-run mean stays [rate] — and silent
          for [off_ns] between them *)

type config = {
  rate : float;
      (** mean offered arrival rate, ops per second of simulated time;
          [<= 0] is the saturation probe (every op due at t = 0) *)
  arrivals : arrivals;
  seed : int;
}

val arrivals_to_string : arrivals -> string
(** ["poisson"] or ["burst:ON_MS:OFF_MS"]. *)

val arrivals_of_string : string -> (arrivals, string) result
(** Parses ["poisson"], ["burst"] (default 0.2 ms / 0.2 ms windows) or
    ["burst:ON_MS:OFF_MS"] (window lengths in milliseconds). *)

val schedule : config -> n:int -> float array
(** The first [n] arrival times (simulated ns, non-decreasing) of this
    config — a seeded pure function.  All zeros when [rate <= 0]. *)

type shard_summary = {
  os_shard : int;
  os_ops : int;  (** acknowledged ops *)
  os_rejected : int;  (** admission sheds *)
  os_batches : int;
  os_sealed : int;
  os_max_inflight : int;
}

type report = {
  o_config : config;
  svc_config : Service.config;
  ops : int;  (** stream length; every op completes before return *)
  reads : int;
  writes : int;
  rmws : int;
  scans : int;
  attempts : int;  (** submit attempts, including re-offers after sheds *)
  rejects : int;  (** admission sheds suffered by backlog heads *)
  max_backlog : int;  (** high-water mark of arrived-but-unadmitted ops *)
  last_arrival_ns : float;  (** when the schedule's final op arrived *)
  span_ns : float;  (** virtual time from start to the last ack *)
  offered_ops_per_sec : float;
      (** [ops / last_arrival]; for the saturation probe (all arrivals
          at t = 0) it equals the goodput, i.e. the measured capacity *)
  goodput_ops_per_sec : float;  (** completed acks per virtual second *)
  fences : int;
  fences_per_op : float;
  latency : Specpmt_obs.Hist.snapshot;
      (** scheduled-arrival -> ack, simulated ns (CO-safe) *)
  o_shards : shard_summary list;
}

val run : Service.t -> config -> (int * Service.op) array -> report
(** Drive the whole stream through the service open-loop and return
    when every op has been acknowledged.  Stream indices ride the
    completion's [c_client] field, so streams must be consumed by a
    fresh {!Service.t} per run.  Bumps [svc.openloop.arrivals] /
    [svc.openloop.rejects] counters, the [svc.openloop.max_backlog] /
    [svc.openloop.goodput_per_sec] gauges and the
    [svc.openloop.latency_ns] registry histogram.  Raises
    [Invalid_argument] on an empty stream. *)

val report_to_json : report -> Specpmt_obs.Json.t
(** One flat object — every field deterministic (no wall clock):
    config echo, op-kind counts, attempts/rejects/max_backlog,
    span/offered/goodput, fences and the CO-safe latency histogram,
    plus a [per_shard] list. *)

val pp : Format.formatter -> report -> unit
(** Human-readable summary (the [ycsb] CLI output). *)

(** {1 Recovery under load}

    Kill the {!Dataplane} mid-traffic at a deterministic batch fuse,
    crash, recover, and resume under the arrival backlog. *)

type recovery_report = {
  rv_fuse : int;  (** the batch fuse the run halted at *)
  rv_halted : bool;  (** false if the stream ran out before the fuse *)
  rv_recover_ns : float;  (** simulated device time of recovery *)
  rv_audit_failures : int;  (** cells violating acked-durable/unacked-invisible *)
  rv_acked_before : int;  (** acks drained before the crash (timing-dependent) *)
  rv_backlog : int;  (** unacked ops resubmitted after recovery *)
  rv_resumed : int;  (** ops acknowledged by the resumed run *)
  rv_recover_wall_s : float;
  rv_first_ack_wall_s : float;  (** resume start -> first ack (wall) *)
  rv_rto_wall_s : float;
      (** RTO: restart -> first post-restart ack = recover wall time +
          first-ack wall time *)
  rv_total_wall_s : float;
}

val recovery_under_load :
  ?params:Specpmt_backends.Spec_soft.params ->
  Specpmt_pmalloc.Heap.t ->
  Dataplane.config ->
  (int * Service.op) array ->
  fuse_batches:int ->
  recovery_report
(** Build a {!Dataplane} on the heap, run the stream with
    [halt_after_batches = fuse_batches] (the one-line reproducible
    fuse), {!Dataplane.crash}, {!Dataplane.recover}, audit every cell
    (last acked value, or initial if never acked, or a later write
    sealed in a batch whose ack never drained), then resume with the
    unacknowledged suffix as the arrival backlog and time the first
    post-restart ack.  Streams must be read/write only — the audit
    attributes cell states to unique write values, so [Rmw]/[Scan]
    streams raise [Invalid_argument]. *)

val recovery_to_json : recovery_report -> Specpmt_obs.Json.t
(** Two sections: [invariant] (fuse, halted flag, simulated recovery
    ns, audit failures — byte-identical across [--jobs] and repeat
    runs) and [measured] (ack/backlog split and wall-clock RTO, which
    depend on router/worker timing). *)

val pp_recovery : Format.formatter -> recovery_report -> unit
