lib/hwtxn/nt_log.mli: Addr Heap Specpmt_pmalloc Specpmt_pmem
