lib/stamp/ssca2.ml: Array Ctx Parray Rng Specpmt_pstruct Specpmt_txn Wtypes
