open Specpmt_txn

type kind = Raw | Pmdk | Kamino | Spht | Spec_dp | Spec | Hashlog

let all = [ Raw; Pmdk; Kamino; Spht; Spec_dp; Spec; Hashlog ]

let name = function
  | Raw -> "raw"
  | Pmdk -> "PMDK"
  | Kamino -> "Kamino-Tx"
  | Spht -> "SPHT"
  | Spec_dp -> "SpecSPMT-DP"
  | Spec -> "SpecSPMT"
  | Hashlog -> "Spec-hashlog"

let of_name s =
  List.find_opt (fun k -> String.lowercase_ascii (name k) = String.lowercase_ascii s) all

let create heap = function
  | Raw -> Raw.create heap
  | Pmdk -> Pmdk_undo.create heap
  | Kamino -> Kamino.create heap
  | Spht -> Spht.create heap
  | Spec_dp -> fst (Spec_soft.create heap Spec_soft.dp_params)
  | Spec -> fst (Spec_soft.create heap Spec_soft.default_params)
  | Hashlog -> Spec_hashlog.create heap

let _ = Ctx.raw_ctx (* re-exported convenience, keep the dep explicit *)
