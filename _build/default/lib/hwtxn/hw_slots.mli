(** Root-slot assignments of the hardware schemes (disjoint from the
    software backends', see {!Specpmt_backends.Slots}). *)

val ede_region : int
val ede_capacity : int
val hoop_head : int
val hoop_map_head : int
val spec_head : int
val spec_undo_region : int
val spec_undo_capacity : int

val mt_head : int -> int
(** Per-core log head of the multi-core pool (0..3). *)

val mt_undo_region : int -> int
val mt_undo_capacity : int -> int
