(** Per-transaction write-set index.

    Tracks, for each 8-byte cell written by the open transaction, the value
    it held before the first write (the undo image) and where its log entry
    lives (so that repeated updates overwrite a single entry — the paper's
    "write-set indexing" that keeps only the last update, Section 4). *)

open Specpmt_pmem

type slot = {
  old_value : int;  (** value before the transaction's first write *)
  mutable entry_pos : int;
      (** backend-specific position of the cell's log entry; [-1] if the
          backend has not materialised one *)
  mutable last_value : int;
      (** most recent value written to the cell this transaction — lets
          commit feed a volatile live-entry index without re-reading the
          device *)
  mutable entry_block : int;
      (** log block holding the cell's entry ([-1] if none) — feeds the
          per-block liveness accounting behind adaptive reclamation *)
}

(* the order list carries the slot alongside the address so the commit
   iteration never re-probes the hashtable *)
type t = {
  slots : (Addr.t, slot) Hashtbl.t;
  mutable order : (Addr.t * slot) list;
}

let create () = { slots = Hashtbl.create 64; order = [] }

let clear t =
  Hashtbl.reset t.slots;
  t.order <- []

let size t = Hashtbl.length t.slots

(** [record t addr ~old_value] notes a write to [addr].  Returns the slot
    and whether this is the first write to that cell in the transaction. *)
let record t addr ~old_value =
  match Hashtbl.find_opt t.slots addr with
  | Some slot -> (slot, false)
  | None ->
      let slot =
        { old_value; entry_pos = -1; last_value = old_value; entry_block = -1 }
      in
      Hashtbl.replace t.slots addr slot;
      t.order <- (addr, slot) :: t.order;
      (slot, true)

let find t addr = Hashtbl.find_opt t.slots addr

(** Iterate cells in first-write order (oldest first). *)
let iter_in_order t f =
  List.iter (fun (addr, slot) -> f addr slot) (List.rev t.order)

(** Iterate cells in reverse first-write order (newest first), the order an
    undo recovery applies compensation in. *)
let iter_newest_first t f =
  List.iter (fun (addr, slot) -> f addr slot) t.order
