lib/stamp/labyrinth.mli: Wtypes
