(** Persistent singly-linked list with head insertion (stack order).

    Layout: head cell [first]; node [value; next].  Pointer 0 is null. *)

open Specpmt_pmem
open Specpmt_txn

type t = { head_cell : Addr.t }

let node_bytes = 16

let create (ctx : Ctx.ctx) =
  let head_cell = ctx.Ctx.alloc 8 in
  ctx.Ctx.write head_cell 0;
  { head_cell }

let of_head_cell head_cell = { head_cell }
let head_cell t = t.head_cell

let push (ctx : Ctx.ctx) t v =
  let n = ctx.Ctx.alloc node_bytes in
  ctx.Ctx.write n v;
  ctx.Ctx.write (n + 8) (ctx.Ctx.read t.head_cell);
  ctx.Ctx.write t.head_cell n

let pop (ctx : Ctx.ctx) t =
  let n = ctx.Ctx.read t.head_cell in
  if n = 0 then None
  else begin
    let v = ctx.Ctx.read n in
    ctx.Ctx.write t.head_cell (ctx.Ctx.read (n + 8));
    ctx.Ctx.free n;
    Some v
  end

let is_empty (ctx : Ctx.ctx) t = ctx.Ctx.read t.head_cell = 0

let iter (ctx : Ctx.ctx) t f =
  let n = ref (ctx.Ctx.read t.head_cell) in
  while !n <> 0 do
    f (ctx.Ctx.read !n);
    n := ctx.Ctx.read (!n + 8)
  done

let length ctx t =
  let n = ref 0 in
  iter ctx t (fun _ -> incr n);
  !n

let to_list ctx t =
  let acc = ref [] in
  iter ctx t (fun v -> acc := v :: !acc);
  List.rev !acc

(** Remove the first node holding [v]; [true] if one was removed. *)
let remove (ctx : Ctx.ctx) t v =
  let rec go prev n =
    if n = 0 then false
    else if ctx.Ctx.read n = v then begin
      let next = ctx.Ctx.read (n + 8) in
      if prev = 0 then ctx.Ctx.write t.head_cell next
      else ctx.Ctx.write (prev + 8) next;
      ctx.Ctx.free n;
      true
    end
    else go n (ctx.Ctx.read (n + 8))
  in
  go 0 (ctx.Ctx.read t.head_cell)
