lib/txn/checksum.ml: Array Bytes Char Int64 Lazy List
