(** Persistent B-link tree (ordered int-keyed map with range scans).

    A B+-style tree — all entries live in the leaves, internal nodes
    hold separator bounds — with the B-link additions: every node
    carries an inclusive {e high key} (the upper bound of its subtree,
    [max_int] on the rightmost spine) and a right-sibling link, so an
    ordered walk can proceed from any node by following links and range
    scans never re-descend.  Balancing is preemptive: inserts split any
    full node on the way down (so a split never propagates back up) and
    removals borrow from or merge with a sibling before descending into
    a minimal node (so an underflow never propagates either); the root
    grows by gaining a single-entry parent and shrinks by handing its
    slot to a lone child.

    Every node read and write goes through a {!Specpmt_txn.Ctx.ctx}:
    nodes are allocated with [ctx.alloc], freed with [ctx.free] and
    updated with transactional stores, so the crash atomicity of a
    multi-node structural update (split, merge, sibling relink) comes
    entirely from the enclosing transaction's logging scheme — no
    tree-specific recovery code exists.  Callers must therefore run
    every mutation inside a transaction; reads may use any ctx,
    including {!Specpmt_txn.Ctx.raw_ctx} or
    {!Specpmt_txn.Ctx.peek_ctx} for audits.

    Keys must satisfy [min_int < key < max_int]: both extremes are
    reserved as the tree's -inf/+inf sentinels.

    {b Shadow mirror.}  {!attach_shadow} equips a handle with a DRAM
    {!Shadow} mirror of the whole tree; from then on descents, reads
    and range walks are served from volatile memory (binary search
    inside nodes), mutations dual-write media and mirror with the
    mirror side staged until the transaction's outcome hook fires, and
    only the transactional writes a mutation actually needs remain on
    the metered path.  With no mirror attached every operation reads
    through the ctx in exactly the pre-mirror sequence. *)

open Specpmt_pmem
open Specpmt_txn

type t
(** Volatile handle: the persistent header address plus the cached
    order and the per-handle {!stats} counters.  Cheap to rebuild with
    {!of_header} after a crash or in another domain. *)

type stats = {
  mutable leaf_splits : int;
  mutable internal_splits : int;
  mutable merges : int;
  mutable borrows : int;
  mutable root_grows : int;
  mutable root_shrinks : int;
}
(** Volatile per-handle counters of structural events since the handle
    was built — the crash-exploration driver uses them to prove its
    workload actually exercised every rebalancing path. *)

val create : ?order:int -> Ctx.ctx -> unit -> t
(** Allocate the header and an empty root leaf inside the current
    transaction.  [order] (default 8) is the maximum entries per node,
    persisted in the header; it must be at least 4.  Raises
    [Invalid_argument] on a smaller order. *)

val of_header : Ctx.ctx -> Addr.t -> t
(** Rebuild a handle from a persisted header address (root-slot
    rediscovery after a crash, or a second handle in another domain).
    Reads the order from the header; raises [Invalid_argument] when the
    cell does not hold a plausible order (wrong address). *)

val header : t -> Addr.t
(** The persistent header address — what a root slot or directory must
    store for {!of_header} to find the tree again. *)

val order : t -> int
val stats : t -> stats

val attach_shadow : Ctx.ctx -> t -> unit
(** Build (or rebuild) this handle's DRAM mirror with one pass over the
    tree through [ctx] — callers pass {!Specpmt_txn.Ctx.peek_ctx} on
    the device view the handle's transactions run against, so the pass
    is unmetered and observes that view's cached lines.  Any previous
    mirror is discarded: after a crash the mirror must never be
    trusted, recovery paths re-attach from media.  The handle is
    domain-local once mirrored — do not share it across domains. *)

val detach_shadow : t -> unit
(** Drop the mirror; the handle reverts to metered ctx reads. *)

val shadow : t -> Shadow.t option
(** The attached mirror, for metrics ({!Shadow.totals},
    {!Shadow.publish}) and audits. *)

val verify_shadow : Ctx.ctx -> t -> unit
(** Audit the mirror against the media image read through [ctx]
    (normally a peek ctx): root, count, the reachable node set, and
    every node's meta/high/right plus its live key/payload prefix must
    match exactly.  Raises [Failure] with a description on the first
    divergence, [Invalid_argument] if no mirror is attached or a
    transaction is in flight.  The qcheck differential suite and the
    crash explorer's recovery audit run this after every recover. *)

val insert : Ctx.ctx -> t -> int -> int -> unit
(** Insert or overwrite.  Raises [Invalid_argument] when the key is
    [min_int] or [max_int] (reserved sentinels). *)

val remove : Ctx.ctx -> t -> int -> bool
(** Remove a key; [false] if absent.  Rebalancing on the descent may
    restructure the tree even for an absent key. *)

val find : Ctx.ctx -> t -> int -> int option
val mem : Ctx.ctx -> t -> int -> bool

val length : Ctx.ctx -> t -> int
(** Number of entries (persisted in the header, O(1)). *)

val iter_from : Ctx.ctx -> t -> lo:int -> (int -> int -> bool) -> unit
(** [iter_from ctx t ~lo f] visits entries with key [>= lo] in
    ascending order, leaf-walking through the right-sibling links; [f]
    returns whether to continue after the entry it was given — the
    early-stop primitive count-limited scans are built on. *)

val iter_range : Ctx.ctx -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** All entries with [lo <= key <= hi], ascending. *)

val range : Ctx.ctx -> t -> lo:int -> hi:int -> (int * int) list
(** {!iter_range} materialised, ascending. *)

val iter : Ctx.ctx -> t -> (int -> int -> unit) -> unit
(** Every entry, ascending. *)

val fold : Ctx.ctx -> t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
(** Every entry, ascending. *)

val height : Ctx.ctx -> t -> int
(** Levels from root to leaf inclusive; an empty tree has height 1. *)

val node_count : Ctx.ctx -> t -> int * int
(** [(internal, leaf)] node totals — bench reporting. *)

val check : Ctx.ctx -> t -> unit
(** Structural audit; raises [Failure] with a description on any
    violation.  Verifies per-node key order and occupancy bounds (root
    exceptions included: a root leaf may be empty, an internal root
    never keeps a single child between transactions), that every
    node's high key equals its separator in the parent, that internal
    separators bound their subtrees, uniform leaf depth, that the
    right-sibling links at {e every} level chain the level's nodes in
    tree order and terminate, and that the persisted length matches
    the leaf entry total. *)
