lib/pmem/pmem.mli: Addr Config Format Stats
