open Specpmt_txn

type kind = Ede | Hoop | Spec_hw_dp | Spec_hw | Nolog

let all = [ Ede; Hoop; Spec_hw_dp; Spec_hw; Nolog ]

let name = function
  | Ede -> "EDE"
  | Hoop -> "HOOP"
  | Spec_hw_dp -> "SpecHPMT-DP"
  | Spec_hw -> "SpecHPMT"
  | Nolog -> "no-log"

let of_name s =
  List.find_opt
    (fun k -> String.lowercase_ascii (name k) = String.lowercase_ascii s)
    all

let create heap = function
  | Ede -> Ede.create heap
  | Hoop -> Hoop.create heap
  | Spec_hw_dp -> fst (Spec_hw.create heap Spec_hw.dp_params)
  | Spec_hw -> fst (Spec_hw.create heap Spec_hw.default_params)
  | Nolog -> Nolog.create heap

let _ = Ctx.raw_ctx
