lib/pstruct/pqueue.ml: Addr Ctx Specpmt_pmem Specpmt_txn
