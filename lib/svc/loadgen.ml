open Specpmt_pmem
module Hist = Specpmt_obs.Hist
module Metrics = Specpmt_obs.Metrics
module Json = Specpmt_obs.Json

(* Deterministic closed-loop load generator: [clients] simulated clients
   each keep at most one request outstanding; a client whose request was
   shed by admission holds it and retries after the next drain (the
   retry hint in action).  Keys are drawn Zipf-skewed, the read/write
   mix is a seeded coin, and every write carries a unique value so crash
   audits can attribute any cell state to the op that produced it. *)

type config = {
  clients : int;
  ops : int;  (** total operations to complete *)
  read_frac : float;  (** probability an op is a read *)
  skew : float;  (** Zipf theta; [<= 0] is uniform *)
  seed : int;
}

(* Inverse-CDF Zipf over [0, n): cumulative weights 1/(k+1)^theta are
   precomputed once, each draw is one float and a binary search. *)
let zipf_sampler ~n ~theta st =
  if theta <= 0.0 then fun () -> Random.State.int st n
  else begin
    let cum = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (k + 1) ** theta));
      cum.(k) <- !acc
    done;
    let total = !acc in
    fun () ->
      let u = Random.State.float st total in
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cum.(mid) > u then hi := mid else lo := mid + 1
      done;
      !lo
  end

(* THE one seeded drawer: key draw, then mix coin, then a unique write
   value keyed on the draw's position.  Both {!op_stream} and {!run}
   call it, so the stream a config describes and the ops the
   closed-loop clients actually issue are the same sequence by
   construction (previously the two open-coded copies of this logic
   could drift). *)
let drawer cfg ~keys =
  let st = Random.State.make [| 0x5EC; cfg.seed |] in
  let draw_key = zipf_sampler ~n:keys ~theta:cfg.skew st in
  let pos = ref 0 in
  fun () ->
    let key = draw_key () in
    let op =
      if Random.State.float st 1.0 < cfg.read_frac then Service.Read
      else Service.Write (1_000_000 + !pos)
    in
    incr pos;
    (key, op)

(* The open-coded op stream the closed-loop generator would issue:
   (key, op) pairs in issue order, from the same {!drawer}.  The
   shard-per-domain data plane consumes this directly — its router
   forms batches from the stream positionally, so batch composition is
   a pure function of (config, keys) and never of domain timing. *)
let op_stream cfg ~keys =
  if cfg.ops < 0 then invalid_arg "Loadgen.op_stream: ops < 0";
  let next = drawer cfg ~keys in
  let out = Array.make cfg.ops (0, Service.Read) in
  (* explicit loop: Array.init's evaluation order is unspecified and the
     RNG draws must happen in issue order *)
  for i = 0 to cfg.ops - 1 do
    out.(i) <- next ()
  done;
  out

type shard_report = {
  sh_id : int;
  sh_ops : int;
  sh_rejected : int;
  sh_batches : int;
  sh_sealed : int;
  sh_max_inflight : int;
  sh_latency : Hist.snapshot;
  sh_ops_per_ms : float;
}

type report = {
  r_config : config;
  svc_config : Service.config;
  span_ns : float;
  total_ops : int;
  reads : int;
  writes : int;
  rejected : int;
  retries : int;
  batches : int;
  sealed_records : int;
  fences : int;
  fences_per_write : float;
  latency : Hist.snapshot;  (** all ops, all shards *)
  shards : shard_report list;
}

type client_state = Free | Hold of int * Service.op | Inflight

let run ?(on_issue = fun (_ : int * Service.op) -> ()) svc cfg =
  if cfg.clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if cfg.ops < 0 then invalid_arg "Loadgen.run: ops < 0";
  let scfg = Service.config svc in
  let pm = Service.pm svc in
  let next_op = drawer cfg ~keys:scfg.Service.keys in
  let state = Array.make cfg.clients Free in
  (* per-client first-issue timestamp: latency is measured from the
     moment the client first tried to submit, so time spent in [Hold]
     after an admission shed shows up in the histogram (measuring from
     the eventually-accepted [c_enq_ns] hides exactly the overload
     queueing the histogram exists to expose) *)
  let issue_ns = Array.make cfg.clients 0.0 in
  let lat = Hist.create () in
  let issued = ref 0 in
  let completed = ref 0 in
  let reads = ref 0 in
  let writes = ref 0 in
  let retries = ref 0 in
  (* measure from here: pool setup and adoption are excluded *)
  let before = Stats.copy (Pmem.stats pm) in
  let now () = (Pmem.stats pm).Stats.ns in
  let on_ack (c : Service.completion) =
    incr completed;
    (match c.Service.c_op with
    | Service.Read | Service.Scan _ -> incr reads
    | Service.Write _ | Service.Rmw _ -> incr writes);
    Hist.observe lat
      (int_of_float (c.Service.ack_ns -. issue_ns.(c.Service.c_client)));
    state.(c.Service.c_client) <- Free
  in
  while !completed < cfg.ops do
    Array.iteri
      (fun i s ->
        match s with
        | Free when !issued < cfg.ops ->
            let (key, op) as drawn = next_op () in
            on_issue drawn;
            incr issued;
            issue_ns.(i) <- now ();
            state.(i) <- Hold (key, op)
        | _ -> ())
      state;
    Array.iteri
      (fun i s ->
        match s with
        | Hold (key, op) -> (
            match Service.submit svc ~client:i ~key op with
            | Admission.Accepted -> state.(i) <- Inflight
            | Admission.Rejected _ ->
                (* keep holding; the next drain frees capacity *)
                incr retries)
        | _ -> ())
      state;
    ignore (Service.drain ~on_ack svc)
  done;
  let d = Stats.diff before (Pmem.stats pm) in
  let fences = d.Stats.fences in
  let fences_per_write =
    float_of_int fences /. float_of_int (max 1 !writes)
  in
  Metrics.set_gauge (Metrics.gauge "svc.fences_per_txn") fences_per_write;
  let span_ns = d.Stats.ns in
  let ops_per_ms n =
    if span_ns <= 0.0 then 0.0 else float_of_int n /. (span_ns /. 1e6)
  in
  let shards =
    List.init scfg.Service.shards (fun i ->
        let s = Service.shard_stats svc i in
        {
          sh_id = s.Service.s_id;
          sh_ops = s.Service.s_ops;
          sh_rejected = s.Service.s_rejected;
          sh_batches = s.Service.s_batches;
          sh_sealed = s.Service.s_sealed;
          sh_max_inflight = s.Service.s_max_inflight;
          sh_latency = s.Service.s_latency;
          sh_ops_per_ms = ops_per_ms s.Service.s_ops;
        })
  in
  {
    r_config = cfg;
    svc_config = scfg;
    span_ns;
    total_ops = !completed;
    reads = !reads;
    writes = !writes;
    rejected = Service.rejected svc;
    retries = !retries;
    batches = List.fold_left (fun n s -> n + s.sh_batches) 0 shards;
    sealed_records = List.fold_left (fun n s -> n + s.sh_sealed) 0 shards;
    fences;
    fences_per_write;
    latency = Hist.snapshot lat;
    shards;
  }

let shard_to_json s =
  Json.Obj
    [
      ("shard", Json.Int s.sh_id);
      ("ops", Json.Int s.sh_ops);
      ("rejected", Json.Int s.sh_rejected);
      ("batches", Json.Int s.sh_batches);
      ("sealed_records", Json.Int s.sh_sealed);
      ("max_inflight", Json.Int s.sh_max_inflight);
      ("ops_per_ms", Json.Float s.sh_ops_per_ms);
      ("latency_ns", Hist.to_json s.sh_latency);
    ]

let report_to_json r =
  Json.Obj
    [
      ("shards", Json.Int r.svc_config.Service.shards);
      ("batch_max", Json.Int r.svc_config.Service.batch_max);
      ("depth", Json.Int r.svc_config.Service.depth);
      ("keys", Json.Int r.svc_config.Service.keys);
      ("clients", Json.Int r.r_config.clients);
      ("read_frac", Json.Float r.r_config.read_frac);
      ("skew", Json.Float r.r_config.skew);
      ("seed", Json.Int r.r_config.seed);
      ("span_ns", Json.Float r.span_ns);
      ("total_ops", Json.Int r.total_ops);
      ("reads", Json.Int r.reads);
      ("writes", Json.Int r.writes);
      ("rejected", Json.Int r.rejected);
      ("retries", Json.Int r.retries);
      ("batches", Json.Int r.batches);
      ("sealed_records", Json.Int r.sealed_records);
      ("fences", Json.Int r.fences);
      ("fences_per_write", Json.Float r.fences_per_write);
      ("latency_ns", Hist.to_json r.latency);
      ("per_shard", Json.List (List.map shard_to_json r.shards));
    ]

let pp ppf r =
  let q s p = Hist.quantile s p in
  Fmt.pf ppf
    "svc: %d shards, batch_max %d, depth %d, %d keys, %d clients@\n"
    r.svc_config.Service.shards r.svc_config.Service.batch_max
    r.svc_config.Service.depth r.svc_config.Service.keys r.r_config.clients;
  Fmt.pf ppf
    "  %d ops (%d reads / %d writes), %d rejected, %d retries@\n"
    r.total_ops r.reads r.writes r.rejected r.retries;
  Fmt.pf ppf
    "  %d batches, %d sealed records, %d fences (%.3f fences/write)@\n"
    r.batches r.sealed_records r.fences r.fences_per_write;
  Fmt.pf ppf "  latency ns p50=%d p90=%d p99=%d, %.1f ops/ms total@\n"
    (q r.latency 0.5) (q r.latency 0.9) (q r.latency 0.99)
    (List.fold_left (fun a s -> a +. s.sh_ops_per_ms) 0.0 r.shards);
  List.iter
    (fun s ->
      Fmt.pf ppf
        "    shard %d: %6d ops %6.1f ops/ms p99=%-8d rejected=%d \
         max_inflight=%d@\n"
        s.sh_id s.sh_ops s.sh_ops_per_ms
        (q s.sh_latency 0.99)
        s.sh_rejected s.sh_max_inflight)
    r.shards
