(** PMDK-style undo-logging transactions — the paper's software baseline.

    Every first update of a cell persists an undo entry with a flush +
    fence before the in-place store (Figure 2, left); commit flushes the
    write set, fences, and truncates the log with a second barrier.
    Recovery rolls uncommitted updates back, newest first. *)

open Specpmt_pmalloc
open Specpmt_txn

val create : Heap.t -> Ctx.backend
