examples/quickstart.mli:
