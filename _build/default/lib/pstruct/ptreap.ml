(** Persistent ordered map (treap with deterministic priorities).

    The vacation benchmark's relational tables are red-black trees in
    STAMP; a treap gives the same O(log n) ordered-map behaviour with much
    simpler (and therefore smaller-write-set) rebalancing, and its
    priorities are a hash of the key, keeping runs deterministic.

    Layout: root cell [root]; node [key; value; prio; left; right]. *)

open Specpmt_pmem
open Specpmt_txn

type t = { root_cell : Addr.t }

let node_bytes = 40

let prio key =
  let h = (key + 0x9E37) * 0x1B873593 in
  let h = h lxor (h lsr 16) in
  h land 0x3FFFFFFF

let create (ctx : Ctx.ctx) =
  let root_cell = ctx.Ctx.alloc 8 in
  ctx.Ctx.write root_cell 0;
  { root_cell }

let of_root_cell root_cell = { root_cell }
let root_cell t = t.root_cell

let key_ (ctx : Ctx.ctx) n = ctx.Ctx.read n
let value_ (ctx : Ctx.ctx) n = ctx.Ctx.read (n + 8)
let prio_ (ctx : Ctx.ctx) n = ctx.Ctx.read (n + 16)
let left_ (ctx : Ctx.ctx) n = ctx.Ctx.read (n + 24)
let right_ (ctx : Ctx.ctx) n = ctx.Ctx.read (n + 32)

let rec find_node ctx n key =
  if n = 0 then 0
  else
    let k = key_ ctx n in
    if key = k then n
    else if key < k then find_node ctx (left_ ctx n) key
    else find_node ctx (right_ ctx n) key

let find (ctx : Ctx.ctx) t key =
  let n = find_node ctx (ctx.Ctx.read t.root_cell) key in
  if n = 0 then None else Some (value_ ctx n)

let mem ctx t key = find ctx t key <> None

(** Update the value of an existing key; [false] if absent. *)
let update (ctx : Ctx.ctx) t key value =
  let n = find_node ctx (ctx.Ctx.read t.root_cell) key in
  if n = 0 then false
  else begin
    ctx.Ctx.write (n + 8) value;
    true
  end

(* insert by recursion, returning the new subtree root *)
let rec insert_node (ctx : Ctx.ctx) n fresh =
  if n = 0 then fresh
  else
    let k = key_ ctx n and fk = key_ ctx fresh in
    if fk = k then begin
      ctx.Ctx.write (n + 8) (value_ ctx fresh);
      ctx.Ctx.free fresh;
      n
    end
    else if fk < k then begin
      let l = insert_node ctx (left_ ctx n) fresh in
      ctx.Ctx.write (n + 24) l;
      if prio_ ctx l > prio_ ctx n then begin
        (* rotate right *)
        ctx.Ctx.write (n + 24) (right_ ctx l);
        ctx.Ctx.write (l + 32) n;
        l
      end
      else n
    end
    else begin
      let r = insert_node ctx (right_ ctx n) fresh in
      ctx.Ctx.write (n + 32) r;
      if prio_ ctx r > prio_ ctx n then begin
        (* rotate left *)
        ctx.Ctx.write (n + 32) (left_ ctx r);
        ctx.Ctx.write (r + 24) n;
        r
      end
      else n
    end

let insert (ctx : Ctx.ctx) t key value =
  let fresh = ctx.Ctx.alloc node_bytes in
  ctx.Ctx.write fresh key;
  ctx.Ctx.write (fresh + 8) value;
  ctx.Ctx.write (fresh + 16) (prio key);
  ctx.Ctx.write (fresh + 24) 0;
  ctx.Ctx.write (fresh + 32) 0;
  let root = insert_node ctx (ctx.Ctx.read t.root_cell) fresh in
  ctx.Ctx.write t.root_cell root

(* merge two subtrees with all keys of [a] below those of [b] *)
let rec merge (ctx : Ctx.ctx) a b =
  if a = 0 then b
  else if b = 0 then a
  else if prio_ ctx a > prio_ ctx b then begin
    let m = merge ctx (right_ ctx a) b in
    ctx.Ctx.write (a + 32) m;
    a
  end
  else begin
    let m = merge ctx a (left_ ctx b) in
    ctx.Ctx.write (b + 24) m;
    b
  end

let remove (ctx : Ctx.ctx) t key =
  let rec go n =
    (* returns (new subtree, removed?) *)
    if n = 0 then (0, false)
    else
      let k = key_ ctx n in
      if key = k then (merge ctx (left_ ctx n) (right_ ctx n), true)
      else if key < k then begin
        let l, r = go (left_ ctx n) in
        if r then ctx.Ctx.write (n + 24) l;
        (n, r)
      end
      else begin
        let rsub, r = go (right_ ctx n) in
        if r then ctx.Ctx.write (n + 32) rsub;
        (n, r)
      end
  in
  let root, removed = go (ctx.Ctx.read t.root_cell) in
  if removed then ctx.Ctx.write t.root_cell root;
  removed

(** Smallest key >= [key], with its value. *)
let find_ceiling (ctx : Ctx.ctx) t key =
  let rec go n best =
    if n = 0 then best
    else
      let k = key_ ctx n in
      if k = key then Some (k, value_ ctx n)
      else if k < key then go (right_ ctx n) best
      else go (left_ ctx n) (Some (k, value_ ctx n))
  in
  go (ctx.Ctx.read t.root_cell) None

let iter (ctx : Ctx.ctx) t f =
  let rec go n =
    if n <> 0 then begin
      go (left_ ctx n);
      f (key_ ctx n) (value_ ctx n);
      go (right_ ctx n)
    end
  in
  go (ctx.Ctx.read t.root_cell)

let fold ctx t f acc =
  let acc = ref acc in
  iter ctx t (fun k v -> acc := f k v !acc);
  !acc

let length ctx t = fold ctx t (fun _ _ n -> n + 1) 0
