(** Kamino-Tx upper-bound model (Section 7.1.2).

    Kamino-Tx keeps a full backup copy of the data and updates in place;
    before each main-copy update it must persist the {e address} of the
    write intent (so recovery knows which cells to re-copy from the
    backup), paying a flush + fence per update — "Kamino-Tx does not avoid
    the fences for ensuring address persistence" (Section 8).  Data
    persistence is asynchronous via the backup.

    Following the paper's methodology, the main-to-backup copying is
    omitted, which makes this an upper bound on Kamino-Tx performance —
    and means this port cannot actually recover ([supports_recovery =
    false]); it participates in the performance figures only. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  log : Intent_log.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable in_tx : bool;
}

let tx_write t a v =
  let old_value = Pmem.load_int t.pm a in
  let _, first = Write_set.record t.ws a ~old_value in
  if first then Intent_log.append_durable t.log [ a ];
  Pmem.store_int t.pm a v

(* Commit: clear the intent list with one barrier.  No data flushes — the
   backup copy (omitted) would absorb them off the critical path. *)
let commit t =
  Intent_log.truncate_durable t.log;
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let rollback t =
  Write_set.iter_newest_first t.ws (fun a slot ->
      Pmem.store_int t.pm a slot.Write_set.old_value);
  Intent_log.truncate_durable t.log;
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let run_tx t f =
  if t.in_tx then invalid_arg "Kamino: nested transaction";
  t.in_tx <- true;
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write = (fun a v -> tx_write t a v);
      alloc = (fun n -> Heap.alloc t.heap n);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      Ctx.Hooks.fire hooks false;
      raise e

let create heap =
  let t =
    {
      heap;
      pm = Heap.pmem heap;
      log =
        Intent_log.create heap ~region_slot:Slots.kamino_region
          ~capacity_slot:Slots.kamino_capacity ~words_per_entry:1
          ~capacity:1024;
      ws = Write_set.create ();
      frees = [];
      in_tx = false;
    }
  in
  {
    Ctx.name = "Kamino-Tx";
    run_tx = (fun f -> run_tx t f);
    recover =
      (fun () ->
        invalid_arg
          "Kamino-Tx upper-bound model omits the backup copy and cannot \
           recover (paper Section 7.1.2)");
    drain = (fun () -> ());
    log_footprint = (fun () -> Intent_log.footprint t.log);
    supports_recovery = false;
  }
