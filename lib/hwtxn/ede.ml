(** EDE — Execution Dependence Extension (Shull et al., ISCA'21), the
    paper's hardware baseline (Section 7.1.3).

    In-place updates with hardware undo logging; the ISA-level dependence
    tracking removes the fences {e between} log and data operations, so an
    update is: persist the undo entry through the write-pending queue (no
    fence), then store the data.  Commit persists the write set
    synchronously (flush every updated line + one drain) and truncates the
    log.  Log records are coalesced per cache line as much as possible, as
    the paper's methodology prescribes. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  mutable log : Nt_log.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  logged_lines : (Addr.t, unit) Hashtbl.t; (* per-tx line coalescing *)
  mutable in_tx : bool;
}

let tx_write t a v =
  let old_value = Pmem.load_int t.pm a in
  let _, first = Write_set.record t.ws a ~old_value in
  (* coalesce: one undo record per word, but skip the whole path when the
     line has already been logged and the word re-written *)
  if first then begin
    Nt_log.append t.log ~addr:a ~old:old_value;
    Hashtbl.replace t.logged_lines (Addr.line_of a) ()
  end;
  Pmem.store_int t.pm a v

let commit t =
  Write_set.iter_in_order t.ws (fun a _ -> Pmem.clwb t.pm a);
  Pmem.sfence t.pm;
  Nt_log.truncate t.log;
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  Write_set.clear t.ws;
  Hashtbl.reset t.logged_lines;
  t.in_tx <- false

let rollback t =
  Write_set.iter_newest_first t.ws (fun a slot ->
      Pmem.store_int t.pm a slot.Write_set.old_value;
      Pmem.clwb t.pm a);
  Pmem.sfence t.pm;
  Nt_log.truncate t.log;
  t.frees <- [];
  Write_set.clear t.ws;
  Hashtbl.reset t.logged_lines;
  t.in_tx <- false

let run_tx t f =
  if t.in_tx then invalid_arg "Ede: nested transaction";
  t.in_tx <- true;
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write = (fun a v -> tx_write t a v);
      alloc = (fun n -> Heap.alloc t.heap n);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      Ctx.Hooks.fire hooks false;
      raise e

let recover t =
  Heap.recover t.heap;
  let log =
    Nt_log.attach t.heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity
  in
  let entries = Nt_log.scan log in
  List.iter
    (fun (a, old) ->
      Pmem.store_int t.pm a old;
      Pmem.clwb t.pm a)
    (List.rev entries);
  Pmem.sfence t.pm;
  Nt_log.truncate log;
  (* adopt the reattached log (fresh cached generation and region) *)
  t.log <- log;
  t.frees <- [];
  Write_set.clear t.ws;
  Hashtbl.reset t.logged_lines;
  t.in_tx <- false

let create heap =
  let t =
    {
      heap;
      pm = Heap.pmem heap;
      log =
        Nt_log.create heap ~region_slot:Hw_slots.ede_region
          ~capacity_slot:Hw_slots.ede_capacity ~capacity:1024;
      ws = Write_set.create ();
      frees = [];
      logged_lines = Hashtbl.create 64;
      in_tx = false;
    }
  in
  {
    Ctx.name = "EDE";
    run_tx = (fun f -> run_tx t f);
    recover = (fun () -> recover t);
    drain = (fun () -> ());
    log_footprint = (fun () -> Nt_log.footprint t.log);
    supports_recovery = true;
  }
