open Specpmt

(* the public facade *)

let test_scheme_names_resolve () =
  List.iter
    (fun name ->
      let pm = Pmem.create Pmem_config.default in
      let heap = Heap.create pm in
      let b = create_scheme heap name in
      Alcotest.(check string) "name round-trips" name b.Ctx.name)
    scheme_names

let test_unknown_scheme_rejected () =
  let pm = Pmem.create Pmem_config.default in
  let heap = Heap.create pm in
  Alcotest.(check bool) "unknown scheme raises" true
    (try
       ignore (create_scheme heap "nonesuch");
       false
     with Invalid_argument _ -> true)

let test_run_measurement_consistency () =
  let w = Option.get (Workload.find "ssca2") in
  let m = Run.run ~scheme:"SpecSPMT" w Workload.Quick in
  Alcotest.(check bool) "time positive" true (m.Run.ns > 0.0);
  Alcotest.(check bool) "txs counted" true (m.Run.txs > 0);
  Alcotest.(check bool) "updates >= txs" true (m.Run.updates >= m.Run.txs);
  Alcotest.(check bool) "write set sane" true
    (m.Run.avg_tx_bytes >= 8.0);
  (* one fence per transaction is the SpecPMT signature *)
  Alcotest.(check bool) "~one fence per tx" true
    (m.Run.fences <= m.Run.txs + 16)

let test_run_custom_matches_named () =
  let w = Option.get (Workload.find "genome") in
  let a = Run.run ~seed:3 ~scheme:"PMDK" w Workload.Quick in
  let b =
    Run.run_custom ~seed:3
      ~make:(fun heap -> create_scheme heap "PMDK")
      ~name:"PMDK" w Workload.Quick
  in
  Alcotest.(check int) "same checksum" a.Run.checksum b.Run.checksum;
  Alcotest.(check (float 0.0)) "same time" a.Run.ns b.Run.ns

let test_scheme_list_covers_figures () =
  (* every scheme the figures reference must be constructible *)
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (List.mem s scheme_names))
    [
      "raw"; "PMDK"; "Kamino-Tx"; "SPHT"; "SpecSPMT-DP"; "SpecSPMT";
      "Spec-hashlog"; "EDE"; "HOOP"; "SpecHPMT-DP"; "SpecHPMT"; "no-log";
    ]

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "scheme names resolve" `Quick
            test_scheme_names_resolve;
          Alcotest.test_case "unknown scheme rejected" `Quick
            test_unknown_scheme_rejected;
          Alcotest.test_case "figure schemes present" `Quick
            test_scheme_list_covers_figures;
        ] );
      ( "run harness",
        [
          Alcotest.test_case "measurement consistency" `Quick
            test_run_measurement_consistency;
          Alcotest.test_case "run_custom matches named" `Quick
            test_run_custom_matches_named;
        ] );
    ]
