lib/pmem/addr.ml:
