(** The shard-per-domain data plane: real OCaml 5 domains executing the
    sharded service.

    A router domain consumes a deterministic op stream
    ({!Loadgen.op_stream}), forms per-shard batches positionally (flush
    at [batch_max], partials at stream end) and hands them over
    {!Spsc} rings to [domains] resident worker domains; shard [s] runs
    on domain [s mod domains], which owns the shard's
    {!Specpmt_backends.Spec_soft} runtime, group-commit batcher, carved
    log sub-heap and — shared with its other shards — one incoherent
    {!Specpmt_pmem.Pmem.fork_view} of the single media image.  Media
    access is partitioned by cache line (key regions, log regions and
    log-head root slots are all line-disjoint per shard), admission and
    ack accounting stay on the router, and the only cross-domain mutable
    state is the atomic {!Specpmt_txn.Tsc}.

    Because batch composition is positional, the [invariant] section of
    the report — ops, batches, sealed records, fences, read checksum,
    final table fingerprint, per-shard counts — is byte-identical across
    domain counts; only the [measured] (host wall clock) and [modelled]
    (per-domain simulated device time) sections may differ.

    Crash/recovery runs against the single shared image: {!crash}
    discards every per-domain cache (a power failure taking all cores'
    caches), and {!recover} replays the per-shard logs through the
    parent view via {!Specpmt_backends.Spec_mt.recover}. *)

open Specpmt_pmalloc
open Specpmt_backends

type config = {
  shards : int;  (** 1..{!Specpmt_backends.Spec_mt.max_threads} *)
  domains : int;  (** worker domains, 1..shards *)
  batch_max : int;
  depth : int;  (** per-shard inflight bound; >= batch_max *)
  keys : int;
  log_region_bytes : int;  (** per-shard carved log region, >= 64 KiB *)
}

val default_log_region_bytes : int
(** 2 MiB. *)

type t

val create : ?params:Spec_soft.params -> ?shadow:bool -> Heap.t -> config -> t
(** Build the plane on a freshly formatted root heap: allocates
    line-aligned per-shard key regions, carves per-shard log regions,
    detaches the parent cache, forks one view per domain, builds the
    partitioned {!Specpmt_backends.Spec_mt} pool, runs the per-shard
    adoption transactions and creates the per-shard ordered index
    ({!Oindex.create} — tree nodes in the carved sub-heaps, directory
    under root slot {!Specpmt_backends.Slots.svc_index}).  [shadow]
    (default [true]) mirrors each shard's tree in DRAM, built through
    the shard's own view; workers publish the [shadow.*] counter
    deltas on clean stop, before detaching their caches.  A
    [Threshold] reclaim trigger is clamped to a quarter of the log
    region so compaction keeps each shard's chain inside its carved
    region. *)

type shard_report = {
  d_shard : int;
  d_domain : int;
  d_ops : int;  (** acked by the router *)
  d_batches : int;
  d_sealed : int;
}

type report = {
  domains : int;
  halted : bool;  (** crash drill: the router stopped mid-stream *)
  total_ops : int;
  reads : int;
  writes : int;
  rmws : int;  (** read-modify-write transactions acknowledged *)
  scans : int;  (** shard-local short scans acknowledged *)
  reads_sum : int;
      (** checksum over read, rmw and scan results (invariant) *)
  table_crc : int;  (** final table fingerprint; 0 on halted runs *)
  fences : int;
  batches : int;
  sealed_records : int;
  per_shard : shard_report list;
  wall_s : float;  (** measured host wall clock *)
  wall_ops_per_sec : float;
  wall_latency : Specpmt_obs.Hist.snapshot;  (** wall ns, admission->ack *)
  router_stalls : int;  (** ops that waited on shard capacity *)
  sim_ns_max : float;  (** modelled makespan: the slowest domain clock *)
  sim_ns_sum : float;
  sim_bg_ns : float;
  pm_write_lines : int;
  pm_read_lines : int;
}

val run :
  ?halt_after_batches:int ->
  ?on_ack:(idx:int -> value:int -> unit) ->
  t ->
  (int * Service.op) array ->
  report
(** Spawn the workers, route the stream, join.  A clean run waits out
    every inflight op and detaches each worker's cache, so the parent
    afterwards observes the merged image ({!peek}, [table_crc]).
    Raises [Invalid_argument] on an out-of-range key or a
    {!Service.op.Scan} of length < 1.

    All four op kinds run as single transactions on the owning shard's
    domain; {!Service.op.Scan} walks the shard's persistent ordered
    index ({!Oindex.scan}), whose tree nodes live in the shard's carved
    sub-heap — scans and index maintenance only ever touch lines the
    owning domain already holds, so the per-line ownership discipline
    is untouched.

    [halt_after_batches = n] is the deterministic crash drill: the
    router stops submitting the moment the [n]-th batch has been sent
    and the workers exit {e without} detaching — every acked op's log
    record is sealed on media, while unflushed in-place updates are
    still only in the per-domain caches, exactly the state {!crash}
    then makes permanent.  Acks already drained by the router before
    the halt are the run's acknowledged set ([per_shard.d_ops]).

    [on_ack ~idx ~value] fires on the router for every acknowledged op
    ([idx] is the stream position) the moment its completion is drained
    — the crash-safe ack stream audits are built on. *)

val crash : t -> unit
(** Discard every per-domain cache and crash the parent view: only what
    was flushed to media (sealed log records, allocator metadata)
    survives. *)

val recover : t -> unit
(** {!Specpmt_backends.Spec_mt.recover} through the parent view over
    the shared image (root heap, per-shard sub-heaps, coalesced log
    merge, per-runtime reattach), then reset admission and batchers,
    rediscover the ordered index from its root slot ({!Oindex.recover})
    and hand the replayed lines back to the views.  The plane serves
    again afterwards: call {!run} with a fresh stream. *)

val peek : t -> int -> int
(** Unmetered key read through the parent — valid between runs (after a
    clean join or {!recover}), when no worker cache is live. *)

val shard_of_key : t -> int -> int
val config : t -> config

val report_to_json : config -> report -> Specpmt_obs.Json.t
(** Three sections: [invariant] (must be byte-identical across domain
    counts — CI diffs 1 vs N), [measured] (host wall clock),
    [modelled] (simulated device time). *)

val pp : Format.formatter -> config * report -> unit
