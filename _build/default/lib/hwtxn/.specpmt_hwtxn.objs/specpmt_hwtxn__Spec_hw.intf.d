lib/hwtxn/spec_hw.mli: Ctx Epoch_coord Hashtbl Heap Hwconfig Specpmt_hwsim Specpmt_pmalloc Specpmt_txn Tlb
