exception Crash

type op =
  | Load of Addr.t
  | Store of Addr.t * int
  | Clwb of Addr.t
  | Sfence
  | Nt_store of Addr.t * int (* address, bytes *)

let pp_op ppf = function
  | Load a -> Fmt.pf ppf "load   %#x" a
  | Store (a, v) -> Fmt.pf ppf "store  %#x <- %d" a v
  | Clwb a -> Fmt.pf ppf "clwb   %#x" a
  | Sfence -> Fmt.pf ppf "sfence"
  | Nt_store (a, n) -> Fmt.pf ppf "ntstore %#x (%d B)" a n

type line = { data : bytes; mutable dirty : bool }

type t = {
  cfg : Config.t;
  media : bytes;
  cache : (int, line) Hashtbl.t; (* keyed by line index *)
  order : int Queue.t; (* FIFO of line indices for capacity eviction *)
  stats : Stats.t;
  rng : Random.State.t;
  mutable pending : float list; (* completion times of accepted persists *)
  mutable last_completion : float; (* WPQ is a serial server *)
  mutable last_persist_line : int; (* for the sequential-write fast path *)
  mutable last_read_line : int; (* for the sequential-read fast path *)
  mutable fuse : int option;
  mutable events : int; (* monotonic count of fuse-visible memory events *)
  mutable metered : bool;
  mutable crashed : bool;
  (* optional operation trace: a bounded ring of the most recent memory
     events, for post-mortem debugging of crash-consistency failures *)
  mutable trace : op array option;
  mutable trace_pos : int;
}

let create ?(seed = 42) cfg =
  {
    cfg;
    media = Bytes.make cfg.Config.mem_size '\000';
    cache = Hashtbl.create 4096;
    order = Queue.create ();
    stats = Stats.create ();
    rng = Random.State.make [| seed; 0x5ec; 0x9a7e |];
    pending = [];
    last_completion = 0.0;
    last_persist_line = -10;
    last_read_line = -10;
    fuse = None;
    events = 0;
    metered = true;
    crashed = false;
    trace = None;
    trace_pos = 0;
  }

(* A per-domain view of the same media: shares the [media] image (and
   the immutable config) but owns a private cache, write-pending queue,
   stats clock and fuse.  This is the simulator's model of one core's
   cache hierarchy over shared PM.  Views are NOT coherent — the model
   writes media back whole lines — so callers must partition the image:
   a line written through one view must never be touched through
   another until the owning view has been detached. *)
let fork_view ?(seed = 43) t =
  {
    t with
    cache = Hashtbl.create 4096;
    order = Queue.create ();
    stats = Stats.create ();
    rng = Random.State.make [| seed; 0x5ec; 0x9a7e |];
    pending = [];
    last_completion = 0.0;
    last_persist_line = -10;
    last_read_line = -10;
    fuse = None;
    events = 0;
    metered = true;
    crashed = false;
    trace = None;
    trace_pos = 0;
  }

(* Write every dirty cached line back to media and empty the cache —
   the handoff fence when line ownership moves between views (e.g. a
   worker domain joining, or a parent forking views over lines it
   formatted).  A simulation-boundary operation: no stats, no WPQ, no
   fuse events. *)
let detach_cache t =
  Hashtbl.iter
    (fun li line ->
      if line.dirty then
        Bytes.blit line.data 0 t.media (li * Addr.line_size) Addr.line_size)
    t.cache;
  Hashtbl.reset t.cache;
  Queue.clear t.order;
  t.pending <- []

(* Drop the cache without any write-back: the crash counterpart of
   {!detach_cache} — everything this view had not yet persisted is
   lost, exactly as a power failure would lose one core's caches. *)
let discard_cache t =
  Hashtbl.reset t.cache;
  Queue.clear t.order;
  t.pending <- []

let config t = t.cfg
let stats t = t.stats
let mem_size t = t.cfg.Config.mem_size
let crashed_once t = t.crashed
let set_fuse t n = t.fuse <- n
let fuse t = t.fuse
let events t = t.events

let set_trace t n =
  if n <= 0 then begin
    t.trace <- None;
    t.trace_pos <- 0
  end
  else begin
    t.trace <- Some (Array.make n Sfence);
    t.trace_pos <- 0
  end

let record_op t op =
  match t.trace with
  | None -> ()
  | Some ring ->
      ring.(t.trace_pos mod Array.length ring) <- op;
      t.trace_pos <- t.trace_pos + 1

let recent_ops t =
  match t.trace with
  | None -> []
  | Some ring ->
      let n = Array.length ring in
      let count = min n t.trace_pos in
      List.init count (fun i -> ring.((t.trace_pos - count + i) mod n))

let burn_fuse t =
  t.events <- t.events + 1;
  match t.fuse with
  | None -> ()
  | Some n -> if n <= 1 then raise Crash else t.fuse <- Some (n - 1)

let charge t ns = if t.metered then t.stats.Stats.ns <- t.stats.Stats.ns +. ns
let charge_ns = charge

let charge_bg_ns t ns =
  if t.metered then t.stats.Stats.bg_ns <- t.stats.Stats.bg_ns +. ns

let count f t = if t.metered then f t.stats

(* Write one line of content to the media image, with traffic accounting
   and sequential-stream detection.  [charged] distinguishes foreground
   persists (flushes, nt-stores: drain time goes through the WPQ model)
   from background ones (capacity evictions: time goes to the background
   ledger). *)
let media_write_line ?(meter = true) t li (content : bytes) =
  let off = li * Addr.line_size in
  Bytes.blit content 0 t.media off Addr.line_size;
  if meter && t.metered then begin
    let seq = li = t.last_persist_line + 1 || li = t.last_persist_line in
    t.stats.Stats.pm_write_lines <- t.stats.Stats.pm_write_lines + 1;
    Specpmt_obs.Phase.on_pm_write_line ();
    if seq then
      t.stats.Stats.pm_write_lines_seq <- t.stats.Stats.pm_write_lines_seq + 1;
    (* unmetered (background-core) writes must not perturb the foreground
       stream-locality tracking either *)
    t.last_persist_line <- li
  end

let line_write_cost t li =
  let seq = li = t.last_persist_line + 1 || li = t.last_persist_line in
  if seq then t.cfg.Config.pm_seq_write_ns else t.cfg.Config.pm_write_ns

(* Accept one line into the write-pending queue: may stall the foreground
   if the queue is full; the drain itself is asynchronous and paid by the
   next fence. *)
let wpq_accept t li =
  (* background-core persists do not occupy the foreground's
     write-pending queue in the model *)
  if t.metered then begin
    let cfg = t.cfg in
    if List.length t.pending >= cfg.Config.wpq_lines then begin
      (* stall until the oldest accepted persist drains *)
      let oldest = List.fold_left min infinity t.pending in
      if t.stats.Stats.ns < oldest then charge t (oldest -. t.stats.Stats.ns);
      t.pending <- List.filter (fun c -> c > t.stats.Stats.ns) t.pending
    end;
    charge t cfg.Config.wpq_accept_ns;
    let start = Float.max t.stats.Stats.ns t.last_completion in
    let completion = start +. line_write_cost t li in
    t.last_completion <- completion;
    t.pending <- completion :: t.pending
  end

let evict_capacity t =
  let cap = t.cfg.Config.cache_capacity_lines in
  while Hashtbl.length t.cache > cap && not (Queue.is_empty t.order) do
    let li = Queue.pop t.order in
    match Hashtbl.find_opt t.cache li with
    | None -> ()
    | Some line ->
        Hashtbl.remove t.cache li;
        if line.dirty then begin
          count (fun s -> s.Stats.evictions <- s.Stats.evictions + 1) t;
          media_write_line t li line.data;
          charge_bg_ns t (line_write_cost t li)
        end
  done

(* Fetch a line into the cache (clean copy from media) if absent. *)
let get_line t li ~for_load =
  match Hashtbl.find_opt t.cache li with
  | Some line ->
      charge t t.cfg.Config.l1_hit_ns;
      line
  | None ->
      if for_load then begin
        count (fun s -> s.Stats.pm_read_lines <- s.Stats.pm_read_lines + 1) t;
        if t.metered then Specpmt_obs.Phase.on_pm_read_line ();
        (* a miss continuing the previous miss's stream is bandwidth-bound:
           prefetch hides the media latency (the read-side twin of the
           sequential-write fast path) *)
        let seq = li = t.last_read_line + 1 || li = t.last_read_line in
        if seq then begin
          count
            (fun s -> s.Stats.pm_read_lines_seq <- s.Stats.pm_read_lines_seq + 1)
            t;
          charge t t.cfg.Config.pm_seq_read_ns
        end
        else charge t t.cfg.Config.pm_read_ns;
        if t.metered then t.last_read_line <- li
      end
      else charge t t.cfg.Config.l1_hit_ns;
      let data = Bytes.create Addr.line_size in
      Bytes.blit t.media (li * Addr.line_size) data 0 Addr.line_size;
      let line = { data; dirty = false } in
      Hashtbl.replace t.cache li line;
      Queue.push li t.order;
      evict_capacity t;
      line

let check_bounds t addr len =
  if addr < 0 || addr + len > t.cfg.Config.mem_size then
    Fmt.invalid_arg "Pmem: address out of bounds: %d (+%d)" addr len

let load_int t addr =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  burn_fuse t;
  record_op t (Load addr);
  count (fun s -> s.Stats.loads <- s.Stats.loads + 1) t;
  let line = get_line t (Addr.line_index addr) ~for_load:true in
  Int64.to_int (Bytes.get_int64_le line.data (Addr.offset_in_line addr))

let store_int t addr v =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  burn_fuse t;
  record_op t (Store (addr, v));
  count (fun s -> s.Stats.stores <- s.Stats.stores + 1) t;
  let line = get_line t (Addr.line_index addr) ~for_load:false in
  Bytes.set_int64_le line.data (Addr.offset_in_line addr) (Int64.of_int v);
  line.dirty <- true

let load_bytes t addr len =
  check_bounds t addr len;
  burn_fuse t;
  count (fun s -> s.Stats.loads <- s.Stats.loads + 1) t;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let li = Addr.line_index a in
    let off = Addr.offset_in_line a in
    let n = min (Addr.line_size - off) (len - !pos) in
    let line = get_line t li ~for_load:true in
    Bytes.blit line.data off out !pos n;
    pos := !pos + n
  done;
  out

let store_bytes t addr b =
  let len = Bytes.length b in
  if len > 0 then begin
    check_bounds t addr len;
    burn_fuse t;
    count (fun s -> s.Stats.stores <- s.Stats.stores + 1) t;
    let pos = ref 0 in
    while !pos < len do
      let a = addr + !pos in
      let li = Addr.line_index a in
      let off = Addr.offset_in_line a in
      let n = min (Addr.line_size - off) (len - !pos) in
      let line = get_line t li ~for_load:false in
      Bytes.blit b !pos line.data off n;
      line.dirty <- true;
      pos := !pos + n
    done
  end

let clwb t addr =
  check_bounds t addr 1;
  burn_fuse t;
  record_op t (Clwb addr);
  count (fun s -> s.Stats.clwbs <- s.Stats.clwbs + 1) t;
  if t.metered then Specpmt_obs.Phase.on_clwb ();
  charge t t.cfg.Config.clwb_issue_ns;
  if not t.cfg.Config.eadr then
    let li = Addr.line_index addr in
    match Hashtbl.find_opt t.cache li with
    | Some line when line.dirty ->
        (* accepted by the WPQ: persistent now, drain time paid at the
           fence *)
        wpq_accept t li;
        media_write_line t li line.data;
        line.dirty <- false
    | Some _ | None -> ()

(* clflushopt: like clwb but also invalidates the cached copy — the next
   access misses.  Same persistence semantics (WPQ acceptance). *)
let clflushopt t addr =
  clwb t addr;
  Hashtbl.remove t.cache (Addr.line_index addr)

let sfence t =
  burn_fuse t;
  record_op t Sfence;
  count (fun s -> s.Stats.fences <- s.Stats.fences + 1) t;
  if t.metered then Specpmt_obs.Phase.on_fence ();
  let latest = List.fold_left Float.max t.stats.Stats.ns t.pending in
  if t.metered then t.stats.Stats.ns <- latest +. t.cfg.Config.fence_ns;
  t.pending <- []

let nt_store_bytes t addr b =
  (* under eADR a cached store is already durable; the non-temporal hint
     buys nothing and the write stays in the (persistent) cache *)
  if t.cfg.Config.eadr then store_bytes t addr b
  else
  let len = Bytes.length b in
  if len > 0 then begin
    check_bounds t addr len;
    burn_fuse t;
    record_op t (Nt_store (addr, len));
    count (fun s -> s.Stats.nt_stores <- s.Stats.nt_stores + 1) t;
    if t.metered then Specpmt_obs.Phase.on_nt_store ();
    let pos = ref 0 in
    while !pos < len do
      let a = addr + !pos in
      let li = Addr.line_index a in
      let off = Addr.offset_in_line a in
      let n = min (Addr.line_size - off) (len - !pos) in
      (* write-combining through the WPQ; cached copies are invalidated,
         merging with any cached dirty content first so that unrelated
         bytes of the line are not lost *)
      let content =
        match Hashtbl.find_opt t.cache li with
        | Some line ->
            Hashtbl.remove t.cache li;
            line.data
        | None ->
            let d = Bytes.create Addr.line_size in
            Bytes.blit t.media (li * Addr.line_size) d 0 Addr.line_size;
            d
      in
      Bytes.blit b !pos content off n;
      wpq_accept t li;
      media_write_line t li content;
      pos := !pos + n
    done
  end

let flush_range t addr len =
  if len > 0 then begin
    let first = Addr.line_index addr in
    let last = Addr.line_index (addr + len - 1) in
    for li = first to last do
      clwb t (li * Addr.line_size)
    done
  end

let dirty_lines t =
  Hashtbl.fold
    (fun li line acc -> if line.dirty then li :: acc else acc)
    t.cache []
  |> List.sort compare

let dirty_words t =
  List.concat_map
    (fun li ->
      List.init (Addr.line_size / 8) (fun w ->
          (li * Addr.line_size) + (w * 8)))
    (dirty_lines t)

(* Oracle-driven crash: [persist] decides, per dirty 8-byte word in
   ascending address order, whether the in-flight store reaches the media.
   Under eADR the caches sit inside the persistence domain, so everything
   drains regardless of the oracle. *)
let crash_with t ~persist =
  t.crashed <- true;
  List.iter
    (fun li ->
      match Hashtbl.find_opt t.cache li with
      | None -> ()
      | Some line ->
          (* each 8-byte word may have drained independently (stores are
             word-atomic with respect to persistence) *)
          for w = 0 to (Addr.line_size / 8) - 1 do
            let addr = (li * Addr.line_size) + (w * 8) in
            if t.cfg.Config.eadr || persist addr then
              Bytes.blit line.data (w * 8) t.media addr 8
          done)
    (dirty_lines t);
  Hashtbl.reset t.cache;
  Queue.clear t.order;
  t.pending <- [];
  t.fuse <- None

let crash t =
  t.crashed <- true;
  (* under eADR the caches are inside the persistence domain: every dirty
     word drains, deterministically *)
  let p =
    if t.cfg.Config.eadr then 1.0 else t.cfg.Config.crash_word_persist_prob
  in
  Hashtbl.iter
    (fun li line ->
      if line.dirty then
        for w = 0 to (Addr.line_size / 8) - 1 do
          if Random.State.float t.rng 1.0 < p then
            Bytes.blit line.data (w * 8) t.media
              ((li * Addr.line_size) + (w * 8))
              8
        done)
    t.cache;
  Hashtbl.reset t.cache;
  Queue.clear t.order;
  t.pending <- [];
  t.fuse <- None

let with_unmetered t f =
  let saved = t.metered in
  t.metered <- false;
  Fun.protect ~finally:(fun () -> t.metered <- saved) f

let peek_media_int t addr =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  Int64.to_int (Bytes.get_int64_le t.media addr)

let peek_volatile_int t addr =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  match Hashtbl.find_opt t.cache (Addr.line_index addr) with
  | Some line ->
      Int64.to_int (Bytes.get_int64_le line.data (Addr.offset_in_line addr))
  | None -> Int64.to_int (Bytes.get_int64_le t.media addr)
