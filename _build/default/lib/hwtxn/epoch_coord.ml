type t = { mutable spans : Epoch_protocol.epoch_span list }

let create () = { spans = [] }

let register_start t ~thread ~eid ~start_ts =
  t.spans <-
    { Epoch_protocol.thread; eid; start_ts; end_ts = None; inactive = false }
    :: t.spans

let register_end t ~thread ~eid ~end_ts =
  t.spans <-
    List.map
      (fun s ->
        if s.Epoch_protocol.thread = thread && s.Epoch_protocol.eid = eid then
          { s with Epoch_protocol.end_ts = Some end_ts; inactive = true }
        else s)
      t.spans

let may_reclaim t ~thread ~eid =
  match
    List.find_opt
      (fun s -> s.Epoch_protocol.thread = thread && s.Epoch_protocol.eid = eid)
      t.spans
  with
  | None -> true (* unregistered epochs (single-thread mode) are free *)
  | Some s -> Epoch_protocol.can_reclaim ~all:t.spans s

let drop t ~thread ~eid =
  t.spans <-
    List.filter
      (fun s ->
        not (s.Epoch_protocol.thread = thread && s.Epoch_protocol.eid = eid))
      t.spans

let reset t = t.spans <- []

let reset_thread t ~thread =
  t.spans <-
    List.filter (fun s -> s.Epoch_protocol.thread <> thread) t.spans
let spans t = t.spans
