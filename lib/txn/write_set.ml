(** Per-transaction write-set index.

    Tracks, for each 8-byte cell written by the open transaction, the value
    it held before the first write (the undo image) and where its log entry
    lives (so that repeated updates overwrite a single entry — the paper's
    "write-set indexing" that keeps only the last update, Section 4). *)

open Specpmt_pmem

type slot = {
  mutable old_value : int;  (** value before the transaction's first write *)
  mutable entry_pos : int;
      (** backend-specific position of the cell's log entry; [-1] if the
          backend has not materialised one *)
  mutable last_value : int;
      (** most recent value written to the cell this transaction — lets
          commit feed a volatile live-entry index without re-reading the
          device *)
  mutable entry_block : int;
      (** log block holding the cell's entry ([-1] if none) — feeds the
          per-block liveness accounting behind adaptive reclamation *)
}

(* Flat representation: cells in first-write order live in the parallel
   [addrs]/[slots] arrays; a linear-probing index over the address space
   maps address -> position.  Slot records are reused across transactions
   ([clear] keeps them allocated), so the steady-state commit path does
   no hashing through a generic Hashtbl and no allocation per write. *)
type t = {
  mutable addrs : Addr.t array;
  mutable slots : slot array; (* parallel to addrs; records are reused *)
  mutable n : int;
  mutable keys : Addr.t array; (* probe table: address, or -1 when empty *)
  mutable vals : int array; (* probe table: position in addrs/slots *)
  mutable mask : int; (* keys/vals length - 1, a power of two *)
}

(* shared placeholder for not-yet-materialised slot cells; recognised by
   physical equality and replaced with a fresh record on first use *)
let dummy_slot =
  { old_value = 0; entry_pos = -1; last_value = 0; entry_block = -1 }

let initial_cells = 64

let create () =
  {
    addrs = Array.make initial_cells (-1);
    slots = Array.make initial_cells dummy_slot;
    n = 0;
    keys = Array.make (4 * initial_cells) (-1);
    vals = Array.make (4 * initial_cells) 0;
    mask = (4 * initial_cells) - 1;
  }

let clear t =
  t.n <- 0;
  Array.fill t.keys 0 (t.mask + 1) (-1)

let size t = t.n

(* cells are 8-byte aligned, so fold the low bits out before mixing *)
let hash_addr a = (a lsr 3) * 0x9E3779B1

let probe t addr =
  let h = ref (hash_addr addr land t.mask) in
  while t.keys.(!h) >= 0 && t.keys.(!h) <> addr do
    h := (!h + 1) land t.mask
  done;
  !h

let insert_index t addr pos =
  let h = probe t addr in
  t.keys.(h) <- addr;
  t.vals.(h) <- pos

let grow t =
  let cap = Array.length t.addrs in
  let addrs = Array.make (2 * cap) (-1) in
  let slots = Array.make (2 * cap) dummy_slot in
  Array.blit t.addrs 0 addrs 0 t.n;
  Array.blit t.slots 0 slots 0 cap;
  t.addrs <- addrs;
  t.slots <- slots;
  (* keep the probe table at 4x the cell capacity: load factor <= 1/2 *)
  t.keys <- Array.make (8 * cap) (-1);
  t.vals <- Array.make (8 * cap) 0;
  t.mask <- (8 * cap) - 1;
  for i = 0 to t.n - 1 do
    insert_index t t.addrs.(i) i
  done

(** [record t addr ~old_value] notes a write to [addr].  Returns the slot
    and whether this is the first write to that cell in the transaction. *)
let record t addr ~old_value =
  let h = probe t addr in
  if t.keys.(h) = addr then (t.slots.(t.vals.(h)), false)
  else begin
    if t.n = Array.length t.addrs then grow t;
    let pos = t.n in
    let slot = t.slots.(pos) in
    let slot =
      if slot == dummy_slot then begin
        let s =
          { old_value; entry_pos = -1; last_value = old_value;
            entry_block = -1 }
        in
        t.slots.(pos) <- s;
        s
      end
      else begin
        slot.old_value <- old_value;
        slot.entry_pos <- -1;
        slot.last_value <- old_value;
        slot.entry_block <- -1;
        slot
      end
    in
    t.addrs.(pos) <- addr;
    t.n <- pos + 1;
    insert_index t addr pos;
    (slot, true)
  end

let find t addr =
  let h = probe t addr in
  if t.keys.(h) = addr then Some t.slots.(t.vals.(h)) else None

(** Iterate cells in first-write order (oldest first). *)
let iter_in_order t f =
  for i = 0 to t.n - 1 do
    f t.addrs.(i) t.slots.(i)
  done

(** Iterate cells in reverse first-write order (newest first), the order an
    undo recovery applies compensation in. *)
let iter_newest_first t f =
  for i = t.n - 1 downto 0 do
    f t.addrs.(i) t.slots.(i)
  done
