(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7) on the simulated substrate.

     dune exec bench/main.exe                 -- everything, Small inputs
     dune exec bench/main.exe -- fig12 fig13  -- selected experiments
     dune exec bench/main.exe -- --quick all  -- smallest inputs
     dune exec bench/main.exe -- --full all   -- larger inputs
     dune exec bench/main.exe -- --quick all --json out.json
                                              -- also write a JSON report
     dune exec bench/main.exe -- --jobs 4 fig1
                                              -- grid points on 4 domains

   Experiments: table1 table2 table3 fig1 fig12 fig13 fig14 fig15 hashlog
   ablation sweeps recovery recovery-sweep svc svc-scale ycsb scan eadr
   hotness bechamel.
   Measurements are simulated time and traffic; the
   paper's reference numbers are printed alongside (see EXPERIMENTS.md for
   the comparison discussion). *)

open Specpmt

let workload name = Option.get (Workload.find name)

(* ---------- measurement cache (figures share runs) ---------- *)

let cache : (string * string * float, Run.measurement) Hashtbl.t =
  Hashtbl.create 64

let scale = ref Workload.Small

(* Worker domains for the independent grid points ([--jobs N]); the
   figures themselves always assemble from the cache serially, so the
   printed tables and the JSON report are byte-identical for any jobs
   count. *)
let jobs = ref 1

let scale_name () =
  match !scale with
  | Workload.Quick -> "quick"
  | Workload.Small -> "small"
  | Workload.Full -> "full"

(* ---------- JSON report (--json FILE) ---------- *)

(* Every measurement is recorded the first time a figure {e uses} its
   (scheme, workload, multiplier) key — not when it is computed — so the
   report rows land in figure order whether the cache was filled
   serially on demand or prewarmed by the domain pool.  The report also
   dedups on the same key keeping the first occurrence, so re-running
   figures that share runs does not duplicate rows. *)
let json_path : string option ref = ref None
let recorded : (float * Run.measurement) list ref = ref []

let recorded_keys : (string * string * float, unit) Hashtbl.t =
  Hashtbl.create 64

let record ((_, _, cs) as k) m =
  if !json_path <> None && not (Hashtbl.mem recorded_keys k) then begin
    Hashtbl.add recorded_keys k ();
    recorded := (cs, m) :: !recorded
  end

(* Rows of the recovery/reclamation sweep (`recovery-sweep`); they are
   not workload measurements, so they ride in their own additive
   top-level key rather than in [results]. *)
let sweep_rows : Json.t list ref = ref []

let record_sweep row =
  if !json_path <> None then sweep_rows := row :: !sweep_rows

(* Rows of the service-layer experiment (`svc`) — like the recovery
   sweep, an additive top-level key, no schema bump. *)
let svc_rows : Json.t list ref = ref []

let record_svc row = if !json_path <> None then svc_rows := row :: !svc_rows

(* Rows of the data-plane domain sweep (`svc-scale`) — one Dataplane
   report per domain count, additive `svc_scale` top-level key. *)
let svc_scale_rows : Json.t list ref = ref []

let record_svc_scale row =
  if !json_path <> None then svc_scale_rows := row :: !svc_scale_rows

(* Sections of the open-loop YCSB experiment (`ycsb`) — additive `ycsb`
   top-level key split invariant / modelled / measured: the invariant
   half must be byte-identical across --jobs and domain counts (CI diffs
   it); modelled is simulated-time performance; measured is wall clock. *)
let ycsb_sections : (string * Json.t) list ref = ref []

let record_ycsb k v =
  if !json_path <> None then ycsb_sections := (k, v) :: !ycsb_sections

(* Rows of the ordered-index scan experiment (`scan`) — additive `scan`
   top-level key, no schema bump. *)
let scan_rows : Json.t list ref = ref []
let record_scan row = if !json_path <> None then scan_rows := row :: !scan_rows

let write_json_report ~wall_s path =
  let seen = Hashtbl.create 64 in
  let results =
    List.rev !recorded
    |> List.filter (fun (cs, m) ->
           let k = (m.Run.scheme, m.Run.workload, cs) in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
    |> List.map (fun (cs, m) ->
           match Run.measurement_to_json m with
           | Json.Obj kvs ->
               Json.Obj (kvs @ [ ("compute_scale", Json.Float cs) ])
           | j -> j)
  in
  Json.to_file path
    (Json.Obj
       ([
          ("schema_version", Json.Int Run.schema_version);
          ("generator", Json.Str "specpmt-bench");
          ("scale", Json.Str (scale_name ()));
          ("results", Json.List results);
        ]
       @ (if !sweep_rows = [] then []
          else [ ("recovery_sweep", Json.List (List.rev !sweep_rows)) ])
       @ (if !svc_rows = [] then []
          else [ ("svc", Json.List (List.rev !svc_rows)) ])
       @ (if !svc_scale_rows = [] then []
          else [ ("svc_scale", Json.List (List.rev !svc_scale_rows)) ])
       @ (if !ycsb_sections = [] then []
          else [ ("ycsb", Json.Obj (List.rev !ycsb_sections)) ])
       @ (if !scan_rows = [] then []
          else [ ("scan", Json.List (List.rev !scan_rows)) ])
       (* additive harness-timing key: wall-clock of the selected
          experiments, the denominator of the --jobs speedup *)
       @ [ ("wall_s", Json.Float wall_s) ]));
  Printf.printf "\nwrote %d measurements to %s\n" (List.length results) path

(* The paper's software results come from a real machine running full
   STAMP inputs, where computation per transaction dwarfs the simulator
   workloads'; its hardware results come from gem5 with simulator inputs.
   The software figures therefore run with a one-off calibrated compute
   multiplier (see the `ablation` experiment for its sensitivity, and
   EXPERIMENTS.md for the justification). *)
let sw_compute_scale = 4.0

let measure scheme wname =
  let k = (scheme, wname, Workload.compute_scale ()) in
  let m =
    match Hashtbl.find_opt cache k with
    | Some m -> m
    | None ->
        let m = Run.run ~scheme (workload wname) !scale in
        Hashtbl.replace cache k m;
        m
  in
  record k m;
  m

let with_compute_scale k f =
  let saved = Workload.compute_scale () in
  Workload.set_compute_scale k;
  Fun.protect ~finally:(fun () -> Workload.set_compute_scale saved) f

(* Fill the cache for a figure's (scheme x workload x multiplier) grid
   concurrently: each point is an independent simulator instance, so
   they fan out over the domain pool; the figure then reads the cache
   serially and records rows in its own deterministic order. *)
let prewarm grid =
  let todo = List.filter (fun k -> not (Hashtbl.mem cache k)) grid in
  if !jobs > 1 && List.length todo > 1 then begin
    let ms =
      Par.map_list ~jobs:!jobs
        (fun (scheme, wname, cs) ->
          Workload.set_compute_scale cs;
          Run.run ~scheme (workload wname) !scale)
        todo
    in
    List.iter2 (fun k m -> Hashtbl.replace cache k m) todo ms
  end

let geomean l =
  exp (List.fold_left (fun a x -> a +. log x) 0.0 l /. float (List.length l))

(* Spearman rank correlation between our per-workload series and the
   paper's — a one-number "shape score" per scheme. *)
let spearman xs ys =
  let rank l =
    let idx = List.mapi (fun i v -> (v, i)) l in
    let sorted = List.sort compare idx in
    let ranks = Array.make (List.length l) 0.0 in
    List.iteri (fun r (_, i) -> ranks.(i) <- float_of_int r) sorted;
    ranks
  in
  let rx = rank xs and ry = rank ys in
  let n = float_of_int (Array.length rx) in
  let d2 =
    Array.to_list (Array.mapi (fun i x -> (x -. ry.(i)) ** 2.0) rx)
    |> List.fold_left ( +. ) 0.0
  in
  1.0 -. (6.0 *. d2 /. (n *. ((n *. n) -. 1.0)))

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row_label = Printf.printf "%-14s"

(* ---------- Table 1: system configuration ---------- *)

let table1 () =
  header "Table 1: system configuration (simulated)";
  let c = Pmem_config.default in
  let h = Hwconfig.default in
  Printf.printf "CPU              4 GHz core, sequential interpreter, MESI-free cache model\n";
  Printf.printf "L1 TLB           %d entries (hotness tracked while resident)\n"
    h.Hwconfig.l1_tlb_entries;
  Printf.printf "L2 TLB           %d entries\n" h.Hwconfig.l2_tlb_entries;
  Printf.printf "Cache            %d lines (%d KiB), hit %.1f ns\n"
    c.Pmem_config.cache_capacity_lines
    (c.Pmem_config.cache_capacity_lines * 64 / 1024)
    c.Pmem_config.l1_hit_ns;
  Printf.printf "PM               read %.0f ns; write %.0f ns (%.0f ns sequential)\n"
    c.Pmem_config.pm_read_ns c.Pmem_config.pm_write_ns
    c.Pmem_config.pm_seq_write_ns;
  Printf.printf "WPQ              %d lines (%d B), accept %.0f ns; fence %.0f ns\n"
    c.Pmem_config.wpq_lines
    (c.Pmem_config.wpq_lines * 64)
    c.Pmem_config.wpq_accept_ns c.Pmem_config.fence_ns;
  Printf.printf "Hot threshold    %d stores while TLB-resident\n"
    h.Hwconfig.hot_threshold;
  Printf.printf "Epochs           new epoch past %d KiB or %d pages; log budget %d MiB\n"
    (h.Hwconfig.epoch_max_bytes / 1024)
    h.Hwconfig.epoch_max_pages
    (h.Hwconfig.log_budget_bytes / 1024 / 1024);
  Printf.printf "On-chip cost     2 bits/TLB entry + 2 bits/L1 line = 0.91 KB per core (paper 5.4)\n"

(* ---------- Table 2: transaction profiles ---------- *)

let table2 () =
  header "Table 2: size and number of transactions (ours at this scale vs paper at full scale)";
  Printf.printf "%-14s %28s   %34s\n" "" "measured (raw scheme)"
    "paper (full STAMP inputs)";
  Printf.printf "%-14s %10s %8s %10s   %10s %10s %12s\n" "application"
    "B/tx" "txs" "updates" "B/tx" "txs" "updates";
  List.iter
    (fun (wname, pb, ptx, pup) ->
      let m = measure "raw" wname in
      Printf.printf "%-14s %10.1f %8d %10d   %10.1f %10d %12d\n" wname
        m.Run.avg_tx_bytes m.Run.txs m.Run.updates pb ptx pup)
    Paper.table2

(* ---------- Table 3: design-space summary ---------- *)

let table3 () =
  header "Table 3: related-work design space (qualitative, from the paper)";
  let rows =
    [
      ("EDE", "hardware", "non-fence ordering", "synchronous", "direct");
      ("ATOM/Proteus", "hardware", "non-fence ordering", "synchronous", "direct");
      ("TSOPER/ASAP", "hardware", "non-fence ordering", "asynchronous", "direct");
      ("HOOP/ReDu", "hardware", "eliminated", "asynchronous", "indirect");
      ("PMDK", "software", "fence", "synchronous", "direct");
      ("Kamino-Tx", "software", "fence", "asynchronous", "direct");
      ("LSNVMM", "software", "eliminated", "eliminated", "indirect");
      ("Pronto", "software", "eliminated", "eliminated", "direct");
      ("SpecPMT (this)", "both", "eliminated", "eliminated", "direct");
    ]
  in
  Printf.printf "%-16s %-10s %-20s %-13s %-9s\n" "system" "platform"
    "log/update ordering" "data persist" "access";
  List.iter
    (fun (a, b, c, d, e) ->
      Printf.printf "%-16s %-10s %-20s %-13s %-9s\n" a b c d e)
    rows

(* ---------- Figure 1: residual overheads of the state of the art ---------- *)

let fig1 () =
  with_compute_scale sw_compute_scale @@ fun () ->
  header
    (Printf.sprintf
       "Figure 1: execution-time overhead over no-transaction versions \
        (software rows at compute x%.0f)"
       sw_compute_scale);
  Printf.printf
    "(absolute percentages are inflated on the simulator — compute is \
     modelled,\n not executed; the ordering and the relative gaps are the \
     reproduction target)\n\n";
  Printf.printf "software (baseline: raw)%40s\n" "";
  Printf.printf "%-14s" "";
  List.iter (fun (s, _) -> Printf.printf " %12s" s) Paper.fig1_sw;
  Printf.printf " %12s\n" "SpecSPMT";
  List.iter
    (fun wname ->
      row_label wname;
      let raw = (measure "raw" wname).Run.ns in
      List.iter
        (fun s ->
          let m = measure s wname in
          Printf.printf " %11.0f%%" ((m.Run.ns -. raw) /. raw *. 100.0))
        [ "PMDK"; "Kamino-Tx"; "SPHT"; "SpecSPMT" ];
      print_newline ())
    Paper.workloads;
  row_label "paper geomean";
  List.iter (fun (_, p) -> Printf.printf " %11.0f%%" p) Paper.fig1_sw;
  Printf.printf " %11.0f%%\n" 10.0;
  Printf.printf "\nhardware (baseline: no-log)\n";
  Printf.printf "%-14s %12s %12s %12s\n" "" "EDE" "HOOP" "SpecHPMT";
  List.iter
    (fun wname ->
      row_label wname;
      let ideal = (measure "no-log" wname).Run.ns in
      List.iter
        (fun s ->
          let m = measure s wname in
          Printf.printf " %11.0f%%" ((m.Run.ns -. ideal) /. ideal *. 100.0))
        [ "EDE"; "HOOP"; "SpecHPMT" ];
      print_newline ())
    Paper.workloads;
  row_label "paper geomean";
  List.iter (fun (_, p) -> Printf.printf " %11.0f%%" p) Paper.fig1_hw;
  Printf.printf " %11.0f%%\n" 7.0

(* ---------- Figures 12/13: speedups ---------- *)

let speedup_figure ~title ~baseline ~schemes ~paper () =
  header title;
  Printf.printf "%-14s" "";
  List.iter (fun s -> Printf.printf " %12s" s) schemes;
  print_newline ();
  let per_scheme = Hashtbl.create 8 in
  List.iter
    (fun wname ->
      row_label wname;
      let base = (measure baseline wname).Run.ns in
      List.iter
        (fun s ->
          let m = measure s wname in
          let sp = base /. m.Run.ns in
          Hashtbl.replace per_scheme s
            (sp :: Option.value ~default:[] (Hashtbl.find_opt per_scheme s));
          Printf.printf " %11.2fx" sp)
        schemes;
      print_newline ())
    Paper.workloads;
  row_label "geomean";
  List.iter
    (fun s -> Printf.printf " %11.2fx" (geomean (Hashtbl.find per_scheme s)))
    schemes;
  print_newline ();
  row_label "paper geomean";
  List.iter
    (fun s ->
      match List.find_opt (fun (n, _, _) -> n = s) paper with
      | Some (_, _, g) -> Printf.printf " %11.2fx" g
      | None -> Printf.printf " %12s" "-")
    schemes;
  print_newline ();
  (* per-scheme rank correlation of the per-workload series vs the paper *)
  row_label "shape (rho)";
  List.iter
    (fun s ->
      match List.find_opt (fun (n, _, _) -> n = s) paper with
      | Some (_, series, _) ->
          let ours = List.rev (Hashtbl.find per_scheme s) in
          Printf.printf " %12.2f" (spearman ours series)
      | None -> Printf.printf " %12s" "-")
    schemes;
  print_newline ()

let fig12 () =
  with_compute_scale sw_compute_scale @@ fun () ->
  speedup_figure
    ~title:
      (Printf.sprintf
         "Figure 12: speedup over PMDK (software schemes, compute x%.0f)"
         sw_compute_scale)
    ~baseline:"PMDK"
    ~schemes:[ "Kamino-Tx"; "SPHT"; "SpecSPMT-DP"; "SpecSPMT" ]
    ~paper:Paper.fig12 ()

let fig13 =
  speedup_figure
    ~title:"Figure 13: speedup over EDE (simulated hardware schemes)"
    ~baseline:"EDE"
    ~schemes:[ "HOOP"; "SpecHPMT-DP"; "SpecHPMT"; "no-log" ]
    ~paper:Paper.fig13

(* ---------- Figure 14: write-traffic reduction ---------- *)

let fig14 () =
  header "Figure 14: reduction of PM write traffic over EDE (higher is better)";
  let schemes = [ "HOOP"; "SpecHPMT-DP"; "SpecHPMT"; "no-log" ] in
  Printf.printf "%-14s" "";
  List.iter (fun s -> Printf.printf " %12s" s) schemes;
  print_newline ();
  let per_scheme = Hashtbl.create 8 in
  List.iter
    (fun wname ->
      row_label wname;
      let base = float_of_int (measure "EDE" wname).Run.pm_write_lines in
      List.iter
        (fun s ->
          let m = measure s wname in
          let red =
            (base -. float_of_int m.Run.pm_write_lines) /. base *. 100.0
          in
          Hashtbl.replace per_scheme s
            (red :: Option.value ~default:[] (Hashtbl.find_opt per_scheme s));
          Printf.printf " %11.1f%%" red)
        schemes;
      print_newline ())
    Paper.workloads;
  row_label "mean";
  List.iter
    (fun s ->
      let l = Hashtbl.find per_scheme s in
      Printf.printf " %11.1f%%"
        (List.fold_left ( +. ) 0.0 l /. float (List.length l)))
    schemes;
  print_newline ();
  row_label "paper mean";
  List.iter
    (fun s ->
      match List.find_opt (fun (n, _, _) -> n = s) Paper.fig14 with
      | Some (_, _, g) -> Printf.printf " %11.1f%%" g
      | None -> Printf.printf " %12s" "-")
    schemes;
  print_newline ()

(* ---------- Figure 15: memory-consumption sensitivity ---------- *)

let fig15 () =
  header
    "Figure 15: SpecHPMT speedup and traffic reduction vs memory budget \
     (epoch-size sweep)";
  Printf.printf "%-26s %12s %14s %16s %12s\n" "epoch / budget" "mem vs EDE"
    "avg speedup" "traffic reduct." "reclaims";
  let sweep =
    [
      (16 * 1024, 64 * 1024);
      (64 * 1024, 256 * 1024);
      (256 * 1024, 1024 * 1024);
      (1024 * 1024, 4 * 1024 * 1024);
      (2 * 1024 * 1024, 8 * 1024 * 1024);
    ]
  in
  List.iter
    (fun (epoch_bytes, budget) ->
      let speedups = ref [] and reducts = ref [] in
      let mem_over = ref 0.0 and reclaims = ref 0 in
      List.iter
        (fun wname ->
          let ede = measure "EDE" wname in
          let stats = ref None in
          let m =
            Run.run_custom
              ~make:(fun heap ->
                let b, t =
                  Spec_hw.create heap
                    {
                      Spec_hw.hw =
                        {
                          Hwconfig.default with
                          Hwconfig.epoch_max_bytes = epoch_bytes;
                          log_budget_bytes = budget;
                        };
                      data_persist = false;
                      hotness = Spec_hw.Tlb_counters;
                    }
                in
                stats := Some t;
                b)
              ~name:"SpecHPMT-sweep" (workload wname) !scale
          in
          let t = Option.get !stats in
          speedups := (ede.Run.ns /. m.Run.ns) :: !speedups;
          reducts :=
            (float_of_int (ede.Run.pm_write_lines - m.Run.pm_write_lines)
            /. float_of_int ede.Run.pm_write_lines
            *. 100.0)
            :: !reducts;
          (* memory consumption: peak speculative log vs the EDE-run's
             persistent footprint *)
          mem_over :=
            !mem_over
            +. (float_of_int (Spec_hw.peak_log_bytes t)
               /. float_of_int (64 * ede.Run.pm_write_lines)
               *. 100.0);
          reclaims := !reclaims + Spec_hw.reclaims t)
        Paper.workloads;
      let n = float_of_int (List.length Paper.workloads) in
      Printf.printf "%10d KiB / %6d KiB %11.1f%% %13.2fx %15.1f%% %12d\n"
        (epoch_bytes / 1024) (budget / 1024)
        (!mem_over /. n)
        (geomean !speedups)
        (List.fold_left ( +. ) 0.0 !reducts /. n)
        !reclaims)
    sweep;
  Printf.printf
    "paper: 2.6%% extra memory -> 1.12x; 15%% -> 1.36x; 20%% -> 1.4x; small \
     epochs degrade vacation by up to 26%%\n"

(* ---------- Section 4 ablation: hash-table log ---------- *)

let hashlog () =
  with_compute_scale sw_compute_scale @@ fun () ->
  header "Section 4 ablation: sequential log vs hash-table log";
  Printf.printf "%-14s %14s %14s %10s\n" "" "SpecSPMT (ns)" "hashlog (ns)"
    "slowdown";
  let slows = ref [] in
  List.iter
    (fun wname ->
      let seq = measure "SpecSPMT" wname in
      let hash = measure "Spec-hashlog" wname in
      let slow = hash.Run.ns /. seq.Run.ns in
      slows := slow :: !slows;
      Printf.printf "%-14s %14.0f %14.0f %9.2fx\n" wname seq.Run.ns
        hash.Run.ns slow)
    Paper.workloads;
  Printf.printf "%-14s %29s %9.2fx   (paper: %.1fx)\n" "geomean" ""
    (geomean !slows) Paper.hashlog_slowdown

(* ---------- Ablation: compute-intensity sensitivity ---------- *)

let ablation () =
  header
    "Ablation: overhead sensitivity to compute intensity (DESIGN.md; the \
     real-machine vs simulator gap)";
  Printf.printf "%-10s %14s %14s %14s\n" "compute x" "PMDK overhead"
    "SpecSPMT ovh." "Spec speedup";
  List.iter
    (fun k ->
      Workload.set_compute_scale k;
      let saved = Hashtbl.copy cache in
      Hashtbl.reset cache;
      let w = "vacation-low" in
      let raw = (measure "raw" w).Run.ns in
      let pmdk = (measure "PMDK" w).Run.ns in
      let spec = (measure "SpecSPMT" w).Run.ns in
      Printf.printf "%-10.1f %13.0f%% %13.0f%% %13.2fx\n" k
        ((pmdk -. raw) /. raw *. 100.0)
        ((spec -. raw) /. raw *. 100.0)
        (pmdk /. spec);
      Hashtbl.reset cache;
      Hashtbl.iter (fun k v -> Hashtbl.replace cache k v) saved)
    [ 0.0; 1.0; 4.0; 16.0 ];
  Workload.set_compute_scale 1.0

(* ---------- Design-choice sweeps (DESIGN.md ablations) ---------- *)

let sweeps () =
  header "Design-choice sweeps";
  (* 1: software log-block size — small blocks chain constantly, large
     ones waste reclamation granularity *)
  Printf.printf "\nlog block size (SpecSPMT, vacation-high):\n";
  Printf.printf "%-12s %12s %12s %10s\n" "block" "sim ms" "PM wlines"
    "log KiB";
  List.iter
    (fun block_bytes ->
      let m =
        Run.run_custom
          ~make:(fun heap ->
            create_scheme
              ~spec_params:
                { Spec_soft.default_params with Spec_soft.block_bytes }
              heap "SpecSPMT")
          ~name:"SpecSPMT-block" (workload "vacation-high") !scale
      in
      Printf.printf "%8d B   %12.3f %12d %10d\n" block_bytes
        (m.Run.ns /. 1e6) m.Run.pm_write_lines (m.Run.log_bytes / 1024))
    [ 512; 1024; 4096; 16384 ];
  (* 2: software reclamation threshold — the paper's 3x-memory cost
     against reclamation frequency *)
  Printf.printf "\nreclamation threshold (SpecSPMT, intruder):\n";
  Printf.printf "%-12s %12s %12s %12s\n" "threshold" "sim ms" "log KiB"
    "bg ms";
  List.iter
    (fun reclaim_threshold ->
      let m =
        Run.run_custom
          ~make:(fun heap ->
            create_scheme
              ~spec_params:
                {
                  Spec_soft.default_params with
                  Spec_soft.reclaim = Spec_soft.Threshold reclaim_threshold;
                }
              heap "SpecSPMT")
          ~name:"SpecSPMT-reclaim" (workload "intruder") !scale
      in
      Printf.printf "%8d KiB %12.3f %12d %12.3f\n" (reclaim_threshold / 1024)
        (m.Run.ns /. 1e6) (m.Run.log_bytes / 1024) (m.Run.bg_ns /. 1e6))
    [ 64 * 1024; 256 * 1024; 1024 * 1024; 4 * 1024 * 1024 ];
  (* 3: hardware hot threshold — when does a page deserve a bulk copy *)
  Printf.printf "\nhot threshold (SpecHPMT, genome):\n";
  Printf.printf "%-10s %12s %12s %12s %12s\n" "threshold" "sim ms"
    "transitions" "hot writes" "PM wlines";
  List.iter
    (fun hot_threshold ->
      let stats = ref None in
      let m =
        Run.run_custom
          ~make:(fun heap ->
            let b, t =
              Spec_hw.create heap
                {
                  Spec_hw.hw = { Hwconfig.default with Hwconfig.hot_threshold };
                  data_persist = false;
                  hotness = Spec_hw.Tlb_counters;
                }
            in
            stats := Some t;
            b)
          ~name:"SpecHPMT-hot" (workload "genome") !scale
      in
      let t = Option.get !stats in
      Printf.printf "%-10d %12.3f %12d %12d %12d\n" hot_threshold
        (m.Run.ns /. 1e6) (Spec_hw.transitions t) (Spec_hw.hot_writes t)
        m.Run.pm_write_lines)
    [ 2; 4; 7; 15; 31 ]

(* ---------- Extension: software-offloaded hotness (Section 6) ---------- *)

let hotness () =
  header
    "Extension: TLB counters vs software-sampled hotness detection \
     (Section 6, Alternative Designs)";
  Printf.printf
    "(with transactional setup the working set is speculative before the \
     measured phase\n starts, so the detectors mostly agree — the cold-write \
     column shows how little\n detection work remains; the modes diverge on \
     cold-start access patterns)\n";
  Printf.printf "%-14s %-22s %12s %12s %12s %12s\n" "workload" "detector"
    "sim ms" "transitions" "hot writes" "cold writes";
  List.iter
    (fun wname ->
      List.iter
        (fun (label, hotness) ->
          let stats = ref None in
          let m =
            Run.run_custom
              ~make:(fun heap ->
                let b, t =
                  Spec_hw.create heap
                    { Spec_hw.hw = Hwconfig.default; data_persist = false; hotness }
                in
                stats := Some t;
                b)
              ~name:label (workload wname) !scale
          in
          let t = Option.get !stats in
          Printf.printf "%-14s %-22s %12.3f %12d %12d %12d\n" wname label
            (m.Run.ns /. 1e6) (Spec_hw.transitions t) (Spec_hw.hot_writes t)
            (Spec_hw.cold_writes t))
        [
          ("tlb-counters", Spec_hw.Tlb_counters);
          ("sampled/500", Spec_hw.Software_sampled { decay_period = 500 });
          ("sampled/5000", Spec_hw.Software_sampled { decay_period = 5000 });
          (* no decay: every page eventually looks hot — the over-eager
             extreme of software detection *)
          ( "sampled/no-decay",
            Spec_hw.Software_sampled { decay_period = max_int } );
        ])
    [ "genome"; "kmeans-high"; "vacation-high" ];
  (* a cold-start pattern with no setup coverage: a skewed working set
     re-visited with poor temporal locality, where the detectors differ *)
  Printf.printf "\nsynthetic cold-start (skewed revisits, no setup coverage):\n";
  List.iter
    (fun (label, hotness) ->
      let pm = Pmem.create ~seed:9 Pmem_config.default in
      let heap = Heap.create pm in
      let b, t =
        Spec_hw.create heap
          { Spec_hw.hw = Hwconfig.default; data_persist = false; hotness }
      in
      let region = Heap.alloc heap (512 * 4096) in
      let rand = Stdlib.Random.State.make [| 7 |] in
      let before = Stats.copy (Pmem.stats pm) in
      for r = 0 to 20_000 do
        (* one hot page in ten: revisited every ~200 writes, too sparse to
           survive TLB eviction but dense enough for persistent counters *)
        let page = Stdlib.Random.State.int rand 200 in
        let page = if page < 20 then page else 20 + (r mod 480) in
        b.Ctx.run_tx (fun ctx ->
            ctx.Ctx.write
              (region + (page * 4096) + (r mod 512 * 8))
              r)
      done;
      let d = Stats.diff before (Pmem.stats pm) in
      Printf.printf "%-14s %-22s %12.3f %12d %12d %12d\n" "cold-start" label
        (d.Stats.ns /. 1e6) (Spec_hw.transitions t) (Spec_hw.hot_writes t)
        (Spec_hw.cold_writes t))
    [
      ("tlb-counters", Spec_hw.Tlb_counters);
      ("sampled/500", Spec_hw.Software_sampled { decay_period = 500 });
      ("sampled/5000", Spec_hw.Software_sampled { decay_period = 5000 });
      ( "sampled/no-decay",
        Spec_hw.Software_sampled { decay_period = max_int } );
    ]

(* ---------- Extension: what would eADR buy? (Section 5.3.1) ---------- *)

let eadr () =
  header
    "Extension: persistent caches (eADR, Section 5.3.1) — overhead of each \
     scheme with and without";
  Printf.printf
    "(the paper argues eADR's cost limits adoption; SpecPMT gets most of \
     the benefit on ADR hardware)\n";
  Printf.printf "%-14s %14s %14s\n" "" "ADR overhead" "eADR overhead";
  let w = workload "vacation-high" in
  let run ~eadr scheme =
    Run.run_custom
      ~make:(fun heap -> create_scheme heap scheme)
      ~name:scheme w !scale
    |> fun m -> ignore eadr; m
  in
  ignore run;
  let measure_with ~eadr scheme =
    let pm =
      Pmem.create ~seed:1 { Pmem_config.default with Pmem_config.eadr }
    in
    let heap = Heap.create pm in
    let backend = create_scheme heap scheme in
    let prepared = w.Workload.prepare !scale heap backend in
    let before = Stats.copy (Pmem.stats pm) in
    prepared.Workload.work ();
    backend.Ctx.drain ();
    (Stats.diff before (Pmem.stats pm)).Stats.ns
  in
  let raw_adr = measure_with ~eadr:false "raw" in
  let raw_eadr = measure_with ~eadr:true "raw" in
  List.iter
    (fun scheme ->
      let adr = measure_with ~eadr:false scheme in
      let e = measure_with ~eadr:true scheme in
      Printf.printf "%-14s %13.0f%% %13.0f%%\n" scheme
        ((adr -. raw_adr) /. raw_adr *. 100.0)
        ((e -. raw_eadr) /. raw_eadr *. 100.0))
    [ "PMDK"; "SpecSPMT"; "EDE"; "SpecHPMT"; "no-log" ]

(* ---------- Extension: recovery latency vs log size ---------- *)

let recovery () =
  header
    "Extension: recovery latency vs speculative-log size (not in the      paper; motivates timely reclamation)";
  Printf.printf "%-10s %-14s %12s %12s %14s\n" "txs" "reclamation"
    "log KiB" "recovery ms" "full run ms";
  List.iter
    (fun (txs, reclaim) ->
      let pm = Pmem.create ~seed:5 Pmem_config.default in
      let heap = Heap.create pm in
      let backend =
        create_scheme
          ~spec_params:
            {
              Spec_soft.default_params with
              Spec_soft.reclaim =
                Spec_soft.Threshold (if reclaim then 256 * 1024 else max_int);
            }
          heap "SpecSPMT"
      in
      let base = Heap.alloc heap (64 * 8) in
      for r = 0 to txs - 1 do
        backend.Ctx.run_tx (fun ctx ->
            for i = 0 to 7 do
              ctx.Ctx.write (base + (((r + i) mod 64) * 8)) (r + i)
            done)
      done;
      let run_ns = (Pmem.stats pm).Stats.ns in
      let log_kib = backend.Ctx.log_footprint () / 1024 in
      Pmem.crash pm;
      let before = Stats.copy (Pmem.stats pm) in
      backend.Ctx.recover ();
      let d = Stats.diff before (Pmem.stats pm) in
      Printf.printf "%-10d %-14s %12d %12.3f %14.3f\n" txs
        (if reclaim then "256 KiB cap" else "off")
        log_kib (d.Stats.ns /. 1e6) (run_ns /. 1e6))
    [
      (1_000, false);
      (4_000, false);
      (16_000, false);
      (16_000, true);
      (64_000, true);
    ]

(* ---------- Extension: coalescing recovery & adaptive reclamation ---------- *)

let mode_name = function
  | Spec_soft.Coalesce -> "coalesce"
  | Spec_soft.Replay -> "replay"

(* One crash-recovery measurement on a dedicated pool: [cells] 8-byte
   cells are each overwritten ~[rounds] times (8 cells per transaction,
   reclamation off so the whole overwrite history stays in the log), the
   device crashes, and recovery runs in [mode].  Live cells sit one per
   cache line (the scattered-heap-object layout real applications
   recover, not a packed array), so the apply phase pays one line drain
   per live cell. *)
let recovery_case ~cells ~rounds ~mode =
  let pm = Pmem.create ~seed:7 Pmem_config.default in
  let heap = Heap.create pm in
  let backend =
    create_scheme
      ~spec_params:
        {
          Spec_soft.default_params with
          Spec_soft.reclaim = Spec_soft.Threshold max_int;
          Spec_soft.recovery = mode;
        }
      heap "SpecSPMT"
  in
  let stride = 64 in
  let base = Heap.alloc heap (cells * stride) in
  let per_tx = 8 in
  let txs = cells * rounds / per_tx in
  for r = 0 to txs - 1 do
    backend.Ctx.run_tx (fun ctx ->
        for i = 0 to per_tx - 1 do
          let c = ((r * per_tx) + i) mod cells in
          ctx.Ctx.write (base + (c * stride)) ((r * per_tx) + i)
        done)
  done;
  let log_kib = backend.Ctx.log_footprint () / 1024 in
  Pmem.crash pm;
  Obs.Metrics.reset_all ();
  let before = Stats.copy (Pmem.stats pm) in
  backend.Ctx.recover ();
  let d = Stats.diff before (Pmem.stats pm) in
  let counter n = Obs.Metrics.counter_value (Obs.Metrics.counter n) in
  ( log_kib,
    d.Stats.ns,
    counter "recover.data_writes",
    counter "recover.entries_scanned" )

let sweep_row ~experiment ~mode ~cells ~rounds
    (log_kib, ns, writes, scanned) =
  record_sweep
    (Json.Obj
       [
         ("experiment", Json.Str experiment);
         ("mode", Json.Str (mode_name mode));
         ("cells", Json.Int cells);
         ("rounds", Json.Int rounds);
         ("log_kib", Json.Int log_kib);
         ("recovery_ns", Json.Float ns);
         ("data_writes", Json.Int writes);
         ("entries_scanned", Json.Int scanned);
       ])

let recovery_sweep () =
  header
    "Extension: coalescing recovery — O(live set), not O(log)      (DESIGN.md, \"Recovery & reclamation performance model\")";
  (* 1: stale-overwrite sweep, fixed live set.  The log grows 10x; the
     live set does not.  Replay recovery pays per log entry; coalesced
     recovery pays once per live cell, so its time must stay flat within
     noise (the shape criterion printed at the end). *)
  let cells = 256 in
  Printf.printf
    "\nstale-overwrite sweep (%d live cells; reclamation off):\n" cells;
  Printf.printf "%-8s %10s | %12s %12s | %12s %12s\n" "rounds" "log KiB"
    "replay ms" "writes" "coalesce ms" "writes";
  let stale_rounds = [ 1; 2; 5; 10 ] in
  let shape =
    List.map
      (fun rounds ->
        let measure mode =
          let r = recovery_case ~cells ~rounds ~mode in
          sweep_row ~experiment:"stale-sweep" ~mode ~cells ~rounds r;
          r
        in
        let _, rns, rwrites, _ = measure Spec_soft.Replay in
        let kib, cns, cwrites, _ = measure Spec_soft.Coalesce in
        Printf.printf "%-8d %10d | %12.3f %12d | %12.3f %12d\n" rounds kib
          (rns /. 1e6) rwrites (cns /. 1e6) cwrites;
        (rns, cns, rwrites, cwrites))
      stale_rounds
  in
  let first = List.hd shape and last = List.nth shape (List.length shape - 1) in
  let ns1, cns1, rw1, _ = first and ns10, cns10, rw10, cw10 = last in
  Printf.printf
    "shape: 10x more stale log -> replay writes %dx more cells (%d -> %d), \
     coalesced stays at %d;\n       recovery time: replay %.2fx, coalesced \
     %.2fx (flat: only the streaming scan grows)\n"
    (rw10 / max 1 rw1) rw1 rw10 cw10 (ns10 /. ns1) (cns10 /. cns1);
  (* 2: live-set sweep, fixed overwrite factor — coalesced recovery cost
     should scale with the live set, its only remaining driver *)
  Printf.printf "\nlive-set sweep (8 overwrites per cell, coalesced):\n";
  Printf.printf "%-8s %10s %12s %12s\n" "cells" "log KiB" "recovery ms"
    "writes";
  List.iter
    (fun cells ->
      let rounds = 8 in
      let ((kib, ns, writes, _) as r) =
        recovery_case ~cells ~rounds ~mode:Spec_soft.Coalesce
      in
      sweep_row ~experiment:"live-sweep" ~mode:Spec_soft.Coalesce ~cells
        ~rounds r;
      Printf.printf "%-8d %10d %12.3f %12d\n" cells kib (ns /. 1e6) writes)
    [ 64; 256; 1024 ];
  (* 3: adaptive vs fixed-threshold reclamation on a real workload *)
  Printf.printf "\nreclamation policy (SpecSPMT, intruder):\n";
  Printf.printf "%-22s %10s %10s %10s %8s %9s\n" "policy" "sim ms" "bg ms"
    "log KiB" "cycles" "deferred";
  List.iter
    (fun (label, policy) ->
      let m =
        Run.run_custom
          ~make:(fun heap ->
            create_scheme
              ~spec_params:
                { Spec_soft.default_params with Spec_soft.reclaim = policy }
              heap "SpecSPMT")
          ~name:("SpecSPMT-" ^ label) (workload "intruder") !scale
      in
      let counter n = Obs.Metrics.counter_value (Obs.Metrics.counter n) in
      let cycles = counter "reclaim.cycles" in
      let deferred = counter "reclaim.deferred_bg_budget" in
      record_sweep
        (Json.Obj
           [
             ("experiment", Json.Str "reclaim-policy");
             ("policy", Json.Str label);
             ("ns", Json.Float m.Run.ns);
             ("bg_ns", Json.Float m.Run.bg_ns);
             ("log_kib", Json.Int (m.Run.log_bytes / 1024));
             ("reclaim_cycles", Json.Int cycles);
             ("deferred_bg_budget", Json.Int deferred);
           ]);
      Printf.printf "%-22s %10.3f %10.3f %10d %8d %9d\n" label
        (m.Run.ns /. 1e6) (m.Run.bg_ns /. 1e6) (m.Run.log_bytes / 1024)
        cycles deferred)
    [
      ("threshold-1MiB", Spec_soft.default_params.Spec_soft.reclaim);
      ("threshold-256KiB", Spec_soft.Threshold (256 * 1024));
      ("adaptive", Spec_soft.adaptive_policy);
    ]

(* ---------- Extension: service layer (group commit) ---------- *)

(* Batch-size sweep over the sharded KV service: the same closed-loop
   load at every batch_max, so the only thing that moves is how many
   transactions share one seal fence.  Fences per write must fall
   monotonically towards 1/batch_max — the group-commit amortization of
   SpecPMT's last ordering point.  Each JSON row is one Loadgen report
   (additive `svc` top-level key). *)
let svc () =
  header
    "Extension: sharded KV service — group commit amortizes the per-commit fence (lib/svc)";
  let shards = 4 and depth = 64 and keys = 2048 and clients = 48 in
  let ops =
    match !scale with
    | Workload.Quick -> 2_000
    | Workload.Small -> 8_000
    | Workload.Full -> 24_000
  in
  let lg_cfg =
    { Svc.Loadgen.clients; ops; read_frac = 0.5; skew = 0.9; seed = 42 }
  in
  let run_one batch_max =
    let pm = Pmem.create ~seed:42 Pmem_config.default in
    let heap = Heap.create pm in
    let svc =
      Svc.Service.create heap { Svc.Service.shards; batch_max; depth; keys }
    in
    Svc.Loadgen.run svc lg_cfg
  in
  Printf.printf
    "\nbatch-size sweep (%d shards, %d clients, depth %d, %d ops, 50%% \
     reads, zipf 0.9):\n"
    shards clients depth ops;
  Printf.printf "%-6s %14s %10s %10s %10s %10s %10s\n" "batch" "fences/write"
    "p50 ns" "p90 ns" "p99 ns" "ops/ms" "rejected";
  let open Svc.Loadgen in
  (* each sweep point is its own service on its own device — fan them
     over the pool, then print and record in batch order *)
  let reports = Par.map_list ~jobs:(max 1 !jobs) run_one [ 1; 2; 4; 8; 16 ] in
  let reports =
    List.map2
      (fun batch_max r ->
        record_svc (Svc.Loadgen.report_to_json r);
        let q p = Obs.Hist.quantile r.latency p in
        Printf.printf "%-6d %14.3f %10d %10d %10d %10.1f %10d\n" batch_max
          r.fences_per_write (q 0.5) (q 0.9) (q 0.99)
          (List.fold_left (fun a s -> a +. s.sh_ops_per_ms) 0.0 r.shards)
          r.rejected;
        r)
      [ 1; 2; 4; 8; 16 ] reports
  in
  let fpw = List.map (fun r -> r.fences_per_write) reports in
  let monotone =
    List.for_all2 (fun a b -> b <= a +. 1e-9) fpw (List.tl fpw @ [ 0.0 ])
  in
  Printf.printf
    "shape: fences/write %s monotonically (%.3f -> %.3f over 1 -> 16; \
     ideal 1/K)\n"
    (if monotone then "falls" else "DOES NOT fall")
    (List.hd fpw)
    (List.nth fpw (List.length fpw - 1));
  (* per-shard view at one operating point *)
  let r8 = List.nth reports 3 in
  Printf.printf "\nper-shard (batch_max 8):\n";
  Printf.printf "%-6s %10s %10s %10s %10s %12s\n" "shard" "ops" "ops/ms"
    "p99 ns" "rejected" "max inflight";
  List.iter
    (fun s ->
      Printf.printf "%-6d %10d %10.1f %10d %10d %12d\n" s.sh_id s.sh_ops
        s.sh_ops_per_ms
        (Obs.Hist.quantile s.sh_latency 0.99)
        s.sh_rejected s.sh_max_inflight)
    r8.shards

(* Domain sweep over the shard-per-domain data plane: the same
   deterministic op stream at 1, 2 and 4 worker domains.  The invariant
   section of each report (ops, fences, checksums) must not move; the
   modelled makespan — the slowest per-domain device clock — must
   shrink as shards spread over more domains.  Wall clock is reported
   too but only meaningful on a multi-core host; the runs stay serial
   (each already spawns its own domains).  Additive `svc_scale` JSON
   key, one Dataplane report per point. *)
let svc_scale () =
  header
    "Extension: shard-per-domain data plane — domain sweep (lib/svc/dataplane)";
  let shards = 8 and batch_max = 8 and depth = 64 and keys = 2048 in
  let ops =
    match !scale with
    | Workload.Quick -> 2_000
    | Workload.Small -> 6_000
    | Workload.Full -> 20_000
  in
  let lg_cfg =
    (* write-heavy: the log/fence path is what domains parallelize *)
    { Svc.Loadgen.clients = 48; ops; read_frac = 0.1; skew = 0.9; seed = 42 }
  in
  let stream = Svc.Loadgen.op_stream lg_cfg ~keys in
  let domain_counts =
    List.filter (fun d -> d <= shards) [ 1; 2; 4 ]
  in
  Printf.printf
    "\ndomain sweep (%d shards, batch_max %d, depth %d, %d ops, 90%% \
     writes, zipf 0.9):\n"
    shards batch_max depth ops;
  Printf.printf "%-8s %12s %14s %12s %12s %10s\n" "domains" "wall ops/s"
    "modelled ms" "speedup" "p99 wall ns" "stalls";
  let results =
    List.map
      (fun domains ->
        let pm = Pmem.create ~seed:42 Pmem_config.default in
        let heap = Heap.create pm in
        let cfg =
          {
            Svc.Dataplane.shards;
            domains;
            batch_max;
            depth;
            keys;
            log_region_bytes = Svc.Dataplane.default_log_region_bytes;
          }
        in
        let plane = Svc.Dataplane.create heap cfg in
        let r = Svc.Dataplane.run plane stream in
        record_svc_scale (Svc.Dataplane.report_to_json cfg r);
        (domains, r))
      domain_counts
  in
  let base_ns =
    match results with
    | (_, r1) :: _ -> r1.Svc.Dataplane.sim_ns_max
    | [] -> 1.0
  in
  List.iter
    (fun (domains, r) ->
      let open Svc.Dataplane in
      Printf.printf "%-8d %12.0f %14.3f %11.2fx %12d %10d\n" domains
        r.wall_ops_per_sec (r.sim_ns_max /. 1e6)
        (base_ns /. r.sim_ns_max)
        (Obs.Hist.quantile r.wall_latency 0.99)
        r.router_stalls)
    results;
  (* cross-check: the invariant half of every report must be identical *)
  let fingerprint (_, r) =
    let open Svc.Dataplane in
    (r.total_ops, r.reads_sum, r.table_crc, r.fences, r.batches,
     r.sealed_records)
  in
  let fp0 = fingerprint (List.hd results) in
  let same = List.for_all (fun p -> fingerprint p = fp0) results in
  Printf.printf
    "shape: invariant report %s across domain counts; modelled makespan \
     %.2fx at %d domains\n"
    (if same then "identical" else "DIVERGES")
    (match List.rev results with
    | (_, last) :: _ -> base_ns /. last.Svc.Dataplane.sim_ns_max
    | [] -> 1.0)
    (match List.rev results with (d, _) :: _ -> d | [] -> 1)

(* ---------- Extension: open-loop YCSB suite ---------- *)

(* Offered load vs goodput on the sharded KV service: a saturation probe
   measures capacity, a rate sweep above and below it shows the knee
   (goodput pins at capacity while offered load rises and admission
   sheds appear), and the standard YCSB mixes run at half capacity.
   Every Openloop report is a pure function of (stream, config), so the
   sweep fans out over the domain pool and the JSON `ycsb` key's
   invariant section is byte-identical for any --jobs.  Latency is
   CO-safe: measured from each op's scheduled arrival, so backlogged
   ops keep accruing (see lib/svc/openloop.mli). *)
let ycsb () =
  header
    "Extension: open-loop YCSB — offered load vs goodput, the saturation \
     knee, and recovery under load (lib/svc/openloop)";
  let shards = 4 and batch_max = 8 and depth = 32 and keys = 1024 in
  let ops =
    match !scale with
    | Workload.Quick -> 2_000
    | Workload.Small -> 6_000
    | Workload.Full -> 16_000
  in
  let seed = 42 in
  let stream_of mix =
    Svc.Scenario.op_stream (Svc.Scenario.spec mix) ~ops ~keys ~seed
  in
  let run_open ~rate stream =
    Obs.Metrics.reset_all ();
    let pm = Pmem.create ~seed Pmem_config.default in
    let heap = Heap.create pm in
    let svc =
      Svc.Service.create heap { Svc.Service.shards; batch_max; depth; keys }
    in
    Svc.Openloop.run svc
      { Svc.Openloop.rate; arrivals = Svc.Openloop.Poisson; seed = 7 }
      stream
  in
  let open Svc.Openloop in
  let q r p = Obs.Hist.quantile r.latency p in
  (* deterministic identity of one open-loop run — the invariant rows *)
  let inv r =
    [
      ("ops", Json.Int r.ops);
      ("reads", Json.Int r.reads);
      ("writes", Json.Int r.writes);
      ("rmws", Json.Int r.rmws);
      ("scans", Json.Int r.scans);
      ("attempts", Json.Int r.attempts);
      ("rejects", Json.Int r.rejects);
      ("max_backlog", Json.Int r.max_backlog);
      ("fences", Json.Int r.fences);
    ]
  in
  (* 1: capacity — the saturation probe on mix A *)
  let a_stream = stream_of Svc.Scenario.A in
  let cap_r = run_open ~rate:0.0 a_stream in
  let cap = cap_r.goodput_ops_per_sec in
  Printf.printf
    "\nmeasured capacity (saturation probe, mix A, %d ops): %.0f ops/s\n" ops
    cap;
  (* 2: rate sweep around the knee — each point its own service *)
  let mults = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let sweep =
    Par.map_list ~jobs:(max 1 !jobs)
      (fun m -> run_open ~rate:(m *. cap) a_stream)
      mults
  in
  Printf.printf
    "\nrate sweep (mix A, %d shards x depth %d, batch_max %d):\n" shards
    depth batch_max;
  Printf.printf "%-8s %12s %12s %8s %8s %10s %10s\n" "x cap" "offered/s"
    "goodput/s" "rejects" "backlog" "p50 ns" "p99 ns";
  List.iter2
    (fun m r ->
      Printf.printf "%-8.2f %12.0f %12.0f %8d %8d %10d %10d\n" m
        r.offered_ops_per_sec r.goodput_ops_per_sec r.rejects r.max_backlog
        (q r 0.5) (q r 0.99))
    mults sweep;
  let over = List.nth sweep (List.length sweep - 1) in
  Printf.printf
    "shape: past the knee goodput %s at capacity (%.0f <= 1.1 x %.0f) and \
     admission %s (%d rejects)\n"
    (if over.goodput_ops_per_sec <= 1.1 *. cap then "pins" else "DOES NOT pin")
    over.goodput_ops_per_sec cap
    (if over.rejects > 0 then "sheds" else "DOES NOT shed")
    over.rejects;
  (* 3: every YCSB mix at half capacity *)
  let mix_reports =
    Par.map_list ~jobs:(max 1 !jobs)
      (fun mix -> run_open ~rate:(0.5 *. cap) (stream_of mix))
      Svc.Scenario.all_mixes
  in
  Printf.printf "\nmixes at 0.5x capacity (%.0f ops/s offered):\n"
    (0.5 *. cap);
  Printf.printf "%-4s %7s %7s %6s %6s %12s %10s %10s %8s\n" "mix" "reads"
    "writes" "rmws" "scans" "goodput/s" "p99 ns" "fences/op" "rejects";
  List.iter2
    (fun mix r ->
      Printf.printf "%-4s %7d %7d %6d %6d %12.0f %10d %10.3f %8d\n"
        (Svc.Scenario.mix_to_string mix)
        r.reads r.writes r.rmws r.scans r.goodput_ops_per_sec (q r 0.99)
        r.fences_per_op r.rejects)
    Svc.Scenario.all_mixes mix_reports;
  (* 4: the data plane serves scenario streams with an invariant report
     independent of the domain count — mix F (rmw under group commit)
     and mix E (ordered scans over the per-shard Pbtree index) *)
  let dp_fingerprint mix domains =
    let pm = Pmem.create ~seed:21 Pmem_config.default in
    let heap = Heap.create pm in
    let cfg =
      {
        Svc.Dataplane.shards;
        domains;
        batch_max;
        depth;
        keys;
        log_region_bytes = Svc.Dataplane.default_log_region_bytes;
      }
    in
    let plane = Svc.Dataplane.create heap cfg in
    let r = Svc.Dataplane.run plane (stream_of mix) in
    let open Svc.Dataplane in
    ( r.total_ops,
      (r.reads, r.writes, r.rmws, r.scans),
      r.reads_sum,
      r.table_crc,
      r.fences,
      r.sealed_records )
  in
  let dp_same =
    List.for_all
      (fun mix -> dp_fingerprint mix 1 = dp_fingerprint mix 2)
      [ Svc.Scenario.F; Svc.Scenario.E ]
  in
  Printf.printf
    "\ndata plane (mixes F, E): invariant reports %s across 1 vs 2 domains\n"
    (if dp_same then "identical" else "DIVERGE");
  (* 5: recovery under load — crash the plane mid-traffic on a read/write
     mix, audit acked-durable/unacked-invisible, resume on the backlog *)
  let rec_stream = stream_of Svc.Scenario.B in
  let rv =
    let pm = Pmem.create ~seed:21 Pmem_config.default in
    let heap = Heap.create pm in
    let cfg =
      {
        Svc.Dataplane.shards;
        domains = 2;
        batch_max;
        depth;
        keys;
        log_region_bytes = Svc.Dataplane.default_log_region_bytes;
      }
    in
    Svc.Openloop.recovery_under_load heap cfg rec_stream ~fuse_batches:20
  in
  Printf.printf "\n%s" (Format.asprintf "%a" Svc.Openloop.pp_recovery rv);
  (* 6: shadow mirror on/off — mix E (scan-heavy) through the serial
     service in a closed loop, same stream both ways.  Batch
     composition here is a pure function of the stream (submit until a
     shed, then drain), so the acked count, completion checksum and
     fence count must be byte-identical; only the device clock — which
     with the mirror no longer pays descent reads — and the host clock
     may move. *)
  let e_stream = stream_of Svc.Scenario.E in
  let run_e shadow =
    Obs.Metrics.reset_all ();
    let pm = Pmem.create ~seed Pmem_config.default in
    let heap = Heap.create pm in
    let svc =
      Svc.Service.create ~shadow heap
        { Svc.Service.shards; batch_max; depth; keys }
    in
    let acked = ref 0 and cksum = ref 0 in
    let absorb () =
      List.iter
        (fun c ->
          incr acked;
          cksum := ((!cksum * 31) + c.Svc.Service.value) land max_int)
        (Svc.Service.drain svc)
    in
    let st0 = Stats.copy (Pmem.stats pm) in
    let w0 = Unix.gettimeofday () in
    Array.iter
      (fun (key, op) ->
        let rec submit () =
          match Svc.Service.submit svc ~client:0 ~key op with
          | Svc.Admission.Accepted -> ()
          | Svc.Admission.Rejected _ ->
              absorb ();
              submit ()
        in
        submit ())
      e_stream;
    absorb ();
    let wall_ns = (Unix.gettimeofday () -. w0) *. 1e9 in
    let d = Stats.diff st0 (Pmem.stats pm) in
    (!acked, !cksum, d.Stats.fences, d.Stats.loads, d.Stats.ns, wall_ns)
  in
  let a_off, ck_off, f_off, l_off, sim_off, wall_off = run_e false in
  let a_on, ck_on, f_on, l_on, sim_on, wall_on = run_e true in
  let e_same = a_off = a_on && ck_off = ck_on && f_off = f_on in
  let per v a = v /. float_of_int (max 1 a) in
  Printf.printf
    "\nmix E, shadow off vs on (serial closed loop, %d ops): op counts, \
     checksum and fences %s\n" ops
    (if e_same then "identical" else "DIVERGE");
  Printf.printf "  off: %8.1f sim ns/op  %8.0f host ns/op  %9d loads\n"
    (per sim_off a_off) (per wall_off a_off) l_off;
  Printf.printf "  on:  %8.1f sim ns/op  %8.0f host ns/op  %9d loads\n"
    (per sim_on a_on) (per wall_on a_on) l_on;
  record_ycsb "invariant"
    (Json.Obj
       [
         ( "config",
           Json.Obj
             [
               ("shards", Json.Int shards);
               ("batch_max", Json.Int batch_max);
               ("depth", Json.Int depth);
               ("keys", Json.Int keys);
               ("ops", Json.Int ops);
               ("seed", Json.Int seed);
             ] );
         ("capacity_probe", Json.Obj (inv cap_r));
         ( "rate_sweep",
           Json.List
             (List.map2
                (fun m r -> Json.Obj (("rate_x", Json.Float m) :: inv r))
                mults sweep) );
         ( "mixes",
           Json.List
             (List.map2
                (fun mix r ->
                  Json.Obj
                    (("mix", Json.Str (Svc.Scenario.mix_to_string mix))
                    :: inv r))
                Svc.Scenario.all_mixes mix_reports) );
         ( "dataplane_domains",
           Json.Obj [ ("identical_1_vs_2", Json.Bool dp_same) ] );
         ( "recovery",
           Json.Obj
             [
               ("fuse_batches", Json.Int rv.rv_fuse);
               ("halted", Json.Bool rv.rv_halted);
               ("recover_ns", Json.Float rv.rv_recover_ns);
               ("audit_failures", Json.Int rv.rv_audit_failures);
             ] );
         ( "shadow_mix_e",
           Json.Obj
             [
               ("identical", Json.Bool e_same);
               ("acked", Json.Int a_off);
               ("checksum", Json.Int ck_off);
               ("fences", Json.Int f_off);
             ] );
       ]);
  record_ycsb "modelled"
    (Json.Obj
       [
         ("capacity_ops_per_sec", Json.Float cap);
         ( "rate_sweep",
           Json.List
             (List.map2
                (fun m r ->
                  Json.Obj
                    [
                      ("rate_x", Json.Float m);
                      ("offered_ops_per_sec", Json.Float r.offered_ops_per_sec);
                      ("goodput_ops_per_sec", Json.Float r.goodput_ops_per_sec);
                      ("p50_ns", Json.Int (q r 0.5));
                      ("p99_ns", Json.Int (q r 0.99));
                      ("span_ns", Json.Float r.span_ns);
                    ])
                mults sweep) );
         ( "mixes",
           Json.List
             (List.map2
                (fun mix r ->
                  Json.Obj
                    [
                      ("mix", Json.Str (Svc.Scenario.mix_to_string mix));
                      ("goodput_ops_per_sec", Json.Float r.goodput_ops_per_sec);
                      ("p99_ns", Json.Int (q r 0.99));
                      ("fences_per_op", Json.Float r.fences_per_op);
                    ])
                Svc.Scenario.all_mixes mix_reports) );
         ( "shadow_mix_e",
           Json.Obj
             [
               ("ns_per_op_off", Json.Float (per sim_off a_off));
               ("ns_per_op_on", Json.Float (per sim_on a_on));
               ("loads_off", Json.Int l_off);
               ("loads_on", Json.Int l_on);
             ] );
       ]);
  record_ycsb "measured"
    (Json.Obj
       [
         ( "recovery",
           Json.Obj
             [
               ("acked_before_crash", Json.Int rv.rv_acked_before);
               ("backlog_ops", Json.Int rv.rv_backlog);
               ("resumed_ops", Json.Int rv.rv_resumed);
               ("recover_wall_s", Json.Float rv.rv_recover_wall_s);
               ("first_ack_wall_s", Json.Float rv.rv_first_ack_wall_s);
               ("rto_wall_s", Json.Float rv.rv_rto_wall_s);
               ("total_wall_s", Json.Float rv.rv_total_wall_s);
             ] );
         ( "shadow_mix_e",
           Json.Obj
             [
               ("wall_ns_per_op_off", Json.Float (per wall_off a_off));
               ("wall_ns_per_op_on", Json.Float (per wall_on a_on));
             ] );
       ])

(* ---------- scan: ordered-index range scans (Pbtree) ---------- *)

let scan () =
  header
    "Extension: ordered-index scans — Pbtree range walk vs the flat \
     point-table walk it replaced (lib/pstruct/pbtree)";
  let n =
    match !scale with
    | Workload.Quick -> 2_048
    | Workload.Small -> 4_096
    | Workload.Full -> 8_192
  in
  let pm = Pmem.create ~seed:11 Pmem_config.default in
  let heap = Heap.create pm in
  let b = create_scheme heap "SpecSPMT" in
  let base = Heap.alloc heap (n * 8) in
  let tree = b.Ctx.run_tx (fun ctx -> Pstruct.Pbtree.create ctx ()) in
  (* populate key i -> its cell address, 64 inserts per transaction *)
  let k = ref 0 in
  while !k < n do
    let lo = !k and hi = min n (!k + 64) in
    b.Ctx.run_tx (fun ctx ->
        for i = lo to hi - 1 do
          ctx.Ctx.write (base + (i * 8)) (i * 31);
          Pstruct.Pbtree.insert ctx tree i (base + (i * 8))
        done);
    k := hi
  done;
  b.Ctx.drain ();
  let height, (inodes, leaves) =
    let ctx = Ctx.peek_ctx pm in
    (Pstruct.Pbtree.height ctx tree, Pstruct.Pbtree.node_count ctx tree)
  in
  Printf.printf
    "tree: %d keys, order %d, height %d, %d internal + %d leaf nodes\n" n
    (Pstruct.Pbtree.order tree) height inodes leaves;
  record_scan
    (Json.Obj
       [
         ("keys", Json.Int n);
         ("order", Json.Int (Pstruct.Pbtree.order tree));
         ("height", Json.Int height);
         ("internal_nodes", Json.Int inodes);
         ("leaf_nodes", Json.Int leaves);
       ]);
  let rounds = 256 in
  let sim f =
    let t0 = (Pmem.stats pm).Stats.ns in
    f ();
    (Pmem.stats pm).Stats.ns -. t0
  in
  (* each scan is one read-only transaction from a staggered anchor, as
     in the service's Scan path; wall clock brackets the same loop so
     the host cost of the descent machinery is measured alongside the
     device model *)
  let tree_scan len =
    let entries = ref 0 in
    let w0 = Unix.gettimeofday () in
    let ns =
      sim (fun () ->
          for r = 0 to rounds - 1 do
            let anchor = r * 131 mod n in
            b.Ctx.run_tx (fun ctx ->
                let left = ref len in
                Pstruct.Pbtree.iter_from ctx tree ~lo:anchor (fun _ addr ->
                    ignore (ctx.Ctx.read addr);
                    incr entries;
                    decr left;
                    !left > 0))
          done)
    in
    let wall = (Unix.gettimeofday () -. w0) *. 1e9 in
    (ns, wall, !entries)
  in
  (* the retired stub's access pattern: an ascending walk of the flat
     cell table, no index to consult — the lower bound a real ordered
     index has to approach *)
  let point_scan len =
    let entries = ref 0 in
    let ns =
      sim (fun () ->
          for r = 0 to rounds - 1 do
            let anchor = r * 131 mod n in
            b.Ctx.run_tx (fun ctx ->
                let stop = min n (anchor + len) in
                for i = anchor to stop - 1 do
                  ignore (ctx.Ctx.read (base + (i * 8)));
                  incr entries
                done)
          done)
    in
    (ns, !entries)
  in
  (* point lookups: device-model loads and host wall per read-only
     [find] — the descent-cost probe the CI read budget audits *)
  let find_probe () =
    let probes = 16384 in
    (* warm the host caches so the wall number is the steady state *)
    for r = 0 to 511 do
      b.Ctx.run_tx (fun ctx ->
          ignore (Pstruct.Pbtree.find ctx tree (r * 977 mod n)))
    done;
    let l0 = (Pmem.stats pm).Stats.loads in
    let w0 = Unix.gettimeofday () in
    for r = 0 to probes - 1 do
      let key = r * 977 mod n in
      b.Ctx.run_tx (fun ctx -> ignore (Pstruct.Pbtree.find ctx tree key))
    done;
    let wall = (Unix.gettimeofday () -. w0) *. 1e9 in
    let loads = (Pmem.stats pm).Stats.loads - l0 in
    (float_of_int loads /. float_of_int probes, wall /. float_of_int probes)
  in
  let lens = [ 1; 4; 16; 64 ] in
  (* shadow-off first: the PR 9 measurements, JSON keys unchanged *)
  let off = List.map (fun len -> (len, tree_scan len, point_scan len)) lens in
  let off_loads, off_find_wall = find_probe () in
  (* attach the DRAM mirror (one unmetered peek pass) and re-measure the
     same tree: descents now cost hashtable probes and binary searches
     instead of device reads *)
  Pstruct.Pbtree.attach_shadow (Ctx.peek_ctx pm) tree;
  let on = List.map tree_scan lens in
  let on_loads, on_find_wall = find_probe () in
  let sh_hits, sh_misses, sh_rebuild_ns =
    match Pstruct.Pbtree.shadow tree with
    | Some sh -> Pstruct.Shadow.totals sh
    | None -> (0, 0, 0)
  in
  Printf.printf "\n%-6s %9s %14s %15s %7s %15s %7s\n" "len" "entries"
    "tree ns/entry" "point ns/entry" "ratio" "shadow ns/entry" "off/on";
  List.iter2
    (fun (len, (tns, twall, te), (pns, pe)) (ons, owall, oe) ->
      let tpe = tns /. float_of_int (max 1 te)
      and ppe = pns /. float_of_int (max 1 pe)
      and ope = ons /. float_of_int (max 1 oe) in
      Printf.printf "%-6d %9d %14.1f %15.1f %7.2f %15.1f %7.2f\n" len te tpe
        ppe (tpe /. ppe) ope (tpe /. ope);
      record_scan
        (Json.Obj
           [
             ("len", Json.Int len);
             ("rounds", Json.Int rounds);
             ("entries", Json.Int te);
             ("tree_ns_per_entry", Json.Float tpe);
             ("point_ns_per_entry", Json.Float ppe);
             ( "tree_wall_ns_per_entry",
               Json.Float (twall /. float_of_int (max 1 te)) );
             ("shadow_tree_ns_per_entry", Json.Float ope);
             ( "shadow_tree_wall_ns_per_entry",
               Json.Float (owall /. float_of_int (max 1 oe)) );
           ]))
    off on;
  Printf.printf
    "point lookup (find): %.1f device loads/op off -> %.1f on; host %.0f \
     ns/op off -> %.0f on\n"
    off_loads on_loads off_find_wall on_find_wall;
  Printf.printf "shadow: %d hits, %d misses, rebuild %.3f ms\n" sh_hits
    sh_misses
    (float_of_int sh_rebuild_ns /. 1e6);
  record_scan
    (Json.Obj
       [
         ("find_loads_per_lookup_off", Json.Float off_loads);
         ("find_loads_per_lookup_on", Json.Float on_loads);
         ("find_wall_ns_off", Json.Float off_find_wall);
         ("find_wall_ns_on", Json.Float on_find_wall);
         ("shadow_hits", Json.Int sh_hits);
         ("shadow_misses", Json.Int sh_misses);
         ("shadow_rebuild_ns", Json.Int sh_rebuild_ns);
       ]);
  Printf.printf
    "shape: the B-link walk pays its root-to-leaf descent once per scan, \
     so ns/entry falls toward the flat walk as the window grows; the \
     mirror removes the descent's device reads entirely\n"

(* ---------- Bechamel wall-clock microbenches ---------- *)

let bechamel () =
  header "Bechamel: wall-clock of the primitives behind each figure";
  let open Bechamel in
  let mk_pool () =
    let pm = Pmem.create Pmem_config.default in
    Heap.create pm
  in
  let tx_bench scheme =
    Staged.stage (fun () ->
        let heap = mk_pool () in
        let b = create_scheme heap scheme in
        let base = Heap.alloc heap (16 * 8) in
        for r = 0 to 99 do
          b.Ctx.run_tx (fun ctx ->
              for i = 0 to 15 do
                ctx.Ctx.write (base + (i * 8)) (r + i)
              done)
        done)
  in
  let tests =
    [
      Test.make ~name:"fig12:pmdk-100tx" (tx_bench "PMDK");
      Test.make ~name:"fig12:specspmt-100tx" (tx_bench "SpecSPMT");
      Test.make ~name:"fig13:ede-100tx" (tx_bench "EDE");
      Test.make ~name:"fig13:spechpmt-100tx" (tx_bench "SpecHPMT");
      Test.make ~name:"fig14:nolog-100tx" (tx_bench "no-log");
      Test.make ~name:"table2:crc32c-4k"
        (Staged.stage
           (let b = Bytes.create 4096 in
            fun () -> ignore (Checksum.crc32c b)));
      Test.make ~name:"fig15:recovery-scan"
        (Staged.stage (fun () ->
             let heap = mk_pool () in
             let pm = Heap.pmem heap in
             let b = create_scheme heap "SpecSPMT" in
             let base = Heap.alloc heap (16 * 8) in
             for r = 0 to 49 do
               b.Ctx.run_tx (fun ctx ->
                   for i = 0 to 15 do
                     ctx.Ctx.write (base + (i * 8)) (r + i)
                   done)
             done;
             Pmem.crash pm;
             b.Ctx.recover ()));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  List.iter
    (fun t ->
      let results = benchmark t in
      Hashtbl.iter
        (fun _name result ->
          ignore result)
        results;
      (* print mean run time per test *)
      Hashtbl.iter
        (fun name r ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock r
          with
          | ols -> (
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
              | _ -> Printf.printf "%-28s (no estimate)\n" name))
        results)
    tests

(* ---------- driver ---------- *)

let all_experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("fig1", fig1);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("hashlog", hashlog);
    ("ablation", ablation);
    ("sweeps", sweeps);
    ("recovery", recovery);
    ("recovery-sweep", recovery_sweep);
    ("svc", svc);
    ("svc-scale", svc_scale);
    ("ycsb", ycsb);
    ("scan", scan);
    ("eadr", eadr);
    ("hotness", hotness);
    ("bechamel", bechamel);
  ]

(* The (scheme x workload x multiplier) grids behind the figures that
   share the measurement cache — what [--jobs] prewarms concurrently.
   Experiments not listed here run their own custom configurations and
   stay serial. *)
let grid_of_experiment =
  let grid schemes cs =
    List.concat_map
      (fun s -> List.map (fun w -> (s, w, cs)) Paper.workloads)
      schemes
  in
  function
  | "table2" -> List.map (fun (w, _, _, _) -> ("raw", w, 1.0)) Paper.table2
  | "fig1" ->
      grid
        [ "raw"; "PMDK"; "Kamino-Tx"; "SPHT"; "SpecSPMT" ]
        sw_compute_scale
      @ grid [ "no-log"; "EDE"; "HOOP"; "SpecHPMT" ] sw_compute_scale
  | "fig12" ->
      grid
        [ "PMDK"; "Kamino-Tx"; "SPHT"; "SpecSPMT-DP"; "SpecSPMT" ]
        sw_compute_scale
  | "fig13" | "fig14" ->
      grid [ "EDE"; "HOOP"; "SpecHPMT-DP"; "SpecHPMT"; "no-log" ] 1.0
  | "hashlog" -> grid [ "SpecSPMT"; "Spec-hashlog" ] sw_compute_scale
  | _ -> []

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        scale := Workload.Quick;
        parse acc rest
    | "--full" :: rest ->
        scale := Workload.Full;
        parse acc rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse acc rest
    | [ "--json" ] ->
        prerr_endline "--json requires a file argument";
        exit 1
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            parse acc rest
        | _ ->
            prerr_endline "--jobs requires a positive integer";
            exit 1)
    | [ "--jobs" ] ->
        prerr_endline "--jobs requires an integer argument";
        exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (Array.to_list Sys.argv |> List.tl) in
  let selected = match args with [] | [ "all" ] -> List.map fst all_experiments | l -> l in
  Printf.printf "SpecPMT evaluation harness (scale: %s)\n" (scale_name ());
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f ->
          prewarm (grid_of_experiment name);
          f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 1)
    selected;
  let wall_s = Unix.gettimeofday () -. t0 in
  Option.iter (write_json_report ~wall_s) !json_path
