test/test_hwtxn.mli:
