(** Software SpecPMT — the paper's software-only speculative-logging
    transaction runtime (Sections 3 and 4).

    Inside a transaction every durable store is applied in place and
    speculatively logged ([splog]) with plain stores into the per-thread
    chained log ({!Specpmt_txn.Log_arena}); repeated stores to a cell
    freshen its single log entry in place (write-set indexing).  Commit
    persists the whole record with one flush run and a {e single} fence —
    no fence per update, and (unless [data_persist] is set) {e no data
    flushes at all}: after commit the record doubles as a redo log, so
    in-place data may drain to the media lazily.

    Recovery (Section 3.1) discards the torn record of an interrupted
    transaction via the checksum commit marker and restores the committed
    image.  The default {!Coalesce} mode folds one scan of the log into a
    last-writer-wins index and writes each live cell exactly once —
    O(live set) data writes; the paper's oldest-first replay loop remains
    available as {!Replay}, the differential-testing oracle.

    Background reclamation (Section 4.2) compacts the log off the
    critical path; its cost is charged to the background ledger.  The
    {!Threshold} policy is the footprint trigger with the legacy
    scan-based compactor; the {!Adaptive} policy drives the index-backed
    compactor from a pressure model — live-entry ratio, arena occupancy
    and a background-core duty budget — and evacuates the stalest chain
    prefix first (see DESIGN.md, "Recovery & reclamation performance
    model"). *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type reclaim_policy =
  | Threshold of int
      (** legacy fixed trigger: scan-compact the whole log when its
          footprint exceeds this many bytes *)
  | Adaptive of {
      min_log_bytes : int;
          (** arena-occupancy floor — never compact a log smaller than
              this, the copy would cost more than the space is worth *)
      stale_trigger : float;
          (** stale-entry fraction ([0..1]) that arms compaction, both
              globally (when to run) and per chain prefix (which blocks
              to visit) *)
      bg_duty : float;
          (** background-core budget as a fraction of elapsed simulated
              foreground ns; compactions whose estimated copy cost would
              exceed it are deferred (counted in
              [reclaim.deferred_bg_budget]) *)
    }
      (** pressure model fed by the volatile live-entry index: decides
          {e when} to compact and {e which} blocks to visit first, and
          reclaims via {!Specpmt_txn.Log_arena.compact_indexed} — O(live)
          copies, no log scan *)

type recovery_mode =
  | Coalesce
      (** single scan builds a last-writer-wins index, each live cell is
          written exactly once — O(live set) data writes *)
  | Replay
      (** the paper's replay-every-record loop, oldest first — O(log)
          data writes; kept as the differential-testing oracle *)

type params = {
  data_persist : bool;
      (** force data flushes + a second fence at commit — the paper's
          suboptimal SpecSPMT-DP used to isolate the gain of removing data
          persistence *)
  block_bytes : int;  (** log-block size (default 4096) *)
  reclaim : reclaim_policy;
      (** when and how background reclamation runs (default
          [Threshold (1 lsl 20)], the pre-existing behaviour) *)
  recovery : recovery_mode;  (** how {!recover} restores data (default
          {!Coalesce}) *)
}

val default_params : params
(** [{ data_persist = false; block_bytes = 4096;
       reclaim = Threshold (1 lsl 20); recovery = Coalesce }] *)

val dp_params : params
(** {!default_params} with [data_persist = true] — the SpecSPMT-DP
    configuration. *)

val adaptive_policy : reclaim_policy
(** A reasonable default {!Adaptive} policy:
    [min_log_bytes = 64 KiB], [stale_trigger = 0.5], [bg_duty = 0.05]. *)

type t
(** A per-thread runtime instance: its log arena, write set, volatile
    live-entry index and reclamation state.  Obtained from {!create}
    alongside the generic backend record. *)

val params : t -> params
(** The parameters this runtime was created with. *)

val pmem : t -> Pmem.t
(** The device view this runtime's transactions read and write through.
    In the data plane every shard's runtime holds its worker domain's
    incoherent view — volatile rebuilds that must observe the shard's
    own (possibly cached, not yet written back) tree cells peek through
    this view, not through the parent. *)

val create :
  ?head_slot:int -> ?tsc:Specpmt_txn.Tsc.t -> Heap.t -> params -> Ctx.backend * t
(** Fresh runtime on a formatted pool.  [head_slot] selects the root slot
    of this thread's log head; [tsc] shares a timestamp counter between
    the per-thread runtimes of a multi-threaded pool (the stand-in for
    rdtscp, Section 4.1). *)

(** {1 Group commit}

    Batching K transactions' records under one flush run + fence
    amortizes the single ordering point a SpecPMT commit has left: the
    per-transaction fence cost tends to 1/K.  Between {!batch_begin} and
    {!batch_end} every commit appends a {e tentative} record — checksum
    deliberately poisoned, nothing flushed or fenced — so a crash before
    the seal leaves the whole batch invisible to recovery no matter what
    the cache evicted.  {!batch_end} patches the true checksums and
    persists the batch with one flush run and a single fence; a crash
    inside the seal durably commits a prefix of the batch in order (the
    valid-prefix scan stops at the first still-poisoned checksum). *)

val batch_begin : t -> unit
(** Open a group-commit batch.  Must be called between transactions; at
    most one batch may be open; rejected in [data_persist] mode, which
    by definition fences each transaction's data individually. *)

val batch_end : t -> int
(** Seal the open batch (see above); returns the number of records made
    durable (read-only transactions contribute none).  Must be called
    between transactions.  Reclamation deferred during the batch may run
    here. *)

val in_batch : t -> bool
(** Whether a group-commit batch is open. *)

val snapshot_region : t -> Addr.t -> int -> unit
(** Crash-consistent adoption of external data (Section 4.3.2): one
    committed transaction that logs the current value of every 8-byte cell
    of the range, without modifying it.  Until a datum has been logged at
    least once, speculative logging cannot revoke an uncommitted update to
    it. *)

val switch_out : t -> int
(** Leave speculative logging (Section 4.3.1): selectively flush every
    cell the live log covers, fence once, and durably invalidate the log
    ({!Specpmt_txn.Log_arena.reset}) — after this another
    crash-consistency mechanism (e.g. the PMDK backend) can run on the
    same pool, and no later replay of the speculative log can clobber
    that mechanism's committed data with the stale speculative values.
    The flush set comes straight from the volatile live index — O(live),
    no log scan.  Returns the number of cells persisted.  Must be called
    between transactions. *)

val reclaim_now : t -> Log_arena.compact_stats
(** Explicit reclamation trigger (the paper's API-triggered mode); always
    runs the legacy scan-based compactor regardless of policy. *)

val reclaim_count : t -> int
(** Number of reclamation cycles run so far. *)

val live_cells : t -> int
(** Cells with a live (freshest committed) log entry — the size of the
    volatile index and the adaptive pressure model's numerator. *)

val stale_entries : t -> int
(** Log entries superseded by fresher commits
    ([Log_arena.total_entries - live_cells]). *)

val reattach : t -> unit
(** Reattach the runtime to its log after an external replay (used by the
    multi-threaded recovery, which replays all threads' logs in global
    timestamp order first).  Rebuilds the volatile live index from the
    log. *)

val recover_standalone :
  ?mode:recovery_mode -> Pmem.t -> block_bytes:int -> (Addr.t, int) Hashtbl.t
(** Pure recovery routine: restore the valid log prefix on a crashed
    device and return the map of restored cells.  [mode] defaults to
    {!Coalesce}.  Exposed for recovery tests — the crash explorer runs it
    in both modes as a differential oracle. *)
