lib/backends/spec_soft.ml: Addr Array Ctx Hashtbl Heap List Log_arena Pmem Slots Specpmt_pmalloc Specpmt_pmem Specpmt_txn Tsc Write_set
