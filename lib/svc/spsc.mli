(** Bounded single-producer/single-consumer ring.

    The handoff primitive of the shard-per-domain data plane: the router
    domain pushes batch messages down one ring per worker and pops
    completion messages off another, so every ring has exactly one
    producer domain and one consumer domain.  Lock-free, allocation-free
    per operation; capacity is rounded up to a power of two.

    The SPSC contract is the safety argument: only the producer writes
    [tail] and only the consumer writes [head], and each side's atomic
    cursor update publishes its plain slot access to the other side
    (OCaml's memory model orders the slot write before the cursor
    release, and the cursor acquire before the slot read). *)

type 'a t

val create : dummy:'a -> capacity:int -> 'a t
(** Capacity rounded up to the next power of two ([>= 1]).  [dummy]
    seeds the slot array (and replaces popped elements), so pushes
    store elements directly instead of boxing them in an option. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer side only.  [false] when full — callers poll their
    completion ring (router) or spin with [Domain.cpu_relax] (worker)
    and retry. *)

val try_pop : 'a t -> 'a option
(** Consumer side only.  [None] when empty. *)

val length : 'a t -> int
(** Racy outside the two owner domains; exact within them. *)

val is_empty : 'a t -> bool
