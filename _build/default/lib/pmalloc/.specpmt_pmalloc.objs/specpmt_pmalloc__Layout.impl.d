lib/pmalloc/layout.ml: Fmt
