open Specpmt

(* The STAMP ports must be deterministic and backend-transparent: the
   final-state checksum of a run depends only on (workload, scale), never
   on the crash-consistency scheme underneath — a strong end-to-end check
   of every scheme's transactional semantics. *)

let schemes_under_test =
  [ "raw"; "PMDK"; "SPHT"; "SpecSPMT"; "Spec-hashlog"; "EDE"; "HOOP"; "SpecHPMT"; "no-log" ]

let test_backend_transparent wname () =
  let w = Option.get (Workload.find wname) in
  let reference = (Run.run ~scheme:"raw" w Workload.Quick).Run.checksum in
  List.iter
    (fun scheme ->
      let m = Run.run ~scheme w Workload.Quick in
      Alcotest.(check int)
        (Printf.sprintf "%s checksum under %s" wname scheme)
        reference m.Run.checksum)
    schemes_under_test;
  (* the multi-core hardware pool must be transparent too (core 0 runs
     the whole workload; the pool machinery is still exercised) *)
  let m =
    Run.run_custom
      ~make:(fun heap ->
        Spec_hw.Mt.thread (Spec_hw.Mt.create heap ~threads:2) 0)
      ~name:"SpecHPMT-Mt" w Workload.Quick
  in
  Alcotest.(check int)
    (Printf.sprintf "%s checksum under SpecHPMT-Mt" wname)
    reference m.Run.checksum

let test_deterministic wname () =
  let w = Option.get (Workload.find wname) in
  let a = Run.run ~seed:5 ~scheme:"SpecSPMT" w Workload.Quick in
  let b = Run.run ~seed:5 ~scheme:"SpecSPMT" w Workload.Quick in
  Alcotest.(check int) "same checksum" a.Run.checksum b.Run.checksum;
  Alcotest.(check (float 0.0)) "same simulated time" a.Run.ns b.Run.ns;
  Alcotest.(check int) "same traffic" a.Run.pm_write_lines b.Run.pm_write_lines

(* Table 2 shape: the relative transaction profiles must mirror STAMP's *)
let test_profile_shape () =
  let profile wname =
    let w = Option.get (Workload.find wname) in
    Run.run ~scheme:"raw" w Workload.Quick
  in
  let lab = profile "labyrinth" in
  let kme = profile "kmeans-low" in
  let gen = profile "genome" in
  let ssc = profile "ssca2" in
  let yad = profile "yada" in
  let vlo = profile "vacation-low" in
  let vhi = profile "vacation-high" in
  (* labyrinth: few, very large transactions *)
  Alcotest.(check bool) "labyrinth has the fewest txs" true
    (lab.Run.txs < gen.Run.txs && lab.Run.txs < ssc.Run.txs);
  Alcotest.(check bool) "labyrinth txs are the largest of the small apps"
    true
    (lab.Run.avg_tx_bytes > gen.Run.avg_tx_bytes);
  (* kmeans: ~100 B transactions (12 dims + count at 8 B/cell) *)
  Alcotest.(check bool) "kmeans ~104 B/tx" true
    (kme.Run.avg_tx_bytes > 90.0 && kme.Run.avg_tx_bytes < 135.0);
  (* genome and ssca2: small write sets *)
  Alcotest.(check bool) "genome small txs" true (gen.Run.avg_tx_bytes < 40.0);
  Alcotest.(check bool) "ssca2 small txs" true (ssc.Run.avg_tx_bytes < 40.0);
  (* yada: large write sets *)
  Alcotest.(check bool) "yada large txs" true (yad.Run.avg_tx_bytes > 80.0);
  (* vacation-high writes more than vacation-low (2 reservations vs 1) *)
  Alcotest.(check bool) "vacation-high > vacation-low write sets" true
    (vhi.Run.avg_tx_bytes > vlo.Run.avg_tx_bytes)

(* Scheme-level sanity at workload scale: SpecPMT must beat the undo
   baseline on every write-intensive app, with fewer fences *)
let test_spec_beats_pmdk () =
  List.iter
    (fun wname ->
      let w = Option.get (Workload.find wname) in
      let pmdk = Run.run ~scheme:"PMDK" w Workload.Quick in
      let spec = Run.run ~scheme:"SpecSPMT" w Workload.Quick in
      Alcotest.(check bool)
        (Printf.sprintf "%s: faster" wname)
        true (spec.Run.ns < pmdk.Run.ns);
      Alcotest.(check bool)
        (Printf.sprintf "%s: fewer fences" wname)
        true
        (spec.Run.fences < pmdk.Run.fences))
    [ "genome"; "intruder"; "kmeans-high"; "ssca2"; "yada" ]

let all_workloads =
  List.map (fun w -> w.Workload.name) Workload.all

let () =
  Alcotest.run "stamp"
    [
      ( "backend transparency",
        List.map
          (fun w ->
            Alcotest.test_case w `Slow (test_backend_transparent w))
          all_workloads );
      ( "determinism",
        List.map
          (fun w -> Alcotest.test_case w `Quick (test_deterministic w))
          all_workloads );
      ( "profiles",
        [ Alcotest.test_case "table 2 shape" `Quick test_profile_shape ] );
      ( "orderings",
        [ Alcotest.test_case "spec beats pmdk" `Quick test_spec_beats_pmdk ] );
    ]
