(** Persistent-heap allocator over a {!Specpmt_pmem.Pmem.t} device.

    This is the stand-in for the paper's use of libvmmalloc: dynamic memory
    allocation redirected to persistent memory (Section 7.1.1).  Blocks
    carry a persistent 8-byte header (size and allocation bit) immediately
    before the returned address; free lists are volatile and are rebuilt by
    {!recover} with a heap walk, mirroring how a PM allocator would
    reconstruct its runtime state after a crash.

    Like libvmmalloc, the allocator itself is not failure-atomic; the
    transaction backends above it are responsible for the crash consistency
    of application data. *)

open Specpmt_pmem

type t

val create : Pmem.t -> t
(** Format the pool: writes the magic and an empty heap.  Fails if the pool
    already carries a valid magic (use {!open_existing}). *)

val open_existing : Pmem.t -> t
(** Attach to a formatted pool (e.g. after a crash) and rebuild the
    volatile free lists from the persistent headers. *)

val pmem : t -> Pmem.t

val alloc : t -> int -> Addr.t
(** [alloc t n] returns an 8-byte-aligned address of [n] usable bytes
    (rounded up to a size class).  Raises [Out_of_memory] when the pool is
    exhausted. *)

val alloc_log : t -> int -> Addr.t
(** Like {!alloc}, but from a dedicated log zone growing downward from the
    pool end — transaction runtimes place their log blocks here so that
    log growth never interleaves with application data pages (the paper's
    dedicated per-thread log areas). *)

val free : t -> Addr.t -> unit
(** Return a block to its size-class free list.  Double frees are
    detected and raise [Invalid_argument]. *)

val register_free : t -> Addr.t -> unit
(** Put a block on the free list {e without} touching its header — for
    transaction runtimes that clear the allocation bit through their own
    logged stores and may only release the block once the transaction is
    durably committed. *)

val usable_size : t -> Addr.t -> int
(** The size-class capacity of an allocated block. *)

val root_slot : t -> int -> Addr.t
(** Address of persistent root-pointer slot [i] (see
    {!Specpmt_pmalloc.Layout.root_slot_count}). *)

val used_bytes : t -> int
(** Bytes between the heap base and the bump pointer (high-water mark). *)

val live_bytes : t -> int
(** [used_bytes] minus the bytes sitting on free lists. *)

val recover : t -> unit
(** Rebuild volatile allocator state by walking the persistent headers.
    Blocks whose header was lost in the crash (never drained to the media)
    are treated as free space beyond the last recoverable header. *)

(** {1 Carved sub-heap regions}

    A region is a line-aligned byte range carved out of a parent heap
    and run as an independent allocator: its bump cells live in the
    region's first cache line, its data zone bumps up from the second
    line, and its log zone bumps down from the region end.  Because the
    bounds are line-aligned, a sub-heap and its parent (or two
    sub-heaps) never share a cache line — per-shard sub-heaps can
    therefore allocate through incoherent per-domain
    {!Specpmt_pmem.Pmem.fork_view}s of the same media. *)

type region = { r_lo : Addr.t; r_hi : Addr.t }

val carve_region : t -> bytes:int -> region
(** Allocate a line-aligned region with at least [bytes] usable bytes
    (after the cells line) from the parent's data zone.  The region is
    raw until formatted with {!of_region}. *)

val of_region : Pmem.t -> region -> t
(** Format a carved region as a fresh sub-heap and attach it through
    [pm] — typically a per-domain view of the parent's media.  No magic
    is written; regions are reached through their parent's structures. *)

val of_region_existing : Pmem.t -> region -> t
(** Attach to a previously formatted region, rebuilding the volatile
    free lists from its persistent headers (the {!open_existing} of
    sub-heaps). *)
