type scale = Wtypes.scale = Quick | Small | Full

type prepared = Wtypes.prepared = {
  work : unit -> unit;
  checksum : unit -> int;
}

type t = Wtypes.t = {
  name : string;
  description : string;
  prepare : scale -> Specpmt_pmalloc.Heap.t -> Specpmt_txn.Ctx.backend -> prepared;
}

let all =
  [
    Genome.workload;
    Intruder.workload;
    Kmeans.low;
    Kmeans.high;
    Labyrinth.workload;
    Ssca2.workload;
    Vacation.low;
    Vacation.high;
    Yada.workload;
  ]

let find name = List.find_opt (fun w -> w.name = name) all

let compute_scale = Wtypes.compute_scale
let set_compute_scale = Wtypes.set_compute_scale
