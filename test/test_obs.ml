open Specpmt_obs

(* Hist.quantile edge cases: the estimator promises 0 on an empty
   snapshot, the sample itself when there is exactly one, and sane
   clamping at the q = 0.0 / q = 1.0 extremes (rank clamps to
   [1, count], the result to the observed max). *)

let snap observations =
  let h = Hist.create () in
  List.iter (Hist.observe h) observations;
  Hist.snapshot h

let test_quantile_empty () =
  let s = snap [] in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%.2f of empty" q)
        0 (Hist.quantile s q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  Alcotest.(check int) "min is 0 when empty" 0 s.Hist.min;
  Alcotest.(check int) "max is 0 when empty" 0 s.Hist.max;
  Alcotest.(check (float 0.0)) "mean is 0 when empty" 0.0 (Hist.mean s)

let test_quantile_single_sample () =
  (* 7 is a bucket upper bound, so every quantile is exact *)
  let s = snap [ 7 ] in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%.2f of singleton" q)
        7 (Hist.quantile s q))
    [ 0.0; 0.5; 1.0 ];
  (* 5 shares 7's bucket; the estimate must clamp to the observed max,
     not report the bucket boundary *)
  let s = snap [ 5 ] in
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%.2f clamps to max" q)
        5 (Hist.quantile s q))
    [ 0.0; 0.5; 1.0 ]

let test_quantile_extremes () =
  let s = snap [ 1; 1000 ] in
  (* q = 0.0: rank clamps up to the first sample *)
  Alcotest.(check int) "q=0.0 is the smallest bucket" 1 (Hist.quantile s 0.0);
  (* q = 0.5: ceil(0.5 * 2) = 1, still the first sample *)
  Alcotest.(check int) "q=0.5 is still the first sample" 1
    (Hist.quantile s 0.5);
  (* q = 1.0: last sample's bucket, clamped to the observed max *)
  Alcotest.(check int) "q=1.0 clamps to max" 1000 (Hist.quantile s 1.0)

let test_quantile_monotone () =
  let s = snap (List.init 100 (fun i -> i * 3)) in
  let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
  let vs = List.map (Hist.quantile s) qs in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "quantile is monotone in q" true (mono vs);
  Alcotest.(check int) "q=1.0 is the max" s.Hist.max (Hist.quantile s 1.0)

let () =
  Alcotest.run "obs"
    [
      ( "hist quantile",
        [
          Alcotest.test_case "empty snapshot" `Quick test_quantile_empty;
          Alcotest.test_case "single sample" `Quick test_quantile_single_sample;
          Alcotest.test_case "q=0.0 and q=1.0" `Quick test_quantile_extremes;
          Alcotest.test_case "monotone in q" `Quick test_quantile_monotone;
        ] );
    ]
