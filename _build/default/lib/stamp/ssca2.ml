(** ssca2 — scalable synthetic compact applications, kernel 1 (STAMP):
    graph construction.  One transaction per edge appends it to a shared
    adjacency structure: a slot-cursor bump plus a degree increment —
    4-byte-scale write sets (16 B in the paper) at high transaction
    count. *)

open Specpmt_txn
open Specpmt_pstruct

let sizes = function
  | Wtypes.Quick -> (64, 256)
  | Wtypes.Small -> (2 * 1024, 12 * 1024)
  | Wtypes.Full -> (16 * 1024, 96 * 1024)

let prepare scale heap (backend : Ctx.backend) =
  let nodes, edges = sizes scale in
  let rng = Rng.create 0x55CA2 in
  let edge_list =
    Array.init edges (fun _ -> (Rng.int rng nodes, Rng.int rng nodes))
  in
  let degree, edge_store, cursor =
    backend.Ctx.run_tx (fun ctx ->
        let degree = Parray.create ctx nodes in
        Parray.fill ctx degree 0;
        let store = Parray.create ctx (2 * edges) in
        let cursor = Parray.create ctx 1 in
        Parray.set ctx cursor 0 0;
        (degree, store, cursor))
  in
  let work () =
    Array.iter
      (fun (u, v) ->
        Wtypes.compute heap 60.0;
        backend.Ctx.run_tx (fun ctx ->
            let i = Parray.get ctx cursor 0 in
            Parray.set ctx edge_store i ((u * nodes) + v);
            Parray.set ctx cursor 0 (i + 1);
            Parray.set ctx degree u (Parray.get ctx degree u + 1)))
      edge_list
  in
  let checksum () =
    let ctx = Ctx.raw_ctx heap in
    let acc = ref (Parray.get ctx cursor 0) in
    for i = 0 to nodes - 1 do
      acc := Wtypes.mix !acc (Parray.get ctx degree i)
    done;
    for i = 0 to Parray.get ctx cursor 0 - 1 do
      acc := Wtypes.mix !acc (Parray.get ctx edge_store i)
    done;
    !acc
  in
  { Wtypes.work; checksum }

let workload =
  {
    Wtypes.name = "ssca2";
    description = "graph construction kernel: per-edge adjacency appends";
    prepare;
  }
