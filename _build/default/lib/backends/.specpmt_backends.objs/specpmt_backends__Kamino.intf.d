lib/backends/kamino.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
