(** labyrinth — maze routing (STAMP, Lee's algorithm).

    Each transaction routes one source/destination pair through a shared
    grid: a breadth-first expansion over free cells followed by writing
    the whole path into the grid — few transactions with very large write
    sets (1420 B average in the paper, by far the largest of the suite). *)

open Specpmt_txn
open Specpmt_pstruct

let sizes = function
  | Wtypes.Quick -> (16, 8)
  | Wtypes.Small -> (48, 64)
  | Wtypes.Full -> (96, 192)

let prepare scale heap (backend : Ctx.backend) =
  let side, routes = sizes scale in
  let rng = Rng.create 0x1AB in
  let grid =
    backend.Ctx.run_tx (fun ctx ->
        let g = Parray.create ctx (side * side) in
        Parray.fill ctx g 0;
        g)
  in
  let pairs =
    Array.init routes (fun _ ->
        let p () = (Rng.int rng side, Rng.int rng side) in
        (p (), p ()))
  in
  let routed = ref 0 in
  let work () =
    Array.iteri
      (fun i ((sx, sy), (dx, dy)) ->
        let path_id = i + 1 in
        backend.Ctx.run_tx (fun ctx ->
            (* BFS over free cells (transactional reads, volatile queue) *)
            let idx x y = (y * side) + x in
            let prev = Array.make (side * side) (-1) in
            let q = Queue.create () in
            let free x y =
              Parray.get ctx grid (idx x y) = 0
              || (x = sx && y = sy)
              || (x = dx && y = dy)
            in
            if free sx sy && free dx dy then begin
              prev.(idx sx sy) <- idx sx sy;
              Queue.push (sx, sy) q;
              let found = ref false in
              while (not !found) && not (Queue.is_empty q) do
                let x, y = Queue.pop q in
                Wtypes.compute heap 12.0;
                if x = dx && y = dy then found := true
                else
                  List.iter
                    (fun (nx, ny) ->
                      if
                        nx >= 0 && nx < side && ny >= 0 && ny < side
                        && prev.(idx nx ny) < 0
                        && free nx ny
                      then begin
                        prev.(idx nx ny) <- idx x y;
                        Queue.push (nx, ny) q
                      end)
                    [ (x + 1, y); (x - 1, y); (x, y + 1); (x, y - 1) ]
              done;
              if !found then begin
                (* write the path into the grid *)
                incr routed;
                let cell = ref (idx dx dy) in
                while prev.(!cell) <> !cell do
                  Parray.set ctx grid !cell path_id;
                  cell := prev.(!cell)
                done;
                Parray.set ctx grid !cell path_id
              end
            end))
      pairs
  in
  let checksum () =
    let ctx = Ctx.raw_ctx heap in
    List.fold_left Wtypes.mix !routed (Parray.to_list ctx grid)
  in
  { Wtypes.work; checksum }

let workload =
  {
    Wtypes.name = "labyrinth";
    description = "maze routing: BFS + whole-path grid writes";
    prepare;
  }
