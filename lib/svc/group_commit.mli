(** Per-shard group commit (tentpole component (b)).

    Executes a batch of queued transactions back-to-back under
    {!Specpmt_backends.Spec_soft.batch_begin}/[batch_end]: each commit
    appends a tentative (poisoned-checksum, unfenced) record, and the
    seal persists the whole batch with one flush run and a single fence.
    K batched transactions share SpecPMT's one remaining ordering point,
    so fences per transaction tend to 1/K.

    At a crash the batch is all-or-prefix: before the seal nothing is
    visible to recovery; inside the seal the records become durable in
    append order and the valid-prefix scan stops at the first
    still-poisoned checksum — recovery itself needs no changes.

    Data-persist runtimes fence per transaction by definition, so the
    batcher degrades to plain sequential commits for them. *)

open Specpmt_backends
open Specpmt_txn

type t

val create : backend:Ctx.backend -> rt:Spec_soft.t -> t
(** Batcher over one shard's backend/runtime pair. *)

val run : t -> (Ctx.ctx -> unit) list -> unit
(** Execute the jobs as one batch and seal it ([[]] is a no-op).
    Observes the batch size into the [svc.batch_size] histogram and
    bumps the [svc.batches] counter.  Convenience wrapper over the
    three-call form below. *)

(** {1 Allocation-free batch protocol}

    The worker hot path: open the batch, run each transaction through
    {!exec} (the caller keeps one reusable closure and feeds it per-op
    state through its captured cells), close with the executed count.
    No job list, no per-batch closures. *)

val batch_begin : t -> unit
(** Open a batch (no-op for data-persist runtimes). *)

val exec : t -> (Ctx.ctx -> unit) -> unit
(** Run one transaction inside the open batch. *)

val batch_end : t -> n:int -> unit
(** Seal the open batch.  [n] is the number of transactions executed
    since {!batch_begin}; metrics are recorded only when [n > 0], but
    the seal itself always closes an opened batch. *)

val sealing : t -> bool
(** True exactly while the seal of a batch is running — a crash observed
    with this set may have durably committed any prefix of that batch;
    otherwise the acknowledged/unacknowledged boundary is exact. *)

val batches : t -> int
(** Batches executed. *)

val sealed_records : t -> int
(** Records made durable by seals (read-only transactions add none). *)

val backend : t -> Ctx.backend

val reset : t -> unit
(** Post-crash: clear the sealing flag (the interrupted seal is over). *)
