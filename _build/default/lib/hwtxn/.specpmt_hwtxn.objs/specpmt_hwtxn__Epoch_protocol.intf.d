lib/hwtxn/epoch_protocol.mli:
