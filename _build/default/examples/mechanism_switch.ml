(* Switching crash-consistency mechanisms on a live pool (paper §4.3.1).

     dune exec examples/mechanism_switch.exe

   A pool starts its life under speculative logging (fast), hands off to
   PMDK-style undo logging (compatible with other software components),
   and survives a crash under each regime.  The handoff only needs the
   dirty durable data flushed at the transition point, because SpecPMT
   updates in place. *)

open Specpmt

let () =
  let pm =
    Pmem.create ~seed:12
      { Pmem_config.default with crash_word_persist_prob = 0.8 }
  in
  let heap = Heap.create pm in

  (* phase 1: speculative logging *)
  let spec_backend, spec = Spec_soft.create heap Spec_soft.default_params in
  let base = Heap.alloc heap (8 * 8) in
  spec_backend.Ctx.run_tx (fun ctx ->
      for i = 0 to 7 do
        ctx.Ctx.write (base + (i * 8)) (i * 100)
      done);
  spec_backend.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 4242);
  Printf.printf "phase 1 (SpecSPMT): cell0=%d, log=%d KiB\n"
    (Pmem.load_int pm base)
    (spec_backend.Ctx.log_footprint () / 1024);

  (* crash + recovery still under speculative logging *)
  Pmem.crash pm;
  spec_backend.Ctx.recover ();
  assert (Pmem.load_int pm base = 4242);
  print_endline "crash #1 recovered by the speculative log";

  (* phase 2: switch out — flush everything the log covers, empty it *)
  let flushed = Spec_soft.switch_out spec in
  Printf.printf
    "switch-out: %d cells persisted, log shrunk to %d KiB; undo logging \
     takes over\n"
    flushed
    (spec_backend.Ctx.log_footprint () / 1024);

  (* phase 3: PMDK-style undo logging on the same pool *)
  let undo = create_scheme heap "PMDK" in
  undo.Ctx.run_tx (fun ctx -> ctx.Ctx.write (base + 8) 777);
  (try
     undo.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 999;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 8) 888)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  undo.Ctx.recover ();
  Printf.printf "phase 3 (PMDK): cell0=%d cell1=%d after crash #2\n"
    (Pmem.load_int pm base)
    (Pmem.load_int pm (base + 8));
  assert (Pmem.load_int pm base = 4242);
  assert (Pmem.load_int pm (base + 8) = 777);
  print_endline "undo logging revoked its interrupted transaction; the"
  ;
  print_endline "values committed under speculative logging are intact."
