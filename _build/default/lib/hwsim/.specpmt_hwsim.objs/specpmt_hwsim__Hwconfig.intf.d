lib/hwsim/hwconfig.mli:
