test/test_txn.ml: Addr Alcotest Array Bytes Checksum Config Gen Hashtbl Heap List Log_arena Pmem Printf QCheck QCheck_alcotest Specpmt_pmalloc Specpmt_pmem Specpmt_txn Write_set
