lib/hwsim/l1tags.mli: Addr Specpmt_pmem
