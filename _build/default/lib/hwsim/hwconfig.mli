(** Simulated-hardware parameters (paper Table 1 and Section 5). *)

type t = {
  l1_tlb_entries : int;  (** private, 64 entries — hotness is tracked
                             while L1-TLB resident *)
  l2_tlb_entries : int;  (** private, 1536 entries *)
  tlb_l2_hit_ns : float;
  tlb_miss_ns : float;  (** page walk *)
  l1_lines : int;  (** L1 data-cache line tags (512 = 32 KiB) *)
  hot_threshold : int;
      (** stores on a cold page before it turns hot (the 3-bit saturating
          counter's maximum, Section 5.1) *)
  log_buffer_lines : int;  (** HOOP's dedicated on-chip buffer, lines *)
  epoch_max_bytes : int;  (** start a new epoch past this many log bytes *)
  epoch_max_pages : int;  (** ... or this many speculatively logged pages *)
  log_budget_bytes : int;
      (** reclaim oldest epochs when the speculative log exceeds this *)
  spec_block_bytes : int;  (** hardware spec-log block size *)
}

val default : t

val small : t
(** Shrunk structures so unit tests hit transitions and epochs quickly. *)
