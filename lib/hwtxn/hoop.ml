(** HOOP — hardware-assisted out-of-place update (Cai et al., ISCA'20), as
    modelled in the paper's evaluation (Section 7.1.3).

    Writes are captured as redo records in a dedicated on-chip buffer and
    drained to a sequential persistent log at commit; data persistence is
    entirely off the critical path (a background garbage collector applies
    coalesced records to the home locations).  Per the paper's methodology
    we ignore address-redirection latency (optimistic for HOOP) and have
    the GC coalesce records before applying them.

    Two HOOP behaviours matter for the figures and are modelled here:
    - it logs a record per update (no in-transaction coalescing), which
      inflates its log traffic on large-footprint applications;
    - its GC bursts contend with foreground threads for the write-pending
      queue (the paper's explanation of why SpecHPMT outperforms it), as a
      foreground stall proportional to each GC batch. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  tsc : Tsc.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable arena : Log_arena.t;
  mutable map_arena : Log_arena.t;
      (* address-mapping records (one per cache miss): they cost log
         traffic like the paper says, but they are translation metadata —
         recovery must never replay them as data writes *)
  mutable in_tx : bool;
  mutable tx_entries : (Addr.t * int) list; (* this tx, newest first *)
  tx_buffer : (Addr.t, int) Hashtbl.t;
      (* HOOP is out-of-place: uncommitted writes live in the on-chip
         buffer / log area and are redirected on read; they must never
         reach the home locations before commit, or a crash could leak
         them with no record to revoke them *)
  tx_read_lines : (Addr.t, unit) Hashtbl.t;
      (* lines read by the open transaction: HOOP's out-of-place
         redirection logs a record per cache miss as well as per update
         (Section 7.3), which is what inflates its log traffic on
         large-footprint applications *)
  mutable pending : (Addr.t * int) list list; (* committed, awaiting GC *)
  mutable pending_entries : int;
  gc_batch_entries : int;
  gc_contention : float;
      (** fraction of the GC's media-write occupancy that stalls the
          foreground (shared write-pending queue) *)
  stream_ns_per_update : float;
      (** on-chip log-buffer drain: WPQ acceptance plus the entry's share
          of log-write bandwidth, paid per update during the transaction *)
  buffer_probes : Specpmt_obs.Metrics.counter;
      (* [tx.buffer_probes]: read-own-writes lookups that actually probed
         the redirection buffer; the empty-buffer fast path keeps
         read-only transactions at zero probes *)
}

let block_bytes = 4096

(* Background GC: coalesce pending records, apply them to the home
   locations, prune the log.  Off the critical path except for the
   write-pending-queue contention stall charged to the foreground. *)
let gc t =
  let n = t.pending_entries in
  if n > 0 then begin
    let coalesced = Hashtbl.create 256 in
    List.iter
      (fun entries ->
        List.iter (fun (a, v) -> Hashtbl.replace coalesced a v) entries)
      (List.rev t.pending);
    Pmem.with_unmetered t.pm (fun () ->
        Hashtbl.iter
          (fun a v ->
            Pmem.store_int t.pm a v;
            Pmem.clwb t.pm a)
          coalesced;
        Pmem.sfence t.pm;
        ignore (Log_arena.compact t.arena);
        ignore (Log_arena.compact t.map_arena));
    (* WPQ occupancy of the burst: the GC streams record after record at
       the queue; only within-record locality helps it, cross-record
       coalescing saves media traffic (counted above) but not queue slots *)
    let burst_lines =
      List.fold_left
        (fun acc entries ->
          let lines = Hashtbl.create 8 in
          List.iter
            (fun (a, _) ->
              Hashtbl.replace lines (Specpmt_pmem.Addr.line_of a) ())
            entries;
          acc + Hashtbl.length lines)
        0 t.pending
    in
    let occupancy =
      float_of_int burst_lines
      *. (Pmem.config t.pm).Specpmt_pmem.Config.pm_write_ns
    in
    Pmem.charge_bg_ns t.pm occupancy;
    (* the GC burst exhausts the shared write-pending queue: the working
       thread contends for it (the paper's explanation of HOOP's gap to
       SpecHPMT, Section 7.3) *)
    Pmem.charge_ns t.pm (occupancy *. t.gc_contention);
    t.pending <- [];
    t.pending_entries <- 0
  end

(* Read redirection with an empty-buffer fast path: a read-only
   transaction has no write intents buffered, so it must not pay a
   hashtable probe per cell.  The non-empty path uses the exception form
   of [find] — no option boxing per read. *)
let tx_read t a =
  if Hashtbl.length t.tx_buffer = 0 then Pmem.load_int t.pm a
  else begin
    Specpmt_obs.Metrics.incr t.buffer_probes;
    match Hashtbl.find t.tx_buffer a with
    | v -> v (* read redirection to the write intent *)
    | exception Not_found -> Pmem.load_int t.pm a
  end

let tx_write t a v =
  let old_value = tx_read t a in
  ignore (Write_set.record t.ws a ~old_value);
  (* on-chip buffering: a record per update, streamed to the log area
     through the write-pending queue during execution *)
  t.tx_entries <- (a, v) :: t.tx_entries;
  Hashtbl.replace t.tx_buffer a v;
  Pmem.charge_ns t.pm t.stream_ns_per_update

let commit t =
  (* the write intents become visible in the home locations only now *)
  Hashtbl.iter (fun a v -> Pmem.store_int t.pm a v) t.tx_buffer;
  Hashtbl.reset t.tx_buffer;
  let ts = Tsc.next t.tsc in
  (* per-cache-miss mapping records: logged (traffic + flush cost) into
     the separate mapping log, which recovery ignores *)
  if Hashtbl.length t.tx_read_lines > 0 then begin
    Log_arena.begin_record t.map_arena;
    Hashtbl.iter
      (fun line () ->
        ignore (Log_arena.add_entry t.map_arena ~target:line ~value:0))
      t.tx_read_lines;
    Log_arena.commit_record ~fence:false t.map_arena ~timestamp:ts
  end;
  Hashtbl.reset t.tx_read_lines;
  if t.tx_entries <> [] then begin
    Log_arena.begin_record t.arena;
    List.iter
      (fun (a, v) -> ignore (Log_arena.add_entry t.arena ~target:a ~value:v))
      (List.rev t.tx_entries);
    (* drain of the on-chip buffer: sequential log writes, no fence on the
       critical path (HOOP eliminates fences; ADR persists on acceptance) *)
    Log_arena.commit_record ~fence:false t.arena ~timestamp:ts;
    t.pending <- List.rev t.tx_entries :: t.pending;
    t.pending_entries <- t.pending_entries + List.length t.tx_entries
  end;
  t.tx_entries <- [];
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false;
  if t.pending_entries >= t.gc_batch_entries then gc t

let rollback t =
  Hashtbl.reset t.tx_buffer;
  t.tx_entries <- [];
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let run_tx t f =
  if t.in_tx then invalid_arg "Hoop: nested transaction";
  t.in_tx <- true;
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read =
        (fun a ->
          Hashtbl.replace t.tx_read_lines (Addr.line_of a) ();
          tx_read t a);
      write = (fun a v -> tx_write t a v);
      alloc = (fun n -> Heap.alloc t.heap n);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      (* a crash (or any other exception) escapes without committing:
         volatile hooks observe an aborted outcome *)
      Ctx.Hooks.fire hooks false;
      raise e

let recover t =
  Heap.recover t.heap;
  let touched = Hashtbl.create 256 in
  let max_ts =
    Log_arena.recover_scan t.pm ~head_slot:Hw_slots.hoop_head
      ~block_bytes ~f:(fun ~ts:_ entries ->
        Array.iter
          (fun (a, v) ->
            Pmem.store_int t.pm a v;
            Hashtbl.replace touched a ())
          entries)
  in
  Hashtbl.iter (fun a () -> Pmem.clwb t.pm a) touched;
  Pmem.sfence t.pm;
  Tsc.restart_above t.tsc max_ts;
  t.arena <-
    Log_arena.attach t.heap ~head_slot:Hw_slots.hoop_head ~block_bytes;
  t.map_arena <-
    Log_arena.attach t.heap ~head_slot:Hw_slots.hoop_map_head ~block_bytes;
  t.pending <- [];
  t.pending_entries <- 0;
  t.tx_entries <- [];
  t.frees <- [] (* deferred frees of a crashed transaction are dead *);
  Write_set.clear t.ws;
  t.in_tx <- false

let create ?(gc_batch_entries = 8192) ?(gc_contention = 0.4)
    ?(stream_ns_per_update = 5.0) heap =
  let t =
    {
      heap;
      pm = Heap.pmem heap;
      tsc = Tsc.create ();
      ws = Write_set.create ();
      frees = [];
      arena =
        Log_arena.create heap ~head_slot:Hw_slots.hoop_head ~block_bytes;
      map_arena =
        Log_arena.create heap ~head_slot:Hw_slots.hoop_map_head ~block_bytes;
      in_tx = false;
      tx_entries = [];
      tx_buffer = Hashtbl.create 64;
      tx_read_lines = Hashtbl.create 64;
      pending = [];
      pending_entries = 0;
      gc_batch_entries;
      gc_contention;
      stream_ns_per_update;
      buffer_probes = Specpmt_obs.Metrics.counter "tx.buffer_probes";
    }
  in
  {
    Ctx.name = "HOOP";
    run_tx = (fun f -> run_tx t f);
    recover = (fun () -> recover t);
    drain = (fun () -> gc t);
    log_footprint =
      (fun () -> Log_arena.footprint t.arena + Log_arena.footprint t.map_arena);
    supports_recovery = true;
  }
