open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_backends
module Metrics = Specpmt_obs.Metrics

(* The sharded KV service: a router hashing keys to shards, each shard
   owning one Spec_soft runtime (one per-thread log of the multi-threaded
   pool), a bounded admission queue and a group-commit batcher.  The
   store itself is a flat table of [keys] 8-byte cells in the persistent
   heap; key [k] lives at [base + 8k] and is owned by exactly one shard
   (shard-of-key hashing), so shards never contend on a cell and the
   per-thread logs stay disjoint. *)

type op =
  | Read
  | Write of int
  | Rmw of int
  | Scan of int

type request = {
  client : int;
  key : int;
  op : op;
  enq_ns : float;  (** simulated time at admission *)
}

type completion = {
  c_client : int;
  c_shard : int;
  c_key : int;
  c_op : op;
  value : int;  (** value read, or value written *)
  c_enq_ns : float;
  ack_ns : float;  (** simulated time when the commit fence retired *)
}

type config = {
  shards : int;
  batch_max : int;  (** transactions per group-commit batch *)
  depth : int;  (** per-shard admission (inflight) bound *)
  keys : int;
}

type shard = {
  id : int;
  adm : request Admission.t;
  gc : Group_commit.t;
  lat : Specpmt_obs.Hist.t;  (** per-op latency, simulated ns *)
  mutable ops : int;
}

type t = {
  pm : Pmem.t;
  heap : Heap.t;
  cfg : config;
  pool : Spec_mt.t;
  base : Addr.t;
  shard_tbl : shard array;
  owned : int array array;  (* shard -> its keys, ascending *)
  shadow : bool;  (* DRAM mirrors on the ordered index *)
  mutable oidx : Oindex.t;  (* per-shard ordered index; rebuilt on recover *)
}

(* Multiplicative hash (Knuth's 2^32 ratio): the product is masked to
   the intended 32-bit hash before the shift.  The parentheses are
   load-bearing — [lsr] binds tighter than [*] in OCaml, so the
   unparenthesized [k * 2654435761 lsr 13 mod shards] multiplies by
   [2654435761 lsr 13 = 324027 = 27 * 11 * 1091] instead, and any shard
   count dividing 324027 (3, 9, 11, 27, 33...) routes every key to
   shard 0. *)
let route ~shards k = ((k * 2654435761) land 0xFFFF_FFFF) lsr 13 mod shards
let shard_of_key t k = route ~shards:t.cfg.shards k
let key_addr t k = t.base + (k * 8)

let create ?params ?(shadow = true) heap cfg =
  if cfg.shards < 1 || cfg.shards > Spec_mt.max_threads then
    Fmt.invalid_arg "Service.create: 1-%d shards" Spec_mt.max_threads;
  if cfg.batch_max < 1 then invalid_arg "Service.create: batch_max < 1";
  if cfg.keys < 1 then invalid_arg "Service.create: keys < 1";
  let pool = Spec_mt.create ?params heap ~threads:cfg.shards in
  let base = Heap.alloc heap (cfg.keys * 8) in
  (* per-shard ownership tables, built once: ascending owned-key rows
     that adoption iterates *)
  let owned_rev = Array.make cfg.shards [] in
  for k = cfg.keys - 1 downto 0 do
    let s = route ~shards:cfg.shards k in
    owned_rev.(s) <- k :: owned_rev.(s)
  done;
  let owned = Array.map Array.of_list owned_rev in
  (* Adoption (Section 4.3.2): a cell must be logged once before
     speculative logging can revoke an uncommitted in-place update to
     it.  One committed transaction per shard writes 0 to every key it
     owns — without this, a crash during the first ever write to a key
     would leave a torn value recovery cannot revert.  Adoption does
     NOT populate the ordered index: an unwritten key is absent from
     scans, exactly YCSB-E's insert-frontier semantics. *)
  Array.iteri
    (fun id row ->
      match row with
      | [||] -> ()
      | row ->
          (Spec_mt.thread pool id).Specpmt_txn.Ctx.run_tx (fun ctx ->
              Array.iter
                (fun k -> ctx.Specpmt_txn.Ctx.write (base + (k * 8)) 0)
                row))
    owned;
  let oidx = Oindex.create ~shadow heap ~pool ~shards:cfg.shards ~keys:cfg.keys in
  {
    pm = Heap.pmem heap;
    heap;
    cfg;
    pool;
    base;
    owned;
    shadow;
    oidx;
    shard_tbl =
      Array.init cfg.shards (fun id ->
          {
            id;
            adm = Admission.create ~depth:cfg.depth;
            gc =
              Group_commit.create
                ~backend:(Spec_mt.thread pool id)
                ~rt:(Spec_mt.runtime pool id);
            lat = Specpmt_obs.Hist.create ();
            ops = 0;
          });
  }

let config t = t.cfg
let pm t = t.pm
let now t = (Pmem.stats t.pm).Stats.ns

let submit t ~client ~key op =
  if key < 0 || key >= t.cfg.keys then invalid_arg "Service.submit: bad key";
  (match op with
  | Scan len when len < 1 -> invalid_arg "Service.submit: scan length < 1"
  | _ -> ());
  let s = t.shard_tbl.(shard_of_key t key) in
  let v = Admission.offer s.adm { client; key; op; enq_ns = now t } in
  (match v with
  | Admission.Rejected _ -> (* per-use lookup: metric cells are domain-local *)
      Metrics.incr (Metrics.counter "svc.rejected")
  | Admission.Accepted -> ());
  v

(* Execute one batch on shard [s]: every request becomes one transaction
   (reads abandon their empty record and cost no fence), the batcher
   seals them under a single fence, and only then are the requests
   acknowledged — an ack therefore always names a durable op. *)
let exec_batch t s reqs =
  match reqs with
  | [] -> []
  | reqs ->
      let n = List.length reqs in
      let results = Array.make n 0 in
      (* one closure for the whole batch, fed per-op state through the
         captured cells — the serial twin of the dataplane worker loop *)
      let cur_key = ref 0 and cur_op = ref Read and cur_i = ref 0 in
      let job ctx =
        match !cur_op with
        | Write v ->
            let a = key_addr t !cur_key in
            (* first client write indexes the key, same transaction as
               the cell store: entry and cell are atomic together *)
            Oindex.ensure ctx t.oidx ~shard:s.id ~key:!cur_key ~addr:a;
            ctx.Specpmt_txn.Ctx.write a v;
            results.(!cur_i) <- v
        | Read ->
            results.(!cur_i) <- ctx.Specpmt_txn.Ctx.read (key_addr t !cur_key)
        | Rmw d ->
            (* read-modify-write as ONE transaction: read and dependent
               write under the same speculative record *)
            let a = key_addr t !cur_key in
            Oindex.ensure ctx t.oidx ~shard:s.id ~key:!cur_key ~addr:a;
            let v = ctx.Specpmt_txn.Ctx.read a + d in
            ctx.Specpmt_txn.Ctx.write a v;
            results.(!cur_i) <- v
        | Scan len ->
            (* real ordered scan over the shard's Pbtree: up to [len]
               populated keys from the anchor, checksummed (read-only
               transaction, so it abandons its empty record unfenced) *)
            results.(!cur_i) <-
              Oindex.scan ctx t.oidx ~shard:s.id ~anchor:!cur_key ~len
      in
      Group_commit.batch_begin s.gc;
      List.iteri
        (fun i r ->
          cur_key := r.key;
          cur_op := r.op;
          cur_i := i;
          Group_commit.exec s.gc job)
        reqs;
      Group_commit.batch_end s.gc ~n;
      Admission.ack s.adm n;
      let t_ack = now t in
      List.mapi
        (fun i r ->
          s.ops <- s.ops + 1;
          Specpmt_obs.Hist.observe s.lat
            (int_of_float (t_ack -. r.enq_ns));
          {
            c_client = r.client;
            c_shard = s.id;
            c_key = r.key;
            c_op = r.op;
            value = results.(i);
            c_enq_ns = r.enq_ns;
            ack_ns = t_ack;
          })
        reqs

let drain ?(on_ack = fun (_ : completion) -> ()) t =
  let acc = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun s ->
        Metrics.set_gauge (Metrics.gauge "svc.queue_depth")
          (float_of_int (Admission.queued s.adm));
        match Admission.take_up_to s.adm t.cfg.batch_max with
        | [] -> ()
        | reqs ->
            progress := true;
            (* acks fire per batch, right after its fence: a crash later
               in the same drain must not lose already-durable acks *)
            List.iter
              (fun c ->
                on_ack c;
                acc := c :: !acc)
              (exec_batch t s reqs))
      t.shard_tbl
  done;
  List.rev !acc

let recover t =
  Spec_mt.recover t.pool;
  Array.iter
    (fun s ->
      Admission.clear s.adm;
      Group_commit.reset s.gc)
    t.shard_tbl;
  (* rediscover the ordered index from its root slot: fresh tree
     handles off the replayed media, fresh populated bitmap, fresh
     mirrors (a pre-crash mirror is never reused) *)
  t.oidx <-
    Oindex.recover ~shadow:t.shadow ~pool:t.pool t.heap ~shards:t.cfg.shards
      ~keys:t.cfg.keys

let peek t k =
  if k < 0 || k >= t.cfg.keys then invalid_arg "Service.peek: bad key";
  Pmem.peek_volatile_int t.pm (key_addr t k)

let sealing t i = Group_commit.sealing t.shard_tbl.(i).gc

type shard_stats = {
  s_id : int;
  s_ops : int;
  s_accepted : int;
  s_rejected : int;
  s_acked : int;
  s_max_inflight : int;
  s_batches : int;
  s_sealed : int;
  s_latency : Specpmt_obs.Hist.snapshot;
}

let shard_stats t i =
  let s = t.shard_tbl.(i) in
  {
    s_id = s.id;
    s_ops = s.ops;
    s_accepted = Admission.accepted s.adm;
    s_rejected = Admission.rejected s.adm;
    s_acked = Admission.acked s.adm;
    s_max_inflight = Admission.max_inflight s.adm;
    s_batches = Group_commit.batches s.gc;
    s_sealed = Group_commit.sealed_records s.gc;
    s_latency = Specpmt_obs.Hist.snapshot s.lat;
  }

let owned_keys t i =
  if i < 0 || i >= t.cfg.shards then invalid_arg "Service.owned_keys: bad shard";
  Array.copy t.owned.(i)

let oindex t = t.oidx

let rejected t =
  Array.fold_left (fun n s -> n + Admission.rejected s.adm) 0 t.shard_tbl
