(** YCSB A–F workload scenarios: mix fractions, key distributions and
    deterministic op streams.

    The six standard core workloads, expressed over {!Service.op}:

    - {b A} — update heavy: 50% read / 50% update, Zipf keys.
    - {b B} — read mostly: 95% read / 5% update, Zipf keys.
    - {b C} — read only: 100% read, Zipf keys.
    - {b D} — read latest: 95% read / 5% insert, "latest" keys (Zipf
      over recency rank, newest first).
    - {b E} — short ranges: 95% scan / 5% insert, Zipf anchor keys,
      scan length uniform in [1, scan_max].  Scans ({!Service.op.Scan})
      are served by the shard's persistent ordered index
      ({!Specpmt_pstruct.Pbtree} via [Oindex]): an ascending walk of up
      to [len] populated keys from the anchor, so inserts become
      visible to later scans exactly when their write commits.
    - {b F} — read-modify-write: 50% read / 50% {!Service.op.Rmw}
      (a single transaction per RMW), Zipf keys.

    A stream is a pure function of (spec, ops, keys, seed): one mix
    coin and one key draw per op from a seeded RNG, updates/inserts
    carrying unique values ([1_000_000 + i]) so crash audits can
    attribute cell states, inserts writing a fresh key from a growing
    frontier.  The arrays have the same type {!Loadgen.op_stream}
    produces, so they feed {!Openloop.run} and {!Dataplane.run}
    unchanged. *)

type mix = A | B | C | D | E | F

type dist =
  | Uniform  (** uniform over the whole keyspace *)
  | Zipf of float  (** Zipf with the given theta over key popularity *)
  | Latest of float
      (** Zipf with the given theta over {e recency} rank: rank 0 is
          the most recently inserted key (YCSB's "latest") *)

type spec = {
  sc_mix : mix;
  read : float;  (** point-read fraction *)
  update : float;  (** blind-write fraction (existing keys) *)
  insert : float;  (** fresh-key write fraction (advances the frontier) *)
  rmw : float;  (** read-modify-write fraction *)
  scan : float;  (** short-scan fraction *)
  dist : dist;
  scan_max : int;  (** scan lengths are uniform in [1, scan_max] *)
}

val default_theta : float
(** 0.99 — YCSB's default Zipfian constant. *)

val spec : ?theta:float -> ?scan_max:int -> mix -> spec
(** The standard fraction vector and distribution of a mix.  [theta]
    defaults to {!default_theta}; [scan_max] (>= 1) defaults to 16. *)

val all_mixes : mix list
(** [A; B; C; D; E; F]. *)

val mix_to_string : mix -> string

val mix_of_string : string -> (mix, string) result
(** Case-insensitive ["a".."f"]. *)

val dist_to_string : dist -> string
(** ["uniform"], ["zipf:<theta>"] or ["latest:<theta>"]. *)

val op_stream :
  spec -> ops:int -> keys:int -> seed:int -> (int * Service.op) array
(** The deterministic (key, op) stream of a spec in issue order.  The
    insert frontier starts at [keys / 2] (so D's "latest" window is
    populated from the first op) and wraps onto the oldest keys once
    the keyspace is exhausted; every key is always in [0, keys). *)

type tally = { t_reads : int; t_writes : int; t_rmws : int; t_scans : int }

val tally : (int * Service.op) array -> tally
(** Op-kind counts of a stream (updates and inserts both count as
    writes — they are indistinguishable in the stream). *)

val spec_to_json : spec -> Specpmt_obs.Json.t
(** Mix name, fraction vector, distribution and scan_max — the
    config-echo object the [ycsb] reports embed. *)
