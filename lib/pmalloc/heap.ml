open Specpmt_pmem

(* Size classes: 16..256 in steps of 16, then powers of two to 64 KiB,
   then exact page multiples.  Small and simple; fragmentation is not the
   object of study here. *)
let size_classes =
  let small = List.init 16 (fun i -> (i + 1) * 16) in
  let big = [ 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ] in
  Array.of_list (small @ big)

let class_of n =
  let rec find i =
    if i >= Array.length size_classes then None
    else if size_classes.(i) >= n then Some i
    else find (i + 1)
  in
  find 0

(* A heap is an allocator over a byte range [lo, hi) of the device: the
   data zone bumps up from [lo], the log zone bumps down from [hi], and
   the two bump pointers live in dedicated persistent cells.  The pool
   root heap spans [Layout.heap_base, mem_size) with its bump cells in
   the root area; carved sub-heaps span a line-aligned region inside a
   parent allocation with their cells in the region's first line —
   which is what lets every shard domain run its own allocator over its
   own cache lines with no shared mutable cells. *)
type t = {
  pm : Pmem.t;
  lo : int; (* first byte of the data zone *)
  hi : int; (* end of the region; log zone grows downward from here *)
  bump_cell : Addr.t;
  log_bump_cell : Addr.t;
  free_lists : (int, Addr.t list ref) Hashtbl.t; (* class size -> blocks *)
  log_free_lists : (int, Addr.t list ref) Hashtbl.t;
  mutable bump : int;
  mutable log_bump : int;
  mutable freed : int; (* bytes on free lists *)
}

let header_alloc_bit = 1

let write_header t addr size ~allocated =
  let v = (size lsl 1) lor (if allocated then header_alloc_bit else 0) in
  Pmem.store_int t.pm (addr - 8) v

let read_header t addr =
  let v = Pmem.peek_volatile_int t.pm (addr - 8) in
  (v lsr 1, v land header_alloc_bit = 1)

let pmem t = t.pm

let mk pm ~lo ~hi ~bump_cell ~log_bump_cell =
  {
    pm;
    lo;
    hi;
    bump_cell;
    log_bump_cell;
    free_lists = Hashtbl.create 32;
    log_free_lists = Hashtbl.create 32;
    bump = lo;
    log_bump = hi;
    freed = 0;
  }

let root_geometry pm =
  ( Layout.heap_base,
    Pmem.mem_size pm,
    (Layout.heap_bump : Addr.t),
    (Layout.log_bump : Addr.t) )

let create pm =
  if Pmem.peek_media_int pm Layout.magic = Layout.magic_value then
    invalid_arg "Heap.create: pool already formatted";
  let lo, hi, bump_cell, log_bump_cell = root_geometry pm in
  let t = mk pm ~lo ~hi ~bump_cell ~log_bump_cell in
  Pmem.with_unmetered pm (fun () ->
      Pmem.store_int pm Layout.magic Layout.magic_value;
      Pmem.store_int pm bump_cell t.bump;
      Pmem.store_int pm log_bump_cell t.log_bump;
      for i = 0 to Layout.root_slot_count - 1 do
        Pmem.store_int pm (Layout.root_slot i) 0
      done;
      Pmem.flush_range pm 0 (64 + (Layout.root_slot_count * 8));
      Pmem.sfence pm);
  t

let push_free_into lists addr size =
  let l =
    match Hashtbl.find_opt lists size with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace lists size l;
        l
  in
  l := addr :: !l

let push_free t size addr =
  push_free_into t.free_lists addr size;
  t.freed <- t.freed + size

(* Rebuild the volatile allocator state of [t] from its persistent
   headers and bump cells: the common engine behind {!open_existing},
   {!recover} and {!of_region_existing}. *)
let rebuild t =
  Hashtbl.reset t.free_lists;
  Hashtbl.reset t.log_free_lists;
  t.freed <- 0;
  (* volatile walks below; both zones share the header format *)
  let walk ~from ~upto ~on_free =
    let pos = ref from in
    let stop = ref false in
    while (not !stop) && !pos < upto do
      let addr = !pos + 8 in
      let size, allocated = read_header t addr in
      if size = 0 || size land 7 <> 0 || !pos + 8 + size > upto then
        (* lost header: the crash beat the header to the media; everything
           from here on is unreachable, reclaim as free space *)
        stop := true
      else begin
        if not allocated then on_free addr size;
        pos := !pos + 8 + size
      end
    done;
    !pos
  in
  let bump = Pmem.peek_media_int t.pm t.bump_cell in
  let bump = if bump < t.lo || bump > t.hi then t.lo else bump in
  t.bump <- walk ~from:t.lo ~upto:bump ~on_free:(fun a s -> push_free t s a);
  t.log_bump <- t.hi;
  let log_bump = Pmem.peek_media_int t.pm t.log_bump_cell in
  if log_bump > t.bump && log_bump <= t.hi then begin
    ignore
      (walk ~from:log_bump ~upto:t.hi ~on_free:(fun a s ->
           push_free_into t.log_free_lists a s));
    t.log_bump <- log_bump
  end;
  Pmem.with_unmetered t.pm (fun () ->
      Pmem.store_int t.pm t.bump_cell t.bump;
      Pmem.store_int t.pm t.log_bump_cell t.log_bump)

let open_existing pm =
  if Pmem.peek_media_int pm Layout.magic <> Layout.magic_value then
    invalid_arg "Heap.open_existing: no formatted pool";
  let lo, hi, bump_cell, log_bump_cell = root_geometry pm in
  let t = mk pm ~lo ~hi ~bump_cell ~log_bump_cell in
  rebuild t;
  t

let recover t = rebuild t

(* Carved sub-heap regions.  The first line of a region holds its two
   bump cells; the data zone starts at the next line and the log zone
   grows down from the region end.  Region bounds are line-aligned so
   two regions (or a region and its parent) never share a cache line —
   the partitioning invariant per-domain {!Specpmt_pmem.Pmem.fork_view}s
   rely on. *)
type region = { r_lo : Addr.t; r_hi : Addr.t }

let alloc t n =
  if n <= 0 then Fmt.invalid_arg "Heap.alloc %d" n;
  let size =
    match class_of n with
    | Some c -> size_classes.(c)
    | None -> Addr.align_up n Addr.page_size
  in
  match Hashtbl.find_opt t.free_lists size with
  | Some ({ contents = addr :: rest } as l) ->
      l := rest;
      t.freed <- t.freed - size;
      write_header t addr size ~allocated:true;
      Pmem.clwb t.pm (addr - 8);
      addr
  | Some { contents = [] } | None ->
      let addr = t.bump + 8 in
      if addr + size > t.log_bump then raise Out_of_memory;
      t.bump <- addr + size;
      write_header t addr size ~allocated:true;
      Pmem.clwb t.pm (addr - 8);
      Pmem.store_int t.pm t.bump_cell t.bump;
      Pmem.clwb t.pm t.bump_cell;
      addr

let carve_region t ~bytes =
  if bytes <= 0 then Fmt.invalid_arg "Heap.carve_region %d" bytes;
  let rounded = Addr.align_up bytes Addr.line_size in
  (* cells line + data + alignment slack *)
  let raw = alloc t (rounded + (2 * Addr.line_size)) in
  let lo = Addr.align_up raw Addr.line_size in
  { r_lo = lo; r_hi = lo + Addr.line_size + rounded }

let region_geometry region =
  ( region.r_lo + Addr.line_size,
    region.r_hi,
    (region.r_lo : Addr.t),
    (region.r_lo + 8 : Addr.t) )

let of_region pm region =
  let lo, hi, bump_cell, log_bump_cell = region_geometry region in
  if hi - lo < Addr.line_size then invalid_arg "Heap.of_region: region too small";
  let t = mk pm ~lo ~hi ~bump_cell ~log_bump_cell in
  Pmem.with_unmetered pm (fun () ->
      Pmem.store_int pm bump_cell t.bump;
      Pmem.store_int pm log_bump_cell t.log_bump;
      Pmem.clwb pm bump_cell;
      Pmem.sfence pm);
  t

let of_region_existing pm region =
  let lo, hi, bump_cell, log_bump_cell = region_geometry region in
  let t = mk pm ~lo ~hi ~bump_cell ~log_bump_cell in
  rebuild t;
  t

(* Allocator metadata is made persistent eagerly: the header and bump
   cells are flushed on allocation (persistent on write-pending-queue
   acceptance, no fence).  A crash can therefore only leak blocks of
   uncommitted transactions — never let the recovery walk regress the bump
   pointer over live data.  Frees are persisted too, but transactional
   code must only free at commit (the backends defer [ctx.free]). *)
let persist_cell t a = Pmem.clwb t.pm a

(* Log-zone allocation: grows downward from the region end, keeping log
   blocks physically segregated from application data — the dedicated log
   area of the paper's designs.  Interleaving them in one bump zone would
   scatter application allocations across pages and wreck the page-level
   hotness tracking of hardware SpecPMT. *)
let alloc_log t n =
  if n <= 0 then Fmt.invalid_arg "Heap.alloc_log %d" n;
  let size =
    match class_of n with
    | Some c -> size_classes.(c)
    | None -> Addr.align_up n Addr.page_size
  in
  match Hashtbl.find_opt t.log_free_lists size with
  | Some ({ contents = addr :: rest } as l) ->
      l := rest;
      write_header t addr size ~allocated:true;
      persist_cell t (addr - 8);
      addr
  | Some { contents = [] } | None ->
      let base = t.log_bump - size - 8 in
      let addr = base + 8 in
      if base < t.bump then raise Out_of_memory;
      t.log_bump <- base;
      write_header t addr size ~allocated:true;
      persist_cell t (addr - 8);
      Pmem.store_int t.pm t.log_bump_cell t.log_bump;
      persist_cell t t.log_bump_cell;
      addr

let free t addr =
  let size, allocated = read_header t addr in
  if not allocated then
    Fmt.invalid_arg "Heap.free: double free at %#x" addr;
  write_header t addr size ~allocated:false;
  persist_cell t (addr - 8);
  if addr > t.log_bump then push_free_into t.log_free_lists addr size
  else push_free t size addr

(* Register a block whose header has already been cleared by other means
   (e.g. written and logged through a transaction): only the volatile free
   list is updated. *)
let register_free t addr =
  let size, _ = read_header t addr in
  if addr > t.log_bump then push_free_into t.log_free_lists addr size
  else push_free t size addr

let usable_size t addr = fst (read_header t addr)
let root_slot _t i = Layout.root_slot i
let used_bytes t = t.bump - t.lo
let live_bytes t = used_bytes t - t.freed
