lib/txn/tsc.ml:
