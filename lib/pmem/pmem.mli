(** Simulated byte-addressable persistent memory with a volatile cache.

    This module is the stand-in for the paper's Intel Optane DC persistent
    memory (Section 2.1).  It models:

    - a persistent {e media image} that survives {!crash};
    - a volatile cache of 64-byte lines in front of it — plain {!store}s
      dirty a cached line and are {b not} persistent until the line is
      flushed ({!clwb} + {!sfence}), written with a non-temporal store
      ({!nt_store_bytes}), or evicted by capacity pressure;
    - an ADR persistence domain: once a flush or non-temporal store is
      accepted by the write-pending queue it is considered persistent (the
      WPQ is inside the persistence domain); [sfence] only contributes the
      drain {e time};
    - a cost model (see {!Config}) that accumulates simulated nanoseconds
      and traffic counters into {!Stats};
    - crash injection: a {e fuse} aborts execution after a chosen number of
      memory events, and {!crash} then drops the volatile cache, writing
      each dirty 8-byte word back with a coin flip to model in-flight
      stores and spontaneous evictions.

    All operations are deterministic given the creation seed. *)

type t

exception Crash
(** Raised by any memory operation when the installed crash fuse burns out.
    The caller should unwind to the harness, which calls {!crash}. *)

val create : ?seed:int -> Config.t -> t
(** Fresh device, media zero-filled. *)

val config : t -> Config.t
val stats : t -> Stats.t

(** {1 Per-domain views}

    A view models one core's cache hierarchy over the shared media: it
    shares the media image with its parent but owns a private cache,
    write-pending queue, simulated clock and fuse.  Views are {b not}
    coherent — dirty lines write back whole, so the image must be
    partitioned by cache line: a line written through one view must not
    be touched through any other until the owner has been
    {!detach_cache}d.  The shard-per-domain data plane gives each worker
    domain one view and line-disjoint log/key regions. *)

val fork_view : ?seed:int -> t -> t
(** New view over the same media.  Fresh stats/clock (per-domain time),
    fresh empty cache.  Fork only when the parent's cache holds nothing
    the view will touch ({!detach_cache} the parent first). *)

val detach_cache : t -> unit
(** Write every dirty cached line back to media and empty the cache —
    the ownership-handoff fence between views (worker join, or parent
    handing formatted lines to freshly forked views).  A
    simulation-boundary operation: unmetered, no fuse events. *)

val discard_cache : t -> unit
(** Drop the cache without write-back: the crash counterpart of
    {!detach_cache}.  Unpersisted stores in this view are lost, as a
    power failure would lose one core's caches. *)

(** {1 Data access} *)

val load_int : t -> Addr.t -> int
(** 8-byte load of a 63-bit OCaml [int] at an 8-byte-aligned address. *)

val store_int : t -> Addr.t -> int -> unit
(** 8-byte store; volatile until flushed or evicted. *)

val load_bytes : t -> Addr.t -> int -> bytes
val store_bytes : t -> Addr.t -> bytes -> unit

(** {1 Persistence operations} *)

val clwb : t -> Addr.t -> unit
(** Flush the cache line containing the address.  Once accepted by the
    write-pending queue the line content is persistent; the time cost of
    draining is paid by the next {!sfence}.  Flushing a clean or uncached
    line costs only the issue overhead. *)

val clflushopt : t -> Addr.t -> unit
(** Like {!clwb} but also invalidates the cached copy (the pre-Skylake
    flavour); the next access to the line misses. *)

val sfence : t -> unit
(** Persist barrier: waits until every accepted flush has drained. *)

val nt_store_bytes : t -> Addr.t -> bytes -> unit
(** Non-temporal store: bypasses the cache, writing directly through the
    write-pending queue (persistent on acceptance, drain paid at the next
    fence).  Invalidates any cached copy of the touched lines. *)

val flush_range : t -> Addr.t -> int -> unit
(** [clwb] every line of the byte range. *)

val charge_ns : t -> float -> unit
(** Add foreground simulated time (used by higher layers to model
    non-memory costs, e.g. hardware structures). *)

val charge_bg_ns : t -> float -> unit
(** Add background-core simulated time (reclamation, replay threads). *)

(** {1 Crash injection and recovery} *)

val set_fuse : t -> int option -> unit
(** [set_fuse t (Some n)] makes the [n]-th subsequent memory event raise
    {!Crash}.  [None] disarms. *)

val fuse : t -> int option
(** Remaining events before the fuse burns ([None] = disarmed). *)

val events : t -> int
(** Monotonic count of fuse-visible memory events since creation — the
    index space {!set_fuse} counts in.  Lets a crash-exploration driver
    measure a workload once and then target any event as a crash point. *)

val crash : t -> unit
(** Take the crash: every dirty cached word independently reaches the media
    with probability [crash_word_persist_prob]; then the cache, queue and
    fuse are cleared.  Subsequent loads observe only the media. *)

val crash_with : t -> persist:(Addr.t -> bool) -> unit
(** Oracle-driven crash: like {!crash}, but the persistence of each dirty
    8-byte word is decided by [persist] instead of a coin flip.  The
    oracle is consulted once per dirty word, in ascending address order —
    deterministic by construction, which is what makes crash states
    enumerable and replayable (see [Specpmt_crashmc]).  Under eADR every
    dirty word drains regardless of the oracle. *)

val dirty_lines : t -> int list
(** Indices of the cache lines holding unpersisted stores, ascending.
    The [k]-th element is what a [line:k] crash choice refers to. *)

val dirty_words : t -> Addr.t list
(** Word addresses covered by the dirty lines, ascending — the decision
    domain of {!crash_with}. *)

val crashed_once : t -> bool
(** Whether {!crash} has ever been taken on this device. *)

(** {1 Operation tracing (debugging)} *)

type op =
  | Load of Addr.t
  | Store of Addr.t * int
  | Clwb of Addr.t
  | Sfence
  | Nt_store of Addr.t * int  (** address, byte count *)
  | Load_bytes of Addr.t * int  (** ranged load — address, byte count *)
  | Store_bytes of Addr.t * int  (** ranged store — address, byte count *)

val pp_op : Format.formatter -> op -> unit

val set_trace : t -> int -> unit
(** Keep a ring of the [n] most recent memory events ([n <= 0]
    disables).  For post-mortem debugging of crash-consistency failures;
    zero cost when disabled. *)

val recent_ops : t -> op list
(** Traced events, oldest first. *)

(** {1 Metering control} *)

val with_unmetered : t -> (unit -> 'a) -> 'a
(** Run a setup phase without accumulating time or counters (state changes
    still happen, and the crash fuse is still honoured). *)

(** {1 Debug/verification access (no cost, no metering)} *)

val peek_media_int : t -> Addr.t -> int
(** Read the media image directly — what a post-crash observer sees. *)

val peek_volatile_int : t -> Addr.t -> int
(** Read through the cache as {!load_int} would, without metering. *)

val mem_size : t -> int
