(** Persistent chained hash table with [int] keys and values.

    Fixed bucket count chosen at {!create}; nodes are allocated from the
    transactional context, so inserts and removals are crash-atomic when
    performed inside a transaction. *)

open Specpmt_txn

type t

val create : Ctx.ctx -> int -> t
(** [create ctx nbuckets] — [nbuckets > 0]. *)

val length : Ctx.ctx -> t -> int
val find : Ctx.ctx -> t -> int -> int option
val mem : Ctx.ctx -> t -> int -> bool

val replace : Ctx.ctx -> t -> int -> int -> bool
(** Insert or overwrite; [true] when the key was absent. *)

val add_if_absent : Ctx.ctx -> t -> int -> int -> bool
(** Insert only if absent; [true] when inserted. *)

val remove : Ctx.ctx -> t -> int -> bool
(** [true] when a binding was removed (its node is freed via the ctx,
    i.e. deferred to commit under a transactional context). *)

val iter : Ctx.ctx -> t -> (int -> int -> unit) -> unit
val fold : Ctx.ctx -> t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
