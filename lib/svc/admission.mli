(** Bounded per-shard admission with backpressure.

    A request is admitted iff the shard's {e inflight} count — accepted
    but not yet acknowledged, i.e. queued plus executing — is below the
    depth limit; otherwise it is rejected with a retry hint.  Overload
    thus degrades into client retries instead of unbounded queues
    (tentpole component (c)). *)

type 'a t

type verdict =
  | Accepted
  | Rejected of { queued : int }
      (** retry hint: current queue length, so clients can back off
          proportionally *)

val create : depth:int -> 'a t
(** [depth >= 1]: the inflight bound. *)

val offer : 'a t -> 'a -> verdict
(** Admit or shed one request (sheds are counted). *)

val take_up_to : 'a t -> int -> 'a list
(** Dequeue at most [n] requests in admission order.  The dequeued
    requests stay inflight until {!ack}. *)

val ack : 'a t -> int -> unit
(** Acknowledge [n] executing requests (their commit fence retired).
    Raises [Invalid_argument] if [n < 0] or [n] exceeds the inflight
    count — a double-ack would otherwise unbound admission. *)

val clear : 'a t -> unit
(** Post-crash: drop queued requests and zero the inflight count — they
    died unacknowledged.  Lifetime totals are kept. *)

val queued : 'a t -> int
val inflight : 'a t -> int

val accepted : 'a t -> int
(** Lifetime admitted count. *)

val rejected : 'a t -> int
(** Lifetime shed count. *)

val acked : 'a t -> int
(** Lifetime acknowledged count. *)

val max_inflight : 'a t -> int
(** High-water inflight mark — how deep the shard actually got. *)
