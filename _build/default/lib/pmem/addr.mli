(** Byte addresses and cache-line arithmetic.

    The whole simulator uses plain [int] byte offsets into the persistent
    media image as addresses.  Cache lines are 64 bytes; pages are 4 KiB. *)

type t = int
(** A byte address inside the persistent memory image. *)

val line_size : int
(** Cache-line size in bytes (64). *)

val page_size : int
(** Page size in bytes (4096). *)

val word_size : int
(** Machine-word size in bytes (8); all scalar slots are 8-byte cells. *)

val line_of : t -> t
(** [line_of a] is the address of the first byte of [a]'s cache line. *)

val line_index : t -> int
(** [line_index a] is [a / line_size]. *)

val page_of : t -> t
(** [page_of a] is the address of the first byte of [a]'s page. *)

val page_index : t -> int
(** [page_index a] is [a / page_size]. *)

val offset_in_line : t -> int
(** Byte offset of [a] within its cache line. *)

val lines_spanned : t -> int -> int
(** [lines_spanned a len] is the number of distinct cache lines touched by
    the byte range [\[a, a+len)].  [len] must be positive. *)

val is_word_aligned : t -> bool
(** Whether [a] is 8-byte aligned. *)

val align_up : t -> int -> t
(** [align_up a k] rounds [a] up to the next multiple of [k] ([k] a power
    of two). *)
