(** Root-slot assignments of the software backends (slots 0-7 belong to
    applications). *)

val app_first : int
val app_last : int
val pmdk_region : int
val pmdk_capacity : int
val kamino_region : int
val kamino_capacity : int
val spht_head : int
val spht_marker : int
val spec_head : int
val hashlog_table : int
val hashlog_committed_ts : int
val hashlog_capacity : int

val svc_index : int
(** The service layer's ordered-index directory pointer: the root slot
    recovery reads to rediscover the per-shard [Pbtree] headers (see
    [Svc.Oindex]). *)

val spec_mt_first : int
(** First root slot of the per-thread speculative log heads. *)

val spec_mt_stride : int
(** Slot stride between consecutive heads: one cache line, so heads can
    be published from different domains without sharing a media line. *)

val spec_mt_max_threads : int
(** Threads the root area can host: one line-strided slot per thread
    from {!spec_mt_first} to the end of the root area. *)

val spec_mt_head : int -> int
(** Per-thread speculative log heads of the multi-threaded runtime
    (0..[spec_mt_max_threads - 1]), each on its own cache line. *)
