(** Persistent FIFO queue of 8-byte values. *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> t
val of_header : Addr.t -> t
val header : t -> Addr.t
val size : Ctx.ctx -> t -> int
val is_empty : Ctx.ctx -> t -> bool
val push : Ctx.ctx -> t -> int -> unit
val pop : Ctx.ctx -> t -> int option
