(** Logical timestamp counter, the stand-in for [rdtscp] (Section 4.1).

    Recovery only needs a total order over transaction commits, so a
    monotone counter shared by all simulated threads of a device is
    sufficient. *)

type t = { mutable now : int }

let create () = { now = 1 }

let next t =
  let v = t.now in
  t.now <- v + 1;
  v

let peek t = t.now

(** After a crash, restart the clock strictly above every timestamp that
    may live in persistent logs. *)
let restart_above t v = t.now <- max t.now (v + 1)
