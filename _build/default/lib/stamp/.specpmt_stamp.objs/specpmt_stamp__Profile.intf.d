lib/stamp/profile.mli: Ctx Format Specpmt_txn
