lib/backends/slots.ml:
