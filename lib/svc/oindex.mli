(** Per-shard ordered index over the service key table.

    One {!Specpmt_pstruct.Pbtree} per shard, allocated from the shard's
    own runtime heap through its transactional backend — in the data
    plane that heap is the shard's carved sub-heap accessed through its
    worker's view, so every tree node lives on lines only that worker
    ever touches and the plane's line-disjointness invariant survives
    (see DESIGN.md §14).

    The index maps each {e populated} key (a key some client write has
    touched) to its cell address.  Adoption writes do not populate;
    {!ensure} inserts a key on its first client write, inside the same
    transaction as the cell write, so the index entry and the cell are
    atomic under speculative logging.  A volatile per-key bitmap makes
    the populated check O(1) on the write hot path; recovery rebuilds
    it by walking the trees.

    Rediscovery: creation persists a directory block
    [[shards; keys; order; header_0; ...]] in the parent heap and
    points root slot {!Specpmt_backends.Slots.svc_index} at it (raw
    stores + flush + fence), so {!recover} can rebuild every handle
    from the media image alone. *)

open Specpmt_pmalloc
open Specpmt_backends
open Specpmt_txn

type t

val create :
  ?order:int ->
  ?shadow:bool ->
  Heap.t ->
  pool:Spec_mt.t ->
  shards:int ->
  keys:int ->
  t
(** Create one empty tree per shard (each inside one committed
    transaction on that shard's backend, so node cells are logged
    before any later structural update can tear them), then persist the
    directory and root slot through the parent heap's view.  [shadow]
    (default [true]) equips every tree with a DRAM mirror
    ({!Specpmt_pstruct.Pbtree.attach_shadow}), built with one unmetered
    peek through the shard's {e own} runtime view — the only view
    guaranteed to observe tree lines still dirty in a worker cache.
    Data-plane callers must detach the parent cache afterwards, before
    workers fork. *)

val recover : ?shadow:bool -> ?pool:Spec_mt.t -> Heap.t -> shards:int -> keys:int -> t
(** Rebuild from the root slot after {!Specpmt_backends.Spec_mt.recover}
    has replayed the logs: re-read the directory, re-handle every tree
    ({!Specpmt_pstruct.Pbtree.of_header}) and rebuild the populated
    bitmap by walking them.  All reads are unmetered peeks.  [shadow]
    (default [true]) rebuilds each tree's mirror from the replayed
    image — a pre-crash mirror is never reused, because a crash inside
    the commit protocol can leave a transaction durable that the
    mirror's outcome hook reported as failed.  Pass [pool] to peek
    through each shard's runtime view (the data plane does; equivalent
    to the parent view once recovery has drained every cache).  Raises
    [Invalid_argument] when the directory disagrees with the expected
    geometry (wrong pool). *)

val ensure : Ctx.ctx -> t -> shard:int -> key:int -> addr:Specpmt_pmem.Addr.t -> unit
(** Index [key -> addr] in [shard]'s tree if this is the key's first
    client write; O(1) when already populated.  Must run inside the
    same transaction as the cell write it accompanies. *)

val scan : Ctx.ctx -> t -> shard:int -> anchor:int -> len:int -> int
(** Ordered scan: walk up to [len] populated keys of [shard]'s tree
    starting at the smallest populated key [>= anchor], reading each
    cell through [ctx], and return the order-sensitive checksum
    [acc = (acc*31 + key + value) land max_int] (0 when the window is
    empty).  Shard-local by construction, so cell ownership and the
    data plane's line-disjointness hold. *)

val is_populated : t -> int -> bool
val populated_count : t -> int

val tree : t -> int -> Specpmt_pstruct.Pbtree.t
(** Shard [i]'s tree handle (test/audit use). *)

val publish_shadow : t -> shard:int -> unit
(** Push [shard]'s mirror counter deltas ([shadow.hits] /
    [shadow.misses] / [shadow.rebuild_ns]) into the calling domain's
    metrics registry; no-op without a mirror.  Must run on the domain
    that owns the shard — data-plane workers call it before a clean
    stop, so the deltas ride the normal export/absorb merge. *)
