test/test_pmem.ml: Addr Alcotest Bytes Config Fmt Gen Hashtbl List Pmem Printf QCheck QCheck_alcotest Specpmt_pmem Stats
