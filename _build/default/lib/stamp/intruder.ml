(** intruder — network intrusion detection (STAMP).

    A stream of packet fragments is reassembled per flow in a shared
    dictionary; completed flows are scanned by the detector and attacks
    are recorded.  One transaction per packet: dictionary lookup/insert,
    fragment accumulation, and on completion the flow is retired — small
    write sets (20.5 B average in the paper) at very high transaction
    counts. *)

open Specpmt_txn
open Specpmt_pstruct

let sizes = function
  | Wtypes.Quick -> 128
  | Wtypes.Small -> 6 * 1024
  | Wtypes.Full -> 48 * 1024

(* a flow record: [seen; expected; acc] *)
let flow_bytes = 24

let prepare scale heap (backend : Ctx.backend) =
  let flows = sizes scale in
  let rng = Rng.create 0x1D5 in
  (* generate fragments: flow f has 1..4 fragments, payload hashes *)
  let packets = ref [] in
  for f = 1 to flows do
    let k = 1 + Rng.int rng 4 in
    for frag = 0 to k - 1 do
      packets := (f, k, frag, Rng.int rng 1_000_000) :: !packets
    done
  done;
  let packets = Array.of_list !packets in
  for i = Array.length packets - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = packets.(i) in
    packets.(i) <- packets.(j);
    packets.(j) <- t
  done;
  let decoder, attacks =
    backend.Ctx.run_tx (fun ctx ->
        (Phashtbl.create ctx 512, Pqueue.create ctx))
  in
  let work () =
    Array.iter
      (fun (flow, expected, _frag, payload) ->
        Wtypes.compute heap 120.0;
        backend.Ctx.run_tx (fun ctx ->
            let rec_addr =
              match Phashtbl.find ctx decoder flow with
              | Some addr -> addr
              | None ->
                  let addr = ctx.Ctx.alloc flow_bytes in
                  ctx.Ctx.write addr 0;
                  ctx.Ctx.write (addr + 8) expected;
                  ctx.Ctx.write (addr + 16) 0;
                  ignore (Phashtbl.add_if_absent ctx decoder flow addr);
                  addr
            in
            let seen = ctx.Ctx.read rec_addr + 1 in
            ctx.Ctx.write rec_addr seen;
            ctx.Ctx.write (rec_addr + 16)
              (Wtypes.mix (ctx.Ctx.read (rec_addr + 16)) payload);
            if seen = ctx.Ctx.read (rec_addr + 8) then begin
              (* flow complete: detect and retire *)
              let digest = ctx.Ctx.read (rec_addr + 16) in
              if digest land 15 = 0 then Pqueue.push ctx attacks flow;
              ignore (Phashtbl.remove ctx decoder flow);
              ctx.Ctx.free rec_addr
            end))
      packets
  in
  let checksum () =
    let ctx = Ctx.raw_ctx heap in
    let acc = ref (Wtypes.mix 0 (Pqueue.size ctx attacks)) in
    let rec drainless node =
      if node <> 0 then begin
        acc := Wtypes.mix !acc (ctx.Ctx.read node);
        drainless (ctx.Ctx.read (node + 8))
      end
    in
    drainless (ctx.Ctx.read (Pqueue.header attacks));
    Wtypes.mix !acc (Phashtbl.length ctx decoder)
  in
  { Wtypes.work; checksum }

let workload =
  {
    Wtypes.name = "intruder";
    description = "network intrusion detection: flow reassembly + scan";
    prepare;
  }
