lib/stamp/labyrinth.ml: Array Ctx List Parray Queue Rng Specpmt_pstruct Specpmt_txn Wtypes
