open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn
open Specpmt_hwsim
open Specpmt_hwtxn

let mk_pool ?(seed = 5) ?(crash_prob = 0.5) () =
  let pm =
    Pmem.create ~seed { Config.small with crash_word_persist_prob = crash_prob }
  in
  (pm, Heap.create pm)

let small_spec ?(data_persist = false) heap =
  Spec_hw.create heap
    { Spec_hw.hw = Hwconfig.small; data_persist; hotness = Spec_hw.Tlb_counters }

let mk_kind ?seed ?crash_prob kind =
  let pm, heap = mk_pool ?seed ?crash_prob () in
  let b =
    match kind with
    | Hw_registry.Spec_hw -> fst (small_spec heap)
    | Hw_registry.Spec_hw_dp -> fst (small_spec ~data_persist:true heap)
    | k -> Hw_registry.create heap k
  in
  (pm, heap, b)

let recoverable =
  [ Hw_registry.Ede; Hw_registry.Hoop; Hw_registry.Spec_hw_dp; Hw_registry.Spec_hw ]

(* shared durability checks, mirroring the software suite *)

let test_committed_durable kind () =
  let pm, heap, b = mk_kind kind in
  let base, outcome =
    Testlib.run_with_crash pm heap b ~cells:8 ~fuse:None
      [ [ (0, 11); (1, 22) ]; [ (0, 33) ] ]
  in
  Alcotest.(check int) "both committed" 2 outcome.Testlib.committed;
  Pmem.crash pm;
  b.Ctx.recover ();
  let cells = Testlib.read_cells pm base 8 in
  Alcotest.(check int) "cell 0" 33 cells.(0);
  Alcotest.(check int) "cell 1" 22 cells.(1)

let test_uncommitted_revoked kind () =
  let pm, heap, b = mk_kind ~crash_prob:1.0 kind in
  let base = Heap.alloc heap (8 * 8) in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 7 do
        ctx.Ctx.write (base + (i * 8)) (100 + i)
      done);
  (try
     b.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 999;
         ctx.Ctx.write (base + 8) 888;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 16) 777)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  b.Ctx.recover ();
  let cells = Testlib.read_cells pm base 8 in
  for i = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "cell %d" i) (100 + i) cells.(i)
  done

let prop_atomic_durability kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "atomic durability: %s (hw)" (Hw_registry.name kind))
    ~count:60
    QCheck.(triple small_nat small_nat (int_bound 10000))
    (fun (seed, fuse_seed, salt) ->
      let cells = 12 and txs = 8 and max_writes = 6 in
      let rand = Random.State.make [| seed; salt; 23 |] in
      let program = Testlib.gen_program ~cells ~txs ~max_writes rand in
      let states = Testlib.reference ~cells program in
      let pm, heap =
        mk_pool ~seed:(salt + 2)
          ~crash_prob:(float_of_int (seed mod 11) /. 10.0)
          ()
      in
      let b =
        match kind with
        | Hw_registry.Spec_hw -> fst (small_spec heap)
        | Hw_registry.Spec_hw_dp -> fst (small_spec ~data_persist:true heap)
        | k -> Hw_registry.create heap k
      in
      let fuse = 1 + ((fuse_seed * 41) + salt) mod 4000 in
      let base, outcome =
        Testlib.run_with_crash pm heap b ~cells ~fuse:(Some fuse) program
      in
      if outcome.Testlib.crashed then begin
        Pmem.crash pm;
        b.Ctx.recover ()
      end;
      let recovered = Testlib.read_cells pm base cells in
      let ok = Testlib.check_recovered ~states ~outcome recovered in
      if not ok then
        QCheck.Test.fail_reportf
          "not atomic: committed=%d crashed=%b@ recovered=%a"
          outcome.Testlib.committed outcome.Testlib.crashed Testlib.pp_cells
          recovered;
      ok)

let test_empty_tx_between_commits kind () =
  let pm, heap, b = mk_kind ~seed:31 kind in
  let base = Heap.alloc heap 64 in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 1);
  let v = b.Ctx.run_tx (fun ctx -> ctx.Ctx.read base) in
  Alcotest.(check int) "read-only tx sees data" 1 v;
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 2);
  Pmem.crash pm;
  b.Ctx.recover ();
  Alcotest.(check int) "commit after read-only tx recovered" 2
    (Pmem.peek_volatile_int pm base)

(* hardware SpecPMT specifics *)

let test_hot_transition () =
  let _, heap = mk_pool () in
  let b, t = small_spec heap in
  let base = Heap.alloc heap 4096 in
  let page = Addr.page_index base in
  Alcotest.(check bool) "cold at first" false (Spec_hw.is_hot_page t ~page);
  (* hammer the same page past the (small-config) threshold of 3 *)
  for round = 0 to 4 do
    b.Ctx.run_tx (fun ctx -> ctx.Ctx.write (base + (round * 8)) round)
  done;
  Alcotest.(check bool) "hot after threshold" true (Spec_hw.is_hot_page t ~page);
  Alcotest.(check int) "one bulk copy" 1 (Spec_hw.transitions t);
  Alcotest.(check bool) "hot writes recorded" true (Spec_hw.hot_writes t > 0)

let test_hot_page_data_not_flushed () =
  let pm, heap = mk_pool () in
  let b, t = small_spec heap in
  let base = Heap.alloc heap 4096 in
  for round = 0 to 4 do
    b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base round)
  done;
  assert (Spec_hw.is_hot_page t ~page:(Addr.page_index base));
  (* once hot, a transaction's data lines are not flushed: only the log
     record lines are.  Count clwbs per tx. *)
  let c0 = (Pmem.stats pm).Stats.clwbs in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 99);
  let spec_clwbs = (Pmem.stats pm).Stats.clwbs - c0 in
  (* the record is one line + possibly a block header: no 64-line page
     flushes, no data-line flush *)
  Alcotest.(check bool)
    (Printf.sprintf "few flushes (%d)" spec_clwbs)
    true (spec_clwbs <= 4)

let test_cold_page_stays_cold () =
  let _, heap = mk_pool () in
  let b, t = small_spec heap in
  let base = Heap.alloc heap (64 * 4096) in
  (* touch many different pages once each: never hot *)
  for i = 0 to 40 do
    b.Ctx.run_tx (fun ctx -> ctx.Ctx.write (base + (i * 4096)) i)
  done;
  Alcotest.(check int) "no transitions" 0 (Spec_hw.transitions t);
  Alcotest.(check int) "all cold writes" 41 (Spec_hw.cold_writes t)

let test_epochs_and_reclamation_bound_log () =
  let pm, heap = mk_pool ~crash_prob:0.3 () in
  let b, t = small_spec heap in
  let base = Heap.alloc heap (2 * 4096) in
  for round = 0 to 600 do
    b.Ctx.run_tx (fun ctx ->
        for i = 0 to 7 do
          ctx.Ctx.write (base + (i * 8)) (round + i)
        done)
  done;
  Alcotest.(check bool) "epochs advanced" true (Spec_hw.epochs_started t > 1);
  Alcotest.(check bool) "reclamation ran" true (Spec_hw.reclaims t > 0);
  Alcotest.(check bool)
    (Printf.sprintf "log bounded (%d)" (b.Ctx.log_footprint ()))
    true
    (b.Ctx.log_footprint ()
    <= Hwconfig.small.Hwconfig.log_budget_bytes + (4 * Hwconfig.small.Hwconfig.spec_block_bytes));
  (* and the state is still recoverable afterwards *)
  Pmem.crash pm;
  b.Ctx.recover ();
  let cells = Testlib.read_cells pm base 8 in
  for i = 0 to 7 do
    Alcotest.(check int) "freshest committed value" (600 + i) cells.(i)
  done

(* the stale-record hazard: a page goes hot, its epoch is reclaimed (page
   persisted, records dropped), the page is then updated cold and the
   update commits; a later crash must keep the cold value *)
let test_reclaimed_page_cold_update_survives () =
  let pm, heap = mk_pool ~crash_prob:1.0 () in
  let b, t = small_spec heap in
  let hot_base = Heap.alloc heap 4096 in
  let filler = Heap.alloc heap (64 * 4096) in
  (* make hot_base's page hot *)
  for round = 0 to 5 do
    b.Ctx.run_tx (fun ctx -> ctx.Ctx.write hot_base (100 + round))
  done;
  assert (Spec_hw.is_hot_page t ~page:(Addr.page_index hot_base));
  (* force epoch churn until the page's records are reclaimed *)
  let round = ref 0 in
  while Spec_hw.is_hot_page t ~page:(Addr.page_index hot_base) && !round < 5000 do
    b.Ctx.run_tx (fun ctx ->
        ctx.Ctx.write (filler + (!round mod (64 * 512) * 8)) !round);
    incr round
  done;
  Alcotest.(check bool) "page eventually reclaimed to cold" false
    (Spec_hw.is_hot_page t ~page:(Addr.page_index hot_base));
  (* a cold committed update on the once-hot page *)
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write hot_base 4242);
  Pmem.crash pm;
  b.Ctx.recover ();
  Alcotest.(check int) "cold value not shadowed by stale records" 4242
    (Pmem.peek_volatile_int pm hot_base)

let test_ede_fence_free_logging () =
  let pm, heap, b = mk_kind Hw_registry.Ede in
  let base = Heap.alloc heap (16 * 8) in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 15 do
        ctx.Ctx.write (base + (i * 8)) i
      done);
  let f0 = (Pmem.stats pm).Stats.fences in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 15 do
        ctx.Ctx.write (base + (i * 8)) (i * 3)
      done);
  (* one drain at commit, nothing per update *)
  Alcotest.(check int) "EDE: one fence per tx" 1 ((Pmem.stats pm).Stats.fences - f0)

let test_spec_hw_one_fence_no_reclaim () =
  let pm, heap = mk_pool () in
  let b, _ = small_spec heap in
  let base = Heap.alloc heap (4 * 8) in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 1);
  let f0 = (Pmem.stats pm).Stats.fences in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 3 do
        ctx.Ctx.write (base + (i * 8)) i
      done);
  Alcotest.(check int) "one fence" 1 ((Pmem.stats pm).Stats.fences - f0)

(* TLB unit behaviour *)

let test_tlb_eviction_drops_state () =
  let pm = Pmem.create Config.small in
  let tlb = Tlb.create Hwconfig.small pm in
  let e = Tlb.access tlb ~page:1 in
  e.Tlb.epoch_bit <- true;
  e.Tlb.cnt_eid <- 3;
  (* small config capacity is 16: flood it *)
  for p = 100 to 140 do
    ignore (Tlb.access tlb ~page:p)
  done;
  Alcotest.(check bool) "evictions happened" true (Tlb.evictions tlb > 0);
  match Tlb.find tlb ~page:1 with
  | None -> ()
  | Some e' ->
      Alcotest.(check bool) "if resident, state intact" true e'.Tlb.epoch_bit

let test_tlb_clear_epoch_selective () =
  let pm = Pmem.create Config.small in
  let tlb = Tlb.create Hwconfig.small pm in
  let e1 = Tlb.access tlb ~page:1 in
  e1.Tlb.epoch_bit <- true;
  e1.Tlb.cnt_eid <- 2;
  let e2 = Tlb.access tlb ~page:2 in
  e2.Tlb.epoch_bit <- true;
  e2.Tlb.cnt_eid <- 3;
  let n = Tlb.clear_epoch tlb ~eid:2 in
  Alcotest.(check int) "one cleared" 1 n;
  Alcotest.(check bool) "page 1 cold" false e1.Tlb.epoch_bit;
  Alcotest.(check bool) "page 2 still hot" true e2.Tlb.epoch_bit

(* L1 tag bits (PBit/LogBit, Figure 9) *)

let test_l1tags_commit_scan () =
  let evicted = ref 0 in
  let l1 = L1tags.create ~lines:4 ~on_tx_evict:(fun _ -> incr evicted) in
  let e1 = L1tags.touch l1 ~line:0 in
  e1.L1tags.tx_dirty <- true;
  e1.L1tags.logbit <- true;
  e1.L1tags.pbit <- true;
  let e2 = L1tags.touch l1 ~line:64 in
  e2.L1tags.tx_dirty <- true;
  e2.L1tags.logbit <- true;
  let seen = ref 0 in
  L1tags.scan_tx_dirty l1 (fun _ -> incr seen);
  Alcotest.(check int) "scan visits tx-dirty lines" 2 !seen;
  L1tags.end_tx l1;
  Alcotest.(check bool) "LogBit cleared on commit" false e1.L1tags.logbit;
  Alcotest.(check bool) "PBit survives commit" true e1.L1tags.pbit;
  (* no tx-dirty lines remain: capacity evictions are silent *)
  for i = 2 to 10 do
    ignore (L1tags.touch l1 ~line:(i * 64))
  done;
  Alcotest.(check int) "no tx evictions after commit" 0 !evicted

let test_l1tags_tx_overflow_callback () =
  let evicted = ref [] in
  let l1 =
    L1tags.create ~lines:2 ~on_tx_evict:(fun e ->
        evicted := e.L1tags.line :: !evicted)
  in
  List.iter
    (fun line ->
      let e = L1tags.touch l1 ~line in
      e.L1tags.tx_dirty <- true)
    [ 0; 64; 128; 192 ];
  Alcotest.(check bool) "overflowing tx-dirty lines reported" true
    (List.length !evicted >= 2)

let test_spec_hw_l1_overflow_logged () =
  (* a transaction bigger than the (tiny, 16-line) L1 must overflow and
     still commit and recover correctly *)
  let pm, heap = mk_pool ~crash_prob:0.5 () in
  let b, t = small_spec heap in
  let base = Heap.alloc heap 4096 in
  (* make the page hot first *)
  for r = 0 to 4 do
    b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base r)
  done;
  (* one transaction touching 40 distinct lines *)
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 39 do
        ctx.Ctx.write (base + (i * 64)) (1000 + i)
      done);
  Alcotest.(check bool) "overflow happened" true
    (Spec_hw.l1_tx_evictions t > 0);
  Pmem.crash pm;
  b.Ctx.recover ();
  for i = 0 to 39 do
    Alcotest.(check int)
      (Printf.sprintf "cell %d recovered" i)
      (1000 + i)
      (Pmem.peek_volatile_int pm (base + (i * 64)))
  done

let test_software_sampled_hotness () =
  (* the sampled detector must still find the hot page and keep the same
     crash-consistency guarantees *)
  let pm, heap = mk_pool ~crash_prob:1.0 () in
  let b, t =
    Spec_hw.create heap
      {
        Spec_hw.hw = Hwconfig.small;
        data_persist = false;
        hotness = Spec_hw.Software_sampled { decay_period = 1000 };
      }
  in
  let base = Heap.alloc heap 4096 in
  for round = 0 to 5 do
    b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base (100 + round))
  done;
  Alcotest.(check bool) "hot detected by sampling" true
    (Spec_hw.is_hot_page t ~page:(Addr.page_index base));
  (try
     b.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 999;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 8) 888)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  b.Ctx.recover ();
  Alcotest.(check int) "revoked under sampled hotness" 105
    (Pmem.peek_volatile_int pm base)

(* the fence-free NT undo log *)

let test_nt_log_roundtrip () =
  let pm, heap = mk_pool ~crash_prob:0.0 () in
  let log =
    Nt_log.create heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity ~capacity:8
  in
  Nt_log.append log ~addr:100 ~old:1;
  Nt_log.append log ~addr:200 ~old:2;
  (* entries are persistent with no fence at all *)
  Pmem.crash pm;
  let log2 =
    Nt_log.attach heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity
  in
  Alcotest.(check (list (pair int int)))
    "entries persistent without fences"
    [ (100, 1); (200, 2) ]
    (Nt_log.scan log2)

let test_nt_log_truncation_hides_stale_entries () =
  let pm, heap = mk_pool ~crash_prob:0.0 () in
  let log =
    Nt_log.create heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity ~capacity:8
  in
  Nt_log.append log ~addr:100 ~old:1;
  Nt_log.append log ~addr:200 ~old:2;
  Nt_log.append log ~addr:300 ~old:3;
  Nt_log.truncate log;
  (* a shorter next transaction: stale entries 2 and 3 still sit in the
     region but carry the old generation *)
  Nt_log.append log ~addr:400 ~old:4;
  Pmem.crash pm;
  let log2 =
    Nt_log.attach heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity
  in
  Alcotest.(check (list (pair int int)))
    "only current-generation entries" [ (400, 4) ] (Nt_log.scan log2)

let test_nt_log_growth () =
  let _, heap = mk_pool ~crash_prob:0.0 () in
  let log =
    Nt_log.create heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity ~capacity:2
  in
  for i = 1 to 20 do
    Nt_log.append log ~addr:(i * 8) ~old:i
  done;
  Alcotest.(check int) "all entries after growth" 20
    (List.length (Nt_log.scan log))

let test_nt_log_stale_capacity_cell () =
  (* regression: the region and capacity root cells can sit on different
     cache lines, so a crash can persist the region pointer while
     dropping the capacity store.  [attach] must derive the capacity
     from the region's allocation header, not trust the cell — a stale
     zero used to send every append through the grow path with a
     doubled size of zero, and the degenerate region overran the
     neighbouring heap block's header *)
  let pm, heap = mk_pool ~crash_prob:0.0 () in
  let log =
    Nt_log.create heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity ~capacity:4
  in
  Nt_log.append log ~addr:100 ~old:1;
  (* persist a stale zero over the capacity cell, as such a crash would
     leave it *)
  let cap_cell = Heap.root_slot heap Hw_slots.ede_capacity in
  Pmem.store_int pm cap_cell 0;
  Pmem.clwb pm cap_cell;
  Pmem.sfence pm;
  Pmem.crash pm;
  let log2 =
    Nt_log.attach heap ~region_slot:Hw_slots.ede_region
      ~capacity_slot:Hw_slots.ede_capacity
  in
  Alcotest.(check (list (pair int int)))
    "entry readable past the stale cell"
    [ (100, 1) ]
    (Nt_log.scan log2);
  Nt_log.truncate log2;
  (* in-place appends up to the real capacity, then a legitimate grow *)
  for i = 1 to 9 do
    Nt_log.append log2 ~addr:(i * 8) ~old:i
  done;
  Alcotest.(check int) "appends use the header-derived capacity" 9
    (List.length (Nt_log.scan log2))

(* multi-core hardware SpecPMT (Section 5.2.2) *)

let mt_params =
  { Spec_hw.hw = Hwconfig.small; data_persist = false; hotness = Spec_hw.Tlb_counters }

let test_mt_interleaved_recovery () =
  let pm, heap = mk_pool ~seed:81 ~crash_prob:0.6 () in
  let pool = Spec_hw.Mt.create ~params:mt_params heap ~threads:3 in
  let base = Heap.alloc heap (4 * 8) in
  (Spec_hw.Mt.thread pool 0).Ctx.run_tx (fun ctx ->
      for i = 0 to 3 do
        ctx.Ctx.write (base + (i * 8)) 0
      done);
  let order = [ 0; 1; 2; 2; 1; 0; 1; 2; 0; 2 ] in
  List.iteri
    (fun round th ->
      (Spec_hw.Mt.thread pool th).Ctx.run_tx (fun ctx ->
          ctx.Ctx.write base ((round * 10) + th);
          ctx.Ctx.write (base + 8 + (th * 8)) round))
    order;
  Pmem.crash pm;
  Spec_hw.Mt.recover pool;
  (* last write to the shared cell: round 9, thread 2 *)
  Alcotest.(check int) "global timestamp order wins" 92
    (Pmem.peek_volatile_int pm base);
  Alcotest.(check int) "thread 0 cell" 8 (Pmem.peek_volatile_int pm (base + 8));
  Alcotest.(check int) "thread 1 cell" 6 (Pmem.peek_volatile_int pm (base + 16));
  Alcotest.(check int) "thread 2 cell" 9 (Pmem.peek_volatile_int pm (base + 24));
  (* the pool keeps working after recovery *)
  (Spec_hw.Mt.thread pool 1).Ctx.run_tx (fun ctx -> ctx.Ctx.write base 777);
  Pmem.crash pm;
  Spec_hw.Mt.recover pool;
  Alcotest.(check int) "post-recovery commit" 777
    (Pmem.peek_volatile_int pm base)

(* Figure 11, live: thread 1 holds an epoch that started before thread
   0's epoch ended; thread 0's reclamation must be deferred, so that a
   crash interrupting thread 1's transaction can still be revoked *)
let test_mt_figure11_deferred_reclaim () =
  let pm, heap = mk_pool ~seed:83 ~crash_prob:1.0 () in
  let pool = Spec_hw.Mt.create ~params:mt_params heap ~threads:2 in
  let x = Heap.alloc heap 8 in
  let t0 = Spec_hw.Mt.thread pool 0 and t1 = Spec_hw.Mt.thread pool 1 in
  (* both threads speculatively log x's page (w1, w2 of the figure) *)
  for r = 0 to 5 do
    t0.Ctx.run_tx (fun ctx -> ctx.Ctx.write x (100 + r))
  done;
  t1.Ctx.run_tx (fun ctx -> ctx.Ctx.write x 200);
  assert (Spec_hw.is_hot_page (Spec_hw.Mt.runtime pool 0) ~page:(Addr.page_index x));
  (* drive thread 0 through epochs and reclamations by filling its log;
     thread 1's first epoch is still open the whole time *)
  let filler = Heap.alloc heap (32 * 4096) in
  for r = 0 to 2000 do
    t0.Ctx.run_tx (fun ctx ->
        for i = 0 to 6 do
          ctx.Ctx.write (filler + (((r * 13) + (i * 97)) mod (32 * 512) * 8)) r
        done)
  done;
  (* thread 1's first epoch is still open and started before every epoch
     thread 0 closed: ALL of thread 0's reclamations must have been
     deferred — exactly the Figure 11 protection *)
  Alcotest.(check int) "reclamation deferred while an older epoch is open"
    0
    (Spec_hw.reclaims (Spec_hw.Mt.runtime pool 0));
  Alcotest.(check bool) "x's page still hot" true
    (Spec_hw.is_hot_page (Spec_hw.Mt.runtime pool 1) ~page:(Addr.page_index x));
  (* once thread 1 moves on to a new epoch, thread 0's reclamation can
     proceed *)
  for r = 0 to 2000 do
    t1.Ctx.run_tx (fun ctx -> ctx.Ctx.write x (300 + (r mod 7)))
  done;
  for r = 0 to 400 do
    t0.Ctx.run_tx (fun ctx ->
        for i = 0 to 6 do
          ctx.Ctx.write (filler + (((r * 29) + (i * 83)) mod (32 * 512) * 8)) r
        done)
  done;
  Alcotest.(check bool) "reclamation resumes after the epoch closes" true
    (Spec_hw.reclaims (Spec_hw.Mt.runtime pool 0) > 0);
  (* refresh w2 so the revocation test has a current committed value *)
  t1.Ctx.run_tx (fun ctx -> ctx.Ctx.write x 200);
  (* w3: thread 1 crashes mid-transaction on x; the speculative records
     must still revoke it — the exact corruption Figure 11 warns about *)
  (try
     t1.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write x 999;
         Pmem.set_fuse pm (Some 1);
         ignore (ctx.Ctx.read x))
   with Pmem.Crash -> ());
  Pmem.crash pm;
  Spec_hw.Mt.recover pool;
  Alcotest.(check int) "w3 revoked to w2" 200 (Pmem.peek_volatile_int pm x)

let prop_mt_hw_atomic_durability =
  QCheck.Test.make ~name:"atomic durability: SpecHPMT Mt (3 cores)" ~count:30
    QCheck.(triple small_nat small_nat (int_bound 10000))
    (fun (seed, fuse_seed, salt) ->
      let cells = 10 in
      let rand = Random.State.make [| seed; salt; 91 |] in
      let pm, heap =
        mk_pool ~seed:(salt + 5)
          ~crash_prob:(float_of_int (seed mod 11) /. 10.0)
          ()
      in
      let pool = Spec_hw.Mt.create ~params:mt_params heap ~threads:3 in
      let base = Heap.alloc heap (cells * 8) in
      (Spec_hw.Mt.thread pool 0).Ctx.run_tx (fun ctx ->
          for i = 0 to cells - 1 do
            ctx.Ctx.write (base + (i * 8)) 0
          done);
      let txs =
        List.init 15 (fun _ ->
            ( Random.State.int rand 3,
              List.init
                (1 + Random.State.int rand 4)
                (fun _ ->
                  (Random.State.int rand cells, Random.State.int rand 100000))
            ))
      in
      let reference = Array.make cells 0 in
      let committed = ref [] in
      Pmem.set_fuse pm (Some (1 + (((fuse_seed * 59) + salt) mod 3000)));
      let crashed =
        try
          List.iter
            (fun (th, writes) ->
              (Spec_hw.Mt.thread pool th).Ctx.run_tx (fun ctx ->
                  List.iter
                    (fun (c, v) -> ctx.Ctx.write (base + (c * 8)) v)
                    writes);
              committed := writes :: !committed)
            txs;
          Pmem.set_fuse pm None;
          false
        with Pmem.Crash -> true
      in
      if crashed then begin
        Pmem.crash pm;
        Spec_hw.Mt.recover pool
      end;
      List.iter
        (fun writes -> List.iter (fun (c, v) -> reference.(c) <- v) writes)
        (List.rev !committed);
      let recovered = Testlib.read_cells pm base cells in
      let matches r = Array.for_all2 (fun a b -> a = b) recovered r in
      let next_ref =
        match List.nth_opt txs (List.length !committed) with
        | Some (_, writes) ->
            let r = Array.copy reference in
            List.iter (fun (c, v) -> r.(c) <- v) writes;
            r
        | None -> reference
      in
      matches reference || matches next_ref)

(* epoch protocol (Section 5.2.2, Figure 11) *)

let test_epoch_protocol_figure11_rejected () =
  (* thread 2's epoch [e] ended, but thread 1 has an active epoch that
     started before [e] ended (it contains w1): reclaiming [e] would lose
     the record needed to revoke w3 *)
  let t1_active =
    {
      Epoch_protocol.thread = 1;
      eid = 1;
      start_ts = 0;
      end_ts = None;
      inactive = false;
    }
  in
  let t2_e =
    {
      Epoch_protocol.thread = 2;
      eid = 1;
      start_ts = 5;
      end_ts = Some 10;
      inactive = true;
    }
  in
  let all = [ t1_active; t2_e ] in
  Alcotest.(check bool) "figure 11 reclamation rejected" false
    (Epoch_protocol.can_reclaim ~all t2_e);
  Alcotest.(check bool) "nothing reclaimable" true
    (Epoch_protocol.next_reclaimable all = None)

let test_epoch_protocol_accepts_safe () =
  let t2_e =
    {
      Epoch_protocol.thread = 2;
      eid = 1;
      start_ts = 5;
      end_ts = Some 10;
      inactive = true;
    }
  in
  let t1_late =
    {
      Epoch_protocol.thread = 1;
      eid = 1;
      start_ts = 11;
      end_ts = None;
      inactive = false;
    }
  in
  let all = [ t1_late; t2_e ] in
  Alcotest.(check bool) "safe reclamation accepted" true
    (Epoch_protocol.can_reclaim ~all t2_e);
  (match Epoch_protocol.next_reclaimable all with
  | Some e -> Alcotest.(check int) "picks the closed epoch" 2 e.Epoch_protocol.thread
  | None -> Alcotest.fail "expected a reclaimable epoch");
  (* an open epoch is never reclaimable *)
  Alcotest.(check bool) "open epoch not reclaimable" false
    (Epoch_protocol.can_reclaim ~all t1_late)

(* property: a reclaimable epoch never overlaps any open or
   younger-started active epoch — the invariant that makes Figure 11's
   corruption impossible *)
let prop_epoch_protocol_safe =
  QCheck.Test.make ~name:"reclaimable epochs never overlap active ones"
    ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 8)
        (quad (int_bound 3) (int_bound 50) (int_bound 50) bool))
    (fun spans ->
      let all =
        List.mapi
          (fun i (thread, a, b, inactive) ->
            let start_ts = min a b and fin = max a b in
            {
              Epoch_protocol.thread;
              eid = i;
              start_ts;
              end_ts = (if inactive || fin > start_ts then Some fin else None);
              inactive;
            })
          spans
      in
      List.for_all
        (fun e ->
          (not (Epoch_protocol.can_reclaim ~all e))
          || (e.Epoch_protocol.inactive
             && e.Epoch_protocol.end_ts <> None
             && List.for_all
                  (fun o ->
                    o == e || o.Epoch_protocol.inactive
                    || o.Epoch_protocol.start_ts
                       > Option.get e.Epoch_protocol.end_ts)
                  all))
        all)

(* read-own-writes fast path: HOOP's [tx_read] must not probe the
   redirection buffer while the transaction's write set is empty — the
   [tx.buffer_probes] counter meters the slow path (see the Spht twin
   in test_backends.ml). *)
let test_hoop_readonly_skips_buffer () =
  let _, heap = mk_pool () in
  let b = Hw_registry.create heap Hw_registry.Hoop in
  let base = Heap.alloc heap 64 in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 5);
  let c = Specpmt_obs.Metrics.counter "tx.buffer_probes" in
  let v0 = Specpmt_obs.Metrics.counter_value c in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 9 do
        ignore (ctx.Ctx.read (base + (8 * (i mod 2))))
      done);
  Alcotest.(check int) "read-only tx probes no buffer" v0
    (Specpmt_obs.Metrics.counter_value c);
  b.Ctx.run_tx (fun ctx ->
      ctx.Ctx.write base 9;
      Alcotest.(check int) "reads own write" 9 (ctx.Ctx.read base));
  Alcotest.(check bool) "read-after-write still probes" true
    (Specpmt_obs.Metrics.counter_value c > v0)

let durability_cases =
  List.concat_map
    (fun kind ->
      let n = Hw_registry.name kind in
      [
        Alcotest.test_case (n ^ ": committed durable") `Quick
          (test_committed_durable kind);
        Alcotest.test_case (n ^ ": uncommitted revoked") `Quick
          (test_uncommitted_revoked kind);
        Alcotest.test_case (n ^ ": empty tx between commits") `Quick
          (test_empty_tx_between_commits kind);
      ])
    recoverable

let () =
  Alcotest.run "hwtxn"
    [
      ("durability", durability_cases);
      ( "atomic durability (property)",
        List.map
          (fun k -> QCheck_alcotest.to_alcotest (prop_atomic_durability k))
          recoverable );
      ( "hybrid logging",
        [
          Alcotest.test_case "cold-to-hot transition" `Quick
            test_hot_transition;
          Alcotest.test_case "hot data not flushed" `Quick
            test_hot_page_data_not_flushed;
          Alcotest.test_case "cold pages stay cold" `Quick
            test_cold_page_stays_cold;
          Alcotest.test_case "one fence per tx" `Quick
            test_spec_hw_one_fence_no_reclaim;
          Alcotest.test_case "EDE fence-free logging" `Quick
            test_ede_fence_free_logging;
          Alcotest.test_case "software-sampled hotness (section 6)" `Quick
            test_software_sampled_hotness;
        ] );
      ( "epoch reclamation",
        [
          Alcotest.test_case "epochs bound the log" `Quick
            test_epochs_and_reclamation_bound_log;
          Alcotest.test_case "reclaimed page cold update survives" `Quick
            test_reclaimed_page_cold_update_survives;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "eviction drops state" `Quick
            test_tlb_eviction_drops_state;
          Alcotest.test_case "clearepoch selective" `Quick
            test_tlb_clear_epoch_selective;
        ] );
      ( "l1 tags",
        [
          Alcotest.test_case "commit scan semantics" `Quick
            test_l1tags_commit_scan;
          Alcotest.test_case "overflow callback" `Quick
            test_l1tags_tx_overflow_callback;
          Alcotest.test_case "spec_hw overflow logged + recovers" `Quick
            test_spec_hw_l1_overflow_logged;
        ] );
      ( "nt log",
        [
          Alcotest.test_case "roundtrip, fence-free" `Quick
            test_nt_log_roundtrip;
          Alcotest.test_case "truncation hides stale entries" `Quick
            test_nt_log_truncation_hides_stale_entries;
          Alcotest.test_case "growth" `Quick test_nt_log_growth;
          Alcotest.test_case "stale capacity cell after crash" `Quick
            test_nt_log_stale_capacity_cell;
        ] );
      ( "multi-core",
        [
          Alcotest.test_case "interleaved recovery by timestamp" `Quick
            test_mt_interleaved_recovery;
          Alcotest.test_case "figure 11 live: deferred reclamation" `Quick
            test_mt_figure11_deferred_reclaim;
          QCheck_alcotest.to_alcotest prop_mt_hw_atomic_durability;
        ] );
      ( "epoch protocol",
        [
          Alcotest.test_case "figure 11 rejected" `Quick
            test_epoch_protocol_figure11_rejected;
          Alcotest.test_case "safe reclamation accepted" `Quick
            test_epoch_protocol_accepts_safe;
          QCheck_alcotest.to_alcotest prop_epoch_protocol_safe;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "hoop read-only tx skips the write buffer"
            `Quick test_hoop_readonly_skips_buffer;
        ] );
    ]
