lib/txn/ctx.ml: Addr Pmem Specpmt_pmalloc Specpmt_pmem
