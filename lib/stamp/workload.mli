(** The STAMP workload suite (paper Section 7.1.1), ported to the
    transactional interface.

    Every application is reimplemented around the same transactional write
    profile as the original (Table 2's transaction counts and write-set
    sizes at full scale), runs unchanged against any software or hardware
    scheme, and is deterministic: the final-state checksum of a run only
    depends on the workload and scale, never on the backend — which is
    itself a correctness check exercised by the test suite. *)

open Specpmt_pmalloc
open Specpmt_txn

(** Input scale: [Quick] for unit tests, [Small] for default benchmark
    runs, [Full] for longer, paper-shaped runs. *)
type scale = Quick | Small | Full

type prepared = {
  work : unit -> unit;
      (** the measured transactional phase; every durable update goes
          through the backend *)
  checksum : unit -> int;
      (** digest of the final persistent state (raw reads, unmetered) *)
}

type t = {
  name : string;
  description : string;
  prepare : scale -> Heap.t -> Ctx.backend -> prepared;
      (** build the input and initial persistent state (setup is performed
          through transactions as well, so speculative backends have
          snapshot coverage of all initial data, cf. Section 4.3.2 — but
          it is not part of the measured phase) *)
}

val all : t list
(** genome, intruder, kmeans-low, kmeans-high, labyrinth, ssca2,
    vacation-low, vacation-high, yada — the nine rows of the figures. *)

val find : string -> t option

val compute_scale : unit -> float
(** The calling domain's multiplier on the workloads' modelled compute
    time (see the ablation bench); 1.0 by default. *)

val set_compute_scale : float -> unit
(** Set the calling domain's multiplier (domain-local, so parallel bench
    workers can measure different scales concurrently). *)
