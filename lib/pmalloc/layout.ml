(** Fixed layout of the reserved head of a persistent pool.

    Byte 0 of the media image starts a 4 KiB root area (the "head of a
    persistent memory object pool" the paper stores its log-head pointer
    in, Section 4.1).  Everything after it belongs to the heap. *)

let magic_value = 0x53504D54 (* "SPMT" *)

(* Offsets inside the root area, all 8-byte cells. *)
let magic = 0
let heap_bump = 8
let log_bump = 16

(* 256 slots (2 KiB of the 4 KiB root area, starting at byte 64): large
   enough that the multi-threaded backends can stride their per-thread
   log-head slots one cache line apart — a prerequisite for publishing
   heads from different domains, where two heads sharing a line would
   clobber each other on whole-line media write-back. *)
let root_slot_count = 256

(** Persistent root pointer slots available to transaction backends and
    applications (log heads, commit markers, application roots...). *)
let root_slot i =
  if i < 0 || i >= root_slot_count then
    Fmt.invalid_arg "Layout.root_slot %d" i;
  64 + (i * 8)

let heap_base = 4096
