(** Shared fixed-region write-ahead intent log used by the undo-style
    baselines (PMDK, Kamino-Tx).

    Layout: [capacity:8][count:8][entries ...], where an entry is
    [words_per_entry] 8-byte cells.  The persistent [count] cell is the
    log's validity marker: every append persists the entry and the new
    count with a persist barrier before the caller may update data — the
    classical "a fence after each log" of Figure 2 (left). *)

open Specpmt_pmem
open Specpmt_pmalloc

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  region_slot : int;
  capacity_slot : int;
  words_per_entry : int;
  mutable region : Addr.t;
  mutable capacity : int;
  mutable count : int; (* cached copy of the persistent count *)
}

let entries_base r = r + 16
let count_addr r = r + 8

let allocate_region t capacity =
  let bytes = 16 + (capacity * t.words_per_entry * 8) in
  let r = Heap.alloc_log t.heap bytes in
  Pmem.store_int t.pm r capacity;
  Pmem.store_int t.pm (count_addr r) 0;
  Pmem.flush_range t.pm r 16;
  Pmem.store_int t.pm (Heap.root_slot t.heap t.region_slot) r;
  Pmem.store_int t.pm (Heap.root_slot t.heap t.capacity_slot) capacity;
  Pmem.clwb t.pm (Heap.root_slot t.heap t.region_slot);
  Pmem.sfence t.pm;
  t.region <- r;
  t.capacity <- capacity

let create heap ~region_slot ~capacity_slot ~words_per_entry ~capacity =
  let t =
    {
      heap;
      pm = Heap.pmem heap;
      region_slot;
      capacity_slot;
      words_per_entry;
      region = 0;
      capacity = 0;
      count = 0;
    }
  in
  allocate_region t capacity;
  t

let attach heap ~region_slot ~capacity_slot ~words_per_entry =
  let pm = Heap.pmem heap in
  let region = Pmem.load_int pm (Heap.root_slot heap region_slot) in
  let capacity = Pmem.load_int pm (Heap.root_slot heap capacity_slot) in
  {
    heap;
    pm;
    region_slot;
    capacity_slot;
    words_per_entry;
    region;
    capacity;
    count = Pmem.load_int pm (count_addr region);
  }

let grow t =
  let old = t.region in
  let old_count = t.count in
  let cap = t.capacity * 2 in
  let old_base = entries_base old in
  allocate_region t cap;
  (* copy live entries of the open transaction into the new region *)
  let base = entries_base t.region in
  for w = 0 to (old_count * t.words_per_entry) - 1 do
    Pmem.store_int t.pm (base + (w * 8)) (Pmem.load_int t.pm (old_base + (w * 8)))
  done;
  Pmem.store_int t.pm (count_addr t.region) old_count;
  Pmem.flush_range t.pm t.region (16 + (old_count * t.words_per_entry * 8));
  Pmem.sfence t.pm;
  Heap.free t.heap old

(** Append an entry and make it durable: store the words, flush them,
    bump and flush the count, fence.  This is the per-update persist
    barrier whose removal is SpecPMT's whole point. *)
let append_durable t words =
  assert (List.length words = t.words_per_entry);
  if t.count >= t.capacity then grow t;
  let base = entries_base t.region + (t.count * t.words_per_entry * 8) in
  List.iteri (fun i w -> Pmem.store_int t.pm (base + (i * 8)) w) words;
  Pmem.flush_range t.pm base (t.words_per_entry * 8);
  t.count <- t.count + 1;
  Pmem.store_int t.pm (count_addr t.region) t.count;
  Pmem.clwb t.pm (count_addr t.region);
  Pmem.sfence t.pm

(** Truncate the log (the commit marker of undo schemes): persist a zero
    count with one barrier. *)
let truncate_durable t =
  t.count <- 0;
  Pmem.store_int t.pm (count_addr t.region) 0;
  Pmem.clwb t.pm (count_addr t.region);
  Pmem.sfence t.pm

let count t = t.count

(** Read entry [i] (0-based, oldest first) as a word list. *)
let entry t i =
  let base = entries_base t.region + (i * t.words_per_entry * 8) in
  List.init t.words_per_entry (fun w -> Pmem.load_int t.pm (base + (w * 8)))

let footprint t = 16 + (t.capacity * t.words_per_entry * 8)
