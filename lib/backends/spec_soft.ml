open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type params = {
  data_persist : bool;
  block_bytes : int;
  reclaim_threshold : int;
}

let default_params =
  { data_persist = false; block_bytes = 4096; reclaim_threshold = 1 lsl 20 }

let dp_params = { default_params with data_persist = true }

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  params : params;
  head_slot : int;
  tsc : Tsc.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable allocs : Addr.t list;
      (* allocations made by the open transaction: released again on
         rollback, otherwise an aborted transaction leaks them forever
         (frees are deferred; allocs must be compensated) *)
  mutable arena : Log_arena.t;
  mutable in_tx : bool;
  mutable reclaims : int;
  mutable last_compact_footprint : int;
      (* growth-based trigger: reclaiming again before the log has grown
         past twice the last compacted size would make reclamation cost
         quadratic when the live set itself exceeds the threshold *)
}

(* Background reclamation (Section 4.2): runs on a dedicated core in the
   paper, so its memory operations are unmetered here and an estimated
   cost is charged to the background ledger instead. *)
let reclaim t =
  let open Specpmt_obs in
  Phase.run Phase.Reclaim @@ fun () ->
  let stats =
    Pmem.with_unmetered t.pm (fun () -> Log_arena.compact t.arena)
  in
  t.reclaims <- t.reclaims + 1;
  let scan_ns = float_of_int stats.Log_arena.entries_scanned *. 6.0 in
  let copy_ns = float_of_int stats.Log_arena.entries_live *. 30.0 in
  Pmem.charge_bg_ns t.pm (scan_ns +. copy_ns);
  Metrics.incr (Metrics.counter "reclaim.cycles");
  Metrics.add (Metrics.counter "reclaim.blocks_freed")
    stats.Log_arena.blocks_freed;
  Metrics.add (Metrics.counter "reclaim.entries_scanned")
    stats.Log_arena.entries_scanned;
  Metrics.add (Metrics.counter "reclaim.entries_live")
    stats.Log_arena.entries_live;
  Metrics.add (Metrics.counter "reclaim.bg_ns")
    (int_of_float (scan_ns +. copy_ns));
  Hist.observe
    (Metrics.histogram "reclaim.entries_scanned_per_cycle")
    stats.Log_arena.entries_scanned;
  Trace.emit "spec.reclaim" ~a:stats.Log_arena.blocks_freed
    ~b:stats.Log_arena.entries_live;
  stats

let reclaim_now t = reclaim t
let reclaim_count t = t.reclaims

let maybe_reclaim t =
  let foot = Log_arena.footprint t.arena in
  if
    foot > t.params.reclaim_threshold
    && foot > 2 * t.last_compact_footprint
  then begin
    ignore (reclaim t);
    t.last_compact_footprint <- Log_arena.footprint t.arena
  end

let tx_write t a v =
  let slot, first = Write_set.record t.ws a ~old_value:(Pmem.load_int t.pm a) in
  if first then
    slot.Write_set.entry_pos <-
      Log_arena.add_entry t.arena ~target:a ~value:v
  else Log_arena.set_entry_value t.arena slot.Write_set.entry_pos v;
  Pmem.store_int t.pm a v

let commit t =
  (* a read-only transaction has nothing to persist and must not emit a
     zero-entry record (it would read as the end-of-log sentinel) *)
  if Log_arena.entry_words t.arena = 0 then Log_arena.abandon_record t.arena
  else begin
    let ts = Tsc.next t.tsc in
    Log_arena.commit_record t.arena ~timestamp:ts
  end;
  if t.params.data_persist then begin
    (* SpecSPMT-DP: also force the in-place updates into the persistence
       domain before returning (what vanilla SpecPMT deliberately skips) *)
    Write_set.iter_in_order t.ws (fun a _ -> Pmem.clwb t.pm a);
    Pmem.sfence t.pm
  end;
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  t.allocs <- [];
  Write_set.clear t.ws;
  t.in_tx <- false;
  maybe_reclaim t

(* Abort: restore the in-place (still volatile) updates from the write
   set, freshen the log entries to the restored values, and commit the
   record — the log then describes exactly the post-rollback state, which
   keeps the "every datum has a fresh committed record" invariant. *)
let rollback t =
  Write_set.iter_newest_first t.ws (fun a slot ->
      Pmem.store_int t.pm a slot.Write_set.old_value;
      Log_arena.set_entry_value t.arena slot.Write_set.entry_pos
        slot.Write_set.old_value);
  if Log_arena.entry_words t.arena = 0 then Log_arena.abandon_record t.arena
  else begin
    let ts = Tsc.next t.tsc in
    Log_arena.commit_record t.arena ~timestamp:ts
  end;
  (* compensate the aborted transaction's allocations: its deferred frees
     are simply dropped, but blocks it allocated would otherwise leak *)
  List.iter (fun a -> Heap.free t.heap a) t.allocs;
  t.allocs <- [];
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let run_tx t f =
  if t.in_tx then invalid_arg "Spec_soft: nested transaction";
  t.in_tx <- true;
  Log_arena.begin_record t.arena;
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write = (fun a v -> tx_write t a v);
      alloc =
        (fun n ->
          let a = Heap.alloc t.heap n in
          t.allocs <- a :: t.allocs;
          a);
      free = (fun a -> t.frees <- a :: t.frees);
    }
  in
  match f ctx with
  | v ->
      commit t;
      v
  | exception Ctx.Abort ->
      rollback t;
      raise Ctx.Abort

(* Recovery (Section 3.1): replay the valid record prefix oldest-first.
   Stale entries are later overwritten by fresher ones; the torn record of
   an interrupted transaction fails its checksum and ends the scan. *)
let replay ?(head_slot = Slots.spec_head) pm ~block_bytes =
  let restored = Hashtbl.create 256 in
  let max_ts =
    Log_arena.recover_scan pm ~head_slot ~block_bytes
      ~f:(fun ~ts:_ entries ->
        Array.iter
          (fun (a, v) ->
            Pmem.store_int pm a v;
            Hashtbl.replace restored a v)
          entries)
  in
  Hashtbl.iter (fun a _ -> Pmem.clwb pm a) restored;
  Pmem.sfence pm;
  (restored, max_ts)

let recover_standalone pm ~block_bytes = fst (replay pm ~block_bytes)

let recover t =
  let open Specpmt_obs in
  Phase.run Phase.Recover @@ fun () ->
  (* replay first: the heap walk must see the restored image *)
  let restored, max_ts =
    replay ~head_slot:t.head_slot t.pm ~block_bytes:t.params.block_bytes
  in
  Heap.recover t.heap;
  Tsc.restart_above t.tsc max_ts;
  t.arena <-
    Log_arena.attach t.heap ~head_slot:t.head_slot
      ~block_bytes:t.params.block_bytes;
  t.frees <- [] (* deferred frees of a crashed transaction are dead *);
  t.allocs <- [] (* likewise its allocations: Heap.recover owns the walk *);
  Write_set.clear t.ws;
  t.in_tx <- false;
  Metrics.incr (Metrics.counter "recover.cycles");
  Metrics.add (Metrics.counter "recover.cells_restored")
    (Hashtbl.length restored);
  Trace.emit "spec.recover" ~a:(Hashtbl.length restored) ~b:max_ts

(* Reattach the arena after an external replay — the multi-threaded
   runtime replays all threads' logs in global timestamp order before
   reattaching each thread (Section 5.2.2). *)
let reattach t =
  t.arena <-
    Log_arena.attach t.heap ~head_slot:t.head_slot
      ~block_bytes:t.params.block_bytes;
  t.frees <- [];
  t.allocs <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let snapshot_region t addr len =
  assert (Addr.is_word_aligned addr && len mod 8 = 0);
  let backend_ctx_write = tx_write t in
  if t.in_tx then invalid_arg "Spec_soft.snapshot_region: open transaction";
  t.in_tx <- true;
  Log_arena.begin_record t.arena;
  for i = 0 to (len / 8) - 1 do
    let a = addr + (i * 8) in
    backend_ctx_write a (Pmem.load_int t.pm a)
  done;
  commit t

(* Switching crash-consistency mechanisms (Section 4.3.1): because
   SpecPMT uses in-place updates, leaving speculative logging only
   requires persisting the dirty durable data at the transition point —
   here by selective flushing of every cell the live log covers (the
   "software analysis of record indices and clwbs" option).  Once done,
   the speculative log is no longer needed and is emptied, and any other
   mechanism (undo, redo...) may run on the same pool from then on. *)
let switch_out t =
  if t.in_tx then invalid_arg "Spec_soft.switch_out: open transaction";
  (* 1: persist every datum with a live record *)
  let touched = Hashtbl.create 256 in
  ignore
    (Log_arena.recover_scan t.pm ~head_slot:t.head_slot
       ~block_bytes:t.params.block_bytes ~f:(fun ~ts:_ entries ->
         Array.iter (fun (a, _) -> Hashtbl.replace touched a ()) entries));
  Hashtbl.iter (fun a () -> Pmem.clwb t.pm a) touched;
  Pmem.sfence t.pm;
  (* 2: the log is now dead weight and must be durably invalidated — not
     just trimmed.  Records left alive in the tail block are a time bomb:
     once another mechanism owns the pool and mutates the same cells, any
     later scan from the head slot would replay the stale speculative
     values over the new owner's committed data.  [reset] persists an
     end-of-log sentinel before recycling the other blocks. *)
  Log_arena.reset t.arena;
  Hashtbl.length touched

let create ?(head_slot = Slots.spec_head) ?tsc heap params =
  let pm = Heap.pmem heap in
  let t =
    {
      heap;
      pm;
      params;
      head_slot;
      tsc = (match tsc with Some c -> c | None -> Tsc.create ());
      ws = Write_set.create ();
      frees = [];
      allocs = [];
      arena =
        Log_arena.create heap ~head_slot
          ~block_bytes:params.block_bytes;
      in_tx = false;
      reclaims = 0;
      last_compact_footprint = params.block_bytes;
    }
  in
  let backend =
    {
      Ctx.name = (if params.data_persist then "SpecSPMT-DP" else "SpecSPMT");
      run_tx = (fun f -> run_tx t f);
      recover = (fun () -> recover t);
      drain = (fun () -> ());
      log_footprint = (fun () -> Log_arena.footprint t.arena);
      supports_recovery = true;
    }
  in
  (backend, t)
