lib/txn/write_set.mli: Addr Specpmt_pmem
