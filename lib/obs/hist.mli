(** Log2-bucket histograms.

    Fixed 64-bucket power-of-two histograms over non-negative integer
    samples (latencies in simulated nanoseconds, write-set sizes in
    bytes).  Bucket [0] counts samples [<= 0]; bucket [i >= 1] counts
    samples in [[2^(i-1), 2^i)].  Observation is O(1) with no
    allocation, so the per-transaction hot path can afford it. *)

type t

type snapshot = {
  count : int;
  sum : float;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : (int * int) list;
      (** non-empty buckets as [(inclusive lower bound, count)] pairs,
          ascending *)
}

val create : unit -> t

val observe : t -> int -> unit
(** Record one sample (negative samples land in bucket 0). *)

val reset : t -> unit
val snapshot : t -> snapshot

val absorb : t -> snapshot -> unit
(** Merge a snapshot (typically taken on another domain) into [t]:
    counts and sums add, min/max widen, buckets add pairwise.  Lossless
    because snapshots carry exact bucket boundaries. *)

val mean : snapshot -> float
(** 0 when empty. *)

val quantile : snapshot -> float -> int
(** [quantile s q] estimates the [q]-quantile ([0 <= q <= 1]) from the
    bucket boundaries: the upper bound of the bucket holding the
    [q*count]-th sample.  0 when empty. *)

val to_json : snapshot -> Json.t
(** Schema: [{"count", "sum", "mean", "min", "max", "p50", "p90", "p99",
    "buckets": [[lo, count], ...]}]. *)
