lib/pmalloc/layout.mli:
