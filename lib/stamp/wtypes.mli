(** Shared workload types and helpers (documented in {!Workload}). *)

open Specpmt_pmalloc
open Specpmt_txn

type scale = Quick | Small | Full

type prepared = { work : unit -> unit; checksum : unit -> int }

type t = {
  name : string;
  description : string;
  prepare : scale -> Heap.t -> Ctx.backend -> prepared;
}

val mix : int -> int -> int
(** Fold a value into a running digest (FNV-style). *)

val compute_scale : unit -> float
(** The calling domain's multiplier on workload compute charges (see the
    ablation bench); 1.0 by default. *)

val set_compute_scale : float -> unit
(** Set the calling domain's multiplier.  Domain-local so parallel bench
    workers can measure different scales concurrently. *)

val compute : Heap.t -> float -> unit
(** Charge algorithmic (non-memory) work to the simulated clock: the STAMP
    applications spend much of their time computing between transactional
    updates, invisible to the device model. *)
