(** Growable persistent vector of 8-byte cells.

    Growth reallocates the data block at double capacity and copies inside
    the calling transaction, so crash atomicity extends to reallocation. *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> ?capacity:int -> unit -> t
(** Allocate an empty vector with the given initial capacity (default
    8 cells) in the transaction's heap. *)

val of_header : Addr.t -> t
(** Reattach to an existing vector from its header address (as returned
    by {!header}) — the rediscovery path after a crash. *)

val header : t -> Addr.t
(** The vector's header block, the one address that must be stored
    somewhere reachable (e.g. a {!Specpmt_pmalloc.Heap.root_slot}) to
    survive a crash. *)

val capacity : Ctx.ctx -> t -> int
(** Allocated slots (grows by doubling on {!push}). *)

val length : Ctx.ctx -> t -> int
(** Live elements, [<= capacity]. *)

val get : Ctx.ctx -> t -> int -> int
(** Raises [Invalid_argument] out of bounds. *)

val set : Ctx.ctx -> t -> int -> int -> unit
(** Overwrite an existing index; raises [Invalid_argument] out of
    bounds. *)

val push : Ctx.ctx -> t -> int -> unit
(** Append, doubling the data block first when full (old block freed,
    contents copied — all inside the calling transaction). *)

val pop : Ctx.ctx -> t -> int option
(** Remove and return the last element; [None] when empty. *)

val iter : Ctx.ctx -> t -> (int -> unit) -> unit
(** In index order. *)

val to_list : Ctx.ctx -> t -> int list
(** The elements in index order. *)
