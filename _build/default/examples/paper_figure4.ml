(* A literate replay of the paper's Figure 4: two transactions updating
   locations a and b, with the persistent memory state inspected at each
   of the figure's four snapshots.

     dune exec examples/paper_figure4.exe

   tx_begin(); a = 1; b = 0; tx_end();       -- snapshot 1
   tx_begin(); a = 2; b = 10;                -- snapshot 2 (before commit)
   tx_end();                                 -- snapshot 3
   reclaim_log();                            -- snapshot 4 *)

open Specpmt
module Slots = Specpmt_backends.Slots

let dump_log pm tag =
  Printf.printf "%s\n  log:" tag;
  let n = ref 0 in
  ignore
    (Log_arena.recover_scan pm ~head_slot:Slots.spec_head ~block_bytes:4096
       ~f:(fun ~ts entries ->
         incr n;
         Printf.printf " [tx commit ts=%d:" ts;
         Array.iter (fun (a, v) -> Printf.printf " (&%#x,%d)" a v) entries;
         Printf.printf "]"));
  if !n = 0 then Printf.printf " (empty)";
  Printf.printf "\n"

let () =
  let pm =
    Pmem.create { Pmem_config.default with crash_word_persist_prob = 0.0 }
  in
  let heap = Heap.create pm in
  let backend, runtime = Spec_soft.create heap Spec_soft.default_params in
  let a = Heap.alloc heap 8 and b = Heap.alloc heap 8 in
  Printf.printf "a at %#x, b at %#x\n\n" a b;

  (* tx #1 *)
  backend.Ctx.run_tx (fun ctx ->
      ctx.Ctx.write a 1;
      ctx.Ctx.write b 0);
  dump_log pm "snapshot 1 — tx1 committed";
  Printf.printf "  data (media): a=%d b=%d   <- not flushed, still volatile\n\n"
    (Pmem.peek_media_int pm a) (Pmem.peek_media_int pm b);

  (* tx #2, interrupted before commit: the figure's second snapshot notes
     that tx1's log records suffice to restore the pre-tx2 state *)
  (try
     backend.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write a 2;
         ctx.Ctx.write b 10;
         Pmem.set_fuse pm (Some 1);
         ignore (ctx.Ctx.read a) (* crash here *))
   with Pmem.Crash -> ());
  Pmem.crash pm;
  dump_log pm "snapshot 2 — crash during tx2";
  backend.Ctx.recover ();
  Printf.printf "  after recovery: a=%d b=%d   <- tx2 revoked by tx1's records\n\n"
    (Pmem.load_int pm a) (Pmem.load_int pm b);

  (* tx #2 again, committed this time *)
  backend.Ctx.run_tx (fun ctx ->
      ctx.Ctx.write a 2;
      ctx.Ctx.write b 10);
  dump_log pm "snapshot 3 — tx2 committed";
  Printf.printf
    "  data (media): a=%d b=%d   <- still not flushed; tx2's records are \
     the redo log\n\n"
    (Pmem.peek_media_int pm a) (Pmem.peek_media_int pm b);

  (* reclaim_log(): tx1's records are stale, only tx2's survive *)
  ignore (Spec_soft.reclaim_now runtime);
  dump_log pm "snapshot 4 — after reclaim_log()";
  Pmem.crash pm;
  backend.Ctx.recover ();
  Printf.printf "  replaying the compacted log: a=%d b=%d\n" (Pmem.load_int pm a)
    (Pmem.load_int pm b);
  assert (Pmem.load_int pm a = 2 && Pmem.load_int pm b = 10)
