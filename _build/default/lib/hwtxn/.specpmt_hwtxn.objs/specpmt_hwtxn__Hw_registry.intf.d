lib/hwtxn/hw_registry.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
