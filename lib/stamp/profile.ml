(** Transaction profiling (paper Table 2): wraps a backend and counts, per
    transaction, the number of update operations and the unique cells
    written (the write-set size in bytes); also feeds the per-transaction
    latency and write-set-size histograms of the bench reports. *)

open Specpmt_pmem
open Specpmt_txn
module Hist = Specpmt_obs.Hist

type counters = {
  mutable txs : int;
  mutable updates : int;
  mutable ws_bytes : int; (* sum over txs of unique cells * 8 *)
  lat_hist : Hist.t;
  ws_hist : Hist.t;
}

let fresh () =
  {
    txs = 0;
    updates = 0;
    ws_bytes = 0;
    lat_hist = Hist.create ();
    ws_hist = Hist.create ();
  }

let reset_histograms c =
  Hist.reset c.lat_hist;
  Hist.reset c.ws_hist

let avg_tx_bytes c =
  if c.txs = 0 then 0.0 else float_of_int c.ws_bytes /. float_of_int c.txs

let pp ppf c =
  Fmt.pf ppf "%d txs, %d updates, %.1f B/tx" c.txs c.updates (avg_tx_bytes c)

(** [wrap backend] counts transactional writes flowing through the
    returned backend. *)
let wrap ?clock (b : Ctx.backend) =
  let c = fresh () in
  let cells : (Addr.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let wrap_ctx (ctx : Ctx.ctx) =
    {
      ctx with
      Ctx.write =
        (fun a v ->
          c.updates <- c.updates + 1;
          Hashtbl.replace cells a ();
          ctx.Ctx.write a v);
    }
  in
  let b' =
    {
      b with
      Ctx.run_tx =
        (fun f ->
          Hashtbl.reset cells;
          let t0 = match clock with Some now -> now () | None -> 0.0 in
          let r = b.Ctx.run_tx (fun ctx -> f (wrap_ctx ctx)) in
          (match clock with
          | Some now -> Hist.observe c.lat_hist (int_of_float (now () -. t0))
          | None -> ());
          let ws = 8 * Hashtbl.length cells in
          c.txs <- c.txs + 1;
          c.ws_bytes <- c.ws_bytes + ws;
          Hist.observe c.ws_hist ws;
          r);
    }
  in
  (b', c)
