(** The multi-threaded epoch-reclamation decision rule of Section 5.2.2.

    An epoch [e] may be reclaimed iff it is inactive (its ID was
    reassigned to a younger epoch of the same thread) and every active
    epoch — of any thread — started after [e] ended; otherwise reclaiming
    it could discard the record needed to revoke a concurrent uncommitted
    write (Figure 11). *)

type epoch_span = {
  thread : int;
  eid : int;
  start_ts : int;
  end_ts : int option;  (** [None] while the epoch is still open *)
  inactive : bool;
}

val can_reclaim : all:epoch_span list -> epoch_span -> bool

val next_reclaimable : epoch_span list -> epoch_span option
(** Oldest-ending reclaimable epoch, if any — the paper's "always reclaim
    the oldest" strategy with deferral. *)
