lib/stamp/wtypes.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
