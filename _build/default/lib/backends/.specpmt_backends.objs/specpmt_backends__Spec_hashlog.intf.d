lib/backends/spec_hashlog.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
