open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn
open Specpmt_pstruct

let mk () =
  let pm = Pmem.create Config.small in
  let heap = Heap.create pm in
  (pm, heap, Ctx.raw_ctx heap)

(* parray *)

let test_parray_roundtrip () =
  let _, _, ctx = mk () in
  let a = Parray.create ctx 16 in
  Parray.fill ctx a 0;
  for i = 0 to 15 do
    Parray.set ctx a i (i * i)
  done;
  Alcotest.(check (list int))
    "roundtrip"
    (List.init 16 (fun i -> i * i))
    (Parray.to_list ctx a)

let test_parray_bounds () =
  let _, _, ctx = mk () in
  let a = Parray.create ctx 4 in
  Alcotest.(check bool) "oob raises" true
    (try
       ignore (Parray.get ctx a 4);
       false
     with Invalid_argument _ -> true)

(* phashtbl vs Hashtbl reference *)

let prop_phashtbl_matches_hashtbl =
  QCheck.Test.make ~name:"phashtbl behaves like Hashtbl" ~count:100
    QCheck.(
      list_of_size Gen.(1 -- 120)
        (triple (int_bound 60) (int_bound 10_000) (int_bound 9)))
    (fun ops ->
      let _, _, ctx = mk () in
      let t = Phashtbl.create ctx 8 (* tiny: collisions guaranteed *) in
      let r : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (k, v, action) ->
          if action < 6 then begin
            ignore (Phashtbl.replace ctx t k v);
            Hashtbl.replace r k v
          end
          else if action < 8 then begin
            let added = Phashtbl.add_if_absent ctx t k v in
            if not (Hashtbl.mem r k) then begin
              assert added;
              Hashtbl.replace r k v
            end
            else assert (not added)
          end
          else begin
            let removed = Phashtbl.remove ctx t k in
            assert (removed = Hashtbl.mem r k);
            Hashtbl.remove r k
          end;
          assert (Phashtbl.length ctx t = Hashtbl.length r))
        ops;
      Hashtbl.fold
        (fun k v acc -> acc && Phashtbl.find ctx t k = Some v)
        r true
      && Phashtbl.fold ctx t (fun k v acc -> acc && Hashtbl.find_opt r k = Some v) true)

(* pqueue vs Queue reference *)

let prop_pqueue_matches_queue =
  QCheck.Test.make ~name:"pqueue behaves like Queue" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (pair (int_bound 1000) bool))
    (fun ops ->
      let _, _, ctx = mk () in
      let t = Pqueue.create ctx in
      let r = Queue.create () in
      List.iter
        (fun (v, pop) ->
          if pop then begin
            let expect = if Queue.is_empty r then None else Some (Queue.pop r) in
            assert (Pqueue.pop ctx t = expect)
          end
          else begin
            Pqueue.push ctx t v;
            Queue.push v r
          end;
          assert (Pqueue.size ctx t = Queue.length r))
        ops;
      true)

(* ptreap vs Map reference *)

module IntMap = Map.Make (Int)

let prop_ptreap_matches_map =
  QCheck.Test.make ~name:"ptreap behaves like Map" ~count:100
    QCheck.(
      list_of_size Gen.(1 -- 120)
        (triple (int_bound 100) (int_bound 10_000) (int_bound 9)))
    (fun ops ->
      let _, _, ctx = mk () in
      let t = Ptreap.create ctx in
      let r = ref IntMap.empty in
      List.iter
        (fun (k, v, action) ->
          if action < 6 then begin
            Ptreap.insert ctx t k v;
            r := IntMap.add k v !r
          end
          else if action < 8 then begin
            let removed = Ptreap.remove ctx t k in
            assert (removed = IntMap.mem k !r);
            r := IntMap.remove k !r
          end
          else begin
            (* ceiling query *)
            let expect = IntMap.find_first_opt (fun k' -> k' >= k) !r in
            assert (Ptreap.find_ceiling ctx t k = expect)
          end)
        ops;
      (* full ordered iteration agrees *)
      let got = ref [] in
      Ptreap.iter ctx t (fun k v -> got := (k, v) :: !got);
      List.rev !got = IntMap.bindings !r
      && Ptreap.length ctx t = IntMap.cardinal !r)

(* pvector vs dynamic-array reference *)

let prop_pvector_matches_dynarray =
  QCheck.Test.make ~name:"pvector behaves like a growable array" ~count:100
    QCheck.(list_of_size Gen.(1 -- 120) (pair (int_bound 1000) (int_bound 4)))
    (fun ops ->
      let _, _, ctx = mk () in
      let t = Pvector.create ctx ~capacity:2 () in
      let r = ref [] (* newest first *) in
      List.iter
        (fun (v, action) ->
          match action with
          | 0 | 1 | 2 ->
              Pvector.push ctx t v;
              r := v :: !r
          | 3 -> (
              let expect = match !r with [] -> None | x :: tl -> r := tl; Some x in
              match (Pvector.pop ctx t, expect) with
              | Some a, Some b -> assert (a = b)
              | None, None -> ()
              | _ -> assert false)
          | _ ->
              if !r <> [] then begin
                let i = v mod List.length !r in
                Pvector.set ctx t i v;
                r := List.rev (List.mapi (fun j x -> if j = i then v else x)
                                 (List.rev !r)) |> List.rev;
                (* keep reference in newest-first order *)
                r := List.rev !r
              end)
        ops;
      Pvector.to_list ctx t = List.rev !r
      && Pvector.length ctx t = List.length !r)

let prop_plist_matches_stack =
  QCheck.Test.make ~name:"plist behaves like a stack with removal" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (pair (int_bound 50) (int_bound 5)))
    (fun ops ->
      let _, _, ctx = mk () in
      let t = Plist.create ctx in
      let r = ref [] in
      List.iter
        (fun (v, action) ->
          match action with
          | 0 | 1 | 2 ->
              Plist.push ctx t v;
              r := v :: !r
          | 3 -> (
              match (Plist.pop ctx t, !r) with
              | Some a, x :: tl ->
                  assert (a = x);
                  r := tl
              | None, [] -> ()
              | _ -> assert false)
          | _ ->
              let removed = Plist.remove ctx t v in
              assert (removed = List.mem v !r);
              if removed then begin
                let found = ref false in
                r := List.filter (fun x ->
                    if (not !found) && x = v then begin found := true; false end
                    else true) !r
              end)
        ops;
      Plist.to_list ctx t = !r && Plist.length ctx t = List.length !r)

(* pbtree: directed structural coverage at order 4 *)

let test_pbtree_structure () =
  let _, _, ctx = mk () in
  let t = Pbtree.create ~order:4 ctx () in
  Pbtree.check ctx t;
  Alcotest.(check (list (pair int int))) "empty range" []
    (Pbtree.range ctx t ~lo:0 ~hi:100);
  (* ascending bulk insert: leaf splits, internal splits, root growth *)
  for k = 0 to 60 do
    Pbtree.insert ctx t k (k * 7);
    Pbtree.check ctx t
  done;
  let st = Pbtree.stats t in
  Alcotest.(check bool) "leaf splits" true (st.Pbtree.leaf_splits > 0);
  Alcotest.(check bool) "internal splits" true (st.Pbtree.internal_splits > 0);
  Alcotest.(check bool) "root grows" true (st.Pbtree.root_grows > 1);
  Alcotest.(check int) "length" 61 (Pbtree.length ctx t);
  Alcotest.(check bool) "height > 2" true (Pbtree.height ctx t > 2);
  (* range semantics at the edges *)
  Alcotest.(check (list (pair int int)))
    "interior range"
    (List.init 4 (fun i -> (5 + i, (5 + i) * 7)))
    (Pbtree.range ctx t ~lo:5 ~hi:8);
  Alcotest.(check (list (pair int int)))
    "clipped range" [ (60, 420) ]
    (Pbtree.range ctx t ~lo:60 ~hi:10_000);
  (* early-stop iteration: first 3 entries from an interior anchor *)
  let got = ref [] and left = ref 3 in
  Pbtree.iter_from ctx t ~lo:17 (fun k v ->
      got := (k, v) :: !got;
      decr left;
      !left > 0);
  Alcotest.(check (list (pair int int)))
    "iter_from stops"
    [ (17, 119); (18, 126); (19, 133) ]
    (List.rev !got);
  (* overwrite does not change the count *)
  Pbtree.insert ctx t 17 999;
  Alcotest.(check int) "overwrite keeps length" 61 (Pbtree.length ctx t);
  Alcotest.(check (option int)) "overwrite lands" (Some 999)
    (Pbtree.find ctx t 17);
  (* handle rediscovery from the persisted header *)
  let t2 = Pbtree.of_header ctx (Pbtree.header t) in
  Alcotest.(check int) "of_header order" 4 (Pbtree.order t2);
  Alcotest.(check (option int)) "of_header finds" (Some 999)
    (Pbtree.find ctx t2 17);
  (* ascending removal of everything: borrows/merges and root shrink *)
  for k = 0 to 60 do
    Alcotest.(check bool) "removed" true (Pbtree.remove ctx t k);
    Pbtree.check ctx t
  done;
  Alcotest.(check bool) "absent remove" false (Pbtree.remove ctx t 5);
  Alcotest.(check int) "emptied" 0 (Pbtree.length ctx t);
  Alcotest.(check int) "height back to 1" 1 (Pbtree.height ctx t);
  Alcotest.(check bool) "merges" true (st.Pbtree.merges > 0);
  Alcotest.(check bool) "root shrinks" true (st.Pbtree.root_shrinks > 1)

(* pbtree vs Map reference: insert/overwrite/remove/range *)

let prop_pbtree_matches_map =
  QCheck.Test.make ~name:"pbtree behaves like Map" ~count:100
    QCheck.(
      list_of_size Gen.(1 -- 150)
        (triple (int_bound 200) (int_bound 10_000) (int_bound 9)))
    (fun ops ->
      let _, _, ctx = mk () in
      let t = Pbtree.create ~order:4 ctx () in
      let r = ref IntMap.empty in
      List.iteri
        (fun i (k, v, action) ->
          if action < 6 then begin
            Pbtree.insert ctx t k v;
            r := IntMap.add k v !r
          end
          else if action < 8 then begin
            let removed = Pbtree.remove ctx t k in
            assert (removed = IntMap.mem k !r);
            r := IntMap.remove k !r
          end
          else begin
            let hi = k + (v mod 40) in
            let expect =
              IntMap.bindings (IntMap.filter (fun k' _ -> k' >= k && k' <= hi) !r)
            in
            assert (Pbtree.range ctx t ~lo:k ~hi = expect)
          end;
          if i land 15 = 0 then Pbtree.check ctx t)
        ops;
      Pbtree.check ctx t;
      Pbtree.fold ctx t (fun k v acc -> (k, v) :: acc) [] |> List.rev
      = IntMap.bindings !r
      && Pbtree.length ctx t = IntMap.cardinal !r)

(* pbtree under a crash at a random persistence event: recover, audit
   the surviving prefix against the Map model, rediscover the handle
   from its header, finish the sequence, audit again *)

let prop_pbtree_crash_recover =
  QCheck.Test.make ~name:"pbtree crash/recover matches a Map prefix" ~count:60
    QCheck.(
      triple
        (list_of_size Gen.(10 -- 80)
           (triple (int_bound 150) (int_bound 10_000) (int_bound 8)))
        (int_bound 4_000) small_nat)
    (fun (ops, fuse, seed) ->
      let pm =
        Pmem.create ~seed { Config.small with crash_word_persist_prob = 0.6 }
      in
      let heap = Heap.create pm in
      let b =
        Specpmt_backends.Registry.create heap Specpmt_backends.Registry.Spec
      in
      let t = b.Ctx.run_tx (fun ctx -> Pbtree.create ~order:4 ctx ()) in
      (* model after each committed transaction (one op per tx) *)
      let models = Array.make (List.length ops + 1) IntMap.empty in
      List.iteri
        (fun i (k, v, action) ->
          models.(i + 1) <-
            (if action < 6 then IntMap.add k v models.(i)
             else IntMap.remove k models.(i)))
        ops;
      let apply ctx (k, v, action) =
        if action < 6 then Pbtree.insert ctx t k v
        else ignore (Pbtree.remove ctx t k)
      in
      Pmem.set_fuse pm (Some (1 + fuse));
      let committed = ref 0 in
      let crashed =
        try
          List.iter
            (fun op ->
              b.Ctx.run_tx (fun ctx -> apply ctx op);
              incr committed)
            ops;
          Pmem.set_fuse pm None;
          false
        with Pmem.Crash -> true
      in
      if crashed then begin
        Pmem.crash pm;
        b.Ctx.recover ()
      end;
      (* rediscover through the persisted header, as recovery would *)
      let ctx = Ctx.raw_ctx heap in
      let t' = Pbtree.of_header ctx (Pbtree.header t) in
      Pbtree.check ctx t';
      let bindings () =
        List.rev (Pbtree.fold ctx t' (fun k v acc -> (k, v) :: acc) [])
      in
      (* atomic durability: the tree matches the model after [committed]
         txs, or [committed + 1] when the crash hit after the commit
         point but before control returned *)
      let c = !committed in
      let resume =
        if bindings () = IntMap.bindings models.(c) then c
        else if
          c + 1 < Array.length models
          && bindings () = IntMap.bindings models.(c + 1)
        then c + 1
        else -1
      in
      if resume < 0 then false
      else begin
        (* finish the sequence on the recovered tree *)
        List.iteri
          (fun i (k, v, action) ->
            if i >= resume then
              b.Ctx.run_tx (fun ctx ->
                  if action < 6 then Pbtree.insert ctx t' k v
                  else ignore (Pbtree.remove ctx t' k)))
          ops;
        Pbtree.check ctx t';
        bindings () = IntMap.bindings models.(Array.length models - 1)
      end)

(* shadow mirror: directed coherence checks, then the qcheck
   differential against a fresh peek rebuild *)

(* a mirrored raw-ctx handle stays coherent (the immediate-fire hook
   path), and the mirror serves the same answers as the media *)
let test_shadow_raw_coherent () =
  let pm, _, ctx = mk () in
  let t = Pbtree.create ~order:4 ctx () in
  Pbtree.attach_shadow ctx t;
  for i = 0 to 199 do
    Pbtree.insert ctx t (i * 17 mod 201) i
  done;
  for i = 0 to 49 do
    ignore (Pbtree.remove ctx t (i * 29 mod 201))
  done;
  Pbtree.check ctx t;
  Pbtree.verify_shadow ctx t;
  (match Pbtree.shadow t with
  | None -> Alcotest.fail "mirror detached"
  | Some sh ->
      let hits, misses, _ = Shadow.totals sh in
      Alcotest.(check int) "no mirror misses" 0 misses;
      Alcotest.(check bool) "mirror served descents" true (hits > 0));
  ignore pm

(* a transaction that aborts leaves the mirror exactly where the media
   is: staged deltas drop with the rollback *)
let test_shadow_abort_drops_stage () =
  let pm = Pmem.create ~seed:3 Config.small in
  let heap = Heap.create pm in
  let b =
    Specpmt_backends.Registry.create heap Specpmt_backends.Registry.Spec
  in
  let t = b.Ctx.run_tx (fun ctx -> Pbtree.create ~order:4 ctx ()) in
  Pbtree.attach_shadow (Ctx.peek_ctx pm) t;
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 40 do
        Pbtree.insert ctx t i (i * 3)
      done);
  (try
     b.Ctx.run_tx (fun ctx ->
         (* enough churn to split nodes and free one before rolling back *)
         for i = 41 to 80 do
           Pbtree.insert ctx t i 1
         done;
         for i = 0 to 30 do
           ignore (Pbtree.remove ctx t i)
         done;
         raise Ctx.Abort)
   with Ctx.Abort -> ());
  let ctx = Ctx.peek_ctx pm in
  Pbtree.check ctx t;
  Pbtree.verify_shadow ctx t;
  Alcotest.(check int) "aborted inserts invisible" 41 (Pbtree.length ctx t)

let prop_shadow_differential =
  QCheck.Test.make ~name:"shadow mirror equals a fresh peek rebuild"
    ~count:40
    QCheck.(
      triple
        (list_of_size Gen.(10 -- 80)
           (triple (int_bound 150) (int_bound 10_000) (int_bound 8)))
        (int_bound 4_000) small_nat)
    (fun (ops, fuse, seed) ->
      let pm =
        Pmem.create ~seed { Config.small with crash_word_persist_prob = 0.6 }
      in
      let heap = Heap.create pm in
      let b =
        Specpmt_backends.Registry.create heap Specpmt_backends.Registry.Spec
      in
      let t = b.Ctx.run_tx (fun ctx -> Pbtree.create ~order:4 ctx ()) in
      Pbtree.attach_shadow (Ctx.peek_ctx pm) t;
      let apply ctx (k, v, action) =
        if action < 6 then Pbtree.insert ctx t k v
        else ignore (Pbtree.remove ctx t k)
      in
      Pmem.set_fuse pm (Some (1 + fuse));
      let crashed =
        try
          List.iter (fun op -> b.Ctx.run_tx (fun ctx -> apply ctx op)) ops;
          Pmem.set_fuse pm None;
          false
        with Pmem.Crash -> true
      in
      if crashed then begin
        Pmem.crash pm;
        b.Ctx.recover ();
        (* the pre-crash mirror is never reused — a crash inside the
           commit protocol can leave a tx durable that the outcome hook
           reported as failed — so rebuild from the replayed media and
           keep churning with the live mirror on *)
        Pbtree.detach_shadow t;
        Pbtree.attach_shadow (Ctx.peek_ctx pm) t;
        List.iter (fun op -> b.Ctx.run_tx (fun ctx -> apply ctx op)) ops
      end;
      (* (1) the incrementally-maintained mirror field-equals the media *)
      let ctx = Ctx.peek_ctx pm in
      Pbtree.verify_shadow ctx t;
      (* (2) and serves the same bindings as a freshly rebuilt mirror on
         a rediscovered handle of the same tree *)
      let t' = Pbtree.of_header ctx (Pbtree.header t) in
      Pbtree.check ctx t';
      Pbtree.attach_shadow ctx t';
      Pbtree.verify_shadow ctx t';
      let walk h =
        List.rev (Pbtree.fold ctx h (fun k v acc -> (k, v) :: acc) [])
      in
      walk t = walk t' && Pbtree.length ctx t = Pbtree.length ctx t')

(* structures running inside transactions recover correctly *)

let test_structures_under_crash () =
  let pm =
    Pmem.create ~seed:17 { Config.small with crash_word_persist_prob = 0.7 }
  in
  let heap = Heap.create pm in
  let b =
    Specpmt_backends.Registry.create heap Specpmt_backends.Registry.Spec
  in
  let t, q = b.Ctx.run_tx (fun ctx -> (Phashtbl.create ctx 16, Pqueue.create ctx)) in
  for i = 1 to 30 do
    b.Ctx.run_tx (fun ctx ->
        ignore (Phashtbl.replace ctx t i (i * 7));
        Pqueue.push ctx q i)
  done;
  (* crash mid-mutation *)
  (try
     b.Ctx.run_tx (fun ctx ->
         ignore (Phashtbl.replace ctx t 99 1);
         Pmem.set_fuse pm (Some 2);
         Pqueue.push ctx q 99)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  b.Ctx.recover ();
  let ctx = Ctx.raw_ctx heap in
  Alcotest.(check int) "30 keys survive" 30 (Phashtbl.length ctx t);
  Alcotest.(check (option int)) "value intact" (Some 70) (Phashtbl.find ctx t 10);
  Alcotest.(check (option int)) "revoked key gone" None (Phashtbl.find ctx t 99);
  Alcotest.(check int) "queue intact" 30 (Pqueue.size ctx q)

let () =
  Alcotest.run "pstruct"
    [
      ( "parray",
        [
          Alcotest.test_case "roundtrip" `Quick test_parray_roundtrip;
          Alcotest.test_case "bounds" `Quick test_parray_bounds;
        ] );
      ( "model equivalence",
        [
          QCheck_alcotest.to_alcotest prop_phashtbl_matches_hashtbl;
          QCheck_alcotest.to_alcotest prop_pqueue_matches_queue;
          QCheck_alcotest.to_alcotest prop_ptreap_matches_map;
          QCheck_alcotest.to_alcotest prop_pvector_matches_dynarray;
          QCheck_alcotest.to_alcotest prop_plist_matches_stack;
          QCheck_alcotest.to_alcotest prop_pbtree_matches_map;
        ] );
      ( "pbtree",
        [
          Alcotest.test_case "structure" `Quick test_pbtree_structure;
          QCheck_alcotest.to_alcotest prop_pbtree_crash_recover;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "raw-ctx mirror coherent" `Quick
            test_shadow_raw_coherent;
          Alcotest.test_case "abort drops the stage" `Quick
            test_shadow_abort_drops_stage;
          QCheck_alcotest.to_alcotest prop_shadow_differential;
        ] );
      ( "transactional",
        [
          Alcotest.test_case "crash recovery" `Quick
            test_structures_under_crash;
        ] );
    ]
