lib/stamp/ssca2.mli: Wtypes
