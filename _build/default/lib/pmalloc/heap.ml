open Specpmt_pmem

(* Size classes: 16..256 in steps of 16, then powers of two to 64 KiB,
   then exact page multiples.  Small and simple; fragmentation is not the
   object of study here. *)
let size_classes =
  let small = List.init 16 (fun i -> (i + 1) * 16) in
  let big = [ 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536 ] in
  Array.of_list (small @ big)

let class_of n =
  let rec find i =
    if i >= Array.length size_classes then None
    else if size_classes.(i) >= n then Some i
    else find (i + 1)
  in
  find 0

type t = {
  pm : Pmem.t;
  free_lists : (int, Addr.t list ref) Hashtbl.t; (* class size -> blocks *)
  log_free_lists : (int, Addr.t list ref) Hashtbl.t;
  mutable bump : int;
  mutable log_bump : int; (* log zone grows downward from the pool end *)
  mutable freed : int; (* bytes on free lists *)
}

let header_alloc_bit = 1

let write_header t addr size ~allocated =
  let v = (size lsl 1) lor (if allocated then header_alloc_bit else 0) in
  Pmem.store_int t.pm (addr - 8) v

let read_header t addr =
  let v = Pmem.peek_volatile_int t.pm (addr - 8) in
  (v lsr 1, v land header_alloc_bit = 1)

let pmem t = t.pm

let create pm =
  if Pmem.peek_media_int pm Layout.magic = Layout.magic_value then
    invalid_arg "Heap.create: pool already formatted";
  let t =
    {
      pm;
      free_lists = Hashtbl.create 32;
      log_free_lists = Hashtbl.create 32;
      bump = Layout.heap_base;
      log_bump = Pmem.mem_size pm;
      freed = 0;
    }
  in
  Pmem.with_unmetered pm (fun () ->
      Pmem.store_int pm Layout.magic Layout.magic_value;
      Pmem.store_int pm Layout.heap_bump t.bump;
      Pmem.store_int pm Layout.log_bump t.log_bump;
      for i = 0 to Layout.root_slot_count - 1 do
        Pmem.store_int pm (Layout.root_slot i) 0
      done;
      Pmem.flush_range pm 0 (64 + (Layout.root_slot_count * 8));
      Pmem.sfence pm);
  t

let push_free_into lists addr size =
  let l =
    match Hashtbl.find_opt lists size with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace lists size l;
        l
  in
  l := addr :: !l

let push_free t size addr =
  push_free_into t.free_lists addr size;
  t.freed <- t.freed + size

let open_existing pm =
  if Pmem.peek_media_int pm Layout.magic <> Layout.magic_value then
    invalid_arg "Heap.open_existing: no formatted pool";
  let t =
    {
      pm;
      free_lists = Hashtbl.create 32;
      log_free_lists = Hashtbl.create 32;
      bump = Layout.heap_base;
      log_bump = Pmem.mem_size pm;
      freed = 0;
    }
  in
  (* volatile walks below; both zones share the header format *)
  let walk ~from ~upto ~on_free =
    let pos = ref from in
    let stop = ref false in
    while (not !stop) && !pos < upto do
      let addr = !pos + 8 in
      let size, allocated = read_header t addr in
      if size = 0 || size land 7 <> 0 || !pos + 8 + size > upto then
        (* lost header: the crash beat the header to the media; everything
           from here on is unreachable, reclaim as free space *)
        stop := true
      else begin
        if not allocated then on_free addr size;
        pos := !pos + 8 + size
      end
    done;
    !pos
  in
  let bump = Pmem.peek_media_int pm Layout.heap_bump in
  t.bump <-
    walk ~from:Layout.heap_base ~upto:bump ~on_free:(fun a s ->
        push_free t s a);
  let log_bump = Pmem.peek_media_int pm Layout.log_bump in
  if log_bump > t.bump && log_bump <= Pmem.mem_size pm then begin
    ignore
      (walk ~from:log_bump ~upto:(Pmem.mem_size pm) ~on_free:(fun a s ->
           push_free_into t.log_free_lists a s));
    t.log_bump <- log_bump
  end;
  Pmem.with_unmetered pm (fun () ->
      Pmem.store_int pm Layout.heap_bump t.bump;
      Pmem.store_int pm Layout.log_bump t.log_bump);
  t

let recover t =
  Hashtbl.reset t.free_lists;
  Hashtbl.reset t.log_free_lists;
  t.freed <- 0;
  let fresh = open_existing t.pm in
  t.bump <- fresh.bump;
  t.log_bump <- fresh.log_bump;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.free_lists k v) fresh.free_lists;
  Hashtbl.iter
    (fun k v -> Hashtbl.replace t.log_free_lists k v)
    fresh.log_free_lists;
  t.freed <- fresh.freed

(* Allocator metadata is made persistent eagerly: the header and bump
   cells are flushed on allocation (persistent on write-pending-queue
   acceptance, no fence).  A crash can therefore only leak blocks of
   uncommitted transactions — never let the recovery walk regress the bump
   pointer over live data.  Frees are persisted too, but transactional
   code must only free at commit (the backends defer [ctx.free]). *)
let persist_cell t a =
  Pmem.clwb t.pm a

let alloc t n =
  if n <= 0 then Fmt.invalid_arg "Heap.alloc %d" n;
  let size =
    match class_of n with
    | Some c -> size_classes.(c)
    | None -> Addr.align_up n Addr.page_size
  in
  match Hashtbl.find_opt t.free_lists size with
  | Some ({ contents = addr :: rest } as l) ->
      l := rest;
      t.freed <- t.freed - size;
      write_header t addr size ~allocated:true;
      persist_cell t (addr - 8);
      addr
  | Some { contents = [] } | None ->
      let addr = t.bump + 8 in
      if addr + size > t.log_bump then raise Out_of_memory;
      t.bump <- addr + size;
      write_header t addr size ~allocated:true;
      persist_cell t (addr - 8);
      Pmem.store_int t.pm Layout.heap_bump t.bump;
      persist_cell t Layout.heap_bump;
      addr

(* Log-zone allocation: grows downward from the pool end, keeping log
   blocks physically segregated from application data — the dedicated log
   area of the paper's designs.  Interleaving them in one bump zone would
   scatter application allocations across pages and wreck the page-level
   hotness tracking of hardware SpecPMT. *)
let alloc_log t n =
  if n <= 0 then Fmt.invalid_arg "Heap.alloc_log %d" n;
  let size =
    match class_of n with
    | Some c -> size_classes.(c)
    | None -> Addr.align_up n Addr.page_size
  in
  match Hashtbl.find_opt t.log_free_lists size with
  | Some ({ contents = addr :: rest } as l) ->
      l := rest;
      write_header t addr size ~allocated:true;
      persist_cell t (addr - 8);
      addr
  | Some { contents = [] } | None ->
      let base = t.log_bump - size - 8 in
      let addr = base + 8 in
      if base < t.bump then raise Out_of_memory;
      t.log_bump <- base;
      write_header t addr size ~allocated:true;
      persist_cell t (addr - 8);
      Pmem.store_int t.pm Layout.log_bump t.log_bump;
      persist_cell t Layout.log_bump;
      addr

let free t addr =
  let size, allocated = read_header t addr in
  if not allocated then
    Fmt.invalid_arg "Heap.free: double free at %#x" addr;
  write_header t addr size ~allocated:false;
  persist_cell t (addr - 8);
  if addr > t.log_bump then push_free_into t.log_free_lists addr size
  else push_free t size addr

(* Register a block whose header has already been cleared by other means
   (e.g. written and logged through a transaction): only the volatile free
   list is updated. *)
let register_free t addr =
  let size, _ = read_header t addr in
  if addr > t.log_bump then push_free_into t.log_free_lists addr size
  else push_free t size addr

let usable_size t addr = fst (read_header t addr)
let root_slot _t i = Layout.root_slot i
let used_bytes t = t.bump - Layout.heap_base
let live_bytes t = used_bytes t - t.freed
