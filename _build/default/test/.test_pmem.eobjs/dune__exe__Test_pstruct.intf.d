test/test_pstruct.mli:
