lib/pstruct/phashtbl.ml: Addr Ctx Specpmt_pmem Specpmt_txn
