(** Span-style phase attribution for persistence events.

    The device model reports totals (fences, clwbs, PM write lines); the
    figures need to know {e which part of a run} paid them — setup,
    the measured transaction phase, the drain of background work, crash
    recovery, or log reclamation.  The harness brackets each span with
    {!run} and the device layer calls the [on_*] hooks; the per-phase
    tallies come back with {!snapshot}.

    One current phase per domain is enough: each simulator instance is a
    sequential interpreter, so at most one span is active at a time on a
    domain.  Nested {!run}s attribute to the innermost phase (e.g. a
    reclamation triggered inside the work phase counts as [Reclaim]).

    All state is domain-local: parallel harness workers (see
    [Specpmt.Par]) tally into private cells with zero contention, and
    the pool merges each worker's {!snapshot} back into the parent with
    {!absorb} at join. *)

type phase = Prepare | Work | Drain | Recover | Reclaim | Other

val all : phase list
(** In report order: prepare, work, drain, recover, reclaim, other. *)

val name : phase -> string
val current : unit -> phase

val run : phase -> (unit -> 'a) -> 'a
(** Execute in the given phase, restoring the previous one on exit
    (exception-safe). *)

(** {1 Device-layer hooks (O(1), allocation-free)} *)

val on_fence : unit -> unit
val on_clwb : unit -> unit
val on_pm_write_line : unit -> unit
val on_pm_read_line : unit -> unit
val on_nt_store : unit -> unit

(** {1 Collection} *)

type counters = {
  fences : int;
  clwbs : int;
  nt_stores : int;
  pm_write_lines : int;
  pm_read_lines : int;
}

type snapshot = (phase * counters) list
(** One entry per member of {!all}, in order. *)

val snapshot : unit -> snapshot
val reset : unit -> unit

val absorb : snapshot -> unit
(** Add a (typically worker-domain) snapshot's counters into the calling
    domain's tallies, phase by phase. *)

val to_json : snapshot -> Json.t
(** Object keyed by phase name; phases with all-zero counters are kept so
    the schema is stable. *)
