(** DRAM shadow mirror storage for {!Pbtree} — see shadow.mli. *)

open Specpmt_pmem
open Specpmt_txn

type node = {
  mutable meta : int;
  mutable high : int;
  mutable right : int;
  keys : int array;
  pays : int array;
}

type t = {
  order : int;
  base : (Addr.t, node) Hashtbl.t;
      (* the committed image: coherent with the media state a fresh
         unmetered rebuild would observe *)
  stage : (Addr.t, node) Hashtbl.t;
      (* copy-on-write overlay of the open transaction: applied to
         [base] on commit, dropped wholesale on abort or crash *)
  mutable root : int;
  mutable count : int;
  mutable stage_root : int; (* -1 = no staged root *)
  mutable stage_count : int; (* min_int = no staged count *)
  mutable armed : bool;
      (* an outcome hook for the open transaction is registered; reset
         when it fires, so each transaction registers exactly one *)
  (* plain ints on the hot path; [publish] pushes the deltas into the
     domain-local metrics registry *)
  mutable hits : int;
  mutable misses : int;
  mutable rebuild_ns : int;
  mutable pub_hits : int;
  mutable pub_misses : int;
  mutable pub_rebuild_ns : int;
}

let create ~order ~root ~count =
  {
    order;
    base = Hashtbl.create 256;
    stage = Hashtbl.create 16;
    root;
    count;
    stage_root = -1;
    stage_count = min_int;
    armed = false;
    hits = 0;
    misses = 0;
    rebuild_ns = 0;
    pub_hits = 0;
    pub_misses = 0;
    pub_rebuild_ns = 0;
  }

let order t = t.order
let root t = if t.stage_root <> -1 then t.stage_root else t.root
let count t = if t.stage_count <> min_int then t.stage_count else t.count
let size t = Hashtbl.length t.base
let stage_size t = Hashtbl.length t.stage

let fresh_node order =
  {
    meta = 0;
    high = 0;
    right = 0;
    keys = Array.make order 0;
    pays = Array.make order 0;
  }

(* staged view: the overlay wins (a tombstone hides the base node); the
   empty-stage fast path keeps read-only operations at one probe *)
let node t a =
  if Hashtbl.length t.stage = 0 then Hashtbl.find t.base a
  else
    match Hashtbl.find t.stage a with
    | n -> if n.meta < 0 then raise Not_found else n
    | exception Not_found -> Hashtbl.find t.base a

let mem t a = match node t a with _ -> true | exception Not_found -> false
let hit t = t.hits <- t.hits + 1
let miss t = t.misses <- t.misses + 1
let add_rebuild_ns t ns = t.rebuild_ns <- t.rebuild_ns + ns

let load t a =
  let n = fresh_node t.order in
  Hashtbl.replace t.base a n;
  n

(* ---- transactional staging ---- *)

let commit t =
  Hashtbl.iter
    (fun a n ->
      if n.meta < 0 then Hashtbl.remove t.base a
      else Hashtbl.replace t.base a n)
    t.stage;
  Hashtbl.reset t.stage;
  if t.stage_root <> -1 then begin
    t.root <- t.stage_root;
    t.stage_root <- -1
  end;
  if t.stage_count <> min_int then begin
    t.count <- t.stage_count;
    t.stage_count <- min_int
  end;
  t.armed <- false

let abort t =
  Hashtbl.reset t.stage;
  t.stage_root <- -1;
  t.stage_count <- min_int;
  t.armed <- false

(* Register the outcome hook once per transaction.  Callers must stage
   their delta {e before} arming: a non-transactional ctx fires the hook
   immediately, committing whatever is staged at that instant (the node
   object itself moves into [base], so the caller's subsequent field
   stores still land on the committed image — exactly the raw-ctx
   semantics of effects being final when made). *)
let arm t (ctx : Ctx.ctx) =
  if not t.armed then begin
    t.armed <- true;
    ctx.Ctx.on_end (fun ok -> if ok then commit t else abort t)
  end

let stage t ctx a =
  let n =
    match Hashtbl.find t.stage a with
    | n ->
        if n.meta < 0 then begin
          (* address freed then reallocated inside one transaction:
             restart from a fresh node, the tombstone is superseded *)
          let n = fresh_node t.order in
          Hashtbl.replace t.stage a n;
          n
        end
        else n
    | exception Not_found ->
        let n =
          match Hashtbl.find t.base a with
          | b ->
              {
                meta = b.meta;
                high = b.high;
                right = b.right;
                keys = Array.copy b.keys;
                pays = Array.copy b.pays;
              }
          | exception Not_found -> fresh_node t.order
        in
        Hashtbl.replace t.stage a n;
        n
  in
  arm t ctx;
  n

let stage_free t ctx a =
  (match Hashtbl.find t.stage a with
  | n -> n.meta <- -1
  | exception Not_found ->
      let n = fresh_node 0 in
      n.meta <- -1;
      Hashtbl.replace t.stage a n);
  arm t ctx

let stage_root t ctx r =
  t.stage_root <- r;
  arm t ctx

let stage_count t ctx c =
  t.stage_count <- c;
  arm t ctx

(* ---- audits & metrics ---- *)

let fold_base t f init =
  if Hashtbl.length t.stage > 0 then
    invalid_arg "Shadow.fold_base: transaction in flight (non-empty stage)";
  Hashtbl.fold f t.base init

let totals t = (t.hits, t.misses, t.rebuild_ns)

let publish t =
  let push name now pub =
    if now <> pub then Specpmt_obs.Metrics.add (Specpmt_obs.Metrics.counter name) (now - pub)
  in
  push "shadow.hits" t.hits t.pub_hits;
  push "shadow.misses" t.misses t.pub_misses;
  push "shadow.rebuild_ns" t.rebuild_ns t.pub_rebuild_ns;
  t.pub_hits <- t.hits;
  t.pub_misses <- t.misses;
  t.pub_rebuild_ns <- t.rebuild_ns

(* ---- in-node binary search ---- *)

let lower_bound keys n key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get keys mid < key then lo := mid + 1 else hi := mid
  done;
  !lo
