(* Bounded single-producer/single-consumer ring for the router <->
   worker-domain handoff.  Exactly one domain pushes and exactly one
   domain pops; under that contract the two atomic cursors are enough:
   the producer publishes a slot by advancing [tail] (the consumer's
   atomic read of [tail] gives the happens-before edge that makes its
   plain read of the slot safe), and the consumer releases a slot by
   advancing [head] (symmetrically ordering its slot clear before the
   producer's reuse).

   Slots are a plain ['a array] seeded with a caller-supplied dummy, so
   a push stores the element directly — no [Some] box per message; the
   consumer writes the dummy back on pop so popped elements don't stay
   reachable through the ring. *)

type 'a t = {
  slots : 'a array;
  dummy : 'a;
  mask : int;
  head : int Atomic.t; (* next index to pop; advanced by the consumer *)
  tail : int Atomic.t; (* next index to push; advanced by the producer *)
}

let create ~dummy ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity < 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap dummy;
    dummy;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- x;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end

let length t = Atomic.get t.tail - Atomic.get t.head
let is_empty t = length t = 0
