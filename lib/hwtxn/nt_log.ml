(** Fence-free hardware undo log.

    Hardware schemes (EDE, the cold-path of hardware SpecPMT) persist an
    undo record for each first update {e without} a fence: the entry is
    written through the write-pending queue (non-temporal), which is inside
    the ADR persistence domain, and the hardware's dependence tracking
    (EDE's contribution) guarantees the entry is accepted before the data
    store — our sequential interpreter gives that ordering for free, so no
    [sfence] is ever issued on the append path.

    Validity is self-describing.  The region starts with a {e generation}
    word; an entry is [addr, old, crc(gen, addr, old)].  Recovery scans
    from the base and stops at the first entry whose checksum does not
    match under the current generation — entries surviving from an earlier
    (truncated) transaction carry the old generation and fail the check.
    Truncation at commit is therefore a single non-temporal store of the
    bumped generation: no fence, no per-entry work. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  region_slot : int;
  capacity_slot : int;
  mutable region : Addr.t;
  mutable capacity : int; (* entries *)
  mutable count : int;
  mutable gen : int;
}

let entry_words = 3
let entry_bytes = entry_words * 8
let entries_base r = r + 8
let entry_crc ~gen ~addr ~old = Checksum.words [ gen; addr; old ]

let nt_store_words t a ws =
  let b = Bytes.create (8 * List.length ws) in
  List.iteri (fun i w -> Bytes.set_int64_le b (i * 8) (Int64.of_int w)) ws;
  Pmem.nt_store_bytes t.pm a b

let allocate t capacity =
  let r = Heap.alloc_log t.heap (8 + (capacity * entry_bytes)) in
  t.region <- r;
  t.capacity <- capacity;
  t.gen <- 1;
  nt_store_words t r [ 1 ];
  Pmem.store_int t.pm (Heap.root_slot t.heap t.region_slot) r;
  Pmem.store_int t.pm (Heap.root_slot t.heap t.capacity_slot) capacity;
  (* both root cells are flushed: the two slots may straddle a cache
     line, and an unflushed capacity cell that loses the crash coin flip
     would reattach the log with a stale (even zero) capacity *)
  Pmem.clwb t.pm (Heap.root_slot t.heap t.region_slot);
  Pmem.clwb t.pm (Heap.root_slot t.heap t.capacity_slot);
  Pmem.sfence t.pm

let create heap ~region_slot ~capacity_slot ~capacity =
  let t =
    {
      heap;
      pm = Heap.pmem heap;
      region_slot;
      capacity_slot;
      region = 0;
      capacity = 0;
      count = 0;
      gen = 0;
    }
  in
  allocate t capacity;
  t

let attach heap ~region_slot ~capacity_slot =
  let pm = Heap.pmem heap in
  let region = Pmem.load_int pm (Heap.root_slot heap region_slot) in
  (* The authoritative capacity is the region's own allocation header:
     the header is persisted before the region pointer is published, so
     the pair is always consistent — whereas the capacity cell can lag
     the region cell across a crash (they may sit on different lines),
     and a stale capacity either overruns the region on append or, at
     zero, sends every append through the grow path with a degenerate
     doubled size of zero. *)
  let capacity =
    if region = 0 then Pmem.load_int pm (Heap.root_slot heap capacity_slot)
    else (Heap.usable_size heap region - 8) / entry_bytes
  in
  {
    heap;
    pm;
    region_slot;
    capacity_slot;
    region;
    capacity;
    count = 0 (* unknown; scans are self-describing *);
    gen = Pmem.load_int pm region;
  }

(** Persist one undo entry; no fence. *)
let append t ~addr ~old =
  if t.count >= t.capacity then begin
    (* rare: grow and re-log the open transaction's entries *)
    let old_region = t.region and n = t.count and gen = t.gen in
    allocate t (t.capacity * 2);
    t.gen <- gen;
    nt_store_words t t.region [ gen ];
    for i = 0 to n - 1 do
      let src = entries_base old_region + (i * entry_bytes) in
      nt_store_words t
        (entries_base t.region + (i * entry_bytes))
        [
          Pmem.load_int t.pm src;
          Pmem.load_int t.pm (src + 8);
          Pmem.load_int t.pm (src + 16);
        ]
    done;
    Heap.free t.heap old_region
  end;
  nt_store_words t
    (entries_base t.region + (t.count * entry_bytes))
    [ addr; old; entry_crc ~gen:t.gen ~addr ~old ];
  t.count <- t.count + 1

(** Commit-side truncation: persist a new generation; one non-temporal
    store, no fence. *)
let truncate t =
  t.gen <- t.gen + 1;
  nt_store_words t t.region [ t.gen ];
  t.count <- 0

(** Valid entries of the current generation, oldest first. *)
let scan t =
  let gen = Pmem.load_int t.pm t.region in
  let out = ref [] in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < t.capacity do
    let base = entries_base t.region + (!i * entry_bytes) in
    let addr = Pmem.load_int t.pm base in
    let old = Pmem.load_int t.pm (base + 8) in
    let crc = Pmem.load_int t.pm (base + 16) in
    if addr >= 0 && addr < Pmem.mem_size t.pm && crc = entry_crc ~gen ~addr ~old
    then begin
      out := (addr, old) :: !out;
      incr i
    end
    else stop := true
  done;
  List.rev !out

let footprint t = 8 + (t.capacity * entry_bytes)

(** Address of the persistent generation word — hardware SpecPMT logs the
    generation bump inside its commit record, making that record the
    transaction's commit marker for the undo log too. *)
let gen_cell t = t.region

let generation t = t.gen
