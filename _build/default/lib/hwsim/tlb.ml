open Specpmt_pmem

type entry = {
  vpage : int;
  mutable epoch_bit : bool;
  mutable cnt_eid : int;
}

type t = {
  cfg : Hwconfig.t;
  pm : Pmem.t;
  table : (int, entry) Hashtbl.t;
  order : int Queue.t; (* FIFO eviction *)
  mutable evicted : int;
}

let create cfg pm = { cfg; pm; table = Hashtbl.create 64; order = Queue.create (); evicted = 0 }

let resident t = Hashtbl.length t.table
let evictions t = t.evicted

(* Hotness state is only tracked while a page is L1-TLB resident: the
   paper's counters live in TLB entries and are discarded on eviction
   (Section 5.1), which is what keeps speculative logging focused on
   genuinely hot, locality-friendly pages. *)
let evict_to_capacity t =
  while Hashtbl.length t.table > t.cfg.Hwconfig.l1_tlb_entries
        && not (Queue.is_empty t.order) do
    let p = Queue.pop t.order in
    if Hashtbl.mem t.table p then begin
      Hashtbl.remove t.table p;
      t.evicted <- t.evicted + 1
    end
  done

let access t ~page =
  match Hashtbl.find_opt t.table page with
  | Some e -> e
  | None ->
      Pmem.charge_ns t.pm t.cfg.Hwconfig.tlb_miss_ns;
      let e = { vpage = page; epoch_bit = false; cnt_eid = 0 } in
      Hashtbl.replace t.table page e;
      Queue.push page t.order;
      evict_to_capacity t;
      e

let find t ~page = Hashtbl.find_opt t.table page

let clear_epoch t ~eid =
  let n = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      if e.epoch_bit && e.cnt_eid = eid then begin
        e.epoch_bit <- false;
        e.cnt_eid <- 0;
        incr n
      end)
    t.table;
  !n

let flush t =
  Hashtbl.reset t.table;
  Queue.clear t.order
