(** Process-wide registry of named counters, gauges and histograms.

    Subsystems register metrics lazily by name ([counter "reclaim.cycles"]
    returns the same cell every time) and bump them with no further
    coordination; the harness snapshots or resets the whole registry
    around each measured run.  Names are dot-separated
    [subsystem.metric] paths. *)

type counter
type gauge

val counter : string -> counter
(** Get or create.  Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> Hist.t
(** Get or create a registry-owned histogram (also reset by
    {!reset_all}). *)

val reset_all : unit -> unit
(** Zero every counter and gauge and reset every histogram — called by
    the harness between measured runs. *)

val dump : unit -> Json.t
(** All metrics, sorted by name:
    [{"counters": {..}, "gauges": {..}, "histograms": {..}}]. *)
