lib/hwtxn/ede.ml: Addr Ctx Hashtbl Heap Hw_slots List Nt_log Pmem Specpmt_pmalloc Specpmt_pmem Specpmt_txn Write_set
