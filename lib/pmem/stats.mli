(** Event and traffic counters of one simulated device.

    The evaluation figures are built from these: simulated nanoseconds
    give the speedups (Figs. 12-13), persistent-media write lines give the
    traffic figure (Fig. 14). *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable clwbs : int;
  mutable fences : int;
  mutable nt_stores : int;
  mutable pm_read_lines : int;  (** lines fetched from the media *)
  mutable pm_read_lines_seq : int;
      (** subset of [pm_read_lines] on the sequential fast path *)
  mutable pm_write_lines : int;  (** lines written to the media, all causes *)
  mutable pm_write_lines_seq : int;
      (** subset of [pm_write_lines] on the sequential fast path *)
  mutable evictions : int;  (** capacity write-backs of dirty lines *)
  mutable ns : float;  (** simulated foreground time *)
  mutable bg_ns : float;  (** simulated background-core time *)
}

val create : unit -> t
val copy : t -> t

val diff : t -> t -> t
(** [diff before after], field-wise — measure a region with {!copy} +
    [diff]. *)

val pm_write_bytes : t -> int
val pp : Format.formatter -> t -> unit

val to_json : t -> Specpmt_obs.Json.t
(** Every counter, keyed by its field name — the building block of the
    machine-readable bench reports. *)
