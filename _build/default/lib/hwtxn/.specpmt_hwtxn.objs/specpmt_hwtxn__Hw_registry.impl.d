lib/hwtxn/hw_registry.ml: Ctx Ede Hoop List Nolog Spec_hw Specpmt_txn String
