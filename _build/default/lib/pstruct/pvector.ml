(** Growable persistent vector of 8-byte cells.

    Layout: header [capacity; length; data pointer]; the data block is
    reallocated at twice the size when full, with the old contents copied
    inside the calling transaction — so a crash mid-growth is rolled back
    or replayed like any other transactional write. *)

open Specpmt_pmem
open Specpmt_txn

type t = { header : Addr.t }

let create (ctx : Ctx.ctx) ?(capacity = 8) () =
  assert (capacity > 0);
  let header = ctx.Ctx.alloc 24 in
  let data = ctx.Ctx.alloc (capacity * 8) in
  ctx.Ctx.write header capacity;
  ctx.Ctx.write (header + 8) 0;
  ctx.Ctx.write (header + 16) data;
  { header }

let of_header header = { header }
let header t = t.header
let capacity (ctx : Ctx.ctx) t = ctx.Ctx.read t.header
let length (ctx : Ctx.ctx) t = ctx.Ctx.read (t.header + 8)
let data (ctx : Ctx.ctx) t = ctx.Ctx.read (t.header + 16)

let get (ctx : Ctx.ctx) t i =
  if i < 0 || i >= length ctx t then
    Fmt.invalid_arg "Pvector.get %d/%d" i (length ctx t);
  ctx.Ctx.read (data ctx t + (i * 8))

let set (ctx : Ctx.ctx) t i v =
  if i < 0 || i >= length ctx t then
    Fmt.invalid_arg "Pvector.set %d/%d" i (length ctx t);
  ctx.Ctx.write (data ctx t + (i * 8)) v

let push (ctx : Ctx.ctx) t v =
  let len = length ctx t in
  let cap = capacity ctx t in
  if len = cap then begin
    (* transactional growth: the copy is logged like any other write, so
       crash-atomicity extends to the reallocation *)
    let old = data ctx t in
    let fresh = ctx.Ctx.alloc (cap * 2 * 8) in
    for i = 0 to len - 1 do
      ctx.Ctx.write (fresh + (i * 8)) (ctx.Ctx.read (old + (i * 8)))
    done;
    ctx.Ctx.write t.header (cap * 2);
    ctx.Ctx.write (t.header + 16) fresh;
    ctx.Ctx.free old
  end;
  ctx.Ctx.write (data ctx t + (len * 8)) v;
  ctx.Ctx.write (t.header + 8) (len + 1)

let pop (ctx : Ctx.ctx) t =
  let len = length ctx t in
  if len = 0 then None
  else begin
    let v = ctx.Ctx.read (data ctx t + ((len - 1) * 8)) in
    ctx.Ctx.write (t.header + 8) (len - 1);
    Some v
  end

let iter (ctx : Ctx.ctx) t f =
  for i = 0 to length ctx t - 1 do
    f (get ctx t i)
  done

let to_list ctx t = List.init (length ctx t) (fun i -> get ctx t i)
