(** Multi-threaded software SpecPMT (paper Section 4.1, multi-threaded
    case).

    Each simulated thread owns a private chained log ("each thread manages
    its own log without consulting with other threads") and a per-thread
    {!Specpmt_backends.Spec_soft} runtime; they share the pool and a
    logical timestamp counter — the stand-in for [rdtscp].  Recovery scans
    {e every} thread's log and merges the records by global timestamp,
    exactly as Section 5.2.2 prescribes: in {!Spec_soft.Replay} mode by
    sorting and replaying oldest first, in the default
    {!Spec_soft.Coalesce} mode by folding all logs into one
    last-writer-wins index and writing each live cell exactly once.

    Threads here are deterministic interleavings (the test harness runs
    one transaction at a time); concurrency control is the application's
    job in the paper too (Section 4.3.3). *)

open Specpmt_pmalloc
open Specpmt_txn

type t

val max_threads : int
(** Largest thread count {!create} accepts — one reserved root slot per
    thread ({!Specpmt_backends.Slots.spec_mt_max_threads}). *)

val create :
  ?params:Spec_soft.params ->
  ?runtime_heaps:Heap.t array ->
  Heap.t ->
  threads:int ->
  t
(** Up to {!max_threads} threads (one reserved line-strided root slot
    each).  [runtime_heaps], when given (length = [threads]), places
    thread [i]'s runtime — its log blocks and allocator traffic — on its
    own carved sub-heap instead of the shared pool heap: the
    partitioning the shard-per-domain data plane needs so worker domains
    never allocate through a shared bump pointer or touch each other's
    cache lines.  The pool heap remains the recovery-side attachment
    point either way. *)

val tsc : t -> Specpmt_txn.Tsc.t
(** The shared (atomic) commit-timestamp counter of the pool. *)

val thread : t -> int -> Ctx.backend
(** The transactional interface of one thread. *)

val runtime : t -> int -> Spec_soft.t
(** The underlying per-thread runtime — for reclamation triggers
    ({!Spec_soft.reclaim_now}) and crash-exploration drivers. *)

val threads : t -> int
(** Number of simulated threads this pool was created with. *)

val recover : t -> unit
(** Post-crash recovery across all thread logs, merged by timestamp
    (per the pool's {!Spec_soft.recovery_mode}), then reattaches every
    thread's arena and rebuilds its volatile live index. *)
