examples/mechanism_switch.ml: Ctx Heap Pmem Pmem_config Printf Spec_soft Specpmt
