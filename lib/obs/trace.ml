type event = { seq : int; phase : Phase.phase; label : string; a : int; b : int }

let nil = { seq = -1; phase = Phase.Other; label = ""; a = 0; b = 0 }
let ring : event array ref = ref [||]
let pos = ref 0

let set_capacity n =
  ring := (if n <= 0 then [||] else Array.make n nil);
  pos := 0

let enabled () = Array.length !ring > 0
let clear () = set_capacity (Array.length !ring)

let emit ?(a = 0) ?(b = 0) label =
  let r = !ring in
  let n = Array.length r in
  if n > 0 then begin
    r.(!pos mod n) <- { seq = !pos; phase = Phase.current (); label; a; b };
    incr pos
  end

let recent () =
  let r = !ring in
  let n = Array.length r in
  let count = min n !pos in
  List.init count (fun i -> r.((!pos - count + i) mod n))

let pp_event ppf e =
  Fmt.pf ppf "#%d [%s] %s a=%d b=%d" e.seq (Phase.name e.phase) e.label e.a
    e.b

let dump ppf () =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_event e) (recent ())

let to_json () =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("seq", Json.Int e.seq);
             ("phase", Json.Str (Phase.name e.phase));
             ("label", Json.Str e.label);
             ("a", Json.Int e.a);
             ("b", Json.Int e.b);
           ])
       (recent ()))
