(** CRC-32C (Castagnoli), used as the commit marker of a log record.

    The paper (Section 4.1) folds the transaction's commit status into the
    record checksum: a record whose checksum does not match its content was
    torn by a crash and marks the end of the valid log. *)

val crc32c : ?init:int -> bytes -> int
(** Checksum of a byte string, in [0, 2^32).  [init] chains computations
    over fragments. *)

val words : int list -> int
(** Checksum of a list of 63-bit integers, each taken as 8 LE bytes.
    Convenient for records assembled from word-granular cells. *)
