lib/pmem/config.ml:
