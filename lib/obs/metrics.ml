type counter = { mutable n : int }
type gauge = { mutable g : float }

type item = C of counter | G of gauge | H of Hist.t

let registry : (string, item) Hashtbl.t = Hashtbl.create 64

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let get name mk match_item =
  match Hashtbl.find_opt registry name with
  | Some item -> (
      match match_item item with
      | Some v -> v
      | None ->
          Fmt.invalid_arg "Metrics: %S already registered as a %s" name
            (kind_name item))
  | None ->
      let item, v = mk () in
      Hashtbl.replace registry name item;
      v

let counter name =
  get name
    (fun () ->
      let c = { n = 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let counter_value c = c.n

let gauge name =
  get name
    (fun () ->
      let g = { g = 0.0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let histogram name =
  get name
    (fun () ->
      let h = Hist.create () in
      (H h, h))
    (function H h -> Some h | _ -> None)

let reset_all () =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> c.n <- 0
      | G g -> g.g <- 0.0
      | H h -> Hist.reset h)
    registry

let dump () =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name item ->
      match item with
      | C c -> cs := (name, Json.Int c.n) :: !cs
      | G g -> gs := (name, Json.Float g.g) :: !gs
      | H h -> hs := (name, Hist.to_json (Hist.snapshot h)) :: !hs)
    registry;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) !l in
  Json.Obj
    [
      ("counters", Json.Obj (sorted cs));
      ("gauges", Json.Obj (sorted gs));
      ("histograms", Json.Obj (sorted hs));
    ]
