exception Crash

type op =
  | Load of Addr.t
  | Store of Addr.t * int
  | Clwb of Addr.t
  | Sfence
  | Nt_store of Addr.t * int (* address, bytes *)
  | Load_bytes of Addr.t * int (* address, bytes *)
  | Store_bytes of Addr.t * int (* address, bytes *)

let pp_op ppf = function
  | Load a -> Fmt.pf ppf "load   %#x" a
  | Store (a, v) -> Fmt.pf ppf "store  %#x <- %d" a v
  | Clwb a -> Fmt.pf ppf "clwb   %#x" a
  | Sfence -> Fmt.pf ppf "sfence"
  | Nt_store (a, n) -> Fmt.pf ppf "ntstore %#x (%d B)" a n
  | Load_bytes (a, n) -> Fmt.pf ppf "loadb  %#x (%d B)" a n
  | Store_bytes (a, n) -> Fmt.pf ppf "storeb %#x (%d B)" a n

type media =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The cache is a flat, fully associative pool of [cache_capacity_lines + 1]
   line slots (the +1 is headroom for the insert-then-evict order of the
   miss path).  [slot_of] maps every line index of the image to its slot,
   or -1 — a direct array lookup, no hashing.  Slot payloads live side by
   side in one [slot_data] buffer; dirtiness is one byte per slot.  FIFO
   eviction order is an intrusive doubly-linked list threaded through
   [fifo_next]/[fifo_prev] by slot id, so invalidation (clflushopt,
   nt-store merge) unlinks the victim and can never leave a stale queue
   entry behind.  Free slots are a stack.  Nothing on the hit path
   allocates. *)
type t = {
  cfg : Config.t;
  media : media; (* shared across views; off-heap, domain-safe *)
  slot_of : int array; (* line index -> slot, -1 when uncached *)
  slot_line : int array; (* slot -> line index, -1 when free *)
  slot_dirty : Bytes.t; (* slot -> 0/1 *)
  slot_data : Bytes.t; (* slot s owns bytes [s*64, s*64+64) *)
  fifo_next : int array;
  fifo_prev : int array;
  mutable fifo_head : int; (* oldest resident slot, -1 when empty *)
  mutable fifo_tail : int; (* newest resident slot *)
  free_slots : int array; (* stack of free slot ids *)
  mutable free_top : int;
  mutable occupied : int;
  nt_scratch : Bytes.t; (* one-line merge buffer for uncached nt-stores *)
  stats : Stats.t;
  rng : Random.State.t;
  (* WPQ: completion times of accepted persists.  Completions are
     strictly increasing (each starts no earlier than the previous one
     finished), so a circular buffer ordered head=oldest suffices and
     full-queue stalls and fences are O(1). *)
  wpq : float array;
  mutable wpq_head : int;
  mutable wpq_len : int;
  mutable last_completion : float; (* WPQ is a serial server *)
  mutable last_persist_line : int; (* for the sequential-write fast path *)
  mutable last_read_line : int; (* for the sequential-read fast path *)
  mutable fuse : int option;
  mutable events : int; (* monotonic count of fuse-visible memory events *)
  mutable metered : bool;
  mutable crashed : bool;
  (* optional operation trace: a bounded ring of the most recent memory
     events, for post-mortem debugging of crash-consistency failures *)
  mutable trace : op array option;
  mutable trace_pos : int;
}

(* A per-domain view of the same media: shares the [media] image (and
   the immutable config) but owns a private cache, write-pending queue,
   stats clock and fuse.  This is the simulator's model of one core's
   cache hierarchy over shared PM.  Views are NOT coherent — the model
   writes media back whole lines — so callers must partition the image:
   a line written through one view must never be touched through
   another until the owning view has been detached. *)
let make_view cfg media seed =
  if cfg.Config.cache_capacity_lines < 1 then
    invalid_arg "Pmem: cache_capacity_lines < 1";
  let mem_lines =
    (cfg.Config.mem_size + Addr.line_size - 1) / Addr.line_size
  in
  let nslots = cfg.Config.cache_capacity_lines + 1 in
  {
    cfg;
    media;
    slot_of = Array.make mem_lines (-1);
    slot_line = Array.make nslots (-1);
    slot_dirty = Bytes.make nslots '\000';
    slot_data = Bytes.create (nslots * Addr.line_size);
    fifo_next = Array.make nslots (-1);
    fifo_prev = Array.make nslots (-1);
    fifo_head = -1;
    fifo_tail = -1;
    free_slots = Array.init nslots (fun i -> nslots - 1 - i);
    free_top = nslots;
    occupied = 0;
    nt_scratch = Bytes.create Addr.line_size;
    stats = Stats.create ();
    rng = Random.State.make [| seed; 0x5ec; 0x9a7e |];
    wpq = Array.make (max 1 cfg.Config.wpq_lines) 0.0;
    wpq_head = 0;
    wpq_len = 0;
    last_completion = 0.0;
    last_persist_line = -10;
    last_read_line = -10;
    fuse = None;
    events = 0;
    metered = true;
    crashed = false;
    trace = None;
    trace_pos = 0;
  }

let create ?(seed = 42) cfg =
  let media =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout
      cfg.Config.mem_size
  in
  Bigarray.Array1.fill media '\000';
  make_view cfg media seed

let fork_view ?(seed = 43) t = make_view t.cfg t.media seed

let config t = t.cfg
let stats t = t.stats
let mem_size t = t.cfg.Config.mem_size
let crashed_once t = t.crashed
let set_fuse t n = t.fuse <- n
let fuse t = t.fuse
let events t = t.events

let set_trace t n =
  if n <= 0 then begin
    t.trace <- None;
    t.trace_pos <- 0
  end
  else begin
    t.trace <- Some (Array.make n Sfence);
    t.trace_pos <- 0
  end

let record_op t op =
  match t.trace with
  | None -> ()
  | Some ring ->
      ring.(t.trace_pos mod Array.length ring) <- op;
      t.trace_pos <- t.trace_pos + 1

let recent_ops t =
  match t.trace with
  | None -> []
  | Some ring ->
      let n = Array.length ring in
      let count = min n t.trace_pos in
      List.init count (fun i -> ring.((t.trace_pos - count + i) mod n))

let burn_fuse t =
  t.events <- t.events + 1;
  match t.fuse with
  | None -> ()
  | Some n -> if n <= 1 then raise Crash else t.fuse <- Some (n - 1)

let charge t ns = if t.metered then t.stats.Stats.ns <- t.stats.Stats.ns +. ns
let charge_ns = charge

let charge_bg_ns t ns =
  if t.metered then t.stats.Stats.bg_ns <- t.stats.Stats.bg_ns +. ns

let count f t = if t.metered then f t.stats

(* {2 Raw media access} *)

let media_read_line t li dst dst_off =
  let base = li * Addr.line_size in
  for i = 0 to Addr.line_size - 1 do
    Bytes.unsafe_set dst (dst_off + i)
      (Bigarray.Array1.unsafe_get t.media (base + i))
  done

(* Unmetered byte copy into the media image (detach write-back, crash
   word drains). *)
let media_blit_out t src src_off media_off len =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set t.media (media_off + i)
      (Bytes.unsafe_get src (src_off + i))
  done

(* Write one line of content to the media image, with traffic accounting
   and sequential-stream detection. *)
let media_write_line t li (src : Bytes.t) src_off =
  media_blit_out t src src_off (li * Addr.line_size) Addr.line_size;
  if t.metered then begin
    t.stats.Stats.pm_write_lines <- t.stats.Stats.pm_write_lines + 1;
    Specpmt_obs.Phase.on_pm_write_line ();
    if li = t.last_persist_line + 1 || li = t.last_persist_line then
      t.stats.Stats.pm_write_lines_seq <- t.stats.Stats.pm_write_lines_seq + 1;
    (* unmetered (background-core) writes must not perturb the foreground
       stream-locality tracking either *)
    t.last_persist_line <- li
  end

let line_write_cost t li =
  let seq = li = t.last_persist_line + 1 || li = t.last_persist_line in
  if seq then t.cfg.Config.pm_seq_write_ns else t.cfg.Config.pm_write_ns

(* {2 Slot pool and FIFO} *)

let is_dirty t s = Bytes.unsafe_get t.slot_dirty s <> '\000'
let set_dirty t s = Bytes.unsafe_set t.slot_dirty s '\001'

let fifo_push t s =
  t.fifo_next.(s) <- -1;
  t.fifo_prev.(s) <- t.fifo_tail;
  if t.fifo_tail >= 0 then t.fifo_next.(t.fifo_tail) <- s
  else t.fifo_head <- s;
  t.fifo_tail <- s

let fifo_unlink t s =
  let p = t.fifo_prev.(s) and n = t.fifo_next.(s) in
  if p >= 0 then t.fifo_next.(p) <- n else t.fifo_head <- n;
  if n >= 0 then t.fifo_prev.(n) <- p else t.fifo_tail <- p;
  t.fifo_prev.(s) <- -1;
  t.fifo_next.(s) <- -1

let alloc_slot t =
  t.free_top <- t.free_top - 1;
  t.free_slots.(t.free_top)

(* Return an unlinked slot to the free pool (the caller has already
   removed it from the FIFO). *)
let release_slot t s =
  t.slot_of.(t.slot_line.(s)) <- -1;
  t.slot_line.(s) <- -1;
  Bytes.unsafe_set t.slot_dirty s '\000';
  t.free_slots.(t.free_top) <- s;
  t.free_top <- t.free_top + 1;
  t.occupied <- t.occupied - 1

let invalidate_slot t s =
  fifo_unlink t s;
  release_slot t s

let evict_capacity t =
  let cap = t.cfg.Config.cache_capacity_lines in
  while t.occupied > cap do
    let s = t.fifo_head in
    fifo_unlink t s;
    let li = t.slot_line.(s) in
    if is_dirty t s then begin
      count (fun st -> st.Stats.evictions <- st.Stats.evictions + 1) t;
      (* the cost must be read off before the write-back advances
         [last_persist_line] to the victim, otherwise every capacity
         eviction bills the sequential rate regardless of locality *)
      let cost = line_write_cost t li in
      media_write_line t li t.slot_data (s * Addr.line_size);
      charge_bg_ns t cost
    end;
    release_slot t s
  done

(* Fetch a line into the cache (clean copy from media) if absent;
   returns the slot id. *)
let get_slot t li ~for_load =
  let s = t.slot_of.(li) in
  if s >= 0 then begin
    charge t t.cfg.Config.l1_hit_ns;
    s
  end
  else begin
    if for_load then begin
      count (fun st -> st.Stats.pm_read_lines <- st.Stats.pm_read_lines + 1) t;
      if t.metered then Specpmt_obs.Phase.on_pm_read_line ();
      (* a miss continuing the previous miss's stream is bandwidth-bound:
         prefetch hides the media latency (the read-side twin of the
         sequential-write fast path) *)
      let seq = li = t.last_read_line + 1 || li = t.last_read_line in
      if seq then begin
        count
          (fun st ->
            st.Stats.pm_read_lines_seq <- st.Stats.pm_read_lines_seq + 1)
          t;
        charge t t.cfg.Config.pm_seq_read_ns
      end
      else charge t t.cfg.Config.pm_read_ns;
      if t.metered then t.last_read_line <- li
    end
    else charge t t.cfg.Config.l1_hit_ns;
    let s = alloc_slot t in
    t.slot_of.(li) <- s;
    t.slot_line.(s) <- li;
    Bytes.unsafe_set t.slot_dirty s '\000';
    media_read_line t li t.slot_data (s * Addr.line_size);
    fifo_push t s;
    t.occupied <- t.occupied + 1;
    evict_capacity t;
    s
  end

(* Write every dirty cached line back to media and empty the cache —
   the handoff fence when line ownership moves between views (e.g. a
   worker domain joining, or a parent forking views over lines it
   formatted).  A simulation-boundary operation: no stats, no WPQ, no
   fuse events. *)
let clear_cache t =
  let s = ref t.fifo_head in
  while !s >= 0 do
    let next = t.fifo_next.(!s) in
    t.fifo_prev.(!s) <- -1;
    t.fifo_next.(!s) <- -1;
    release_slot t !s;
    s := next
  done;
  t.fifo_head <- -1;
  t.fifo_tail <- -1;
  t.wpq_head <- 0;
  t.wpq_len <- 0

let detach_cache t =
  let s = ref t.fifo_head in
  while !s >= 0 do
    if is_dirty t !s then
      media_blit_out t t.slot_data (!s * Addr.line_size)
        (t.slot_line.(!s) * Addr.line_size)
        Addr.line_size;
    s := t.fifo_next.(!s)
  done;
  clear_cache t

(* Drop the cache without any write-back: the crash counterpart of
   {!detach_cache} — everything this view had not yet persisted is
   lost, exactly as a power failure would lose one core's caches. *)
let discard_cache t = clear_cache t

(* Accept one line into the write-pending queue: may stall the foreground
   if the queue is full; the drain itself is asynchronous and paid by the
   next fence. *)
let wpq_accept t li =
  (* background-core persists do not occupy the foreground's
     write-pending queue in the model *)
  if t.metered then begin
    let cfg = t.cfg in
    let wcap = Array.length t.wpq in
    if t.wpq_len >= cfg.Config.wpq_lines then begin
      (* stall until the oldest accepted persist drains, then retire
         every entry that has completed by the stalled clock *)
      let oldest = t.wpq.(t.wpq_head) in
      if t.stats.Stats.ns < oldest then charge t (oldest -. t.stats.Stats.ns);
      while t.wpq_len > 0 && t.wpq.(t.wpq_head) <= t.stats.Stats.ns do
        t.wpq_head <- (t.wpq_head + 1) mod wcap;
        t.wpq_len <- t.wpq_len - 1
      done
    end;
    charge t cfg.Config.wpq_accept_ns;
    let start = Float.max t.stats.Stats.ns t.last_completion in
    let completion = start +. line_write_cost t li in
    t.last_completion <- completion;
    t.wpq.((t.wpq_head + t.wpq_len) mod wcap) <- completion;
    t.wpq_len <- t.wpq_len + 1
  end

let check_bounds t addr len =
  if addr < 0 || addr + len > t.cfg.Config.mem_size then
    Fmt.invalid_arg "Pmem: address out of bounds: %d (+%d)" addr len

let load_int t addr =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  burn_fuse t;
  record_op t (Load addr);
  count (fun s -> s.Stats.loads <- s.Stats.loads + 1) t;
  let s = get_slot t (Addr.line_index addr) ~for_load:true in
  Int64.to_int
    (Bytes.get_int64_le t.slot_data
       ((s * Addr.line_size) + Addr.offset_in_line addr))

let store_int t addr v =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  burn_fuse t;
  record_op t (Store (addr, v));
  count (fun s -> s.Stats.stores <- s.Stats.stores + 1) t;
  let s = get_slot t (Addr.line_index addr) ~for_load:false in
  Bytes.set_int64_le t.slot_data
    ((s * Addr.line_size) + Addr.offset_in_line addr)
    (Int64.of_int v);
  set_dirty t s

let load_bytes t addr len =
  check_bounds t addr len;
  burn_fuse t;
  record_op t (Load_bytes (addr, len));
  count (fun s -> s.Stats.loads <- s.Stats.loads + 1) t;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let li = Addr.line_index a in
    let off = Addr.offset_in_line a in
    let n = min (Addr.line_size - off) (len - !pos) in
    let s = get_slot t li ~for_load:true in
    Bytes.blit t.slot_data ((s * Addr.line_size) + off) out !pos n;
    pos := !pos + n
  done;
  out

let store_bytes t addr b =
  let len = Bytes.length b in
  if len > 0 then begin
    check_bounds t addr len;
    burn_fuse t;
    record_op t (Store_bytes (addr, len));
    count (fun s -> s.Stats.stores <- s.Stats.stores + 1) t;
    let pos = ref 0 in
    while !pos < len do
      let a = addr + !pos in
      let li = Addr.line_index a in
      let off = Addr.offset_in_line a in
      let n = min (Addr.line_size - off) (len - !pos) in
      let s = get_slot t li ~for_load:false in
      Bytes.blit b !pos t.slot_data ((s * Addr.line_size) + off) n;
      set_dirty t s;
      pos := !pos + n
    done
  end

let clwb t addr =
  check_bounds t addr 1;
  burn_fuse t;
  record_op t (Clwb addr);
  count (fun s -> s.Stats.clwbs <- s.Stats.clwbs + 1) t;
  if t.metered then Specpmt_obs.Phase.on_clwb ();
  charge t t.cfg.Config.clwb_issue_ns;
  if not t.cfg.Config.eadr then begin
    let li = Addr.line_index addr in
    let s = t.slot_of.(li) in
    if s >= 0 && is_dirty t s then begin
      (* accepted by the WPQ: persistent now, drain time paid at the
         fence *)
      wpq_accept t li;
      media_write_line t li t.slot_data (s * Addr.line_size);
      Bytes.unsafe_set t.slot_dirty s '\000'
    end
  end

(* clflushopt: like clwb but also invalidates the cached copy — the next
   access misses.  Same persistence semantics (WPQ acceptance).  The
   victim is unlinked from the eviction FIFO, not just unmapped. *)
let clflushopt t addr =
  clwb t addr;
  let s = t.slot_of.(Addr.line_index addr) in
  if s >= 0 then invalidate_slot t s

let sfence t =
  burn_fuse t;
  record_op t Sfence;
  count (fun s -> s.Stats.fences <- s.Stats.fences + 1) t;
  if t.metered then Specpmt_obs.Phase.on_fence ();
  let latest =
    if t.wpq_len = 0 then t.stats.Stats.ns
    else
      (* completions are monotone: the tail entry is the latest *)
      Float.max t.stats.Stats.ns
        t.wpq.((t.wpq_head + t.wpq_len - 1) mod Array.length t.wpq)
  in
  if t.metered then t.stats.Stats.ns <- latest +. t.cfg.Config.fence_ns;
  t.wpq_head <- 0;
  t.wpq_len <- 0

let nt_store_bytes t addr b =
  (* under eADR a cached store is already durable; the non-temporal hint
     buys nothing and the write stays in the (persistent) cache *)
  if t.cfg.Config.eadr then store_bytes t addr b
  else
    let len = Bytes.length b in
    if len > 0 then begin
      check_bounds t addr len;
      burn_fuse t;
      record_op t (Nt_store (addr, len));
      count (fun s -> s.Stats.nt_stores <- s.Stats.nt_stores + 1) t;
      if t.metered then Specpmt_obs.Phase.on_nt_store ();
      let pos = ref 0 in
      while !pos < len do
        let a = addr + !pos in
        let li = Addr.line_index a in
        let off = Addr.offset_in_line a in
        let n = min (Addr.line_size - off) (len - !pos) in
        (* write-combining through the WPQ; cached copies are invalidated,
           merging with any cached dirty content first so that unrelated
           bytes of the line are not lost *)
        let s = t.slot_of.(li) in
        if s >= 0 then begin
          Bytes.blit b !pos t.slot_data ((s * Addr.line_size) + off) n;
          wpq_accept t li;
          media_write_line t li t.slot_data (s * Addr.line_size);
          invalidate_slot t s
        end
        else begin
          media_read_line t li t.nt_scratch 0;
          Bytes.blit b !pos t.nt_scratch off n;
          wpq_accept t li;
          media_write_line t li t.nt_scratch 0
        end;
        pos := !pos + n
      done
    end

let flush_range t addr len =
  if len > 0 then begin
    let first = Addr.line_index addr in
    let last = Addr.line_index (addr + len - 1) in
    for li = first to last do
      clwb t (li * Addr.line_size)
    done
  end

let dirty_lines t =
  let acc = ref [] in
  let s = ref t.fifo_head in
  while !s >= 0 do
    if is_dirty t !s then acc := t.slot_line.(!s) :: !acc;
    s := t.fifo_next.(!s)
  done;
  List.sort compare !acc

let dirty_words t =
  List.concat_map
    (fun li ->
      List.init (Addr.line_size / 8) (fun w ->
          (li * Addr.line_size) + (w * 8)))
    (dirty_lines t)

(* Oracle-driven crash: [persist] decides, per dirty 8-byte word in
   ascending address order, whether the in-flight store reaches the media.
   Under eADR the caches sit inside the persistence domain, so everything
   drains regardless of the oracle. *)
let crash_with t ~persist =
  t.crashed <- true;
  List.iter
    (fun li ->
      let s = t.slot_of.(li) in
      if s >= 0 then
        (* each 8-byte word may have drained independently (stores are
           word-atomic with respect to persistence) *)
        for w = 0 to (Addr.line_size / 8) - 1 do
          let addr = (li * Addr.line_size) + (w * 8) in
          if t.cfg.Config.eadr || persist addr then
            media_blit_out t t.slot_data ((s * Addr.line_size) + (w * 8))
              addr 8
        done)
    (dirty_lines t);
  clear_cache t;
  t.fuse <- None

let crash t =
  t.crashed <- true;
  (* under eADR the caches are inside the persistence domain: every dirty
     word drains, deterministically *)
  let p =
    if t.cfg.Config.eadr then 1.0 else t.cfg.Config.crash_word_persist_prob
  in
  List.iter
    (fun li ->
      let s = t.slot_of.(li) in
      if s >= 0 then
        for w = 0 to (Addr.line_size / 8) - 1 do
          if Random.State.float t.rng 1.0 < p then
            media_blit_out t t.slot_data ((s * Addr.line_size) + (w * 8))
              ((li * Addr.line_size) + (w * 8))
              8
        done)
    (dirty_lines t);
  clear_cache t;
  t.fuse <- None

let with_unmetered t f =
  let saved = t.metered in
  t.metered <- false;
  Fun.protect ~finally:(fun () -> t.metered <- saved) f

let peek_media_int t addr =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  let g i = Char.code (Bigarray.Array1.unsafe_get t.media (addr + i)) in
  g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24) lor (g 4 lsl 32)
  lor (g 5 lsl 40)
  lor (g 6 lsl 48)
  lor (g 7 lsl 56)

let peek_volatile_int t addr =
  assert (Addr.is_word_aligned addr);
  check_bounds t addr 8;
  let s = t.slot_of.(Addr.line_index addr) in
  if s >= 0 then
    Int64.to_int
      (Bytes.get_int64_le t.slot_data
         ((s * Addr.line_size) + Addr.offset_in_line addr))
  else peek_media_int t addr
