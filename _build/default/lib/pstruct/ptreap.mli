(** Persistent ordered map (treap with deterministic priorities).

    The ordered-map role of STAMP's red-black trees (vacation's tables)
    with much simpler rebalancing — and therefore smaller transactional
    write sets.  Priorities are a hash of the key, so runs are
    deterministic. *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> t
val of_root_cell : Addr.t -> t
val root_cell : t -> Addr.t
val find : Ctx.ctx -> t -> int -> int option
val mem : Ctx.ctx -> t -> int -> bool

val update : Ctx.ctx -> t -> int -> int -> bool
(** Overwrite the value of an existing key; [false] if absent (no
    insertion, no rebalancing — a 1-cell write set). *)

val insert : Ctx.ctx -> t -> int -> int -> unit
(** Insert or overwrite, rebalancing by rotation. *)

val remove : Ctx.ctx -> t -> int -> bool

val find_ceiling : Ctx.ctx -> t -> int -> (int * int) option
(** Smallest key [>= k] with its value. *)

val iter : Ctx.ctx -> t -> (int -> int -> unit) -> unit
(** In increasing key order. *)

val fold : Ctx.ctx -> t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
val length : Ctx.ctx -> t -> int
