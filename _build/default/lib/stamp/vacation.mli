(** Travel reservation system (STAMP); see the implementation header. *)

val low : Wtypes.t
(** 2 queries, 1 reservation per transaction. *)

val high : Wtypes.t
(** 6 queries, up to 2 reservations per transaction. *)
