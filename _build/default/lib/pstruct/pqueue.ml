(** Persistent FIFO queue of 8-byte values (linked nodes).

    Layout: header [head; tail; size]; node [value; next]. *)

open Specpmt_pmem
open Specpmt_txn

type t = { header : Addr.t }

let node_bytes = 16

let create (ctx : Ctx.ctx) =
  let header = ctx.Ctx.alloc 24 in
  ctx.Ctx.write header 0;
  ctx.Ctx.write (header + 8) 0;
  ctx.Ctx.write (header + 16) 0;
  { header }

let size (ctx : Ctx.ctx) t = ctx.Ctx.read (t.header + 16)
let is_empty ctx t = size ctx t = 0

let push (ctx : Ctx.ctx) t v =
  let n = ctx.Ctx.alloc node_bytes in
  ctx.Ctx.write n v;
  ctx.Ctx.write (n + 8) 0;
  let tail = ctx.Ctx.read (t.header + 8) in
  if tail = 0 then ctx.Ctx.write t.header n
  else ctx.Ctx.write (tail + 8) n;
  ctx.Ctx.write (t.header + 8) n;
  ctx.Ctx.write (t.header + 16) (size ctx t + 1)

let pop (ctx : Ctx.ctx) t =
  let head = ctx.Ctx.read t.header in
  if head = 0 then None
  else begin
    let v = ctx.Ctx.read head in
    let next = ctx.Ctx.read (head + 8) in
    ctx.Ctx.write t.header next;
    if next = 0 then ctx.Ctx.write (t.header + 8) 0;
    ctx.Ctx.write (t.header + 16) (size ctx t - 1);
    ctx.Ctx.free head;
    Some v
  end

(** Address of a queue over an existing header (root rediscovery). *)
let of_header header = { header }

let header t = t.header
