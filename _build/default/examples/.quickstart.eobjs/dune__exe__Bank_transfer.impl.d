examples/bank_transfer.ml: Array Ctx Heap Pmem Pmem_config Printf Random Specpmt Stats Sys
