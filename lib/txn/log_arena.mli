(** Chained-block, append-only persistent log (paper Section 4.1).

    The log area is a chain of fixed-size {e log blocks} allocated from the
    persistent heap on demand.  Records are appended sequentially; each
    record is [{size; timestamp; checksum}] metadata followed by 16-byte
    entries [(target address, value)].  When a record outgrows its block, a
    {e marker entry} embeds a forward block pointer and the record continues
    in a fresh block, exactly as in Figure 6.  The checksum covers metadata
    (size, timestamp), entries and markers, and doubles as the commit
    status: recovery replays records from the head and stops at the first
    mismatch (Section 4.1, "the checksum also serves as the transaction's
    commit status").

    Appends are plain stores — nothing is flushed until {!commit_record},
    which persists the whole record with one flush run and a single fence.

    {!compact} implements the reclamation copy-and-splice of Section 4.2:
    fresh entries are copied into new blocks, the new chain is made live by
    one atomic head-pointer switch, and stale blocks return to the heap —
    two fences per cycle, crash-safe at every point. *)

open Specpmt_pmem
open Specpmt_pmalloc

type t

type entry_pos = int
(** Absolute address of an entry's value cell, for in-place freshening. *)

val create : Heap.t -> head_slot:int -> block_bytes:int -> t
(** Fresh empty log; persists the head pointer in root slot [head_slot]. *)

val attach : Heap.t -> head_slot:int -> block_bytes:int -> t
(** Reattach after a crash: scans the valid prefix and resumes appending
    after it.  Call only after {!recover_scan}-based data recovery. *)

(** {1 Appending} *)

val begin_record : t -> unit
(** Open a record.  At most one record may be open. *)

val add_entry : t -> target:Addr.t -> value:int -> entry_pos
(** Append an entry to the open record (plain stores, no persistence). *)

val set_entry_value : t -> entry_pos -> int -> unit
(** Overwrite the value of an already-appended entry of the open record —
    write-set indexing keeps one entry per datum per transaction. *)

val abandon_record : t -> unit
(** Drop the open record; only legal while it has no entries.  Read-only
    transactions must use this instead of committing a zero-entry record,
    which would read as the end-of-log sentinel. *)

val commit_record :
  ?fence:bool -> ?flush:bool -> ?tentative:bool -> t -> timestamp:int -> unit
(** Seal the open record: write metadata with the checksum commit marker,
    flush every line of the record, and issue one fence.  [~fence:false]
    skips the fence — used by the hardware bulk-copy engine, whose flushes
    are persistent on write-pending-queue acceptance (ADR) and whose
    ordering is enforced by the engine itself (Section 5.1).
    [~flush:false] skips persistence entirely: the record drains via cache
    evictions — only for logs whose content recovery never reads (HOOP's
    address-mapping log).

    [~tentative:true] is the group-commit path: the record is written with
    a deliberately poisoned checksum and neither flushed nor fenced, so it
    stays invisible to every scan no matter which of its lines a crash
    persists.  {!seal_tentative} later patches the true checksums and
    persists the whole batch under one flush run and a single fence.
    While tentative records are pending, only further tentative commits
    are legal (an individually-persisted record appended behind a
    checksum gap would be unreachable), and reclamation / reset /
    epoch operations must wait for the seal. *)

val seal_tentative : t -> int
(** Persist the pending group-commit batch: write the true checksum into
    every tentative record (oldest first), flush all their spans plus any
    pending chain pointers in one run, and issue a single fence.  Returns
    the number of records sealed (0 when no batch is pending).  A crash
    inside the seal durably commits a prefix of the batch in append
    order — the valid-prefix scan stops at the first still-poisoned
    checksum — so batched transactions become visible all-or-prefix, never
    out of order. *)

val tentative_records : t -> int
(** Number of tentative (committed-but-unsealed) records pending. *)

val entry_words : t -> int
(** Number of entries in the open record. *)

val has_open_record : t -> bool

val append_page_record :
  ?fence:bool -> t -> timestamp:int -> page_base:Addr.t -> unit
(** Append a standalone, already-committed record embedding the current
    4 KiB image of the page at [page_base] — the hardware bulk-copy
    engine's page adoption (Section 5.1).  May not be called while a
    record is open.  Scanning expands the image into per-word entries.
    Fence-free by default (persistent on WPQ acceptance). *)

(** {1 Scanning (recovery path, works on any attached or crashed image)} *)

val recover_scan :
  Pmem.t ->
  head_slot:int ->
  block_bytes:int ->
  f:(ts:int -> (Addr.t * int) array -> unit) ->
  int
(** Walk the valid record prefix from the head pointer, oldest first,
    calling [f] per record; returns the largest timestamp seen (0 if
    none).  Stops at the first checksum mismatch — later records are by
    construction uncommitted. *)

val recover_collect :
  Pmem.t ->
  head_slot:int ->
  block_bytes:int ->
  index:(Addr.t, int * int * Addr.t) Hashtbl.t ->
  int * int * int
(** Coalescing scan: one walk over the valid record prefix folds every
    entry into [index], a last-writer-wins map from cell address to
    [(value, commit timestamp, holding block)].  An entry replaces an
    existing binding iff its timestamp is at least as new, so feeding
    several per-thread logs through the same [index] merges them by
    global timestamp (timestamps are globally unique across logs sharing
    a counter).  Returns [(max_ts, records_scanned, entries_scanned)].
    Unlike {!recover_scan} + replay, applying [index] writes each live
    cell exactly once — recovery work becomes O(live set), not O(log). *)

(** {1 Reclamation} *)

type compact_stats = {
  records_scanned : int;
  entries_scanned : int;
  entries_live : int;
  blocks_freed : int;
  blocks_allocated : int;
}

val compact : t -> compact_stats
(** Reclaim stale records: copy the freshest entry of every datum into new
    blocks, atomically switch the head pointer, free old blocks.  Each
    surviving entry keeps the timestamp of the record it came from — the
    compacted output is one record per contributing timestamp, in
    ascending order — so replaying this log interleaved with others in
    global timestamp order (Section 5.2.2) remains correct.  Must not be
    called while a record is open. *)

val compact_indexed :
  ?keep_from:Addr.t ->
  ?on_place:(Addr.t -> block:Addr.t -> unit) ->
  t ->
  live:(int * (Addr.t * int) list) list ->
  compact_stats
(** Index-driven reclamation: rewrite the chain from a caller-supplied
    live set — [(timestamp, (target, value) list)] groups in strictly
    ascending timestamp order — without scanning the old chain at all:
    O(live) copies instead of {!compact}'s O(log) scan.  [on_place] is
    called with each entry's target and the new block it lands in, so the
    caller can keep a volatile index current.  With [keep_from] (which
    must be a {!is_clean_start} block of the chain) only the prefix
    strictly older than that block is evacuated: [live] must then hold
    exactly the prefix's live entries, and the new chain is sealed into
    the retained suffix; a fully stale prefix ([live = []]) is dropped
    with a single pointer persist and zero copies.  Crash safety is the
    same 2-fence splice as {!compact}: everything new persists with fence
    #1 while unreachable and becomes live only at the atomic head publish
    (fence #2).  Must not be called while a record is open. *)

val reset : t -> unit
(** Durably empty the log: persist an end-of-log sentinel at the head
    block's payload, sever its chain pointer, and recycle every other
    block.  After [reset] no scan from the head slot yields any record;
    the arena keeps appending into the (now empty) head block.  Used when
    the log's content has been persisted by other means and must not be
    replayed again (mechanism switch-out, Section 4.3.1).  Must not be
    called while a record is open. *)

(** {1 Epoch support (hardware SpecPMT, Section 5.2)} *)

val current_block : t -> Addr.t
(** The block new appends currently land in. *)

val seal_block : t -> unit
(** Force the next record to start in a fresh block, making the current
    position a block-aligned epoch boundary. *)

val drop_prefix : t -> keep_from:Addr.t -> int
(** Free every block strictly older than [keep_from] (which must be a
    block of the chain), switching the persistent head pointer atomically.
    Returns the number of blocks freed.  Used by epoch-based reclamation:
    start epochs on sealed block boundaries and drop the oldest epoch's
    blocks in the foreground with one pointer persist. *)

(** {1 Introspection}

    The per-block figures below are volatile accounting maintained by the
    arena (and rebuilt by {!attach}) — the inputs of the adaptive
    reclamation scheduler's pressure model. *)

val footprint : t -> int
(** Persistent bytes currently held by the chain. *)

val block_count : t -> int
(** Number of blocks in the chain. *)

val total_entries : t -> int
(** Entries currently recorded in the chain, live and stale alike (page
    records count one entry per page word). *)

val entries_in_block : t -> Addr.t -> int
(** Entries recorded in one chain block (0 for unknown blocks). *)

val chain : t -> Addr.t list
(** The chain's blocks, oldest first. *)

val is_clean_start : t -> Addr.t -> bool
(** Whether the block's payload starts on a record boundary — only such
    blocks are legal {!compact_indexed} [keep_from] splice points, because
    no record spans into them. *)

val pm : t -> Pmem.t
(** The device the arena lives on. *)
