lib/pstruct/plist.ml: Addr Ctx List Specpmt_pmem Specpmt_txn
