open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_svc

(* The service-level acceptance tests of the group-commit tentpole:
   fences/write falls with the batch size, admission sheds under
   pressure, and a kill in the middle of a batch loses nothing that was
   acknowledged while exposing nothing that was not. *)

let mk_svc ?(seed = 5) cfg =
  let pm = Pmem.create ~seed Config.small in
  let heap = Heap.create pm in
  (pm, Service.create heap cfg)

(* router + admission *)

let test_router_and_admission () =
  let _, svc = mk_svc { Service.shards = 3; batch_max = 4; depth = 2; keys = 64 } in
  for k = 0 to 63 do
    let s = Service.shard_of_key svc k in
    Alcotest.(check bool) "shard in range" true (s >= 0 && s < 3);
    Alcotest.(check int) "routing is stable" s (Service.shard_of_key svc k)
  done;
  (* overrun one shard's depth-2 admission queue *)
  let on_shard0 =
    List.filter (fun k -> Service.shard_of_key svc k = 0)
      (List.init 64 Fun.id)
  in
  Alcotest.(check bool) "enough keys on shard 0" true
    (List.length on_shard0 >= 5);
  let verdicts =
    List.map
      (fun k -> Service.submit svc ~client:0 ~key:k (Service.Write k))
      on_shard0
  in
  let accepted, shed =
    List.partition (function Admission.Accepted -> true | _ -> false) verdicts
  in
  Alcotest.(check int) "depth bounds inflight" 2 (List.length accepted);
  Alcotest.(check int) "the rest are shed" (List.length on_shard0 - 2)
    (List.length shed);
  Alcotest.(check int) "sheds counted" (List.length shed)
    (Service.rejected svc);
  (* a drain frees the slots: the shed keys go through on retry *)
  let done1 = Service.drain svc in
  Alcotest.(check int) "accepted ops complete" 2 (List.length done1);
  List.iter
    (fun (v : Admission.verdict) ->
      match v with
      | Admission.Rejected { queued } ->
          Alcotest.failf "retry after drain still shed (queued %d)" queued
      | Admission.Accepted -> ())
    (List.filteri (fun i _ -> i < 2)
       (List.map
          (fun k -> Service.submit svc ~client:0 ~key:k (Service.Write k))
          (List.filteri (fun i _ -> i >= 2) on_shard0)))

(* fences/write falls monotonically with batch_max (toward 1/K) *)

let test_fences_per_write_monotone () =
  let fences_at batch_max =
    let _, svc =
      mk_svc ~seed:7
        { Service.shards = 2; batch_max; depth = 32; keys = 256 }
    in
    let r =
      Loadgen.run svc
        { Loadgen.clients = 16; ops = 400; read_frac = 0.0; skew = 0.0;
          seed = 11 }
    in
    Alcotest.(check int) "all ops completed" 400 r.Loadgen.total_ops;
    r.Loadgen.fences_per_write
  in
  let f1 = fences_at 1 and f4 = fences_at 4 and f8 = fences_at 8 in
  Alcotest.(check bool)
    (Printf.sprintf "batch 4 beats batch 1 (%.3f < %.3f)" f4 f1)
    true (f4 < f1);
  Alcotest.(check bool)
    (Printf.sprintf "batch 8 beats batch 4 (%.3f < %.3f)" f8 f4)
    true (f8 < f4);
  Alcotest.(check bool)
    (Printf.sprintf "batch 8 amortises below 1/2 (%.3f)" f8)
    true (f8 < 0.5)

(* mid-batch kill: acknowledged writes survive any crash, unacknowledged
   ones stay invisible (except a sealed prefix of the one batch whose
   fence was in flight).  A dry run sizes the drain's event window, then
   the same deterministic workload is killed at a spread of crash points
   under both drain-everything and drain-nothing persist choices. *)

let kill_cfg = { Service.shards = 2; batch_max = 3; depth = 32; keys = 32 }

let kill_ops =
  (* 24 writes, keys repeat so later batches overwrite earlier ones *)
  List.init 24 (fun i -> (i * 5 mod 32, 1000 + i))

let run_kill ~fuse ~persist =
  let pm, svc = mk_svc ~seed:5 kill_cfg in
  let acked = Array.make kill_cfg.Service.keys 0 in
  let pending = Array.make kill_cfg.Service.keys [] in
  List.iter
    (fun (k, v) ->
      pending.(k) <- pending.(k) @ [ v ];
      match Service.submit svc ~client:0 ~key:k (Service.Write v) with
      | Admission.Accepted -> ()
      | Admission.Rejected _ -> Alcotest.fail "kill workload must fit depth")
    kill_ops;
  let on_ack (c : Service.completion) =
    match c.Service.c_op with
    | Service.Write v ->
        acked.(c.Service.c_key) <- v;
        pending.(c.Service.c_key) <-
          List.filter (fun v' -> v' <> v) pending.(c.Service.c_key)
    | Service.Read -> ()
  in
  (match fuse with
  | Some f ->
      Pmem.set_fuse pm (Some f);
      (try ignore (Service.drain ~on_ack svc) with Pmem.Crash -> ())
  | None -> ignore (Service.drain ~on_ack svc));
  let sealing =
    Array.init kill_cfg.Service.shards (Service.sealing svc)
  in
  Pmem.crash_with pm ~persist:(fun _ -> persist);
  Service.recover svc;
  (* audit: every key shows its last acknowledged value, or — only on a
     shard whose seal was in flight — a submitted-but-unacked value
     (the durable prefix of the interrupted batch) *)
  for k = 0 to kill_cfg.Service.keys - 1 do
    let got = Service.peek svc k in
    let sealing_shard = sealing.(Service.shard_of_key svc k) in
    let ok =
      got = acked.(k) || (sealing_shard && List.mem got pending.(k))
    in
    if not ok then
      Alcotest.failf
        "fuse %s persist %b key %d: got %d, acked %d, pending %a (sealing %b)"
        (match fuse with Some f -> string_of_int f | None -> "-")
        persist k got acked.(k)
        Fmt.(Dump.list int)
        pending.(k) sealing_shard
  done;
  (* the recovered service keeps serving *)
  (match Service.submit svc ~client:9 ~key:0 (Service.Write 777_777) with
  | Admission.Accepted -> ()
  | Admission.Rejected _ -> Alcotest.fail "post-recovery submit shed");
  ignore (Service.drain svc);
  Alcotest.(check int) "post-recovery write lands" 777_777
    (Service.peek svc 0)

let test_mid_batch_kill () =
  (* dry run: count the drain's fuse-visible events *)
  let drain_events =
    let pm, svc = mk_svc ~seed:5 kill_cfg in
    List.iter
      (fun (k, v) ->
        ignore (Service.submit svc ~client:0 ~key:k (Service.Write v)))
      kill_ops;
    let e0 = Pmem.events pm in
    ignore (Service.drain svc);
    Pmem.events pm - e0
  in
  Alcotest.(check bool) "drain does work" true (drain_events > 0);
  (* no-crash control: every write acknowledged and visible *)
  run_kill ~fuse:None ~persist:true;
  let stride = max 1 (drain_events / 40) in
  let fuse = ref 1 in
  while !fuse <= drain_events do
    run_kill ~fuse:(Some !fuse) ~persist:true;
    run_kill ~fuse:(Some !fuse) ~persist:false;
    fuse := !fuse + stride
  done

let () =
  Alcotest.run "svc"
    [
      ( "service",
        [
          Alcotest.test_case "router + admission backpressure" `Quick
            test_router_and_admission;
          Alcotest.test_case "fences/write falls with batch size" `Quick
            test_fences_per_write_monotone;
          Alcotest.test_case "mid-batch kill: acked durable, unacked invisible"
            `Slow test_mid_batch_kill;
        ] );
    ]
