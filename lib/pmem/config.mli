(** Device and cost-model parameters (paper Table 1).

    All latencies are simulated nanoseconds; the core runs at 4 GHz.  The
    persistent-memory numbers follow Table 1: 150 ns read, 500 ns write,
    a 512-byte write-pending queue; sequential writes are discounted (the
    sequential-log advantage the paper builds on). *)

type t = {
  mem_size : int;  (** size of the persistent media image, bytes *)
  cache_capacity_lines : int;
      (** volatile cache capacity in 64-byte lines; evictions past this
          write dirty lines back to the media *)
  l1_hit_ns : float;  (** load/store hit in the volatile hierarchy *)
  pm_read_ns : float;  (** persistent-media random read (cache miss) *)
  pm_seq_read_ns : float;
      (** read miss landing on the line at or right after the previously
          read line (streaming scan: bandwidth-bound, prefetch hides the
          latency) *)
  pm_write_ns : float;  (** persistent-media random line write *)
  pm_seq_write_ns : float;
      (** line write landing right after the previously persisted line *)
  wpq_lines : int;  (** write-pending-queue capacity in lines *)
  wpq_accept_ns : float;  (** time for the WPQ to accept one line *)
  fence_ns : float;  (** fixed overhead of [sfence] beyond draining *)
  clwb_issue_ns : float;  (** core-side issue cost of a flush *)
  crash_word_persist_prob : float;
      (** at a crash, probability that any given dirty (un-flushed) 8-byte
          word has already drained to the media *)
  eadr : bool;
      (** persistent caches (paper Section 5.3.1): stores are durable on
          arrival, flushes are no-ops, crashes drain everything *)
}

val default : t

val small : t
(** A 1 MiB image with a tiny cache, for unit tests. *)
