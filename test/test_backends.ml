open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn
open Specpmt_backends

let recoverable = [ Registry.Pmdk; Registry.Spht; Registry.Spec_dp; Registry.Spec; Registry.Hashlog ]

let mk_backend ?(seed = 11) kind =
  let pm = Pmem.create ~seed Config.small in
  let heap = Heap.create pm in
  (pm, heap, Registry.create heap kind)

(* committed transactions are durable even when nothing forced the data
   itself to the media *)
let test_committed_durable kind () =
  let pm, heap, b = mk_backend kind in
  let base, outcome =
    Testlib.run_with_crash pm heap b ~cells:8 ~fuse:None
      [ [ (0, 11); (1, 22) ]; [ (0, 33) ] ]
  in
  Alcotest.(check int) "both committed" 2 outcome.Testlib.committed;
  Pmem.crash pm;
  b.Ctx.recover ();
  let cells = Testlib.read_cells pm base 8 in
  Alcotest.(check int) "cell 0" 33 cells.(0);
  Alcotest.(check int) "cell 1" 22 cells.(1)

(* an interrupted transaction is fully revoked, even when its in-place
   updates leaked to the media before the crash *)
let test_uncommitted_revoked kind () =
  let pm = Pmem.create ~seed:3 { Config.small with crash_word_persist_prob = 1.0 } in
  let heap = Heap.create pm in
  let b = Registry.create heap kind in
  let base = Heap.alloc heap (8 * 8) in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 7 do
        ctx.Ctx.write (base + (i * 8)) (100 + i)
      done);
  (* crash mid-transaction, after its stores have issued *)
  (try
     b.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 999;
         ctx.Ctx.write (base + 8) 888;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 16) 777)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  b.Ctx.recover ();
  let cells = Testlib.read_cells pm base 8 in
  for i = 0 to 7 do
    Alcotest.(check int) (Printf.sprintf "cell %d restored" i) (100 + i) cells.(i)
  done

let test_abort_rolls_back kind () =
  let pm, heap, b = mk_backend kind in
  let base = Heap.alloc heap 64 in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 5);
  (try
     b.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 42;
         raise Ctx.Abort)
   with Ctx.Abort -> ());
  Alcotest.(check int) "rolled back" 5 (Pmem.peek_volatile_int pm base);
  (* and the rollback itself must be crash consistent *)
  if b.Ctx.supports_recovery then begin
    Pmem.crash pm;
    b.Ctx.recover ();
    Alcotest.(check int) "rolled back durably" 5
      (Pmem.peek_volatile_int pm base)
  end

let test_read_own_writes kind () =
  let _, heap, b = mk_backend kind in
  let base = Heap.alloc heap 64 in
  b.Ctx.run_tx (fun ctx ->
      ctx.Ctx.write base 1;
      ctx.Ctx.write (base + 8) (ctx.Ctx.read base + 1);
      ctx.Ctx.write base 7);
  let v =
    b.Ctx.run_tx (fun ctx -> (ctx.Ctx.read base, ctx.Ctx.read (base + 8)))
  in
  Alcotest.(check (pair int int)) "read own writes" (7, 2) v

(* the headline property: atomic durability under random programs and
   random crash points, with random media leakage *)
let prop_atomic_durability kind =
  QCheck.Test.make
    ~name:(Printf.sprintf "atomic durability: %s" (Registry.name kind))
    ~count:60
    QCheck.(triple small_nat small_nat (int_bound 10000))
    (fun (seed, fuse_seed, salt) ->
      let cells = 12 and txs = 8 and max_writes = 6 in
      let rand = Random.State.make [| seed; salt; 17 |] in
      let program = Testlib.gen_program ~cells ~txs ~max_writes rand in
      let states = Testlib.reference ~cells program in
      let pm =
        Pmem.create ~seed:(salt + 1)
          {
            Config.small with
            crash_word_persist_prob =
              float_of_int (seed mod 11) /. 10.0;
          }
      in
      let heap = Heap.create pm in
      let b = Registry.create heap kind in
      let fuse = 1 + ((fuse_seed * 37) + salt) mod 3000 in
      let base, outcome =
        Testlib.run_with_crash pm heap b ~cells ~fuse:(Some fuse) program
      in
      if outcome.Testlib.crashed then begin
        Pmem.crash pm;
        b.Ctx.recover ()
      end;
      let recovered = Testlib.read_cells pm base cells in
      let ok = Testlib.check_recovered ~states ~outcome recovered in
      if not ok then
        QCheck.Test.fail_reportf
          "not atomic: committed=%d crashed=%b@ recovered=%a@ expected %a or \
           %a"
          outcome.Testlib.committed outcome.Testlib.crashed Testlib.pp_cells
          recovered Testlib.pp_cells
          states.(outcome.Testlib.committed)
          Testlib.pp_cells
          (states.(min (outcome.Testlib.committed + 1) txs));
      ok)

(* regression: a read-only transaction between committed ones must not
   truncate the scannable log (a zero-entry record reads like the
   end-of-log sentinel) *)
let test_empty_tx_between_commits kind () =
  let pm, heap, b = mk_backend ~seed:31 kind in
  let base = Heap.alloc heap 64 in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 1);
  let v = b.Ctx.run_tx (fun ctx -> ctx.Ctx.read base) in
  Alcotest.(check int) "read-only tx sees data" 1 v;
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 2);
  Pmem.crash pm;
  b.Ctx.recover ();
  Alcotest.(check int) "commit after read-only tx recovered" 2
    (Pmem.peek_volatile_int pm base)

(* double crash: crash, recover, run more transactions, crash again *)
let test_double_crash kind () =
  let pm, heap, b = mk_backend ~seed:23 kind in
  let base = Heap.alloc heap (4 * 8) in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 3 do
        ctx.Ctx.write (base + (i * 8)) i
      done);
  Pmem.crash pm;
  b.Ctx.recover ();
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 100);
  Pmem.crash pm;
  b.Ctx.recover ();
  let cells = Testlib.read_cells pm base 4 in
  Alcotest.(check int) "second-generation commit" 100 cells.(0);
  Alcotest.(check int) "first-generation commit" 3 cells.(3)

(* SpecPMT-specific behaviours *)

let test_spec_fence_economy () =
  (* the point of the paper: SpecPMT uses one fence per transaction while
     undo logging pays one per update plus commit barriers *)
  let count kind =
    let pm, heap, b = mk_backend kind in
    let base = Heap.alloc heap (16 * 8) in
    b.Ctx.run_tx (fun ctx ->
        for i = 0 to 15 do
          ctx.Ctx.write (base + (i * 8)) i
        done);
    let f0 = (Pmem.stats pm).Stats.fences in
    b.Ctx.run_tx (fun ctx ->
        for i = 0 to 15 do
          ctx.Ctx.write (base + (i * 8)) (i * 2)
        done);
    (Pmem.stats pm).Stats.fences - f0
  in
  Alcotest.(check int) "SpecPMT: one fence per tx" 1 (count Registry.Spec);
  Alcotest.(check bool) "PMDK: a fence per update" true
    (count Registry.Pmdk >= 16)

let test_spec_no_data_flush () =
  let pm, heap, b = mk_backend Registry.Spec in
  let base = Heap.alloc heap 64 in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 1);
  let w0 = (Pmem.stats pm).Stats.ns in
  let c0 = (Pmem.stats pm).Stats.clwbs in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 2);
  let dp_pm, dp_heap, dp = mk_backend Registry.Spec_dp in
  let dp_base = Heap.alloc dp_heap 64 in
  dp.Ctx.run_tx (fun ctx -> ctx.Ctx.write dp_base 1);
  ignore (w0, c0, dp_pm);
  (* SpecSPMT-DP flushes log + data; SpecSPMT flushes only log lines *)
  Alcotest.(check bool) "DP issues more flushes" true
    ((Pmem.stats dp_pm).Stats.clwbs > c0)

let test_spec_reclamation_bounds_log () =
  let pm = Pmem.create Config.small in
  let heap = Heap.create pm in
  let backend, t =
    Spec_soft.create heap
      { Spec_soft.default_params with reclaim = Spec_soft.Threshold (16 * 1024) }
  in
  let base = Heap.alloc heap (8 * 8) in
  for round = 0 to 400 do
    backend.Ctx.run_tx (fun ctx ->
        for i = 0 to 7 do
          ctx.Ctx.write (base + (i * 8)) (round + i)
        done)
  done;
  Alcotest.(check bool) "reclamation ran" true (Spec_soft.reclaim_count t > 0);
  Alcotest.(check bool) "log stays bounded" true
    (backend.Ctx.log_footprint () <= 32 * 1024);
  (* and the log still recovers the freshest state *)
  Pmem.crash pm;
  backend.Ctx.recover ();
  let cells = Testlib.read_cells pm base 8 in
  for i = 0 to 7 do
    Alcotest.(check int) "freshest value" (400 + i) cells.(i)
  done

let test_spec_snapshot_external_data () =
  let pm = Pmem.create { Config.small with crash_word_persist_prob = 1.0 } in
  let heap = Heap.create pm in
  let backend, t = Spec_soft.create heap Spec_soft.default_params in
  let base = Heap.alloc heap 64 in
  (* external data: written outside any transaction *)
  Pmem.store_int pm base 1234;
  Pmem.clwb pm base;
  Pmem.sfence pm;
  Spec_soft.snapshot_region t base 8;
  (* an uncommitted update can now be revoked *)
  (try
     backend.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 9999;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write base 8888)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  backend.Ctx.recover ();
  Alcotest.(check int) "external datum revoked to snapshot" 1234
    (Pmem.peek_volatile_int pm base)

let test_kamino_recovery_unsupported () =
  let _, _, b = mk_backend Registry.Kamino in
  Alcotest.(check bool) "flagged" false b.Ctx.supports_recovery;
  Alcotest.(check bool) "raises" true
    (try
       b.Ctx.recover ();
       false
     with Invalid_argument _ -> true)

(* multi-threaded speculative logging: per-thread logs, global timestamp
   order at recovery (Sections 4.1 and 5.2.2) *)
let test_mt_interleaved_recovery () =
  let pm =
    Pmem.create ~seed:9 { Config.small with crash_word_persist_prob = 0.6 }
  in
  let heap = Heap.create pm in
  let mt = Spec_mt.create heap ~threads:3 in
  let base = Heap.alloc heap (4 * 8) in
  (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx ->
      for i = 0 to 3 do
        ctx.Ctx.write (base + (i * 8)) 0
      done);
  (* interleave transactions across threads, all touching cell 0 — the
     last committed write must win after recovery, which only timestamp
     ordering across the three logs can get right *)
  let order = [ 0; 1; 2; 1; 0; 2; 2; 0; 1; 0 ] in
  List.iteri
    (fun round th ->
      (Spec_mt.thread mt th).Ctx.run_tx (fun ctx ->
          ctx.Ctx.write base ((round * 10) + th);
          ctx.Ctx.write (base + 8 + (th * 8)) round))
    order;
  Pmem.crash pm;
  Spec_mt.recover mt;
  (* last element of [order] is round 9 on thread 0 *)
  Alcotest.(check int) "last global write wins" 90
    (Pmem.peek_volatile_int pm base);
  Alcotest.(check int) "thread 0 cell" 9 (Pmem.peek_volatile_int pm (base + 8));
  Alcotest.(check int) "thread 1 cell" 8 (Pmem.peek_volatile_int pm (base + 16));
  Alcotest.(check int) "thread 2 cell" 6 (Pmem.peek_volatile_int pm (base + 24))

let test_mt_crash_revokes_only_open_tx () =
  let pm =
    Pmem.create ~seed:13 { Config.small with crash_word_persist_prob = 1.0 }
  in
  let heap = Heap.create pm in
  let mt = Spec_mt.create heap ~threads:2 in
  let base = Heap.alloc heap 32 in
  (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx ->
      ctx.Ctx.write base 1;
      ctx.Ctx.write (base + 8) 2);
  (Spec_mt.thread mt 1).Ctx.run_tx (fun ctx -> ctx.Ctx.write base 5);
  (* thread 0 crashes mid-transaction *)
  (try
     (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 999;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 8) 888)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  Spec_mt.recover mt;
  Alcotest.(check int) "thread 1's commit is the freshest" 5
    (Pmem.peek_volatile_int pm base);
  Alcotest.(check int) "interrupted write revoked" 2
    (Pmem.peek_volatile_int pm (base + 8));
  (* threads keep working after recovery *)
  (Spec_mt.thread mt 1).Ctx.run_tx (fun ctx -> ctx.Ctx.write base 7);
  Alcotest.(check int) "post-recovery commit" 7 (Pmem.peek_volatile_int pm base)

(* recovery is idempotent and tolerates a crash during recovery *)
let test_recovery_idempotent kind () =
  let pm, heap, b = mk_backend ~seed:41 kind in
  let base = Heap.alloc heap (4 * 8) in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 3 do
        ctx.Ctx.write (base + (i * 8)) (i + 50)
      done);
  Pmem.crash pm;
  b.Ctx.recover ();
  let first = Testlib.read_cells pm base 4 in
  Pmem.crash pm;
  b.Ctx.recover ();
  Alcotest.(check bool) "second recovery converges" true
    (Testlib.read_cells pm base 4 = first)

let test_crash_during_recovery kind () =
  let pm =
    Pmem.create ~seed:47 { Config.small with crash_word_persist_prob = 0.5 }
  in
  let heap = Heap.create pm in
  let b = Registry.create heap kind in
  let base = Heap.alloc heap (4 * 8) in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 3 do
        ctx.Ctx.write (base + (i * 8)) (i + 7)
      done);
  (try
     b.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 100;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 8) 200)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  (* crash again in the middle of the recovery routine, then recover *)
  Pmem.set_fuse pm (Some 20);
  (try b.Ctx.recover () with Pmem.Crash -> Pmem.crash pm);
  Pmem.set_fuse pm None;
  b.Ctx.recover ();
  let cells = Testlib.read_cells pm base 4 in
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "cell %d after double-fault recovery" i)
      (i + 7) cells.(i)
  done

(* Section 4.3.1: switch from speculative logging to undo logging *)
let test_mechanism_switch () =
  let pm =
    Pmem.create ~seed:51 { Config.small with crash_word_persist_prob = 0.0 }
  in
  let heap = Heap.create pm in
  let spec_backend, spec = Spec_soft.create heap Spec_soft.default_params in
  let base = Heap.alloc heap 64 in
  spec_backend.Ctx.run_tx (fun ctx ->
      ctx.Ctx.write base 11;
      ctx.Ctx.write (base + 8) 22);
  let persisted = Spec_soft.switch_out spec in
  Alcotest.(check bool) "cells persisted" true (persisted >= 2);
  (* with zero leak probability, only the switch-out flush can explain
     the data being durable *)
  Alcotest.(check int) "data durable without recovery" 11
    (Pmem.peek_media_int pm base);
  (* undo logging takes over and recovers on its own *)
  let undo = Registry.create heap Registry.Pmdk in
  (try
     undo.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write base 99;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 8) 98)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  undo.Ctx.recover ();
  Alcotest.(check int) "undo revoked its tx" 11 (Pmem.peek_volatile_int pm base);
  Alcotest.(check int) "spec-era value intact" 22
    (Pmem.peek_volatile_int pm (base + 8))

(* random multi-threaded interleavings with a crash: the recovered state
   must equal the reference applied in global commit order, modulo the
   usual at-most-one in-flight transaction *)
let prop_mt_atomic_durability =
  QCheck.Test.make ~name:"atomic durability: Spec_mt (3 threads)" ~count:40
    QCheck.(triple small_nat small_nat (int_bound 10000))
    (fun (seed, fuse_seed, salt) ->
      let cells = 10 and txs_per_thread = 5 in
      let rand = Random.State.make [| seed; salt; 71 |] in
      let pm =
        Pmem.create ~seed:(salt + 3)
          {
            Config.small with
            crash_word_persist_prob = float_of_int (seed mod 11) /. 10.0;
          }
      in
      let heap = Heap.create pm in
      let mt = Spec_mt.create heap ~threads:3 in
      let base = Heap.alloc heap (cells * 8) in
      (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx ->
          for i = 0 to cells - 1 do
            ctx.Ctx.write (base + (i * 8)) 0
          done);
      (* random global schedule of per-thread transactions *)
      let schedule =
        List.concat_map
          (fun th -> List.init txs_per_thread (fun _ -> th))
          [ 0; 1; 2 ]
        |> List.sort (fun _ _ -> if Random.State.bool rand then 1 else -1)
      in
      let txs =
        List.map
          (fun th ->
            ( th,
              List.init
                (1 + Random.State.int rand 4)
                (fun _ ->
                  (Random.State.int rand cells, Random.State.int rand 100000))
            ))
          schedule
      in
      let reference = Array.make cells 0 in
      let committed = ref [] in
      Pmem.set_fuse pm (Some (1 + (((fuse_seed * 53) + salt) mod 2500)));
      let crashed =
        try
          List.iter
            (fun (th, writes) ->
              (Spec_mt.thread mt th).Ctx.run_tx (fun ctx ->
                  List.iter
                    (fun (c, v) -> ctx.Ctx.write (base + (c * 8)) v)
                    writes);
              committed := writes :: !committed)
            txs;
          Pmem.set_fuse pm None;
          false
        with Pmem.Crash -> true
      in
      if crashed then begin
        Pmem.crash pm;
        Spec_mt.recover mt
      end;
      List.iter
        (fun writes -> List.iter (fun (c, v) -> reference.(c) <- v) writes)
        (List.rev !committed);
      let recovered = Testlib.read_cells pm base cells in
      (* allow the one possibly-committed-but-uncounted transaction *)
      let matches r =
        Array.for_all2 (fun a b -> a = b) recovered r
      in
      let next_ref =
        match List.nth_opt txs (List.length !committed) with
        | Some (_, writes) ->
            let r = Array.copy reference in
            List.iter (fun (c, v) -> r.(c) <- v) writes;
            r
        | None -> reference
      in
      matches reference || matches next_ref)

(* The paper's Section 5.1 coherence scenario, software rendition: two
   threads write the same datum (w1 then w2); neither write is ever
   flushed.  If w2's transaction commits, recovery must produce w2; if it
   is interrupted, recovery must revoke it back to w1 using thread 1's
   record — in both cases without persisting w1's effect. *)
let test_coherence_scenario_51 () =
  let run ~interrupt =
    let pm =
      Pmem.create ~seed:61 { Config.small with crash_word_persist_prob = 1.0 }
    in
    let heap = Heap.create pm in
    let mt = Spec_mt.create heap ~threads:2 in
    let x = Heap.alloc heap 8 in
    (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx -> ctx.Ctx.write x 0);
    (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx -> ctx.Ctx.write x 1) (* w1 *);
    (try
       (Spec_mt.thread mt 1).Ctx.run_tx (fun ctx ->
           ctx.Ctx.write x 2 (* w2 *);
           if interrupt then begin
             Pmem.set_fuse pm (Some 1);
             ignore (ctx.Ctx.read x)
           end)
     with Pmem.Crash -> ());
    Pmem.crash pm;
    Spec_mt.recover mt;
    Pmem.peek_volatile_int pm x
  in
  Alcotest.(check int) "w2 committed -> recover w2" 2 (run ~interrupt:false);
  Alcotest.(check int) "w2 interrupted -> revoke to w1" 1 (run ~interrupt:true)

(* crash at every point inside switch_out (Section 4.3.1): afterwards,
   either the speculative log still recovers the state, or the flushes
   already made it durable — never a torn middle *)
let test_switch_out_crash_atomic () =
  let fuse = ref 1 in
  let continue_ = ref true in
  while !continue_ do
    let pm =
      Pmem.create ~seed:71 { Config.small with crash_word_persist_prob = 0.5 }
    in
    let heap = Heap.create pm in
    let backend, spec = Spec_soft.create heap Spec_soft.default_params in
    let base = Heap.alloc heap (8 * 8) in
    backend.Ctx.run_tx (fun ctx ->
        for i = 0 to 7 do
          ctx.Ctx.write (base + (i * 8)) (i + 40)
        done);
    Pmem.set_fuse pm (Some !fuse);
    let crashed =
      try
        ignore (Spec_soft.switch_out spec);
        false
      with Pmem.Crash -> true
    in
    Pmem.set_fuse pm None;
    if crashed then begin
      Pmem.crash pm;
      backend.Ctx.recover ()
    end;
    for i = 0 to 7 do
      Alcotest.(check int)
        (Printf.sprintf "fuse %d cell %d" !fuse i)
        (i + 40)
        (Pmem.peek_volatile_int pm (base + (i * 8)))
    done;
    continue_ := crashed;
    incr fuse
  done;
  Alcotest.(check bool) "switch_out eventually completes" true (!fuse > 2)

(* coalescing recovery's headline property: recovery cost tracks live
   data, not log length.  N stale overwrites of one cell recover with
   exactly one data write under [Coalesce]; the [Replay] oracle pays one
   write per record *)
let test_recover_coalesces_stale_overwrites () =
  let overwrites = 50 in
  let run mode =
    let pm = Pmem.create ~seed:13 Config.small in
    let heap = Heap.create pm in
    let backend, _ =
      Spec_soft.create heap { Spec_soft.default_params with recovery = mode }
    in
    let base = Heap.alloc heap 8 in
    for r = 1 to overwrites do
      backend.Ctx.run_tx (fun ctx -> ctx.Ctx.write base r)
    done;
    Pmem.crash pm;
    Specpmt_obs.Metrics.reset_all ();
    backend.Ctx.recover ();
    Alcotest.(check int) "freshest value recovered" overwrites
      (Pmem.peek_volatile_int pm base);
    Specpmt_obs.Metrics.counter_value
      (Specpmt_obs.Metrics.counter "recover.data_writes")
  in
  Alcotest.(check int) "coalesced: one write for the live cell" 1
    (run Spec_soft.Coalesce);
  Alcotest.(check int) "replay oracle: one write per record" overwrites
    (run Spec_soft.Replay)

(* differential oracle: on any randomized 3-thread history with a crash,
   coalescing recovery must reproduce exactly the state the paper's
   sort-and-replay algorithm yields.  The pre-crash execution is
   deterministic in the seeds and independent of the recovery mode, so
   the two runs see identical logs and media states. *)
let prop_mt_recovery_differential =
  QCheck.Test.make
    ~name:"coalesced recovery == legacy replay (3 threads)" ~count:40
    QCheck.(triple small_nat small_nat (int_bound 10000))
    (fun (seed, fuse_seed, salt) ->
      let cells = 10 and txs_per_thread = 5 in
      let run mode =
        let rand = Random.State.make [| seed; salt; 72 |] in
        let pm =
          Pmem.create ~seed:(salt + 5)
            {
              Config.small with
              crash_word_persist_prob = float_of_int (seed mod 11) /. 10.0;
            }
        in
        let heap = Heap.create pm in
        let mt =
          Spec_mt.create
            ~params:{ Spec_soft.default_params with recovery = mode }
            heap ~threads:3
        in
        let base = Heap.alloc heap (cells * 8) in
        (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx ->
            for i = 0 to cells - 1 do
              ctx.Ctx.write (base + (i * 8)) 0
            done);
        let schedule =
          List.concat_map
            (fun th -> List.init txs_per_thread (fun _ -> th))
            [ 0; 1; 2 ]
          |> List.sort (fun _ _ -> if Random.State.bool rand then 1 else -1)
        in
        let txs =
          List.map
            (fun th ->
              ( th,
                List.init
                  (1 + Random.State.int rand 4)
                  (fun _ ->
                    (Random.State.int rand cells, Random.State.int rand 100000))
              ))
            schedule
        in
        Pmem.set_fuse pm (Some (1 + (((fuse_seed * 53) + salt) mod 2500)));
        (try
           List.iter
             (fun (th, writes) ->
               (Spec_mt.thread mt th).Ctx.run_tx (fun ctx ->
                   List.iter
                     (fun (c, v) -> ctx.Ctx.write (base + (c * 8)) v)
                     writes))
             txs
         with Pmem.Crash -> ());
        Pmem.set_fuse pm None;
        Pmem.crash pm;
        Spec_mt.recover mt;
        Testlib.read_cells pm base cells
      in
      run Spec_soft.Coalesce = run Spec_soft.Replay)

(* the adaptive scheduler fires on its own once footprint and staleness
   cross its thresholds, keeps the log bounded, and its prefix
   evacuations stay crash-consistent *)
let test_adaptive_reclaim_triggers () =
  let pm = Pmem.create ~seed:17 Config.small in
  let heap = Heap.create pm in
  let backend, t =
    Spec_soft.create heap
      {
        Spec_soft.default_params with
        reclaim =
          Spec_soft.Adaptive
            { min_log_bytes = 8 * 1024; stale_trigger = 0.5; bg_duty = 1.0 };
      }
  in
  let base = Heap.alloc heap (8 * 8) in
  for round = 0 to 400 do
    backend.Ctx.run_tx (fun ctx ->
        for i = 0 to 7 do
          ctx.Ctx.write (base + (i * 8)) (round + i)
        done)
  done;
  Alcotest.(check bool) "scheduler fired" true (Spec_soft.reclaim_count t > 0);
  Alcotest.(check bool) "log stays bounded" true
    (backend.Ctx.log_footprint () <= 32 * 1024);
  Alcotest.(check int) "index tracks the working set" 8
    (Spec_soft.live_cells t);
  Pmem.crash pm;
  backend.Ctx.recover ();
  let cells = Testlib.read_cells pm base 8 in
  for i = 0 to 7 do
    Alcotest.(check int) "freshest value" (400 + i) cells.(i)
  done

(* with no background budget the scheduler must hold off and account for
   the deferral rather than compact on the foreground's dime.  The
   long-lived cells pin live entries into the oldest blocks so every
   candidate evacuation has a nonzero copy estimate (a fully-dead prefix
   would be a zero-cost drop, which even a zero budget allows). *)
let test_adaptive_defers_without_budget () =
  let pm = Pmem.create ~seed:19 Config.small in
  let heap = Heap.create pm in
  let backend, t =
    Spec_soft.create heap
      {
        Spec_soft.default_params with
        reclaim =
          Spec_soft.Adaptive
            { min_log_bytes = 1024; stale_trigger = 0.5; bg_duty = 0.0 };
      }
  in
  Specpmt_obs.Metrics.reset_all ();
  let base = Heap.alloc heap (9 * 8) in
  backend.Ctx.run_tx (fun ctx ->
      for i = 1 to 8 do
        ctx.Ctx.write (base + (i * 8)) i
      done);
  for round = 1 to 300 do
    backend.Ctx.run_tx (fun ctx -> ctx.Ctx.write base round)
  done;
  Alcotest.(check int) "no compaction without budget" 0
    (Spec_soft.reclaim_count t);
  Alcotest.(check bool) "deferrals accounted" true
    (Specpmt_obs.Metrics.counter_value
       (Specpmt_obs.Metrics.counter "reclaim.deferred_bg_budget")
    > 0)

let durability_cases =
  List.concat_map
    (fun kind ->
      let n = Registry.name kind in
      [
        Alcotest.test_case (n ^ ": committed durable") `Quick
          (test_committed_durable kind);
        Alcotest.test_case (n ^ ": uncommitted revoked") `Quick
          (test_uncommitted_revoked kind);
        Alcotest.test_case (n ^ ": abort rolls back") `Quick
          (test_abort_rolls_back kind);
        Alcotest.test_case (n ^ ": read own writes") `Quick
          (test_read_own_writes kind);
        Alcotest.test_case (n ^ ": double crash") `Quick
          (test_double_crash kind);
        Alcotest.test_case (n ^ ": empty tx between commits") `Quick
          (test_empty_tx_between_commits kind);
        Alcotest.test_case (n ^ ": recovery idempotent") `Quick
          (test_recovery_idempotent kind);
        Alcotest.test_case (n ^ ": crash during recovery") `Quick
          (test_crash_during_recovery kind);
      ])
    recoverable

(* regressions: directed reproducers for bugs the crash explorer found *)

(* compaction must not restamp survivors with the newest timestamp: with
   per-thread logs, recovery replays all records in global timestamp
   order (Section 5.2.2), so a compacted record carrying max_ts would
   replay thread 0's stale value over thread 1's fresher committed one *)
let test_mt_compaction_preserves_replay_order () =
  let pm = Pmem.create ~seed:91 Config.small in
  let heap = Heap.create pm in
  let mt =
    Spec_mt.create
      ~params:{ Spec_soft.default_params with block_bytes = 256 }
      heap ~threads:2
  in
  let base = Heap.alloc heap 64 in
  let t0 = Spec_mt.thread mt 0 and t1 = Spec_mt.thread mt 1 in
  t0.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 1) (* ts 1 *);
  t1.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 2) (* ts 2 *);
  t0.Ctx.run_tx (fun ctx -> ctx.Ctx.write (base + 8) 3) (* ts 3 *);
  ignore (Spec_soft.reclaim_now (Spec_mt.runtime mt 0));
  (* nothing drained to the media: recovery rebuilds every cell from the
     two logs, and only the cross-log replay order decides who wins *)
  Pmem.crash_with pm ~persist:(fun _ -> false);
  Spec_mt.recover mt;
  Alcotest.(check int) "thread 1's fresher value wins" 2
    (Pmem.peek_volatile_int pm base);
  Alcotest.(check int) "thread 0's later cell intact" 3
    (Pmem.peek_volatile_int pm (base + 8))

(* switch-out must durably invalidate the whole speculative log: records
   left valid in the tail block would be replayed by a later recovery and
   clobber data committed by the replacement mechanism (Section 4.3.1) *)
let test_switch_out_invalidates_log () =
  let pm =
    Pmem.create ~seed:92 { Config.small with crash_word_persist_prob = 0.0 }
  in
  let heap = Heap.create pm in
  let backend, spec = Spec_soft.create heap Spec_soft.default_params in
  let base = Heap.alloc heap 64 in
  backend.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 11);
  ignore (Spec_soft.switch_out spec);
  let undo = Registry.create heap Registry.Pmdk in
  undo.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 99);
  Pmem.crash_with pm ~persist:(fun _ -> true);
  backend.Ctx.recover ();
  undo.Ctx.recover ();
  Alcotest.(check int) "stale speculative record not replayed" 99
    (Pmem.peek_volatile_int pm base)

(* an aborted transaction's allocations must be compensated, or every
   abort leaks heap blocks *)
(* the Spec_mt thread cap scales with the root-slot table: no more
   hard-coded 1..3 (one reserved head slot per thread) *)
let test_mt_thread_cap_lifted () =
  Alcotest.(check int) "cap = remaining root slots"
    Slots.spec_mt_max_threads Spec_mt.max_threads;
  Alcotest.(check bool) "cap is well past the old 3" true
    (Spec_mt.max_threads >= 8);
  ignore (Slots.spec_mt_head (Spec_mt.max_threads - 1));
  Alcotest.check_raises "head slot past the cap rejected"
    (Invalid_argument "Slots.spec_mt_head") (fun () ->
      ignore (Slots.spec_mt_head Spec_mt.max_threads));
  let mk threads =
    let pm = Pmem.create ~seed:17 Config.small in
    ignore (Spec_mt.create (Heap.create pm) ~threads)
  in
  (* the full-width pool fits a small image with small log blocks *)
  let pm = Pmem.create ~seed:17 Config.small in
  ignore
    (Spec_mt.create
       ~params:{ Spec_soft.default_params with block_bytes = 256 }
       (Heap.create pm) ~threads:Spec_mt.max_threads);
  List.iter
    (fun threads ->
      Alcotest.(check bool)
        (Printf.sprintf "threads=%d rejected" threads)
        true
        (try
           mk threads;
           false
         with Invalid_argument _ -> true))
    [ 0; -1; Spec_mt.max_threads + 1 ]

(* directed 8-thread pool: interleaved commits + one open transaction
   per the crash, then a full recovery audit (satellite of the service
   tentpole, which runs one shard per pool thread) *)
let test_mt_eight_threads_crash_recover () =
  let pm =
    Pmem.create ~seed:23 { Config.small with crash_word_persist_prob = 0.7 }
  in
  let heap = Heap.create pm in
  let mt = Spec_mt.create heap ~threads:8 in
  let base = Heap.alloc heap (9 * 8) in
  (Spec_mt.thread mt 0).Ctx.run_tx (fun ctx ->
      for i = 0 to 8 do
        ctx.Ctx.write (base + (i * 8)) 0
      done);
  (* 3 rounds x 8 threads, every thread contending on cell 8 *)
  for round = 0 to 2 do
    for th = 0 to 7 do
      (Spec_mt.thread mt th).Ctx.run_tx (fun ctx ->
          ctx.Ctx.write (base + (th * 8)) ((round * 100) + th);
          ctx.Ctx.write (base + 64) ((round * 10) + th))
    done
  done;
  (* thread 5 dies mid-transaction *)
  (try
     (Spec_mt.thread mt 5).Ctx.run_tx (fun ctx ->
         ctx.Ctx.write (base + 40) 999_999;
         Pmem.set_fuse pm (Some 1);
         ctx.Ctx.write (base + 64) 888_888)
   with Pmem.Crash -> ());
  Pmem.crash pm;
  Spec_mt.recover mt;
  for th = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "thread %d cell" th)
      (200 + th)
      (Pmem.peek_volatile_int pm (base + (th * 8)))
  done;
  Alcotest.(check int) "contended cell: last committed writer wins" 27
    (Pmem.peek_volatile_int pm (base + 64));
  (* all eight threads keep working after recovery *)
  for th = 0 to 7 do
    (Spec_mt.thread mt th).Ctx.run_tx (fun ctx ->
        ctx.Ctx.write (base + (th * 8)) (500 + th))
  done;
  for th = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "post-recovery thread %d" th)
      (500 + th)
      (Pmem.peek_volatile_int pm (base + (th * 8)))
  done

(* group-commit batch API: misuse guards and the single-fence seal *)
let test_batch_api_guards () =
  let pm = Pmem.create ~seed:31 Config.small in
  let heap = Heap.create pm in
  let backend, t = Spec_soft.create heap Spec_soft.default_params in
  Alcotest.(check bool) "not batching initially" false (Spec_soft.in_batch t);
  Alcotest.check_raises "end without begin"
    (Invalid_argument "Spec_soft.batch_end: no open batch") (fun () ->
      ignore (Spec_soft.batch_end t));
  Spec_soft.batch_begin t;
  Alcotest.check_raises "nested begin"
    (Invalid_argument "Spec_soft.batch_begin: batch already open") (fun () ->
      Spec_soft.batch_begin t);
  let base = Heap.alloc heap 8 in
  backend.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 0);
  Alcotest.(check int) "seals the adoption tx" 1 (Spec_soft.batch_end t);
  (* data_persist commits eagerly per transaction: batching refused *)
  let _, dp = Spec_soft.create heap Spec_soft.dp_params in
  Alcotest.check_raises "data_persist cannot batch"
    (Invalid_argument
       "Spec_soft.batch_begin: data-persist mode fences per transaction")
    (fun () -> Spec_soft.batch_begin dp)

let test_batch_single_fence () =
  let pm = Pmem.create ~seed:37 Config.small in
  let heap = Heap.create pm in
  let backend, t = Spec_soft.create heap Spec_soft.default_params in
  let base = Heap.alloc heap (8 * 8) in
  backend.Ctx.run_tx (fun ctx ->
      for i = 0 to 7 do
        ctx.Ctx.write (base + (i * 8)) 0
      done);
  let fences_for n =
    let before = (Pmem.stats pm).Stats.fences in
    Spec_soft.batch_begin t;
    for i = 1 to n do
      backend.Ctx.run_tx (fun ctx -> ctx.Ctx.write (base + (i mod 8 * 8)) i)
    done;
    Alcotest.(check int) "all sealed" n (Spec_soft.batch_end t);
    (Pmem.stats pm).Stats.fences - before
  in
  Alcotest.(check int) "4 txns, one fence" 1 (fences_for 4);
  Alcotest.(check int) "8 txns, one fence" 1 (fences_for 8);
  (* and the batch is durable: drain nothing further, recover, audit *)
  Pmem.crash_with pm ~persist:(fun _ -> false);
  backend.Ctx.recover ();
  Alcotest.(check int) "last batched write survives" 8
    (Pmem.peek_volatile_int pm base)

let test_abort_releases_allocations () =
  let pm = Pmem.create ~seed:93 Config.small in
  let heap = Heap.create pm in
  let backend, _ = Spec_soft.create heap Spec_soft.default_params in
  let base = Heap.alloc heap 8 in
  let abort_once () =
    try
      backend.Ctx.run_tx (fun ctx ->
          let a = ctx.Ctx.alloc 512 in
          ctx.Ctx.write a 1;
          ctx.Ctx.write base 7;
          raise Ctx.Abort)
    with Ctx.Abort -> ()
  in
  (* the first cycle pays the block's 8-byte header (live_bytes counts
     freed payloads, not headers); from then on the footprint must be
     flat — a leak grows it by a full block per abort *)
  abort_once ();
  let steady = Heap.live_bytes heap in
  for _ = 1 to 5 do
    abort_once ()
  done;
  Alcotest.(check int) "no leak across aborted transactions" steady
    (Heap.live_bytes heap)

(* read-own-writes fast path: Spht's [tx_read] must not probe the write
   buffer while the transaction's write set is empty — the common case
   for read-only transactions.  The [tx.buffer_probes] counter meters
   the slow path, so a read-only transaction must leave it untouched
   while a read-after-write transaction still takes it (correct
   redirection is covered by the durability suites; this pins the cost
   model). *)
let test_spht_readonly_skips_buffer () =
  let _, heap, b = mk_backend Registry.Spht in
  let base = Heap.alloc heap 64 in
  b.Ctx.run_tx (fun ctx -> ctx.Ctx.write base 5);
  let c = Specpmt_obs.Metrics.counter "tx.buffer_probes" in
  let v0 = Specpmt_obs.Metrics.counter_value c in
  b.Ctx.run_tx (fun ctx ->
      for i = 0 to 9 do
        ignore (ctx.Ctx.read (base + (8 * (i mod 2))))
      done);
  Alcotest.(check int) "read-only tx probes no buffer" v0
    (Specpmt_obs.Metrics.counter_value c);
  b.Ctx.run_tx (fun ctx ->
      ctx.Ctx.write base 9;
      Alcotest.(check int) "reads own write" 9 (ctx.Ctx.read base));
  Alcotest.(check bool) "read-after-write still probes" true
    (Specpmt_obs.Metrics.counter_value c > v0)

let () =
  Alcotest.run "backends"
    [
      ("durability", durability_cases);
      ( "atomic durability (property)",
        List.map
          (fun k -> QCheck_alcotest.to_alcotest (prop_atomic_durability k))
          recoverable );
      ( "multi-threaded",
        [
          Alcotest.test_case "interleaved recovery by timestamp" `Quick
            test_mt_interleaved_recovery;
          Alcotest.test_case "crash revokes only the open tx" `Quick
            test_mt_crash_revokes_only_open_tx;
          QCheck_alcotest.to_alcotest prop_mt_atomic_durability;
          Alcotest.test_case "coherence scenario (section 5.1)" `Quick
            test_coherence_scenario_51;
          Alcotest.test_case "thread cap scales with root slots" `Quick
            test_mt_thread_cap_lifted;
          Alcotest.test_case "8-thread pool crash + recover" `Quick
            test_mt_eight_threads_crash_recover;
        ] );
      ( "specpmt specifics",
        [
          Alcotest.test_case "fence economy" `Quick test_spec_fence_economy;
          Alcotest.test_case "no data flush" `Quick test_spec_no_data_flush;
          Alcotest.test_case "reclamation bounds log" `Quick
            test_spec_reclamation_bounds_log;
          Alcotest.test_case "external data snapshot" `Quick
            test_spec_snapshot_external_data;
          Alcotest.test_case "kamino recovery unsupported" `Quick
            test_kamino_recovery_unsupported;
          Alcotest.test_case "mechanism switch (4.3.1)" `Quick
            test_mechanism_switch;
          Alcotest.test_case "switch_out crash-atomic" `Slow
            test_switch_out_crash_atomic;
          Alcotest.test_case "coalesced recovery writes each cell once" `Quick
            test_recover_coalesces_stale_overwrites;
          QCheck_alcotest.to_alcotest prop_mt_recovery_differential;
          Alcotest.test_case "adaptive reclamation triggers" `Quick
            test_adaptive_reclaim_triggers;
          Alcotest.test_case "adaptive reclamation defers on budget" `Quick
            test_adaptive_defers_without_budget;
          Alcotest.test_case "batch API guards" `Quick test_batch_api_guards;
          Alcotest.test_case "batch seals under one fence" `Quick
            test_batch_single_fence;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "compaction preserves replay order" `Quick
            test_mt_compaction_preserves_replay_order;
          Alcotest.test_case "switch_out invalidates log" `Quick
            test_switch_out_invalidates_log;
          Alcotest.test_case "abort releases allocations" `Quick
            test_abort_releases_allocations;
          Alcotest.test_case "spht read-only tx skips the write buffer"
            `Quick test_spht_readonly_skips_buffer;
        ] );
    ]
