open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn
open Specpmt_hwsim

(* How hot pages are detected (paper Section 6, "Alternative Designs"):
   the proposed hardware uses TLB-resident saturating counters; the
   alternative offloads detection to software, sampling page write counts
   (via a PMU or page-table scanning) with periodic decay — no TLB
   changes, but coarser and unconstrained by TLB residency. *)
type hotness =
  | Tlb_counters
  | Software_sampled of { decay_period : int }
      (** halve all page counters every [decay_period] transactional
          writes — the staleness of sampling-based detection *)

type params = { hw : Hwconfig.t; data_persist : bool; hotness : hotness }

let default_params =
  { hw = Hwconfig.default; data_persist = false; hotness = Tlb_counters }

let dp_params = { default_params with data_persist = true }

(* Record timestamps carry a kind bit: [2*ts] for bulk page-adoption
   records, [2*ts + 1] for transaction commit records.  Scan order within
   the per-thread log is chronological either way. *)
let page_kind ts = 2 * ts
let commit_kind ts = (2 * ts) + 1

type epoch = {
  eid : int;
  boundary : Addr.t; (* first log block of the epoch *)
  mutable pages : int list; (* pages whose records live (also) here *)
  mutable bytes : int;
}

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  params : params;
  thread_id : int;
  coord : Epoch_coord.t; (* shared in multi-threaded pools *)
  head_slot : int;
  undo_region_slot : int;
  undo_capacity_slot : int;
  tlb : Tlb.t;
  mutable l1 : L1tags.t;
  mutable undo : Nt_log.t;
  tsc : Tsc.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable arena : Log_arena.t;
  (* the single source of truth for logging decisions: a page is hot iff
     it has live speculative records.  The value is the page's hotness
     claims, one per thread holding live records for it (newest epoch id
     each); the page only goes cold when the last claim is reclaimed.
     This is the DRAM-side epoch metadata of Figure 10, shared by every
     thread of the pool. *)
  spec_pages : (int, (int * int) list) Hashtbl.t;
  mutable closed_epochs : epoch list; (* oldest first *)
  mutable cur : epoch;
  mutable in_tx : bool;
  (* statistics *)
  soft_counters : (int, int) Hashtbl.t; (* Software_sampled mode *)
  mutable soft_ops : int;
  mutable n_transitions : int;
  mutable n_hot_writes : int;
  mutable n_cold_writes : int;
  mutable n_reclaims : int;
  mutable n_epochs : int;
  mutable peak_log : int;
}

(* upsert this thread's hotness claim on a page *)
let claim t page =
  let claims =
    Option.value ~default:[] (Hashtbl.find_opt t.spec_pages page)
  in
  let others = List.filter (fun (tid, _) -> tid <> t.thread_id) claims in
  let mine = (t.thread_id, t.cur.eid) in
  let fresh = not (List.mem mine claims) in
  Hashtbl.replace t.spec_pages page (mine :: others);
  fresh

(* drop this thread's claim if it belongs to epoch [eid]; the page goes
   cold only when no thread holds a claim any more *)
let unclaim t page ~eid =
  match Hashtbl.find_opt t.spec_pages page with
  | None -> ()
  | Some claims ->
      let rest =
        List.filter (fun c -> c <> (t.thread_id, eid)) claims
      in
      if rest = [] then Hashtbl.remove t.spec_pages page
      else Hashtbl.replace t.spec_pages page rest

let transitions t = t.n_transitions
let l1_tx_evictions t = L1tags.tx_evictions t.l1
let hot_writes t = t.n_hot_writes
let cold_writes t = t.n_cold_writes
let reclaims t = t.n_reclaims
let epochs_started t = t.n_epochs
let peak_log_bytes t = t.peak_log
let is_hot_page t ~page = Hashtbl.mem t.spec_pages page
let tlb t = t.tlb

let note_footprint t =
  let f = Log_arena.footprint t.arena in
  if f > t.peak_log then t.peak_log <- f


(* Cold-to-hot transition: the bulk-copy engine snapshots the page into
   the log as a standalone committed record — fence-free; its flushes are
   persistent on write-pending-queue acceptance and the engine orders them
   before the EpochBit is set (Section 5.1). *)
let transition t page (e : Tlb.entry) =
  let base = page * Addr.page_size in
  let ts = page_kind (Tsc.next t.tsc) in
  Log_arena.append_page_record t.arena ~timestamp:ts ~page_base:base;
  e.Tlb.epoch_bit <- true;
  e.Tlb.cnt_eid <- t.cur.eid;
  ignore (claim t page);
  t.cur.pages <- page :: t.cur.pages;
  t.cur.bytes <- t.cur.bytes + Addr.page_size + 40;
  t.n_transitions <- t.n_transitions + 1;
  (match Sys.getenv_opt "SPEC_HW_DEBUG" with
  | Some _ -> Printf.eprintf "transition page=%d addr=%#x\n%!" page base
  | None -> ());
  note_footprint t

let tx_write t a v =
  let page = Addr.page_index a in
  let e = Tlb.access t.tlb ~page in
  let old_value = Pmem.load_int t.pm a in
  let _, first = Write_set.record t.ws a ~old_value in
  let tag = L1tags.touch t.l1 ~line:(Addr.line_of a) in
  tag.L1tags.tx_dirty <- true;
  tag.L1tags.logbit <- true;
  if Hashtbl.mem t.spec_pages page then begin
    (* hot: live records cover the page; no undo, no flush, plain store.
       A page evicted from the TLB and re-touched re-adopts its coverage
       without a fresh bulk copy.  The PBit marks the line for lazy
       persistence on eviction (Figure 9). *)
    tag.L1tags.pbit <- true;
    if not e.Tlb.epoch_bit then begin
      e.Tlb.epoch_bit <- true;
      e.Tlb.cnt_eid <-
        (match Hashtbl.find t.spec_pages page with
        | (_, eid) :: _ -> eid
        | [] -> t.cur.eid)
    end;
    t.n_hot_writes <- t.n_hot_writes + 1
  end
  else begin
    (* cold: fence-free hardware undo logging, then hotness tracking *)
    if first then Nt_log.append t.undo ~addr:a ~old:old_value;
    t.n_cold_writes <- t.n_cold_writes + 1;
    (match t.params.hotness with
    | Tlb_counters ->
        if e.Tlb.cnt_eid < t.params.hw.Hwconfig.hot_threshold then
          e.Tlb.cnt_eid <- e.Tlb.cnt_eid + 1;
        if e.Tlb.cnt_eid >= t.params.hw.Hwconfig.hot_threshold then
          transition t page e
    | Software_sampled { decay_period } ->
        t.soft_ops <- t.soft_ops + 1;
        if t.soft_ops mod decay_period = 0 then
          Hashtbl.filter_map_inplace
            (fun _ c -> if c >= 2 then Some (c / 2) else None)
            t.soft_counters;
        let c =
          1 + Option.value ~default:0 (Hashtbl.find_opt t.soft_counters page)
        in
        Hashtbl.replace t.soft_counters page c;
        if c >= t.params.hw.Hwconfig.hot_threshold then begin
          Hashtbl.remove t.soft_counters page;
          transition t page e
        end)
  end;
  Pmem.store_int t.pm a v

(* Reclaim the oldest closed epoch (Section 5.2.1), in the foreground:
   (1) persist the data of every page whose records live in that epoch —
       after this, committed values no longer depend on those records;
   (2) [clearepoch]: drop the TLB hotness state of that epoch, and stop
       treating pages as hot unless newer epochs re-logged them;
   (3) free the chain prefix with one atomic head-pointer switch. *)
let reclaim_oldest t =
  match t.closed_epochs with
  | [] -> false
  | e :: rest ->
      (* Section 5.2.2: defer if any other thread's still-active epoch
         overlaps this one (the Figure 11 data-loss scenario) *)
      if not (Epoch_coord.may_reclaim t.coord ~thread:t.thread_id ~eid:e.eid)
      then false
      else begin
        let pages = List.sort_uniq compare e.pages in
        List.iter
          (fun p -> Pmem.flush_range t.pm (p * Addr.page_size) Addr.page_size)
          pages;
        Pmem.sfence t.pm;
        ignore (Tlb.clear_epoch t.tlb ~eid:e.eid);
        List.iter (fun p -> unclaim t p ~eid:e.eid) pages;
        let keep_from =
          match rest with e2 :: _ -> e2.boundary | [] -> t.cur.boundary
        in
        ignore (Log_arena.drop_prefix t.arena ~keep_from);
        t.closed_epochs <- rest;
        Epoch_coord.drop t.coord ~thread:t.thread_id ~eid:e.eid;
        t.n_reclaims <- t.n_reclaims + 1;
        true
      end

(* [startepoch]: seal the block so the epoch boundary is also a record and
   block boundary; pick a free 3-bit epoch ID (0 is reserved for cold),
   reclaiming the oldest epoch first if all seven are taken.  When
   reclamation is deferred by the multi-thread protocol, the new epoch is
   deferred too — the current one simply keeps accumulating ("the software
   defers the check and log reclamation to further transaction starts or
   commits", Section 5.2.2). *)
let free_eid t =
  let used = t.cur.eid :: List.map (fun e -> e.eid) t.closed_epochs in
  let rec find i =
    if i > 7 then None else if List.mem i used then find (i + 1) else Some i
  in
  find 1

let start_epoch t =
  (match free_eid t with None -> ignore (reclaim_oldest t) | Some _ -> ());
  match free_eid t with
  | None -> ()
  | Some eid ->
      Log_arena.seal_block t.arena;
      let now = Tsc.peek t.tsc in
      Epoch_coord.register_end t.coord ~thread:t.thread_id ~eid:t.cur.eid
        ~end_ts:now;
      t.closed_epochs <- t.closed_epochs @ [ t.cur ];
      Epoch_coord.register_start t.coord ~thread:t.thread_id ~eid
        ~start_ts:now;
      t.cur <-
        {
          eid;
          boundary = Log_arena.current_block t.arena;
          pages = [];
          bytes = 0;
        };
      t.n_epochs <- t.n_epochs + 1

let maybe_epoch_work t =
  let hw = t.params.hw in
  if
    t.cur.bytes > hw.Hwconfig.epoch_max_bytes
    || List.length t.cur.pages > hw.Hwconfig.epoch_max_pages
  then start_epoch t;
  let progressing = ref true in
  while
    !progressing
    && Log_arena.footprint t.arena > hw.Hwconfig.log_budget_bytes
    && t.closed_epochs <> []
  do
    progressing := reclaim_oldest t
  done

let gen_cell t = Nt_log.gen_cell t.undo

(* Route a non-application durable store (allocator metadata) through the
   hybrid logging machinery: the hardware intercepts every store to a hot
   page, including the allocator's.  Without this, a page-adoption record
   that captured a header cell would stale-replay it at recovery and
   corrupt the allocator. *)
let log_cell t a = tx_write t a (Pmem.load_int t.pm a)

let commit t =
  (* (0) clear the deferred frees' headers through the logged-store path:
     the clears become durable exactly with the commit record (or are
     revoked with it), never before — a free that outlived a revoked
     unlink would let recovery revive a pointer into a reallocated
     block.  The blocks only reach the free list after the fence. *)
  List.iter
    (fun a ->
      let size = Heap.usable_size t.heap a in
      tx_write t (a - 8) (size lsl 1))
    (List.rev t.frees);
  (* (1) cold data first: flushes are persistent on acceptance, so a
     checksum-valid commit record always implies durable cold data *)
  let hot = ref [] in
  Write_set.iter_in_order t.ws (fun a _ ->
      if Hashtbl.mem t.spec_pages (Addr.page_index a) then hot := a :: !hot
      else Pmem.clwb t.pm a);
  (* (2) the commit record: hot values plus the undo-generation bump that
     serves as the transaction's commit marker *)
  let ts = Tsc.next t.tsc in
  Log_arena.begin_record t.arena;
  let hot_pages = Hashtbl.create 8 in
  List.iter
    (fun a ->
      ignore
        (Log_arena.add_entry t.arena ~target:a ~value:(Pmem.load_int t.pm a));
      Hashtbl.replace hot_pages (Addr.page_index a) ())
    (List.rev !hot);
  ignore
    (Log_arena.add_entry t.arena ~target:(gen_cell t)
       ~value:(Nt_log.generation t.undo + 1));
  if t.params.data_persist then List.iter (fun a -> Pmem.clwb t.pm a) !hot;
  Log_arena.commit_record ~fence:false t.arena ~timestamp:(commit_kind ts);
  (* (3) the transaction's single fence *)
  Pmem.sfence t.pm;
  (* (4) fence-free undo truncation *)
  Nt_log.truncate t.undo;
  (* (5) the transaction is durable: release the freed blocks *)
  List.iter (fun a -> Heap.register_free t.heap a) (List.rev t.frees);
  t.frees <- [];
  (* commit-time L1 scan: LogBits clear, PBits stay (Section 5.1) *)
  L1tags.end_tx t.l1;
  (* epoch bookkeeping *)
  let entries = Hashtbl.length hot_pages in
  t.cur.bytes <- t.cur.bytes + ((List.length !hot + 1) * 16) + 24;
  Hashtbl.iter
    (fun p () -> if claim t p then t.cur.pages <- p :: t.cur.pages)
    hot_pages;
  ignore entries;
  Write_set.clear t.ws;
  t.in_tx <- false;
  note_footprint t;
  maybe_epoch_work t

let rollback t =
  (* restore from the volatile write set, then commit the (now no-op)
     record so the log matches the restored state *)
  Write_set.iter_newest_first t.ws (fun a slot ->
      Pmem.store_int t.pm a slot.Write_set.old_value);
  t.frees <- [];
  commit t

let run_tx t f =
  if t.in_tx then invalid_arg "Spec_hw: nested transaction";
  t.in_tx <- true;
  (* outcome hooks fire from these dispatch arms, never from
     [commit]/[rollback] — [rollback] itself ends in [commit] *)
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write = (fun a v -> tx_write t a v);
      alloc =
        (fun n ->
          let a = Heap.alloc t.heap n in
          (* the header store is a durable store like any other *)
          log_cell t (a - 8);
          a);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      Ctx.Hooks.fire hooks false;
      raise e

(* Recovery (Section 5.1.1): replay the valid (committed) records in
   chronological order — this also replays each record's generation bump,
   so after replay the persistent generation cell identifies the one
   possibly-interrupted transaction; its undo entries are then still valid
   under that generation and are applied to revoke the interruption. *)
let recover t =
  let touched = Hashtbl.create 1024 in
  let pages = Hashtbl.create 64 in
  let max_ts = ref 0 in
  ignore
    (Log_arena.recover_scan t.pm ~head_slot:t.head_slot
       ~block_bytes:t.params.hw.Hwconfig.spec_block_bytes
       ~f:(fun ~ts entries ->
         if ts lsr 1 > !max_ts then max_ts := ts lsr 1;
         Array.iter
           (fun (a, v) ->
             Pmem.store_int t.pm a v;
             Hashtbl.replace touched a ();
             Hashtbl.replace pages (Addr.page_index a) ())
           entries));
  Hashtbl.iter (fun a () -> Pmem.clwb t.pm a) touched;
  Pmem.sfence t.pm;
  let undo =
    Nt_log.attach t.heap ~region_slot:t.undo_region_slot
      ~capacity_slot:t.undo_capacity_slot
  in
  let pending = Nt_log.scan undo in
  List.iter
    (fun (a, old) ->
      Pmem.store_int t.pm a old;
      Pmem.clwb t.pm a)
    (List.rev pending);
  Pmem.sfence t.pm;
  Nt_log.truncate undo;
  (* the runtime must adopt the reattached log: its cached generation now
     matches the persistent cell; keeping the stale handle would emit undo
     entries under a dead generation, invisible to the next recovery *)
  t.undo <- undo;
  (* the allocator walk must run on the RESTORED image: replay rewrites
     header cells (they are logged stores like any other), so walking
     before it would rebuild free lists from a stale mixture *)
  Heap.recover t.heap;
  Tsc.restart_above t.tsc !max_ts;
  (* rebuild volatile hotness state: every page with live records is hot
     and owned by the (single) fresh epoch *)
  t.arena <-
    Log_arena.attach t.heap ~head_slot:t.head_slot
      ~block_bytes:t.params.hw.Hwconfig.spec_block_bytes;
  Tlb.flush t.tlb;
  (* forget this thread's hotness claims; shared-pool recovery (Mt) resets
     the whole table before recovering each thread *)
  Hashtbl.iter
    (fun p claims ->
      match List.filter (fun (tid, _) -> tid <> t.thread_id) claims with
      | [] -> Hashtbl.remove t.spec_pages p
      | rest -> Hashtbl.replace t.spec_pages p rest)
    (Hashtbl.copy t.spec_pages);
  t.closed_epochs <- [];
  let head = Pmem.load_int t.pm (Heap.root_slot t.heap t.head_slot) in
  t.cur <- { eid = 1; boundary = head; pages = []; bytes = 0 };
  Epoch_coord.reset_thread t.coord ~thread:t.thread_id;
  Epoch_coord.register_start t.coord ~thread:t.thread_id ~eid:1
    ~start_ts:(Tsc.peek t.tsc);
  Hashtbl.iter
    (fun p () ->
      ignore (claim t p);
      t.cur.pages <- p :: t.cur.pages)
    pages;
  t.frees <- [] (* deferred frees of a crashed transaction are dead *);
  Write_set.clear t.ws;
  t.in_tx <- false

let create ?(thread = 0) ?tsc ?coord ?spec_pages
    ?(head_slot = Hw_slots.spec_head)
    ?(undo_region_slot = Hw_slots.spec_undo_region)
    ?(undo_capacity_slot = Hw_slots.spec_undo_capacity) heap params =
  let pm = Heap.pmem heap in
  let arena =
    Log_arena.create heap ~head_slot
      ~block_bytes:params.hw.Hwconfig.spec_block_bytes
  in
  let coord = match coord with Some c -> c | None -> Epoch_coord.create () in
  Epoch_coord.register_start coord ~thread ~eid:1 ~start_ts:0;
  let t =
    {
      heap;
      pm;
      params;
      thread_id = thread;
      coord;
      head_slot;
      undo_region_slot;
      undo_capacity_slot;
      tlb = Tlb.create params.hw pm;
      l1 =
        L1tags.create ~lines:params.hw.Hwconfig.l1_lines
          ~on_tx_evict:(fun tag ->
            (* a transaction-dirty line overflowing L1 is speculatively
               logged before the eviction (Section 5.2): its log write is
               charged here; the write set still carries the cells, so the
               commit record stays authoritative for recovery *)
            if tag.L1tags.pbit then
              Pmem.charge_ns pm
                (Pmem.config pm).Specpmt_pmem.Config.pm_seq_write_ns);
      undo =
        Nt_log.create heap ~region_slot:undo_region_slot
          ~capacity_slot:undo_capacity_slot ~capacity:1024;
      tsc = (match tsc with Some c -> c | None -> Tsc.create ());
      ws = Write_set.create ();
      frees = [];
      arena;
      spec_pages =
        (match spec_pages with Some h -> h | None -> Hashtbl.create 256);
      soft_counters = Hashtbl.create 256;
      soft_ops = 0;
      closed_epochs = [];
      cur =
        {
          eid = 1;
          boundary = Log_arena.current_block arena;
          pages = [];
          bytes = 0;
        };
      in_tx = false;
      n_transitions = 0;
      n_hot_writes = 0;
      n_cold_writes = 0;
      n_reclaims = 0;
      n_epochs = 1;
      peak_log = 0;
    }
  in
  let backend =
    {
      Ctx.name = (if params.data_persist then "SpecHPMT-DP" else "SpecHPMT");
      run_tx = (fun f -> run_tx t f);
      recover = (fun () -> recover t);
      drain = (fun () -> ());
      log_footprint = (fun () -> Log_arena.footprint t.arena);
      supports_recovery = true;
    }
  in
  (backend, t)

(* ------------------------------------------------------------------ *)

module Mt = struct
  type pool = {
    mt_heap : Heap.t;
    mt_pm : Pmem.t;
    mt_tsc : Tsc.t;
    mt_coord : Epoch_coord.t;
    mt_spec_pages : (int, (int * int) list) Hashtbl.t;
    runtimes : t array;
    mutable backends : Ctx.backend array;
  }

  let create ?(params = default_params) heap ~threads =
    if threads < 1 || threads > 4 then invalid_arg "Spec_hw.Mt: 1-4 threads";
    let tsc = Tsc.create () in
    let coord = Epoch_coord.create () in
    let spec_pages = Hashtbl.create 256 in
    let pairs =
      Array.init threads (fun i ->
          create ~thread:i ~tsc ~coord ~spec_pages
            ~head_slot:(Hw_slots.mt_head i)
            ~undo_region_slot:(Hw_slots.mt_undo_region i)
            ~undo_capacity_slot:(Hw_slots.mt_undo_capacity i)
            heap params)
    in
    {
      mt_heap = heap;
      mt_pm = Heap.pmem heap;
      mt_tsc = tsc;
      mt_coord = coord;
      mt_spec_pages = spec_pages;
      runtimes = Array.map snd pairs;
      backends = Array.map fst pairs;
    }

  let thread p i = p.backends.(i)
  let runtime p i = p.runtimes.(i)
  let threads p = Array.length p.runtimes
  let coordinator p = p.mt_coord

  (* Recovery (Sections 5.1.1 and 5.2.2): collect every core's valid
     records, replay them in global timestamp order (page-adoption and
     commit records alike), then revoke each core's interrupted
     transaction from its own undo log — each under its own generation
     cell, replayed to the right value by its own commit records. *)
  let recover p =
    let records = ref [] in
    let touched = Hashtbl.create 1024 in
    let pages_per_thread = Array.make (threads p) [] in
    let max_ts = ref 0 in
    Array.iteri
      (fun i rt ->
        ignore
          (Log_arena.recover_scan p.mt_pm ~head_slot:rt.head_slot
             ~block_bytes:rt.params.hw.Hwconfig.spec_block_bytes
             ~f:(fun ~ts entries ->
               if ts lsr 1 > !max_ts then max_ts := ts lsr 1;
               records := (ts, i, entries) :: !records)))
      p.runtimes;
    let ordered =
      List.sort (fun (a, _, _) (b, _, _) -> compare a b) !records
    in
    List.iter
      (fun (_, i, entries) ->
        Array.iter
          (fun (a, v) ->
            Pmem.store_int p.mt_pm a v;
            Hashtbl.replace touched a ();
            pages_per_thread.(i) <-
              Addr.page_index a :: pages_per_thread.(i))
          entries)
      ordered;
    Hashtbl.iter (fun a () -> Pmem.clwb p.mt_pm a) touched;
    Pmem.sfence p.mt_pm;
    (* per-core undo: at most one interrupted transaction each *)
    Array.iter
      (fun rt ->
        let undo =
          Nt_log.attach p.mt_heap ~region_slot:rt.undo_region_slot
            ~capacity_slot:rt.undo_capacity_slot
        in
        let pending = Nt_log.scan undo in
        List.iter
          (fun (a, old) ->
            Pmem.store_int p.mt_pm a old;
            Pmem.clwb p.mt_pm a)
          (List.rev pending);
        Pmem.sfence p.mt_pm;
        Nt_log.truncate undo;
        rt.undo <- undo)
      p.runtimes;
    Heap.recover p.mt_heap;
    Tsc.restart_above p.mt_tsc !max_ts;
    Epoch_coord.reset p.mt_coord;
    Hashtbl.reset p.mt_spec_pages;
    Array.iteri
      (fun i rt ->
        rt.arena <-
          Log_arena.attach p.mt_heap ~head_slot:rt.head_slot
            ~block_bytes:rt.params.hw.Hwconfig.spec_block_bytes;
        Tlb.flush rt.tlb;
        rt.closed_epochs <- [];
        let head =
          Pmem.load_int p.mt_pm (Heap.root_slot p.mt_heap rt.head_slot)
        in
        rt.cur <- { eid = 1; boundary = head; pages = []; bytes = 0 };
        Epoch_coord.register_start p.mt_coord ~thread:i ~eid:1
          ~start_ts:(Tsc.peek p.mt_tsc);
        List.iter
          (fun pg ->
            ignore (claim rt pg);
            rt.cur.pages <- pg :: rt.cur.pages)
          (List.sort_uniq compare pages_per_thread.(i));
        rt.frees <- [];
        Write_set.clear rt.ws;
        rt.in_tx <- false)
      p.runtimes
end
