(* specpmt_run — run any workload under any crash-consistency scheme.

     dune exec bin/specpmt_run.exe -- run --workload genome --scheme SpecSPMT
     dune exec bin/specpmt_run.exe -- list
     dune exec bin/specpmt_run.exe -- crash --workload intruder --scheme SpecSPMT
     dune exec bin/specpmt_run.exe -- explore --scheme SpecSPMT --budget 2000

   `run` measures one workload x scheme pair and prints the measurement;
   `crash` injects a crash mid-run, recovers, and audits the final state
   against an uninterrupted run; `explore` walks the crash-state space of
   a small transactional workload deterministically (see Specpmt.Crashmc);
   `list` enumerates schemes and workloads. *)

open Cmdliner
open Specpmt

let scheme_arg =
  let doc = "Crash-consistency scheme (see `list`)." in
  Arg.(value & opt string "SpecSPMT" & info [ "s"; "scheme" ] ~doc)

let workload_arg =
  let doc = "STAMP workload name (see `list`)." in
  Arg.(value & opt string "genome" & info [ "w"; "workload" ] ~doc)

let scale_arg =
  let doc = "Input scale: quick, small or full." in
  Arg.(value & opt string "small" & info [ "scale" ] ~doc)

let seed_arg =
  let doc = "Deterministic seed for the device." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let parse_scale = function
  | "quick" -> Workload.Quick
  | "small" -> Workload.Small
  | "full" -> Workload.Full
  | s -> Fmt.invalid_arg "unknown scale %S (quick|small|full)" s

let get_workload name =
  match Workload.find name with
  | Some w -> w
  | None -> Fmt.invalid_arg "unknown workload %S" name

let list_cmd =
  let run () =
    Fmt.pr "schemes:@.";
    List.iter (fun s -> Fmt.pr "  %s@." s) scheme_names;
    Fmt.pr "workloads:@.";
    List.iter
      (fun w -> Fmt.pr "  %-14s %s@." w.Workload.name w.Workload.description)
      Workload.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List schemes and workloads")
    Term.(const run $ const ())

let print_measurement (m : Run.measurement) =
  Fmt.pr "workload     %s@." m.Run.workload;
  Fmt.pr "scheme       %s@." m.Run.scheme;
  Fmt.pr "txs          %d (%d updates, %.1f B/tx write set)@." m.Run.txs
    m.Run.updates m.Run.avg_tx_bytes;
  Fmt.pr "time         %.3f ms simulated (+%.3f ms background core)@."
    (m.Run.ns /. 1e6) (m.Run.bg_ns /. 1e6);
  Fmt.pr "persistence  %d fences, %d flushes@." m.Run.fences m.Run.clwbs;
  Fmt.pr "traffic      %d PM lines written, %d read@." m.Run.pm_write_lines
    m.Run.pm_read_lines;
  Fmt.pr "log          %d KiB resident@." (m.Run.log_bytes / 1024);
  Fmt.pr "checksum     %x@." m.Run.checksum

let json_arg =
  let doc = "Also write the measurement(s) as a JSON report to $(docv)." in
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc)

let reclaim_arg =
  let doc =
    "Reclamation policy for the SpecSPMT schemes: $(b,adaptive) (the \
     pressure-model scheduler) or $(b,threshold:BYTES) (fixed footprint \
     trigger)."
  in
  Arg.(value & opt (some string) None & info [ "reclaim" ] ~docv:"POLICY" ~doc)

let recovery_arg =
  let doc =
    "Recovery mode for the SpecSPMT schemes: $(b,coalesce) (last-writer-wins \
     index, one write per live cell) or $(b,replay) (the paper's \
     replay-every-record loop)."
  in
  Arg.(value & opt (some string) None & info [ "recovery" ] ~docv:"MODE" ~doc)

(* Apply --reclaim/--recovery to a SpecSPMT params record; [None] when
   neither flag was given (the registry path stays in charge). *)
let spec_params_override ~reclaim ~recovery base =
  let fail fmt = Fmt.kpf (fun _ -> exit 2) Fmt.stderr fmt in
  match (reclaim, recovery) with
  | None, None -> None
  | _ ->
      let p =
        match reclaim with
        | None -> base
        | Some "adaptive" ->
            { base with Spec_soft.reclaim = Spec_soft.adaptive_policy }
        | Some s when String.length s > 10 && String.sub s 0 10 = "threshold:"
          -> (
            match
              int_of_string_opt (String.sub s 10 (String.length s - 10))
            with
            | Some b when b > 0 ->
                { base with Spec_soft.reclaim = Spec_soft.Threshold b }
            | _ -> fail "specpmt_run: bad --reclaim threshold in %S@." s)
        | Some s ->
            fail "specpmt_run: unknown --reclaim %S (adaptive|threshold:BYTES)@."
              s
      in
      let p =
        match recovery with
        | None -> p
        | Some "coalesce" -> { p with Spec_soft.recovery = Spec_soft.Coalesce }
        | Some "replay" -> { p with Spec_soft.recovery = Spec_soft.Replay }
        | Some s ->
            fail "specpmt_run: unknown --recovery %S (coalesce|replay)@." s
      in
      Some p

let run_cmd =
  let run scheme wname scale seed reclaim recovery json =
    let w = get_workload wname in
    let sc = parse_scale scale in
    let wants_override = reclaim <> None || recovery <> None in
    let m =
      match spec_params_of_name scheme with
      | None when wants_override ->
          Fmt.epr
            "specpmt_run: --reclaim/--recovery only apply to the SpecSPMT \
             schemes@.";
          exit 2
      | Some base when wants_override ->
          let params =
            Option.get (spec_params_override ~reclaim ~recovery base)
          in
          Run.run_custom ~seed
            ~make:(fun heap -> create_scheme ~spec_params:params heap scheme)
            ~name:scheme w sc
      | _ -> Run.run ~seed ~scheme w sc
    in
    print_measurement m;
    Option.iter
      (fun path ->
        Run.write_report ~scale ~path [ m ];
        Fmt.pr "wrote JSON report to %s@." path)
      json
  in
  Cmd.v (Cmd.info "run" ~doc:"Measure one workload under one scheme")
    Term.(
      const run $ scheme_arg $ workload_arg $ scale_arg $ seed_arg
      $ reclaim_arg $ recovery_arg $ json_arg)

let compare_cmd =
  let run wname scale seed json =
    let w = get_workload wname in
    let sc = parse_scale scale in
    Fmt.pr "%-14s %12s %10s %10s %12s %10s@." "scheme" "sim ms" "fences"
      "flushes" "PM wlines" "log KiB";
    let ms =
      List.map
        (fun scheme ->
          let m = Run.run ~seed ~scheme w sc in
          Fmt.pr "%-14s %12.3f %10d %10d %12d %10d@." scheme (m.Run.ns /. 1e6)
            m.Run.fences m.Run.clwbs m.Run.pm_write_lines
            (m.Run.log_bytes / 1024);
          m)
        scheme_names
    in
    Option.iter
      (fun path ->
        Run.write_report ~scale ~path ms;
        Fmt.pr "wrote JSON report to %s@." path)
      json
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run a workload under every scheme")
    Term.(const run $ workload_arg $ scale_arg $ seed_arg $ json_arg)

let crash_cmd =
  let run scheme wname scale seed =
    let w = get_workload wname in
    let scale = parse_scale scale in
    (* uninterrupted reference *)
    let reference = (Run.run ~seed ~scheme w scale).Run.checksum in
    (* crash-injected run: crash roughly mid-way, recover, resume from the
       beginning is impossible (the work closure is consumed), so audit
       atomic durability instead: recovery must succeed and the device be
       consistent enough to run transactions again *)
    let pm =
      Pmem.create ~seed { Pmem_config.default with mem_size = 64 * 1024 * 1024 }
    in
    let heap = Heap.create pm in
    let backend = create_scheme heap scheme in
    if not backend.Ctx.supports_recovery then (
      Fmt.pr "%s cannot recover; nothing to audit@." scheme;
      exit 1);
    let prepared = w.Workload.prepare scale heap backend in
    Pmem.set_fuse pm (Some 200_000);
    let crashed =
      try
        prepared.Workload.work ();
        false
      with Pmem.Crash -> true
    in
    if crashed then begin
      Pmem.crash pm;
      backend.Ctx.recover ();
      Fmt.pr "crashed mid-run and recovered; post-recovery state is usable:@."
    end
    else Fmt.pr "run completed before the fuse (%d events)@." 200_000;
    (* prove the runtime still works by committing fresh transactions *)
    let probe = Heap.alloc heap 8 in
    backend.Ctx.run_tx (fun ctx -> ctx.Ctx.write probe 4242);
    Pmem.crash pm;
    backend.Ctx.recover ();
    assert (Pmem.peek_volatile_int pm probe = 4242);
    Fmt.pr "post-crash commit survived a second crash;@.";
    Fmt.pr "uninterrupted-run checksum for reference: %x@." reference
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"Crash a workload mid-run and audit recovery")
    Term.(const run $ scheme_arg $ workload_arg $ scale_arg $ seed_arg)

let fuzz_cmd =
  let rounds_arg =
    Arg.(value & opt int 50 & info [ "rounds" ] ~doc:"Crash rounds.")
  in
  let run scheme seed rounds =
    (* keep the last few structured events (commits, attaches, recoveries)
       so a failed audit comes with its prelude *)
    Obs.Trace.set_capacity 256;
    let pm =
      Pmem.create ~seed
        { Pmem_config.default with crash_word_persist_prob = 0.7 }
    in
    let heap = Heap.create pm in
    let backend = create_scheme heap scheme in
    if not backend.Ctx.supports_recovery then (
      Fmt.pr "%s cannot recover; nothing to fuzz@." scheme;
      exit 1);
    let module H = Specpmt_pstruct.Phashtbl in
    let store = backend.Ctx.run_tx (fun ctx -> H.create ctx 128) in
    let reference = Hashtbl.create 256 in
    let rand = Random.State.make [| seed; 0xF0 |] in
    let commits = ref 0 and crashes = ref 0 in
    for round = 1 to rounds do
      Pmem.set_fuse pm (Some (100 + Random.State.int rand 4000));
      (try
         while true do
           let k = 1 + Random.State.int rand 300 in
           let v = Random.State.int rand 1_000_000 in
           let del = Random.State.int rand 8 = 0 in
           backend.Ctx.run_tx (fun ctx ->
               if del then ignore (H.remove ctx store k)
               else ignore (H.replace ctx store k v));
           if del then Hashtbl.remove reference k
           else Hashtbl.replace reference k v;
           incr commits
         done
       with Pmem.Crash ->
         incr crashes;
         Pmem.crash pm;
         backend.Ctx.recover ());
      let ctx = Ctx.raw_ctx heap in
      let mismatches = ref 0 in
      Hashtbl.iter
        (fun k v ->
          match H.find ctx store k with
          | Some v' when v' = v -> ()
          | _ -> incr mismatches)
        reference;
      if !mismatches > 1 then (
        Fmt.pr "round %d: %d mismatches — NOT crash consistent!@." round
          !mismatches;
        Fmt.pr "last traced events before the failure:@.";
        Obs.Trace.dump Fmt.stdout ();
        exit 1);
      if !mismatches = 1 then begin
        (* reconcile the single possibly-in-flight transaction *)
        Hashtbl.reset reference;
        H.iter ctx store (fun k v -> Hashtbl.replace reference k v)
      end
    done;
    Fmt.pr "%s: %d crashes over %d committed transactions, all audits clean@."
      scheme !crashes !commits
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Randomized crash-recovery torture over a durable hash table")
    Term.(const run $ scheme_arg $ seed_arg $ rounds_arg)

let jobs_arg =
  let doc =
    "Worker domains for the exploration/sweep (1 = serial).  Defaults to \
     the machine's recommended domain count minus one, capped at 8.  The \
     output is byte-identical for every value."
  in
  Arg.(value & opt int (Par.default_jobs ()) & info [ "j"; "jobs" ] ~doc)

let explore_cmd =
  let budget_arg =
    Arg.(
      value & opt int 2000
      & info [ "budget" ] ~doc:"Maximum crash cases to execute.")
  in
  let cells_arg =
    Arg.(value & opt int 8 & info [ "cells" ] ~doc:"Workload cells.")
  in
  let txs_arg =
    Arg.(value & opt int 6 & info [ "txs" ] ~doc:"Random transactions.")
  in
  let max_writes_arg =
    Arg.(
      value & opt int 4
      & info [ "max-writes" ] ~doc:"Maximum writes per transaction.")
  in
  let policies_arg =
    Arg.(
      value
      & opt string "all,none,lines"
      & info [ "policies" ]
          ~doc:"Persist-choice families per crash point (all,none,lines,words).")
  in
  let fuse_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuse" ] ~docv:"N"
          ~doc:"Replay one case: crash at the $(docv)-th memory event.")
  in
  let choice_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "choice" ] ~docv:"CHOICE"
          ~doc:
            "Replay one case: persist choice (all, none, keepline:K, \
             dropline:K, keepword:K, dropword:K).")
  in
  let run scheme seed budget cells txs max_writes policies fuse choice jobs
      json =
    let fail fmt = Fmt.kpf (fun _ -> exit 2) Fmt.stderr fmt in
    if jobs < 1 then fail "specpmt_run: --jobs must be at least 1@.";
    let policies =
      match Crashmc.policies_of_string policies with
      | Ok p -> p
      | Error e -> fail "specpmt_run: %s@." e
    in
    match (fuse, choice) with
    | Some fuse, Some choice -> (
        let choice =
          match Crashmc.choice_of_string choice with
          | Ok c -> c
          | Error e -> fail "specpmt_run: %s@." e
        in
        match
          Crashmc.replay ~cells ~txs ~max_writes ~scheme ~seed ~fuse ~choice ()
        with
        | Crashmc.Run_completed ->
            Fmt.pr "fuse %d outlived the workload; nothing to audit@." fuse
        | Crashmc.Audit_ok committed ->
            Fmt.pr
              "replayed fuse %d, choice %s: crashed after %d committed \
               transactions, recovered, audit clean@."
              fuse
              (Crashmc.choice_to_string choice)
              committed
        | Crashmc.Audit_failed f ->
            Fmt.pr "audit FAILED:@.%a@." Crashmc.pp_failure f;
            List.iter (fun l -> Fmt.pr "  trace: %s@." l) f.Crashmc.trace;
            exit 1)
    | None, None ->
        let t0 = Unix.gettimeofday () in
        let r =
          Crashmc.explore ~jobs ~cells ~txs ~max_writes ~budget ~policies
            ~scheme ~seed ()
        in
        let wall_s = Unix.gettimeofday () -. t0 in
        Fmt.pr
          "%s: %d crash points (of %d events, stride %d) x persist choices = \
           %d cases, %d clean@."
          r.Crashmc.scheme r.Crashmc.points r.Crashmc.total_events
          r.Crashmc.stride r.Crashmc.cases r.Crashmc.passes;
        Fmt.pr "%.2fs wall (%d jobs), %.0f cases/sec@." wall_s jobs
          (if wall_s > 0.0 then float_of_int r.Crashmc.cases /. wall_s else 0.0);
        List.iter
          (fun f ->
            Fmt.pr "FAILURE %a@." Crashmc.pp_failure f;
            List.iter (fun l -> Fmt.pr "  trace: %s@." l) f.Crashmc.trace)
          r.Crashmc.failures;
        Option.iter
          (fun path ->
            Json.to_file path (Crashmc.report_to_json ~wall_s r);
            Fmt.pr "wrote JSON report to %s@." path)
          json;
        if r.Crashmc.failures <> [] then exit 1
    | _ -> fail "specpmt_run: replay needs both --fuse and --choice@."
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Deterministically explore the crash-state space of a scheme \
          (crashmc)")
    Term.(
      const run $ scheme_arg $ seed_arg $ budget_arg $ cells_arg $ txs_arg
      $ max_writes_arg $ policies_arg $ fuse_arg $ choice_arg $ jobs_arg
      $ json_arg)

let svc_bench_cmd =
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Service shards.")
  in
  let batch_arg =
    Arg.(
      value & opt string "8"
      & info [ "batch" ] ~docv:"N[,N..]"
          ~doc:
            "Transactions per group-commit batch.  A comma-separated list \
             sweeps every value (the sweep runs on $(b,--jobs) domains; \
             reports print in list order).")
  in
  let depth_arg =
    Arg.(
      value & opt int 64
      & info [ "depth" ] ~doc:"Per-shard admission (inflight) bound.")
  in
  let mix_arg =
    Arg.(
      value & opt float 0.5
      & info [ "mix" ] ~doc:"Read fraction of the operation mix (0..1).")
  in
  let skew_arg =
    Arg.(
      value & opt float 0.99
      & info [ "skew" ] ~doc:"Zipf theta of the key distribution (0 = uniform).")
  in
  let clients_arg =
    Arg.(value & opt int 32 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let ops_arg =
    Arg.(value & opt int 20_000 & info [ "ops" ] ~doc:"Operations to complete.")
  in
  let keys_arg =
    Arg.(value & opt int 4096 & info [ "keys" ] ~doc:"KV table size.")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ]
          ~doc:
            "Run the shard-per-domain data plane on this many worker \
             domains (1..shards) instead of the serial in-process \
             service.  Reports measured wall-clock ops/sec and latency \
             percentiles alongside the modelled device time; the \
             $(b,invariant) JSON section is byte-identical for any \
             domain count.  0 (default) keeps the serial closed-loop \
             path.")
  in
  let run scheme shards batches depth mix skew clients ops keys seed reclaim
      recovery jobs domains json =
    let fail fmt = Fmt.kpf (fun _ -> exit 2) Fmt.stderr fmt in
    if jobs < 1 then fail "specpmt_run: --jobs must be at least 1@.";
    let batches =
      String.split_on_char ',' batches
      |> List.map (fun s ->
             match int_of_string_opt (String.trim s) with
             | Some b when b > 0 -> b
             | _ -> fail "specpmt_run: bad --batch %S (positive int list)@." s)
    in
    let base =
      match spec_params_of_name scheme with
      | Some p -> p
      | None ->
          Fmt.epr "specpmt_run: svc-bench needs a SpecSPMT scheme, not %S@."
            scheme;
          exit 2
    in
    let params =
      Option.value ~default:base (spec_params_override ~reclaim ~recovery base)
    in
    if domains > 0 then begin
      (* shard-per-domain data plane: one worker domain per shard group,
         measured wall clock alongside the modelled device time *)
      let batch =
        match batches with
        | [ b ] -> b
        | _ -> fail "specpmt_run: --domains takes a single --batch value@."
      in
      if domains > shards then
        fail "specpmt_run: --domains must be at most --shards@.";
      Obs.Phase.reset ();
      Obs.Metrics.reset_all ();
      let pm =
        Pmem.create ~seed
          { Pmem_config.default with mem_size = 64 * 1024 * 1024 }
      in
      let heap = Heap.create pm in
      let cfg =
        {
          Svc.Dataplane.shards;
          domains;
          batch_max = batch;
          depth;
          keys;
          log_region_bytes = Svc.Dataplane.default_log_region_bytes;
        }
      in
      let dp = Svc.Dataplane.create ~params heap cfg in
      let stream =
        Svc.Loadgen.op_stream
          { Svc.Loadgen.clients; ops; read_frac = mix; skew; seed }
          ~keys
      in
      let report = Svc.Dataplane.run dp stream in
      Fmt.pr "%a" Svc.Dataplane.pp (cfg, report);
      Option.iter
        (fun path ->
          Json.to_file path
            (Json.Obj
               [
                 ("schema_version", Json.Int Run.schema_version);
                 ("generator", Json.Str "specpmt-svc-dataplane");
                 ("scheme", Json.Str scheme);
                 ("report", Svc.Dataplane.report_to_json cfg report);
               ]);
          Fmt.pr "wrote JSON report to %s@." path)
        json
    end
    else begin
    (* One independent service instance per batch size; the sweep points
       share nothing, so they parallelize trivially and the reports are
       the same for any --jobs. *)
    let run_one batch =
      Obs.Phase.reset ();
      Obs.Metrics.reset_all ();
      let pm =
        Pmem.create ~seed
          { Pmem_config.default with mem_size = 64 * 1024 * 1024 }
      in
      let heap = Heap.create pm in
      let svc =
        Svc.Service.create ~params heap
          { Svc.Service.shards; batch_max = batch; depth; keys }
      in
      let w0 = Unix.gettimeofday () in
      let r =
        Svc.Loadgen.run svc
          { Svc.Loadgen.clients; ops; read_frac = mix; skew; seed }
      in
      (r, Unix.gettimeofday () -. w0)
    in
    let reports = Par.map_list ~jobs run_one batches in
    let sweep = List.length batches > 1 in
    List.iter2
      (fun batch (report, wall_s) ->
        if sweep then Fmt.pr "--- batch %d ---@." batch;
        Fmt.pr "%a" Svc.Loadgen.pp report;
        Fmt.pr "  measured: %.3f s wall, %.0f ops/s@." wall_s
          (if wall_s > 0.0 then
             float_of_int report.Svc.Loadgen.total_ops /. wall_s
           else 0.0))
      batches reports;
    Option.iter
      (fun path ->
        (* wall keys are additive and timing-dependent: strip them (like
           span_ns) before diffing reports across runs or job counts *)
        let point (report, wall_s) =
          ( ("report", Svc.Loadgen.report_to_json report),
            ("wall_s", Json.Float wall_s) )
        in
        let body =
          match (batches, reports) with
          | [ _ ], [ r ] ->
              (* single point: the pre-sweep report shape, unchanged *)
              let rep, wall = point r in
              [ rep; wall ]
          | _ ->
              [
                ( "reports",
                  Json.List
                    (List.map2
                       (fun batch r ->
                         let rep, wall = point r in
                         Json.Obj
                           [ ("batch", Json.Int batch); rep; wall ])
                       batches reports) );
              ]
        in
        Json.to_file path
          (Json.Obj
             ([
                ("schema_version", Json.Int Run.schema_version);
                ("generator", Json.Str "specpmt-svc");
                ("scheme", Json.Str scheme);
              ]
             @ body));
        Fmt.pr "wrote JSON report to %s@." path)
      json
    end
  in
  Cmd.v
    (Cmd.info "svc-bench"
       ~doc:
         "Drive the sharded KV service (group commit + admission control) \
          with the closed-loop load generator")
    Term.(
      const run $ scheme_arg $ shards_arg $ batch_arg $ depth_arg $ mix_arg
      $ skew_arg $ clients_arg $ ops_arg $ keys_arg $ seed_arg $ reclaim_arg
      $ recovery_arg $ jobs_arg $ domains_arg $ json_arg)

let ycsb_cmd =
  let mix_arg =
    Arg.(
      value & opt string "A"
      & info [ "workload" ] ~docv:"MIX"
          ~doc:
            "YCSB mix: $(b,A) (50/50 read/update), $(b,B) (95/5), $(b,C) \
             (read-only), $(b,D) (read-latest), $(b,E) (short scans), \
             $(b,F) (read-modify-write).")
  in
  let rate_arg =
    Arg.(
      value & opt string "0"
      & info [ "rate" ] ~docv:"R[,R..]"
          ~doc:
            "Offered arrival rate(s), ops per second of simulated time; \
             $(b,0) is the saturation probe (every op due at t = 0, \
             goodput = measured capacity).  A comma-separated list sweeps \
             every rate on $(b,--jobs) domains; reports print in list \
             order and are byte-identical for any jobs count.")
  in
  let arrivals_arg =
    Arg.(
      value & opt string "poisson"
      & info [ "arrivals" ] ~docv:"PROC"
          ~doc:
            "Arrival process: $(b,poisson) or $(b,burst[:ON_MS:OFF_MS]) \
             (on/off arrivals, Poisson inside ON windows).")
  in
  let ops_arg =
    Arg.(value & opt int 6_000 & info [ "ops" ] ~doc:"Operations to offer.")
  in
  let keys_arg =
    Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"KV table size.")
  in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Service shards.")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~doc:"Transactions per group-commit batch.")
  in
  let depth_arg =
    Arg.(
      value & opt int 32
      & info [ "depth" ] ~doc:"Per-shard admission (inflight) bound.")
  in
  let theta_arg =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~doc:"Zipf theta of the key distribution.")
  in
  let scan_max_arg =
    Arg.(
      value & opt int 16
      & info [ "scan-max" ] ~doc:"Maximum scan length (mix E).")
  in
  let domains_arg =
    Arg.(
      value & opt int 2
      & info [ "domains" ]
          ~doc:
            "Worker domains of the data plane for the recovery drill \
             (only with $(b,--fuse-batches)).")
  in
  let fuse_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuse-batches" ] ~docv:"K"
          ~doc:
            "Recovery-under-load drill: halt the data plane after its \
             $(docv)-th batch, crash, recover, audit every cell \
             (acked-durable/unacked-invisible) and resume under the \
             arrival backlog.  Exits nonzero on a dirty audit.  Only \
             read/write mixes (A-D) can be audited.")
  in
  let run mix rates arrivals ops keys shards batch depth theta scan_max seed
      domains fuse jobs json =
    let fail fmt = Fmt.kpf (fun _ -> exit 2) Fmt.stderr fmt in
    if jobs < 1 then fail "specpmt_run: --jobs must be at least 1@.";
    let mix =
      match Svc.Scenario.mix_of_string mix with
      | Ok m -> m
      | Error e -> fail "specpmt_run: %s@." e
    in
    let arrivals =
      match Svc.Openloop.arrivals_of_string arrivals with
      | Ok a -> a
      | Error e -> fail "specpmt_run: %s@." e
    in
    let rates =
      String.split_on_char ',' rates
      |> List.map (fun s ->
             match float_of_string_opt (String.trim s) with
             | Some r -> r
             | None -> fail "specpmt_run: bad --rate %S (float list)@." s)
    in
    let sp = Svc.Scenario.spec ~theta ~scan_max mix in
    let stream = Svc.Scenario.op_stream sp ~ops ~keys ~seed in
    match fuse with
    | Some fuse_batches ->
        (* recovery drill: the fuse is the one-line reproducible crash *)
        let t = Svc.Scenario.tally stream in
        if t.Svc.Scenario.t_rmws > 0 || t.Svc.Scenario.t_scans > 0 then
          fail
            "specpmt_run: --fuse-batches audits read/write mixes only \
             (A-D), not %s@."
            (Svc.Scenario.mix_to_string mix);
        if domains < 1 then fail "specpmt_run: --domains must be at least 1@.";
        if domains > shards then
          fail "specpmt_run: --domains must be at most --shards@.";
        let pm =
          Pmem.create ~seed
            { Pmem_config.default with mem_size = 64 * 1024 * 1024 }
        in
        let heap = Heap.create pm in
        let cfg =
          {
            Svc.Dataplane.shards;
            domains;
            batch_max = batch;
            depth;
            keys;
            log_region_bytes = Svc.Dataplane.default_log_region_bytes;
          }
        in
        let r =
          Svc.Openloop.recovery_under_load heap cfg stream ~fuse_batches
        in
        Fmt.pr "%a" Svc.Openloop.pp_recovery r;
        Option.iter
          (fun path ->
            Json.to_file path
              (Json.Obj
                 [
                   ("schema_version", Json.Int Run.schema_version);
                   ("generator", Json.Str "specpmt-ycsb-recovery");
                   ("workload", Json.Str (Svc.Scenario.mix_to_string mix));
                   ("report", Svc.Openloop.recovery_to_json r);
                 ]);
            Fmt.pr "wrote JSON report to %s@." path)
          json;
        if r.Svc.Openloop.rv_audit_failures > 0 then exit 1
    | None ->
        (* One independent service per rate: the sweep points share
           nothing, so they fan out over the domain pool and the reports
           are byte-identical for any --jobs. *)
        let run_one rate =
          Obs.Phase.reset ();
          Obs.Metrics.reset_all ();
          let pm =
            Pmem.create ~seed
              { Pmem_config.default with mem_size = 64 * 1024 * 1024 }
          in
          let heap = Heap.create pm in
          let svc =
            Svc.Service.create heap
              { Svc.Service.shards; batch_max = batch; depth; keys }
          in
          Svc.Openloop.run svc { Svc.Openloop.rate; arrivals; seed } stream
        in
        let reports = Par.map_list ~jobs run_one rates in
        let sweep = List.length rates > 1 in
        List.iter2
          (fun rate r ->
            if sweep then Fmt.pr "--- rate %g ---@." rate;
            Fmt.pr "workload %s (%s)@."
              (Svc.Scenario.mix_to_string mix)
              (Svc.Scenario.dist_to_string sp.Svc.Scenario.dist);
            Fmt.pr "%a" Svc.Openloop.pp r)
          rates reports;
        Option.iter
          (fun path ->
            let body =
              match (rates, reports) with
              | [ _ ], [ r ] -> [ ("report", Svc.Openloop.report_to_json r) ]
              | _ ->
                  [
                    ( "reports",
                      Json.List
                        (List.map Svc.Openloop.report_to_json reports) );
                  ]
            in
            Json.to_file path
              (Json.Obj
                 ([
                    ("schema_version", Json.Int Run.schema_version);
                    ("generator", Json.Str "specpmt-ycsb");
                    ("workload", Json.Str (Svc.Scenario.mix_to_string mix));
                    ("spec", Svc.Scenario.spec_to_json sp);
                  ]
                 @ body));
            Fmt.pr "wrote JSON report to %s@." path)
          json
  in
  Cmd.v
    (Cmd.info "ycsb"
       ~doc:
         "Drive a YCSB mix through the sharded KV service open-loop \
          (scheduled arrivals, coordinated-omission-safe latency), or \
          crash it mid-traffic with --fuse-batches")
    Term.(
      const run $ mix_arg $ rate_arg $ arrivals_arg $ ops_arg $ keys_arg
      $ shards_arg $ batch_arg $ depth_arg $ theta_arg $ scan_max_arg
      $ seed_arg $ domains_arg $ fuse_arg $ jobs_arg $ json_arg)

let () =
  let info = Cmd.info "specpmt_run" ~doc:"SpecPMT workload runner" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            compare_cmd;
            crash_cmd;
            fuzz_cmd;
            explore_cmd;
            svc_bench_cmd;
            ycsb_cmd;
          ]))
