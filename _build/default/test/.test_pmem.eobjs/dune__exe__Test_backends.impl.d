test/test_backends.ml: Alcotest Array Config Ctx Heap List Pmem Printf QCheck QCheck_alcotest Random Registry Spec_mt Spec_soft Specpmt_backends Specpmt_pmalloc Specpmt_pmem Specpmt_txn Stats Testlib
