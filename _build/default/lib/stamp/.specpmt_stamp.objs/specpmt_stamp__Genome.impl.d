lib/stamp/genome.ml: Array Ctx Parray Phashtbl Rng Specpmt_pstruct Specpmt_txn Wtypes
