(** Hash-table speculative log — the memory-saving alternative the paper
    rejects (Section 4): one dual-versioned log slot per datum, located by
    hashing its address.  Minimal memory, but the log write and flush
    pattern becomes random instead of sequential — the ablation behind the
    paper's reported 3.2x slowdown. *)

open Specpmt_pmalloc
open Specpmt_txn

val create : ?buckets:int -> Heap.t -> Ctx.backend
(** [buckets] defaults to a sixteenth of the pool. *)
