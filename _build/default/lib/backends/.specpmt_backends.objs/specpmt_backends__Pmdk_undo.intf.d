lib/backends/pmdk_undo.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
