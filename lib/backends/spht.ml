(** SPHT-style redo-logging transactions (Section 7.1.2).

    SPHT works on a volatile snapshot of the data (here: the in-place but
    still volatile cache copies), buffers write intents, and at commit
    persists one redo record sequentially plus a commit/link marker — a
    flush run and two fences on the critical path, no per-update fences,
    no data flushes.  A background replayer applies committed records to
    the persistent data and prunes the log (forward-linking version with
    one replayer thread, as evaluated in the paper).

    Recovery replays committed redo records oldest-first — shares the
    chained log arena and its checksum commit marker. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  tsc : Tsc.t;
  ws : Write_set.t;
  tx_buffer : (Addr.t, int) Hashtbl.t;
      (* SPHT works on a volatile snapshot: uncommitted writes must not
         reach the persistent home locations — a crash could leak them
         past the pruned log with nothing to revoke them *)
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable arena : Log_arena.t;
  mutable in_tx : bool;
  mutable pending : (Addr.t * int) list list; (* committed, not yet replayed *)
  mutable pending_entries : int;
  replay_batch : int;
  buffer_probes : Specpmt_obs.Metrics.counter;
      (* [tx.buffer_probes]: read-own-writes lookups that actually probed
         the snapshot buffer.  Cached at create time (the backend is
         domain-local, like the registry cell) so the hot path pays no
         name lookup; the empty-buffer fast path below keeps read-only
         transactions at zero probes *)
}

(* Background replayer: persists the data updates of committed records and
   compacts the log.  Unmetered; estimated cost goes to the background
   ledger (a dedicated replayer core in the paper). *)
let replay t =
  let n = t.pending_entries in
  if n > 0 then begin
    Pmem.with_unmetered t.pm (fun () ->
        List.iter
          (fun entries ->
            List.iter
              (fun (a, _v) -> Pmem.clwb t.pm a)
              entries)
          t.pending;
        Pmem.sfence t.pm;
        ignore (Log_arena.compact t.arena));
    (* per-entry flush plus its share of the log-prune scan *)
    Pmem.charge_bg_ns t.pm (float_of_int n *. 520.0);
    t.pending <- [];
    t.pending_entries <- 0
  end

(* Read-own-writes with an empty-write-set fast path: a read-only
   transaction (every scan) has nothing buffered, so it must not pay a
   hashtable probe per cell.  The non-empty path uses the exception
   form of [find] — no option boxing per read. *)
let tx_read t a =
  if Hashtbl.length t.tx_buffer = 0 then Pmem.load_int t.pm a
  else begin
    Specpmt_obs.Metrics.incr t.buffer_probes;
    match Hashtbl.find t.tx_buffer a with
    | v -> v
    | exception Not_found -> Pmem.load_int t.pm a
  end

let tx_write t a v =
  let old_value = tx_read t a in
  ignore (Write_set.record t.ws a ~old_value);
  Hashtbl.replace t.tx_buffer a v

let commit t =
  (* apply the snapshot to the home locations (volatile stores; the
     background replayer persists them) *)
  Hashtbl.iter (fun a v -> Pmem.store_int t.pm a v) t.tx_buffer;
  Hashtbl.reset t.tx_buffer;
  if Write_set.size t.ws > 0 then begin
    let ts = Tsc.next t.tsc in
    Log_arena.begin_record t.arena;
    let entries = ref [] in
    Write_set.iter_in_order t.ws (fun a _ ->
        let v = Pmem.load_int t.pm a in
        ignore (Log_arena.add_entry t.arena ~target:a ~value:v);
        entries := (a, v) :: !entries);
    Log_arena.commit_record t.arena ~timestamp:ts;
    (* forward-link / commit marker with its own barrier (fence #2) *)
    let marker = Heap.root_slot t.heap Slots.spht_marker in
    Pmem.store_int t.pm marker ts;
    Pmem.clwb t.pm marker;
    Pmem.sfence t.pm;
    t.pending <- !entries :: t.pending;
    t.pending_entries <- t.pending_entries + List.length !entries
  end;
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false;
  if t.pending_entries >= t.replay_batch then replay t

let rollback t =
  Hashtbl.reset t.tx_buffer;
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let run_tx t f =
  if t.in_tx then invalid_arg "Spht: nested transaction";
  t.in_tx <- true;
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> tx_read t a);
      write = (fun a v -> tx_write t a v);
      alloc = (fun n -> Heap.alloc t.heap n);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      Ctx.Hooks.fire hooks false;
      raise e

let recover t =
  Heap.recover t.heap;
  let touched = Hashtbl.create 256 in
  let max_ts =
    Log_arena.recover_scan t.pm ~head_slot:Slots.spht_head ~block_bytes:4096
      ~f:(fun ~ts:_ entries ->
        Array.iter
          (fun (a, v) ->
            Pmem.store_int t.pm a v;
            Hashtbl.replace touched a ())
          entries)
  in
  Hashtbl.iter (fun a () -> Pmem.clwb t.pm a) touched;
  Pmem.sfence t.pm;
  Tsc.restart_above t.tsc max_ts;
  t.arena <- Log_arena.attach t.heap ~head_slot:Slots.spht_head ~block_bytes:4096;
  t.pending <- [];
  t.pending_entries <- 0;
  t.frees <- [] (* deferred frees of a crashed transaction are dead *);
  Write_set.clear t.ws;
  t.in_tx <- false

let create heap =
  let t =
    {
      heap;
      pm = Heap.pmem heap;
      tsc = Tsc.create ();
      ws = Write_set.create ();
      tx_buffer = Hashtbl.create 64;
      frees = [];
      arena = Log_arena.create heap ~head_slot:Slots.spht_head ~block_bytes:4096;
      in_tx = false;
      pending = [];
      pending_entries = 0;
      replay_batch = 4096;
      buffer_probes = Specpmt_obs.Metrics.counter "tx.buffer_probes";
    }
  in
  {
    Ctx.name = "SPHT";
    run_tx = (fun f -> run_tx t f);
    recover = (fun () -> recover t);
    drain = (fun () -> replay t);
    log_footprint = (fun () -> Log_arena.footprint t.arena);
    supports_recovery = true;
  }
