(** Persistent ordered map (treap with deterministic priorities).

    The ordered-map role of STAMP's red-black trees (vacation's tables)
    with much simpler rebalancing — and therefore smaller transactional
    write sets.  Priorities are a hash of the key, so runs are
    deterministic.  For the service layer's range scans, prefer
    {!Pbtree}: its fat nodes amortise the per-entry pointer chasing a
    binary treap pays on ordered walks. *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> t
(** Allocate an empty treap: one root cell in the transaction's heap
    holding the (initially null) root pointer. *)

val of_root_cell : Addr.t -> t
(** Reattach to an existing treap from its root cell (as returned by
    {!root_cell}) — the rediscovery path after a crash. *)

val root_cell : t -> Addr.t
(** The treap's root cell, the one address that must be stored
    somewhere reachable (e.g. a
    {!Specpmt_pmalloc.Heap.root_slot}) to survive a crash. *)

val find : Ctx.ctx -> t -> int -> int option
(** The value bound to a key, or [None]. *)

val mem : Ctx.ctx -> t -> int -> bool
(** Whether the key is bound. *)

val update : Ctx.ctx -> t -> int -> int -> bool
(** Overwrite the value of an existing key; [false] if absent (no
    insertion, no rebalancing — a 1-cell write set). *)

val insert : Ctx.ctx -> t -> int -> int -> unit
(** Insert or overwrite, rebalancing by rotation. *)

val remove : Ctx.ctx -> t -> int -> bool
(** Delete a key by rotating its node to a leaf; [false] if it was not
    bound (nothing written). *)

val find_ceiling : Ctx.ctx -> t -> int -> (int * int) option
(** Smallest key [>= k] with its value. *)

val iter : Ctx.ctx -> t -> (int -> int -> unit) -> unit
(** In increasing key order. *)

val fold : Ctx.ctx -> t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
(** Fold over all bindings in increasing key order. *)

val length : Ctx.ctx -> t -> int
(** Number of bindings (walks the whole treap). *)
