open Specpmt_pmem
module Hist = Specpmt_obs.Hist
module Metrics = Specpmt_obs.Metrics
module Json = Specpmt_obs.Json

(* Open-loop load: ops arrive on a precomputed schedule whether or not
   the service has kept up, which is what exposes queueing collapse —
   a closed-loop generator slows its own offered load down the moment
   the service saturates and so reports a flattering latency.

   Determinism: the arrival schedule is a seeded pure function, and the
   "clock" the driver runs on is the DEVICE's simulated ns plus an
   idle-jump offset.  Serving ops advances device time; waiting for the
   next arrival advances only the offset.  Nothing reads the host
   clock, so a run's report is a pure function of (stream, config,
   service config) — byte-identical across --jobs and host load.

   Coordinated omission: latency is measured from each op's SCHEDULED
   arrival to its ack.  An op that sits in the backlog because
   admission shed it (or because its shard was busy) keeps accruing
   latency the whole time — the histogram charges overload to the ops
   that suffered it, instead of silently re-timing them from their
   eventually-successful submit. *)

type arrivals = Poisson | Burst of { on_ns : float; off_ns : float }

type config = {
  rate : float;
  arrivals : arrivals;
  seed : int;
}

let arrivals_to_string = function
  | Poisson -> "poisson"
  | Burst { on_ns; off_ns } ->
      Printf.sprintf "burst:%g:%g" (on_ns /. 1e6) (off_ns /. 1e6)

let arrivals_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "poisson" -> Ok Poisson
  | "burst" -> Ok (Burst { on_ns = 200_000.0; off_ns = 200_000.0 })
  | _ when String.length s > 6 && String.sub s 0 6 = "burst:" -> (
      match String.split_on_char ':' s with
      | [ _; on_ms; off_ms ] -> (
          match (float_of_string_opt on_ms, float_of_string_opt off_ms) with
          | Some on, Some off when on > 0.0 && off >= 0.0 ->
              Ok (Burst { on_ns = on *. 1e6; off_ns = off *. 1e6 })
          | _ -> Error "burst windows must be positive (ms)")
      | _ -> Error "want burst:ON_MS:OFF_MS")
  | _ ->
      Error
        (Printf.sprintf "unknown arrival process %S (want poisson|burst[:ON_MS:OFF_MS])" s)

let schedule cfg ~n =
  if n < 0 then invalid_arg "Openloop.schedule: n < 0";
  (* rate <= 0: the saturation probe — everything is due at t = 0 *)
  let out = Array.make (max n 1) 0.0 in
  if cfg.rate > 0.0 then begin
    let st = Random.State.make [| 0x09E7; cfg.seed |] in
    let mean_gap, shift =
      match cfg.arrivals with
      | Poisson -> (1e9 /. cfg.rate, fun t -> t)
      | Burst { on_ns; off_ns } ->
          let cycle = on_ns +. off_ns in
          (* arrivals land only inside ON windows, intensified so the
             long-run mean offered rate stays [rate] *)
          ( 1e9 /. cfg.rate *. (on_ns /. cycle),
            fun t ->
              let pos = Float.rem t cycle in
              if pos < on_ns then t else t -. pos +. cycle )
    in
    let t = ref 0.0 in
    for i = 0 to n - 1 do
      let u = Random.State.float st 1.0 in
      (* exponential inter-arrival; 1 - u is in (0, 1], so the log is
         finite and the gap non-negative *)
      t := shift (!t +. (-.mean_gap *. log (1.0 -. u)));
      out.(i) <- !t
    done
  end;
  Array.sub out 0 n

type shard_summary = {
  os_shard : int;
  os_ops : int;
  os_rejected : int;
  os_batches : int;
  os_sealed : int;
  os_max_inflight : int;
}

type report = {
  o_config : config;
  svc_config : Service.config;
  ops : int;
  reads : int;
  writes : int;
  rmws : int;
  scans : int;
  attempts : int;
  rejects : int;
  max_backlog : int;
  last_arrival_ns : float;
  span_ns : float;
  offered_ops_per_sec : float;
  goodput_ops_per_sec : float;
  fences : int;
  fences_per_op : float;
  latency : Hist.snapshot;
  o_shards : shard_summary list;
}

let run svc cfg stream =
  let n = Array.length stream in
  if n = 0 then invalid_arg "Openloop.run: empty stream";
  let scfg = Service.config svc in
  let pm = Service.pm svc in
  let sched = schedule cfg ~n in
  let dev () = (Pmem.stats pm).Stats.ns in
  (* virtual clock = device ns + idle-jump offset: jumping to the next
     arrival when nothing is runnable costs no device time, and the
     offset is constant inside a drain, so ack timestamps translate
     into virtual time with the offset current at observe time *)
  let voff = ref (0.0 -. dev ()) in
  let vnow () = dev () +. !voff in
  let backlog = Array.init scfg.Service.shards (fun _ -> Queue.create ()) in
  let backlog_len = ref 0 and max_backlog = ref 0 in
  let next = ref 0 in
  let completed = ref 0 in
  let reads = ref 0 and writes = ref 0 and rmws = ref 0 and scans = ref 0 in
  let attempts = ref 0 and rejects = ref 0 in
  let lat = Hist.create () in
  let before = Stats.copy (Pmem.stats pm) in
  let on_ack (c : Service.completion) =
    incr completed;
    (match c.Service.c_op with
    | Service.Read -> incr reads
    | Service.Write _ -> incr writes
    | Service.Rmw _ -> incr rmws
    | Service.Scan _ -> incr scans);
    (* [c_client] carries the stream index; latency runs from the op's
       scheduled arrival, not from when admission finally took it *)
    let l = c.Service.ack_ns +. !voff -. sched.(c.Service.c_client) in
    let l = int_of_float l in
    Hist.observe lat l;
    Hist.observe (Metrics.histogram "svc.openloop.latency_ns") l
  in
  (* Each round: (a) if nothing is backlogged and the next arrival is in
     the future, jump to it; (b) pull every due arrival into its shard's
     backlog queue; (c) submit backlog heads per shard until a shed;
     (d) drain.  A drain empties every admission queue, so after it the
     inflight count is zero and step (c) always makes progress while
     any backlog remains — the loop terminates. *)
  while !completed < n do
    if !backlog_len = 0 && !next < n && sched.(!next) > vnow () then begin
      voff := sched.(!next) -. dev ();
      (* rounding of (sched - dev) + dev can land a few ulps short of
         sched, which would spin the jump forever; nudge up to it *)
      while vnow () < sched.(!next) do
        voff := Float.succ !voff
      done
    end;
    while !next < n && sched.(!next) <= vnow () do
      let key, _ = stream.(!next) in
      Queue.add !next backlog.(Service.shard_of_key svc key);
      incr backlog_len;
      Metrics.incr (Metrics.counter "svc.openloop.arrivals");
      incr next
    done;
    if !backlog_len > !max_backlog then max_backlog := !backlog_len;
    Array.iter
      (fun q ->
        let blocked = ref false in
        while (not !blocked) && not (Queue.is_empty q) do
          let idx = Queue.peek q in
          let key, op = stream.(idx) in
          incr attempts;
          match Service.submit svc ~client:idx ~key op with
          | Admission.Accepted ->
              ignore (Queue.pop q);
              decr backlog_len
          | Admission.Rejected _ ->
              (* the op stays at the head of its shard's backlog and
                 keeps accruing scheduled-time latency *)
              incr rejects;
              Metrics.incr (Metrics.counter "svc.openloop.rejects");
              blocked := true
        done)
      backlog;
    ignore (Service.drain ~on_ack svc)
  done;
  let d = Stats.diff before (Pmem.stats pm) in
  let span_ns = vnow () in
  let last_arrival_ns = sched.(n - 1) in
  let per_sec ops ns = if ns > 0.0 then float_of_int ops /. (ns /. 1e9) else 0.0 in
  let goodput = per_sec !completed span_ns in
  let offered =
    (* rate <= 0 is the saturation probe: everything was offered at
       t = 0, so the offered load equals whatever the service absorbed *)
    if last_arrival_ns > 0.0 then per_sec n last_arrival_ns else goodput
  in
  Metrics.set_gauge
    (Metrics.gauge "svc.openloop.max_backlog")
    (float_of_int !max_backlog);
  Metrics.set_gauge (Metrics.gauge "svc.openloop.goodput_per_sec") goodput;
  let o_shards =
    List.init scfg.Service.shards (fun i ->
        let s = Service.shard_stats svc i in
        {
          os_shard = s.Service.s_id;
          os_ops = s.Service.s_ops;
          os_rejected = s.Service.s_rejected;
          os_batches = s.Service.s_batches;
          os_sealed = s.Service.s_sealed;
          os_max_inflight = s.Service.s_max_inflight;
        })
  in
  {
    o_config = cfg;
    svc_config = scfg;
    ops = n;
    reads = !reads;
    writes = !writes;
    rmws = !rmws;
    scans = !scans;
    attempts = !attempts;
    rejects = !rejects;
    max_backlog = !max_backlog;
    last_arrival_ns;
    span_ns;
    offered_ops_per_sec = offered;
    goodput_ops_per_sec = goodput;
    fences = d.Stats.fences;
    fences_per_op = float_of_int d.Stats.fences /. float_of_int n;
    latency = Hist.snapshot lat;
    o_shards;
  }

let shard_to_json s =
  Json.Obj
    [
      ("shard", Json.Int s.os_shard);
      ("ops", Json.Int s.os_ops);
      ("rejected", Json.Int s.os_rejected);
      ("batches", Json.Int s.os_batches);
      ("sealed_records", Json.Int s.os_sealed);
      ("max_inflight", Json.Int s.os_max_inflight);
    ]

let report_to_json r =
  Json.Obj
    [
      ("rate", Json.Float r.o_config.rate);
      ("arrivals", Json.Str (arrivals_to_string r.o_config.arrivals));
      ("seed", Json.Int r.o_config.seed);
      ("shards", Json.Int r.svc_config.Service.shards);
      ("batch_max", Json.Int r.svc_config.Service.batch_max);
      ("depth", Json.Int r.svc_config.Service.depth);
      ("keys", Json.Int r.svc_config.Service.keys);
      ("ops", Json.Int r.ops);
      ("reads", Json.Int r.reads);
      ("writes", Json.Int r.writes);
      ("rmws", Json.Int r.rmws);
      ("scans", Json.Int r.scans);
      ("attempts", Json.Int r.attempts);
      ("rejects", Json.Int r.rejects);
      ("max_backlog", Json.Int r.max_backlog);
      ("last_arrival_ns", Json.Float r.last_arrival_ns);
      ("span_ns", Json.Float r.span_ns);
      ("offered_ops_per_sec", Json.Float r.offered_ops_per_sec);
      ("goodput_ops_per_sec", Json.Float r.goodput_ops_per_sec);
      ("fences", Json.Int r.fences);
      ("fences_per_op", Json.Float r.fences_per_op);
      ("latency_ns", Hist.to_json r.latency);
      ("per_shard", Json.List (List.map shard_to_json r.o_shards));
    ]

let pp ppf r =
  let q p = Hist.quantile r.latency p in
  Fmt.pf ppf
    "openloop: %s arrivals, rate %.0f/s offered %.0f/s -> goodput %.0f/s@\n"
    (arrivals_to_string r.o_config.arrivals)
    r.o_config.rate r.offered_ops_per_sec r.goodput_ops_per_sec;
  Fmt.pf ppf
    "  %d ops (%d reads / %d writes / %d rmws / %d scans) on %d shards@\n"
    r.ops r.reads r.writes r.rmws r.scans r.svc_config.Service.shards;
  Fmt.pf ppf
    "  %d submit attempts, %d rejects, max backlog %d, %.3f fences/op@\n"
    r.attempts r.rejects r.max_backlog r.fences_per_op;
  Fmt.pf ppf
    "  sched->ack latency ns p50=%d p90=%d p99=%d (span %.0f ns)@\n"
    (q 0.5) (q 0.9) (q 0.99) r.span_ns

(* ---- recovery under load ---- *)

type recovery_report = {
  rv_fuse : int;
  rv_halted : bool;
  rv_recover_ns : float;
  rv_audit_failures : int;
  rv_acked_before : int;
  rv_backlog : int;
  rv_resumed : int;
  rv_recover_wall_s : float;
  rv_first_ack_wall_s : float;
  rv_rto_wall_s : float;
  rv_total_wall_s : float;
}

let recovery_under_load ?params heap cfg stream ~fuse_batches =
  if fuse_batches < 1 then
    invalid_arg "Openloop.recovery_under_load: fuse_batches < 1";
  Array.iter
    (fun (_, op) ->
      match op with
      | Service.Rmw _ | Service.Scan _ ->
          invalid_arg
            "Openloop.recovery_under_load: read/write streams only (the \
             crash audit attributes cell states to unique write values)"
      | Service.Read | Service.Write _ -> ())
    stream;
  let wall0 = Unix.gettimeofday () in
  let plane = Dataplane.create ?params heap cfg in
  let n = Array.length stream in
  let keys = cfg.Dataplane.keys in
  let initial = Array.init keys (Dataplane.peek plane) in
  let acked = Array.make (max 1 n) false in
  let last_acked = Array.make keys (-1) in
  let last_acked_idx = Array.make keys (-1) in
  let on_ack ~idx ~value:_ =
    acked.(idx) <- true;
    match stream.(idx) with
    | k, Service.Write v ->
        last_acked.(k) <- v;
        last_acked_idx.(k) <- idx
    | _, _ -> ()
  in
  let r1 = Dataplane.run ~halt_after_batches:fuse_batches ~on_ack plane stream in
  Dataplane.crash plane;
  let pm = Specpmt_pmalloc.Heap.pmem heap in
  let before = Stats.copy (Pmem.stats pm) in
  let rec_wall0 = Unix.gettimeofday () in
  Dataplane.recover plane;
  let recover_wall_s = Unix.gettimeofday () -. rec_wall0 in
  let recover_ns = (Stats.diff before (Pmem.stats pm)).Stats.ns in
  (* acked-durable / unacked-invisible: every cell must hold its last
     acked value, its initial value (never acked), or the value of a
     LATER write — one that reached media inside a sealed batch whose
     ack the router never drained before the fuse blew *)
  let writes_by_key = Array.make keys [] in
  Array.iteri
    (fun idx (k, op) ->
      match op with
      | Service.Write v -> writes_by_key.(k) <- (idx, v) :: writes_by_key.(k)
      | _ -> ())
    stream;
  let failures = ref 0 in
  for k = 0 to keys - 1 do
    let got = Dataplane.peek plane k in
    let ok =
      (last_acked_idx.(k) >= 0 && got = last_acked.(k))
      || (last_acked_idx.(k) < 0 && got = initial.(k))
      || List.exists
           (fun (idx, v) -> idx > last_acked_idx.(k) && v = got)
           writes_by_key.(k)
    in
    if not ok then incr failures
  done;
  (* resume under the arrival backlog: everything not acked before the
     crash arrives again, in stream order *)
  let backlog = ref [] in
  for idx = n - 1 downto 0 do
    if not acked.(idx) then backlog := stream.(idx) :: !backlog
  done;
  let backlog = Array.of_list !backlog in
  let resume_wall0 = Unix.gettimeofday () in
  let first_ack = ref 0.0 in
  let resumed =
    if Array.length backlog = 0 then 0
    else
      let r2 =
        Dataplane.run
          ~on_ack:(fun ~idx:_ ~value:_ ->
            if !first_ack = 0.0 then
              first_ack := Unix.gettimeofday () -. resume_wall0)
          plane backlog
      in
      r2.Dataplane.total_ops
  in
  {
    rv_fuse = fuse_batches;
    rv_halted = r1.Dataplane.halted;
    rv_recover_ns = recover_ns;
    rv_audit_failures = !failures;
    rv_acked_before = r1.Dataplane.total_ops;
    rv_backlog = Array.length backlog;
    rv_resumed = resumed;
    rv_recover_wall_s = recover_wall_s;
    rv_first_ack_wall_s = !first_ack;
    rv_rto_wall_s = recover_wall_s +. !first_ack;
    rv_total_wall_s = Unix.gettimeofday () -. wall0;
  }

let recovery_to_json r =
  Json.Obj
    [
      ( "invariant",
        Json.Obj
          [
            ("fuse_batches", Json.Int r.rv_fuse);
            ("halted", Json.Bool r.rv_halted);
            ("recover_ns", Json.Float r.rv_recover_ns);
            ("audit_failures", Json.Int r.rv_audit_failures);
          ] );
      ( "measured",
        Json.Obj
          [
            ("acked_before_crash", Json.Int r.rv_acked_before);
            ("backlog_ops", Json.Int r.rv_backlog);
            ("resumed_ops", Json.Int r.rv_resumed);
            ("recover_wall_s", Json.Float r.rv_recover_wall_s);
            ("first_ack_wall_s", Json.Float r.rv_first_ack_wall_s);
            ("rto_wall_s", Json.Float r.rv_rto_wall_s);
            ("total_wall_s", Json.Float r.rv_total_wall_s);
          ] );
    ]

let pp_recovery ppf r =
  Fmt.pf ppf
    "recovery-under-load: fuse %d batches (halted=%b), %d acked before \
     crash, %d backlog@\n"
    r.rv_fuse r.rv_halted r.rv_acked_before r.rv_backlog;
  Fmt.pf ppf
    "  audit: %s (%d failures); recover %.0f sim ns / %.4f s wall@\n"
    (if r.rv_audit_failures = 0 then "clean" else "DIRTY")
    r.rv_audit_failures r.rv_recover_ns r.rv_recover_wall_s;
  Fmt.pf ppf
    "  RTO (restart -> first ack): %.4f s wall (first ack %.4f s after \
     resume), %d ops resumed@\n"
    r.rv_rto_wall_s r.rv_first_ack_wall_s r.rv_resumed
