lib/pmem/pmem.ml: Addr Array Bytes Config Float Fmt Fun Hashtbl Int64 List Queue Random Stats
