lib/pmem/addr.mli:
