lib/pstruct/pvector.ml: Addr Ctx Fmt List Specpmt_pmem Specpmt_txn
