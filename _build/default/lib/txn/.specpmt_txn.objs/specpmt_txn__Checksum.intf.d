lib/txn/checksum.mli:
