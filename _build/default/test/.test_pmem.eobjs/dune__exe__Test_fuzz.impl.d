test/test_fuzz.ml: Alcotest Ctx Hashtbl Heap List Pmem Pmem_config Random Spec_hw Specpmt Specpmt_pstruct
