lib/hwsim/hwconfig.ml:
