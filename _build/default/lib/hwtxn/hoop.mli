(** HOOP — hardware-assisted out-of-place updates (ISCA'20), as modelled
    in the paper's evaluation: write intents are buffered on chip
    (reads are redirected to them), drained to a sequential log at commit
    with no fence, and applied to the home locations by a background
    garbage collector whose bursts contend with the foreground for the
    write-pending queue.  Logs a record per update {e and} per cache miss
    (the address-mapping metadata that inflates its traffic on
    large-footprint applications). *)

open Specpmt_pmalloc
open Specpmt_txn

val create :
  ?gc_batch_entries:int ->
  ?gc_contention:float ->
  ?stream_ns_per_update:float ->
  Heap.t ->
  Ctx.backend
(** [gc_batch_entries] log entries trigger a GC cycle; [gc_contention] is
    the fraction of the GC burst's write-queue occupancy that stalls the
    foreground; [stream_ns_per_update] is the on-chip buffer streaming
    cost per logged update. *)
