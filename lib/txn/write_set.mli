(** Per-transaction write-set index.

    For each 8-byte cell written by the open transaction it keeps the
    value it held before the first write (the undo image) and a
    backend-specific position of the cell's log entry, so repeated updates
    freshen a single entry — the paper's write-set indexing that keeps only
    the last update of a datum per transaction (Section 4). *)

open Specpmt_pmem

type slot = {
  mutable old_value : int;
      (** value before the transaction's first write (mutable only so the
          container can recycle slot records across transactions) *)
  mutable entry_pos : int;
      (** backend-specific position of the cell's log entry; [-1] if the
          backend has not materialised one *)
  mutable last_value : int;
      (** most recent value written to the cell this transaction — lets
          commit feed a volatile live-entry index without re-reading the
          device *)
  mutable entry_block : int;
      (** log block holding the cell's entry ([-1] if none) — feeds the
          per-block liveness accounting behind adaptive reclamation *)
}

type t

val create : unit -> t
val clear : t -> unit
val size : t -> int

val record : t -> Addr.t -> old_value:int -> slot * bool
(** Note a write; [true] when this is the cell's first write in the
    transaction ([old_value] is only stored then). *)

val find : t -> Addr.t -> slot option

val iter_in_order : t -> (Addr.t -> slot -> unit) -> unit
(** Cells in first-write order, oldest first.  A straight walk over the
    flat cell arrays — no hashing, no allocation; this is the commit
    path. *)

val iter_newest_first : t -> (Addr.t -> slot -> unit) -> unit
(** Reverse order — the order an undo rollback applies compensation in. *)
