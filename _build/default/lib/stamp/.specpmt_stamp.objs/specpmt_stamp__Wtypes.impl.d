lib/stamp/wtypes.ml: Ctx Heap Specpmt_pmalloc Specpmt_pmem Specpmt_txn
