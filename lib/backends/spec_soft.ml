open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type reclaim_policy =
  | Threshold of int
  | Adaptive of {
      min_log_bytes : int;
      stale_trigger : float;
      bg_duty : float;
    }

type recovery_mode = Coalesce | Replay

type params = {
  data_persist : bool;
  block_bytes : int;
  reclaim : reclaim_policy;
  recovery : recovery_mode;
}

let default_params =
  {
    data_persist = false;
    block_bytes = 4096;
    reclaim = Threshold (1 lsl 20);
    recovery = Coalesce;
  }

let dp_params = { default_params with data_persist = true }

let adaptive_policy =
  Adaptive
    { min_log_bytes = 64 * 1024; stale_trigger = 0.5; bg_duty = 0.05 }

(* One live (freshest) logged entry per datum, mirrored in DRAM: the value,
   the commit timestamp of the record holding it, and the log block the
   entry lives in.  The index is what turns reclamation from O(log) into
   O(live): the compactor rewrites straight from it, never scanning the
   chain, and per-block live counts tell the scheduler where the stale
   bytes are. *)
type vcell = { mutable v : int; mutable ts : int; mutable block : Addr.t }

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  params : params;
  head_slot : int;
  tsc : Tsc.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable allocs : Addr.t list;
      (* allocations made by the open transaction: released again on
         rollback, otherwise an aborted transaction leaks them forever
         (frees are deferred; allocs must be compensated) *)
  mutable arena : Log_arena.t;
  mutable in_tx : bool;
  mutable in_batch : bool;
      (* group commit open: transactions commit tentative (poisoned
         checksum, no fence) records until [batch_end] seals the whole
         batch under a single fence *)
  mutable reclaims : int;
  mutable last_compact_footprint : int;
      (* growth-based trigger: reclaiming again before the log has grown
         past twice the last compacted size would make reclamation cost
         quadratic when the live set itself exceeds the threshold *)
  vindex : (Addr.t, vcell) Hashtbl.t;
  block_live : (Addr.t, int) Hashtbl.t;
  mutable bg_spent : float;
      (* background-core ns this runtime has consumed, against the
         adaptive policy's duty-cycle budget *)
}

let params t = t.params
let pmem t = t.pm
let live_cells t = Hashtbl.length t.vindex
let stale_entries t = Log_arena.total_entries t.arena - live_cells t

(* commit-path counter bump: exception form instead of [find_opt] so no
   option is boxed per write-set cell *)
let live_in_block t b =
  match Hashtbl.find t.block_live b with n -> n | exception Not_found -> 0

let bump_live t b d =
  if b >= 0 then Hashtbl.replace t.block_live b (live_in_block t b + d)

(* Merge the committed (or rolled-back-and-committed) write set into the
   volatile index at the record's timestamp.  [last_value]/[entry_block]
   were captured on the write path, so this is pure DRAM bookkeeping — no
   device traffic. *)
let index_commit t ts =
  Write_set.iter_in_order t.ws (fun a slot ->
      (match Hashtbl.find t.vindex a with
      | c ->
          bump_live t c.block (-1);
          c.v <- slot.Write_set.last_value;
          c.ts <- ts;
          c.block <- slot.Write_set.entry_block
      | exception Not_found ->
          Hashtbl.replace t.vindex a
            {
              v = slot.Write_set.last_value;
              ts;
              block = slot.Write_set.entry_block;
            });
      bump_live t slot.Write_set.entry_block 1)

(* Rebuild the volatile index from the log itself (attach/recover paths).
   When the caller already holds a coalesced recovery index it is reused;
   otherwise an unmetered scan derives it — the rebuild belongs to the
   background core, exactly like the reclamation scans it replaces. *)
let rebuild_vindex ?from t =
  Hashtbl.reset t.vindex;
  Hashtbl.reset t.block_live;
  let idx =
    match from with
    | Some idx -> idx
    | None ->
        let idx = Hashtbl.create 256 in
        Pmem.with_unmetered t.pm (fun () ->
            ignore
              (Log_arena.recover_collect t.pm ~head_slot:t.head_slot
                 ~block_bytes:t.params.block_bytes ~index:idx));
        idx
  in
  Hashtbl.iter
    (fun a (v, ts, block) ->
      Hashtbl.replace t.vindex a { v; ts; block };
      bump_live t block 1)
    idx

(* ---------- Reclamation ---------- *)

(* Background reclamation (Section 4.2): runs on a dedicated core in the
   paper, so its memory operations are unmetered here and an estimated
   cost is charged to the background ledger instead. *)

let charge_bg t ns =
  t.bg_spent <- t.bg_spent +. ns;
  Pmem.charge_bg_ns t.pm ns;
  Specpmt_obs.Metrics.add
    (Specpmt_obs.Metrics.counter "reclaim.bg_ns")
    (int_of_float ns)

(* Legacy scan-based compaction: O(log) scan + O(live) copy.  Kept as the
   reference path (Threshold policy, {!reclaim_now}) and as the
   differential oracle for the indexed compactor. *)
let reclaim t =
  let open Specpmt_obs in
  Phase.run Phase.Reclaim @@ fun () ->
  let stats =
    Pmem.with_unmetered t.pm (fun () -> Log_arena.compact t.arena)
  in
  t.reclaims <- t.reclaims + 1;
  let scan_ns = float_of_int stats.Log_arena.entries_scanned *. 6.0 in
  let copy_ns = float_of_int stats.Log_arena.entries_live *. 30.0 in
  charge_bg t (scan_ns +. copy_ns);
  (* compaction moved every surviving entry; the volatile index must
     follow it (cheapest as a rebuild — the survivor set IS the index) *)
  rebuild_vindex t;
  Metrics.incr (Metrics.counter "reclaim.cycles");
  Metrics.add (Metrics.counter "reclaim.blocks_freed")
    stats.Log_arena.blocks_freed;
  Metrics.add (Metrics.counter "reclaim.entries_scanned")
    stats.Log_arena.entries_scanned;
  Metrics.add (Metrics.counter "reclaim.entries_live")
    stats.Log_arena.entries_live;
  Hist.observe
    (Metrics.histogram "reclaim.entries_scanned_per_cycle")
    stats.Log_arena.entries_scanned;
  Trace.emit "spec.reclaim" ~a:stats.Log_arena.blocks_freed
    ~b:stats.Log_arena.entries_live;
  stats

let reclaim_now t = reclaim t
let reclaim_count t = t.reclaims

(* Victim selection for the indexed compactor: walk the chain oldest
   first — staleness concentrates there, so the oldest blocks are visited
   first — and remember the newest clean-start boundary whose prefix is
   still stale enough to be worth evacuating.  Everything before the
   boundary is rewritten from the index; the hot tail (including the
   append block) is never touched. *)
let choose_boundary t ~stale_trigger =
  let arena = t.arena in
  let entries = ref 0 and live = ref 0 and blocks = ref 0 in
  let best = ref None in
  List.iter
    (fun b ->
      if
        !blocks > 0 && !entries > 0
        && Log_arena.is_clean_start arena b
        && float_of_int (!entries - !live) /. float_of_int !entries
           >= stale_trigger
      then best := Some (b, !blocks, !live);
      entries := !entries + Log_arena.entries_in_block arena b;
      live := !live + live_in_block t b;
      incr blocks)
    (Log_arena.chain arena);
  !best

(* Indexed reclamation: build the timestamp-ascending live groups straight
   from the volatile index and hand them to {!Log_arena.compact_indexed}.
   [prefix] restricts the rewrite to cells living in the evacuated chain
   prefix. *)
let reclaim_indexed t ~boundary =
  let open Specpmt_obs in
  Phase.run Phase.Reclaim @@ fun () ->
  let keep_from, blocks_visited =
    match boundary with
    | Some (b, nblocks, _) -> (Some b, nblocks)
    | None -> (None, Log_arena.block_count t.arena)
  in
  let in_prefix =
    match keep_from with
    | None -> fun _ -> true
    | Some b ->
        let prefix = Hashtbl.create 16 in
        let rec mark = function
          | blk :: _ when blk = b -> ()
          | blk :: rest ->
              Hashtbl.replace prefix blk ();
              mark rest
          | [] -> ()
        in
        mark (Log_arena.chain t.arena);
        fun blk -> Hashtbl.mem prefix blk
  in
  let by_ts : (int, (Addr.t * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun a c ->
      if in_prefix c.block then
        match Hashtbl.find_opt by_ts c.ts with
        | Some l -> l := (a, c.v) :: !l
        | None -> Hashtbl.add by_ts c.ts (ref [ (a, c.v) ]))
    t.vindex;
  let live =
    Hashtbl.fold (fun ts l acc -> (ts, !l) :: acc) by_ts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let stats =
    Pmem.with_unmetered t.pm (fun () ->
        Log_arena.compact_indexed ?keep_from t.arena ~live
          ~on_place:(fun a ~block ->
            match Hashtbl.find_opt t.vindex a with
            | Some c -> c.block <- block
            | None -> ()))
  in
  t.reclaims <- t.reclaims + 1;
  (* no scan term: the index replaced it — that is the O(live) win *)
  charge_bg t (float_of_int stats.Log_arena.entries_live *. 30.0);
  (* per-block live counts follow the moved survivors *)
  Hashtbl.reset t.block_live;
  Hashtbl.iter (fun _ c -> bump_live t c.block 1) t.vindex;
  Metrics.incr (Metrics.counter "reclaim.cycles");
  Metrics.incr (Metrics.counter "reclaim.indexed_cycles");
  Metrics.add (Metrics.counter "reclaim.blocks_visited") blocks_visited;
  Metrics.add (Metrics.counter "reclaim.blocks_freed")
    stats.Log_arena.blocks_freed;
  Metrics.add (Metrics.counter "reclaim.entries_live")
    stats.Log_arena.entries_live;
  Trace.emit "spec.reclaim_indexed" ~a:stats.Log_arena.blocks_freed
    ~b:stats.Log_arena.entries_live;
  stats

(* The pressure model (evaluated after every commit, O(1) except for the
   boundary walk, which is O(blocks)): compact when the log is big enough
   to matter, stale enough to pay off, and the background core has budget
   for the copy.  All three inputs come from the volatile index. *)
let maybe_reclaim t =
  let open Specpmt_obs in
  let foot = Log_arena.footprint t.arena in
  match t.params.reclaim with
  | Threshold threshold ->
      if foot > threshold && foot > 2 * t.last_compact_footprint then begin
        ignore (reclaim t);
        t.last_compact_footprint <- Log_arena.footprint t.arena
      end
  | Adaptive { min_log_bytes; stale_trigger; bg_duty } ->
      let total = Log_arena.total_entries t.arena in
      let stale = total - live_cells t in
      let stale_frac =
        if total = 0 then 0.0
        else float_of_int stale /. float_of_int total
      in
      Metrics.set_gauge (Metrics.gauge "reclaim.stale_frac") stale_frac;
      Metrics.set_gauge
        (Metrics.gauge "reclaim.live_cells")
        (float_of_int (live_cells t));
      if foot >= min_log_bytes && stale_frac >= stale_trigger then begin
        let boundary = choose_boundary t ~stale_trigger in
        let to_copy =
          match boundary with
          | Some (_, _, prefix_live) -> prefix_live
          | None -> live_cells t
        in
        let est_ns = float_of_int to_copy *. 30.0 in
        let allowed = bg_duty *. (Pmem.stats t.pm).Stats.ns in
        if t.bg_spent +. est_ns > allowed then
          (* the background core is over its duty cycle: defer, the
             pressure check will fire again on a later commit *)
          Metrics.incr (Metrics.counter "reclaim.deferred_bg_budget")
        else begin
          ignore (reclaim_indexed t ~boundary);
          t.last_compact_footprint <- Log_arena.footprint t.arena
        end
      end

(* ---------- Transactions ---------- *)

let tx_write t a v =
  let slot, first = Write_set.record t.ws a ~old_value:(Pmem.load_int t.pm a) in
  if first then begin
    slot.Write_set.entry_pos <-
      Log_arena.add_entry t.arena ~target:a ~value:v;
    slot.Write_set.entry_block <- Log_arena.current_block t.arena
  end
  else Log_arena.set_entry_value t.arena slot.Write_set.entry_pos v;
  slot.Write_set.last_value <- v;
  Pmem.store_int t.pm a v

let commit t =
  (* a read-only transaction has nothing to persist and must not emit a
     zero-entry record (it would read as the end-of-log sentinel) *)
  if Log_arena.entry_words t.arena = 0 then Log_arena.abandon_record t.arena
  else begin
    let ts = Tsc.next t.tsc in
    Log_arena.commit_record t.arena ~tentative:t.in_batch ~timestamp:ts;
    index_commit t ts
  end;
  if t.params.data_persist then begin
    (* SpecSPMT-DP: also force the in-place updates into the persistence
       domain before returning (what vanilla SpecPMT deliberately skips) *)
    Write_set.iter_in_order t.ws (fun a _ -> Pmem.clwb t.pm a);
    Pmem.sfence t.pm
  end;
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  t.allocs <- [];
  Write_set.clear t.ws;
  t.in_tx <- false;
  (* reclamation would rewrite the chain out from under the unsealed
     records; during a batch it is deferred to [batch_end] *)
  if not t.in_batch then maybe_reclaim t

(* Abort: restore the in-place (still volatile) updates from the write
   set, freshen the log entries to the restored values, and commit the
   record — the log then describes exactly the post-rollback state, which
   keeps the "every datum has a fresh committed record" invariant. *)
let rollback t =
  Write_set.iter_newest_first t.ws (fun a slot ->
      Pmem.store_int t.pm a slot.Write_set.old_value;
      slot.Write_set.last_value <- slot.Write_set.old_value;
      Log_arena.set_entry_value t.arena slot.Write_set.entry_pos
        slot.Write_set.old_value);
  if Log_arena.entry_words t.arena = 0 then Log_arena.abandon_record t.arena
  else begin
    let ts = Tsc.next t.tsc in
    Log_arena.commit_record t.arena ~tentative:t.in_batch ~timestamp:ts;
    index_commit t ts
  end;
  (* compensate the aborted transaction's allocations: its deferred frees
     are simply dropped, but blocks it allocated would otherwise leak *)
  List.iter (fun a -> Heap.free t.heap a) t.allocs;
  t.allocs <- [];
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let run_tx t f =
  if t.in_tx then invalid_arg "Spec_soft: nested transaction";
  t.in_tx <- true;
  Log_arena.begin_record t.arena;
  (* outcome hooks live for exactly this transaction; fired from the
     dispatch arms below, never from [commit]/[rollback] themselves *)
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write = (fun a v -> tx_write t a v);
      alloc =
        (fun n ->
          let a = Heap.alloc t.heap n in
          t.allocs <- a :: t.allocs;
          a);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      (* a device crash (or any other error) escapes without commit or
         rollback; the hooks still learn the transaction did not commit,
         so volatile caches drop their staged deltas *)
      Ctx.Hooks.fire hooks false;
      raise e

(* ---------- Group commit ---------- *)

(* Between [batch_begin] and [batch_end] every transaction commits a
   tentative record: checksum deliberately poisoned, no flush, no fence.
   [batch_end] patches the true checksums and persists the entire batch
   with one flush run and a single fence — K transactions share the one
   ordering point SpecPMT has left, so the per-transaction fence cost
   tends to 1/K.  A crash before the seal makes the whole batch invisible
   (the valid-prefix scan stops at the first poisoned checksum); a crash
   inside the seal durably commits a prefix of the batch in order. *)

let in_batch t = t.in_batch

let batch_begin t =
  if t.in_tx then invalid_arg "Spec_soft.batch_begin: open transaction";
  if t.in_batch then invalid_arg "Spec_soft.batch_begin: batch already open";
  if t.params.data_persist then
    invalid_arg
      "Spec_soft.batch_begin: data-persist mode fences per transaction";
  t.in_batch <- true

let batch_end t =
  if not t.in_batch then invalid_arg "Spec_soft.batch_end: no open batch";
  if t.in_tx then invalid_arg "Spec_soft.batch_end: open transaction";
  t.in_batch <- false;
  let sealed = Log_arena.seal_tentative t.arena in
  (* reclamation was deferred while records were unsealed *)
  maybe_reclaim t;
  sealed

(* ---------- Recovery ---------- *)

(* Recovery (Section 3.1).  Both modes first establish the valid record
   prefix (the torn record of an interrupted transaction fails its
   checksum and ends the scan); they differ in how the surviving entries
   reach the data cells.

   [Replay] is the paper's replay-every-record loop, oldest first: every
   entry is stored, stale ones are overwritten by fresher ones — O(log)
   data writes.  [Coalesce] folds the same scan into a last-writer-wins
   index and then writes each live cell exactly once — O(live) data
   writes.  Replay is kept as the differential-testing oracle for the
   coalescing path. *)
let replay_internal ?(head_slot = Slots.spec_head) ?(mode = Coalesce) pm
    ~block_bytes =
  let open Specpmt_obs in
  match mode with
  | Coalesce ->
      let index = Hashtbl.create 256 in
      let max_ts, records, entries =
        Log_arena.recover_collect pm ~head_slot ~block_bytes ~index
      in
      let restored = Hashtbl.create (max 16 (Hashtbl.length index)) in
      (* all stores first, then the flushes: interleaving would re-dirty
         a line shared by several cells after its flush and drain it once
         per cell instead of once per line *)
      Hashtbl.iter
        (fun a (v, _, _) ->
          Pmem.store_int pm a v;
          Hashtbl.replace restored a v)
        index;
      Hashtbl.iter (fun a _ -> Pmem.clwb pm a) restored;
      Pmem.sfence pm;
      Metrics.add (Metrics.counter "recover.records_scanned") records;
      Metrics.add (Metrics.counter "recover.entries_scanned") entries;
      Metrics.add (Metrics.counter "recover.data_writes")
        (Hashtbl.length index);
      (restored, max_ts, Some index)
  | Replay ->
      let restored = Hashtbl.create 256 in
      let records = ref 0 and entries = ref 0 in
      let max_ts =
        Log_arena.recover_scan pm ~head_slot ~block_bytes
          ~f:(fun ~ts:_ es ->
            incr records;
            entries := !entries + Array.length es;
            Array.iter
              (fun (a, v) ->
                Pmem.store_int pm a v;
                Hashtbl.replace restored a v)
              es)
      in
      Hashtbl.iter (fun a _ -> Pmem.clwb pm a) restored;
      Pmem.sfence pm;
      Metrics.add (Metrics.counter "recover.records_scanned") !records;
      Metrics.add (Metrics.counter "recover.entries_scanned") !entries;
      Metrics.add (Metrics.counter "recover.data_writes") !entries;
      (restored, max_ts, None)

let recover_standalone ?(mode = Coalesce) pm ~block_bytes =
  let restored, _, _ = replay_internal ~mode pm ~block_bytes in
  restored

let recover t =
  let open Specpmt_obs in
  Phase.run Phase.Recover @@ fun () ->
  (* replay first: the heap walk must see the restored image *)
  let restored, max_ts, index =
    replay_internal ~head_slot:t.head_slot ~mode:t.params.recovery t.pm
      ~block_bytes:t.params.block_bytes
  in
  Heap.recover t.heap;
  Tsc.restart_above t.tsc max_ts;
  t.arena <-
    Log_arena.attach t.heap ~head_slot:t.head_slot
      ~block_bytes:t.params.block_bytes;
  rebuild_vindex ?from:index t;
  t.frees <- [] (* deferred frees of a crashed transaction are dead *);
  t.allocs <- [] (* likewise its allocations: Heap.recover owns the walk *);
  Write_set.clear t.ws;
  t.in_tx <- false;
  t.in_batch <- false (* an unsealed batch died with the crash *);
  Metrics.incr (Metrics.counter "recover.cycles");
  Metrics.add (Metrics.counter "recover.cells_restored")
    (Hashtbl.length restored);
  Trace.emit "spec.recover" ~a:(Hashtbl.length restored) ~b:max_ts

(* Reattach the arena after an external replay — the multi-threaded
   runtime replays all threads' logs in global timestamp order before
   reattaching each thread (Section 5.2.2). *)
let reattach t =
  t.arena <-
    Log_arena.attach t.heap ~head_slot:t.head_slot
      ~block_bytes:t.params.block_bytes;
  rebuild_vindex t;
  t.frees <- [];
  t.allocs <- [];
  Write_set.clear t.ws;
  t.in_tx <- false;
  t.in_batch <- false

let snapshot_region t addr len =
  assert (Addr.is_word_aligned addr && len mod 8 = 0);
  let backend_ctx_write = tx_write t in
  if t.in_tx then invalid_arg "Spec_soft.snapshot_region: open transaction";
  t.in_tx <- true;
  Log_arena.begin_record t.arena;
  for i = 0 to (len / 8) - 1 do
    let a = addr + (i * 8) in
    backend_ctx_write a (Pmem.load_int t.pm a)
  done;
  commit t

(* Switching crash-consistency mechanisms (Section 4.3.1): because
   SpecPMT uses in-place updates, leaving speculative logging only
   requires persisting the dirty durable data at the transition point.
   The volatile live index holds exactly the set of cells the log covers
   (every logged datum has a freshest entry), so the selective flush is
   O(live) with no log scan.  Once done, the speculative log is no longer
   needed and is emptied, and any other mechanism (undo, redo...) may run
   on the same pool from then on. *)
let switch_out t =
  if t.in_tx then invalid_arg "Spec_soft.switch_out: open transaction";
  if t.in_batch then invalid_arg "Spec_soft.switch_out: open batch";
  (* 1: persist every datum with a live record *)
  let touched = live_cells t in
  Hashtbl.iter (fun a _ -> Pmem.clwb t.pm a) t.vindex;
  Pmem.sfence t.pm;
  (* 2: the log is now dead weight and must be durably invalidated — not
     just trimmed.  Records left alive in the tail block are a time bomb:
     once another mechanism owns the pool and mutates the same cells, any
     later scan from the head slot would replay the stale speculative
     values over the new owner's committed data.  [reset] persists an
     end-of-log sentinel before recycling the other blocks. *)
  Log_arena.reset t.arena;
  Hashtbl.reset t.vindex;
  Hashtbl.reset t.block_live;
  touched

let create ?(head_slot = Slots.spec_head) ?tsc heap params =
  let pm = Heap.pmem heap in
  let t =
    {
      heap;
      pm;
      params;
      head_slot;
      tsc = (match tsc with Some c -> c | None -> Tsc.create ());
      ws = Write_set.create ();
      frees = [];
      allocs = [];
      arena =
        Log_arena.create heap ~head_slot
          ~block_bytes:params.block_bytes;
      in_tx = false;
      in_batch = false;
      reclaims = 0;
      last_compact_footprint = params.block_bytes;
      vindex = Hashtbl.create 256;
      block_live = Hashtbl.create 16;
      bg_spent = 0.0;
    }
  in
  let backend =
    {
      Ctx.name = (if params.data_persist then "SpecSPMT-DP" else "SpecSPMT");
      run_tx = (fun f -> run_tx t f);
      recover = (fun () -> recover t);
      drain = (fun () -> ());
      log_footprint = (fun () -> Log_arena.footprint t.arena);
      supports_recovery = true;
    }
  in
  (backend, t)
