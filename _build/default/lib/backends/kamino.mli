(** Kamino-Tx upper-bound model (paper Section 7.1.2): in-place updates
    with a persisted {e address} log (flush + fence per first update) and
    asynchronous data persistence through a backup copy.  Following the
    paper's methodology the backup copying is omitted, making this an
    upper bound that cannot actually recover
    ([supports_recovery = false]). *)

open Specpmt_pmalloc
open Specpmt_txn

val create : Heap.t -> Ctx.backend
