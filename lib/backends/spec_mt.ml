open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  params : Spec_soft.params;
  tsc : Tsc.t;
  backends : Ctx.backend array;
  runtimes : Spec_soft.t array;
}

let head_slot i = Slots.spec_mt_head i

let create ?(params = Spec_soft.default_params) heap ~threads =
  if threads < 1 || threads > 3 then
    invalid_arg "Spec_mt.create: 1-3 threads";
  let tsc = Tsc.create () in
  let pairs =
    Array.init threads (fun i ->
        Spec_soft.create ~head_slot:(head_slot i) ~tsc heap params)
  in
  {
    heap;
    pm = Heap.pmem heap;
    params;
    tsc;
    backends = Array.map fst pairs;
    runtimes = Array.map snd pairs;
  }

let thread t i = t.backends.(i)
let runtime t i = t.runtimes.(i)
let threads t = Array.length t.backends

(* Recovery (Sections 4.1 and 5.2.2): collect the valid records of every
   thread's log, sort globally by commit timestamp, replay in that order.
   Within one thread the scan order and the timestamp order agree; across
   threads only the timestamps order the effects. *)
let recover t =
  Heap.recover t.heap;
  let records = ref [] in
  let max_ts = ref 0 in
  Array.iteri
    (fun i _ ->
      ignore
        (Log_arena.recover_scan t.pm ~head_slot:(head_slot i)
           ~block_bytes:t.params.Spec_soft.block_bytes
           ~f:(fun ~ts entries ->
             if ts > !max_ts then max_ts := ts;
             records := (ts, entries) :: !records)))
    t.runtimes;
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) !records in
  let touched = Hashtbl.create 256 in
  List.iter
    (fun (_, entries) ->
      Array.iter
        (fun (a, v) ->
          Pmem.store_int t.pm a v;
          Hashtbl.replace touched a ())
        entries)
    ordered;
  Hashtbl.iter (fun a () -> Pmem.clwb t.pm a) touched;
  Pmem.sfence t.pm;
  Tsc.restart_above t.tsc !max_ts;
  (* reattach every thread's arena after the data replay *)
  Array.iter Spec_soft.reattach t.runtimes
