type t = int

let line_size = 64
let page_size = 4096
let word_size = 8
let line_of a = a land lnot (line_size - 1)
let line_index a = a lsr 6
let page_of a = a land lnot (page_size - 1)
let page_index a = a lsr 12
let offset_in_line a = a land (line_size - 1)

let lines_spanned a len =
  assert (len > 0);
  line_index (a + len - 1) - line_index a + 1

let is_word_aligned a = a land (word_size - 1) = 0

let align_up a k =
  assert (k land (k - 1) = 0);
  (a + k - 1) land lnot (k - 1)
