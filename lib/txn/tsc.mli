(** Logical timestamp counter — the stand-in for [rdtscp] (Section 4.1).

    Recovery needs a total order over transaction commits; multi-threaded
    pools share one counter ({!Specpmt_backends.Spec_mt}).  The counter
    is atomic: shard-per-domain execution calls {!next} from several
    domains concurrently and recovery relies on global uniqueness. *)

type t

val create : unit -> t

val next : t -> int
(** Strictly increasing, starting at 1.  Safe to call from any domain:
    concurrent callers receive distinct timestamps. *)

val peek : t -> int
(** The value {!next} would return, without consuming it. *)

val restart_above : t -> int -> unit
(** After a crash: restart strictly above every timestamp that may live in
    persistent logs. *)
