test/test_core.ml: Alcotest Ctx Heap List Option Pmem Pmem_config Run Specpmt Workload
