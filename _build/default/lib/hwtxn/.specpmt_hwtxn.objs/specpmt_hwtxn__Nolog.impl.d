lib/hwtxn/nolog.ml: Ctx Heap Pmem Specpmt_pmalloc Specpmt_pmem Specpmt_txn Write_set
