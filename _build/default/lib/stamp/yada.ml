(** yada — Delaunay mesh refinement (STAMP, Ruppert's algorithm).

    A pool of triangles with a quality measure; bad triangles are retired
    and replaced by several fresh ones whose quality improves, until the
    whole mesh is good.  Each refinement transaction retires one triangle
    and allocates/initialises up to three — the second-largest write sets
    of the suite (175 B average in the paper). *)

open Specpmt_txn
open Specpmt_pstruct

let sizes = function
  | Wtypes.Quick -> 24
  | Wtypes.Small -> 640
  | Wtypes.Full -> 4 * 1024

let quality_threshold = 100

(* triangle record: [alive; quality; a; b; c; skew] — six cells *)
let tri_cells = 6

let prepare scale heap (backend : Ctx.backend) =
  let seeds = sizes scale in
  let rng = Rng.create 0xADA in
  (* triangle pool: a bump-allocated persistent table *)
  let max_tris = 16 * seeds in
  let pool, count =
    backend.Ctx.run_tx (fun ctx ->
        let pool = Parray.create ctx (max_tris * tri_cells) in
        let count = Parray.create ctx 1 in
        Parray.set ctx count 0 0;
        (pool, count))
  in
  let tri_base i = i * tri_cells in
  let mk_tri ctx quality skew =
    let i = Parray.get ctx count 0 in
    if i >= max_tris then None
    else begin
      Parray.set ctx count 0 (i + 1);
      let b = tri_base i in
      Parray.set ctx pool b 1;
      Parray.set ctx pool (b + 1) quality;
      Parray.set ctx pool (b + 2) (Rng.int rng 1024);
      Parray.set ctx pool (b + 3) (Rng.int rng 1024);
      Parray.set ctx pool (b + 4) (Rng.int rng 1024);
      Parray.set ctx pool (b + 5) skew;
      Some i
    end
  in
  (* seed mesh: all bad *)
  let worklist = Queue.create () in
  backend.Ctx.run_tx (fun ctx ->
      for _ = 1 to seeds do
        match mk_tri ctx (10 + Rng.int rng 40) (Rng.int rng 7) with
        | Some i -> Queue.push i worklist
        | None -> ()
      done);
  let work () =
    while not (Queue.is_empty worklist) do
      let i = Queue.pop worklist in
      Wtypes.compute heap 700.0;
      backend.Ctx.run_tx (fun ctx ->
          let b = tri_base i in
          if
            Parray.get ctx pool b = 1
            && Parray.get ctx pool (b + 1) < quality_threshold
          then begin
            (* retire the bad triangle, insert the cavity's replacements *)
            Parray.set ctx pool b 0;
            let q = Parray.get ctx pool (b + 1) in
            let skew = Parray.get ctx pool (b + 5) in
            let children = 2 + (skew mod 2) in
            for c = 1 to children do
              (* children converge: quality strictly improves *)
              let q' = q + (q / 2) + (c * 7) in
              match mk_tri ctx q' ((skew + c) mod 7) with
              | Some j -> if q' < quality_threshold then Queue.push j worklist
              | None -> ()
            done
          end)
    done
  in
  let checksum () =
    let ctx = Ctx.raw_ctx heap in
    let n = Parray.get ctx count 0 in
    let acc = ref n in
    for i = 0 to n - 1 do
      let b = tri_base i in
      acc :=
        Wtypes.mix !acc
          ((Parray.get ctx pool b * 131) + Parray.get ctx pool (b + 1))
    done;
    !acc
  in
  { Wtypes.work; checksum }

let workload =
  {
    Wtypes.name = "yada";
    description = "Delaunay mesh refinement: retire bad triangles, split";
    prepare;
  }
