(** Reference numbers transcribed from the paper's figures, printed next
    to our measurements so every table is a direct paper-vs-measured
    comparison.  Approximate where only a bar chart is given. *)

let workloads =
  [
    "genome";
    "intruder";
    "kmeans-low";
    "kmeans-high";
    "labyrinth";
    "ssca2";
    "vacation-low";
    "vacation-high";
    "yada";
  ]

(* Figure 12: speedup over PMDK (bars; called-out values exact) *)
let fig12 =
  [
    ("Kamino-Tx", [ 1.6; 2.0; 1.6; 1.7; 1.1; 2.1; 1.7; 1.7; 1.5 ], 1.7);
    ("SPHT", [ 2.7; 3.0; 2.9; 3.1; 2.2; 2.6; 3.2; 3.1; 2.8 ], 2.8);
    ("SpecSPMT-DP", [ 2.7; 2.8; 2.9; 3.2; 6.0; 2.1; 3.3; 3.4; 3.0 ], 3.0);
    ("SpecSPMT", [ 2.8; 3.1; 10.7; 10.3; 6.2; 2.3; 3.7; 3.9; 49.7 ], 5.1);
  ]

(* Figure 13: speedup over EDE *)
let fig13 =
  [
    ("HOOP", [ 1.15; 1.2; 1.05; 1.5; 1.05; 1.15; 1.2; 1.25; 0.95 ], 1.19);
    ("SpecHPMT-DP", [ 1.0; 1.0; 1.0; 1.0; 1.05; 0.95; 1.0; 1.0; 1.0 ], 1.0);
    ("SpecHPMT", [ 1.52; 1.5; 1.13; 1.78; 1.45; 1.3; 1.4; 1.42; 1.39 ], 1.41);
    ("no-log", [ 1.6; 1.6; 1.2; 1.9; 1.35; 1.45; 1.55; 1.55; 1.3 ], 1.5);
  ]

(* Figure 14: write-traffic reduction over EDE, percent *)
let fig14 =
  [
    ("HOOP", [ 35.0; 40.0; 55.0; 55.0; 15.0; 20.0; 25.0; 25.0; 10.0 ], 31.0);
    ("SpecHPMT-DP", [ 20.0; 20.0; 40.0; 40.0; 25.0; 10.0; 20.0; 20.0; 30.0 ], 25.0);
    ("SpecHPMT", [ 40.0; 40.0; 60.0; 60.0; 45.0; 30.0; 45.0; 45.0; 45.0 ], 45.0);
    ("no-log", [ 50.0; 55.0; 70.0; 70.0; 55.0; 45.0; 55.0; 55.0; 55.0 ], 56.0);
  ]

(* Figure 1: residual overhead over no-transaction versions, percent *)
let fig1_sw =
  [ ("PMDK", 460.0); ("Kamino-Tx", 232.0); ("SPHT", 161.0) ]

let fig1_hw = [ ("EDE", 50.0); ("HOOP", 29.0) ]

(* Table 2: full-scale STAMP profiles *)
let table2 =
  [
    ("genome", 7.2, 2_489_218, 7_230_727);
    ("intruder", 20.5, 23_428_126, 106_976_163);
    ("kmeans-low", 101.0, 9_874_166, 266_600_674);
    ("kmeans-high", 101.0, 4_106_954, 110_887_006);
    ("labyrinth", 1420.0, 1_026, 184_190);
    ("ssca2", 16.0, 22_362_279, 89_449_114);
    ("vacation-low", 44.2, 4_194_304, 31_582_272);
    ("vacation-high", 67.8, 4_194_304, 43_950_938);
    ("yada", 175.6, 2_415_298, 57_844_629);
  ]

(* Section 4: hash-table log slowdown over the sequential log *)
let hashlog_slowdown = 3.2
