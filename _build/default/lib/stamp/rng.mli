(** Deterministic xorshift PRNG for workload generation.

    Workloads must produce identical inputs across runs and backends so
    that final-state checksums are comparable. *)

type t

val create : int -> t
(** Seeded; the same seed always produces the same stream. *)

val next : t -> int
(** Next positive pseudo-random integer. *)

val int : t -> int -> int
(** [int t bound] in [\[0, bound)]; [bound > 0]. *)

val bool : t -> bool
