lib/stamp/profile.ml: Addr Ctx Fmt Hashtbl Specpmt_pmem Specpmt_txn
