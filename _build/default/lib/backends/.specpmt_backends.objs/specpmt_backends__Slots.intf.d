lib/backends/slots.mli:
