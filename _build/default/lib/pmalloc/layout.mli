(** Fixed layout of the reserved head of a persistent pool: a 4 KiB root
    area holding the magic, the two zone bump pointers and the root
    pointer slots; the heap follows. *)

val magic_value : int
val magic : int
val heap_bump : int
val log_bump : int
val root_slot_count : int

val root_slot : int -> int
(** Address of persistent root-pointer slot [i]. *)

val heap_base : int
