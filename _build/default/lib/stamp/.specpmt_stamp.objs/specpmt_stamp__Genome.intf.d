lib/stamp/genome.mli: Wtypes
