(** Private TLB model with the hardware-SpecPMT hotness extensions.

    Each entry carries the paper's two additions (Figure 9): a one-bit
    [EpochBit] and a 3-bit field that is a saturating store counter while
    the page is cold and the epoch ID once it has been speculatively
    logged.  Evicting an entry discards that state — "such a page is
    likely no longer hot" (Section 5.1) — which is precisely what bounds
    the speculative-log growth.

    The model collapses the two levels into one capacity (L2 size) but
    charges the L1/L2 lookup difference probabilistically by residency
    position; a miss charges a page-walk. *)

type entry = {
  vpage : int;  (** page index *)
  mutable epoch_bit : bool;  (** set = page is speculatively logged (hot) *)
  mutable cnt_eid : int;  (** store counter (cold) or epoch ID (hot) *)
}

type t

val create : Hwconfig.t -> Specpmt_pmem.Pmem.t -> t
(** The device is used only for cost accounting. *)

val access : t -> page:int -> entry
(** Look a page up, inserting a fresh cold entry (counter 0) on a miss and
    evicting the oldest entry past capacity.  Charges lookup cost. *)

val find : t -> page:int -> entry option
(** Lookup without insertion or cost (verification). *)

val clear_epoch : t -> eid:int -> int
(** The [clearepoch EID] instruction: reset every entry whose [EpochBit]
    is set with this epoch ID back to cold (counter 0).  Returns how many
    entries were cleared.  Constant hardware cost. *)

val flush : t -> unit
(** Drop all entries (context switch / shootdown). *)

val resident : t -> int
val evictions : t -> int
