lib/txn/log_arena.ml: Addr Array Bytes Checksum Fmt Hashtbl Heap Int64 Layout List Pmem Specpmt_pmalloc Specpmt_pmem
