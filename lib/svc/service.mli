(** The sharded transactional KV service (tentpole components (a)–(c)).

    Keys hash to one of [shards] shards (router); each shard owns one
    per-thread {!Specpmt_backends.Spec_soft} runtime of a
    {!Specpmt_backends.Spec_mt} pool, a bounded {!Admission} queue and a
    {!Group_commit} batcher.  The store is a flat table of [keys] 8-byte
    cells in the persistent heap, partitioned by the shard hash so
    shards never contend on a cell and the per-thread logs stay
    disjoint.

    Durability contract: {!submit} admits (or sheds) a request;
    {!drain} executes admitted requests shard-by-shard in batches of up
    to [batch_max] transactions, sealing each batch under one flush run
    + fence, and acknowledges a request {e only after} its batch's fence
    has retired.  An acknowledged op is therefore durable across any
    later crash; an unacknowledged op is invisible to recovery unless
    the crash hit the narrow seal window of its batch ({!sealing}), in
    which case a prefix of that batch may be durable. *)

open Specpmt_pmalloc
open Specpmt_backends

type op =
  | Read  (** point read of the key's cell *)
  | Write of int  (** blind write (YCSB update/insert) *)
  | Rmw of int
      (** read-modify-write as a {e single} transaction: read the cell,
          add the delta, write it back under the same speculative record
          (YCSB-F's workhorse); the completion value is the new cell
          value *)
  | Scan of int
      (** ordered scan of up to [len >= 1] {e populated} keys (keys
          some client write has touched), served by the shard's
          persistent {!Specpmt_pstruct.Pbtree} via {!Oindex.scan}:
          walks the tree from the smallest populated key [>= anchor]
          in ascending key order, never crossing a shard, so cell
          ownership and the data plane's line-disjointness hold; the
          completion value is the order-sensitive checksum
          [acc = (acc*31 + key + value) land max_int] over the window
          (0 when no populated key follows the anchor in its shard) *)

type request = { client : int; key : int; op : op; enq_ns : float }

type completion = {
  c_client : int;
  c_shard : int;
  c_key : int;
  c_op : op;
  value : int;  (** value read, or value written *)
  c_enq_ns : float;
  ack_ns : float;  (** simulated time when the batch fence retired *)
}

type config = {
  shards : int;  (** 1..{!Specpmt_backends.Spec_mt.max_threads} *)
  batch_max : int;  (** transactions per group-commit batch *)
  depth : int;  (** per-shard admission (inflight) bound *)
  keys : int;  (** size of the KV table *)
}

type t

val create : ?params:Spec_soft.params -> ?shadow:bool -> Heap.t -> config -> t
(** Build the service on a formatted pool: allocates the key table,
    runs one {e adoption} transaction per shard (writing 0 to every
    owned key) so that every cell is logged before its first client
    write — Section 4.3.2's precondition for revoking uncommitted
    in-place updates — and creates the per-shard ordered index
    ({!Oindex.create}), persisting its directory under root slot
    {!Specpmt_backends.Slots.svc_index}.  Adoption does not populate
    the index: only client writes do.  [shadow] (default [true])
    mirrors each shard's tree in DRAM (see {!Oindex.create}); pass
    [false] to measure the unmirrored baseline. *)

val submit :
  t -> client:int -> key:int -> op -> Admission.verdict
(** Route to the owning shard and admit or shed (sheds bump the
    [svc.rejected] counter).  Raises [Invalid_argument] on an
    out-of-range key or a [Scan] of length < 1. *)

val drain : ?on_ack:(completion -> unit) -> t -> completion list
(** Execute every admitted request: per shard, dequeue up to
    [batch_max], run the batch, seal, acknowledge.  [on_ack] fires per
    completion immediately after its batch's fence (crash-safe ack
    stream); the returned list is in acknowledgement order. *)

val recover : t -> unit
(** Post-crash: multi-threaded log recovery over all shards, then drop
    queued/executing requests (they died unacknowledged), clear the
    seal flags, and rediscover the ordered index from its root slot
    ({!Oindex.recover}). *)

val route : shards:int -> int -> int
(** The pure router hash: 32-bit Fibonacci (Knuth multiplicative)
    hashing of the key, reduced mod [shards].  Shared by the serial
    service and the shard-per-domain data plane so both agree on key
    ownership. *)

val shard_of_key : t -> int -> int
(** [route ~shards:(config t).shards]. *)

val config : t -> config
val pm : t -> Specpmt_pmem.Pmem.t

val peek : t -> int -> int
(** Unmetered read of a key's current cell value (test/audit use). *)

val sealing : t -> int -> bool
(** Whether shard [i] was inside a batch seal — read after a simulated
    crash to widen the audit window to that batch's prefix. *)

type shard_stats = {
  s_id : int;
  s_ops : int;  (** acknowledged ops executed *)
  s_accepted : int;
  s_rejected : int;
  s_acked : int;
  s_max_inflight : int;
  s_batches : int;
  s_sealed : int;  (** records made durable by batch seals *)
  s_latency : Specpmt_obs.Hist.snapshot;  (** per-op latency, sim ns *)
}

val shard_stats : t -> int -> shard_stats

val rejected : t -> int
(** Total sheds across shards. *)

val owned_keys : t -> int -> int array
(** The keys shard [i] owns, in ascending order — the rows adoption
    iterates.  A fresh copy (test/audit use). *)

val oindex : t -> Oindex.t
(** The live per-shard ordered index (test/audit use; replaced by
    {!recover}). *)
