lib/stamp/intruder.ml: Array Ctx Phashtbl Pqueue Rng Specpmt_pstruct Specpmt_txn Wtypes
