(* The crash-state exploration engine, turned on itself: exhaustively
   explore a small two-transaction workload for every recoverable scheme
   and require a clean verdict, plus determinism of the whole report and
   the reproducer round trip. *)

open Specpmt_crashmc

let small_explore ?policies scheme =
  (* budget far above the exhaustive case count so stride = 1 *)
  Crashmc.explore ?policies ~cells:4 ~txs:2 ~max_writes:2 ~budget:100_000
    ~scheme ~seed:7 ()

let pp_failures r =
  String.concat "\n"
    (List.map (Fmt.str "%a" Crashmc.pp_failure) r.Crashmc.failures)

(* every scheme survives exhaustive exploration of the small workload *)
let test_exhaustive_clean scheme () =
  let r = small_explore scheme in
  Alcotest.(check int)
    (scheme ^ ": exhaustive (stride 1)")
    1 r.Crashmc.stride;
  Alcotest.(check int)
    (scheme ^ ": every event was a crash point")
    r.Crashmc.total_events r.Crashmc.points;
  if r.Crashmc.failures <> [] then
    Alcotest.failf "%s: %d crash-consistency failures:\n%s" scheme
      (List.length r.Crashmc.failures)
      (pp_failures r);
  Alcotest.(check int) (scheme ^ ": all cases pass") r.Crashmc.cases
    r.Crashmc.passes

(* same seed -> byte-identical report, including the explored case set *)
let test_deterministic () =
  let j () =
    Specpmt_obs.Json.to_string
      (Crashmc.report_to_json (small_explore "SpecSPMT"))
  in
  Alcotest.(check string) "two runs, one report" (j ()) (j ())

(* the domain-pooled sweep is byte-identical to the serial one: same
   report JSON (cases, passes, failures, repro strings) for any jobs *)
let test_jobs_identical () =
  let report ~jobs ~budget scheme =
    Specpmt_obs.Json.to_string
      (Crashmc.report_to_json
         (Crashmc.explore ~jobs ~cells:4 ~txs:2 ~max_writes:2 ~budget ~scheme
            ~seed:7 ()))
  in
  List.iter
    (fun scheme ->
      (* exhaustive: every crash point fits the budget *)
      Alcotest.(check string)
        (scheme ^ ": exhaustive, jobs 4 == jobs 1")
        (report ~jobs:1 ~budget:100_000 scheme)
        (report ~jobs:4 ~budget:100_000 scheme);
      (* truncated: the budget cuts off mid-sweep, which exercises the
         parallel reduction's replay of serial budget accounting *)
      Alcotest.(check string)
        (scheme ^ ": truncated, jobs 4 == jobs 1")
        (report ~jobs:1 ~budget:37 scheme)
        (report ~jobs:4 ~budget:37 scheme))
    [ "SpecSPMT"; "PMDK" ]

(* a (fuse, choice) pair replays to the same verdict the sweep computed *)
let test_replay_roundtrip () =
  let r = small_explore "PMDK" in
  Alcotest.(check bool) "sweep found crash points" true (r.Crashmc.points > 0);
  (match
     Crashmc.replay ~cells:4 ~txs:2 ~max_writes:2 ~scheme:"PMDK" ~seed:7
       ~fuse:1 ~choice:Crashmc.Persist_none ()
   with
  | Crashmc.Audit_ok _ -> ()
  | Crashmc.Run_completed -> Alcotest.fail "fuse 1 should crash"
  | Crashmc.Audit_failed f ->
      Alcotest.failf "replay failed: %a" Crashmc.pp_failure f);
  match
    Crashmc.replay ~cells:4 ~txs:2 ~max_writes:2 ~scheme:"PMDK" ~seed:7
      ~fuse:1_000_000 ~choice:Crashmc.Persist_all ()
  with
  | Crashmc.Run_completed -> ()
  | _ -> Alcotest.fail "an unburnt fuse must report Run_completed"

(* The btree target's workload provably crosses every structural
   transition at the CI sweep's parameters: a clean exploration at these
   parameters is then a statement about splits, merges and root moves
   under crashes, not just about point updates. *)
let test_btree_coverage () =
  let st = Crashmc.btree_coverage ~cells:24 ~txs:12 ~max_writes:6 ~seed:1 () in
  let open Specpmt_pstruct.Pbtree in
  Alcotest.(check bool) "leaf splits" true (st.leaf_splits > 0);
  Alcotest.(check bool) "internal splits" true (st.internal_splits > 0);
  Alcotest.(check bool) "merges" true (st.merges > 0);
  Alcotest.(check bool) "root growth" true (st.root_grows > 0);
  Alcotest.(check bool) "root collapse" true (st.root_shrinks > 0)

(* strided btree sweep at the structural-coverage parameters (the small
   exhaustive workload above has too few cells to split an order-4
   tree): every sampled crash point must audit clean *)
let test_btree_sweep () =
  let r =
    Crashmc.explore ~cells:24 ~txs:12 ~max_writes:6 ~budget:200
      ~scheme:"SpecSPMT-btree" ~seed:1 ()
  in
  if r.Crashmc.failures <> [] then
    Alcotest.failf "SpecSPMT-btree: %d failures:\n%s"
      (List.length r.Crashmc.failures)
      (pp_failures r);
  Alcotest.(check int) "all cases pass" r.Crashmc.cases r.Crashmc.passes;
  Alcotest.(check bool) "swept a real case count" true (r.Crashmc.cases >= 100)

(* the reproducer encoding survives a round trip for every choice form *)
let test_choice_roundtrip () =
  List.iter
    (fun c ->
      let s = Crashmc.choice_to_string c in
      match Crashmc.choice_of_string s with
      | Ok c' ->
          Alcotest.(check string) ("roundtrip " ^ s) s
            (Crashmc.choice_to_string c')
      | Error e -> Alcotest.failf "%s failed to parse back: %s" s e)
    [
      Crashmc.Persist_all;
      Crashmc.Persist_none;
      Crashmc.Keep_line 2;
      Crashmc.Drop_line 0;
      Crashmc.Keep_word 3;
      Crashmc.Drop_word 1;
    ];
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Crashmc.choice_of_string "keepline:x"))

let () =
  Alcotest.run "crashmc"
    [
      ( "exhaustive small workload",
        List.map
          (fun s -> Alcotest.test_case s `Slow (test_exhaustive_clean s))
          (Crashmc.target_names ()) );
      ( "btree target",
        [
          Alcotest.test_case "structural coverage" `Quick test_btree_coverage;
          Alcotest.test_case "strided sweep clean" `Slow test_btree_sweep;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic report" `Quick test_deterministic;
          Alcotest.test_case "jobs-independent report" `Slow
            test_jobs_identical;
          Alcotest.test_case "replay roundtrip" `Quick test_replay_roundtrip;
          Alcotest.test_case "choice encoding roundtrip" `Quick
            test_choice_roundtrip;
        ] );
    ]
