(** Deterministic crash-state exploration ("crashmc").

    The randomized crash harnesses ({!Specpmt_pmem.Pmem.crash}, the fuzz
    command, the qcheck property tests) sample crash states with a coin
    flip per dirty word — good at volume, bad at reproduction and at
    reaching the adversarial corners (exactly one line persisted, exactly
    one dropped).  This engine explores the crash space deterministically
    instead:

    - a fixed random transactional program over an array of 8-byte cells
      is derived from [seed] (first transaction adopts the cells, as in
      Section 4.3.2);
    - a {e dry run} measures the workload's crash-point space: the count
      of fuse-visible memory events ({!Specpmt_pmem.Pmem.events});
    - crash points are visited at a deterministic stride chosen so that
      the case count lands near [budget] (stride 1 = exhaustive);
    - at each point the run is repeated per {e persist choice}: an
      oracle handed to {!Specpmt_pmem.Pmem.crash_with} that decides,
      per dirty word, whether it drains to the media — all of them, none,
      or per-line / per-word adversarial subsets of the dirty set;
    - after each (crash point x choice) case the scheme's [recover] runs
      and the cells are audited against the pure reference model: the
      recovered state must equal the state after [committed] or
      [committed + 1] transactions (atomic durability).

    Every case is replayable from its one-line reproducer: same scheme,
    seed, fuse and choice encoding rebuild the identical crash state.
    Failures carry the recent {!Specpmt_obs.Trace} events.

    Explorable schemes are every recoverable registered backend
    (software and simulated hardware), plus six composite targets that
    only exist here: ["SpecSPMT-replay"], the default scheme under the
    legacy replay-every-record recovery (the differential oracle for the
    coalescing recovery path); ["SpecSPMT-adaptive"], with aggressive
    adaptive-reclamation knobs so the index-driven prefix evacuation
    fires inside the explored window; ["SpecSPMT-MT"], the 3-thread
    runtime with per-thread logs recovered in global timestamp order
    (Section 5.2.2); ["SpecSPMT+switch"], which switches out of
    speculative logging to PMDK-style undo mid-workload (Section 4.3.1);
    ["SpecSPMT-batched"], the service layer's group-commit path —
    transactions commit tentative (poisoned-checksum, unfenced) records
    sealed in batches under a single fence, and the audit accepts any
    reference state between the last acknowledged (sealed) transaction
    and [committed + 1], since executed-but-unsealed transactions may
    legally vanish and a crash inside a seal commits a prefix of the
    batch; and ["SpecSPMT-btree"], which drives a persistent B-link tree
    ({!Specpmt_pstruct.Pbtree}, order 4) instead of the flat cell table
    with a three-phase program (bulk ascending insert, random
    insert/remove churn, ascending removal of the whole keyspace —
    provably reaching leaf splits, internal splits, borrows, merges and
    root growth/collapse, see {!btree_coverage}): ops [(c, 0)] are
    removals, the recovered tree is rediscovered from its header,
    structurally validated ({!Specpmt_pstruct.Pbtree.check} — a
    violation is an audit failure) and folded back into the cell-array
    shape for the same atomic-durability audit.  The SpecPMT variants
    run with a deliberately small log geometry (256-byte blocks,
    512-byte reclamation threshold) so block chaining and log compaction
    fall inside the explored window. *)

(** {1 Persist choices} *)

(** How the crash oracle treats the dirty words at the crash point.
    Line and word indices refer to the ascending dirty-set enumeration of
    {!Specpmt_pmem.Pmem.dirty_lines} / [dirty_words]; an out-of-range
    index degrades to [Persist_all]. *)
type choice =
  | Persist_all  (** every dirty word drains (encoding ["all"]) *)
  | Persist_none  (** nothing drains (["none"]) *)
  | Keep_line of int  (** only the [k]-th dirty line drains (["keepline:K"]) *)
  | Drop_line of int  (** all but the [k]-th dirty line (["dropline:K"]) *)
  | Keep_word of int  (** only the [k]-th dirty word (["keepword:K"]) *)
  | Drop_word of int  (** all but the [k]-th dirty word (["dropword:K"]) *)

val choice_to_string : choice -> string
(** The reproducer encoding shown above ([choice_of_string]'s inverse). *)

val choice_of_string : string -> (choice, string) result
(** Parse a reproducer encoding; [Error] carries a usage message. *)

(** Which choice families to enumerate at each crash point.  The
    all-drain case always runs first regardless — it doubles as the probe
    that sizes the dirty set for the line/word families. *)
type policy = [ `All | `None | `Lines | `Words ]

val default_policies : policy list
(** [[`All; `None; `Lines]] — words are off by default (8x the cases of
    lines for mostly-redundant coverage). *)

val policies_of_string : string -> (policy list, string) result
(** Comma-separated subset of ["all,none,lines,words"]. *)

(** {1 Targets} *)

val target_names : unit -> string list
(** Explorable scheme names, in registry order then the composites. *)

val btree_coverage :
  ?cells:int ->
  ?txs:int ->
  ?max_writes:int ->
  seed:int ->
  unit ->
  Specpmt_pstruct.Pbtree.stats
(** Run the ["SpecSPMT-btree"] workload uninterrupted on a fresh device
    and return the tree's structural-transition counters — the proof
    obligation that an exploration with the same parameters actually
    crosses leaf splits, internal splits, merges, borrows and root
    growth/collapse.  Defaults match a CI-sized sweep: [cells = 24],
    [txs = 12], [max_writes = 6]. *)

(** {1 Results} *)

type failure = {
  fuse : int;  (** crash point (memory events into the workload) *)
  choice : choice;
  committed : int;  (** transactions whose [run_tx] had returned *)
  error : string option;  (** exception escaping [recover], if any *)
  expected : int array;  (** reference cells after [committed] txs *)
  expected_next : int array option;  (** after [committed + 1], if any *)
  got : int array;  (** recovered cells ([[||]] when recovery raised) *)
  repro : string;  (** one-line [specpmt_run explore] reproducer *)
  trace : string list;  (** recent {!Specpmt_obs.Trace} events *)
}

type report = {
  scheme : string;
  seed : int;
  cells : int;
  txs : int;  (** random transactions (the adoption tx is extra) *)
  max_writes : int;
  budget : int;
  total_events : int;  (** crash-point space measured by the dry run *)
  stride : int;  (** distance between visited crash points *)
  points : int;  (** crash points visited *)
  cases : int;  (** (point x choice) cases executed *)
  passes : int;
  failures : failure list;  (** exploration order *)
}

val explore :
  ?cells:int ->
  ?txs:int ->
  ?max_writes:int ->
  ?budget:int ->
  ?policies:policy list ->
  ?jobs:int ->
  scheme:string ->
  seed:int ->
  unit ->
  report
(** Run the exploration.  Deterministic: identical arguments produce an
    identical report (same explored set, same verdicts), which is what
    makes a clean run a regression statement.  Raises [Invalid_argument]
    on a scheme that is unknown or cannot recover.  Defaults:
    [cells = 8], [txs = 6], [max_writes = 4], [budget = 2000],
    [jobs = 1].

    [jobs > 1] fans the crash points over that many worker domains (see
    [Specpmt.Par]): every case owns a fresh device, so the points are
    embarrassingly parallel, and the results are reduced in submission
    order under the serial loop's exact budget accounting — the report
    is byte-identical to [jobs = 1] for any [jobs].  The only
    difference is unobservable waste: workers may execute up to one
    stride-window of cases past the budget, which the reduction then
    discards. *)

type replay_result =
  | Run_completed  (** the fuse outlived the workload; nothing to audit *)
  | Audit_ok of int  (** crashed and recovered cleanly ([committed]) *)
  | Audit_failed of failure

val replay :
  ?cells:int ->
  ?txs:int ->
  ?max_writes:int ->
  scheme:string ->
  seed:int ->
  fuse:int ->
  choice:choice ->
  unit ->
  replay_result
(** Re-execute one (crash point x choice) case — the reproducer path.
    The workload parameters must match the exploration that produced the
    reproducer. *)

(** {1 Rendering} *)

val pp_failure : Format.formatter -> failure -> unit
(** Human-readable failure: verdict, recovered-vs-expected cells and the
    one-line reproducer. *)

val report_to_json : ?wall_s:float -> report -> Specpmt_obs.Json.t
(** Schema-stable JSON ([generator = "specpmt-crashmc"]); failures embed
    their reproducer line and trace.  [wall_s] (harness wall-clock
    seconds) appends the additive [wall_s] / [cases_per_sec] keys —
    timing, not verdicts, so comparisons across [jobs] settings should
    strip them. *)
