(** kmeans — partition-based clustering (STAMP).

    Integer (fixed-point) k-means: each point transaction accumulates its
    coordinates into the chosen cluster's sums — a write set of
    [dims + 1] cells (the paper's 101 B average corresponds to our 12
    dimensions plus the count), making kmeans the write-intensive,
    large-transaction member of the suite.  The low/high-contention
    variants differ in cluster count, as in STAMP. *)

open Specpmt_txn
open Specpmt_pstruct

let dims = 12

let sizes = function
  | Wtypes.Quick -> (96, 2)
  | Wtypes.Small -> (4 * 1024, 3)
  | Wtypes.Full -> (24 * 1024, 4)

let prepare ~clusters scale heap (backend : Ctx.backend) =
  let points, iters = sizes scale in
  let rng = Rng.create 0x4EA5 in
  let coords =
    Array.init points (fun _ -> Array.init dims (fun _ -> Rng.int rng 1024))
  in
  (* persistent: centers (k*dims), accumulators (k*(dims+1)) *)
  let centers, acc =
    backend.Ctx.run_tx (fun ctx ->
        let centers = Parray.create ctx (clusters * dims) in
        let acc = Parray.create ctx (clusters * (dims + 1)) in
        for c = 0 to clusters - 1 do
          for d = 0 to dims - 1 do
            Parray.set ctx centers ((c * dims) + d) coords.(c * 7 mod points).(d)
          done
        done;
        Parray.fill ctx acc 0;
        (centers, acc))
  in
  let work () =
    for _iter = 1 to iters do
      Array.iter
        (fun p ->
          (* nearest center: pure reads *)
          let best = ref 0 and best_d = ref max_int in
          let ctx = Ctx.raw_ctx heap in
          for c = 0 to clusters - 1 do
            let d2 = ref 0 in
            for d = 0 to dims - 1 do
              let diff = p.(d) - Parray.get ctx centers ((c * dims) + d) in
              d2 := !d2 + (diff * diff)
            done;
            if !d2 < !best_d then begin
              best_d := !d2;
              best := c
            end
          done;
          let c = !best in
          Wtypes.compute heap (float_of_int (3 * clusters * dims));
          (* the transaction: accumulate into the chosen cluster *)
          backend.Ctx.run_tx (fun ctx ->
              for d = 0 to dims - 1 do
                let a = (c * (dims + 1)) + d in
                Parray.set ctx acc a (Parray.get ctx acc a + p.(d))
              done;
              let cnt = (c * (dims + 1)) + dims in
              Parray.set ctx acc cnt (Parray.get ctx acc cnt + 1)))
        coords;
      (* recompute centers, one transaction per cluster *)
      for c = 0 to clusters - 1 do
        backend.Ctx.run_tx (fun ctx ->
            let cnt = Parray.get ctx acc ((c * (dims + 1)) + dims) in
            if cnt > 0 then
              for d = 0 to dims - 1 do
                Parray.set ctx centers ((c * dims) + d)
                  (Parray.get ctx acc ((c * (dims + 1)) + d) / cnt)
              done;
            for d = 0 to dims do
              Parray.set ctx acc ((c * (dims + 1)) + d) 0
            done)
      done
    done
  in
  let checksum () =
    let ctx = Ctx.raw_ctx heap in
    List.fold_left Wtypes.mix 0 (Parray.to_list ctx centers)
  in
  { Wtypes.work; checksum }

let low =
  {
    Wtypes.name = "kmeans-low";
    description = "k-means clustering, low contention (32 clusters)";
    prepare = (fun scale heap b -> prepare ~clusters:32 scale heap b);
  }

let high =
  {
    Wtypes.name = "kmeans-high";
    description = "k-means clustering, high contention (8 clusters)";
    prepare = (fun scale heap b -> prepare ~clusters:8 scale heap b);
  }
