(** Transaction profiling (paper Table 2).

    Wraps a backend so that every transaction flowing through it counts
    its update operations and unique cells written (the write-set size in
    bytes). *)

open Specpmt_txn

type counters = {
  mutable txs : int;
  mutable updates : int;
  mutable ws_bytes : int;  (** sum over transactions of unique cells x 8 *)
}

val fresh : unit -> counters
val avg_tx_bytes : counters -> float
val pp : Format.formatter -> counters -> unit

val wrap : Ctx.backend -> Ctx.backend * counters
(** The returned backend behaves identically; the counters accumulate. *)
