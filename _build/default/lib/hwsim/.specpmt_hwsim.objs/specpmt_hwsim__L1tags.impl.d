lib/hwsim/l1tags.ml: Addr Hashtbl Queue Specpmt_pmem
