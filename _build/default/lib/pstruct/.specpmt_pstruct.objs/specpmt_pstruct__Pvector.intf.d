lib/pstruct/pvector.mli: Addr Ctx Specpmt_pmem Specpmt_txn
