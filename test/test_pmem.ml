open Specpmt_pmem

let cfg = Config.small

let test_roundtrip () =
  let pm = Pmem.create cfg in
  Pmem.store_int pm 128 42;
  Alcotest.(check int) "volatile read" 42 (Pmem.load_int pm 128);
  Pmem.store_int pm 128 (-7);
  Alcotest.(check int) "overwrite" (-7) (Pmem.load_int pm 128)

let test_bytes_roundtrip () =
  let pm = Pmem.create cfg in
  let b = Bytes.of_string "hello, persistent world; spans lines for sure!!" in
  Pmem.store_bytes pm 60 b;
  (* 60 is mid-line, so this crosses a boundary *)
  Alcotest.(check string)
    "bytes roundtrip" (Bytes.to_string b)
    (Bytes.to_string (Pmem.load_bytes pm 60 (Bytes.length b)))

let test_unflushed_store_lost () =
  let pm = Pmem.create { cfg with crash_word_persist_prob = 0.0 } in
  Pmem.store_int pm 256 99;
  Pmem.crash pm;
  Alcotest.(check int) "lost without flush" 0 (Pmem.peek_media_int pm 256);
  Alcotest.(check int) "load sees media after crash" 0 (Pmem.load_int pm 256)

let test_flushed_store_survives () =
  let pm = Pmem.create { cfg with crash_word_persist_prob = 0.0 } in
  Pmem.store_int pm 256 99;
  Pmem.clwb pm 256;
  Pmem.sfence pm;
  Pmem.crash pm;
  Alcotest.(check int) "persisted" 99 (Pmem.peek_media_int pm 256)

let test_clwb_without_fence_still_persists () =
  (* ADR: acceptance by the write-pending queue is inside the persistence
     domain; the fence only contributes drain time *)
  let pm = Pmem.create { cfg with crash_word_persist_prob = 0.0 } in
  Pmem.store_int pm 512 7;
  Pmem.clwb pm 512;
  Pmem.crash pm;
  Alcotest.(check int) "in WPQ == persistent" 7 (Pmem.peek_media_int pm 512)

let test_dirty_words_coinflip_all () =
  let pm = Pmem.create { cfg with crash_word_persist_prob = 1.0 } in
  Pmem.store_int pm 64 1;
  Pmem.store_int pm 72 2;
  Pmem.crash pm;
  Alcotest.(check int) "word 0 leaked" 1 (Pmem.peek_media_int pm 64);
  Alcotest.(check int) "word 1 leaked" 2 (Pmem.peek_media_int pm 72)

let test_fuse () =
  let pm = Pmem.create cfg in
  Pmem.set_fuse pm (Some 3);
  Pmem.store_int pm 0 1;
  Pmem.store_int pm 8 2;
  Alcotest.check_raises "third event crashes" Pmem.Crash (fun () ->
      Pmem.store_int pm 16 3)

let test_fence_counted () =
  let pm = Pmem.create cfg in
  Pmem.store_int pm 0 1;
  Pmem.clwb pm 0;
  Pmem.sfence pm;
  let s = Pmem.stats pm in
  Alcotest.(check int) "one fence" 1 s.Stats.fences;
  Alcotest.(check int) "one clwb" 1 s.Stats.clwbs;
  Alcotest.(check int) "one media write" 1 s.Stats.pm_write_lines

let test_fence_costs_time () =
  let pm = Pmem.create cfg in
  Pmem.store_int pm 0 1;
  let before = (Pmem.stats pm).Stats.ns in
  Pmem.clwb pm 0;
  Pmem.sfence pm;
  let after = (Pmem.stats pm).Stats.ns in
  Alcotest.(check bool)
    "flush+fence costs at least a media write"
    true
    (after -. before >= cfg.Config.pm_write_ns)

let test_seq_writes_cheaper () =
  let run seq =
    let pm = Pmem.create cfg in
    let addr i = if seq then i * 64 else (i * 64 * 17) mod (1 lsl 18) in
    for i = 0 to 63 do
      Pmem.store_int pm (addr i) i;
      Pmem.clwb pm (addr i)
    done;
    Pmem.sfence pm;
    (Pmem.stats pm).Stats.ns
  in
  Alcotest.(check bool)
    "sequential flush stream is faster" true
    (run true < run false)

let test_capacity_eviction_persists () =
  let pm =
    Pmem.create
      { cfg with cache_capacity_lines = 8; crash_word_persist_prob = 0.0 }
  in
  (* dirty far more lines than the cache holds *)
  for i = 0 to 63 do
    Pmem.store_int pm (i * 64) (i + 1)
  done;
  let s = Pmem.stats pm in
  Alcotest.(check bool) "evictions happened" true (s.Stats.evictions > 0);
  (* an evicted line's content reached the media without any flush *)
  Alcotest.(check int) "evicted line persisted" 1 (Pmem.peek_media_int pm 0)

let test_eviction_cost_random () =
  (* regression: the victim's write-back cost used to be computed after
     the write-back had already advanced [last_persist_line] to the
     victim itself, so every capacity eviction billed the sequential
     rate no matter how scattered the victims were *)
  let pm =
    Pmem.create
      { cfg with cache_capacity_lines = 8; crash_word_persist_prob = 0.0 }
  in
  (* dirty lines at stride 2: no evicted line is ever adjacent to the
     previously persisted one, so every write-back is a random write *)
  for i = 0 to 63 do
    Pmem.store_int pm (i * 2 * 64) (i + 1)
  done;
  let s = Pmem.stats pm in
  let e = s.Stats.evictions in
  Alcotest.(check bool) "evictions happened" true (e > 0);
  Alcotest.(check (float 1e-6))
    "every eviction bills the random-write rate"
    (float_of_int e *. cfg.Config.pm_write_ns)
    s.Stats.bg_ns

let test_clflushopt_leaves_no_stale_fifo_entry () =
  (* regression: clflushopt used to leave the invalidated line's entry
     in the FIFO eviction queue; re-fetching the line then gave it two
     queue entries, and the stale one evicted the hot line out of turn *)
  let pm =
    Pmem.create
      { cfg with cache_capacity_lines = 8; crash_word_persist_prob = 0.0 }
  in
  for i = 0 to 7 do
    Pmem.store_int pm (i * 64) (i + 1)
  done;
  Pmem.clflushopt pm 0;
  (* re-fetch line 0: it must re-enter the FIFO as the newest resident *)
  Pmem.store_int pm 0 42;
  (* ninth resident line forces one eviction — of line 1, the oldest *)
  Pmem.store_int pm (8 * 64) 9;
  Alcotest.(check int) "one eviction" 1 (Pmem.stats pm).Stats.evictions;
  let r0 = (Pmem.stats pm).Stats.pm_read_lines in
  ignore (Pmem.load_int pm 0);
  Alcotest.(check int) "hot line 0 still resident" r0
    (Pmem.stats pm).Stats.pm_read_lines;
  ignore (Pmem.load_int pm 64);
  Alcotest.(check int) "line 1 was the victim" (r0 + 1)
    (Pmem.stats pm).Stats.pm_read_lines

let test_trace_ranged_ops () =
  let pm = Pmem.create cfg in
  Pmem.set_trace pm 4;
  let b = Pmem.load_bytes pm 0 24 in
  Pmem.store_bytes pm 128 b;
  (* ranged accesses appear in the ring as one op each, not as their
     per-line expansion *)
  match Pmem.recent_ops pm with
  | [ Pmem.Load_bytes (0, 24); Pmem.Store_bytes (128, 24) ] -> ()
  | ops ->
      Alcotest.failf "unexpected trace: %a"
        Fmt.(list ~sep:comma Pmem.pp_op)
        ops

let test_unmetered () =
  let pm = Pmem.create cfg in
  Pmem.with_unmetered pm (fun () ->
      Pmem.store_int pm 0 5;
      Pmem.clwb pm 0;
      Pmem.sfence pm);
  let s = Pmem.stats pm in
  Alcotest.(check int) "no stores counted" 0 s.Stats.stores;
  Alcotest.(check (float 0.0)) "no time counted" 0.0 s.Stats.ns;
  Alcotest.(check int) "state still changed" 5 (Pmem.peek_media_int pm 0)

let test_nt_store () =
  let pm = Pmem.create { cfg with crash_word_persist_prob = 0.0 } in
  (* leave unrelated dirty data in the same line; nt store must not lose it *)
  Pmem.store_int pm 1024 11;
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 77L;
  Pmem.nt_store_bytes pm 1032 b;
  Alcotest.(check int) "nt content persistent" 77 (Pmem.peek_media_int pm 1032);
  Alcotest.(check int) "merged dirty neighbour" 11 (Pmem.load_int pm 1024)

let test_clflushopt_invalidates () =
  let pm = Pmem.create { cfg with crash_word_persist_prob = 0.0 } in
  Pmem.store_int pm 128 7;
  Pmem.clflushopt pm 128;
  Pmem.crash pm;
  Alcotest.(check int) "persisted" 7 (Pmem.peek_media_int pm 128);
  (* the line was dropped: a load after the flush misses and charges a
     media read *)
  let pm2 = Pmem.create cfg in
  Pmem.store_int pm2 128 7;
  Pmem.clflushopt pm2 128;
  let r0 = (Pmem.stats pm2).Stats.pm_read_lines in
  ignore (Pmem.load_int pm2 128);
  Alcotest.(check int) "reload misses" (r0 + 1)
    (Pmem.stats pm2).Stats.pm_read_lines

let test_eadr_semantics () =
  (* with persistent caches, a plain store survives the crash and flushes
     cost nothing but their issue overhead *)
  let pm =
    Pmem.create { cfg with crash_word_persist_prob = 0.0; eadr = true }
  in
  Pmem.store_int pm 256 99;
  let t0 = (Pmem.stats pm).Stats.ns in
  Pmem.clwb pm 256;
  Pmem.sfence pm;
  let dt = (Pmem.stats pm).Stats.ns -. t0 in
  Alcotest.(check bool) "flush+fence nearly free" true (dt < 20.0);
  Pmem.crash pm;
  Alcotest.(check int) "unflushed store survives" 99
    (Pmem.peek_media_int pm 256)

let test_trace_ring () =
  let pm = Pmem.create cfg in
  Alcotest.(check (list reject)) "disabled by default" [] (Pmem.recent_ops pm)
  |> ignore;
  Pmem.set_trace pm 3;
  Pmem.store_int pm 0 1;
  Pmem.store_int pm 8 2;
  Pmem.clwb pm 0;
  Pmem.sfence pm;
  (* ring keeps only the 3 most recent events, oldest first *)
  (match Pmem.recent_ops pm with
  | [ Pmem.Store (8, 2); Pmem.Clwb 0; Pmem.Sfence ] -> ()
  | ops ->
      Alcotest.failf "unexpected trace: %a"
        Fmt.(list ~sep:comma Pmem.pp_op)
        ops);
  Pmem.set_trace pm 0;
  Pmem.store_int pm 16 3;
  Alcotest.(check int) "disabled again" 0 (List.length (Pmem.recent_ops pm))

let test_out_of_bounds () =
  let pm = Pmem.create cfg in
  Alcotest.check_raises "oob store"
    (Invalid_argument
       (Printf.sprintf "Pmem: address out of bounds: %d (+8)"
          cfg.Config.mem_size))
    (fun () -> Pmem.store_int pm cfg.Config.mem_size 1)

(* Property: with persist probability 0, media content equals exactly the
   model of "flushed or evicted" stores.  We avoid evictions by bounding
   addresses under the capacity. *)
let prop_flush_semantics =
  QCheck.Test.make ~name:"media = flushed stores" ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 40)
        (pair (int_bound 100) (pair (int_bound 1000) bool)))
    (fun ops ->
      let pm =
        Pmem.create { cfg with crash_word_persist_prob = 0.0 }
      in
      let model = Hashtbl.create 16 in
      let flushed = Hashtbl.create 16 in
      List.iter
        (fun (cell, (v, flush)) ->
          let a = cell * 8 in
          Pmem.store_int pm a v;
          Hashtbl.replace model a v;
          if flush then begin
            (* flushing the line persists every word of it *)
            let line = Addr.line_of a in
            Pmem.clwb pm a;
            Hashtbl.iter
              (fun a' v' ->
                if Addr.line_of a' = line then Hashtbl.replace flushed a' v')
              model
          end)
        ops;
      Pmem.sfence pm;
      Pmem.crash pm;
      Hashtbl.fold
        (fun a v acc -> acc && Pmem.peek_media_int pm a = v)
        flushed true)

let () =
  Alcotest.run "pmem"
    [
      ( "basics",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "unflushed store lost" `Quick
            test_unflushed_store_lost;
          Alcotest.test_case "flushed store survives" `Quick
            test_flushed_store_survives;
          Alcotest.test_case "clwb w/o fence persists (ADR)" `Quick
            test_clwb_without_fence_still_persists;
          Alcotest.test_case "dirty words can leak" `Quick
            test_dirty_words_coinflip_all;
          Alcotest.test_case "capacity eviction persists" `Quick
            test_capacity_eviction_persists;
          Alcotest.test_case "random evictions bill random-write rate" `Quick
            test_eviction_cost_random;
          Alcotest.test_case "clflushopt leaves no stale FIFO entry" `Quick
            test_clflushopt_leaves_no_stale_fifo_entry;
          Alcotest.test_case "trace records ranged ops" `Quick
            test_trace_ranged_ops;
          Alcotest.test_case "nt store" `Quick test_nt_store;
          Alcotest.test_case "clflushopt invalidates" `Quick
            test_clflushopt_invalidates;
          Alcotest.test_case "eADR semantics" `Quick test_eadr_semantics;
          Alcotest.test_case "operation trace ring" `Quick test_trace_ring;
          QCheck_alcotest.to_alcotest prop_flush_semantics;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "fence counted" `Quick test_fence_counted;
          Alcotest.test_case "fence costs time" `Quick test_fence_costs_time;
          Alcotest.test_case "sequential cheaper" `Quick
            test_seq_writes_cheaper;
          Alcotest.test_case "unmetered" `Quick test_unmetered;
        ] );
      ( "crash injection",
        [ Alcotest.test_case "fuse" `Quick test_fuse ] );
    ]
