lib/hwsim/tlb.ml: Hashtbl Hwconfig Pmem Queue Specpmt_pmem
