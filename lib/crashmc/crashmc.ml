open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn
open Specpmt_backends
module Hw = Specpmt_hwtxn
module Pbtree = Specpmt_pstruct.Pbtree
module Obs = Specpmt_obs
module Json = Specpmt_obs.Json
module Par = Specpmt_par.Par

(* ------------------------------------------------------------------ *)
(* Persist choices                                                     *)
(* ------------------------------------------------------------------ *)

type choice =
  | Persist_all
  | Persist_none
  | Keep_line of int
  | Drop_line of int
  | Keep_word of int
  | Drop_word of int

let choice_to_string = function
  | Persist_all -> "all"
  | Persist_none -> "none"
  | Keep_line k -> Printf.sprintf "keepline:%d" k
  | Drop_line k -> Printf.sprintf "dropline:%d" k
  | Keep_word k -> Printf.sprintf "keepword:%d" k
  | Drop_word k -> Printf.sprintf "dropword:%d" k

let choice_of_string s =
  let indexed prefix mk =
    let p = String.length prefix in
    match int_of_string_opt (String.sub s p (String.length s - p)) with
    | Some k when k >= 0 -> Ok (mk k)
    | _ -> Error (Printf.sprintf "bad index in crash choice %S" s)
  in
  let has p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  match s with
  | "all" -> Ok Persist_all
  | "none" -> Ok Persist_none
  | _ when has "keepline:" -> indexed "keepline:" (fun k -> Keep_line k)
  | _ when has "dropline:" -> indexed "dropline:" (fun k -> Drop_line k)
  | _ when has "keepword:" -> indexed "keepword:" (fun k -> Keep_word k)
  | _ when has "dropword:" -> indexed "dropword:" (fun k -> Drop_word k)
  | _ ->
      Error
        (Printf.sprintf
           "unknown crash choice %S \
            (all|none|keepline:K|dropline:K|keepword:K|dropword:K)"
           s)

type policy = [ `All | `None | `Lines | `Words ]

let default_policies : policy list = [ `All; `None; `Lines ]

let policies_of_string s =
  let parse = function
    | "all" -> Ok `All
    | "none" -> Ok `None
    | "lines" -> Ok `Lines
    | "words" -> Ok `Words
    | p -> Error (Printf.sprintf "unknown policy %S (all|none|lines|words)" p)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse p with
        | Ok pol -> collect (pol :: acc) rest
        | Error _ as e -> e)
  in
  match
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  with
  | [] -> Error "empty policy list"
  | ps -> collect [] ps

(* The oracle handed to [Pmem.crash_with].  Built while the dirty set is
   still inspectable (before the crash is taken); an out-of-range index
   has no line/word to name and degrades to all-drain. *)
let persist_pred pm = function
  | Persist_all -> fun _ -> true
  | Persist_none -> fun _ -> false
  | Keep_line k -> (
      match List.nth_opt (Pmem.dirty_lines pm) k with
      | Some li -> fun a -> Addr.line_index a = li
      | None -> fun _ -> true)
  | Drop_line k -> (
      match List.nth_opt (Pmem.dirty_lines pm) k with
      | Some li -> fun a -> Addr.line_index a <> li
      | None -> fun _ -> true)
  | Keep_word k -> (
      match List.nth_opt (Pmem.dirty_words pm) k with
      | Some w -> fun a -> a = w
      | None -> fun _ -> true)
  | Drop_word k -> (
      match List.nth_opt (Pmem.dirty_words pm) k with
      | Some w -> fun a -> a <> w
      | None -> fun _ -> true)

(* ------------------------------------------------------------------ *)
(* Targets                                                             *)
(* ------------------------------------------------------------------ *)

type instance = {
  run_tx : int -> (Ctx.ctx -> unit) -> unit;
      (* the argument is the transaction's index in the workload — the
         multi-thread target uses it to spread transactions round-robin
         over its threads *)
  recover : unit -> unit;
  acked : (unit -> int) option;
      (* group-commit targets: transactions whose durability the target
         has acknowledged (their batch's seal fence retired).  A crash
         may then legally recover to any state between [acked] and
         [committed + 1] — unsealed transactions returned from [run_tx]
         without being durable yet.  [None] for per-transaction-fence
         targets, where [committed] is the floor. *)
  exec : (Ctx.ctx -> int -> int -> unit) option;
      (* how one program op [(c, v)] executes inside its transaction.
         [None] = the flat cell table ([ctx.write (base + 8c) v]);
         structure targets substitute their own transition (the btree
         target maps [(c, 0)] to a removal, anything else to an
         insert).  The reference model is shared either way: cell [c]
         holds [v] after the op, with 0 meaning absent. *)
  read_state : (unit -> int array) option;
      (* how the recovered state is read back after [recover].  [None]
         = peek the flat cell table; structure targets rediscover their
         structure from persistent roots, validate its invariants (any
         exception is recorded as an audit failure) and fold it into
         the reference's cell-array shape. *)
}

type target = {
  t_name : string;
  make : Heap.t -> cells:int -> total_txs:int -> instance;
  t_program :
    (cells:int -> txs:int -> max_writes:int -> seed:int ->
     (int * int) list list)
    option;
      (* workload generator override; [None] = [gen_program] (adoption
         tx + random writes).  Structure targets substitute a program
         whose op mix provably exercises their structural transitions. *)
}

let of_backend (b : Ctx.backend) =
  {
    run_tx = (fun _ f -> b.Ctx.run_tx f);
    recover = b.Ctx.recover;
    acked = None;
    exec = None;
    read_state = None;
  }

(* Small log geometry for the SpecPMT variants: with the default 4 KiB
   blocks and 1 MiB threshold, a workload small enough to explore
   exhaustively would never chain a block or compact — precisely the
   code recovery depends on.  256 bytes is the arena's minimum block. *)
let mc_params ~data_persist =
  {
    Spec_soft.data_persist;
    block_bytes = 256;
    reclaim = Spec_soft.Threshold 512;
    recovery = Spec_soft.Coalesce;
  }

let sw_target k =
  (* SpecPMT variants get the small exploration geometry; the registry
     knows which ones those are *)
  let spec_params =
    Option.map
      (fun (p : Spec_soft.params) ->
        mc_params ~data_persist:p.Spec_soft.data_persist)
      (Registry.spec_params k)
  in
  {
    t_name = Registry.name k;
    make =
      (fun heap ~cells:_ ~total_txs:_ ->
        of_backend (Registry.create ?spec_params heap k));
    t_program = None;
  }

(* Differential oracle: the same workload audited under the legacy
   replay-every-record recovery.  A divergence between this target and
   the default SpecSPMT one localises a bug to the coalescing path. *)
let replay_target =
  {
    t_name = "SpecSPMT-replay";
    t_program = None;
    make =
      (fun heap ~cells:_ ~total_txs:_ ->
        of_backend
          (fst
             (Spec_soft.create heap
                {
                  (mc_params ~data_persist:false) with
                  Spec_soft.recovery = Spec_soft.Replay;
                })));
  }

(* Adaptive reclamation under crash exploration: aggressive knobs so the
   index-driven compactor (prefix evacuation included) actually fires
   inside the tiny exhaustive workloads. *)
let adaptive_target =
  {
    t_name = "SpecSPMT-adaptive";
    t_program = None;
    make =
      (fun heap ~cells:_ ~total_txs:_ ->
        of_backend
          (fst
             (Spec_soft.create heap
                {
                  (mc_params ~data_persist:false) with
                  Spec_soft.reclaim =
                    Spec_soft.Adaptive
                      {
                        min_log_bytes = 512;
                        stale_trigger = 0.3;
                        bg_duty = 1.0;
                      };
                })));
  }

let mt_target =
  {
    t_name = "SpecSPMT-MT";
    t_program = None;
    make =
      (fun heap ~cells:_ ~total_txs:_ ->
        let mt =
          Spec_mt.create ~params:(mc_params ~data_persist:false) heap ~threads:3
        in
        {
          run_tx =
            (fun i f -> (Spec_mt.thread mt (i mod Spec_mt.threads mt)).Ctx.run_tx f);
          recover = (fun () -> Spec_mt.recover mt);
          acked = None;
          exec = None;
          read_state = None;
        });
  }

(* Group commit (the service layer's batched path): transactions commit
   tentative records (poisoned checksum, no fence) and every
   [batch_max]-th transaction seals the batch under one flush run + one
   fence.  The adoption transaction (index 0) seals alone — until a cell
   has a {e sealed} record, a torn in-place store to it is irrevocable —
   exactly as the service layer adopts its key table outside any batch.
   The [acked] hook tells the auditor the durable floor: a crash may
   recover to any state from the last seal up to [committed + 1]
   (unsealed transactions executed but were never acknowledged). *)
let batched_target =
  let batch_max = 3 in
  {
    t_name = "SpecSPMT-batched";
    t_program = None;
    make =
      (fun heap ~cells:_ ~total_txs ->
        let b, rt = Spec_soft.create heap (mc_params ~data_persist:false) in
        let acked = ref 0 and open_txs = ref 0 in
        {
          run_tx =
            (fun i f ->
              if not (Spec_soft.in_batch rt) then Spec_soft.batch_begin rt;
              b.Ctx.run_tx f;
              incr open_txs;
              if i = 0 || !open_txs >= batch_max || i = total_txs - 1
              then begin
                ignore (Spec_soft.batch_end rt);
                (* the seal fence retired: everything in the batch is
                   durable and can be acknowledged *)
                acked := !acked + !open_txs;
                open_txs := 0
              end);
          recover =
            (fun () ->
              b.Ctx.recover ();
              open_txs := 0);
          acked = Some (fun () -> !acked);
          exec = None;
          read_state = None;
        });
  }

(* Mechanism switch-out mid-workload (Section 4.3.1): the first half of
   the transactions run under speculative logging, then [switch_out]
   persists the covered data and invalidates the log, and the rest run
   under PMDK-style undo on the same pool.  Recovery must work at every
   crash point of all three phases. *)
let switch_target =
  {
    t_name = "SpecSPMT+switch";
    t_program = None;
    make =
      (fun heap ~cells:_ ~total_txs ->
        let spec_b, spec_rt =
          Spec_soft.create heap (mc_params ~data_persist:false)
        in
        let pmdk = Registry.create heap Registry.Pmdk in
        let switch_at = max 1 (total_txs / 2) in
        let switched = ref false in
        {
          run_tx =
            (fun i f ->
              if i < switch_at then spec_b.Ctx.run_tx f
              else begin
                if not !switched then begin
                  switched := true;
                  ignore (Spec_soft.switch_out spec_rt)
                end;
                pmdk.Ctx.run_tx f
              end);
          recover =
            (fun () ->
              (* the speculative replay is a no-op once the log has been
                 invalidated; before (or during) the switch the undo log
                 is empty and PMDK's rollback is the no-op instead *)
              spec_b.Ctx.recover ();
              pmdk.Ctx.recover ());
          acked = None;
          exec = None;
          read_state = None;
        });
  }

(* Composite structure target: the workload drives a persistent B-link
   tree (Pbtree, order 4 — small enough that a couple dozen keys force
   every structural transition) instead of the flat cell table.  An op
   [(c, 0)] is a removal, anything else an insert/overwrite, so the
   shared array reference model still applies with 0 meaning absent.
   The recovered state is read back by rediscovering the tree from its
   header through an unmetered peek context, structurally validating it
   ([Pbtree.check] — a violation is an audit failure, not a harness
   crash) and folding the live bindings into the reference's cell-array
   shape.  Every crash point therefore audits BOTH atomic durability of
   the mapping and structural integrity of the recovered tree: splits,
   merges and root moves must be transactionally invisible. *)
let btree_order = 4

(* Three phases, [1 + txs] transactions like [gen_program]'s shape:
   tx 0 bulk-inserts every cell ascending (the adoption analogue —
   it alone drives leaf splits, internal splits and root growth at
   order 4); then [ceil(2/3 txs)] random mixed transactions (~1/4
   removals) churn the interior; then the remaining transactions remove
   ascending slices covering the whole keyspace, forcing borrows,
   merges and root collapse back to a single leaf. *)
let btree_program ~cells ~txs ~max_writes ~seed =
  let rand = Random.State.make [| 0xB7EE; seed |] in
  let grow_txs = max 1 (((2 * txs) + 2) / 3) in
  let shrink_txs = txs - grow_txs in
  let bulk = List.init cells (fun c -> (c, 1 + (c * 7))) in
  let churn =
    List.init (grow_txs - 1) (fun _ ->
        let n = 1 + Random.State.int rand max_writes in
        List.init n (fun _ ->
            let c = Random.State.int rand cells in
            if Random.State.int rand 4 = 0 then (c, 0)
            else (c, 1 + Random.State.int rand 1_000_000)))
  in
  let shrink =
    if shrink_txs < 1 then []
    else
      let per = (cells + shrink_txs - 1) / shrink_txs in
      List.init shrink_txs (fun i ->
          let lo = i * per and hi = min cells ((i + 1) * per) in
          if lo >= hi then [] else List.init (hi - lo) (fun j -> (lo + j, 0)))
  in
  (bulk :: churn) @ shrink

let btree_target =
  {
    t_name = "SpecSPMT-btree";
    t_program = Some btree_program;
    make =
      (fun heap ~cells ~total_txs:_ ->
        let b, _rt = Spec_soft.create heap (mc_params ~data_persist:false) in
        (* the tree is created before the fuse arms (make runs pre-
           workload), so its header cell is durably reachable at every
           explored crash point *)
        let tree =
          b.Ctx.run_tx (fun ctx -> Pbtree.create ~order:btree_order ctx ())
        in
        let pm = Heap.pmem heap in
        (* mirror the live handle so every explored crash point also
           exercises the shadow's transactional staging: deltas commit
           on the outcome hook, and a Pmem.Crash escaping run_tx drops
           them.  The mirror is never trusted after the crash — the
           recovery audit below rebuilds a fresh one from media. *)
        Pbtree.attach_shadow (Ctx.peek_ctx pm) tree;
        {
          run_tx = (fun _ f -> b.Ctx.run_tx f);
          recover = b.Ctx.recover;
          acked = None;
          exec =
            Some
              (fun ctx c v ->
                if v = 0 then ignore (Pbtree.remove ctx tree c)
                else Pbtree.insert ctx tree c v);
          read_state =
            Some
              (fun () ->
                let ctx = Ctx.peek_ctx pm in
                let t = Pbtree.of_header ctx (Pbtree.header tree) in
                Pbtree.check ctx t;
                (* shadow-coherence audit: rebuild a mirror from the
                   recovered media, then field-compare it against a
                   direct media walk ([verify_shadow] raises on any
                   divergence — same failure class as [check]) and
                   serve the state readback through it, so the audited
                   bindings are the mirror's, not the device's *)
                Pbtree.attach_shadow ctx t;
                Pbtree.verify_shadow ctx t;
                let got = Array.make cells 0 in
                Pbtree.iter ctx t (fun k v -> got.(k) <- v);
                got);
        });
  }

(* Structural-coverage probe for the btree program: run it uninterrupted
   on a fresh device and return the tree's transition counters, so a
   test can assert the explored workload actually reaches leaf splits,
   internal splits, merges and root growth/collapse. *)
let btree_coverage ?(cells = 24) ?(txs = 12) ?(max_writes = 6) ~seed () =
  let heap = Heap.create (Pmem.create ~seed Config.small) in
  let b, _rt = Spec_soft.create heap (mc_params ~data_persist:false) in
  let tree =
    b.Ctx.run_tx (fun ctx -> Pbtree.create ~order:btree_order ctx ())
  in
  List.iter
    (fun tx ->
      b.Ctx.run_tx (fun ctx ->
          List.iter
            (fun (c, v) ->
              if v = 0 then ignore (Pbtree.remove ctx tree c)
              else Pbtree.insert ctx tree c v)
            tx))
    (btree_program ~cells ~txs ~max_writes ~seed);
  Pbtree.stats tree

let hw_target k =
  {
    t_name = Hw.Hw_registry.name k;
    make =
      (fun heap ~cells:_ ~total_txs:_ ->
        of_backend (Hw.Hw_registry.create heap k));
    t_program = None;
  }

(* Recoverability is a property of the built backend, so probe each kind
   once on a scratch pool rather than duplicating the registry's table. *)
let recoverable_sw =
  lazy
    (List.filter
       (fun k ->
         let heap = Heap.create (Pmem.create Config.small) in
         (Registry.create heap k).Ctx.supports_recovery)
       Registry.all)

let recoverable_hw =
  lazy
    (List.filter
       (fun k ->
         let heap = Heap.create (Pmem.create Config.small) in
         (Hw.Hw_registry.create heap k).Ctx.supports_recovery)
       Hw.Hw_registry.all)

let targets () =
  List.map sw_target (Lazy.force recoverable_sw)
  @ [ replay_target; adaptive_target; mt_target; switch_target;
      batched_target; btree_target ]
  @ List.map hw_target (Lazy.force recoverable_hw)

let target_names () = List.map (fun t -> t.t_name) (targets ())

let target_of_name name =
  List.find_opt
    (fun t -> String.lowercase_ascii t.t_name = String.lowercase_ascii name)
    (targets ())

(* ------------------------------------------------------------------ *)
(* Workload and reference model                                        *)
(* ------------------------------------------------------------------ *)

(* Transaction 0 adopts every cell (the snapshot of Section 4.3.2); the
   rest are random writes.  Everything derives from [seed]. *)
let gen_program ~cells ~txs ~max_writes ~seed =
  let rand = Random.State.make [| 0xC4A5; seed |] in
  List.init cells (fun i -> (i, 0))
  :: List.init txs (fun _ ->
         let n = 1 + Random.State.int rand max_writes in
         List.init n (fun _ ->
             (Random.State.int rand cells, 1 + Random.State.int rand 1_000_000)))

(* [states.(k)] = the cell array after the first [k] transactions. *)
let reference ~cells program =
  let state = Array.make cells 0 in
  let states = Array.make (List.length program + 1) [||] in
  states.(0) <- Array.copy state;
  List.iteri
    (fun i tx ->
      List.iter (fun (c, v) -> state.(c) <- v) tx;
      states.(i + 1) <- Array.copy state)
    program;
  states

let build tgt ~seed ~cells ~total_txs =
  let pm = Pmem.create ~seed Config.small in
  let heap = Heap.create pm in
  let inst = tgt.make heap ~cells ~total_txs in
  let base = Heap.alloc heap (cells * 8) in
  (pm, inst, base)

let run_workload pm inst ~base program ~fuse =
  Pmem.set_fuse pm fuse;
  let exec =
    match inst.exec with
    | Some f -> f
    | None -> fun ctx c v -> ctx.Ctx.write (base + (c * 8)) v
  in
  let committed = ref 0 in
  let crashed =
    try
      List.iteri
        (fun i tx ->
          inst.run_tx i (fun ctx ->
              List.iter (fun (c, v) -> exec ctx c v) tx);
          incr committed)
        program;
      Pmem.set_fuse pm None;
      false
    with Pmem.Crash -> true
  in
  (!committed, crashed)

(* Recovered-state readback: the flat table peek, or the target's own
   structural readback ([read_state]) when it has one. *)
let read_back pm inst ~base ~cells =
  match inst.read_state with
  | Some f -> f ()
  | None ->
      Array.init cells (fun i -> Pmem.peek_volatile_int pm (base + (i * 8)))

(* Atomic durability: the recovered cells must match the reference after
   [committed] or [committed + 1] transactions (the +1 covers a crash
   after the commit point but before control returned).  A group-commit
   target supplies [floor], the count of {e acknowledged} transactions:
   executed-but-unsealed transactions may legally vanish at a crash, and
   a crash inside the seal durably commits any prefix of the batch, so
   the recovered state may match any reference state from [floor] to
   [committed + 1] — never an out-of-order or torn one. *)
let audit ?floor states committed got =
  let hi = min (committed + 1) (Array.length states - 1) in
  let lo =
    match floor with None -> committed | Some f -> min f committed
  in
  let rec check j = j <= hi && (got = states.(j) || check (j + 1)) in
  check lo

(* ------------------------------------------------------------------ *)
(* One case                                                            *)
(* ------------------------------------------------------------------ *)

type case = {
  c_committed : int;
  c_dirty_lines : int;
  c_dirty_words : int;
  c_ok : bool;
  c_error : string option;
  c_got : int array;
}

(* Execute the workload on a fresh device with the fuse at [fuse], take
   the crash under [choice], recover, audit.  [None] when the fuse
   outlived the workload. *)
let run_case tgt ~seed ~cells ~program ~states ~fuse ~choice =
  Obs.Trace.clear ();
  let pm, inst, base =
    build tgt ~seed ~cells ~total_txs:(List.length program)
  in
  let committed, crashed = run_workload pm inst ~base program ~fuse:(Some fuse) in
  if not crashed then None
  else begin
    let c_dirty_lines = List.length (Pmem.dirty_lines pm) in
    let c_dirty_words = List.length (Pmem.dirty_words pm) in
    let persist = persist_pred pm choice in
    Pmem.crash_with pm ~persist;
    (* structural readback can itself detect corruption (a btree
       [check] violation): fold it into the same failure shape as a
       recovery exception *)
    match
      inst.recover ();
      read_back pm inst ~base ~cells
    with
    | got ->
        (* the volatile ack counter survives the simulated crash — read
           it after recovery, exactly like a client that kept its own
           record of which requests were acknowledged *)
        let floor = Option.map (fun f -> f ()) inst.acked in
        Some
          {
            c_committed = committed;
            c_dirty_lines;
            c_dirty_words;
            c_ok = audit ?floor states committed got;
            c_error = None;
            c_got = got;
          }
    | exception e ->
        Some
          {
            c_committed = committed;
            c_dirty_lines;
            c_dirty_words;
            c_ok = false;
            c_error = Some (Printexc.to_string e);
            c_got = [||];
          }
  end

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

type failure = {
  fuse : int;
  choice : choice;
  committed : int;
  error : string option;
  expected : int array;
  expected_next : int array option;
  got : int array;
  repro : string;
  trace : string list;
}

type report = {
  scheme : string;
  seed : int;
  cells : int;
  txs : int;
  max_writes : int;
  budget : int;
  total_events : int;
  stride : int;
  points : int;
  cases : int;
  passes : int;
  failures : failure list;
}

(* Adversarial subsets are capped per point: the first lines/words of
   the dirty set carry the structures under test (log metadata persists
   before data in every scheme here), and the cap keeps the case count
   proportional to the visited points rather than to the dirty-set
   size. *)
let cap_lines = 3
let cap_words = 4

let choices_for ~(policies : policy list) ~ndl ~ndw =
  List.concat_map
    (function
      | `All -> [ Persist_all ]
      | `None -> [ Persist_none ]
      | `Lines ->
          List.concat
            (List.init (min ndl cap_lines) (fun k ->
                 [ Drop_line k; Keep_line k ]))
      | `Words ->
          List.concat
            (List.init (min ndw cap_words) (fun k ->
                 [ Drop_word k; Keep_word k ])))
    policies

(* Expected cases per crash point, for the stride choice only. *)
let est_cases (policies : policy list) =
  1
  + (if List.mem `None policies then 1 else 0)
  + (if List.mem `Lines policies then 2 * cap_lines - 2 else 0)
  + if List.mem `Words policies then 2 * cap_words - 2 else 0

let get_target scheme =
  match target_of_name scheme with
  | Some t -> t
  | None ->
      Fmt.invalid_arg "crashmc: unknown or non-recoverable scheme %S (try: %s)"
        scheme
        (String.concat ", " (target_names ()))

let mk_failure ~scheme ~seed ~cells ~txs ~max_writes ~states ~fuse ~choice
    ~trace (r : case) =
  {
    fuse;
    choice;
    committed = r.c_committed;
    error = r.c_error;
    expected = states.(r.c_committed);
    expected_next =
      (if r.c_committed + 1 < Array.length states then
         Some states.(r.c_committed + 1)
       else None);
    got = r.c_got;
    repro =
      Printf.sprintf
        "specpmt_run explore --scheme '%s' --seed %d --cells %d --txs %d \
         --max-writes %d --fuse %d --choice %s"
        scheme seed cells txs max_writes fuse (choice_to_string choice);
    trace;
  }

(* Run one case and, when it fails, harvest its formatted trace right
   away: the ring is domain-local and the next case on this domain
   clears it, so the capture must happen on the domain that executed the
   case, before it runs anything else.  Passing cases skip the
   formatting — the hot path of a clean sweep. *)
let run_case_traced tgt ~seed ~cells ~program ~states ~fuse ~choice =
  let r = run_case tgt ~seed ~cells ~program ~states ~fuse ~choice in
  let trace =
    match r with
    | Some c when not c.c_ok ->
        List.map
          (fun e -> Format.asprintf "%a" Obs.Trace.pp_event e)
          (Obs.Trace.recent ())
    | _ -> []
  in
  (r, trace)

let explore ?(cells = 8) ?(txs = 6) ?(max_writes = 4) ?(budget = 2000)
    ?(policies = default_policies) ?(jobs = 1) ~scheme ~seed () =
  let tgt = get_target scheme in
  (* [get_target] forced the recoverability probes; the program, states
     and target closure below are the read-only plan every worker domain
     shares. *)
  Obs.Trace.set_capacity 64;
  let gen = Option.value tgt.t_program ~default:gen_program in
  let program = gen ~cells ~txs ~max_writes ~seed in
  let states = reference ~cells program in
  (* dry run: measure the crash-point space, check the workload itself *)
  let total_events =
    let pm, inst, base =
      build tgt ~seed ~cells ~total_txs:(List.length program)
    in
    let e0 = Pmem.events pm in
    let committed, crashed = run_workload pm inst ~base program ~fuse:None in
    if crashed || committed <> List.length program then
      Fmt.invalid_arg "crashmc: uninterrupted %s workload did not complete"
        scheme;
    let final = read_back pm inst ~base ~cells in
    if final <> states.(committed) then
      Fmt.invalid_arg "crashmc: uninterrupted %s workload diverges from the \
                       reference model"
        scheme;
    Pmem.events pm - e0
  in
  let stride = max 1 (total_events * est_cases policies / max 1 budget) in
  let points = ref 0 and cases = ref 0 and passes = ref 0 in
  let failures = ref [] in
  let record ~fuse choice (r : case) trace =
    incr cases;
    if r.c_ok then incr passes
    else
      failures :=
        mk_failure ~scheme ~seed ~cells ~txs ~max_writes ~states ~fuse ~choice
          ~trace r
        :: !failures
  in
  if jobs <= 1 then begin
    (* serial: the budget short-circuits execution, not just recording *)
    let fuse = ref 1 in
    while !fuse <= total_events && !cases < budget do
      incr points;
      (* all-drain first: it both audits the fully-persisted crash state
         and sizes the dirty set for the adversarial families *)
      (match
         run_case_traced tgt ~seed ~cells ~program ~states ~fuse:!fuse
           ~choice:Persist_all
       with
      | None, _ -> () (* unreachable: fuse <= total_events always crashes *)
      | Some probe, ptrace ->
          record ~fuse:!fuse Persist_all probe ptrace;
          let rest =
            choices_for ~policies ~ndl:probe.c_dirty_lines
              ~ndw:probe.c_dirty_words
            |> List.filter (fun c -> c <> Persist_all)
          in
          List.iter
            (fun choice ->
              if !cases < budget then
                match
                  run_case_traced tgt ~seed ~cells ~program ~states
                    ~fuse:!fuse ~choice
                with
                | None, _ -> ()
                | Some r, tr -> record ~fuse:!fuse choice r tr)
            rest);
      fuse := !fuse + stride
    done
  end
  else begin
    (* Parallel: every strided crash point is an independent job (each
       case builds its own device), fanned over the domain pool; the
       index-ordered results are then reduced with {e exactly} the
       serial loop's budget accounting, so the recorded report is
       byte-identical to [jobs = 1].  Workers don't see the global case
       count, so up to one stride-window of cases past the budget may
       execute and be discarded — bounded waste, traded for not sharing
       a counter. *)
    let npoints =
      if total_events < 1 then 0 else 1 + ((total_events - 1) / stride)
    in
    let run_point fuse =
      match
        run_case_traced tgt ~seed ~cells ~program ~states ~fuse
          ~choice:Persist_all
      with
      | None, _ -> []
      | Some probe, ptrace ->
          let rest =
            choices_for ~policies ~ndl:probe.c_dirty_lines
              ~ndw:probe.c_dirty_words
            |> List.filter (fun c -> c <> Persist_all)
          in
          (Persist_all, probe, ptrace)
          :: List.filter_map
               (fun choice ->
                 match
                   run_case_traced tgt ~seed ~cells ~program ~states ~fuse
                     ~choice
                 with
                 | None, _ -> None
                 | Some r, tr -> Some (choice, r, tr))
               rest
    in
    let per_point =
      Par.run ~jobs ~n:npoints (fun i -> run_point (1 + (i * stride)))
    in
    (* sequential replay of the serial accounting, in submission order:
       a point is entered only while under budget, its all-drain case is
       always recorded, every later choice only while under budget *)
    Array.iteri
      (fun i results ->
        if !cases < budget then begin
          incr points;
          List.iteri
            (fun j (choice, r, trace) ->
              if j = 0 || !cases < budget then
                record ~fuse:(1 + (i * stride)) choice r trace)
            results
        end)
      per_point
  end;
  {
    scheme = tgt.t_name;
    seed;
    cells;
    txs;
    max_writes;
    budget;
    total_events;
    stride;
    points = !points;
    cases = !cases;
    passes = !passes;
    failures = List.rev !failures;
  }

type replay_result =
  | Run_completed
  | Audit_ok of int
  | Audit_failed of failure

let replay ?(cells = 8) ?(txs = 6) ?(max_writes = 4) ~scheme ~seed ~fuse
    ~choice () =
  let tgt = get_target scheme in
  Obs.Trace.set_capacity 64;
  let gen = Option.value tgt.t_program ~default:gen_program in
  let program = gen ~cells ~txs ~max_writes ~seed in
  let states = reference ~cells program in
  match run_case_traced tgt ~seed ~cells ~program ~states ~fuse ~choice with
  | None, _ -> Run_completed
  | Some r, _ when r.c_ok -> Audit_ok r.c_committed
  | Some r, trace ->
      Audit_failed
        (mk_failure ~scheme:tgt.t_name ~seed ~cells ~txs ~max_writes ~states
           ~fuse ~choice ~trace r)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_cells ppf a = Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ";") int) a

let pp_failure ppf f =
  Fmt.pf ppf "@[<v>fuse %d, choice %s: %d committed;@ " f.fuse
    (choice_to_string f.choice) f.committed;
  (match f.error with
  | Some e -> Fmt.pf ppf "recovery raised %s@ " e
  | None ->
      Fmt.pf ppf "recovered %a@ expected  %a" pp_cells f.got pp_cells
        f.expected;
      Option.iter (fun n -> Fmt.pf ppf "@ or        %a" pp_cells n)
        f.expected_next);
  Fmt.pf ppf "@ repro: %s@]" f.repro

let cells_json a = Json.List (Array.to_list (Array.map (fun v -> Json.Int v) a))

let failure_to_json f =
  Json.Obj
    [
      ("fuse", Json.Int f.fuse);
      ("choice", Json.Str (choice_to_string f.choice));
      ("committed", Json.Int f.committed);
      ( "error",
        match f.error with None -> Json.Null | Some e -> Json.Str e );
      ("expected", cells_json f.expected);
      ( "expected_next",
        match f.expected_next with None -> Json.Null | Some a -> cells_json a
      );
      ("got", cells_json f.got);
      ("repro", Json.Str f.repro);
      ("trace", Json.List (List.map (fun s -> Json.Str s) f.trace));
    ]

(* Bumped on any incompatible change to the report layout. *)
let schema_version = 1

let report_to_json ?wall_s r =
  let throughput =
    (* additive keys: harness timing, not part of the deterministic
       verdict set (strip them before comparing parallel/serial runs) *)
    match wall_s with
    | None -> []
    | Some w ->
        [
          ("wall_s", Json.Float w);
          ( "cases_per_sec",
            Json.Float
              (if w > 0.0 then float_of_int r.cases /. w else 0.0) );
        ]
  in
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("generator", Json.Str "specpmt-crashmc");
       ("scheme", Json.Str r.scheme);
       ("seed", Json.Int r.seed);
       ("cells", Json.Int r.cells);
       ("txs", Json.Int r.txs);
       ("max_writes", Json.Int r.max_writes);
       ("budget", Json.Int r.budget);
       ("total_events", Json.Int r.total_events);
       ("stride", Json.Int r.stride);
       ("points", Json.Int r.points);
       ("cases", Json.Int r.cases);
       ("passes", Json.Int r.passes);
       ("failures", Json.List (List.map failure_to_json r.failures));
     ]
    @ throughput)
