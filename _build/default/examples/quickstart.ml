(* Quickstart: open a pool, run speculative transactions, crash, recover.

     dune exec examples/quickstart.exe

   Shows the SpecPMT API of paper Figure 3: [tx_begin]/[splog]/[tx_commit]
   are folded into [run_tx] (every transactional write is speculatively
   logged automatically), and [recover_from_splog] is [recover]. *)

open Specpmt

let () =
  (* a simulated persistent-memory device and a formatted pool *)
  let pm = Pmem.create Pmem_config.default in
  let heap = Heap.create pm in

  (* the paper's headline scheme: software speculative logging *)
  let tx = create_scheme heap "SpecSPMT" in

  (* allocate two durable cells: a and b of the paper's example codelet *)
  let a = Heap.alloc heap 8 and b = Heap.alloc heap 8 in

  (* tx #1:  a = 1; splog(&a,1); b = 2; splog(&b,2); commit *)
  tx.Ctx.run_tx (fun ctx ->
      ctx.Ctx.write a 1;
      ctx.Ctx.write b 2);
  Printf.printf "committed:            a=%d b=%d\n" (Pmem.load_int pm a)
    (Pmem.load_int pm b);

  (* tx #2 crashes midway: its in-place updates may have leaked to the
     media, but the speculative log knows how to revoke them *)
  (try
     tx.Ctx.run_tx (fun ctx ->
         ctx.Ctx.write a 100;
         Pmem.set_fuse pm (Some 1) (* the next memory event crashes *);
         ctx.Ctx.write b 200)
   with Pmem.Crash -> print_endline "crash mid-transaction!");
  Pmem.crash pm;

  (* post-crash recovery replays the speculative log: committed updates
     are rebuilt, the interrupted transaction is revoked *)
  tx.Ctx.recover ();
  Printf.printf "after recovery:       a=%d b=%d\n" (Pmem.load_int pm a)
    (Pmem.load_int pm b);
  assert (Pmem.load_int pm a = 1 && Pmem.load_int pm b = 2);

  (* and the runtime keeps working after recovery *)
  tx.Ctx.run_tx (fun ctx -> ctx.Ctx.write a 7);
  Printf.printf "post-recovery commit: a=%d b=%d\n" (Pmem.load_int pm a)
    (Pmem.load_int pm b);

  (* what did crash consistency cost?  one fence per transaction: *)
  let s = Pmem.stats pm in
  Printf.printf "device: %d stores, %d flushes, %d fences, %.0f ns simulated\n"
    s.Stats.stores s.Stats.clwbs s.Stats.fences s.Stats.ns
