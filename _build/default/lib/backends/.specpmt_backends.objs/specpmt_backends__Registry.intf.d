lib/backends/registry.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
