examples/kvstore_crash.ml: Array Ctx Hashtbl Heap Pmem Pmem_config Printf Random Specpmt Specpmt_pstruct Sys
