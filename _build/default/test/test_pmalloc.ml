open Specpmt_pmem
open Specpmt_pmalloc

let mk () =
  let pm = Pmem.create Config.small in
  (pm, Heap.create pm)

let test_alignment () =
  let _, heap = mk () in
  for n = 1 to 200 do
    let a = Heap.alloc heap n in
    Alcotest.(check bool) "8-aligned" true (Addr.is_word_aligned a);
    Alcotest.(check bool) "in heap" true (a >= Layout.heap_base);
    Alcotest.(check bool) "usable" true (Heap.usable_size heap a >= n)
  done

let test_no_overlap () =
  let _, heap = mk () in
  let blocks = List.init 100 (fun i -> (Heap.alloc heap ((i mod 60) + 1), (i mod 60) + 1)) in
  let ranges = List.map (fun (a, _) -> (a, a + Heap.usable_size heap a)) blocks in
  List.iteri
    (fun i (s1, e1) ->
      List.iteri
        (fun j (s2, e2) ->
          if i < j then
            Alcotest.(check bool) "disjoint" true (e1 <= s2 || e2 <= s1))
        ranges)
    ranges

let test_reuse_after_free () =
  let _, heap = mk () in
  let a = Heap.alloc heap 64 in
  Heap.free heap a;
  let b = Heap.alloc heap 64 in
  Alcotest.(check int) "same block reused" a b

let test_double_free () =
  let _, heap = mk () in
  let a = Heap.alloc heap 32 in
  Heap.free heap a;
  Alcotest.(check bool) "double free raises" true
    (try
       Heap.free heap a;
       false
     with Invalid_argument _ -> true)

let test_live_bytes () =
  let _, heap = mk () in
  let a = Heap.alloc heap 100 in
  let live1 = Heap.live_bytes heap in
  Heap.free heap a;
  Alcotest.(check bool) "live shrinks on free" true (Heap.live_bytes heap < live1)

let test_open_existing_rebuilds_free_lists () =
  let pm, heap = mk () in
  let a = Heap.alloc heap 64 in
  let b = Heap.alloc heap 64 in
  Heap.free heap a;
  (* persist all headers so the walk can see them *)
  Pmem.with_unmetered pm (fun () ->
      Pmem.flush_range pm 0 (Heap.used_bytes heap + Layout.heap_base);
      Pmem.sfence pm);
  Pmem.crash pm;
  let heap2 = Heap.open_existing pm in
  let c = Heap.alloc heap2 64 in
  Alcotest.(check int) "freed block found by walk" a c;
  let d = Heap.alloc heap2 64 in
  Alcotest.(check bool) "allocated block not reissued" true (d <> b && d <> a)

let test_create_twice_rejected () =
  let pm, _ = mk () in
  (* the magic is persisted by create *)
  Alcotest.(check bool) "second create rejected" true
    (try
       ignore (Heap.create pm);
       false
     with Invalid_argument _ -> true)

let test_headers_survive_crash () =
  (* allocator metadata is flushed eagerly: even with zero spontaneous
     persistence, a crash right after [alloc] must not regress the bump
     pointer over the allocation (or recovered data could be overwritten) *)
  let pm2 = Pmem.create { Config.small with crash_word_persist_prob = 0.0 } in
  let heap2 = Heap.create pm2 in
  let a = Heap.alloc heap2 64 in
  Pmem.crash pm2;
  let heap3 = Heap.open_existing pm2 in
  Alcotest.(check bool) "allocation still reserved" true
    (Heap.used_bytes heap3 >= (a + 64) - Layout.heap_base);
  let b = Heap.alloc heap3 64 in
  Alcotest.(check bool) "new allocation does not overlap" true
    (b >= a + 64 || b + 64 <= a)

let prop_alloc_free_random =
  QCheck.Test.make ~name:"random alloc/free keeps invariants" ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_range 1 300) bool))
    (fun script ->
      let _, heap = mk () in
      let live = ref [] in
      List.iter
        (fun (n, do_free) ->
          if do_free && !live <> [] then begin
            let a = List.hd !live in
            live := List.tl !live;
            Heap.free heap a
          end
          else begin
            let a = Heap.alloc heap n in
            (* no overlap with currently live blocks *)
            List.iter
              (fun b ->
                let ea = a + Heap.usable_size heap a
                and eb = b + Heap.usable_size heap b in
                assert (ea <= b || eb <= a))
              !live;
            live := a :: !live
          end)
        script;
      true)

let () =
  Alcotest.run "pmalloc"
    [
      ( "alloc",
        [
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "no overlap" `Quick test_no_overlap;
          Alcotest.test_case "reuse after free" `Quick test_reuse_after_free;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "live bytes" `Quick test_live_bytes;
          QCheck_alcotest.to_alcotest prop_alloc_free_random;
        ] );
      ( "pool",
        [
          Alcotest.test_case "open_existing rebuilds" `Quick
            test_open_existing_rebuilds_free_lists;
          Alcotest.test_case "create twice rejected" `Quick
            test_create_twice_rejected;
          Alcotest.test_case "headers survive crash" `Quick
            test_headers_survive_crash;
        ] );
    ]
