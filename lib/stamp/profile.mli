(** Transaction profiling (paper Table 2).

    Wraps a backend so that every transaction flowing through it counts
    its update operations and unique cells written (the write-set size in
    bytes), and feeds the per-transaction distributions behind the JSON
    bench reports: a write-set-size histogram always, and a latency
    histogram when a [clock] is supplied. *)

open Specpmt_txn

type counters = {
  mutable txs : int;
  mutable updates : int;
  mutable ws_bytes : int;  (** sum over transactions of unique cells x 8 *)
  lat_hist : Specpmt_obs.Hist.t;
      (** per-transaction latency (clock units, typically simulated ns) *)
  ws_hist : Specpmt_obs.Hist.t;  (** per-transaction write-set bytes *)
}

val fresh : unit -> counters
val avg_tx_bytes : counters -> float
val pp : Format.formatter -> counters -> unit

val reset_histograms : counters -> unit
(** Clear only the distributions — the harness calls this after the
    (counted but unmeasured) setup phase so the histograms cover exactly
    the measured transactions. *)

val wrap : ?clock:(unit -> float) -> Ctx.backend -> Ctx.backend * counters
(** The returned backend behaves identically; the counters accumulate.
    [clock] is sampled around every transaction to feed [lat_hist]
    (omit it and the latency histogram stays empty). *)
