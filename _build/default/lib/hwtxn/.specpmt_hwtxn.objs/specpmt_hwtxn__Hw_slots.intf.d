lib/hwtxn/hw_slots.mli:
