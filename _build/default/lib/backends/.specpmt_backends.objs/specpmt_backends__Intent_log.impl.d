lib/backends/intent_log.ml: Addr Heap List Pmem Specpmt_pmalloc Specpmt_pmem
