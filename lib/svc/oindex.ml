open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_backends
open Specpmt_txn
open Specpmt_pstruct

(* Per-shard Pbtree over the key table: trees allocate from their
   shard's runtime heap through that shard's backend, the directory
   block and root slot live in the parent heap.  See oindex.mli. *)

type t = {
  trees : Pbtree.t array;  (* shard -> its ordered index *)
  populated : Bytes.t;  (* key -> has a client write indexed it? *)
  shards : int;
  keys : int;
}

(* directory block: [shards; keys; order; header_0; ...] *)
let dir_shards d = d
let dir_keys d = d + 8
let dir_order d = d + 16
let dir_hdr d s = d + 24 + (8 * s)
let dir_bytes shards = 24 + (8 * shards)

(* Attach each shard's DRAM mirror with an unmetered peek through that
   shard's OWN runtime view: in the data plane tree cells may still sit
   dirty in the worker view's cache, and only the owning view observes
   them — a parent-view peek could rebuild from stale media. *)
let attach_mirrors ~pool trees =
  Array.iteri
    (fun s tree ->
      let view = Spec_soft.pmem (Spec_mt.runtime pool s) in
      Pbtree.attach_shadow (Ctx.peek_ctx view) tree)
    trees

let create ?(order = 8) ?(shadow = true) heap ~pool ~shards ~keys =
  let trees =
    Array.init shards (fun s ->
        (Spec_mt.thread pool s).Ctx.run_tx (fun ctx ->
            Pbtree.create ~order ctx ()))
  in
  (* the directory is parent-heap state like the root slot itself:
     written raw (not transactionally) and made durable under one
     fence, before any client transaction can depend on it *)
  let pm = Heap.pmem heap in
  let dir = Heap.alloc heap (dir_bytes shards) in
  Pmem.store_int pm (dir_shards dir) shards;
  Pmem.store_int pm (dir_keys dir) keys;
  Pmem.store_int pm (dir_order dir) order;
  Array.iteri
    (fun s tree -> Pmem.store_int pm (dir_hdr dir s) (Pbtree.header tree))
    trees;
  Pmem.flush_range pm dir (dir_bytes shards);
  let slot = Heap.root_slot heap Slots.svc_index in
  Pmem.store_int pm slot dir;
  Pmem.clwb pm slot;
  Pmem.sfence pm;
  if shadow then attach_mirrors ~pool trees;
  { trees; populated = Bytes.make keys '\000'; shards; keys }

let recover ?(shadow = true) ?pool heap ~shards ~keys =
  let pm = Heap.pmem heap in
  let ctx = Ctx.peek_ctx pm in
  let dir = ctx.Ctx.read (Heap.root_slot heap Slots.svc_index) in
  if dir = 0 then invalid_arg "Oindex.recover: empty svc_index root slot";
  let d_shards = ctx.Ctx.read (dir_shards dir) in
  let d_keys = ctx.Ctx.read (dir_keys dir) in
  if d_shards <> shards || d_keys <> keys then
    Fmt.invalid_arg
      "Oindex.recover: directory says %d shards / %d keys, expected %d / %d"
      d_shards d_keys shards keys;
  let trees =
    Array.init shards (fun s -> Pbtree.of_header ctx (ctx.Ctx.read (dir_hdr dir s)))
  in
  let populated = Bytes.make keys '\000' in
  Array.iter
    (fun tree ->
      Pbtree.iter ctx tree (fun k _addr -> Bytes.set populated k '\001'))
    trees;
  (* a pre-crash mirror is never trusted: rebuild each shard's mirror
     from the replayed image — through the shard's runtime view when
     the pool is known, else through the parent view (equivalent after
     recovery, when no view holds dirty tree lines) *)
  if shadow then begin
    match pool with
    | Some pool -> attach_mirrors ~pool trees
    | None ->
        Array.iter (fun tree -> Pbtree.attach_shadow ctx tree) trees
  end;
  { trees; populated; shards; keys }

let ensure ctx t ~shard ~key ~addr =
  if Bytes.get t.populated key = '\000' then begin
    Pbtree.insert ctx t.trees.(shard) key addr;
    (* volatile mark, set inside the transaction: if the tx never
       commits the whole run is dead and recovery rebuilds the bitmap
       from the trees, erasing any stale mark *)
    Bytes.set t.populated key '\001'
  end

let scan (ctx : Ctx.ctx) t ~shard ~anchor ~len =
  let acc = ref 0 and left = ref len in
  Pbtree.iter_from ctx t.trees.(shard) ~lo:anchor (fun k addr ->
      acc := ((!acc * 31) + k + ctx.Ctx.read addr) land max_int;
      decr left;
      !left > 0);
  !acc

let is_populated t k = Bytes.get t.populated k = '\001'

let populated_count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr n) t.populated;
  !n

let tree t s = t.trees.(s)

let publish_shadow t ~shard =
  match Pbtree.shadow t.trees.(shard) with
  | Some sh -> Shadow.publish sh
  | None -> ()
