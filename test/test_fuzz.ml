(* Crash-recovery torture as a regression test: the scenario that exposed
   five real bugs during development (stale NT-log handles, stale page
   snapshots of allocator headers, pre-commit durable frees, deferred
   frees surviving a crashed transaction, and in-place leaks of
   out-of-place schemes).  A durable hash table under random
   insert/remove churn with random crash points and aggressive cache
   leakage; after every recovery the table must match the committed
   reference exactly (modulo the at-most-one in-flight transaction). *)

open Specpmt
module H = Specpmt_pstruct.Phashtbl

let schemes =
  [ "PMDK"; "SPHT"; "SpecSPMT-DP"; "SpecSPMT"; "Spec-hashlog"; "EDE"; "HOOP"; "SpecHPMT-DP"; "SpecHPMT" ]

(* On an audit failure the assertion message alone is useless — the bug is
   in whatever the log did just before the crash.  Keep a small event ring
   during the torture and attach it to the failure. *)
let failf_with_trace fmt =
  Format.kasprintf
    (fun msg ->
      Alcotest.failf "%s@.last traced events:@.%a" msg
        (fun ppf () -> Obs.Trace.dump ppf ())
        ())
    fmt

let torture scheme ~seed ~rounds () =
  Obs.Trace.set_capacity 128;
  let pm =
    Pmem.create ~seed
      { Pmem_config.default with crash_word_persist_prob = 0.7 }
  in
  let heap = Heap.create pm in
  let backend = create_scheme heap scheme in
  let store = backend.Ctx.run_tx (fun ctx -> H.create ctx 64) in
  let reference = Hashtbl.create 256 in
  let rand = Random.State.make [| seed; 0xF0 |] in
  let ctx = Ctx.raw_ctx heap in
  for round = 1 to rounds do
    Pmem.set_fuse pm (Some (100 + Random.State.int rand 3000));
    (try
       while true do
         let k = 1 + Random.State.int rand 200 in
         let v = Random.State.int rand 1_000_000 in
         let del = Random.State.int rand 8 = 0 in
         backend.Ctx.run_tx (fun c ->
             if del then ignore (H.remove c store k)
             else ignore (H.replace c store k v));
         if del then Hashtbl.remove reference k
         else Hashtbl.replace reference k v
       done
     with Pmem.Crash ->
       Pmem.crash pm;
       backend.Ctx.recover ());
    let mismatches = ref 0 in
    Hashtbl.iter
      (fun k v ->
        match H.find ctx store k with
        | Some v' when v' = v -> ()
        | _ -> incr mismatches)
      reference;
    if !mismatches > 1 then
      failf_with_trace "%s: round %d: %d mismatches — not crash consistent"
        scheme round !mismatches;
    (* reconcile the possibly in-flight transaction *)
    if !mismatches = 1 then begin
      Hashtbl.reset reference;
      H.iter ctx store (fun k v -> Hashtbl.replace reference k v)
    end
  done

(* the same torture over the multi-core hardware pool: transactions are
   spread across three cores sharing the pool *)
let torture_mt ~seed ~rounds () =
  let pm =
    Pmem.create ~seed
      { Pmem_config.default with crash_word_persist_prob = 0.7 }
  in
  let heap = Heap.create pm in
  let pool = Spec_hw.Mt.create heap ~threads:3 in
  let store =
    (Spec_hw.Mt.thread pool 0).Ctx.run_tx (fun ctx -> H.create ctx 64)
  in
  let reference = Hashtbl.create 256 in
  let rand = Random.State.make [| seed; 0xF1 |] in
  let ctx = Ctx.raw_ctx heap in
  for round = 1 to rounds do
    Pmem.set_fuse pm (Some (100 + Random.State.int rand 3000));
    (try
       while true do
         let th = Random.State.int rand 3 in
         let k = 1 + Random.State.int rand 200 in
         let v = Random.State.int rand 1_000_000 in
         let del = Random.State.int rand 8 = 0 in
         (Spec_hw.Mt.thread pool th).Ctx.run_tx (fun c ->
             if del then ignore (H.remove c store k)
             else ignore (H.replace c store k v));
         if del then Hashtbl.remove reference k
         else Hashtbl.replace reference k v
       done
     with Pmem.Crash ->
       Pmem.crash pm;
       Spec_hw.Mt.recover pool);
    let mismatches = ref 0 in
    Hashtbl.iter
      (fun k v ->
        match H.find ctx store k with
        | Some v' when v' = v -> ()
        | _ -> incr mismatches)
      reference;
    if !mismatches > 1 then
      failf_with_trace "SpecHPMT-Mt: round %d: %d mismatches" round !mismatches;
    if !mismatches = 1 then begin
      Hashtbl.reset reference;
      H.iter ctx store (fun k v -> Hashtbl.replace reference k v)
    end
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "hash-table crash torture",
        List.map
          (fun s ->
            Alcotest.test_case s `Slow (torture s ~seed:1 ~rounds:12))
          schemes
        @ [
            Alcotest.test_case "SpecHPMT multi-core" `Slow
              (torture_mt ~seed:1 ~rounds:12);
          ] );
    ]
