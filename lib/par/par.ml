open Specpmt_obs

type error = {
  index : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

let run ?jobs ?(chunk = 1) ?(init = fun () -> ()) ~n f =
  if n < 0 then invalid_arg "Par.run: negative n";
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let chunk = max 1 chunk in
  if n = 0 then begin
    init ();
    [||]
  end
  else if jobs = 1 then begin
    (* Inline serial reference path: ascending index order on the
       calling domain (Array.init's evaluation order is unspecified). *)
    init ();
    let r0 = f 0 in
    let out = Array.make n r0 in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end
  else begin
    let workers = min jobs n in
    (* Disjoint indices per worker; the join provides the happens-before
       edge that makes the coordinator's reads safe. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed : error option Atomic.t = Atomic.make None in
    let record_failure index exn backtrace =
      let rec cas () =
        let cur = Atomic.get failed in
        let better =
          match cur with None -> true | Some e -> index < e.index
        in
        if better && not (Atomic.compare_and_set failed cur (Some { index; exn; backtrace }))
        then cas ()
      in
      cas ()
    in
    let worker () =
      init ();
      let running = ref true in
      while !running do
        if Atomic.get failed <> None then running := false
        else begin
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= n then running := false
          else begin
            let hi = min n (lo + chunk) in
            let i = ref lo in
            while !i < hi && Atomic.get failed = None do
              (match f !i with
              | v -> results.(!i) <- Some v
              | exception exn ->
                  record_failure !i exn (Printexc.get_raw_backtrace ()));
              incr i
            done
          end
        end
      done;
      (Metrics.export (), Phase.snapshot ())
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    (* Join and merge observability in worker order, deterministically. *)
    let harvested = Array.map Domain.join domains in
    Array.iter
      (fun (m, p) ->
        Metrics.absorb m;
        Phase.absorb p)
      harvested;
    (match Atomic.get failed with
    | Some e -> Printexc.raise_with_backtrace e.exn e.backtrace
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?jobs ?chunk ?init f xs =
  let arr = Array.of_list xs in
  run ?jobs ?chunk ?init ~n:(Array.length arr) (fun i -> f arr.(i))
  |> Array.to_list

(* Long-lived workers: the pipeline shape (a coordinator exchanging
   messages with resident domains) rather than run's fan-out shape.
   The lifecycle contract is the same — each worker accumulates
   observability in its own domain-local registry, and join merges it
   into the caller's — so a dataplane worker gets the metrics story of
   a Par.run job for free. *)
type 'a worker = {
  dom : ('a outcome * Metrics.export * Phase.snapshot) Domain.t;
}

and 'a outcome =
  | Ok_ of 'a
  | Err of exn * Printexc.raw_backtrace

let spawn f =
  {
    dom =
      Domain.spawn (fun () ->
          let outcome =
            match f () with
            | v -> Ok_ v
            | exception exn -> Err (exn, Printexc.get_raw_backtrace ())
          in
          (outcome, Metrics.export (), Phase.snapshot ()));
  }

let join w =
  let outcome, m, p = Domain.join w.dom in
  Metrics.absorb m;
  Phase.absorb p;
  match outcome with
  | Ok_ v -> v
  | Err (exn, bt) -> Printexc.raise_with_backtrace exn bt

(* Join every worker (observability from all of them, in array order)
   before re-raising the lowest-index failure — a partial join would
   leave domains running and their metrics lost. *)
let join_all ws =
  let outcomes =
    Array.map
      (fun w ->
        let outcome, m, p = Domain.join w.dom in
        Metrics.absorb m;
        Phase.absorb p;
        outcome)
      ws
  in
  Array.iter
    (function Err (exn, bt) -> Printexc.raise_with_backtrace exn bt | Ok_ _ -> ())
    outcomes;
  Array.map (function Ok_ v -> v | Err _ -> assert false) outcomes
