(** Root-slot assignments for the software backends.

    Slots 0–7 of the pool root area belong to applications; the rest are
    claimed here so that two backends never collide on the same device. *)

let app_first = 0
let app_last = 7
let pmdk_region = 8
let pmdk_capacity = 9
let kamino_region = 10
let kamino_capacity = 11
let spht_head = 12
let spht_marker = 13
let spec_head = 14
let hashlog_table = 15

let hashlog_committed_ts = 16
let hashlog_capacity = 17

(* The service layer's ordered-index directory: one cell pointing at a
   block of [shards; keys; order; header_0; ...; header_{n-1}] tree
   header addresses, written raw (store + flush + fence) at service
   creation and re-read by recovery to rediscover every shard's tree.
   Shares root-area line 3 (slots 16-23) with the hashlog slots, which
   is safe: both are published from the parent/router domain only. *)
let svc_index = 18

(* Per-thread speculative log heads for the multi-threaded runtime: one
   root slot per thread, strided one cache line (8 slots) apart.  Heads
   are published (store + clwb + fence) from the thread's owning domain;
   with the simulated media written back whole lines at a time, two
   heads sharing a line would overwrite each other when published from
   different domains.  [spec_mt_first = 24] puts head 0 at byte
   64 + 24*8 = 256 — line-aligned — and the stride keeps every further
   head on its own line.  The thread cap is the slot budget, not a
   hard-coded 3. *)
let spec_mt_first = 24
let spec_mt_stride = 8

let spec_mt_max_threads =
  (Specpmt_pmalloc.Layout.root_slot_count - spec_mt_first) / spec_mt_stride

let spec_mt_head i =
  if i < 0 || i >= spec_mt_max_threads then invalid_arg "Slots.spec_mt_head";
  spec_mt_first + (i * spec_mt_stride)
