(** genome — gene sequencing (STAMP).

    A gene is a string of nucleotides; the input is an oversampled set of
    fixed-length segments.  Phase 1 deduplicates segments into a hash set
    (one small transaction per segment, the dominant transaction count);
    phase 2 indexes unique segments by their prefix; phase 3 links each
    segment to the one overlapping its suffix, rebuilding the sequence.
    Transactions are tiny (the paper reports 7.2 B average write set) and
    very numerous. *)

open Specpmt_txn
open Specpmt_pstruct

let seg_len = 16 (* nucleotides per segment, 2 bits each *)
let overlap = 12
let step = seg_len - overlap

let sizes = function
  | Wtypes.Quick -> (256, 2)
  | Wtypes.Small -> (8 * 1024, 3)
  | Wtypes.Full -> (64 * 1024, 4)

(* pack nucleotides [i, i+len) of the gene into an int *)
let pack gene i len =
  let v = ref 0 in
  for k = 0 to len - 1 do
    v := (!v lsl 2) lor gene.((i + k) mod Array.length gene)
  done;
  !v

let prepare scale heap (backend : Ctx.backend) =
  let gene_len, dup = sizes scale in
  let rng = Rng.create 0xD9A in
  let gene = Array.init gene_len (fun _ -> Rng.int rng 4) in
  (* oversampled segment starts: every aligned position, [dup] times over *)
  let starts = ref [] in
  for d = 1 to dup do
    let offset = Rng.int rng step in
    ignore offset;
    let i = ref 0 in
    while !i < gene_len - seg_len do
      starts := (!i + (d * 0)) :: !starts;
      i := !i + step
    done
  done;
  let starts = Array.of_list !starts in
  (* shuffle deterministically *)
  for i = Array.length starts - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = starts.(i) in
    starts.(i) <- starts.(j);
    starts.(j) <- t
  done;
  (* persistent state: the unique-segment set, the prefix index, and the
     segment table (id -> [start, next]) *)
  let segments, unique_set, prefix_idx, next_tbl =
    backend.Ctx.run_tx (fun ctx ->
        ( Parray.create ctx (2 * Array.length starts),
          Phashtbl.create ctx 1024,
          Phashtbl.create ctx 1024,
          Parray.create ctx (2 * Array.length starts) ))
  in
  let n_unique = ref 0 in
  let work () =
    (* phase 1: deduplicate (one tx per segment) *)
    Array.iter
      (fun s ->
        Wtypes.compute heap (float_of_int (4 * seg_len));
        backend.Ctx.run_tx (fun ctx ->
            let key = pack gene s seg_len in
            if Phashtbl.add_if_absent ctx unique_set key !n_unique then begin
              Parray.set ctx segments !n_unique s;
              incr n_unique
            end))
      starts;
    (* phase 2: index unique segments by prefix *)
    for id = 0 to !n_unique - 1 do
      Wtypes.compute heap (float_of_int (4 * overlap));
      backend.Ctx.run_tx (fun ctx ->
          let s = Parray.get ctx segments id in
          ignore (Phashtbl.add_if_absent ctx prefix_idx (pack gene s overlap) id))
    done;
    (* phase 3: overlap matching — link id to the segment starting with
       its suffix *)
    for id = 0 to !n_unique - 1 do
      Wtypes.compute heap (float_of_int (4 * overlap));
      backend.Ctx.run_tx (fun ctx ->
          let s = Parray.get ctx segments id in
          let suffix = pack gene (s + step) overlap in
          match Phashtbl.find ctx prefix_idx suffix with
          | Some succ when succ <> id -> Parray.set ctx next_tbl id (succ + 1)
          | Some _ | None -> Parray.set ctx next_tbl id 0)
    done
  in
  let checksum () =
    let ctx = Ctx.raw_ctx heap in
    let acc = ref (Wtypes.mix 0 !n_unique) in
    for id = 0 to !n_unique - 1 do
      acc := Wtypes.mix !acc (Parray.get ctx next_tbl id)
    done;
    !acc
  in
  { Wtypes.work; checksum }

let workload =
  {
    Wtypes.name = "genome";
    description = "gene sequencing: segment dedup + overlap matching";
    prepare;
  }
