let nbuckets = 64

type t = {
  mutable count : int;
  mutable sum : float;
  mutable min : int;
  mutable max : int;
  buckets : int array;
}

type snapshot = {
  count : int;
  sum : float;
  min : int;
  max : int;
  buckets : (int * int) list;
}

let create () : t =
  { count = 0; sum = 0.0; min = max_int; max = min_int;
    buckets = Array.make nbuckets 0 }

let bucket_of v =
  if v <= 0 then 0
  else
    (* 1 + floor(log2 v), capped *)
    let rec go v i = if v = 0 then i else go (v lsr 1) (i + 1) in
    min (go v 0) (nbuckets - 1)

(* inclusive lower bound of bucket [i] *)
let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i = 0 then 0 else (1 lsl i) - 1

let observe (t : t) v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. float_of_int v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v;
  let b = t.buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1

let reset (t : t) =
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- max_int;
  t.max <- min_int;
  Array.fill t.buckets 0 nbuckets 0

let absorb (t : t) (s : snapshot) =
  if s.count > 0 then begin
    t.count <- t.count + s.count;
    t.sum <- t.sum +. s.sum;
    if s.min < t.min then t.min <- s.min;
    if s.max > t.max then t.max <- s.max;
    List.iter
      (fun (lo, n) ->
        let i = bucket_of lo in
        t.buckets.(i) <- t.buckets.(i) + n)
      s.buckets
  end

let snapshot (t : t) : snapshot =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) > 0 then buckets := (bucket_lo i, t.buckets.(i)) :: !buckets
  done;
  {
    count = t.count;
    sum = t.sum;
    min = (if t.count = 0 then 0 else t.min);
    max = (if t.count = 0 then 0 else t.max);
    buckets = !buckets;
  }

let mean (s : snapshot) =
  if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

let quantile (s : snapshot) q =
  if s.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int s.count)) in
    let rank = Stdlib.max 1 (Stdlib.min rank s.count) in
    let seen = ref 0 and result = ref s.max in
    (try
       List.iter
         (fun (lo, n) ->
           seen := !seen + n;
           if !seen >= rank then begin
             let i = bucket_of lo in
             result := Stdlib.min s.max (bucket_hi i);
             raise Exit
           end)
         s.buckets
     with Exit -> ());
    !result
  end

let to_json (s : snapshot) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("mean", Json.Float (mean s));
      ("min", Json.Int s.min);
      ("max", Json.Int s.max);
      ("p50", Json.Int (quantile s 0.50));
      ("p90", Json.Int (quantile s 0.90));
      ("p99", Json.Int (quantile s 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, n) -> Json.List [ Json.Int lo; Json.Int n ])
             s.buckets) );
    ]
