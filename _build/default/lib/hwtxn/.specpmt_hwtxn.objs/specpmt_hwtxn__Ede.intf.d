lib/hwtxn/ede.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
