let poly = 0x82F63B78 (* reflected CRC-32C polynomial *)

(* Eager: a lazy here would race when first forced concurrently from
   several domains (the parallel harness commits on worker domains). *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := (!c lsr 1) lxor poly
        else c := !c lsr 1
      done;
      !c)

let crc32c ?(init = 0) b =
  let crc = ref (init lxor 0xFFFFFFFF) in
  for i = 0 to Bytes.length b - 1 do
    let idx = (!crc lxor Char.code (Bytes.get b i)) land 0xFF in
    crc := (!crc lsr 8) lxor table.(idx)
  done;
  !crc lxor 0xFFFFFFFF

let crc32c_word init w =
  (* Bytes must match [words]'s Int64 LE encoding, including the
     sign-extended top byte of negative tags — hence [asr], not [lsr]. *)
  let crc = ref (init lxor 0xFFFFFFFF) in
  for k = 0 to 7 do
    let byte = (w asr (k * 8)) land 0xFF in
    let idx = (!crc lxor byte) land 0xFF in
    crc := (!crc lsr 8) lxor table.(idx)
  done;
  !crc lxor 0xFFFFFFFF

let words ws =
  let b = Bytes.create (8 * List.length ws) in
  List.iteri (fun i w -> Bytes.set_int64_le b (i * 8) (Int64.of_int w)) ws;
  crc32c b
