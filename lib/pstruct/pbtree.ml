(** Persistent B-link tree.

    Layout: header [order; root; count]; node [meta; high; right;
    keys[order]; payloads[order]] with [meta = nkeys*2 + is_leaf].
    Internal entry [i] points at the child covering keys in
    [(keys.(i-1), keys.(i)]]; a node's [high] is its own inclusive
    bound ([max_int] on the rightmost spine) and always equals its
    separator in the parent, and [keys.(nkeys-1) = high] on internal
    nodes.  Separators are {e bounds}, not live keys: a removal never
    has to touch its ancestors' separators, only borrows and merges
    move bounds around.

    Rebalancing is preemptive (split-full / fix-minimal on the way
    down), so a mutation's write set stays O(order · height) worst
    case with no retro-propagation — small transactional write sets
    are the whole point of running this over speculative logging.

    An optional DRAM {!Shadow} mirror (see {!attach_shadow}) serves
    every node read from volatile memory with binary search inside
    nodes; transactional writes dual-write media and mirror, with the
    mirror side staged until the transaction's outcome is known.  With
    no mirror attached, every path below reads through the ctx exactly
    as before — the unmirrored read sequences are unchanged. *)

open Specpmt_pmem
open Specpmt_txn

type stats = {
  mutable leaf_splits : int;
  mutable internal_splits : int;
  mutable merges : int;
  mutable borrows : int;
  mutable root_grows : int;
  mutable root_shrinks : int;
}

type t = {
  hdr : Addr.t;
  order : int;
  st : stats;
  mutable sh : Shadow.t option;
}

(* +inf / -inf sentinels: user keys must lie strictly between them *)
let no_key = max_int

let fresh_stats () =
  {
    leaf_splits = 0;
    internal_splits = 0;
    merges = 0;
    borrows = 0;
    root_grows = 0;
    root_shrinks = 0;
  }

(* header cells *)
let h_order h = h
let h_root h = h + 8
let h_count h = h + 16
let header_bytes = 24

(* node cells *)
let n_meta n = n
let n_high n = n + 8
let n_right n = n + 16
let n_key _t n i = n + 24 + (8 * i)
let n_pay t n i = n + 24 + (8 * t.order) + (8 * i)
let node_bytes order = 24 + (16 * order)

let nkeys_of m = m lsr 1
let leaf_of m = m land 1 = 1

(* ---- node cell reads ----

   [r_*] read the media through the ctx — the audit path, and the only
   path when no mirror is attached.  The unsuffixed accessors dispatch
   to the mirror when one is attached: overlay-first (a mutation sees
   its own staged updates), falling back to the metered ctx read for a
   node the mirror does not cover. *)

let r_meta (ctx : Ctx.ctx) n = ctx.Ctx.read (n_meta n)
let r_high (ctx : Ctx.ctx) n = ctx.Ctx.read (n_high n)
let r_right (ctx : Ctx.ctx) n = ctx.Ctx.read (n_right n)
let r_key (ctx : Ctx.ctx) t n i = ctx.Ctx.read (n_key t n i)
let r_pay (ctx : Ctx.ctx) t n i = ctx.Ctx.read (n_pay t n i)

let meta_ ctx t n =
  match t.sh with
  | None -> r_meta ctx n
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          nd.Shadow.meta
      | exception Not_found ->
          Shadow.miss sh;
          r_meta ctx n)

let high_ ctx t n =
  match t.sh with
  | None -> r_high ctx n
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          nd.Shadow.high
      | exception Not_found ->
          Shadow.miss sh;
          r_high ctx n)

let right_ ctx t n =
  match t.sh with
  | None -> r_right ctx n
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          nd.Shadow.right
      | exception Not_found ->
          Shadow.miss sh;
          r_right ctx n)

let key_ ctx t n i =
  match t.sh with
  | None -> r_key ctx t n i
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          nd.Shadow.keys.(i)
      | exception Not_found ->
          Shadow.miss sh;
          r_key ctx t n i)

let pay_ ctx t n i =
  match t.sh with
  | None -> r_pay ctx t n i
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          nd.Shadow.pays.(i)
      | exception Not_found ->
          Shadow.miss sh;
          r_pay ctx t n i)

let root_ (ctx : Ctx.ctx) t =
  match t.sh with
  | None -> ctx.Ctx.read (h_root t.hdr)
  | Some sh -> Shadow.root sh

let length (ctx : Ctx.ctx) t =
  match t.sh with
  | None -> ctx.Ctx.read (h_count t.hdr)
  | Some sh -> Shadow.count sh

(* ---- node cell writes: media first, then the mirror's staged copy.
   The stage/arm order inside {!Shadow.stage} makes this correct under
   non-transactional contexts too (their hook fires immediately). *)

let set_meta (ctx : Ctx.ctx) t n ~leaf ~nkeys =
  let v = (nkeys lsl 1) lor if leaf then 1 else 0 in
  ctx.Ctx.write (n_meta n) v;
  match t.sh with
  | None -> ()
  | Some sh -> (Shadow.stage sh ctx n).Shadow.meta <- v

let set_high (ctx : Ctx.ctx) t n v =
  ctx.Ctx.write (n_high n) v;
  match t.sh with
  | None -> ()
  | Some sh -> (Shadow.stage sh ctx n).Shadow.high <- v

let set_right (ctx : Ctx.ctx) t n v =
  ctx.Ctx.write (n_right n) v;
  match t.sh with
  | None -> ()
  | Some sh -> (Shadow.stage sh ctx n).Shadow.right <- v

let set_key (ctx : Ctx.ctx) t n i v =
  ctx.Ctx.write (n_key t n i) v;
  match t.sh with
  | None -> ()
  | Some sh -> (Shadow.stage sh ctx n).Shadow.keys.(i) <- v

let set_pay (ctx : Ctx.ctx) t n i v =
  ctx.Ctx.write (n_pay t n i) v;
  match t.sh with
  | None -> ()
  | Some sh -> (Shadow.stage sh ctx n).Shadow.pays.(i) <- v

let set_root (ctx : Ctx.ctx) t v =
  ctx.Ctx.write (h_root t.hdr) v;
  match t.sh with
  | None -> ()
  | Some sh -> Shadow.stage_root sh ctx v

let set_count (ctx : Ctx.ctx) t v =
  ctx.Ctx.write (h_count t.hdr) v;
  match t.sh with
  | None -> ()
  | Some sh -> Shadow.stage_count sh ctx v

let free_node (ctx : Ctx.ctx) t n =
  ctx.Ctx.free n;
  match t.sh with
  | None -> ()
  | Some sh -> Shadow.stage_free sh ctx n

let new_node (ctx : Ctx.ctx) t ~leaf ~nkeys ~high ~right =
  let n = ctx.Ctx.alloc (node_bytes t.order) in
  set_meta ctx t n ~leaf ~nkeys;
  set_high ctx t n high;
  set_right ctx t n right;
  n

let create ?(order = 8) (ctx : Ctx.ctx) () =
  if order < 4 then invalid_arg "Pbtree.create: order < 4";
  let hdr = ctx.Ctx.alloc header_bytes in
  let t = { hdr; order; st = fresh_stats (); sh = None } in
  let root = new_node ctx t ~leaf:true ~nkeys:0 ~high:no_key ~right:0 in
  ctx.Ctx.write (h_order hdr) order;
  ctx.Ctx.write (h_root hdr) root;
  ctx.Ctx.write (h_count hdr) 0;
  t

let of_header (ctx : Ctx.ctx) hdr =
  let order = ctx.Ctx.read (h_order hdr) in
  if order < 4 || order > 4096 then
    Fmt.invalid_arg
      "Pbtree.of_header: cell at %#x holds %d, not a plausible order" hdr order;
  { hdr; order; st = fresh_stats (); sh = None }

let header t = t.hdr
let order t = t.order
let stats t = t.st

(* ---- the shadow mirror ---- *)

let shadow t = t.sh
let detach_shadow t = t.sh <- None

let attach_shadow (ctx : Ctx.ctx) t =
  let t0 = Unix.gettimeofday () in
  let root = ctx.Ctx.read (h_root t.hdr) in
  let count = ctx.Ctx.read (h_count t.hdr) in
  let sh = Shadow.create ~order:t.order ~root ~count in
  let rec walk n =
    let nd = Shadow.load sh n in
    let m = r_meta ctx n in
    nd.Shadow.meta <- m;
    nd.Shadow.high <- r_high ctx n;
    nd.Shadow.right <- r_right ctx n;
    let nk = nkeys_of m in
    for i = 0 to nk - 1 do
      nd.Shadow.keys.(i) <- r_key ctx t n i;
      nd.Shadow.pays.(i) <- r_pay ctx t n i
    done;
    if not (leaf_of m) then
      for i = 0 to nk - 1 do
        walk nd.Shadow.pays.(i)
      done
  in
  walk root;
  Shadow.add_rebuild_ns sh (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
  t.sh <- Some sh

let vfail fmt = Fmt.kstr (fun s -> failwith ("Pbtree.verify_shadow: " ^ s)) fmt

let verify_shadow (ctx : Ctx.ctx) t =
  match t.sh with
  | None -> invalid_arg "Pbtree.verify_shadow: no mirror attached"
  | Some sh ->
      if Shadow.stage_size sh > 0 then
        vfail "transaction in flight: %d staged entries" (Shadow.stage_size sh);
      let root = ctx.Ctx.read (h_root t.hdr) in
      if Shadow.root sh <> root then
        vfail "root %#x, media %#x" (Shadow.root sh) root;
      let count = ctx.Ctx.read (h_count t.hdr) in
      if Shadow.count sh <> count then
        vfail "count %d, media %d" (Shadow.count sh) count;
      let seen = ref 0 in
      let rec walk n =
        incr seen;
        let nd =
          match Shadow.node sh n with
          | nd -> nd
          | exception Not_found -> vfail "node %#x missing from mirror" n
        in
        let m = r_meta ctx n in
        if nd.Shadow.meta <> m then
          vfail "node %#x: meta %d, media %d" n nd.Shadow.meta m;
        if nd.Shadow.high <> r_high ctx n then
          vfail "node %#x: high %d, media %d" n nd.Shadow.high (r_high ctx n);
        if nd.Shadow.right <> r_right ctx n then
          vfail "node %#x: right %#x, media %#x" n nd.Shadow.right
            (r_right ctx n);
        let nk = nkeys_of m in
        for i = 0 to nk - 1 do
          if nd.Shadow.keys.(i) <> r_key ctx t n i then
            vfail "node %#x: key slot %d holds %d, media %d" n i
              nd.Shadow.keys.(i) (r_key ctx t n i);
          if nd.Shadow.pays.(i) <> r_pay ctx t n i then
            vfail "node %#x: payload slot %d holds %d, media %d" n i
              nd.Shadow.pays.(i) (r_pay ctx t n i)
        done;
        if not (leaf_of m) then
          for i = 0 to nk - 1 do
            walk (r_pay ctx t n i)
          done
      in
      walk root;
      if Shadow.size sh <> !seen then
        vfail "%d mirrored nodes, media reaches %d" (Shadow.size sh) !seen

(* ---- descent ---- *)

(* smallest slot whose separator bounds [key]; exists because descent
   (after the move-right step) guarantees key <= high = keys.(nkeys-1).
   Mirror-served nodes use binary search over the separator prefix; the
   ctx path keeps the original linear scan (same read sequence as ever
   for unmirrored trees). *)
let child_slot_slow ctx t n ~nkeys key =
  let i = ref 0 in
  while !i < nkeys - 1 && key > r_key ctx t n !i do
    incr i
  done;
  !i

let child_slot ctx t n ~nkeys key =
  match t.sh with
  | None -> child_slot_slow ctx t n ~nkeys key
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          Shadow.lower_bound nd.Shadow.keys (nkeys - 1) key
      | exception Not_found ->
          Shadow.miss sh;
          child_slot_slow ctx t n ~nkeys key)

(* smallest leaf slot with keys.(i) >= key (nk if none) — the insert /
   remove / find position *)
let leaf_slot ctx t n ~nk key =
  match t.sh with
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          Shadow.lower_bound nd.Shadow.keys nk key
      | exception Not_found ->
          Shadow.miss sh;
          let i = ref 0 in
          while !i < nk && key > r_key ctx t n !i do
            incr i
          done;
          !i)
  | None ->
      let i = ref 0 in
      while !i < nk && key > r_key ctx t n !i do
        incr i
      done;
      !i

(* B-link descent: follow a right link whenever the key exceeds the
   node's bound, otherwise descend through the separator slot.  A
   mirror-served level costs one hashtable probe and a binary search —
   no device reads at all. *)
let rec locate_leaf ctx t n key =
  match t.sh with
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          if nd.Shadow.right <> 0 && key > nd.Shadow.high then
            locate_leaf ctx t nd.Shadow.right key
          else
            let m = nd.Shadow.meta in
            if leaf_of m then n
            else
              locate_leaf ctx t
                nd.Shadow.pays.(Shadow.lower_bound nd.Shadow.keys
                                  (nkeys_of m - 1) key)
                key
      | exception Not_found ->
          Shadow.miss sh;
          locate_leaf_slow ctx t n key)
  | None -> locate_leaf_slow ctx t n key

and locate_leaf_slow ctx t n key =
  if r_right ctx n <> 0 && key > r_high ctx n then
    locate_leaf ctx t (r_right ctx n) key
  else
    let m = r_meta ctx n in
    if leaf_of m then n
    else
      locate_leaf ctx t
        (r_pay ctx t n (child_slot_slow ctx t n ~nkeys:(nkeys_of m) key))
        key

let find_in_leaf_slow ctx t n key =
  let nk = nkeys_of (r_meta ctx n) in
  let rec scan i =
    if i >= nk then None
    else
      let k = r_key ctx t n i in
      if k = key then Some (r_pay ctx t n i)
      else if k > key then None
      else scan (i + 1)
  in
  scan 0

let find ctx t key =
  let n = locate_leaf ctx t (root_ ctx t) key in
  match t.sh with
  | Some sh -> (
      match Shadow.node sh n with
      | nd ->
          Shadow.hit sh;
          let nk = nkeys_of nd.Shadow.meta in
          let i = Shadow.lower_bound nd.Shadow.keys nk key in
          if i < nk && nd.Shadow.keys.(i) = key then Some nd.Shadow.pays.(i)
          else None
      | exception Not_found ->
          Shadow.miss sh;
          find_in_leaf_slow ctx t n key)
  | None -> find_in_leaf_slow ctx t n key

let mem ctx t key = find ctx t key <> None

(* shift entries [i..nkeys-1] one slot right (opening slot [i]) *)
let shift_right ctx t n ~nkeys i =
  for j = nkeys - 1 downto i do
    set_key ctx t n (j + 1) (key_ ctx t n j);
    set_pay ctx t n (j + 1) (pay_ ctx t n j)
  done

(* shift entries [i+1..nkeys-1] one slot left (closing slot [i]) *)
let shift_left ctx t n ~nkeys i =
  for j = i + 1 to nkeys - 1 do
    set_key ctx t n (j - 1) (key_ ctx t n j);
    set_pay ctx t n (j - 1) (pay_ ctx t n j)
  done

(* Split the full child at parent slot [i] (preemptive, on the insert
   descent; the parent is never full here).  The child keeps its first
   ceil(order/2) entries and tightens its bound to its new last key;
   a fresh right sibling takes the rest under the old bound, linked
   B-link style (child.right -> sibling -> old child.right) so a
   link-walker crossing the split sees no gap.  Returns the new
   separator so the caller can re-aim its descent. *)
let split_child ctx t parent i =
  let c = pay_ ctx t parent i in
  let leaf = leaf_of (meta_ ctx t c) in
  let lh = (t.order + 1) / 2 in
  let rh = t.order - lh in
  let r =
    new_node ctx t ~leaf ~nkeys:rh ~high:(high_ ctx t c) ~right:(right_ ctx t c)
  in
  for j = 0 to rh - 1 do
    set_key ctx t r j (key_ ctx t c (lh + j));
    set_pay ctx t r j (pay_ ctx t c (lh + j))
  done;
  let sep = key_ ctx t c (lh - 1) in
  set_right ctx t c r;
  set_high ctx t c sep;
  set_meta ctx t c ~leaf ~nkeys:lh;
  let pk = nkeys_of (meta_ ctx t parent) in
  let old_sep = key_ ctx t parent i in
  shift_right ctx t parent ~nkeys:pk (i + 1);
  set_key ctx t parent i sep;
  set_key ctx t parent (i + 1) old_sep;
  set_pay ctx t parent (i + 1) r;
  set_meta ctx t parent ~leaf:false ~nkeys:(pk + 1);
  if leaf then t.st.leaf_splits <- t.st.leaf_splits + 1
  else t.st.internal_splits <- t.st.internal_splits + 1;
  sep

let insert (ctx : Ctx.ctx) t key value =
  if key >= no_key || key <= min_int then
    invalid_arg
      "Pbtree.insert: key must lie strictly between min_int and max_int";
  (* root growth: a full root gains a single-entry internal parent
     under the +inf bound, then splits as an ordinary child *)
  let root = root_ ctx t in
  let root =
    if nkeys_of (meta_ ctx t root) = t.order then begin
      let r = new_node ctx t ~leaf:false ~nkeys:1 ~high:no_key ~right:0 in
      set_key ctx t r 0 no_key;
      set_pay ctx t r 0 root;
      set_root ctx t r;
      t.st.root_grows <- t.st.root_grows + 1;
      ignore (split_child ctx t r 0);
      r
    end
    else root
  in
  let rec go n =
    let m = meta_ ctx t n in
    let nk = nkeys_of m in
    if leaf_of m then begin
      let i = leaf_slot ctx t n ~nk key in
      if i < nk && key_ ctx t n i = key then set_pay ctx t n i value
      else begin
        shift_right ctx t n ~nkeys:nk i;
        set_key ctx t n i key;
        set_pay ctx t n i value;
        set_meta ctx t n ~leaf:true ~nkeys:(nk + 1);
        set_count ctx t (length ctx t + 1)
      end
    end
    else begin
      let i = child_slot ctx t n ~nkeys:nk key in
      if nkeys_of (meta_ ctx t (pay_ ctx t n i)) = t.order then begin
        let sep = split_child ctx t n i in
        go (pay_ ctx t n (if key > sep then i + 1 else i))
      end
      else go (pay_ ctx t n i)
    end
  in
  go root

(* Rebalance the minimal child at parent slot [i] (preemptive, on the
   remove descent) so a removal below it cannot underflow; returns the
   node to keep descending into — the left sibling when a merge folded
   the child into it.  The parent always has >= 2 entries here: below
   the root it was itself fixed to > order/2 entries on the way down,
   and the root sheds single-child states eagerly (see [remove]). *)
let fix_child ctx t parent i =
  let min_keys = t.order / 2 in
  let pk = nkeys_of (meta_ ctx t parent) in
  let c = pay_ ctx t parent i in
  let cm = meta_ ctx t c in
  let leaf = leaf_of cm in
  let ck = nkeys_of cm in
  (* move the right sibling's first entry under [c]'s (raised) bound *)
  let borrow_right r =
    let rk = nkeys_of (meta_ ctx t r) in
    let k0 = key_ ctx t r 0 and p0 = pay_ ctx t r 0 in
    set_key ctx t c ck k0;
    set_pay ctx t c ck p0;
    set_meta ctx t c ~leaf ~nkeys:(ck + 1);
    shift_left ctx t r ~nkeys:rk 0;
    set_meta ctx t r ~leaf ~nkeys:(rk - 1);
    set_high ctx t c k0;
    set_key ctx t parent i k0;
    t.st.borrows <- t.st.borrows + 1;
    c
  in
  (* move the left sibling's last entry to [c]'s front, lowering the
     sibling's bound to its new last key *)
  let borrow_left l =
    let lk = nkeys_of (meta_ ctx t l) in
    let kl = key_ ctx t l (lk - 1) and pl = pay_ ctx t l (lk - 1) in
    shift_right ctx t c ~nkeys:ck 0;
    set_key ctx t c 0 kl;
    set_pay ctx t c 0 pl;
    set_meta ctx t c ~leaf ~nkeys:(ck + 1);
    set_meta ctx t l ~leaf ~nkeys:(lk - 1);
    let bound = key_ ctx t l (lk - 2) in
    set_high ctx t l bound;
    set_key ctx t parent (i - 1) bound;
    t.st.borrows <- t.st.borrows + 1;
    c
  in
  (* fold the right child of the pair (slots [j], [j+1]) into the left
     one: entries, bound and right link all move left, the parent drops
     one entry, the emptied node is freed (deferred to commit) *)
  let merge j =
    let l = pay_ ctx t parent j in
    let r = pay_ ctx t parent (j + 1) in
    let lm = meta_ ctx t l in
    let lk = nkeys_of lm and rk = nkeys_of (meta_ ctx t r) in
    for x = 0 to rk - 1 do
      set_key ctx t l (lk + x) (key_ ctx t r x);
      set_pay ctx t l (lk + x) (pay_ ctx t r x)
    done;
    set_meta ctx t l ~leaf:(leaf_of lm) ~nkeys:(lk + rk);
    set_high ctx t l (high_ ctx t r);
    set_right ctx t l (right_ ctx t r);
    set_key ctx t parent j (key_ ctx t parent (j + 1));
    shift_left ctx t parent ~nkeys:pk (j + 1);
    set_meta ctx t parent ~leaf:false ~nkeys:(pk - 1);
    free_node ctx t r;
    t.st.merges <- t.st.merges + 1;
    l
  in
  if ck > min_keys then c
  else if
    i + 1 < pk && nkeys_of (meta_ ctx t (pay_ ctx t parent (i + 1))) > min_keys
  then borrow_right (pay_ ctx t parent (i + 1))
  else if
    i > 0 && nkeys_of (meta_ ctx t (pay_ ctx t parent (i - 1))) > min_keys
  then borrow_left (pay_ ctx t parent (i - 1))
  else if i + 1 < pk then merge i
  else merge (i - 1)

let remove (ctx : Ctx.ctx) t key =
  let rec go n =
    let m = meta_ ctx t n in
    let nk = nkeys_of m in
    if leaf_of m then begin
      let i = leaf_slot ctx t n ~nk key in
      if i < nk && key_ ctx t n i = key then begin
        shift_left ctx t n ~nkeys:nk i;
        set_meta ctx t n ~leaf:true ~nkeys:(nk - 1);
        set_count ctx t (length ctx t - 1);
        true
      end
      else false
    end
    else go (fix_child ctx t n (child_slot ctx t n ~nkeys:nk key))
  in
  let removed = go (root_ ctx t) in
  (* eager root collapse: a single-child internal root hands its slot
     to the child before the transaction ends, so the parent-entry
     precondition of [fix_child] holds on every later descent *)
  let rec collapse () =
    let root = root_ ctx t in
    let m = meta_ ctx t root in
    if (not (leaf_of m)) && nkeys_of m = 1 then begin
      set_root ctx t (pay_ ctx t root 0);
      free_node ctx t root;
      t.st.root_shrinks <- t.st.root_shrinks + 1;
      collapse ()
    end
  in
  collapse ();
  removed

(* ---- ordered iteration: one descent, then leaf right-links ---- *)

let iter_leaf_slow ctx t ~lo f n continue_ =
  let node = !n in
  let nk = nkeys_of (r_meta ctx node) in
  let i = ref 0 in
  while !continue_ && !i < nk do
    let k = r_key ctx t node !i in
    if k >= lo then continue_ := f k (r_pay ctx t node !i);
    incr i
  done;
  if !continue_ then n := r_right ctx node

let iter_from ctx t ~lo f =
  let n = ref (locate_leaf ctx t (root_ ctx t) lo) in
  let continue_ = ref true in
  while !continue_ && !n <> 0 do
    match t.sh with
    | Some sh -> (
        match Shadow.node sh !n with
        | nd ->
            Shadow.hit sh;
            let nk = nkeys_of nd.Shadow.meta in
            let i = ref (Shadow.lower_bound nd.Shadow.keys nk lo) in
            while !continue_ && !i < nk do
              continue_ := f nd.Shadow.keys.(!i) nd.Shadow.pays.(!i);
              incr i
            done;
            if !continue_ then n := nd.Shadow.right
        | exception Not_found ->
            Shadow.miss sh;
            iter_leaf_slow ctx t ~lo f n continue_)
    | None -> iter_leaf_slow ctx t ~lo f n continue_
  done

let iter_range ctx t ~lo ~hi f =
  iter_from ctx t ~lo (fun k v ->
      k <= hi
      && begin
           f k v;
           true
         end)

let range ctx t ~lo ~hi =
  let acc = ref [] in
  iter_range ctx t ~lo ~hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let iter ctx t f =
  iter_from ctx t ~lo:min_int (fun k v ->
      f k v;
      true)

let fold ctx t f init =
  let acc = ref init in
  iter ctx t (fun k v -> acc := f k v !acc);
  !acc

let height ctx t =
  let rec go n acc =
    let m = meta_ ctx t n in
    if leaf_of m then acc else go (pay_ ctx t n 0) (acc + 1)
  in
  go (root_ ctx t) 1

let node_count ctx t =
  let internal = ref 0 and leaves = ref 0 in
  let rec go n =
    let m = meta_ ctx t n in
    if leaf_of m then incr leaves
    else begin
      incr internal;
      for i = 0 to nkeys_of m - 1 do
        go (pay_ ctx t n i)
      done
    end
  in
  go (root_ ctx t);
  (!internal, !leaves)

(* ---- structural audit ---- *)

let fail fmt = Fmt.kstr (fun s -> failwith ("Pbtree.check: " ^ s)) fmt

(* the audit reads the media directly ([r_*], never the mirror): it must
   catch a mirror that diverged from the durable structure, not certify
   the mirror against itself *)
let check (ctx : Ctx.ctx) t =
  let min_keys = t.order / 2 in
  (* nodes per depth in left-to-right walk order, for the chain audit *)
  let levels : (int, Addr.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let leaf_depth = ref (-1) in
  let entries = ref 0 in
  (* subtree keys must lie in (lo, hi]; [hi] is also the separator the
     parent holds for this node *)
  let rec walk n ~lo ~hi ~depth ~is_root =
    (match Hashtbl.find_opt levels depth with
    | Some l -> l := n :: !l
    | None -> Hashtbl.add levels depth (ref [ n ]));
    let m = r_meta ctx n in
    let nk = nkeys_of m in
    let leaf = leaf_of m in
    if r_high ctx n <> hi then
      fail "node %#x: high %d, parent separator %d" n (r_high ctx n) hi;
    if nk > t.order then fail "node %#x: %d keys, order %d" n nk t.order;
    if (not is_root) && nk < min_keys then
      fail "node %#x: %d keys, minimum %d" n nk min_keys;
    if is_root && (not leaf) && nk < 2 then
      fail "internal root %#x kept %d child(ren)" n nk;
    for i = 0 to nk - 1 do
      let k = r_key ctx t n i in
      if i > 0 && k <= r_key ctx t n (i - 1) then
        fail "node %#x: keys out of order at slot %d" n i;
      if k <= lo || k > hi then
        fail "node %#x: key %d outside bound (%d, %d]" n k lo hi
    done;
    if leaf then begin
      if !leaf_depth = -1 then leaf_depth := depth
      else if !leaf_depth <> depth then
        fail "leaf %#x at depth %d, first leaf at %d" n depth !leaf_depth;
      entries := !entries + nk
    end
    else begin
      if nk = 0 then fail "internal node %#x is empty" n;
      if r_key ctx t n (nk - 1) <> hi then
        fail "internal %#x: last separator %d <> high %d" n
          (r_key ctx t n (nk - 1))
          hi;
      let prev = ref lo in
      for i = 0 to nk - 1 do
        let sep = r_key ctx t n i in
        walk (r_pay ctx t n i) ~lo:!prev ~hi:sep ~depth:(depth + 1)
          ~is_root:false;
        prev := sep
      done
    end
  in
  walk (ctx.Ctx.read (h_root t.hdr)) ~lo:min_int ~hi:no_key ~depth:0
    ~is_root:true;
  (* every level's right links must chain its nodes in walk order *)
  Hashtbl.iter
    (fun depth l ->
      let nodes = Array.of_list (List.rev !l) in
      let last = Array.length nodes - 1 in
      Array.iteri
        (fun i n ->
          let expect = if i = last then 0 else nodes.(i + 1) in
          if r_right ctx n <> expect then
            fail "node %#x (depth %d): right link %#x, expected %#x" n depth
              (r_right ctx n) expect)
        nodes)
    levels;
  let count = ctx.Ctx.read (h_count t.hdr) in
  if count <> !entries then
    fail "header count %d, %d leaf entries" count !entries
