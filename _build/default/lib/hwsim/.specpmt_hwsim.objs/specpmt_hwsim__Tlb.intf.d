lib/hwsim/tlb.mli: Hwconfig Specpmt_pmem
