lib/hwtxn/epoch_coord.mli: Epoch_protocol
