lib/stamp/kmeans.mli: Wtypes
