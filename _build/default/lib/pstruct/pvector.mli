(** Growable persistent vector of 8-byte cells.

    Growth reallocates the data block at double capacity and copies inside
    the calling transaction, so crash atomicity extends to reallocation. *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> ?capacity:int -> unit -> t
val of_header : Addr.t -> t
val header : t -> Addr.t
val capacity : Ctx.ctx -> t -> int
val length : Ctx.ctx -> t -> int

val get : Ctx.ctx -> t -> int -> int
(** Raises [Invalid_argument] out of bounds. *)

val set : Ctx.ctx -> t -> int -> int -> unit
val push : Ctx.ctx -> t -> int -> unit
val pop : Ctx.ctx -> t -> int option
val iter : Ctx.ctx -> t -> (int -> unit) -> unit
val to_list : Ctx.ctx -> t -> int list
