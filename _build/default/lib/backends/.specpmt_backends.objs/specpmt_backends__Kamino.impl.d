lib/backends/kamino.ml: Addr Ctx Heap Intent_log List Pmem Slots Specpmt_pmalloc Specpmt_pmem Specpmt_txn Write_set
