examples/job_queue.ml: Array Ctx Heap Pmem Pmem_config Printf Random Specpmt Specpmt_pstruct Sys
