open Specpmt_backends
open Specpmt_txn
module Metrics = Specpmt_obs.Metrics

(* Per-shard group commit: execute a batch of queued transactions
   back-to-back as tentative commits (poisoned checksums, no fences),
   then seal the whole batch with one flush run and a single fence
   (Spec_soft.batch_end).  K batched transactions share one ordering
   point, so fences/txn tends to 1/K.

   Data-persist runtimes fence each transaction's data individually by
   definition, so for them the batcher degrades to plain sequential
   commits. *)

type t = {
  backend : Ctx.backend;
  rt : Spec_soft.t;
  batching : bool;
  mutable sealing : bool;
      (* true exactly while [batch_end] runs — a crash observed with
         [sealing] set may have durably committed any prefix of the
         batch; outside it the batch boundary is exact *)
  mutable batches : int;
  mutable sealed : int;
}

let create ~backend ~rt =
  {
    backend;
    rt;
    batching = not (Spec_soft.params rt).Spec_soft.data_persist;
    sealing = false;
    batches = 0;
    sealed = 0;
  }

(* The three-call form is the worker hot path: the caller opens the
   batch, runs each transaction through [exec] with whatever reusable
   closure it owns, and closes with the executed count — no job list,
   no per-batch closures. *)
let batch_begin t = if t.batching then Spec_soft.batch_begin t.rt

let exec t f = t.backend.Ctx.run_tx f

let batch_end t ~n =
  if t.batching then begin
    t.sealing <- true;
    let sealed = Spec_soft.batch_end t.rt in
    t.sealing <- false;
    t.sealed <- t.sealed + sealed
  end;
  if n > 0 then begin
    t.batches <- t.batches + 1;
    (* looked up per seal: metric cells are domain-local, and a
       module-level lazy would capture (and race on) the cell of
       whichever domain forced it first *)
    Specpmt_obs.Hist.observe (Metrics.histogram "svc.batch_size") n;
    Metrics.incr (Metrics.counter "svc.batches")
  end

let run t jobs =
  match jobs with
  | [] -> ()
  | jobs ->
      batch_begin t;
      List.iter (fun f -> exec t f) jobs;
      batch_end t ~n:(List.length jobs)

let sealing t = t.sealing
let batches t = t.batches
let sealed_records t = t.sealed
let backend t = t.backend

(* post-crash: the interrupted seal (if any) is over *)
let reset t = t.sealing <- false
