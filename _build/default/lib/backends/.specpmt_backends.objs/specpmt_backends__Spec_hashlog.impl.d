lib/backends/spec_hashlog.ml: Addr Checksum Ctx Hashtbl Heap Layout List Pmem Slots Specpmt_pmalloc Specpmt_pmem Specpmt_txn Tsc Write_set
