(* Crash-atomic bank transfers: the classic two-account invariant.

     dune exec examples/bank_transfer.exe [-- <scheme>]

   Money moves between accounts inside transactions; the device crashes at
   arbitrary points (with aggressive cache leakage).  After every recovery
   the total balance must be exactly conserved — a violation means a
   transfer was half-applied.  Also compares the persistence bill of the
   undo-logging baseline with SpecPMT on the same workload. *)

open Specpmt

let scheme = if Array.length Sys.argv > 1 then Sys.argv.(1) else "SpecSPMT"
let accounts = 64
let initial = 1_000

let run_with scheme =
  let pm =
    Pmem.create ~seed:7
      { Pmem_config.default with crash_word_persist_prob = 0.9 }
  in
  let heap = Heap.create pm in
  let tx = create_scheme heap scheme in
  let base = Heap.alloc heap (accounts * 8) in
  tx.Ctx.run_tx (fun ctx ->
      for i = 0 to accounts - 1 do
        ctx.Ctx.write (base + (i * 8)) initial
      done);
  let rand = Random.State.make [| 99 |] in
  let total () =
    let t = ref 0 in
    for i = 0 to accounts - 1 do
      t := !t + Pmem.peek_volatile_int pm (base + (i * 8))
    done;
    !t
  in
  let crashes = ref 0 and transfers = ref 0 in
  for _round = 1 to 25 do
    Pmem.set_fuse pm (Some (100 + Random.State.int rand 2000));
    (try
       while true do
         let from = Random.State.int rand accounts
         and to_ = Random.State.int rand accounts in
         let amount = 1 + Random.State.int rand 50 in
         tx.Ctx.run_tx (fun ctx ->
             let f = ctx.Ctx.read (base + (from * 8)) in
             if f >= amount then begin
               ctx.Ctx.write (base + (from * 8)) (f - amount);
               ctx.Ctx.write
                 (base + (to_ * 8))
                 (ctx.Ctx.read (base + (to_ * 8)) + amount)
             end);
         incr transfers
       done
     with Pmem.Crash ->
       incr crashes;
       Pmem.crash pm;
       tx.Ctx.recover ());
    let t = total () in
    if t <> accounts * initial then (
      Printf.printf "%s: money %s after crash %d! total=%d expected=%d\n"
        scheme
        (if t > accounts * initial then "created" else "destroyed")
        !crashes t (accounts * initial);
      exit 1)
  done;
  let s = Pmem.stats pm in
  Printf.printf
    "%-12s %5d transfers, %2d crashes survived, balance conserved; %7d \
     fences, %8.2f ms simulated\n"
    scheme !transfers !crashes s.Stats.fences (s.Stats.ns /. 1e6)

let () =
  Printf.printf "crash-atomic transfers over %d accounts\n" accounts;
  run_with scheme;
  if scheme = "SpecSPMT" then begin
    (* the same torture under the undo-logging baseline, for the bill *)
    run_with "PMDK";
    print_endline
      "note: same conservation guarantee, very different persistence bill."
  end
