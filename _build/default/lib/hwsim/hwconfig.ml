(** Simulated-hardware parameters (paper Table 1 and Section 5).

    The cores run at 4 GHz; cycle counts are converted to nanoseconds for
    the shared cost ledger of {!Specpmt_pmem.Pmem}. *)

type t = {
  l1_tlb_entries : int;  (** private, 64 entries, 8-way *)
  l2_tlb_entries : int;  (** private, 1536 entries, 12-way *)
  tlb_l2_hit_ns : float;  (** extra cost of missing L1 TLB but hitting L2 *)
  tlb_miss_ns : float;  (** page walk on a full TLB miss *)
  l1_lines : int;  (** L1 data-cache capacity in line tags (512 = 32 KiB) *)
  hot_threshold : int;
      (** stores on a cold page before it turns hot: the 3-bit saturating
          counter's maximum (Section 5.1) *)
  log_buffer_lines : int;
      (** HOOP's dedicated on-chip buffer, in cache lines (273 KB/core in
          the paper; drained to the log when full) *)
  epoch_max_bytes : int;  (** start a new epoch past this many log bytes *)
  epoch_max_pages : int;  (** ... or past this many speculatively logged pages *)
  log_budget_bytes : int;
      (** reclaim oldest epochs when the speculative log exceeds this *)
  spec_block_bytes : int;  (** log-block size of the hardware spec log *)
}

let default =
  {
    l1_tlb_entries = 64;
    l2_tlb_entries = 1536;
    tlb_l2_hit_ns = 1.75 (* 7 cycles *);
    tlb_miss_ns = 25.0 (* page walk *);
    l1_lines = 512;
    hot_threshold = 7;
    log_buffer_lines = 4368 (* 273 KB *);
    epoch_max_bytes = 2 * 1024 * 1024;
    epoch_max_pages = 200;
    log_budget_bytes = 8 * 1024 * 1024;
    spec_block_bytes = 8192;
  }

(** Shrunk structures for unit tests: tiny TLB and epochs so that the
    interesting transitions fire quickly. *)
let small =
  {
    default with
    l1_tlb_entries = 4;
    l2_tlb_entries = 16;
    l1_lines = 16;
    hot_threshold = 3;
    epoch_max_bytes = 12 * 1024;
    epoch_max_pages = 4;
    log_budget_bytes = 64 * 1024;
    spec_block_bytes = 8192;
  }
