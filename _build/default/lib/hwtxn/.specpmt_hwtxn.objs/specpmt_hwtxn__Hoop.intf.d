lib/hwtxn/hoop.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
