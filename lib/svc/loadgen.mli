(** Deterministic closed-loop load generator (tentpole component (d)).

    [clients] simulated clients each keep at most one request
    outstanding: generate (Zipf-skewed key, read/write coin), submit,
    wait for the acknowledgement, repeat — a client whose request was
    shed holds it and retries after the next drain.  Per-op latency
    ({e first submit attempt} to fence retirement, simulated ns — so
    time held after a shed counts) feeds {!Specpmt_obs.Hist}; the
    report carries p50/p90/p99 and throughput per shard.  Every write
    carries a unique value so crash audits can attribute cell states to
    the op that produced them. *)

type config = {
  clients : int;
  ops : int;  (** total operations to complete *)
  read_frac : float;  (** probability an op is a read *)
  skew : float;  (** Zipf theta; [<= 0] is uniform *)
  seed : int;
}

val zipf_sampler : n:int -> theta:float -> Random.State.t -> unit -> int
(** Inverse-CDF Zipf over [0, n) (uniform when [theta <= 0]); the
    cumulative table is built once, each draw is O(log n). *)

val drawer : config -> keys:int -> unit -> int * Service.op
(** The seeded (key, op) drawer both {!op_stream} and {!run} call: key
    draw, then mix coin, then a unique write value keyed on the draw's
    position.  Each call to [drawer] restarts the sequence from the
    config's seed; successive calls to the returned closure advance
    it. *)

val op_stream : config -> keys:int -> (int * Service.op) array
(** The deterministic (key, op) stream of this config in issue order —
    the same {!drawer} sequence {!run}'s clients issue.  The data
    plane's router consumes this positionally, which is what makes its
    batch composition (and hence its invariant report) independent of
    domain count and timing. *)

type shard_report = {
  sh_id : int;
  sh_ops : int;
  sh_rejected : int;
  sh_batches : int;
  sh_sealed : int;
  sh_max_inflight : int;
  sh_latency : Specpmt_obs.Hist.snapshot;
  sh_ops_per_ms : float;
}

type report = {
  r_config : config;
  svc_config : Service.config;
  span_ns : float;  (** simulated time of the measured run *)
  total_ops : int;
  reads : int;
  writes : int;
  rejected : int;  (** admission sheds (service-side) *)
  retries : int;  (** client-side resubmissions after a shed *)
  batches : int;
  sealed_records : int;
  fences : int;
  fences_per_write : float;
      (** the group-commit amortisation metric: tends to 1/batch_max *)
  latency : Specpmt_obs.Hist.snapshot;
  shards : shard_report list;
}

val run :
  ?on_issue:(int * Service.op -> unit) -> Service.t -> config -> report
(** Drive the service to [ops] completed operations.  Measurement
    starts at the call (service setup/adoption excluded); also sets the
    [svc.fences_per_txn] gauge.  Per-op latency is measured from the
    client's {e first} submit attempt, so time spent holding a shed
    request is charged to the op that suffered it.  [on_issue] fires
    once per op at draw time, in issue order — the hook the
    stream-equals-run regression pins {!drawer} sharing with. *)

val report_to_json : report -> Specpmt_obs.Json.t
(** One object: config echo, totals, fences/write, global latency
    histogram (with p50/p90/p99) and a [per_shard] list with ops,
    throughput and latency per shard. *)

val pp : Format.formatter -> report -> unit
(** Human-readable summary (the [svc-bench] output). *)
