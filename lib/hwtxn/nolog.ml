(** The no-log ideal (Section 7.1.3): transactions persist their write set
    at commit with one drain and perform no logging whatsoever.  This is
    the performance ceiling for in-place-update persistent transactions —
    and it is {e not} crash consistent. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = { heap : Heap.t; pm : Pmem.t; ws : Write_set.t; mutable in_tx : bool }

let run_tx t f =
  if t.in_tx then invalid_arg "Nolog: nested transaction";
  t.in_tx <- true;
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write =
        (fun a v ->
          ignore (Write_set.record t.ws a ~old_value:0);
          Pmem.store_int t.pm a v);
      alloc = (fun n -> Heap.alloc t.heap n);
      free = (fun a -> Heap.free t.heap a);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      Write_set.iter_in_order t.ws (fun a _ -> Pmem.clwb t.pm a);
      Pmem.sfence t.pm;
      Write_set.clear t.ws;
      t.in_tx <- false;
      Ctx.Hooks.fire hooks true;
      v
  | exception e ->
      Write_set.clear t.ws;
      t.in_tx <- false;
      Ctx.Hooks.fire hooks false;
      raise e

let create heap =
  let t =
    { heap; pm = Heap.pmem heap; ws = Write_set.create (); in_tx = false }
  in
  {
    Ctx.name = "no-log";
    run_tx = (fun f -> run_tx t f);
    recover = (fun () -> invalid_arg "no-log provides no crash consistency");
    drain = (fun () -> ());
    log_footprint = (fun () -> 0);
    supports_recovery = false;
  }
