(** Shared epoch registry for multi-threaded hardware SpecPMT
    (paper Section 5.2.2).

    Each thread registers when its epochs start and end (timestamps from
    the shared logical clock); before reclaiming an epoch, a thread asks
    whether any other thread's epoch that is still active overlaps it —
    the check that makes the Figure 11 data loss impossible.  The decision
    logic itself is the pure {!Epoch_protocol}. *)

type t

val create : unit -> t

val register_start : t -> thread:int -> eid:int -> start_ts:int -> unit
(** [startepoch]: a fresh, active epoch. *)

val register_end : t -> thread:int -> eid:int -> end_ts:int -> unit
(** The epoch stops accepting records (its thread started a newer one). *)

val may_reclaim : t -> thread:int -> eid:int -> bool
(** Whether the (ended) epoch can be reclaimed now: no other thread's
    live epoch started at or before its end. *)

val drop : t -> thread:int -> eid:int -> unit
(** The epoch's records are gone; forget its span. *)

val reset : t -> unit
(** Post-recovery: all pre-crash epochs are dead. *)

val reset_thread : t -> thread:int -> unit
(** Forget one thread's epochs (that thread recovered alone). *)

val spans : t -> Epoch_protocol.epoch_span list
(** Introspection for tests. *)
