lib/backends/raw.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
