(** No-transaction baseline: plain in-place updates, no logging, flushes
    or fences — the "versions without persistent memory transactions" that
    Figure 1 measures overhead against.  Not crash consistent. *)

open Specpmt_pmalloc
open Specpmt_txn

val create : Heap.t -> Ctx.backend
