lib/stamp/vacation.mli: Wtypes
