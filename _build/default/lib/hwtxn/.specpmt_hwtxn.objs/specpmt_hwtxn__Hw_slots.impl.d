lib/hwtxn/hw_slots.ml:
