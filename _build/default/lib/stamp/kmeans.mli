(** k-means clustering (STAMP); see the implementation header. *)

val low : Wtypes.t
(** 32 clusters (low contention). *)

val high : Wtypes.t
(** 8 clusters (high contention). *)
