open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_svc
module Hist = Specpmt_obs.Hist
module Json = Specpmt_obs.Json

(* Acceptance tests for the open-loop YCSB suite: the shared Loadgen
   drawer, coordinated-omission-safe latency (both closed- and
   open-loop), zipf/admission statistical coverage, scenario mixes,
   Rmw/Scan semantics, open-loop determinism + the saturation knee, and
   recovery under load. *)

let mk_svc ?(seed = 5) cfg =
  let pm = Pmem.create ~seed Config.small in
  let heap = Heap.create pm in
  (pm, Service.create heap cfg)

(* ---------- satellite: one drawer behind op_stream and run ---------- *)

let test_drawer_shared () =
  let cfg =
    { Loadgen.clients = 8; ops = 300; read_frac = 0.4; skew = 0.9; seed = 3 }
  in
  let keys = 128 in
  let stream = Loadgen.op_stream cfg ~keys in
  let issued = ref [] in
  let _, svc =
    mk_svc { Service.shards = 4; batch_max = 4; depth = 16; keys }
  in
  let _ = Loadgen.run ~on_issue:(fun p -> issued := p :: !issued) svc cfg in
  let issued = Array.of_list (List.rev !issued) in
  Alcotest.(check int) "same number of ops issued" (Array.length stream)
    (Array.length issued);
  Array.iteri
    (fun i (k, op) ->
      let k', op' = issued.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "op %d: stream (%d) = run (%d)" i k k')
        true
        (k = k' && op = op'))
    stream

(* ---------- satellite: held time shows up in the histogram ---------- *)

(* depth 1 under 4 clients: three of every four outstanding ops hold
   after a shed, so client-side p99 (first submit attempt -> ack) must
   sit far above the shard-side p99 (admission -> ack).  The pre-fix
   code measured from [c_enq_ns] and reported the two as equal. *)
let test_held_time_in_p99 () =
  let keys = 16 in
  let _, svc =
    mk_svc { Service.shards = 1; batch_max = 1; depth = 1; keys }
  in
  let cfg =
    { Loadgen.clients = 4; ops = 120; read_frac = 0.0; skew = 0.0; seed = 5 }
  in
  let r = Loadgen.run svc cfg in
  Alcotest.(check bool)
    (Printf.sprintf "sheds happened (%d retries)" r.Loadgen.retries)
    true (r.Loadgen.retries > 0);
  let client_p99 = Hist.quantile r.Loadgen.latency 0.99 in
  let shard = List.hd r.Loadgen.shards in
  let shard_p99 = Hist.quantile shard.Loadgen.sh_latency 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "client p99 %d >= 4x shard p99 %d" client_p99 shard_p99)
    true
    (client_p99 >= 4 * shard_p99)

(* ---------- satellite: zipf_sampler statistics ---------- *)

let test_zipf_stats () =
  let st = Random.State.make [| 42 |] in
  let n = 1024 and draws = 30_000 in
  let sample = Loadgen.zipf_sampler ~n ~theta:0.99 st in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = sample () in
    Alcotest.(check bool) "in range" true (k >= 0 && k < n);
    counts.(k) <- counts.(k) + 1
  done;
  (* H(1024, 0.99) ~ 7.5: p(rank 0) ~ 0.13, top-10 mass ~ 0.39 *)
  let frac k = float_of_int counts.(k) /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "head mass %.3f >= 0.08 at theta=0.99" (frac 0))
    true
    (frac 0 >= 0.08);
  let top10 = ref 0 in
  for k = 0 to 9 do
    top10 := !top10 + counts.(k)
  done;
  let top10 = float_of_int !top10 /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "top-10 mass %.3f in [0.25, 0.6]" top10)
    true
    (top10 >= 0.25 && top10 <= 0.6);
  (* theta <= 0 is uniform: every bin within 25% of the expectation *)
  let n = 16 and draws = 32_000 in
  let sample = Loadgen.zipf_sampler ~n ~theta:0.0 st in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = sample () in
    counts.(k) <- counts.(k) + 1
  done;
  let expect = draws / n in
  Array.iteri
    (fun k c ->
      Alcotest.(check bool)
        (Printf.sprintf "uniform bin %d: %d within 25%% of %d" k c expect)
        true
        (c >= expect * 3 / 4 && c <= expect * 5 / 4))
    counts;
  (* n = 1 degenerates to the only key, at any theta *)
  List.iter
    (fun theta ->
      let sample = Loadgen.zipf_sampler ~n:1 ~theta st in
      for _ = 1 to 50 do
        Alcotest.(check int) "n=1 always draws 0" 0 (sample ())
      done)
    [ 0.0; 0.99 ]

(* ---------- satellite: admission accounting under interleaving ---------- *)

let test_admission_interleaved () =
  let a : int Admission.t = Admission.create ~depth:3 in
  let accept x =
    match Admission.offer a x with
    | Admission.Accepted -> ()
    | Admission.Rejected _ -> Alcotest.fail "expected accept"
  in
  let reject x =
    match Admission.offer a x with
    | Admission.Accepted -> Alcotest.fail "expected reject"
    | Admission.Rejected _ -> ()
  in
  accept 1;
  accept 2;
  accept 3;
  reject 4;
  reject 5;
  Alcotest.(check int) "queued" 3 (Admission.queued a);
  Alcotest.(check int) "inflight" 3 (Admission.inflight a);
  Alcotest.(check (list int)) "take 2 in order" [ 1; 2 ]
    (Admission.take_up_to a 2);
  Alcotest.(check int) "queued after take" 1 (Admission.queued a);
  Alcotest.(check int) "inflight unchanged by take" 3 (Admission.inflight a);
  (* dequeued-but-unacked requests still hold admission slots *)
  reject 6;
  Admission.ack a 2;
  Alcotest.(check int) "inflight after ack" 1 (Admission.inflight a);
  accept 7;
  Alcotest.(check (list int)) "take rest" [ 3; 7 ] (Admission.take_up_to a 10);
  Admission.ack a 1;
  Alcotest.(check bool) "over-ack raises" true
    (match Admission.ack a 2 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Admission.ack a 1;
  Alcotest.(check int) "accepted total" 4 (Admission.accepted a);
  Alcotest.(check int) "rejected total" 3 (Admission.rejected a);
  Alcotest.(check int) "acked total" 4 (Admission.acked a);
  Alcotest.(check int) "max_inflight" 3 (Admission.max_inflight a);
  accept 8;
  Admission.clear a;
  Alcotest.(check int) "clear empties the queue" 0 (Admission.queued a);
  Alcotest.(check int) "clear zeroes inflight" 0 (Admission.inflight a);
  Alcotest.(check int) "clear keeps accepted" 5 (Admission.accepted a);
  Alcotest.(check int) "clear keeps rejected" 3 (Admission.rejected a);
  Alcotest.(check int) "clear keeps acked" 4 (Admission.acked a);
  accept 9;
  Alcotest.(check int) "serves again after clear" 1 (Admission.queued a)

(* ---------- scenario: mix fractions and stream well-formedness ---------- *)

let test_scenario_mixes () =
  let ops = 4000 and keys = 512 in
  List.iter
    (fun mix ->
      let sp = Scenario.spec mix in
      let stream = Scenario.op_stream sp ~ops ~keys ~seed:11 in
      Alcotest.(check int)
        (Scenario.mix_to_string mix ^ ": stream length")
        ops (Array.length stream);
      let t = Scenario.tally stream in
      let frac n = float_of_int n /. float_of_int ops in
      let close name got want =
        Alcotest.(check bool)
          (Printf.sprintf "%s %s %.3f within 0.03 of %.2f"
             (Scenario.mix_to_string mix) name got want)
          true
          (Float.abs (got -. want) <= 0.03)
      in
      close "reads" (frac t.Scenario.t_reads) sp.Scenario.read;
      close "writes"
        (frac t.Scenario.t_writes)
        (sp.Scenario.update +. sp.Scenario.insert);
      close "rmws" (frac t.Scenario.t_rmws) sp.Scenario.rmw;
      close "scans" (frac t.Scenario.t_scans) sp.Scenario.scan;
      Array.iter
        (fun (k, op) ->
          Alcotest.(check bool) "key in range" true (k >= 0 && k < keys);
          match op with
          | Service.Scan len ->
              Alcotest.(check bool) "scan len in [1, scan_max]" true
                (len >= 1 && len <= sp.Scenario.scan_max)
          | _ -> ())
        stream;
      (* determinism: same inputs, same stream *)
      Alcotest.(check bool) "stream deterministic" true
        (stream = Scenario.op_stream sp ~ops ~keys ~seed:11))
    Scenario.all_mixes;
  (* D's latest distribution: reads cluster near the insert frontier *)
  let spd = Scenario.spec Scenario.D in
  let stream = Scenario.op_stream spd ~ops ~keys ~seed:7 in
  let read_keys =
    Array.to_list stream
    |> List.filter_map (fun (k, op) ->
           match op with Service.Read -> Some k | _ -> None)
  in
  let near_frontier =
    List.length (List.filter (fun k -> k >= keys / 4) read_keys)
  in
  Alcotest.(check bool)
    (Printf.sprintf "latest reads skew to recent keys (%d/%d)" near_frontier
       (List.length read_keys))
    true
    (float_of_int near_frontier
    >= 0.8 *. float_of_int (List.length read_keys))

(* ---------- Rmw and Scan semantics through the serial service ---------- *)

let test_rmw_scan_semantics () =
  let keys = 64 in
  let _, svc =
    mk_svc { Service.shards = 3; batch_max = 4; depth = 8; keys }
  in
  let completions = ref [] in
  let submit_drain key op =
    (match Service.submit svc ~client:0 ~key op with
    | Admission.Accepted -> ()
    | Admission.Rejected _ -> Alcotest.fail "unexpected shed");
    match Service.drain svc with
    | [ c ] ->
        completions := c :: !completions;
        c.Service.value
    | cs -> Alcotest.fail (Printf.sprintf "%d completions" (List.length cs))
  in
  let _ = submit_drain 5 (Service.Write 10) in
  Alcotest.(check int) "rmw returns old + delta" 17
    (submit_drain 5 (Service.Rmw 7));
  Alcotest.(check int) "rmw persisted" 17 (Service.peek svc 5);
  Alcotest.(check int) "rmw composes" 18 (submit_drain 5 (Service.Rmw 1));
  (* Scan semantics: ordered walk of the shard's POPULATED keys from
     the anchor — only keys a client write has touched are visible.
     Populate a few more keys of key 5's shard, then model the walk
     from the sorted populated row. *)
  let shard = Service.shard_of_key svc 5 in
  let row = Service.owned_keys svc shard in
  Alcotest.(check bool) "key 5 is in its shard's row" true
    (Array.exists (fun k -> k = 5) row);
  (* populate every 3rd owned key besides 5 (writes also index them) *)
  Array.iteri
    (fun i k -> if i mod 3 = 0 && k <> 5 then
        ignore (submit_drain k (Service.Write (100 + k))))
    row;
  let populated =
    Array.to_list row
    |> List.filter (fun k -> Oindex.is_populated (Service.oindex svc) k)
  in
  Alcotest.(check bool) "populated keys include 5" true
    (List.mem 5 populated);
  let expect ~anchor len =
    let window =
      List.filter (fun k -> k >= anchor) populated |> List.filteri (fun i _ -> i < len)
    in
    List.fold_left
      (fun acc k -> ((acc * 31) + k + Service.peek svc k) land max_int)
      0 window
  in
  Alcotest.(check int) "scan 4 checksums the window" (expect ~anchor:5 4)
    (submit_drain 5 (Service.Scan 4));
  Alcotest.(check int) "scan 1 is a point checksum"
    ((5 + 18) land max_int)
    (submit_drain 5 (Service.Scan 1));
  Alcotest.(check int) "scan clips at the populated end"
    (expect ~anchor:5 (Array.length row + 10))
    (submit_drain 5 (Service.Scan (Array.length row + 10)));
  (* unpopulated tail: an anchor past every populated key scans nothing *)
  let max_pop = List.fold_left max 0 populated in
  (match
     Array.to_list row |> List.filter (fun k -> k > max_pop)
   with
  | [] -> ()
  | k :: _ ->
      Alcotest.(check int) "scan past the populated set is 0" 0
        (submit_drain k (Service.Scan 4)));
  Alcotest.(check bool) "scan 0 raises" true
    (match Service.submit svc ~client:0 ~key:5 (Service.Scan 0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- open-loop schedules ---------- *)

let test_schedules () =
  let n = 20_000 in
  let rate = 1e6 in
  let sched =
    Openloop.schedule { Openloop.rate; arrivals = Openloop.Poisson; seed = 9 }
      ~n
  in
  for i = 1 to n - 1 do
    if sched.(i) < sched.(i - 1) then Alcotest.fail "schedule not monotone"
  done;
  (* mean inter-arrival within 5% of 1/rate over 20k gaps *)
  let mean = sched.(n - 1) /. float_of_int (n - 1) in
  let want = 1e9 /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean gap %.1f within 5%% of %.1f" mean want)
    true
    (Float.abs (mean -. want) /. want <= 0.05);
  (* burst: every arrival lands inside an ON window, mean rate holds *)
  let on_ns = 100_000.0 and off_ns = 300_000.0 in
  let sched =
    Openloop.schedule
      { Openloop.rate; arrivals = Openloop.Burst { on_ns; off_ns }; seed = 9 }
      ~n
  in
  let cycle = on_ns +. off_ns in
  Array.iter
    (fun t ->
      let pos = Float.rem t cycle in
      if pos >= on_ns then
        Alcotest.fail (Printf.sprintf "arrival at %.0f is in an OFF window" t))
    sched;
  let mean = sched.(n - 1) /. float_of_int (n - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "burst mean gap %.1f within 15%% of %.1f" mean want)
    true
    (Float.abs (mean -. want) /. want <= 0.15);
  (* saturation probe: rate <= 0 puts everything at t = 0 *)
  let sat =
    Openloop.schedule
      { Openloop.rate = 0.0; arrivals = Openloop.Poisson; seed = 9 }
      ~n:16
  in
  Array.iter (fun t -> Alcotest.(check (float 0.0)) "t=0" 0.0 t) sat

(* ---------- open-loop: determinism, CO accounting, the knee ---------- *)

let ol_svc_cfg = { Service.shards = 4; batch_max = 8; depth = 32; keys = 256 }

let ol_stream ops =
  Loadgen.op_stream
    { Loadgen.clients = 1; ops; read_frac = 0.5; skew = 0.9; seed = 23 }
    ~keys:ol_svc_cfg.Service.keys

let ol_run ~rate stream =
  let _, svc = mk_svc ol_svc_cfg in
  Openloop.run svc { Openloop.rate; arrivals = Openloop.Poisson; seed = 7 }
    stream

let test_openloop_deterministic () =
  let stream = ol_stream 600 in
  let j r = Json.to_string (Openloop.report_to_json r) in
  let r1 = ol_run ~rate:0.0 stream and r2 = ol_run ~rate:0.0 stream in
  Alcotest.(check string) "saturation probe byte-identical" (j r1) (j r2);
  let rate = r1.Openloop.goodput_ops_per_sec *. 0.5 in
  let r3 = ol_run ~rate stream and r4 = ol_run ~rate stream in
  Alcotest.(check string) "rated run byte-identical" (j r3) (j r4)

(* the saturation probe is also the directed CO test: every op arrives
   at t = 0, so op latencies grow with queue position and the p99 must
   be of the order of the whole span — a generator that re-times ops
   from their eventual submit would report a p99 near the per-batch
   service time instead *)
let test_openloop_co_latency () =
  let r = ol_run ~rate:0.0 (ol_stream 600) in
  Alcotest.(check int) "all ops complete" 600 r.Openloop.ops;
  let p99 = float_of_int (Hist.quantile r.Openloop.latency 0.99) in
  Alcotest.(check bool)
    (Printf.sprintf "CO-safe p99 %.0f >= span/4 %.0f" p99
       (r.Openloop.span_ns /. 4.0))
    true
    (p99 >= r.Openloop.span_ns /. 4.0)

let test_openloop_knee () =
  let stream = ol_stream 800 in
  let cap = (ol_run ~rate:0.0 stream).Openloop.goodput_ops_per_sec in
  Alcotest.(check bool) "capacity positive" true (cap > 0.0);
  let low = ol_run ~rate:(0.3 *. cap) stream in
  let over = ol_run ~rate:(3.0 *. cap) stream in
  (* below the knee goodput tracks offered load *)
  Alcotest.(check bool)
    (Printf.sprintf "low rate: goodput %.0f within 20%% of offered %.0f"
       low.Openloop.goodput_ops_per_sec low.Openloop.offered_ops_per_sec)
    true
    (Float.abs
       (low.Openloop.goodput_ops_per_sec /. low.Openloop.offered_ops_per_sec
      -. 1.0)
    <= 0.2);
  (* past the knee goodput pins at capacity while offered load rises *)
  Alcotest.(check bool)
    (Printf.sprintf "overload: goodput %.0f <= 1.1x capacity %.0f"
       over.Openloop.goodput_ops_per_sec cap)
    true
    (over.Openloop.goodput_ops_per_sec <= 1.1 *. cap);
  Alcotest.(check bool) "overload sheds" true (over.Openloop.rejects > 0);
  Alcotest.(check bool) "overload p99 above low-rate p99" true
    (Hist.quantile over.Openloop.latency 0.99
    > Hist.quantile low.Openloop.latency 0.99)

(* ---------- data plane: scenario streams invariant across domains ---------- *)

let mk_plane ?(shards = 4) ?(keys = 128) ~domains () =
  let pm = Pmem.create ~seed:21 Config.default in
  let heap = Heap.create pm in
  let cfg =
    {
      Dataplane.shards;
      domains;
      batch_max = 4;
      depth = 16;
      keys;
      log_region_bytes = 1 lsl 16;
    }
  in
  (cfg, Dataplane.create heap cfg)

let dp_fingerprint (r : Dataplane.report) =
  ( r.Dataplane.total_ops,
    ( r.Dataplane.reads,
      r.Dataplane.writes,
      r.Dataplane.rmws,
      r.Dataplane.scans ),
    r.Dataplane.reads_sum,
    r.Dataplane.table_crc,
    r.Dataplane.fences,
    r.Dataplane.batches,
    r.Dataplane.sealed_records,
    List.map
      (fun (s : Dataplane.shard_report) ->
        (s.Dataplane.d_shard, s.Dataplane.d_ops, s.Dataplane.d_batches))
      r.Dataplane.per_shard )

let test_dataplane_scenario_invariant () =
  List.iter
    (fun mix ->
      let sp = Scenario.spec ~scan_max:8 mix in
      let run domains =
        let cfg, plane = mk_plane ~domains () in
        let stream =
          Scenario.op_stream sp ~ops:500 ~keys:cfg.Dataplane.keys ~seed:13
        in
        let r = Dataplane.run plane stream in
        Alcotest.(check bool) "clean run" false r.Dataplane.halted;
        (match mix with
        | Scenario.F ->
            Alcotest.(check bool) "F exercises rmw" true (r.Dataplane.rmws > 0)
        | Scenario.E ->
            Alcotest.(check bool) "E exercises scan" true
              (r.Dataplane.scans > 0)
        | _ -> ());
        dp_fingerprint r
      in
      let fp1 = run 1 in
      Alcotest.(check bool)
        (Scenario.mix_to_string mix ^ ": invariant identical 1 vs 3 domains")
        true (fp1 = run 3))
    [ Scenario.E; Scenario.F ]

(* ---------- recovery under load ---------- *)

let test_recovery_under_load () =
  let pm = Pmem.create ~seed:21 Config.default in
  let heap = Heap.create pm in
  let cfg =
    {
      Dataplane.shards = 3;
      domains = 3;
      batch_max = 4;
      depth = 16;
      keys = 96;
      log_region_bytes = 1 lsl 16;
    }
  in
  let stream =
    Loadgen.op_stream
      { Loadgen.clients = 16; ops = 600; read_frac = 0.3; skew = 0.9; seed = 17 }
      ~keys:cfg.Dataplane.keys
  in
  let r =
    Openloop.recovery_under_load heap cfg stream ~fuse_batches:20
  in
  Alcotest.(check bool) "fuse blew mid-stream" true r.Openloop.rv_halted;
  Alcotest.(check int) "ack-floor audit clean" 0 r.Openloop.rv_audit_failures;
  Alcotest.(check bool) "recovery costs device time" true
    (r.Openloop.rv_recover_ns > 0.0);
  Alcotest.(check int) "backlog = unacked remainder"
    (Array.length stream - r.Openloop.rv_acked_before)
    r.Openloop.rv_backlog;
  Alcotest.(check int) "resume completes the backlog" r.Openloop.rv_backlog
    r.Openloop.rv_resumed;
  Alcotest.(check bool) "first ack observed" true
    (r.Openloop.rv_first_ack_wall_s > 0.0);
  Alcotest.(check bool) "RTO finite and ordered" true
    (r.Openloop.rv_rto_wall_s >= r.Openloop.rv_first_ack_wall_s
    && r.Openloop.rv_rto_wall_s < 60.0);
  (* rmw/scan streams cannot be audited: must be rejected loudly *)
  let bad = [| (0, Service.Rmw 1) |] in
  Alcotest.(check bool) "rmw stream raises" true
    (match Openloop.recovery_under_load heap cfg bad ~fuse_batches:1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "openloop"
    [
      ( "loadgen",
        [
          Alcotest.test_case "stream and run share one drawer" `Quick
            test_drawer_shared;
          Alcotest.test_case "held time lands in client p99" `Quick
            test_held_time_in_p99;
          Alcotest.test_case "zipf sampler statistics" `Quick test_zipf_stats;
          Alcotest.test_case "admission interleaved accounting" `Quick
            test_admission_interleaved;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "mix fractions and stream shape" `Quick
            test_scenario_mixes;
          Alcotest.test_case "rmw and scan semantics" `Quick
            test_rmw_scan_semantics;
        ] );
      ( "openloop",
        [
          Alcotest.test_case "schedules: poisson, burst, saturate" `Quick
            test_schedules;
          Alcotest.test_case "reports are deterministic" `Quick
            test_openloop_deterministic;
          Alcotest.test_case "CO-safe latency from scheduled arrival" `Quick
            test_openloop_co_latency;
          Alcotest.test_case "saturation knee: goodput pins, sheds rise" `Quick
            test_openloop_knee;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "scenario streams invariant across domains" `Quick
            test_dataplane_scenario_invariant;
          Alcotest.test_case "recovery under load: RTO + clean audit" `Quick
            test_recovery_under_load;
        ] );
    ]
