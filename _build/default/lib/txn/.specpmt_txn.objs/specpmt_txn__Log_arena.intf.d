lib/txn/log_arena.mli: Addr Heap Pmem Specpmt_pmalloc Specpmt_pmem
