lib/pmalloc/heap.mli: Addr Pmem Specpmt_pmem
