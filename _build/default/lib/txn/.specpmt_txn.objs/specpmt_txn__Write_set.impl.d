lib/txn/write_set.ml: Addr Hashtbl List Specpmt_pmem
