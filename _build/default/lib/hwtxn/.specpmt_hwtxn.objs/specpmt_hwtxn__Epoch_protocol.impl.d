lib/hwtxn/epoch_protocol.ml: List
