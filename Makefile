.PHONY: all build test bench bench-quick examples fuzz doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# every paper table/figure + the extension experiments (Small inputs)
bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick all

examples:
	dune exec examples/quickstart.exe
	dune exec examples/paper_figure4.exe
	dune exec examples/kvstore_crash.exe
	dune exec examples/bank_transfer.exe
	dune exec examples/hybrid_hotcold.exe
	dune exec examples/mechanism_switch.exe
	dune exec examples/job_queue.exe

# long randomized crash-recovery torture across all recoverable schemes
fuzz:
	for s in PMDK SPHT SpecSPMT-DP SpecSPMT Spec-hashlog EDE HOOP \
	         SpecHPMT-DP SpecHPMT; do \
	  dune exec bin/specpmt_run.exe -- fuzz -s $$s --rounds 100 || exit 1; \
	done

doc:
	dune build @doc

clean:
	dune clean
