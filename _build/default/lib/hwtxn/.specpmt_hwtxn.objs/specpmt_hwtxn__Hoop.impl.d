lib/hwtxn/hoop.ml: Addr Array Ctx Hashtbl Heap Hw_slots List Log_arena Pmem Specpmt_pmalloc Specpmt_pmem Specpmt_txn Tsc Write_set
