lib/pstruct/pqueue.mli: Addr Ctx Specpmt_pmem Specpmt_txn
