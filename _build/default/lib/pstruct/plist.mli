(** Persistent singly-linked list with head insertion (stack order). *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> t
val of_head_cell : Addr.t -> t
val head_cell : t -> Addr.t
val push : Ctx.ctx -> t -> int -> unit
val pop : Ctx.ctx -> t -> int option
val is_empty : Ctx.ctx -> t -> bool
val iter : Ctx.ctx -> t -> (int -> unit) -> unit
val length : Ctx.ctx -> t -> int
val to_list : Ctx.ctx -> t -> int list

val remove : Ctx.ctx -> t -> int -> bool
(** Remove the first node holding the value; [true] if one was removed. *)
