lib/stamp/yada.ml: Ctx Parray Queue Rng Specpmt_pstruct Specpmt_txn Wtypes
