(** Fixed-region write-ahead intent log shared by the undo-style software
    baselines (PMDK, Kamino-Tx).

    Layout: [capacity; count; entries...]; the persistent count cell is
    the validity marker.  {!append_durable} persists the entry and the new
    count with a full barrier before the caller may update data — the
    per-update fence whose removal is SpecPMT's whole point. *)

open Specpmt_pmalloc

type t

val create :
  Heap.t ->
  region_slot:int ->
  capacity_slot:int ->
  words_per_entry:int ->
  capacity:int ->
  t

val attach :
  Heap.t -> region_slot:int -> capacity_slot:int -> words_per_entry:int -> t

val append_durable : t -> int list -> unit
(** Append one entry ([words_per_entry] words) and persist entry + count
    with a barrier.  Grows the region when full. *)

val truncate_durable : t -> unit
(** Persist a zero count with one barrier (the undo commit marker). *)

val count : t -> int

val entry : t -> int -> int list
(** Entry [i], 0-based, oldest first. *)

val footprint : t -> int
