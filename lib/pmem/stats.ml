(** Event and traffic counters for one simulated device.

    The evaluation figures are built from these counters: simulated
    nanoseconds give the speedup figures (Figs. 12 and 13), persistent-media
    write lines give the write-traffic figure (Fig. 14). *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable clwbs : int;
  mutable fences : int;
  mutable nt_stores : int;
  mutable pm_read_lines : int;  (** lines fetched from the media *)
  mutable pm_read_lines_seq : int;
      (** subset of [pm_read_lines] that hit the sequential fast path *)
  mutable pm_write_lines : int;  (** lines written to the media, all causes *)
  mutable pm_write_lines_seq : int;
      (** subset of [pm_write_lines] that hit the sequential fast path *)
  mutable evictions : int;  (** capacity write-backs of dirty lines *)
  mutable ns : float;  (** simulated foreground time *)
  mutable bg_ns : float;  (** simulated background-core time *)
}

let create () =
  {
    loads = 0;
    stores = 0;
    clwbs = 0;
    fences = 0;
    nt_stores = 0;
    pm_read_lines = 0;
    pm_read_lines_seq = 0;
    pm_write_lines = 0;
    pm_write_lines_seq = 0;
    evictions = 0;
    ns = 0.0;
    bg_ns = 0.0;
  }

let copy t = { t with loads = t.loads }

(** [diff a b] is the counters of [b] minus those of [a] (use with a
    snapshot taken by {!copy} before a measured region). *)
let diff a b =
  {
    loads = b.loads - a.loads;
    stores = b.stores - a.stores;
    clwbs = b.clwbs - a.clwbs;
    fences = b.fences - a.fences;
    nt_stores = b.nt_stores - a.nt_stores;
    pm_read_lines = b.pm_read_lines - a.pm_read_lines;
    pm_read_lines_seq = b.pm_read_lines_seq - a.pm_read_lines_seq;
    pm_write_lines = b.pm_write_lines - a.pm_write_lines;
    pm_write_lines_seq = b.pm_write_lines_seq - a.pm_write_lines_seq;
    evictions = b.evictions - a.evictions;
    ns = b.ns -. a.ns;
    bg_ns = b.bg_ns -. a.bg_ns;
  }

let pm_write_bytes t = t.pm_write_lines * Addr.line_size

let to_json t =
  let open Specpmt_obs.Json in
  Obj
    [
      ("loads", Int t.loads);
      ("stores", Int t.stores);
      ("clwbs", Int t.clwbs);
      ("fences", Int t.fences);
      ("nt_stores", Int t.nt_stores);
      ("pm_read_lines", Int t.pm_read_lines);
      ("pm_read_lines_seq", Int t.pm_read_lines_seq);
      ("pm_write_lines", Int t.pm_write_lines);
      ("pm_write_lines_seq", Int t.pm_write_lines_seq);
      ("evictions", Int t.evictions);
      ("ns", Float t.ns);
      ("bg_ns", Float t.bg_ns);
    ]

let pp ppf t =
  Fmt.pf ppf
    "@[<v>loads %d; stores %d; clwbs %d; fences %d; nt %d@ pm-reads %d \
     lines (%d seq); pm-writes %d lines (%d seq); evictions %d@ time %.0f \
     ns (+%.0f ns background)@]"
    t.loads t.stores t.clwbs t.fences t.nt_stores t.pm_read_lines
    t.pm_read_lines_seq t.pm_write_lines t.pm_write_lines_seq t.evictions
    t.ns t.bg_ns
