open Specpmt_pmem

type entry = {
  line : Addr.t;
  mutable pbit : bool;
  mutable logbit : bool;
  mutable tx_dirty : bool;
}

type t = {
  lines : int;
  table : (Addr.t, entry) Hashtbl.t;
  order : Addr.t Queue.t;
  on_tx_evict : entry -> unit;
  mutable tx_evicted : int;
}

let create ~lines ~on_tx_evict =
  {
    lines;
    table = Hashtbl.create 256;
    order = Queue.create ();
    on_tx_evict;
    tx_evicted = 0;
  }

let resident t = Hashtbl.length t.table
let tx_evictions t = t.tx_evicted

let evict_to_capacity t =
  while Hashtbl.length t.table > t.lines && not (Queue.is_empty t.order) do
    let line = Queue.pop t.order in
    match Hashtbl.find_opt t.table line with
    | None -> ()
    | Some e ->
        Hashtbl.remove t.table line;
        if e.tx_dirty then begin
          t.tx_evicted <- t.tx_evicted + 1;
          t.on_tx_evict e
        end
  done

let touch t ~line =
  match Hashtbl.find_opt t.table line with
  | Some e -> e
  | None ->
      let e = { line; pbit = false; logbit = false; tx_dirty = false } in
      Hashtbl.replace t.table line e;
      Queue.push line t.order;
      evict_to_capacity t;
      e

let find t ~line = Hashtbl.find_opt t.table line

let scan_tx_dirty t f =
  Hashtbl.iter (fun _ e -> if e.tx_dirty then f e) t.table

let end_tx t =
  Hashtbl.iter
    (fun _ e ->
      e.logbit <- false;
      e.tx_dirty <- false)
    t.table
