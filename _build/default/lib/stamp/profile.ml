(** Transaction profiling (paper Table 2): wraps a backend and counts, per
    transaction, the number of update operations and the unique cells
    written (the write-set size in bytes). *)

open Specpmt_pmem
open Specpmt_txn

type counters = {
  mutable txs : int;
  mutable updates : int;
  mutable ws_bytes : int; (* sum over txs of unique cells * 8 *)
}

let fresh () = { txs = 0; updates = 0; ws_bytes = 0 }

let avg_tx_bytes c =
  if c.txs = 0 then 0.0 else float_of_int c.ws_bytes /. float_of_int c.txs

let pp ppf c =
  Fmt.pf ppf "%d txs, %d updates, %.1f B/tx" c.txs c.updates (avg_tx_bytes c)

(** [wrap backend] counts transactional writes flowing through the
    returned backend. *)
let wrap (b : Ctx.backend) =
  let c = fresh () in
  let cells : (Addr.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let wrap_ctx (ctx : Ctx.ctx) =
    {
      ctx with
      Ctx.write =
        (fun a v ->
          c.updates <- c.updates + 1;
          Hashtbl.replace cells a ();
          ctx.Ctx.write a v);
    }
  in
  let b' =
    {
      b with
      Ctx.run_tx =
        (fun f ->
          Hashtbl.reset cells;
          let r = b.Ctx.run_tx (fun ctx -> f (wrap_ctx ctx)) in
          c.txs <- c.txs + 1;
          c.ws_bytes <- c.ws_bytes + (8 * Hashtbl.length cells);
          r);
    }
  in
  (b', c)
