(** SpecPMT — speculatively persistent memory transactions.

    The public facade of the library: a reproduction of "SpecPMT:
    Speculative Logging for Resolving Crash Consistency Overhead of
    Persistent Memory" (ASPLOS 2023).

    {2 Quick start}

    {[
      let pm = Specpmt.Pmem.create Specpmt.Pmem_config.default in
      let heap = Specpmt.Heap.create pm in
      let tx = Specpmt.create_scheme heap "SpecSPMT" in
      tx.run_tx (fun ctx -> ctx.write addr 42);
      (* ... crash ... *)
      tx.recover ()
    ]}

    Sub-libraries re-exported here:
    - {!Pmem}: the persistent-memory device model,
    - {!Heap}: the persistent allocator,
    - {!Ctx}: the transactional interface every scheme implements,
    - {!Schemes}: software schemes (PMDK, Kamino-Tx, SPHT, SpecSPMT...),
    - {!Hw_schemes}: simulated-hardware schemes (EDE, HOOP, SpecHPMT...),
    - {!Pstruct}: the persistent data structures (ordered Pbtree index,
      treap, hash table, vector...),
    - {!Workload}: the STAMP port,
    - {!Run}: the measurement harness behind all figures,
    - {!Crashmc}: the deterministic crash-state exploration engine,
    - {!Svc}: the sharded KV service layer (group commit, admission,
      load generation),
    - {!Par}: the domain pool behind the harness's [--jobs] flags
      (deterministic index-ordered reduction),
    - {!Obs}: metrics, phase attribution, tracing and the JSON reports. *)

module Pmem = Specpmt_pmem.Pmem
module Pmem_config = Specpmt_pmem.Config
module Stats = Specpmt_pmem.Stats
module Addr = Specpmt_pmem.Addr
module Heap = Specpmt_pmalloc.Heap
module Ctx = Specpmt_txn.Ctx
module Log_arena = Specpmt_txn.Log_arena
module Checksum = Specpmt_txn.Checksum
module Schemes = Specpmt_backends.Registry
module Spec_soft = Specpmt_backends.Spec_soft
module Spec_mt = Specpmt_backends.Spec_mt
module Hw_schemes = Specpmt_hwtxn.Hw_registry
module Spec_hw = Specpmt_hwtxn.Spec_hw
module Epoch_protocol = Specpmt_hwtxn.Epoch_protocol
module Hwconfig = Specpmt_hwsim.Hwconfig
module Pstruct = Specpmt_pstruct
module Workload = Specpmt_stamp.Workload
module Profile = Specpmt_stamp.Profile
module Crashmc = Specpmt_crashmc.Crashmc
module Svc = Specpmt_svc
module Par = Specpmt_par.Par
module Obs = Specpmt_obs
module Json = Specpmt_obs.Json

(** All scheme names, software then hardware, in figure order. *)
let scheme_names =
  List.map Schemes.name Schemes.all
  @ List.map Hw_schemes.name Hw_schemes.all

(** Instantiate a scheme (software or simulated-hardware) by name on a
    formatted pool.  [spec_params] overrides the SpecPMT schemes'
    runtime parameters (rejected for any other scheme).  Raises
    [Invalid_argument] on unknown names. *)
let create_scheme ?spec_params heap name =
  match Schemes.of_name name with
  | Some k -> Schemes.create ?spec_params heap k
  | None -> (
      match Hw_schemes.of_name name with
      | Some k ->
          (match spec_params with
          | Some _ ->
              Fmt.invalid_arg "scheme %S takes no SpecPMT params" name
          | None -> ());
          Hw_schemes.create heap k
      | None -> Fmt.invalid_arg "unknown scheme %S" name)

(** The scheme's default SpecPMT runtime parameters ([None] for unknown
    names and non-SpecPMT schemes) — the one lookup the CLI and the bench
    driver share instead of each keeping a name table. *)
let spec_params_of_name name =
  Option.bind (Schemes.of_name name) Schemes.spec_params

module Run = struct
  (** One workload x scheme measurement — the raw material of every
      figure in the paper's evaluation. *)
  type measurement = {
    scheme : string;
    workload : string;
    ns : float;  (** simulated foreground time of the measured phase *)
    bg_ns : float;  (** simulated background-core time *)
    fences : int;
    clwbs : int;
    pm_write_lines : int;  (** persistent-media write traffic, lines *)
    pm_read_lines : int;
    log_bytes : int;  (** log footprint after drain *)
    checksum : int;  (** final-state digest (backend-independent) *)
    txs : int;
    updates : int;
    avg_tx_bytes : float;
    tx_latency : Obs.Hist.snapshot;
        (** per-transaction latency over the measured phase, simulated ns *)
    write_set : Obs.Hist.snapshot;  (** per-transaction write-set bytes *)
    phases : Obs.Phase.snapshot;
        (** fences/flushes/PM traffic attributed to prepare / work / drain /
            recover / reclaim spans *)
    metrics : Json.t;
        (** registry dump (reclamation and log-compaction telemetry) *)
  }

  let default_mem = 64 * 1024 * 1024

  (** Run [workload] at [scale] under the scheme built by [make] on a
      fresh pool; setup is excluded from the measured phase; background
      work is drained inside it. *)
  let run_custom ?(seed = 1) ?(mem = default_mem) ~make ~name
      (w : Workload.t) scale =
    Obs.Phase.reset ();
    Obs.Metrics.reset_all ();
    let pm =
      Pmem.create ~seed { Pmem_config.default with mem_size = mem }
    in
    let heap = Heap.create pm in
    let backend = make heap in
    let profiled, counters =
      Profile.wrap ~clock:(fun () -> (Pmem.stats pm).Stats.ns) backend
    in
    let prepared =
      Obs.Phase.run Obs.Phase.Prepare (fun () ->
          w.Workload.prepare scale heap profiled)
    in
    let c0 = Profile.fresh () in
    c0.Profile.txs <- counters.Profile.txs;
    c0.Profile.updates <- counters.Profile.updates;
    c0.Profile.ws_bytes <- counters.Profile.ws_bytes;
    (* the distributions cover only the measured phase *)
    Profile.reset_histograms counters;
    let before = Stats.copy (Pmem.stats pm) in
    Obs.Phase.run Obs.Phase.Work prepared.Workload.work;
    Obs.Phase.run Obs.Phase.Drain backend.Ctx.drain;
    let d = Stats.diff before (Pmem.stats pm) in
    let checksum =
      Pmem.with_unmetered pm (fun () -> prepared.Workload.checksum ())
    in
    let txs = counters.Profile.txs - c0.Profile.txs in
    let updates = counters.Profile.updates - c0.Profile.updates in
    let ws_bytes = counters.Profile.ws_bytes - c0.Profile.ws_bytes in
    {
      scheme = name;
      workload = w.Workload.name;
      ns = d.Stats.ns;
      bg_ns = d.Stats.bg_ns;
      fences = d.Stats.fences;
      clwbs = d.Stats.clwbs;
      pm_write_lines = d.Stats.pm_write_lines;
      pm_read_lines = d.Stats.pm_read_lines;
      log_bytes = backend.Ctx.log_footprint ();
      checksum;
      txs;
      updates;
      avg_tx_bytes =
        (if txs = 0 then 0.0 else float_of_int ws_bytes /. float_of_int txs);
      tx_latency = Obs.Hist.snapshot counters.Profile.lat_hist;
      write_set = Obs.Hist.snapshot counters.Profile.ws_hist;
      phases = Obs.Phase.snapshot ();
      metrics = Obs.Metrics.dump ();
    }

  let run ?seed ?mem ~scheme (w : Workload.t) scale =
    run_custom ?seed ?mem
      ~make:(fun heap -> create_scheme heap scheme)
      ~name:scheme w scale

  (** {2 JSON reports}

      The machine-readable face of the harness: one object per
      measurement, schema-stable across PRs so the bench trajectory can
      be diffed.  See EXPERIMENTS.md, "JSON bench reports". *)

  (** Bumped on any incompatible change to the report layout. *)
  let schema_version = 1

  let measurement_to_json (m : measurement) =
    Json.Obj
      [
        ("scheme", Json.Str m.scheme);
        ("workload", Json.Str m.workload);
        ("ns", Json.Float m.ns);
        ("bg_ns", Json.Float m.bg_ns);
        ("fences", Json.Int m.fences);
        ("clwbs", Json.Int m.clwbs);
        ("pm_write_lines", Json.Int m.pm_write_lines);
        ("pm_read_lines", Json.Int m.pm_read_lines);
        ("log_bytes", Json.Int m.log_bytes);
        ("checksum", Json.Str (Printf.sprintf "%x" m.checksum));
        ("txs", Json.Int m.txs);
        ("updates", Json.Int m.updates);
        ("avg_tx_bytes", Json.Float m.avg_tx_bytes);
        ("tx_latency_ns", Obs.Hist.to_json m.tx_latency);
        ("write_set_bytes", Obs.Hist.to_json m.write_set);
        ("phases", Obs.Phase.to_json m.phases);
        ("metrics", m.metrics);
      ]

  let report_to_json ?(extra = []) ~scale measurements =
    Json.Obj
      ([
         ("schema_version", Json.Int schema_version);
         ("generator", Json.Str "specpmt-bench");
         ("scale", Json.Str scale);
       ]
      @ extra
      @ [ ("results", Json.List (List.map measurement_to_json measurements)) ]
      )

  let write_report ?extra ~scale ~path measurements =
    Json.to_file path (report_to_json ?extra ~scale measurements)
end
