(* A persistent key-value store with crash-recovery torture.

     dune exec examples/kvstore_crash.exe [-- <scheme>]

   Builds a durable hash table through the transactional API, then
   repeatedly crashes the device at random points while mutating it,
   recovering each time and auditing the store against an in-DRAM
   reference that tracks committed transactions only. *)

open Specpmt
module Phashtbl = Specpmt_pstruct.Phashtbl

let scheme = if Array.length Sys.argv > 1 then Sys.argv.(1) else "SpecSPMT"

let () =
  Printf.printf "kvstore under %s, crash torture\n" scheme;
  let pm = Pmem.create ~seed:2026 Pmem_config.default in
  let heap = Heap.create pm in
  let tx = create_scheme heap scheme in
  if not tx.Ctx.supports_recovery then (
    Printf.printf "%s cannot recover; pick a recoverable scheme\n" scheme;
    exit 1);

  (* the store and its committed-state reference *)
  let store = tx.Ctx.run_tx (fun ctx -> Phashtbl.create ctx 256) in
  let reference = Hashtbl.create 256 in
  let rand = Random.State.make [| 4242 |] in

  let audits = ref 0 and crashes = ref 0 and commits = ref 0 in
  for round = 1 to 40 do
    (* arm a random crash fuse and mutate until it blows *)
    Pmem.set_fuse pm (Some (200 + Random.State.int rand 3000));
    (try
       while true do
         let k = 1 + Random.State.int rand 500 in
         let v = Random.State.int rand 1_000_000 in
         let del = Random.State.int rand 10 = 0 in
         tx.Ctx.run_tx (fun ctx ->
             if del then ignore (Phashtbl.remove ctx store k)
             else ignore (Phashtbl.replace ctx store k v));
         (* run_tx returned: the transaction is durable *)
         if del then Hashtbl.remove reference k
         else Hashtbl.replace reference k v;
         incr commits
       done
     with Pmem.Crash ->
       incr crashes;
       Pmem.crash pm;
       tx.Ctx.recover ());
    (* audit: recovered store == committed reference, except possibly the
       single transaction that was in flight at the crash (committed on
       the device but not yet recorded in the reference) *)
    let ctx = Ctx.raw_ctx heap in
    let mismatches = ref 0 in
    Hashtbl.iter
      (fun k v ->
        match Phashtbl.find ctx store k with
        | Some v' when v' = v -> ()
        | _ -> incr mismatches)
      reference;
    if !mismatches > 1 then (
      Printf.printf "round %d: %d mismatches — NOT crash consistent!\n" round
        !mismatches;
      exit 1);
    if !mismatches = 1 then begin
      (* reconcile the in-flight transaction *)
      Hashtbl.reset reference;
      Phashtbl.iter ctx store (fun k v -> Hashtbl.replace reference k v)
    end;
    incr audits
  done;
  Printf.printf
    "survived %d crashes over %d committed transactions; %d audits clean\n"
    !crashes !commits !audits
