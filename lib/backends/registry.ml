open Specpmt_txn

type kind = Raw | Pmdk | Kamino | Spht | Spec_dp | Spec | Hashlog

let all = [ Raw; Pmdk; Kamino; Spht; Spec_dp; Spec; Hashlog ]

let name = function
  | Raw -> "raw"
  | Pmdk -> "PMDK"
  | Kamino -> "Kamino-Tx"
  | Spht -> "SPHT"
  | Spec_dp -> "SpecSPMT-DP"
  | Spec -> "SpecSPMT"
  | Hashlog -> "Spec-hashlog"

let of_name s =
  List.find_opt (fun k -> String.lowercase_ascii (name k) = String.lowercase_ascii s) all

(* The SpecPMT schemes are the only ones with tunable runtime parameters
   (reclamation policy, recovery mode...); [None] for everything else. *)
let spec_params = function
  | Spec -> Some Spec_soft.default_params
  | Spec_dp -> Some Spec_soft.dp_params
  | Raw | Pmdk | Kamino | Spht | Hashlog -> None

let create ?spec_params:override heap k =
  (match (override, spec_params k) with
  | Some _, None ->
      Fmt.invalid_arg "Registry.create: %s takes no SpecPMT params" (name k)
  | _ -> ());
  match k with
  | Raw -> Raw.create heap
  | Pmdk -> Pmdk_undo.create heap
  | Kamino -> Kamino.create heap
  | Spht -> Spht.create heap
  | (Spec_dp | Spec) as k ->
      let params =
        match override with
        | Some p -> p
        | None -> Option.get (spec_params k)
      in
      fst (Spec_soft.create heap params)
  | Hashlog -> Spec_hashlog.create heap

let _ = Ctx.raw_ctx (* re-exported convenience, keep the dep explicit *)
