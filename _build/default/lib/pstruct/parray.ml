(** Fixed-size persistent array of 8-byte cells.

    All operations go through a {!Specpmt_txn.Ctx.ctx}, so the same code
    works transactionally (inside [run_tx]) and raw (setup phases). *)

open Specpmt_pmem
open Specpmt_txn

type t = { base : Addr.t; len : int }

let create (ctx : Ctx.ctx) len =
  assert (len > 0);
  { base = ctx.Ctx.alloc (len * 8); len }

(** Adopt an existing allocation (e.g. rediscovered via a root slot). *)
let of_base ~base ~len = { base; len }

let length t = t.len
let base t = t.base

let addr t i =
  if i < 0 || i >= t.len then Fmt.invalid_arg "Parray: index %d/%d" i t.len;
  t.base + (i * 8)

let get (ctx : Ctx.ctx) t i = ctx.Ctx.read (addr t i)
let set (ctx : Ctx.ctx) t i v = ctx.Ctx.write (addr t i) v

let fill ctx t v =
  for i = 0 to t.len - 1 do
    set ctx t i v
  done

let to_list ctx t = List.init t.len (fun i -> get ctx t i)
