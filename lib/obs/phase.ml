type phase = Prepare | Work | Drain | Recover | Reclaim | Other

let all = [ Prepare; Work; Drain; Recover; Reclaim; Other ]

let name = function
  | Prepare -> "prepare"
  | Work -> "work"
  | Drain -> "drain"
  | Recover -> "recover"
  | Reclaim -> "reclaim"
  | Other -> "other"

let index = function
  | Prepare -> 0
  | Work -> 1
  | Drain -> 2
  | Recover -> 3
  | Reclaim -> 4
  | Other -> 5

let nphases = 6

type cell = {
  mutable fences : int;
  mutable clwbs : int;
  mutable nt_stores : int;
  mutable pm_write_lines : int;
  mutable pm_read_lines : int;
}

(* Each domain gets its own phase state: the harness runs independent
   simulator instances on separate domains, and the device-layer hooks
   must never contend.  Per-domain tallies are merged into the parent
   with {!absorb} when workers join. *)
type state = { cells : cell array; mutable cur : phase; mutable cur_cell : cell }

let mk_state () =
  let cells =
    Array.init nphases (fun _ ->
        { fences = 0; clwbs = 0; nt_stores = 0; pm_write_lines = 0;
          pm_read_lines = 0 })
  in
  { cells; cur = Other; cur_cell = cells.(index Other) }

let key = Domain.DLS.new_key mk_state
let st () = Domain.DLS.get key

let current () = (st ()).cur

let run p f =
  let s = st () in
  let saved = s.cur and saved_cell = s.cur_cell in
  s.cur <- p;
  s.cur_cell <- s.cells.(index p);
  Fun.protect
    ~finally:(fun () ->
      s.cur <- saved;
      s.cur_cell <- saved_cell)
    f

let on_fence () =
  let c = (st ()).cur_cell in
  c.fences <- c.fences + 1

let on_clwb () =
  let c = (st ()).cur_cell in
  c.clwbs <- c.clwbs + 1

let on_nt_store () =
  let c = (st ()).cur_cell in
  c.nt_stores <- c.nt_stores + 1

let on_pm_write_line () =
  let c = (st ()).cur_cell in
  c.pm_write_lines <- c.pm_write_lines + 1

let on_pm_read_line () =
  let c = (st ()).cur_cell in
  c.pm_read_lines <- c.pm_read_lines + 1

type counters = {
  fences : int;
  clwbs : int;
  nt_stores : int;
  pm_write_lines : int;
  pm_read_lines : int;
}

type snapshot = (phase * counters) list

let snapshot () =
  let s = st () in
  List.map
    (fun p ->
      let c = s.cells.(index p) in
      ( p,
        {
          fences = c.fences;
          clwbs = c.clwbs;
          nt_stores = c.nt_stores;
          pm_write_lines = c.pm_write_lines;
          pm_read_lines = c.pm_read_lines;
        } ))
    all

let reset () =
  Array.iter
    (fun (c : cell) ->
      c.fences <- 0;
      c.clwbs <- 0;
      c.nt_stores <- 0;
      c.pm_write_lines <- 0;
      c.pm_read_lines <- 0)
    (st ()).cells

let absorb (snap : snapshot) =
  let s = st () in
  List.iter
    (fun (p, (c : counters)) ->
      let cell = s.cells.(index p) in
      cell.fences <- cell.fences + c.fences;
      cell.clwbs <- cell.clwbs + c.clwbs;
      cell.nt_stores <- cell.nt_stores + c.nt_stores;
      cell.pm_write_lines <- cell.pm_write_lines + c.pm_write_lines;
      cell.pm_read_lines <- cell.pm_read_lines + c.pm_read_lines)
    snap

let to_json (s : snapshot) =
  Json.Obj
    (List.map
       (fun (p, c) ->
         ( name p,
           Json.Obj
             [
               ("fences", Json.Int c.fences);
               ("clwbs", Json.Int c.clwbs);
               ("nt_stores", Json.Int c.nt_stores);
               ("pm_write_lines", Json.Int c.pm_write_lines);
               ("pm_read_lines", Json.Int c.pm_read_lines);
             ] ))
       s)
