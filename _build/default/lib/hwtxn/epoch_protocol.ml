(** The multi-threaded epoch-reclamation protocol of Section 5.2.2.

    Reclaiming a thread's epoch is only safe when no other thread's still
    active epoch overlaps it: otherwise a crash could need the reclaimed
    records to revoke a concurrent uncommitted write (Figure 11).  The
    paper's rule: the software may reclaim all log records of an epoch [e]
    iff (1) [e] is {e inactive} — its ID has been reassigned to a younger
    epoch of the same thread — and (2) every {e active} epoch (of any
    thread) started after [e] ended.

    This module is the pure decision logic, shared by tests and by the
    multi-threaded simulation; each thread keeps the timestamp at which its
    earliest unreclaimed epoch started, exactly as the hardware proposal
    does. *)

type epoch_span = {
  thread : int;
  eid : int;
  start_ts : int;
  end_ts : int option;  (** [None] while the epoch is still open *)
  inactive : bool;
      (** the thread has reassigned this epoch ID to a younger epoch *)
}

(** [can_reclaim ~all e] decides whether epoch [e] may be reclaimed given
    the spans of every thread's epochs. *)
let can_reclaim ~all e =
  match e.end_ts with
  | None -> false (* an open epoch is never reclaimable *)
  | Some e_end ->
      e.inactive
      && List.for_all
           (fun o ->
             o == e
             || o.inactive (* inactive epochs don't constrain reclamation *)
             || o.start_ts > e_end)
           all

(** First reclaimable epoch in [all], oldest end first — the paper's
    "always reclaim the oldest epoch" strategy with deferral when active
    epochs overlap ("the software defers the check and log reclamation to
    further transaction starts or commits"). *)
let next_reclaimable all =
  let closed =
    List.filter (fun e -> e.end_ts <> None && e.inactive) all
    |> List.sort (fun a b -> compare a.end_ts b.end_ts)
  in
  List.find_opt (fun e -> can_reclaim ~all e) closed
