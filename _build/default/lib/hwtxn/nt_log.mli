(** Fence-free hardware undo log (EDE and hardware SpecPMT's cold path).

    Entries persist through the write-pending queue with {e no} fence: the
    queue is inside the ADR persistence domain and the hardware's
    dependence tracking orders each entry before its data store.  Validity
    is generation-based: the region starts with a generation word and an
    entry is [addr, old, crc(gen, addr, old)] — truncation at commit is a
    single non-temporal store of the bumped generation, which instantly
    invalidates every surviving entry of the finished transaction. *)

open Specpmt_pmem
open Specpmt_pmalloc

type t

val create :
  Heap.t -> region_slot:int -> capacity_slot:int -> capacity:int -> t

val attach : Heap.t -> region_slot:int -> capacity_slot:int -> t
(** Reattach after a crash (adopts the persistent generation). *)

val append : t -> addr:Addr.t -> old:int -> unit
(** Persist one undo entry; no fence.  Grows the region when full. *)

val truncate : t -> unit
(** Commit-side truncation: one fence-free store of a new generation. *)

val scan : t -> (Addr.t * int) list
(** Valid entries of the current generation, oldest first. *)

val footprint : t -> int

val gen_cell : t -> Addr.t
(** Address of the persistent generation word — hardware SpecPMT logs the
    generation bump inside its commit record, making the record the
    transaction's commit marker for the undo log too. *)

val generation : t -> int
