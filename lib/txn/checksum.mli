(** CRC-32C (Castagnoli), used as the commit marker of a log record.

    The paper (Section 4.1) folds the transaction's commit status into the
    record checksum: a record whose checksum does not match its content was
    torn by a crash and marks the end of the valid log. *)

val crc32c : ?init:int -> bytes -> int
(** Checksum of a byte string, in [0, 2^32).  [init] chains computations
    over fragments. *)

val crc32c_word : int -> int -> int
(** [crc32c_word crc w] folds one 63-bit integer (as 8 LE bytes, the
    encoding of {!words}) into a finalized checksum: folding a word
    list with it from 0 equals [words] of that list.  This is the commit
    hot path — no buffer, no list, no boxing; {!words} stays as the
    differential-test oracle. *)

val words : int list -> int
(** Checksum of a list of 63-bit integers, each taken as 8 LE bytes.
    Convenient for records assembled from word-granular cells. *)
