lib/backends/registry.ml: Ctx Kamino List Pmdk_undo Raw Spec_hashlog Spec_soft Specpmt_txn Spht String
