(** Hardware SpecPMT (SpecHPMT) — hybrid undo/speculative logging with
    epoch-based foreground log reclamation (paper Section 5).

    Stores to {e cold} pages are undo-logged fence-free through the
    write-pending queue and their lines are persisted at commit (classic
    hardware undo logging, as EDE).  A TLB-resident saturating counter
    detects {e hot} pages: on saturation the bulk-copy engine snapshots the
    whole page into the speculative log (a fence-free committed record),
    and from then on the page's updates are speculatively logged at commit
    and {b never} flushed on the critical path.

    Commit issues exactly one fence: cold lines are flushed (persistent on
    WPQ acceptance), the commit record — the transaction's hot values plus
    a bump of the undo-log generation, which doubles as the commit marker —
    is flushed, one [sfence] drains everything, and the undo log is
    truncated with a single fence-free store.

    Epochs (Section 5.2): the log chain is divided at sealed block
    boundaries; when the current epoch exceeds its byte or page budget a
    new one starts ([startepoch]), and when the whole log exceeds its
    budget the oldest epoch is reclaimed in the foreground: persist the
    epoch's speculatively-logged pages, [clearepoch] the TLB, and free the
    chain prefix with one atomic head switch.

    Invariants kept (Section 5.1.1): every uncommitted update has an undo
    or speculative record; a page has live speculative records if and only
    if it is tracked as hot, so committed cold data can never be shadowed
    by a stale speculative record at replay. *)

open Specpmt_pmalloc
open Specpmt_txn
open Specpmt_hwsim

(** Hot-page detection (Section 6 "Alternative Designs"): the TLB
    saturating counters of the proposed hardware, or software-offloaded
    sampling with periodic decay (no TLB modifications, coarser timing). *)
type hotness = Tlb_counters | Software_sampled of { decay_period : int }

type params = {
  hw : Hwconfig.t;
  data_persist : bool;  (** SpecHPMT-DP: flush hot data at commit too *)
  hotness : hotness;
}

val default_params : params
val dp_params : params

type t

val create :
  ?thread:int ->
  ?tsc:Specpmt_txn.Tsc.t ->
  ?coord:Epoch_coord.t ->
  ?spec_pages:(int, (int * int) list) Hashtbl.t ->
  ?head_slot:int ->
  ?undo_region_slot:int ->
  ?undo_capacity_slot:int ->
  Heap.t ->
  params ->
  Ctx.backend * t
(** One per-core runtime.  The optional arguments exist for multi-core
    pools (use {!Mt} instead of wiring them by hand): a shared timestamp
    counter, a shared epoch coordinator (the Section 5.2.2 reclamation
    protocol), the shared page-hotness table, and per-thread root slots
    for the log head and undo region. *)

(** {1 Introspection (tests, figures)} *)

val transitions : t -> int
(** Cold-to-hot page transitions (bulk page copies) so far. *)

val hot_writes : t -> int

val cold_writes : t -> int

val reclaims : t -> int
(** Epoch reclamation cycles run. *)

val epochs_started : t -> int

val peak_log_bytes : t -> int
(** High-water mark of the speculative log footprint (Fig. 15's
    memory-consumption axis). *)

val is_hot_page : t -> page:int -> bool
(** Whether the page currently has live speculative coverage. *)

val l1_tx_evictions : t -> int
(** Transaction-dirty L1 lines that overflowed mid-transaction and were
    speculatively logged before eviction (Section 5.2). *)

val tlb : t -> Tlb.t

(** Multi-core hardware SpecPMT (Section 5.2.2): per-core logs, undo
    regions, TLBs and epochs over one pool, sharing the page-hotness
    metadata, the timestamp counter and the epoch-reclamation
    coordinator.  Recovery scans {e every} core's log and replays all
    records in global timestamp order, then applies each core's undo
    log. *)
module Mt : sig
  type pool

  val create : ?params:params -> Heap.t -> threads:int -> pool
  (** Up to 4 cores (bounded by reserved root slots). *)

  val thread : pool -> int -> Ctx.backend
  val runtime : pool -> int -> t
  val threads : pool -> int
  val coordinator : pool -> Epoch_coord.t

  val recover : pool -> unit
  (** Crash recovery across all cores' logs, merged by timestamp. *)
end
