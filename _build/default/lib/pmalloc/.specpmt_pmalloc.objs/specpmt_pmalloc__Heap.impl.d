lib/pmalloc/heap.ml: Addr Array Fmt Hashtbl Layout List Pmem Specpmt_pmem
