(* The domain pool behind every parallel harness loop: results must come
   back in index order regardless of jobs/chunking, worker failures must
   propagate to the caller, and per-domain observability must merge into
   the parent registry at join. *)

open Specpmt_par

let squares n = Array.init n (fun i -> i * i)

(* any (jobs, chunk) combination reduces to the serial reference *)
let test_ordered_reduction () =
  let n = 100 in
  let reference = squares n in
  List.iter
    (fun (jobs, chunk) ->
      let got = Par.run ~jobs ~chunk ~n (fun i -> i * i) in
      Alcotest.(check (array int))
        (Fmt.str "jobs=%d chunk=%d" jobs chunk)
        reference got)
    [ (1, 1); (2, 1); (4, 1); (4, 3); (4, 7); (8, 16); (16, 1) ]

let test_map_list_order () =
  let xs = List.init 53 (fun i -> i) in
  Alcotest.(check (list int))
    "map_list keeps list order"
    (List.map (fun i -> i * 3) xs)
    (Par.map_list ~jobs:4 (fun i -> i * 3) xs)

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "n=0" [||] (Par.run ~jobs:4 ~n:0 (fun i -> i));
  Alcotest.(check (array int)) "n=1" [| 42 |]
    (Par.run ~jobs:4 ~n:1 (fun _ -> 42));
  Alcotest.check_raises "negative n" (Invalid_argument "Par.run: negative n")
    (fun () -> ignore (Par.run ~jobs:4 ~n:(-1) (fun i -> i)))

(* a worker exception reaches the caller as that same exception *)
let test_exception_propagation () =
  List.iter
    (fun jobs ->
      match Par.run ~jobs ~n:64 (fun i -> failwith (string_of_int i)) with
      | _ -> Alcotest.failf "jobs=%d: expected an exception" jobs
      | exception Failure _ -> ())
    [ 1; 4 ]

(* metrics bumped on worker domains land in the parent registry *)
let test_metrics_merge () =
  let open Specpmt_obs in
  List.iter
    (fun jobs ->
      Metrics.reset_all ();
      let n = 200 in
      let _ : unit array =
        Par.run ~jobs ~n (fun i ->
            Metrics.incr (Metrics.counter "par.test.calls");
            Metrics.add (Metrics.counter "par.test.sum") i)
      in
      Alcotest.(check int)
        (Fmt.str "jobs=%d: calls" jobs)
        n
        (Metrics.counter_value (Metrics.counter "par.test.calls"));
      Alcotest.(check int)
        (Fmt.str "jobs=%d: sum" jobs)
        (n * (n - 1) / 2)
        (Metrics.counter_value (Metrics.counter "par.test.sum")))
    [ 1; 4 ]

(* the per-phase counters follow the same export/absorb path *)
let test_phase_merge () =
  let open Specpmt_obs in
  Phase.reset ();
  let n = 40 in
  let _ : unit array =
    Par.run ~jobs:4 ~n (fun _ ->
        Phase.run Phase.Recover (fun () ->
            Phase.on_fence ();
            Phase.on_clwb ()))
  in
  let counters = List.assoc Phase.Recover (Phase.snapshot ()) in
  Alcotest.(check int) "recover-phase fences" n counters.Phase.fences;
  Alcotest.(check int) "recover-phase clwbs" n counters.Phase.clwbs

let test_default_jobs () =
  let j = Par.default_jobs () in
  Alcotest.(check bool) "1 <= default_jobs <= 8" true (j >= 1 && j <= 8)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered reduction" `Quick test_ordered_reduction;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "empty/singleton/negative" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "default jobs bounds" `Quick test_default_jobs;
        ] );
      ( "obs merge",
        [
          Alcotest.test_case "metrics merge at join" `Quick test_metrics_merge;
          Alcotest.test_case "phase merge at join" `Quick test_phase_merge;
        ] );
    ]
