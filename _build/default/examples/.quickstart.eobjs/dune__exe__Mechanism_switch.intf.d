examples/mechanism_switch.mli:
