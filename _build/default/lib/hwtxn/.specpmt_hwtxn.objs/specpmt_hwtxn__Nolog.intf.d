lib/hwtxn/nolog.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
