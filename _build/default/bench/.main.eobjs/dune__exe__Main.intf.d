bench/main.mli:
