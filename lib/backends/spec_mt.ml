open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  params : Spec_soft.params;
  tsc : Tsc.t;
  backends : Ctx.backend array;
  runtimes : Spec_soft.t array;
  runtime_heaps : Heap.t array option;
      (* partitioned pools: thread [i]'s log blocks come from its own
         carved sub-heap (whose pm is that domain's view of the media) *)
}

let head_slot i = Slots.spec_mt_head i
let max_threads = Slots.spec_mt_max_threads

let create ?(params = Spec_soft.default_params) ?runtime_heaps heap ~threads =
  if threads < 1 || threads > max_threads then
    Fmt.invalid_arg "Spec_mt.create: 1-%d threads" max_threads;
  (match runtime_heaps with
  | Some a when Array.length a <> threads ->
      invalid_arg "Spec_mt.create: runtime_heaps length <> threads"
  | _ -> ());
  let tsc = Tsc.create () in
  let rt_heap i =
    match runtime_heaps with Some a -> a.(i) | None -> heap
  in
  let pairs =
    Array.init threads (fun i ->
        Spec_soft.create ~head_slot:(head_slot i) ~tsc (rt_heap i) params)
  in
  {
    heap;
    pm = Heap.pmem heap;
    params;
    tsc;
    backends = Array.map fst pairs;
    runtimes = Array.map snd pairs;
    runtime_heaps;
  }

let thread t i = t.backends.(i)
let runtime t i = t.runtimes.(i)
let threads t = Array.length t.backends
let tsc t = t.tsc

(* Multi-threaded recovery (Sections 4.1 and 5.2.2).  Per-thread logs are
   independently valid-prefix'd, but only the commit timestamps order
   effects across threads (the shared counter makes them globally
   unique).

   [Replay] materialises every record, sorts globally by timestamp and
   replays oldest first — the paper's algorithm and the differential
   oracle.  [Coalesce] skips the sort entirely: feeding all logs through
   one last-writer-wins index IS the timestamp merge (a cell's binding
   survives iff no log holds a fresher entry for it), and the index is
   then applied with one data write per live cell. *)
let recover t =
  let open Specpmt_obs in
  Phase.run Phase.Recover @@ fun () ->
  Heap.recover t.heap;
  (* partitioned pools: each sub-heap rebuilds its own free lists from
     the shared image before the per-thread arenas reattach through it *)
  (match t.runtime_heaps with
  | Some heaps -> Array.iter Heap.recover heaps
  | None -> ());
  let bb = t.params.Spec_soft.block_bytes in
  let max_ts = ref 0 in
  (match t.params.Spec_soft.recovery with
  | Spec_soft.Coalesce ->
      let index = Hashtbl.create 256 in
      let records = ref 0 and entries = ref 0 in
      Array.iteri
        (fun i _ ->
          let ts, r, e =
            Log_arena.recover_collect t.pm ~head_slot:(head_slot i)
              ~block_bytes:bb ~index
          in
          if ts > !max_ts then max_ts := ts;
          records := !records + r;
          entries := !entries + e)
        t.runtimes;
      (* stores first, flushes after — interleaving would drain a line
         shared by several cells once per cell instead of once per line *)
      Hashtbl.iter (fun a (v, _, _) -> Pmem.store_int t.pm a v) index;
      Hashtbl.iter (fun a _ -> Pmem.clwb t.pm a) index;
      Pmem.sfence t.pm;
      Metrics.add (Metrics.counter "recover.records_scanned") !records;
      Metrics.add (Metrics.counter "recover.entries_scanned") !entries;
      Metrics.add (Metrics.counter "recover.data_writes")
        (Hashtbl.length index);
      Metrics.add (Metrics.counter "recover.cells_restored")
        (Hashtbl.length index)
  | Spec_soft.Replay ->
      let records = ref [] in
      let entries = ref 0 in
      Array.iteri
        (fun i _ ->
          ignore
            (Log_arena.recover_scan t.pm ~head_slot:(head_slot i)
               ~block_bytes:bb
               ~f:(fun ~ts es ->
                 if ts > !max_ts then max_ts := ts;
                 entries := !entries + Array.length es;
                 records := (ts, es) :: !records)))
        t.runtimes;
      let ordered = List.sort (fun (a, _) (b, _) -> compare a b) !records in
      let touched = Hashtbl.create 256 in
      List.iter
        (fun (_, es) ->
          Array.iter
            (fun (a, v) ->
              Pmem.store_int t.pm a v;
              Hashtbl.replace touched a ())
            es)
        ordered;
      Hashtbl.iter (fun a () -> Pmem.clwb t.pm a) touched;
      Pmem.sfence t.pm;
      Metrics.add (Metrics.counter "recover.records_scanned")
        (List.length ordered);
      Metrics.add (Metrics.counter "recover.entries_scanned") !entries;
      Metrics.add (Metrics.counter "recover.data_writes") !entries;
      Metrics.add (Metrics.counter "recover.cells_restored")
        (Hashtbl.length touched));
  Metrics.incr (Metrics.counter "recover.cycles");
  Tsc.restart_above t.tsc !max_ts;
  (* reattach every thread's arena after the data replay *)
  Array.iter Spec_soft.reattach t.runtimes
