lib/stamp/vacation.ml: Array Ctx Ptreap Rng Specpmt_pstruct Specpmt_txn Wtypes
