(** Bounded ring-buffer event trace for post-crash debugging.

    The fuzz harness crashes a backend thousands of times; when an audit
    fails, the question is always "what were the last few log and
    recovery operations before the crash?".  Subsystems {!emit} cheap
    structured events (a static label plus up to two integer arguments);
    the ring keeps the most recent [capacity] of them.  Disabled by
    default — {!emit} is a single branch when off, so production runs pay
    nothing.

    The ring is domain-local: a freshly spawned domain starts with an
    empty ring of its parent's capacity, so enabling tracing before
    fanning out to a domain pool enables it in every worker without any
    cross-domain contention.  Harvest with {!recent} on the worker that
    emitted the events. *)

type event = {
  seq : int;  (** monotonically increasing emission index *)
  phase : Phase.phase;  (** phase current at emission time *)
  label : string;
  a : int;
  b : int;
}

val set_capacity : int -> unit
(** [set_capacity n] keeps the last [n] events ([n <= 0] disables and
    clears).  Changing the capacity clears the ring. *)

val enabled : unit -> bool

val emit : ?a:int -> ?b:int -> string -> unit
(** Record an event ([a], [b] default to 0).  No-op when disabled; the
    label should be a literal so no formatting happens on the hot path. *)

val clear : unit -> unit

val recent : unit -> event list
(** Traced events, oldest first. *)

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> unit -> unit
(** Print every retained event, one per line, oldest first. *)

val to_json : unit -> Json.t
