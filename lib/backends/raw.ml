(** No-transaction baseline: plain in-place updates with no logging, no
    flushes and no fences.  Not crash consistent — this is the "versions
    without persistent memory transactions" that Figure 1 measures
    overhead against. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

let create heap =
  let pm = Heap.pmem heap in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int pm a);
      write = (fun a v -> Pmem.store_int pm a v);
      alloc = (fun n -> Heap.alloc heap n);
      free = (fun a -> Heap.free heap a);
      (* non-transactional: effects are final when made, so an outcome
         hook can only ever observe a commit — fire it immediately *)
      on_end = (fun f -> f true);
    }
  in
  {
    Ctx.name = "raw";
    run_tx = (fun f -> f ctx);
    recover = (fun () -> invalid_arg "raw baseline is not crash consistent");
    drain = (fun () -> ());
    log_footprint = (fun () -> 0);
    supports_recovery = false;
  }
