(** Fixed-size domain pool with deterministic, index-ordered reduction.

    The harness's heavy loops — crash-space exploration, the bench grid,
    the service batch sweep — are embarrassingly parallel: every case
    builds its own simulated device and shares only read-only plan data.
    [Par.run] fans [n] independent jobs over a pool of OCaml domains and
    returns the results {e indexed by submission order}, so callers that
    fold the result array reproduce the serial output exactly: [jobs = 8]
    is byte-identical to [jobs = 1].

    Work distribution is an atomic work-index with chunked claiming:
    workers [Atomic.fetch_and_add] the next index (or chunk of indices)
    until the range is exhausted, which load-balances jobs of uneven
    cost without any queue allocation.

    Observability composes: each worker accumulates {!Specpmt_obs}
    metrics and phase tallies in its own domain-local registry, and the
    pool merges them into the calling domain's registry at join
    ({!Specpmt_obs.Metrics.absorb} / {!Specpmt_obs.Phase.absorb}), so
    counters and histograms aggregate across workers instead of racing.
    Trace rings stay worker-local — harvest
    {!Specpmt_obs.Trace.recent} inside the job that emitted the events.

    Failure semantics: the first failing job {e by index} wins.  Workers
    stop claiming new work once any job has failed, and the recorded
    exception is re-raised (with its backtrace) on the calling domain
    after every worker has joined. *)

type error = {
  index : int;  (** job index whose execution raised *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

val default_jobs : unit -> int
(** [max 1 (min 8 (Domain.recommended_domain_count () - 1))] — leave a
    core for the coordinator, cap the pool at 8 (the harness's loops
    stop scaling past that, and over-subscribing domains hurts the
    OCaml runtime). *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?init:(unit -> unit) ->
  n:int ->
  (int -> 'a) ->
  'a array
(** [run ~n f] computes [[| f 0; ...; f (n-1) |]].

    [jobs] is the worker-domain count (defaults to {!default_jobs};
    clamped to at least 1 and at most [n]).  [jobs = 1] runs inline on
    the calling domain in ascending index order, spawning nothing — the
    serial reference semantics.  [chunk] (default 1) is how many
    consecutive indices a worker claims per atomic operation: raise it
    for very cheap jobs to cut contention.  [init] runs once per worker
    domain before it claims any work (and once on the calling domain in
    inline mode) — use it for domain-local setup such as
    [Trace.set_capacity] or a compute-scale knob.

    [f] must be safe to call from spawned domains: jobs must not share
    mutable state with each other (domain-local {!Specpmt_obs} state is
    already safe).  Jobs may run in any order and results arrive in
    submission order regardless.

    If any [f i] raises, the exception of the lowest failing index is
    re-raised on the caller after all workers join; remaining claimed
    work is abandoned (best effort — jobs already in flight still
    finish). *)

val map_list :
  ?jobs:int -> ?chunk:int -> ?init:(unit -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f xs] is {!run} over a list, preserving order. *)

(** {1 Long-lived workers}

    {!run} is the fan-out shape: a fixed range of independent jobs.
    Pipelines — a coordinator exchanging messages with resident domains,
    like the shard-per-domain data plane — need workers that live until
    told to stop.  {!spawn}/{!join} give them the same observability
    lifecycle as {!run} jobs: each worker accumulates metrics and phase
    tallies in its own domain-local registry, and the join merges them
    into the calling domain's. *)

type 'a worker

val spawn : (unit -> 'a) -> 'a worker
(** Spawn one resident worker domain.  The worker's exception (if any)
    is captured with its backtrace and re-raised at {!join}. *)

val join : 'a worker -> 'a
(** Join one worker, absorbing its metrics/phase tallies into the
    caller's registry first, then returning its result or re-raising its
    failure. *)

val join_all : 'a worker array -> 'a array
(** Join every worker in array order — all observability is absorbed
    before the lowest-index failure (if any) is re-raised, so no
    domain is left running and no worker's tallies are lost. *)
