type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (float_repr f)
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List l ->
      Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ",") pp) l
  | Obj kvs ->
      Fmt.pf ppf "{%a}"
        (Fmt.list ~sep:(Fmt.any ",") (fun ppf (k, v) ->
             Fmt.pf ppf "\"%s\":%a" (escape k) pp v))
        kvs

let rec pp_hum ppf = function
  | List (_ :: _ as l) ->
      Fmt.pf ppf "@[<v 2>[@,%a@;<0 -2>]@]"
        (Fmt.list ~sep:(Fmt.any ",@,") pp_hum)
        l
  | Obj (_ :: _ as kvs) ->
      Fmt.pf ppf "@[<v 2>{@,%a@;<0 -2>}@]"
        (Fmt.list ~sep:(Fmt.any ",@,") (fun ppf (k, v) ->
             Fmt.pf ppf "\"%s\": %a" (escape k) pp_hum v))
        kvs
  | j -> pp ppf j

let to_string j = Fmt.str "%a@." pp_hum j

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string j))
