lib/stamp/workload.ml: Genome Intruder Kmeans Labyrinth List Specpmt_pmalloc Specpmt_txn Ssca2 Vacation Wtypes Yada
