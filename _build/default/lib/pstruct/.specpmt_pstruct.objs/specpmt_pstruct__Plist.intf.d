lib/pstruct/plist.mli: Addr Ctx Specpmt_pmem Specpmt_txn
