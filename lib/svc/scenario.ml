module Json = Specpmt_obs.Json

(* YCSB A-F workload specifications and their deterministic op streams.

   Each mix is a fixed fraction vector over {read, update, insert, rmw,
   scan} plus a key distribution.  Streams are generated up front from a
   seeded RNG with one coin + one key draw per op (inserts draw the coin
   only), so the stream is a pure function of (spec, ops, keys, seed) —
   the same determinism contract Loadgen.op_stream gives the data
   plane. *)

type mix = A | B | C | D | E | F

type dist = Uniform | Zipf of float | Latest of float

type spec = {
  sc_mix : mix;
  read : float;
  update : float;
  insert : float;
  rmw : float;
  scan : float;
  dist : dist;
  scan_max : int;
}

let default_theta = 0.99

let spec ?(theta = default_theta) ?(scan_max = 16) mix =
  if scan_max < 1 then invalid_arg "Scenario.spec: scan_max < 1";
  let z =
    {
      sc_mix = mix;
      read = 0.0;
      update = 0.0;
      insert = 0.0;
      rmw = 0.0;
      scan = 0.0;
      dist = Zipf theta;
      scan_max;
    }
  in
  match mix with
  | A -> { z with read = 0.5; update = 0.5 }
  | B -> { z with read = 0.95; update = 0.05 }
  | C -> { z with read = 1.0 }
  | D -> { z with read = 0.95; insert = 0.05; dist = Latest theta }
  | E -> { z with scan = 0.95; insert = 0.05 }
  | F -> { z with read = 0.5; rmw = 0.5 }

let all_mixes = [ A; B; C; D; E; F ]

let mix_to_string = function
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"
  | F -> "F"

let mix_of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "A" -> Ok A
  | "B" -> Ok B
  | "C" -> Ok C
  | "D" -> Ok D
  | "E" -> Ok E
  | "F" -> Ok F
  | s -> Error (Printf.sprintf "unknown YCSB mix %S (want A..F)" s)

let dist_to_string = function
  | Uniform -> "uniform"
  | Zipf t -> Printf.sprintf "zipf:%g" t
  | Latest t -> Printf.sprintf "latest:%g" t

let op_stream sp ~ops ~keys ~seed =
  if ops < 0 then invalid_arg "Scenario.op_stream: ops < 0";
  if keys < 1 then invalid_arg "Scenario.op_stream: keys < 1";
  let st = Random.State.make [| 0x9C5B; seed |] in
  let theta =
    match sp.dist with Uniform -> 0.0 | Zipf t | Latest t -> t
  in
  let zdraw = Loadgen.zipf_sampler ~n:keys ~theta st in
  (* D's insert frontier: the table is fully pre-adopted, so "insert"
     means first client write to a fresh key.  The frontier starts at
     half the keyspace (so latest/read draws have a populated window)
     and advances one key per insert; when the keyspace is exhausted,
     inserts wrap onto the oldest keys. *)
  let frontier = ref (max 1 (keys / 2)) in
  let wrapped = ref 0 in
  let insert_key () =
    if !frontier < keys then (
      let k = !frontier in
      incr frontier;
      k)
    else (
      let k = !wrapped mod keys in
      incr wrapped;
      k)
  in
  let draw_key () =
    match sp.dist with
    | Uniform -> Random.State.int st keys
    | Zipf _ -> zdraw ()
    | Latest _ ->
        (* zipf over recency rank: rank 0 is the newest inserted key *)
        let r = zdraw () mod !frontier in
        !frontier - 1 - r
  in
  let t_read = sp.read in
  let t_update = t_read +. sp.update in
  let t_insert = t_update +. sp.insert in
  let t_rmw = t_insert +. sp.rmw in
  let out = Array.make ops (0, Service.Read) in
  (* explicit loop: draws must happen in stream order *)
  for i = 0 to ops - 1 do
    let u = Random.State.float st 1.0 in
    let pair =
      if u < t_read then (draw_key (), Service.Read)
      else if u < t_update then (draw_key (), Service.Write (1_000_000 + i))
      else if u < t_insert then (insert_key (), Service.Write (1_000_000 + i))
      else if u < t_rmw then (draw_key (), Service.Rmw (1 + (i land 0xFF)))
      else
        (draw_key (), Service.Scan (1 + Random.State.int st sp.scan_max))
    in
    out.(i) <- pair
  done;
  out

type tally = { t_reads : int; t_writes : int; t_rmws : int; t_scans : int }

let tally stream =
  Array.fold_left
    (fun t (_, op) ->
      match op with
      | Service.Read -> { t with t_reads = t.t_reads + 1 }
      | Service.Write _ -> { t with t_writes = t.t_writes + 1 }
      | Service.Rmw _ -> { t with t_rmws = t.t_rmws + 1 }
      | Service.Scan _ -> { t with t_scans = t.t_scans + 1 })
    { t_reads = 0; t_writes = 0; t_rmws = 0; t_scans = 0 }
    stream

let spec_to_json sp =
  Json.Obj
    [
      ("mix", Json.Str (mix_to_string sp.sc_mix));
      ("read", Json.Float sp.read);
      ("update", Json.Float sp.update);
      ("insert", Json.Float sp.insert);
      ("rmw", Json.Float sp.rmw);
      ("scan", Json.Float sp.scan);
      ("dist", Json.Str (dist_to_string sp.dist));
      ("scan_max", Json.Int sp.scan_max);
    ]
