(** Deterministic xorshift PRNG for workload generation.

    Not [Random]: workloads must produce identical inputs across backends
    so that final-state checksums are comparable. *)

type t = { mutable s : int }

let create seed = { s = (seed * 2654435761) lor 1 }

let next t =
  let x = t.s in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  t.s <- (if x = 0 then 0x9E3779B9 else x);
  t.s

let int t bound =
  assert (bound > 0);
  next t mod bound

let bool t = next t land 1 = 1
