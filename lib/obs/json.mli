(** Minimal JSON tree and serializer.

    The bench reports must be machine-readable without adding a JSON
    dependency to the container, so this is a small, total emitter: no
    parsing, no streaming, just a tree and a printer producing canonical
    RFC 8259 output (objects keep insertion order so reports are
    schema-stable and diffable across runs). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Compact one-line output. *)

val pp_hum : Format.formatter -> t -> unit
(** Two-space indented output, for files meant to be read by humans. *)

val to_string : t -> string
(** [pp_hum] into a string, with a trailing newline. *)

val to_file : string -> t -> unit
(** Write [to_string] to a file (truncating). *)
