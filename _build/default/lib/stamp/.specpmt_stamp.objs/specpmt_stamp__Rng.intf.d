lib/stamp/rng.mli:
