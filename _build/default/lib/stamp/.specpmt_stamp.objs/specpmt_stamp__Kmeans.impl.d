lib/stamp/kmeans.ml: Array Ctx List Parray Rng Specpmt_pstruct Specpmt_txn Wtypes
