(** PMDK-style undo-logging transactions — the paper's baseline
    (Section 7.1.2).

    Before the first in-place update of each cell, the old value is
    appended to the undo log and persisted with a flush + fence (Figure 2,
    left: "log old a & flush log", "a fence after each log").  Commit
    flushes every updated data line, fences, then truncates the log with a
    second barrier — committed data must be durable before the undo images
    are discarded.  Recovery rolls uncommitted updates back, newest
    first. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type t = {
  heap : Heap.t;
  pm : Pmem.t;
  log : Intent_log.t;
  ws : Write_set.t;
  mutable frees : Addr.t list;
      (* transactional frees deferred to commit: an uncommitted free must
         never become durable, or recovery could revive a pointer into a
         reallocated block *)
  mutable in_tx : bool;
}

let tx_write t a v =
  let old_value = Pmem.load_int t.pm a in
  let _, first = Write_set.record t.ws a ~old_value in
  if first then Intent_log.append_durable t.log [ a; old_value ];
  Pmem.store_int t.pm a v

let commit t =
  Write_set.iter_in_order t.ws (fun a _ -> Pmem.clwb t.pm a);
  Pmem.sfence t.pm;
  Intent_log.truncate_durable t.log;
  List.iter (fun a -> Heap.free t.heap a) (List.rev t.frees);
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let rollback t =
  Write_set.iter_newest_first t.ws (fun a slot ->
      Pmem.store_int t.pm a slot.Write_set.old_value;
      Pmem.clwb t.pm a);
  Pmem.sfence t.pm;
  Intent_log.truncate_durable t.log;
  t.frees <- [];
  Write_set.clear t.ws;
  t.in_tx <- false

let run_tx t f =
  if t.in_tx then invalid_arg "Pmdk_undo: nested transaction";
  t.in_tx <- true;
  let hooks = Ctx.Hooks.create () in
  let ctx =
    {
      Ctx.read = (fun a -> Pmem.load_int t.pm a);
      write = (fun a v -> tx_write t a v);
      alloc = (fun n -> Heap.alloc t.heap n);
      free = (fun a -> t.frees <- a :: t.frees);
      on_end = Ctx.Hooks.register hooks;
    }
  in
  match f ctx with
  | v ->
      commit t;
      Ctx.Hooks.fire hooks true;
      v
  | exception Ctx.Abort ->
      rollback t;
      Ctx.Hooks.fire hooks false;
      raise Ctx.Abort
  | exception e ->
      Ctx.Hooks.fire hooks false;
      raise e

let recover t =
  Heap.recover t.heap;
  let log =
    Intent_log.attach t.heap ~region_slot:Slots.pmdk_region
      ~capacity_slot:Slots.pmdk_capacity ~words_per_entry:2
  in
  let n = Intent_log.count log in
  for i = n - 1 downto 0 do
    match Intent_log.entry log i with
    | [ a; old_value ] ->
        Pmem.store_int t.pm a old_value;
        Pmem.clwb t.pm a
    | _ -> assert false
  done;
  Pmem.sfence t.pm;
  Intent_log.truncate_durable log;
  t.frees <- [] (* deferred frees of a crashed transaction are dead *);
  Write_set.clear t.ws;
  t.in_tx <- false

let create heap =
  let t =
    {
      heap;
      pm = Heap.pmem heap;
      log =
        Intent_log.create heap ~region_slot:Slots.pmdk_region
          ~capacity_slot:Slots.pmdk_capacity ~words_per_entry:2
          ~capacity:1024;
      ws = Write_set.create ();
      frees = [];
      in_tx = false;
    }
  in
  {
    Ctx.name = "PMDK";
    run_tx = (fun f -> run_tx t f);
    recover = (fun () -> recover t);
    drain = (fun () -> ());
    log_footprint = (fun () -> Intent_log.footprint t.log);
    supports_recovery = true;
  }
