(** The common transactional interface.

    Workloads (the STAMP ports, the examples) are written against {!ctx},
    a first-class record of operations valid inside one open transaction,
    and {!backend}, the scheme-agnostic handle exposing [run_tx] and
    recovery.  Every crash-consistency scheme — software or simulated
    hardware — provides this same interface, so a workload runs unchanged
    under PMDK-style undo logging, Kamino-Tx, SPHT, SpecPMT, EDE, HOOP...

    Addresses and values are word-granular (8-byte cells), matching the
    simulator; backends account sub-word application writes by byte size
    when profiling (Table 2) but log at cell granularity. *)

open Specpmt_pmem

type ctx = {
  read : Addr.t -> int;  (** transactional load of an 8-byte cell *)
  write : Addr.t -> int -> unit;  (** transactional store of an 8-byte cell *)
  alloc : int -> Addr.t;  (** persistent allocation (not rolled back) *)
  free : Addr.t -> unit;
  on_end : (bool -> unit) -> unit;
      (** Register a volatile outcome hook on the open transaction: the
          callback fires exactly once when the transaction ends —
          [true] after a successful commit, [false] after a rollback or
          when any exception (including a device crash) escapes the
          transaction body without committing.  Hooks are volatile
          bookkeeping only (DRAM caches staging their deltas, e.g. the
          {!Specpmt_pstruct} shadow mirror): they must not touch the
          device, and they do not survive recovery — post-crash state
          is rebuilt from media, never from hook effects.
          Non-transactional contexts ({!raw_ctx}) invoke the callback
          immediately with [true]; read-only contexts ({!peek_ctx})
          raise [Invalid_argument]. *)
}

(** Per-transaction hook registry for backends: collect {!ctx.on_end}
    callbacks while the transaction runs, then {!Hooks.fire} them with
    the outcome from the [run_tx] dispatch arms (never from inside
    commit/rollback helpers — some backends' rollback path calls their
    commit helper). *)
module Hooks = struct
  type t = { mutable fns : (bool -> unit) list }

  let create () = { fns = [] }
  let register t f = t.fns <- f :: t.fns

  (* fire in registration order; clear first so a hook that itself opens
     a transaction cannot re-enter a stale list *)
  let fire t ok =
    match t.fns with
    | [] -> ()
    | fns ->
        t.fns <- [];
        List.iter (fun f -> f ok) (List.rev fns)
end

exception Abort
(** Raised by user code to abort the open transaction; the backend rolls
    back volatile effects where its model supports it. *)

type backend = {
  name : string;
  run_tx : 'a. (ctx -> 'a) -> 'a;
      (** Run a crash-atomic transaction.  If {!Specpmt_pmem.Pmem.Crash}
          escapes, the device is mid-crash: the caller must invoke
          [Pmem.crash] and then [recover]. *)
  recover : unit -> unit;
      (** Post-crash recovery: restore every committed effect, revoke every
          uncommitted one, and reinitialise the backend's runtime state. *)
  drain : unit -> unit;
      (** Complete all background work (log replay, reclamation) — used at
          the end of a measured run so that schemes with deferred work pay
          their full traffic. *)
  log_footprint : unit -> int;
      (** Current persistent bytes devoted to log structures (for the
          memory-consumption analyses, Fig. 15). *)
  supports_recovery : bool;
      (** False for performance-upper-bound models (our Kamino-Tx port,
          mirroring the paper's methodology) that cannot actually recover. *)
}

(** Non-transactional direct access used by setup phases and verification.
    Reads and writes go straight to the device with no logging. *)
let raw_ctx (heap : Specpmt_pmalloc.Heap.t) =
  let pm = Specpmt_pmalloc.Heap.pmem heap in
  {
    read = (fun a -> Pmem.load_int pm a);
    write = (fun a v -> Pmem.store_int pm a v);
    alloc = (fun n -> Specpmt_pmalloc.Heap.alloc heap n);
    free = (fun a -> Specpmt_pmalloc.Heap.free heap a);
    (* non-transactional: every effect is already final when made, so an
       outcome hook can only ever observe a commit — fire it now (which
       is why hook users must stage their delta BEFORE registering) *)
    on_end = (fun f -> f true);
  }

(** Read-only, unmetered access for recovery rediscovery and post-crash
    audits: reads bypass the cache and the device clock
    ({!Specpmt_pmem.Pmem.peek_volatile_int}, so auditing a structure
    costs no simulated time and dirties no line); writes, allocation
    and free raise [Invalid_argument]. *)
let peek_ctx (pm : Pmem.t) =
  {
    read = (fun a -> Pmem.peek_volatile_int pm a);
    write = (fun _ _ -> invalid_arg "Ctx.peek_ctx: read-only");
    alloc = (fun _ -> invalid_arg "Ctx.peek_ctx: read-only");
    free = (fun _ -> invalid_arg "Ctx.peek_ctx: read-only");
    on_end = (fun _ -> invalid_arg "Ctx.peek_ctx: read-only");
  }
