(** Construction of the software transaction schemes by name. *)

open Specpmt_pmalloc
open Specpmt_txn

type kind =
  | Raw  (** no crash consistency (Figure 1 baseline) *)
  | Pmdk  (** undo logging, the paper's software baseline *)
  | Kamino  (** Kamino-Tx upper bound *)
  | Spht  (** redo logging + background replayer *)
  | Spec_dp  (** software SpecPMT with forced data persistence *)
  | Spec  (** software SpecPMT *)
  | Hashlog  (** hash-table speculative log (Section 4 ablation) *)

val all : kind list
(** In presentation order of Figure 12 (plus the ablations). *)

val name : kind -> string
val of_name : string -> kind option

val create : Heap.t -> kind -> Ctx.backend
(** Instantiate a scheme on a freshly formatted pool. *)
