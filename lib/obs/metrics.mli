(** Per-domain registry of named counters, gauges and histograms.

    Subsystems register metrics lazily by name ([counter "reclaim.cycles"]
    returns the same cell every time {e on the same domain}) and bump
    them with no further coordination; the harness snapshots or resets
    the whole registry around each measured run.  Names are
    dot-separated [subsystem.metric] paths.

    The registry is domain-local storage, so parallel harness workers
    (see [Specpmt.Par]) never contend on it; a worker's registry is
    serialized with {!export} before join and merged into the parent's
    with {!absorb}.  Because the registry is per-domain, a cell obtained
    on one domain must not be bumped from another — re-look it up by
    name instead (lookup is one hashtable probe). *)

type counter
type gauge

val counter : string -> counter
(** Get or create.  Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> Hist.t
(** Get or create a registry-owned histogram (also reset by
    {!reset_all}). *)

val reset_all : unit -> unit
(** Zero every counter and gauge and reset every histogram — called by
    the harness between measured runs. *)

(** {1 Cross-domain merge} *)

type exported =
  | Counter of int
  | Gauge of float
  | Histogram of Hist.snapshot

type export = (string * exported) list
(** A registry snapshot: name-sorted, with zero counters/gauges and
    empty histograms omitted (so merging an idle worker is a no-op). *)

val export : unit -> export
(** Snapshot the calling domain's registry for transfer to another
    domain. *)

val absorb : export -> unit
(** Merge an export into the calling domain's registry: counters add,
    histograms merge bucket-wise, gauges (level samples, not totals)
    take the exported value. *)

val dump : unit -> Json.t
(** All metrics, sorted by name:
    [{"counters": {..}, "gauges": {..}, "histograms": {..}}].  Zero
    counters/gauges and empty histograms are omitted, so a dump taken
    after {!reset_all} reflects only what the measured run actually
    touched — independent of which names earlier runs on the same
    domain had registered. *)
