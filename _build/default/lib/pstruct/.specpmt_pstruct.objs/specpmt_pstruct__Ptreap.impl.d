lib/pstruct/ptreap.ml: Addr Ctx Specpmt_pmem Specpmt_txn
