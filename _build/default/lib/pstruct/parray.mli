(** Fixed-size persistent array of 8-byte cells.

    All operations go through a {!Specpmt_txn.Ctx.ctx}: inside
    [run_tx] they are crash-atomic, with {!Specpmt_txn.Ctx.raw_ctx} they
    are direct (setup and verification). *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> int -> t
(** [create ctx len] allocates [len] cells (uninitialised). *)

val of_base : base:Addr.t -> len:int -> t
(** Adopt an existing allocation (e.g. rediscovered via a root slot). *)

val length : t -> int
val base : t -> Addr.t

val addr : t -> int -> Addr.t
(** Cell address; raises [Invalid_argument] out of bounds. *)

val get : Ctx.ctx -> t -> int -> int
val set : Ctx.ctx -> t -> int -> int -> unit
val fill : Ctx.ctx -> t -> int -> unit
val to_list : Ctx.ctx -> t -> int list
