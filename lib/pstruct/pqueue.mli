(** Persistent FIFO queue of 8-byte values.

    A singly linked list of nodes with head/tail pointers in a 3-cell
    header; every mutation is a handful of cell stores inside the
    calling transaction, so a crash either keeps or drops the whole
    push/pop. *)

open Specpmt_pmem
open Specpmt_txn

type t

val create : Ctx.ctx -> t
(** Allocate an empty queue (its 3-cell header) in the transaction's
    heap. *)

val of_header : Addr.t -> t
(** Reattach to an existing queue from its header address (as returned
    by {!header}) — the rediscovery path after a crash. *)

val header : t -> Addr.t
(** The queue's header block, the one address that must be stored
    somewhere reachable (e.g. a {!Specpmt_pmalloc.Heap.root_slot}) to
    survive a crash. *)

val size : Ctx.ctx -> t -> int
(** Number of queued values (O(1): kept in the header). *)

val is_empty : Ctx.ctx -> t -> bool

val push : Ctx.ctx -> t -> int -> unit
(** Enqueue at the tail. *)

val pop : Ctx.ctx -> t -> int option
(** Dequeue from the head; [None] when empty.  The popped node is freed
    back to the transaction's heap. *)
