lib/stamp/intruder.mli: Wtypes
