open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

let mk ?(crash_prob = 0.0) () =
  let pm =
    Pmem.create { Config.small with crash_word_persist_prob = crash_prob }
  in
  (pm, Heap.create pm)

let head_slot = 20
let bb = 512 (* small blocks so chaining is exercised constantly *)

let mk_arena () =
  let pm, heap = mk () in
  (pm, heap, Log_arena.create heap ~head_slot ~block_bytes:bb)

(* checksum *)

let test_crc_known () =
  (* CRC-32C("123456789") = 0xE3069283, a standard test vector *)
  Alcotest.(check int)
    "crc32c vector" 0xE3069283
    (Checksum.crc32c (Bytes.of_string "123456789"))

(* the incremental per-word fold (the commit hot path) must agree with
   the list-based [words] oracle, including sign-extended negatives *)
let test_crc_word_fold_oracle () =
  let fold ws = List.fold_left Checksum.crc32c_word 0 ws in
  Alcotest.(check int) "empty fold = words []" (Checksum.words []) (fold []);
  List.iter
    (fun ws ->
      Alcotest.(check int)
        (Fmt.str "fold = words %a" Fmt.(Dump.list int) ws)
        (Checksum.words ws) (fold ws))
    [
      [ 0 ];
      [ 1; 2; 3 ];
      [ -1 ];
      [ -2; -1; 0; 1 ];
      [ min_int; max_int ];
      [ 0x1234_5678_9ABC; -0x7777; 42 ];
    ]

let prop_crc_word_fold_oracle =
  QCheck.Test.make ~name:"crc32c_word fold equals words" ~count:300
    QCheck.(list_of_size Gen.(0 -- 12) int)
    (fun ws ->
      List.fold_left Checksum.crc32c_word 0 ws = Checksum.words ws)

let prop_crc_detects_flip =
  QCheck.Test.make ~name:"crc detects single-word corruption" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 10) (int_bound 10000)) small_nat)
    (fun (ws, i) ->
      QCheck.assume (ws <> []);
      let i = i mod List.length ws in
      let ws' = List.mapi (fun j w -> if j = i then w + 1 else w) ws in
      Checksum.words ws <> Checksum.words ws')

(* write set *)

let test_write_set_first_and_order () =
  let ws = Write_set.create () in
  let s1, f1 = Write_set.record ws 8 ~old_value:10 in
  let _, f2 = Write_set.record ws 16 ~old_value:20 in
  let s3, f3 = Write_set.record ws 8 ~old_value:999 in
  Alcotest.(check bool) "first" true f1;
  Alcotest.(check bool) "second addr first" true f2;
  Alcotest.(check bool) "repeat not first" false f3;
  Alcotest.(check bool) "same slot" true (s1 == s3);
  Alcotest.(check int) "old value kept from first write" 10
    s3.Write_set.old_value;
  let order = ref [] in
  Write_set.iter_in_order ws (fun a _ -> order := a :: !order);
  Alcotest.(check (list int)) "oldest first" [ 16; 8 ] !order

(* log arena *)

let scan_all pm =
  let recs = ref [] in
  let _ =
    Log_arena.recover_scan pm ~head_slot ~block_bytes:bb ~f:(fun ~ts e ->
        recs := (ts, Array.to_list e) :: !recs)
  in
  List.rev !recs

let test_arena_commit_and_scan () =
  let pm, _, a = mk_arena () in
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:1000 ~value:1);
  ignore (Log_arena.add_entry a ~target:1008 ~value:2);
  Log_arena.commit_record a ~timestamp:5;
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:1000 ~value:3);
  Log_arena.commit_record a ~timestamp:6;
  Pmem.crash pm;
  Alcotest.(check (list (pair int (list (pair int int)))))
    "both records survive, in order"
    [ (5, [ (1000, 1); (1008, 2) ]); (6, [ (1000, 3) ]) ]
    (scan_all pm)

let test_arena_torn_record_dropped () =
  let pm, _, a = mk_arena () in
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:1000 ~value:1);
  Log_arena.commit_record a ~timestamp:5;
  (* second record never committed: no checksum, never flushed *)
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:2000 ~value:99);
  Pmem.crash pm;
  Alcotest.(check (list (pair int (list (pair int int)))))
    "only the committed record"
    [ (5, [ (1000, 1) ]) ]
    (scan_all pm)

let test_arena_torn_record_dropped_even_if_leaked () =
  (* same, but every dirty word leaks to the media: the missing checksum
     is computed over garbage metadata and still fails *)
  let pm =
    Pmem.create { Config.small with crash_word_persist_prob = 1.0 }
  in
  let heap = Heap.create pm in
  let a = Log_arena.create heap ~head_slot ~block_bytes:bb in
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:1000 ~value:1);
  Log_arena.commit_record a ~timestamp:5;
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:2000 ~value:99);
  Pmem.crash pm;
  Alcotest.(check (list (pair int (list (pair int int)))))
    "uncommitted record dropped"
    [ (5, [ (1000, 1) ]) ]
    (scan_all pm)

let test_arena_record_spans_blocks () =
  let pm, _, a = mk_arena () in
  Log_arena.begin_record a;
  (* 512-byte blocks hold ~30 entries; write 200 to span several blocks *)
  for i = 0 to 199 do
    ignore (Log_arena.add_entry a ~target:(8 * (i + 1)) ~value:i)
  done;
  Log_arena.commit_record a ~timestamp:9;
  Alcotest.(check bool) "chained" true (Log_arena.block_count a > 1);
  Pmem.crash pm;
  match scan_all pm with
  | [ (9, entries) ] ->
      Alcotest.(check int) "all entries back" 200 (List.length entries);
      Alcotest.(check (pair int int)) "last entry" (8 * 200, 199)
        (List.nth entries 199)
  | other ->
      Alcotest.failf "expected one record, got %d" (List.length other)

let test_arena_freshen_entry () =
  let pm, _, a = mk_arena () in
  Log_arena.begin_record a;
  let pos = Log_arena.add_entry a ~target:1000 ~value:1 in
  Log_arena.set_entry_value a pos 42;
  Log_arena.commit_record a ~timestamp:2;
  Pmem.crash pm;
  Alcotest.(check (list (pair int (list (pair int int)))))
    "freshened value logged"
    [ (2, [ (1000, 42) ]) ]
    (scan_all pm)

let fill_arena a n_records =
  for r = 0 to n_records - 1 do
    Log_arena.begin_record a;
    for i = 0 to 9 do
      ignore (Log_arena.add_entry a ~target:(8 * ((i mod 4) + 1)) ~value:((r * 10) + i))
    done;
    Log_arena.commit_record a ~timestamp:(r + 1)
  done

let test_arena_compact_keeps_freshest () =
  let pm, _, a = mk_arena () in
  fill_arena a 20;
  let before = Log_arena.footprint a in
  let st = Log_arena.compact a in
  Alcotest.(check bool) "footprint shrank" true (Log_arena.footprint a < before);
  Alcotest.(check int) "4 live cells" 4 st.Log_arena.entries_live;
  Alcotest.(check bool) "blocks freed" true (st.Log_arena.blocks_freed > 0);
  Pmem.crash pm;
  (* replaying the compacted log must give the freshest values *)
  let final = Hashtbl.create 8 in
  List.iter
    (fun (_, es) -> List.iter (fun (t, v) -> Hashtbl.replace final t v) es)
    (scan_all pm);
  (* freshest values after record 20 (r=19): the last i hitting each cell
     is 8, 9, 6, 7 respectively *)
  List.iter2
    (fun cell expected ->
      Alcotest.(check int)
        (Printf.sprintf "cell %d" cell)
        expected
        (Hashtbl.find final cell))
    [ 8; 16; 24; 32 ] [ 198; 199; 196; 197 ]

let test_arena_append_after_compact () =
  let pm, _, a = mk_arena () in
  fill_arena a 8;
  ignore (Log_arena.compact a);
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:4096 ~value:777);
  Log_arena.commit_record a ~timestamp:100;
  Pmem.crash pm;
  let recs = scan_all pm in
  Alcotest.(check bool) "compacted + new record" true (List.length recs = 2);
  let _, last = List.nth recs 1 in
  Alcotest.(check (list (pair int int))) "new record intact" [ (4096, 777) ] last

let test_arena_attach_resumes () =
  let pm, heap, a = mk_arena () in
  fill_arena a 3;
  (* simulated restart without crash: reattach and keep appending *)
  let a2 = Log_arena.attach heap ~head_slot ~block_bytes:bb in
  Log_arena.begin_record a2;
  ignore (Log_arena.add_entry a2 ~target:8192 ~value:1);
  Log_arena.commit_record a2 ~timestamp:50;
  Pmem.crash pm;
  Alcotest.(check int) "all four records" 4 (List.length (scan_all pm))

let test_compact_is_crash_atomic () =
  (* crash at every event during a compaction: a scan must always see
     either the old chain or the new one — never garbage *)
  let run fuse =
    let pm =
      Pmem.create { Config.small with crash_word_persist_prob = 0.5 }
    in
    let heap = Heap.create pm in
    let a = Log_arena.create heap ~head_slot ~block_bytes:bb in
    fill_arena a 10;
    let final = Hashtbl.create 8 in
    List.iter
      (fun (_, es) -> List.iter (fun (t, v) -> Hashtbl.replace final t v) es)
      (scan_all pm);
    Pmem.set_fuse pm (Some fuse);
    let crashed =
      try
        ignore (Log_arena.compact a);
        false
      with Pmem.Crash -> true
    in
    Pmem.crash pm;
    let after = Hashtbl.create 8 in
    List.iter
      (fun (_, es) -> List.iter (fun (t, v) -> Hashtbl.replace after t v) es)
      (scan_all pm);
    Hashtbl.iter
      (fun cell v ->
        Alcotest.(check int)
          (Printf.sprintf "fuse %d cell %d" fuse cell)
          v
          (try Hashtbl.find after cell with Not_found -> -1))
      final;
    crashed
  in
  let fuse = ref 1 in
  while run !fuse do
    incr fuse
  done;
  Alcotest.(check bool) "eventually completes" true (!fuse > 1)

(* compaction must keep one record per surviving timestamp, ascending —
   restamping every survivor with the newest timestamp would reorder
   entries against other threads' logs when recovery replays all logs in
   global timestamp order (Section 5.2.2) *)
let test_compact_preserves_timestamps () =
  let pm, _, a = mk_arena () in
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:8 ~value:1);
  ignore (Log_arena.add_entry a ~target:16 ~value:10);
  Log_arena.commit_record a ~timestamp:1;
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:8 ~value:2);
  Log_arena.commit_record a ~timestamp:2;
  ignore (Log_arena.compact a);
  let recs = ref [] in
  ignore
    (Log_arena.recover_scan pm ~head_slot ~block_bytes:bb ~f:(fun ~ts e ->
         recs := (ts, Array.to_list e) :: !recs));
  Alcotest.(check (list (pair int (list (pair int int)))))
    "one record per surviving timestamp, ascending"
    [ (1, [ (16, 10) ]); (2, [ (8, 2) ]) ]
    (List.rev !recs)

(* coalescing scan *)

let test_recover_collect_last_writer_wins () =
  let pm, _, a = mk_arena () in
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:8 ~value:1);
  ignore (Log_arena.add_entry a ~target:16 ~value:10);
  Log_arena.commit_record a ~timestamp:1;
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:8 ~value:2);
  Log_arena.commit_record a ~timestamp:2;
  (* torn tail: must not reach the index *)
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:16 ~value:666);
  Pmem.crash pm;
  let index = Hashtbl.create 8 in
  let max_ts, records, entries =
    Log_arena.recover_collect pm ~head_slot ~block_bytes:bb ~index
  in
  Alcotest.(check int) "max ts" 2 max_ts;
  Alcotest.(check int) "records scanned" 2 records;
  Alcotest.(check int) "entries scanned" 3 entries;
  Alcotest.(check int) "index holds live set" 2 (Hashtbl.length index);
  let v, ts, _ = Hashtbl.find index 8 in
  Alcotest.(check (pair int int)) "freshest write wins" (2, 2) (v, ts);
  let v, ts, _ = Hashtbl.find index 16 in
  Alcotest.(check (pair int int)) "old but live survives" (10, 1) (v, ts)

let freshest_cells pm =
  let h = Hashtbl.create 8 in
  ignore
    (Log_arena.recover_scan pm ~head_slot ~block_bytes:bb ~f:(fun ~ts:_ es ->
         Array.iter (fun (t, v) -> Hashtbl.replace h t v) es));
  List.sort compare (Hashtbl.fold (fun t v acc -> (t, v) :: acc) h [])

(* Group a coalescing-scan index into [compact_indexed]'s input shape:
   timestamp-ascending (target, value) groups, optionally restricted to
   entries living in [blocks]. *)
let live_groups ?blocks pm =
  let index = Hashtbl.create 32 in
  ignore (Log_arena.recover_collect pm ~head_slot ~block_bytes:bb ~index);
  let keep b =
    match blocks with None -> true | Some bs -> List.mem b bs
  in
  let by_ts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun a (v, ts, b) ->
      if keep b then
        let l = try Hashtbl.find by_ts ts with Not_found -> [] in
        Hashtbl.replace by_ts ts ((a, v) :: l))
    index;
  Hashtbl.fold (fun ts l acc -> (ts, l) :: acc) by_ts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let test_compact_indexed_equals_scan_compact () =
  (* the index-driven compactor and the legacy scan-based one must leave
     behind logs that recover identically — same cells, same one-record-
     per-surviving-timestamp ascending layout *)
  let pm1, _, a1 = mk_arena () in
  let pm2, _, a2 = mk_arena () in
  fill_arena a1 20;
  fill_arena a2 20;
  ignore (Log_arena.compact a1);
  let live = live_groups pm2 in
  let st = Log_arena.compact_indexed a2 ~live in
  Alcotest.(check int) "4 live entries copied" 4 st.Log_arena.entries_live;
  Alcotest.(check bool) "blocks freed" true (st.Log_arena.blocks_freed > 0);
  Pmem.crash pm1;
  Pmem.crash pm2;
  Alcotest.(check (list (pair int int)))
    "same recovered cells" (freshest_cells pm1) (freshest_cells pm2);
  (* one record per surviving timestamp, ascending; entry order within a
     record is immaterial (at most one entry per datum per record) *)
  let layout pm =
    let recs = ref [] in
    ignore
      (Log_arena.recover_scan pm ~head_slot ~block_bytes:bb ~f:(fun ~ts e ->
           recs := (ts, List.sort compare (Array.to_list e)) :: !recs));
    List.rev !recs
  in
  Alcotest.(check (list (pair int (list (pair int int)))))
    "same record layout" (layout pm1) (layout pm2)

let test_compact_indexed_prefix_keeps_suffix () =
  let pm, _, a = mk_arena () in
  fill_arena a 6;
  Log_arena.seal_block a;
  (* the sealed boundary starts a fresh block: a legal splice point *)
  let boundary = Log_arena.current_block a in
  Alcotest.(check bool) "boundary is a clean start" true
    (Log_arena.is_clean_start a boundary);
  fill_arena a 3;
  let before = freshest_cells pm in
  let prefix =
    let rec take = function
      | b :: _ when b = boundary -> []
      | b :: rest -> b :: take rest
      | [] -> []
    in
    take (Log_arena.chain a)
  in
  let live = live_groups ~blocks:prefix pm in
  let placed = ref 0 in
  let st =
    Log_arena.compact_indexed ~keep_from:boundary a ~live
      ~on_place:(fun _ ~block:_ -> incr placed)
  in
  Alcotest.(check int) "every prefix survivor placed" !placed
    st.Log_arena.entries_live;
  Alcotest.(check bool) "prefix blocks freed" true
    (st.Log_arena.blocks_freed > 0);
  Alcotest.(check (list (pair int int)))
    "suffix and prefix survivors all recover" before (freshest_cells pm);
  (* the arena must still append: the retained suffix owns the tail *)
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:8192 ~value:777);
  Log_arena.commit_record a ~timestamp:400;
  Pmem.crash pm;
  Alcotest.(check (list (pair int int)))
    "append after prefix evacuation"
    (List.sort compare ((8192, 777) :: before))
    (freshest_cells pm)

let test_compact_indexed_fully_stale_prefix_drops () =
  (* when nothing in the prefix is live, evacuation degrades to the
     zero-copy pointer-switch drop *)
  let pm, _, a = mk_arena () in
  fill_arena a 6;
  Log_arena.seal_block a;
  let boundary = Log_arena.current_block a in
  (* overwrite every cell after the boundary: the prefix is all stale *)
  fill_arena a 3;
  let before = freshest_cells pm in
  let st = Log_arena.compact_indexed ~keep_from:boundary a ~live:[] in
  Alcotest.(check int) "zero copies" 0 st.Log_arena.entries_live;
  Alcotest.(check int) "zero blocks allocated" 0 st.Log_arena.blocks_allocated;
  Alcotest.(check bool) "prefix dropped" true (st.Log_arena.blocks_freed > 0);
  Pmem.crash pm;
  Alcotest.(check (list (pair int int)))
    "suffix alone recovers everything" before (freshest_cells pm)

let test_compact_indexed_crash_atomic () =
  (* crash at every event during an indexed compaction (full rewrite and
     prefix evacuation): a scan must always see the freshest value of
     every cell — the same property [test_compact_is_crash_atomic] pins
     for the legacy compactor *)
  let run ~prefix fuse =
    let pm =
      Pmem.create { Config.small with crash_word_persist_prob = 0.5 }
    in
    let heap = Heap.create pm in
    let a = Log_arena.create heap ~head_slot ~block_bytes:bb in
    fill_arena a 6;
    let keep_from =
      if not prefix then None
      else begin
        Log_arena.seal_block a;
        let b = Log_arena.current_block a in
        fill_arena a 3;
        Some b
      end
    in
    let final = freshest_cells pm in
    let blocks =
      Option.map
        (fun b ->
          let rec take = function
            | x :: _ when x = b -> []
            | x :: rest -> x :: take rest
            | [] -> []
          in
          take (Log_arena.chain a))
        keep_from
    in
    let live = live_groups ?blocks pm in
    Pmem.set_fuse pm (Some fuse);
    let crashed =
      try
        ignore (Log_arena.compact_indexed ?keep_from a ~live);
        false
      with Pmem.Crash -> true
    in
    Pmem.crash pm;
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "prefix=%b fuse %d: freshest cells survive" prefix fuse)
      final (freshest_cells pm);
    crashed
  in
  List.iter
    (fun prefix ->
      let fuse = ref 1 in
      while run ~prefix !fuse do
        incr fuse
      done;
      Alcotest.(check bool) "eventually completes" true (!fuse > 1))
    [ false; true ]

(* the arena's volatile accounting (total entries, per-block entries,
   clean starts) must survive an [attach] — it feeds the adaptive
   reclamation scheduler's pressure model *)
let test_attach_rebuilds_accounting () =
  let pm, heap, a = mk_arena () in
  fill_arena a 12;
  let total = Log_arena.total_entries a in
  let per_block =
    List.map (fun b -> Log_arena.entries_in_block a b) (Log_arena.chain a)
  in
  let clean =
    List.map (fun b -> Log_arena.is_clean_start a b) (Log_arena.chain a)
  in
  Alcotest.(check int) "12 records x 10 entries" 120 total;
  ignore pm;
  let a2 = Log_arena.attach heap ~head_slot ~block_bytes:bb in
  Alcotest.(check int) "total entries rebuilt" total
    (Log_arena.total_entries a2);
  Alcotest.(check (list int))
    "per-block entries rebuilt" per_block
    (List.map (fun b -> Log_arena.entries_in_block a2 b) (Log_arena.chain a2));
  Alcotest.(check (list bool))
    "clean starts rebuilt" clean
    (List.map (fun b -> Log_arena.is_clean_start a2 b) (Log_arena.chain a2))

(* a torn [reset] must never leave a scannable record prefix: the caller
   has already persisted the covered data, and replaying a stale prefix
   (fresher records lost behind a severed chain) would roll it back.
   Crash at every event of reset under deterministic per-word oracles and
   require the log to read either fully intact or fully empty.

   The record sizes are chosen so a record boundary lands within
   [min_space] of the first block's end: the recovery scan must then
   consult the head block's successor pointer — the very word a torn
   reset corrupts.  (Mid-record continuations travel through in-payload
   marker entries and never read it.) *)
let test_reset_crash_atomic () =
  let fill a =
    List.iteri
      (fun r n ->
        Log_arena.begin_record a;
        for i = 0 to n - 1 do
          ignore
            (Log_arena.add_entry a ~target:(8 * (i + 1)) ~value:((r * 100) + i))
        done;
        Log_arena.commit_record a ~timestamp:(r + 1))
      [ 6; 6; 6; 5; 6; 6; 6 ]
  in
  let freshest scan =
    let h = Hashtbl.create 8 in
    List.iter
      (fun (_, es) -> List.iter (fun (t, v) -> Hashtbl.replace h t v) es)
      scan;
    List.sort compare (Hashtbl.fold (fun t v acc -> (t, v) :: acc) h [])
  in
  let run fuse mk_oracle =
    let pm, heap = mk () in
    let a = Log_arena.create heap ~head_slot ~block_bytes:bb in
    fill a;
    let scan_all () =
      let recs = ref [] in
      ignore
        (Log_arena.recover_scan pm ~head_slot ~block_bytes:bb ~f:(fun ~ts e ->
             recs := (ts, Array.to_list e) :: !recs));
      List.rev !recs
    in
    let full = freshest (scan_all ()) in
    Pmem.set_fuse pm (Some fuse);
    let crashed =
      try
        Log_arena.reset a;
        false
      with Pmem.Crash -> true
    in
    let dw = Pmem.dirty_words pm in
    Pmem.crash_with pm ~persist:(mk_oracle dw);
    let after = freshest (scan_all ()) in
    Alcotest.(check bool)
      (Printf.sprintf "fuse %d: log intact or empty, never a prefix" fuse)
      true
      (after = [] || after = full);
    (crashed, List.length dw)
  in
  let all _ a = ignore a; true in
  let none _ a = ignore a; false in
  let keep_only k dw =
    let w = List.nth dw k in
    fun a -> a = w
  in
  let drop_only k dw =
    let w = List.nth dw k in
    fun a -> a <> w
  in
  let fuse = ref 1 and reset_completes = ref false in
  while not !reset_completes do
    let crashed, ndw = run !fuse all in
    ignore (run !fuse none);
    for k = 0 to ndw - 1 do
      ignore (run !fuse (keep_only k));
      ignore (run !fuse (drop_only k))
    done;
    if crashed then incr fuse else reset_completes := true
  done;
  Alcotest.(check bool) "reset eventually completes" true (!fuse > 1)

(* page records (hardware bulk-copy format) *)

let test_page_record_roundtrip () =
  let pm, heap = mk () in
  let a = Log_arena.create heap ~head_slot ~block_bytes:8192 in
  (* fill a page with a known pattern *)
  let page = Addr.page_of (Heap.alloc heap 8192) in
  for w = 0 to 511 do
    Pmem.store_int pm (page + (w * 8)) (w * 3)
  done;
  Log_arena.append_page_record a ~timestamp:4 ~page_base:page;
  (* a later normal record must still scan *)
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:64 ~value:5);
  Log_arena.commit_record a ~timestamp:6;
  Pmem.crash pm;
  let records = ref [] in
  let _ =
    Log_arena.recover_scan pm ~head_slot ~block_bytes:8192 ~f:(fun ~ts e ->
        records := (ts, e) :: !records)
  in
  match List.rev !records with
  | [ (4, page_entries); (6, tail) ] ->
      Alcotest.(check int) "512 words" 512 (Array.length page_entries);
      Array.iteri
        (fun w (tgt, v) ->
          assert (tgt = page + (w * 8));
          assert (v = w * 3))
        page_entries;
      Alcotest.(check (pair int int)) "tail record" (64, 5) tail.(0)
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_page_record_chains_when_full () =
  let pm, heap = mk () in
  let a = Log_arena.create heap ~head_slot ~block_bytes:8192 in
  let page = Addr.page_of (Heap.alloc heap 8192) in
  (* leave too little room for a page record in the current block *)
  Log_arena.begin_record a;
  for i = 0 to 200 do
    ignore (Log_arena.add_entry a ~target:(8 * (i + 1)) ~value:i)
  done;
  Log_arena.commit_record a ~timestamp:1;
  Log_arena.append_page_record a ~timestamp:2 ~page_base:page;
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:8 ~value:99);
  Log_arena.commit_record a ~timestamp:3;
  Pmem.crash pm;
  let n = ref 0 in
  let _ = Log_arena.recover_scan pm ~head_slot ~block_bytes:8192
      ~f:(fun ~ts:_ _ -> incr n) in
  Alcotest.(check int) "all three records scan across the chain" 3 !n

(* seal + drop_prefix (epoch reclamation machinery) *)

let test_seal_and_drop_prefix () =
  let pm, _, a = mk_arena () in
  fill_arena a 3;
  Log_arena.seal_block a;
  let boundary = Log_arena.current_block a in
  fill_arena a 3;
  (* drop everything before the boundary *)
  let freed = Log_arena.drop_prefix a ~keep_from:boundary in
  Alcotest.(check bool) "blocks freed" true (freed > 0);
  Pmem.crash pm;
  let seen = ref [] in
  let _ = Log_arena.recover_scan pm ~head_slot ~block_bytes:bb
      ~f:(fun ~ts _ -> seen := ts :: !seen) in
  (* the second fill stamped 1..3 again; only those survive the drop *)
  Alcotest.(check (list int)) "only the records after the boundary"
    [ 3; 2; 1 ] !seen

(* Directed crash-during-recovery scenario for the attach sentinel: a
   record whose commit was torn by a first crash is truncated by
   recovery; the application then re-executes the same transaction at the
   same append point (deterministic replay writes the same entries at the
   same offsets) and a second crash hits before the new commit.  Word
   leakage at the second crash can re-populate exactly the entry words
   the first crash lost — combined with the already-persistent metadata
   of the torn record, the checksum validates and recovery #2 replays a
   record recovery #1 rejected.  The zero sentinel [attach] writes over
   the torn record's size word prevents this, but only if it is
   persisted (clwb + sfence): the volatile store of the original code is
   itself lost at the second crash.  This test fails on the unflushed
   version. *)
let test_attach_sentinel_second_crash () =
  let target_ts = 3 in
  let entries = List.init 6 (fun i -> (2048 + (8 * i), 3000 + i)) in
  let scan_ts pm =
    let seen = ref [] in
    let _ =
      Log_arena.recover_scan pm ~head_slot ~block_bytes:bb ~f:(fun ~ts _ ->
          seen := ts :: !seen)
    in
    List.rev !seen
  in
  let resurrections = ref 0 and torn_cases = ref 0 in
  let run_one ~seed ~fuse =
    let pm =
      Pmem.create ~seed { Config.small with crash_word_persist_prob = 0.7 }
    in
    let heap = Heap.create pm in
    let a = Log_arena.create heap ~head_slot ~block_bytes:bb in
    Log_arena.begin_record a;
    ignore (Log_arena.add_entry a ~target:1000 ~value:1);
    Log_arena.commit_record a ~timestamp:1;
    Log_arena.begin_record a;
    ignore (Log_arena.add_entry a ~target:1008 ~value:2);
    Log_arena.commit_record a ~timestamp:2;
    (* third transaction: tear its commit at event [fuse] *)
    Pmem.set_fuse pm (Some fuse);
    let crashed =
      try
        Log_arena.begin_record a;
        List.iter
          (fun (t, v) -> ignore (Log_arena.add_entry a ~target:t ~value:v))
          entries;
        Log_arena.commit_record a ~timestamp:target_ts;
        Pmem.set_fuse pm None;
        false
      with Pmem.Crash -> true
    in
    if not crashed then `Commit_completed
    else begin
      Pmem.crash pm;
      let s1 = scan_ts pm in
      if List.mem target_ts s1 then
        (* the whole record leaked at the first crash: it is durable, not
           torn — nothing to resurrect *)
        `Lucky_leak
      else begin
        incr torn_cases;
        (* recovery: reattach, then re-execute the same transaction; the
           second crash hits before its commit *)
        let a2 = Log_arena.attach heap ~head_slot ~block_bytes:bb in
        Log_arena.begin_record a2;
        List.iter
          (fun (t, v) -> ignore (Log_arena.add_entry a2 ~target:t ~value:v))
          entries;
        Pmem.crash pm;
        let s2 = scan_ts pm in
        if List.mem target_ts s2 then incr resurrections;
        (* recovery #2 must replay a subset of what recovery #1 saw *)
        if not (List.for_all (fun ts -> List.mem ts s1) s2) then
          incr resurrections;
        `Torn
      end
    end
  in
  (* sweep the crash point across the whole commit and several leak
     patterns; stop each seed's sweep once the fuse outlives the commit *)
  for seed = 0 to 14 do
    let fuse = ref 1 and sweeping = ref true in
    while !sweeping do
      (match run_one ~seed ~fuse:!fuse with
      | `Commit_completed -> sweeping := false
      | `Lucky_leak | `Torn -> ());
      incr fuse
    done
  done;
  Alcotest.(check bool) "sweep exercised torn commits" true (!torn_cases > 0);
  Alcotest.(check int) "no torn record is ever resurrected" 0 !resurrections

let test_abandon_record () =
  let pm, _, a = mk_arena () in
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:8 ~value:1);
  Log_arena.commit_record a ~timestamp:1;
  Log_arena.begin_record a;
  Log_arena.abandon_record a;
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:16 ~value:2);
  Log_arena.commit_record a ~timestamp:2;
  Pmem.crash pm;
  Alcotest.(check int) "both real records scan" 2
    (List.length (scan_all pm))

(* random records: scanning returns exactly what was committed *)
let prop_arena_roundtrip =
  QCheck.Test.make ~name:"scan = committed records" ~count:80
    QCheck.(
      list_of_size Gen.(1 -- 12)
        (list_of_size Gen.(1 -- 20) (pair (int_bound 500) (int_bound 100000))))
    (fun recs ->
      let pm, _, a = mk_arena () in
      List.iteri
        (fun i entries ->
          Log_arena.begin_record a;
          List.iter
            (fun (cell, v) ->
              ignore (Log_arena.add_entry a ~target:(8 * (cell + 1)) ~value:v))
            entries;
          Log_arena.commit_record a ~timestamp:(i + 1))
        recs;
      Pmem.crash pm;
      let got = scan_all pm in
      got
      = List.mapi
          (fun i entries ->
            (i + 1, List.map (fun (c, v) -> ((8 * (c + 1)), v)) entries))
          recs)

(* property: crash at ANY memory event during a sequence of appends and
   commits — the scan must always yield a prefix of the committed records,
   never garbage, never a record out of order *)
(* tentative (group-commit) records: a poisoned-checksum commit is
   invisible to recovery under any persist outcome until sealed *)

let tentative_round a r =
  Log_arena.begin_record a;
  ignore (Log_arena.add_entry a ~target:(1000 + (r * 8)) ~value:(r * 11));
  Log_arena.commit_record a ~tentative:true ~timestamp:r

let test_arena_tentative_invisible_until_sealed () =
  let pm, _, a = mk_arena () in
  tentative_round a 1;
  tentative_round a 2;
  Alcotest.(check int) "two pending" 2 (Log_arena.tentative_records a);
  (* worst case for the invisibility claim: every dirty word drains *)
  Pmem.crash_with pm ~persist:(fun _ -> true);
  Alcotest.(check (list (pair int (list (pair int int)))))
    "unsealed records are invisible even fully persisted" [] (scan_all pm)

let test_arena_seal_makes_batch_durable () =
  let pm, _, a = mk_arena () in
  tentative_round a 1;
  tentative_round a 2;
  Alcotest.(check int) "seals both" 2 (Log_arena.seal_tentative a);
  Alcotest.(check int) "none pending" 0 (Log_arena.tentative_records a);
  (* worst case for the durability claim: nothing further drains — the
     seal's own flush run + fence must already have persisted the batch *)
  Pmem.crash_with pm ~persist:(fun _ -> false);
  Alcotest.(check (list (pair int (list (pair int int)))))
    "sealed batch survives a drain-nothing crash"
    [ (1, [ (1000 + 8, 11) ]); (2, [ (1000 + 16, 22) ]) ]
    (scan_all pm)

let test_arena_seal_crash_yields_prefix () =
  (* dry-run the seal to size its event window, then crash at every
     event inside it: recovery must see a timestamp-prefix of the batch *)
  let seal_events =
    let pm, _, a = mk_arena () in
    for r = 1 to 3 do tentative_round a r done;
    let e0 = Pmem.events pm in
    ignore (Log_arena.seal_tentative a);
    Pmem.events pm - e0
  in
  Alcotest.(check bool) "seal does some work" true (seal_events > 0);
  for fuse = 1 to seal_events do
    let pm, _, a = mk_arena () in
    for r = 1 to 3 do tentative_round a r done;
    Pmem.set_fuse pm (Some fuse);
    (try ignore (Log_arena.seal_tentative a) with Pmem.Crash -> ());
    Pmem.crash_with pm ~persist:(fun _ -> true);
    let seen = List.map fst (scan_all pm) in
    let is_prefix = seen = List.init (List.length seen) (fun i -> i + 1) in
    if not is_prefix then
      Alcotest.failf "fuse %d: recovered %a, not a batch prefix" fuse
        Fmt.(Dump.list int)
        seen
  done

let prop_crash_prefix =
  QCheck.Test.make ~name:"any crash yields a committed-record prefix"
    ~count:120
    QCheck.(pair (int_range 1 2000) (int_range 0 10))
    (fun (fuse, leak) ->
      let pm =
        Pmem.create
          {
            Config.small with
            crash_word_persist_prob = float_of_int leak /. 10.0;
          }
      in
      let heap = Heap.create pm in
      let a = Log_arena.create heap ~head_slot ~block_bytes:bb in
      let committed = ref 0 in
      Pmem.set_fuse pm (Some fuse);
      (try
         for r = 1 to 40 do
           Log_arena.begin_record a;
           for i = 0 to 5 do
             ignore
               (Log_arena.add_entry a ~target:(8 * ((r * 7 mod 11) + i + 1))
                  ~value:((r * 100) + i))
           done;
           Log_arena.commit_record a ~timestamp:r;
           committed := r
         done;
         Pmem.set_fuse pm None
       with Pmem.Crash -> ());
      Pmem.crash pm;
      let seen = ref [] in
      let _ =
        Log_arena.recover_scan pm ~head_slot ~block_bytes:bb
          ~f:(fun ~ts _ -> seen := ts :: !seen)
      in
      let seen = List.rev !seen in
      (* must be exactly 1..k for some k in {committed, committed+1} *)
      let expected_prefix k = List.init k (fun i -> i + 1) in
      seen = expected_prefix !committed
      || seen = expected_prefix (min 40 (!committed + 1)))

(* tsc: the shared commit-timestamp counter must hand out globally
   unique, strictly positive timestamps even when several domains pull
   from it concurrently — recovery's total order depends on it *)

let test_tsc_multi_domain_unique () =
  let tsc = Tsc.create () in
  let domains = 4 and per_domain = 10_000 in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            Array.init per_domain (fun _ -> Tsc.next tsc)))
  in
  let drawn = Array.map Domain.join workers in
  let seen = Hashtbl.create (domains * per_domain) in
  Array.iter
    (fun batch ->
      (* within one domain the draws are strictly increasing *)
      Array.iteri
        (fun i ts ->
          if i > 0 then
            Alcotest.(check bool) "monotone within a domain" true
              (ts > batch.(i - 1));
          Alcotest.(check bool) "timestamp positive" true (ts >= 1);
          if Hashtbl.mem seen ts then
            Alcotest.failf "timestamp %d drawn twice" ts;
          Hashtbl.add seen ts ())
        batch)
    drawn;
  Alcotest.(check int) "every draw distinct" (domains * per_domain)
    (Hashtbl.length seen);
  Alcotest.(check int) "no timestamps lost"
    ((domains * per_domain) + 1)
    (Tsc.peek tsc)

let test_tsc_restart_above () =
  let tsc = Tsc.create () in
  for _ = 1 to 5 do
    ignore (Tsc.next tsc)
  done;
  Tsc.restart_above tsc 100;
  Alcotest.(check int) "restart jumps above" 101 (Tsc.peek tsc);
  (* never moves backwards *)
  Tsc.restart_above tsc 3;
  Alcotest.(check int) "restart below is a no-op" 101 (Tsc.peek tsc)

let () =
  Alcotest.run "txn"
    [
      ( "tsc",
        [
          Alcotest.test_case "multi-domain draws unique" `Quick
            test_tsc_multi_domain_unique;
          Alcotest.test_case "restart_above monotone" `Quick
            test_tsc_restart_above;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "known vector" `Quick test_crc_known;
          Alcotest.test_case "word-fold oracle" `Quick
            test_crc_word_fold_oracle;
          QCheck_alcotest.to_alcotest prop_crc_word_fold_oracle;
          QCheck_alcotest.to_alcotest prop_crc_detects_flip;
        ] );
      ( "write set",
        [
          Alcotest.test_case "first/order semantics" `Quick
            test_write_set_first_and_order;
        ] );
      ( "log arena",
        [
          Alcotest.test_case "commit and scan" `Quick
            test_arena_commit_and_scan;
          Alcotest.test_case "torn record dropped" `Quick
            test_arena_torn_record_dropped;
          Alcotest.test_case "torn record dropped (leaky crash)" `Quick
            test_arena_torn_record_dropped_even_if_leaked;
          Alcotest.test_case "record spans blocks" `Quick
            test_arena_record_spans_blocks;
          Alcotest.test_case "freshen entry in place" `Quick
            test_arena_freshen_entry;
          Alcotest.test_case "compact keeps freshest" `Quick
            test_arena_compact_keeps_freshest;
          Alcotest.test_case "append after compact" `Quick
            test_arena_append_after_compact;
          Alcotest.test_case "attach resumes" `Quick test_arena_attach_resumes;
          Alcotest.test_case "compaction crash-atomic" `Slow
            test_compact_is_crash_atomic;
          Alcotest.test_case "compact preserves timestamps" `Quick
            test_compact_preserves_timestamps;
          Alcotest.test_case "recover_collect last-writer-wins" `Quick
            test_recover_collect_last_writer_wins;
          Alcotest.test_case "compact_indexed equals scan compact" `Quick
            test_compact_indexed_equals_scan_compact;
          Alcotest.test_case "compact_indexed keeps suffix" `Quick
            test_compact_indexed_prefix_keeps_suffix;
          Alcotest.test_case "compact_indexed drops stale prefix" `Quick
            test_compact_indexed_fully_stale_prefix_drops;
          Alcotest.test_case "compact_indexed crash-atomic" `Slow
            test_compact_indexed_crash_atomic;
          Alcotest.test_case "attach rebuilds accounting" `Quick
            test_attach_rebuilds_accounting;
          Alcotest.test_case "reset crash-atomic" `Quick
            test_reset_crash_atomic;
          Alcotest.test_case "page record roundtrip" `Quick
            test_page_record_roundtrip;
          Alcotest.test_case "page record chains" `Quick
            test_page_record_chains_when_full;
          Alcotest.test_case "seal + drop prefix" `Quick
            test_seal_and_drop_prefix;
          Alcotest.test_case "abandon record" `Quick test_abandon_record;
          Alcotest.test_case "tentative invisible until sealed" `Quick
            test_arena_tentative_invisible_until_sealed;
          Alcotest.test_case "seal makes batch durable" `Quick
            test_arena_seal_makes_batch_durable;
          Alcotest.test_case "seal crash yields prefix" `Quick
            test_arena_seal_crash_yields_prefix;
          Alcotest.test_case "attach sentinel survives second crash" `Slow
            test_attach_sentinel_second_crash;
          QCheck_alcotest.to_alcotest prop_arena_roundtrip;
          QCheck_alcotest.to_alcotest prop_crash_prefix;
        ] );
    ]
