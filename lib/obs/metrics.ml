type counter = { mutable n : int }
type gauge = { mutable g : float }

type item = C of counter | G of gauge | H of Hist.t

(* One registry per domain: subsystems bump their metrics with zero
   cross-domain coordination, and the harness merges worker registries
   into the parent's with {!export}/{!absorb} when a domain pool joins
   (see [Specpmt.Par]). *)
let key : (string, item) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get key

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let get name mk match_item =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some item -> (
      match match_item item with
      | Some v -> v
      | None ->
          Fmt.invalid_arg "Metrics: %S already registered as a %s" name
            (kind_name item))
  | None ->
      let item, v = mk () in
      Hashtbl.replace registry name item;
      v

let counter name =
  get name
    (fun () ->
      let c = { n = 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let counter_value c = c.n

let gauge name =
  get name
    (fun () ->
      let g = { g = 0.0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let histogram name =
  get name
    (fun () ->
      let h = Hist.create () in
      (H h, h))
    (function H h -> Some h | _ -> None)

let reset_all () =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> c.n <- 0
      | G g -> g.g <- 0.0
      | H h -> Hist.reset h)
    (registry ())

type exported =
  | Counter of int
  | Gauge of float
  | Histogram of Hist.snapshot

type export = (string * exported) list

let export () =
  let items = ref [] in
  Hashtbl.iter
    (fun name item ->
      let e =
        match item with
        | C c -> if c.n = 0 then None else Some (Counter c.n)
        | G g -> if g.g = 0.0 then None else Some (Gauge g.g)
        | H h ->
            let s = Hist.snapshot h in
            if s.Hist.count = 0 then None else Some (Histogram s)
      in
      match e with Some e -> items := (name, e) :: !items | None -> ())
    (registry ());
  List.sort (fun (a, _) (b, _) -> compare a b) !items

let absorb (e : export) =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> add (counter name) n
      | Gauge g -> set_gauge (gauge name) g
      | Histogram s -> Hist.absorb (histogram name) s)
    e

let dump () =
  (* Zero counters/gauges and empty histograms are skipped: they are
     names left registered by {e earlier} runs on this domain, zeroed by
     [reset_all] — including them would make a measurement's dump depend
     on what happened to run before it on the same domain, which breaks
     byte-identical reports between serial and domain-pooled runs. *)
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name item ->
      match item with
      | C c -> if c.n <> 0 then cs := (name, Json.Int c.n) :: !cs
      | G g -> if g.g <> 0.0 then gs := (name, Json.Float g.g) :: !gs
      | H h ->
          let s = Hist.snapshot h in
          if s.Hist.count <> 0 then hs := (name, Hist.to_json s) :: !hs)
    (registry ());
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) !l in
  Json.Obj
    [
      ("counters", Json.Obj (sorted cs));
      ("gauges", Json.Obj (sorted gs));
      ("histograms", Json.Obj (sorted hs));
    ]
