examples/paper_figure4.mli:
