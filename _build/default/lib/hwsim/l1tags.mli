(** L1 cache-line tag bits of hardware SpecPMT (paper Figure 9).

    Each L1 line gains two flags: [PBit] — the line needs persistence on
    eviction or commit (set when a line of a {e hot} page is updated, which
    is how speculatively-logged data eventually drains to the media) — and
    [LogBit] — the line has been, or must be at commit, logged (undo for
    cold pages, speculative for hot ones).  The model tracks a fixed number
    of line tags with FIFO replacement; evicting a transaction-dirty line
    calls back into the scheme, which must speculatively log it {e before}
    the eviction ("allows an L1 cache line updated in the transaction to
    overflow to L2 as long as the hardware speculatively logs the cache
    line prior to the eviction", Section 5.2).

    On commit the hardware scans the tags for transaction-dirty lines,
    clears every [LogBit] and keeps the [PBit]s (Section 5.1). *)

open Specpmt_pmem

type entry = {
  line : Addr.t;  (** line base address *)
  mutable pbit : bool;
  mutable logbit : bool;
  mutable tx_dirty : bool;  (** updated by the open transaction *)
}

type t

val create : lines:int -> on_tx_evict:(entry -> unit) -> t
(** [lines] is the L1 capacity in line tags; [on_tx_evict] fires when a
    transaction-dirty line tag is evicted mid-transaction. *)

val touch : t -> line:Addr.t -> entry
(** Look a line tag up, inserting (all-clear) on a miss with FIFO
    eviction. *)

val find : t -> line:Addr.t -> entry option

val scan_tx_dirty : t -> (entry -> unit) -> unit
(** The commit-time L1 scan: visit every transaction-dirty resident line. *)

val end_tx : t -> unit
(** Commit/abort epilogue: clear every [LogBit] and [tx_dirty], keep the
    [PBit]s. *)

val resident : t -> int
val tx_evictions : t -> int
