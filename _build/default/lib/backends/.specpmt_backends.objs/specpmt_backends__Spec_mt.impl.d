lib/backends/spec_mt.ml: Array Ctx Hashtbl Heap List Log_arena Pmem Slots Spec_soft Specpmt_pmalloc Specpmt_pmem Specpmt_txn Tsc
