(** Logical timestamp counter, the stand-in for [rdtscp] (Section 4.1).

    Recovery only needs a total order over transaction commits, so a
    monotone counter shared by all simulated threads of a device is
    sufficient.  Shard-per-domain execution (PR 6) shares one counter
    across OCaml domains, so the counter is an [Atomic.t]: a plain
    mutable read-increment-write would let two domains mint the same
    timestamp, and coalesced recovery's last-writer-wins merge breaks
    down the moment timestamps are not globally unique. *)

type t = { now : int Atomic.t }

let create () = { now = Atomic.make 1 }

let next t = Atomic.fetch_and_add t.now 1

let peek t = Atomic.get t.now

(** After a crash, restart the clock strictly above every timestamp that
    may live in persistent logs.  CAS loop: concurrent [next] calls must
    not be lost, and a racing higher restart must win. *)
let restart_above t v =
  let rec go () =
    let cur = Atomic.get t.now in
    if cur >= v + 1 then ()
    else if Atomic.compare_and_set t.now cur (v + 1) then ()
    else go ()
  in
  go ()
