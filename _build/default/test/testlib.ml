(** Shared helpers for the test suites: pool construction, the random
    transactional-program generator, and the crash-injection harness used
    by the atomic-durability property tests. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

let mk_pool ?(seed = 7) ?(cfg = Config.small) () =
  let pm = Pmem.create ~seed cfg in
  let heap = Heap.create pm in
  (pm, heap)

(** A random transactional program over [cells] 8-byte cells: a list of
    transactions, each a list of [(cell index, new value)] writes. *)
type program = (int * int) list list

let gen_program ~cells ~txs ~max_writes rand : program =
  List.init txs (fun _ ->
      let n = 1 + Random.State.int rand max_writes in
      List.init n (fun _ ->
          (Random.State.int rand cells, 1 + Random.State.int rand 1_000_000)))

(** Pure reference: state after each whole transaction. [ref_states.(k)] is
    the array after the first [k] transactions. *)
let reference ~cells (p : program) =
  let state = Array.make cells 0 in
  let states = Array.make (List.length p + 1) [||] in
  states.(0) <- Array.copy state;
  List.iteri
    (fun i tx ->
      List.iter (fun (c, v) -> state.(c) <- v) tx;
      states.(i + 1) <- Array.copy state)
    p;
  states

(** Outcome of a crash-injected run. *)
type crash_outcome = {
  committed : int;  (** transactions whose [run_tx] returned *)
  crashed : bool;
}

(** Allocate the cell array, adopt it with one initial transaction (the
    snapshot of Section 4.3.2 — every backend handles it as a plain
    transaction), then run [program] with a crash fuse of [fuse] memory
    events armed after the initialisation.  Returns the cell-array base
    address and the outcome. *)
let run_with_crash pm heap (backend : Ctx.backend) ~cells ~fuse program =
  let base = Heap.alloc heap (cells * 8) in
  backend.Ctx.run_tx (fun ctx ->
      for i = 0 to cells - 1 do
        ctx.Ctx.write (base + (i * 8)) 0
      done);
  Pmem.set_fuse pm fuse;
  let committed = ref 0 in
  let crashed =
    try
      List.iter
        (fun tx ->
          backend.Ctx.run_tx (fun ctx ->
              List.iter
                (fun (c, v) -> ctx.Ctx.write (base + (c * 8)) v)
                tx);
          incr committed)
        program;
      Pmem.set_fuse pm None;
      false
    with Pmem.Crash -> true
  in
  (base, { committed = !committed; crashed })

let read_cells pm base cells =
  Array.init cells (fun i -> Pmem.peek_volatile_int pm (base + (i * 8)))

let array_eq a b = a = b

(** Check atomic durability: the recovered state must be exactly the
    reference state after [committed] or [committed + 1] transactions (the
    +1 covers a crash after the commit point but before control returned;
    the initial adoption transaction is state 0). *)
let check_recovered ~states ~outcome recovered =
  let k = outcome.committed in
  array_eq recovered states.(k)
  || (k + 1 < Array.length states && array_eq recovered states.(k + 1))

let pp_cells ppf a =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ";") int) a
