lib/stamp/rng.ml:
