(** The no-log ideal (paper Section 7.1.3): persist the write set at
    commit, log nothing.  The performance ceiling for in-place-update
    persistent transactions — and not crash consistent. *)

open Specpmt_pmalloc
open Specpmt_txn

val create : Heap.t -> Ctx.backend
