lib/backends/spec_mt.mli: Ctx Heap Spec_soft Specpmt_pmalloc Specpmt_txn
