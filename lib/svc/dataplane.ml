open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_backends
module Hist = Specpmt_obs.Hist
module Json = Specpmt_obs.Json
module Par = Specpmt_par.Par

(* The shard-per-domain data plane: a router domain forms batches from a
   deterministic op stream and hands them over SPSC rings to worker
   domains, each of which owns a group of shards — their Spec_soft
   runtimes, group-commit batchers and one incoherent Pmem view of the
   shared media.

   Ownership discipline (the whole correctness argument):

   - The media image is partitioned by cache line.  Each shard owns its
     key cells (a line-aligned region), its log blocks (a carved
     sub-heap region) and its log-head root slot (line-strided); a
     worker domain touches only lines of its own shards, through its
     own view.  The parent view's cache is detached (written back and
     emptied) before the views fork, and each view is detached at clean
     join, so no line is ever cached by two views with one of them
     dirty.
   - Admission, batch formation and ack accounting live on the router
     domain only.  Batch composition is positional in the stream —
     flush at [batch_max], partials at stream end — so the set of
     batches per shard is a pure function of (stream, config), never of
     domain count or timing: the invariant section of the report is
     byte-identical from 1 domain to N.
   - The shared Tsc is atomic; it is the only mutable state two worker
     domains both touch.

   Crash story: worker caches model per-core volatile caches.  A halted
   run ([~halt_after_batches]) stops the router mid-stream and the
   workers exit WITHOUT detaching — then {!crash} discards every view
   cache, losing exactly the unflushed in-place updates, and
   {!recover} replays the sealed log records against the single shared
   image through the parent view, exactly as Spec_mt.recover would
   after a real power failure. *)

type config = {
  shards : int;
  domains : int;  (** worker domains; shard [s] runs on domain [s mod domains] *)
  batch_max : int;
  depth : int;  (** per-shard inflight bound; must be >= batch_max *)
  keys : int;
  log_region_bytes : int;  (** per-shard carved log region *)
}

let default_log_region_bytes = 1 lsl 21

(* router -> worker: one batch of (key, op, stream index) for one shard;
   Stop ends the worker, detaching its view's cache only on clean
   shutdown *)
type msg =
  | Batch of { b_shard : int; b_reqs : (int * Service.op * int) array }
  | Stop of { detach : bool }

(* worker -> router: executed batch — stream indices and values in
   batch order, as parallel int arrays (no per-op tuple boxing) *)
type comp = { cp_shard : int; cp_idx : int array; cp_vals : int array }

type t = {
  cfg : config;
  params : Spec_soft.params;
  pm : Pmem.t;  (* parent view: recovery and post-join audits only *)
  heap : Heap.t;
  views : Pmem.t array;  (* one per worker domain *)
  pool : Spec_mt.t;
  gcs : Group_commit.t array;  (* one per shard, driven by its domain *)
  adm : (int * Service.op * int) Admission.t array;  (* router-side *)
  addr_of_key : Addr.t array;
  owner : int array;  (* key -> shard *)
  owned_keys : int array array;  (* shard -> its keys, ascending *)
  shadow : bool;  (* DRAM mirrors on the ordered index *)
  mutable oidx : Oindex.t;  (* per-shard ordered index; rebuilt on recover *)
  req_rings : msg Spsc.t array;  (* router -> domain *)
  ack_rings : comp Spsc.t array;  (* domain -> router *)
}

let shard_of_key t k = t.owner.(k)
let domain_of_shard t s = s mod t.cfg.domains

(* Clamp a footprint-triggered reclaim so compaction fires well inside
   the carved region: the splice allocates the compacted chain before
   freeing the old one, so the trigger must leave headroom. *)
let clamp_reclaim params ~log_region_bytes =
  match params.Spec_soft.reclaim with
  | Spec_soft.Threshold n ->
      {
        params with
        Spec_soft.reclaim = Spec_soft.Threshold (min n (log_region_bytes / 4));
      }
  | Spec_soft.Adaptive _ -> params

let create ?(params = Spec_soft.default_params) ?(shadow = true) t_heap cfg =
  if cfg.shards < 1 || cfg.shards > Spec_mt.max_threads then
    Fmt.invalid_arg "Dataplane.create: 1-%d shards" Spec_mt.max_threads;
  if cfg.domains < 1 || cfg.domains > cfg.shards then
    invalid_arg "Dataplane.create: 1..shards domains";
  if cfg.batch_max < 1 then invalid_arg "Dataplane.create: batch_max < 1";
  if cfg.depth < cfg.batch_max then
    invalid_arg "Dataplane.create: depth < batch_max";
  if cfg.keys < 1 then invalid_arg "Dataplane.create: keys < 1";
  if cfg.log_region_bytes < 1 lsl 16 then
    invalid_arg "Dataplane.create: log_region_bytes < 64 KiB";
  let params = clamp_reclaim params ~log_region_bytes:cfg.log_region_bytes in
  let pm = Heap.pmem t_heap in
  let owner = Array.init cfg.keys (Service.route ~shards:cfg.shards) in
  (* per-shard ownership tables, built once: ascending owned-key rows
     (formatting + adoption iterate them) *)
  let owned_rev = Array.make cfg.shards [] in
  for k = cfg.keys - 1 downto 0 do
    owned_rev.(owner.(k)) <- k :: owned_rev.(owner.(k))
  done;
  let owned_keys = Array.map Array.of_list owned_rev in
  (* Parent-side formatting: per-shard line-aligned key regions (packed
     cells, so a shard's keys share lines only with each other) and
     per-shard carved log regions. *)
  let addr_of_key = Array.make cfg.keys 0 in
  Array.iter
    (fun row ->
      match row with
      | [||] -> ()
      | row ->
          let n = Array.length row in
          let raw = Heap.alloc t_heap ((n * 8) + Addr.line_size) in
          let base = Addr.align_up raw Addr.line_size in
          Array.iteri (fun i k -> addr_of_key.(k) <- base + (i * 8)) row)
    owned_keys;
  let regions =
    Array.init cfg.shards (fun _ ->
        Heap.carve_region t_heap ~bytes:cfg.log_region_bytes)
  in
  (* Ownership handoff: everything the parent cached while formatting is
     written back before the per-domain views fork. *)
  Pmem.detach_cache pm;
  let views =
    Array.init cfg.domains (fun d -> Pmem.fork_view ~seed:(47 + d) pm)
  in
  let sub_heaps =
    Array.init cfg.shards (fun s ->
        Heap.of_region views.(s mod cfg.domains) regions.(s))
  in
  let pool =
    Spec_mt.create ~params ~runtime_heaps:sub_heaps t_heap
      ~threads:cfg.shards
  in
  let gcs =
    Array.init cfg.shards (fun s ->
        Group_commit.create ~backend:(Spec_mt.thread pool s)
          ~rt:(Spec_mt.runtime pool s))
  in
  (* Adoption (Section 4.3.2), exactly as the serial service: one
     committed transaction per shard writes 0 to every owned key, so a
     cell is always logged before its first client write.  Runs on the
     router through each shard's view — before any worker spawns, so
     the spawn provides the happens-before edge. *)
  Array.iteri
    (fun s row ->
      match row with
      | [||] -> ()
      | row ->
          (Spec_mt.thread pool s).Specpmt_txn.Ctx.run_tx (fun ctx ->
              Array.iter
                (fun k -> ctx.Specpmt_txn.Ctx.write addr_of_key.(k) 0)
                row))
    owned_keys;
  (* The ordered index: per-shard trees allocate from the carved
     sub-heaps through the shards' views (line-disjoint like the key
     cells), the directory and root slot go through the parent — whose
     cache must be detached again before any worker forks, since the
     directory write and its heap allocation dirtied parent lines. *)
  let oidx =
    Oindex.create ~shadow t_heap ~pool ~shards:cfg.shards ~keys:cfg.keys
  in
  Pmem.detach_cache pm;
  let spd = (cfg.shards + cfg.domains - 1) / cfg.domains in
  let ring_cap = (spd * cfg.depth) + 8 in
  {
    cfg;
    params;
    pm;
    heap = t_heap;
    views;
    pool;
    gcs;
    adm = Array.init cfg.shards (fun _ -> Admission.create ~depth:cfg.depth);
    addr_of_key;
    owner;
    owned_keys;
    shadow;
    oidx;
    req_rings =
      Array.init cfg.domains (fun _ ->
          Spsc.create ~dummy:(Stop { detach = false }) ~capacity:ring_cap);
    ack_rings =
      Array.init cfg.domains (fun _ ->
          Spsc.create
            ~dummy:{ cp_shard = -1; cp_idx = [||]; cp_vals = [||] }
            ~capacity:ring_cap);
  }

let config t = t.cfg

(* Unmetered post-join/post-recovery read: the parent cache is empty
   (detached) outside a run, so this observes the merged media image. *)
let peek t k =
  if k < 0 || k >= t.cfg.keys then invalid_arg "Dataplane.peek: bad key";
  Pmem.peek_volatile_int t.pm t.addr_of_key.(k)

let table_crc t =
  let crc = ref 0 in
  for k = 0 to t.cfg.keys - 1 do
    crc := ((!crc * 31) + peek t k) land max_int
  done;
  !crc

(* ---- reports ---- *)

type shard_report = {
  d_shard : int;
  d_domain : int;
  d_ops : int;  (** acked by the router *)
  d_batches : int;
  d_sealed : int;
}

type report = {
  domains : int;
  halted : bool;  (** crash drill: the router stopped mid-stream *)
  (* invariant across domain counts *)
  total_ops : int;
  reads : int;
  writes : int;
  rmws : int;
  scans : int;
  reads_sum : int;  (** checksum over read/rmw/scan results *)
  table_crc : int;  (** final key-table fingerprint (clean runs only) *)
  fences : int;
  batches : int;
  sealed_records : int;
  per_shard : shard_report list;
  (* measured (wall clock, host-dependent) *)
  wall_s : float;
  wall_ops_per_sec : float;
  wall_latency : Hist.snapshot;  (** wall ns, admission to ack *)
  router_stalls : int;
  (* modelled (simulated device time, per-domain clocks) *)
  sim_ns_max : float;  (** modelled makespan: slowest domain's clock *)
  sim_ns_sum : float;
  sim_bg_ns : float;
  pm_write_lines : int;
  pm_read_lines : int;
}

exception Halted

let run ?(halt_after_batches = max_int) ?(on_ack = fun ~idx:_ ~value:_ -> ())
    t stream =
  let cfg = t.cfg in
  let n_ops = Array.length stream in
  Array.iter
    (fun (k, op) ->
      if k < 0 || k >= cfg.keys then invalid_arg "Dataplane.run: bad key";
      match op with
      | Service.Scan len when len < 1 ->
          invalid_arg "Dataplane.run: scan length < 1"
      | _ -> ())
    stream;
  let before = Array.map (fun v -> Stats.copy (Pmem.stats v)) t.views in
  let worker d () =
    (* one transaction closure per worker, reused for every op: the
       per-op state flows through the captured cells, so the batch loop
       allocates only the two completion arrays the router needs anyway *)
    let cur_key = ref 0
    and cur_shard = ref 0
    and cur_op = ref Service.Read
    and cur_res = ref 0 in
    let job ctx =
      match !cur_op with
      | Service.Write v ->
          let a = t.addr_of_key.(!cur_key) in
          (* first client write indexes the key in the shard's tree —
             same transaction, and the tree nodes live in the shard's
             carved sub-heap, so the worker stays on its own lines *)
          Oindex.ensure ctx t.oidx ~shard:!cur_shard ~key:!cur_key ~addr:a;
          ctx.Specpmt_txn.Ctx.write a v;
          cur_res := v
      | Service.Read ->
          cur_res := ctx.Specpmt_txn.Ctx.read t.addr_of_key.(!cur_key)
      | Service.Rmw d ->
          (* one transaction: read + dependent write under one record *)
          let a = t.addr_of_key.(!cur_key) in
          Oindex.ensure ctx t.oidx ~shard:!cur_shard ~key:!cur_key ~addr:a;
          let v = ctx.Specpmt_txn.Ctx.read a + d in
          ctx.Specpmt_txn.Ctx.write a v;
          cur_res := v
      | Service.Scan len ->
          (* ordered scan over this shard's Pbtree (same semantics as
             the serial service): only this shard's lines are touched *)
          cur_res :=
            Oindex.scan ctx t.oidx ~shard:!cur_shard ~anchor:!cur_key ~len
    in
    let running = ref true in
    while !running do
      match Spsc.try_pop t.req_rings.(d) with
      | Some (Batch { b_shard; b_reqs }) ->
          let gc = t.gcs.(b_shard) in
          let m = Array.length b_reqs in
          let cp_idx = Array.make m 0 and cp_vals = Array.make m 0 in
          Group_commit.batch_begin gc;
          for i = 0 to m - 1 do
            let key, op, idx = b_reqs.(i) in
            cur_key := key;
            cur_shard := b_shard;
            cur_op := op;
            Group_commit.exec gc job;
            cp_idx.(i) <- idx;
            cp_vals.(i) <- !cur_res
          done;
          Group_commit.batch_end gc ~n:m;
          let comp = { cp_shard = b_shard; cp_idx; cp_vals } in
          (* sized so this never blocks while the router is halted: the
             admission depth bounds outstanding completions per shard *)
          while not (Spsc.try_push t.ack_rings.(d) comp) do
            Domain.cpu_relax ()
          done
      | Some (Stop { detach }) ->
          if detach then begin
            (* clean stop: flush this domain's shadow-mirror counter
               deltas into its domain-local registry so they ride the
               normal export/absorb merge at join *)
            for s = 0 to cfg.shards - 1 do
              if domain_of_shard t s = d then
                Oindex.publish_shadow t.oidx ~shard:s
            done;
            Pmem.detach_cache t.views.(d)
          end;
          running := false
      | None -> Domain.cpu_relax ()
    done
  in
  let wall0 = Unix.gettimeofday () in
  let workers = Array.init cfg.domains (fun d -> Par.spawn (worker d)) in
  (* ---- router ---- *)
  let enq_wall = Array.make (max 1 n_ops) 0.0 in
  let lat = Hist.create () in
  let acked = Array.make cfg.shards 0 in
  let reads = ref 0 and writes = ref 0 and reads_sum = ref 0 in
  let rmws = ref 0 and scans = ref 0 in
  let stalls = ref 0 in
  let batches_sent = ref 0 in
  let drain_acks () =
    let got = ref false in
    Array.iter
      (fun ring ->
        match Spsc.try_pop ring with
        | None -> ()
        | Some comp ->
            got := true;
            let m = Array.length comp.cp_idx in
            Admission.ack t.adm.(comp.cp_shard) m;
            acked.(comp.cp_shard) <- acked.(comp.cp_shard) + m;
            let now = Unix.gettimeofday () in
            for i = 0 to m - 1 do
              let idx = comp.cp_idx.(i) and value = comp.cp_vals.(i) in
              (match snd stream.(idx) with
              | Service.Read ->
                  incr reads;
                  reads_sum := (!reads_sum + value) land max_int
              | Service.Write _ -> incr writes
              | Service.Rmw _ ->
                  (* the new value is read-dependent: checksum it too *)
                  incr rmws;
                  reads_sum := (!reads_sum + value) land max_int
              | Service.Scan _ ->
                  incr scans;
                  reads_sum := (!reads_sum + value) land max_int);
              on_ack ~idx ~value;
              Hist.observe lat (int_of_float ((now -. enq_wall.(idx)) *. 1e9))
            done)
      t.ack_rings;
    !got
  in
  let send s reqs =
    let msg = Batch { b_shard = s; b_reqs = Array.of_list reqs } in
    let ring = t.req_rings.(domain_of_shard t s) in
    while not (Spsc.try_push ring msg) do
      if not (drain_acks ()) then Domain.cpu_relax ()
    done;
    incr batches_sent;
    if !batches_sent >= halt_after_batches then raise Halted
  in
  let flush s =
    match Admission.take_up_to t.adm.(s) cfg.batch_max with
    | [] -> ()
    | reqs -> send s reqs
  in
  let halted =
    match
      Array.iteri
        (fun idx (key, op) ->
          let s = t.owner.(key) in
          (* closed-loop backpressure: wait for shard capacity *)
          let stalled = ref false in
          while Admission.inflight t.adm.(s) >= cfg.depth do
            stalled := true;
            if not (drain_acks ()) then Domain.cpu_relax ()
          done;
          if !stalled then incr stalls;
          enq_wall.(idx) <- Unix.gettimeofday ();
          (match Admission.offer t.adm.(s) (key, op, idx) with
          | Admission.Accepted -> ()
          | Admission.Rejected _ -> assert false);
          if Admission.queued t.adm.(s) >= cfg.batch_max then flush s)
        stream;
      (* partial batches, deterministically in shard order *)
      for s = 0 to cfg.shards - 1 do
        flush s
      done
    with
    | () ->
        (* clean shutdown: wait out every inflight op, then stop the
           workers with a cache detach so the parent sees merged media *)
        let inflight () =
          Array.fold_left (fun n a -> n + Admission.inflight a) 0 t.adm
        in
        while inflight () > 0 do
          if not (drain_acks ()) then Domain.cpu_relax ()
        done;
        Array.iter
          (fun ring ->
            while not (Spsc.try_push ring (Stop { detach = true })) do
              Domain.cpu_relax ()
            done)
          t.req_rings;
        false
    | exception Halted ->
        (* crash drill: stop immediately — no partial flush, no ack
           drain; workers exit without detaching, leaving their unflushed
           in-place updates to die with the caches *)
        Array.iter
          (fun ring ->
            while not (Spsc.try_push ring (Stop { detach = false })) do
              Domain.cpu_relax ()
            done)
          t.req_rings;
        true
  in
  ignore (Par.join_all workers);
  let wall_s = Unix.gettimeofday () -. wall0 in
  let diffs =
    Array.mapi (fun i v -> Stats.diff before.(i) (Pmem.stats v)) t.views
  in
  let total_ops = Array.fold_left ( + ) 0 acked in
  let per_shard =
    List.init cfg.shards (fun s ->
        {
          d_shard = s;
          d_domain = domain_of_shard t s;
          d_ops = acked.(s);
          d_batches = Group_commit.batches t.gcs.(s);
          d_sealed = Group_commit.sealed_records t.gcs.(s);
        })
  in
  let fsum f = Array.fold_left (fun a d -> a +. f d) 0.0 diffs in
  let isum f = Array.fold_left (fun a d -> a + f d) 0 diffs in
  {
    domains = cfg.domains;
    halted;
    total_ops;
    reads = !reads;
    writes = !writes;
    rmws = !rmws;
    scans = !scans;
    reads_sum = !reads_sum;
    table_crc = (if halted then 0 else table_crc t);
    fences = isum (fun d -> d.Stats.fences);
    batches = List.fold_left (fun n s -> n + s.d_batches) 0 per_shard;
    sealed_records = List.fold_left (fun n s -> n + s.d_sealed) 0 per_shard;
    per_shard;
    wall_s;
    wall_ops_per_sec =
      (if wall_s > 0.0 then float_of_int total_ops /. wall_s else 0.0);
    wall_latency = Hist.snapshot lat;
    router_stalls = !stalls;
    sim_ns_max = Array.fold_left (fun a d -> Float.max a d.Stats.ns) 0.0 diffs;
    sim_ns_sum = fsum (fun d -> d.Stats.ns);
    sim_bg_ns = fsum (fun d -> d.Stats.bg_ns);
    pm_write_lines = isum (fun d -> d.Stats.pm_write_lines);
    pm_read_lines = isum (fun d -> d.Stats.pm_read_lines);
  }

(* ---- crash / recovery against the single shared image ---- *)

let crash t =
  (* every view's cache dies in place (the ring buffers and admission
     state die with the run); the parent cache is already empty *)
  Array.iter Pmem.discard_cache t.views;
  Pmem.crash_with t.pm ~persist:(fun _ -> false)

let recover t =
  (* the pool recovers through the parent view over the merged media:
     root heap, per-shard sub-heaps, log scan + coalesced replay,
     reattach of every runtime through its own (now empty) view *)
  Spec_mt.recover t.pool;
  Array.iter Admission.clear t.adm;
  Array.iter Group_commit.reset t.gcs;
  (* a halted run leaves undrained completions (and, in principle,
     unconsumed stops) in the rings; they died with the crash *)
  let drain ring = while Spsc.try_pop ring <> None do () done in
  Array.iter drain t.ack_rings;
  Array.iter (fun r -> while Spsc.try_pop r <> None do () done) t.req_rings;
  (* rediscover the ordered index from root slot + directory over the
     replayed media: fresh tree handles, fresh populated bitmap, fresh
     mirrors through the shards' own views (all reads are unmetered
     peeks, so the parent cache stays clean) *)
  t.oidx <-
    Oindex.recover ~shadow:t.shadow ~pool:t.pool t.heap ~shards:t.cfg.shards
      ~keys:t.cfg.keys;
  (* the replayed cells sit clean in the parent cache: hand them back
     to the views before the next run dirties those lines *)
  Pmem.detach_cache t.pm

(* ---- json ---- *)

(* no [domain] here: shard->domain placement depends on the domain
   count, and per_shard sits in the invariant section — placement is
   reported under [measured] instead *)
let shard_to_json s =
  Json.Obj
    [
      ("shard", Json.Int s.d_shard);
      ("ops", Json.Int s.d_ops);
      ("batches", Json.Int s.d_batches);
      ("sealed_records", Json.Int s.d_sealed);
    ]

(* The three-way split is the contract: [invariant] must be
   byte-identical across domain counts (CI diffs it 1 vs N); [measured]
   is host wall clock; [modelled] is simulated device time, whose cache
   locality legitimately depends on the shard->domain packing. *)
let report_to_json cfg r =
  Json.Obj
    [
      ( "invariant",
        Json.Obj
          [
            ("shards", Json.Int cfg.shards);
            ("batch_max", Json.Int cfg.batch_max);
            ("depth", Json.Int cfg.depth);
            ("keys", Json.Int cfg.keys);
            ("halted", Json.Bool r.halted);
            ("total_ops", Json.Int r.total_ops);
            ("reads", Json.Int r.reads);
            ("writes", Json.Int r.writes);
            ("rmws", Json.Int r.rmws);
            ("scans", Json.Int r.scans);
            ("reads_sum", Json.Int r.reads_sum);
            ("table_crc", Json.Int r.table_crc);
            ("fences", Json.Int r.fences);
            ("batches", Json.Int r.batches);
            ("sealed_records", Json.Int r.sealed_records);
            ("per_shard", Json.List (List.map shard_to_json r.per_shard));
          ] );
      ( "measured",
        Json.Obj
          [
            ("domains", Json.Int r.domains);
            ( "placement",
              Json.List
                (List.map (fun s -> Json.Int s.d_domain) r.per_shard) );
            ("wall_s", Json.Float r.wall_s);
            ("wall_ops_per_sec", Json.Float r.wall_ops_per_sec);
            ("wall_latency_ns", Hist.to_json r.wall_latency);
            ("router_stalls", Json.Int r.router_stalls);
          ] );
      ( "modelled",
        Json.Obj
          [
            ("sim_ns_max", Json.Float r.sim_ns_max);
            ("sim_ns_sum", Json.Float r.sim_ns_sum);
            ("sim_bg_ns", Json.Float r.sim_bg_ns);
            ("sim_ops_per_sec_max",
             Json.Float
               (if r.sim_ns_max > 0.0 then
                  float_of_int r.total_ops /. (r.sim_ns_max /. 1e9)
                else 0.0));
            ("pm_write_lines", Json.Int r.pm_write_lines);
            ("pm_read_lines", Json.Int r.pm_read_lines);
          ] );
    ]

let pp ppf (cfg, r) =
  let q p = Hist.quantile r.wall_latency p in
  Fmt.pf ppf
    "dataplane: %d shards on %d domains, batch_max %d, depth %d, %d keys@\n"
    cfg.shards r.domains cfg.batch_max cfg.depth cfg.keys;
  Fmt.pf ppf
    "  %d ops (%d reads / %d writes / %d rmws / %d scans), %d batches, \
     %d sealed@\n"
    r.total_ops r.reads r.writes r.rmws r.scans r.batches r.sealed_records;
  Fmt.pf ppf
    "  measured: %.3f s wall, %.0f ops/s, latency us p50=%.1f p99=%.1f \
     (%d router stalls)@\n"
    r.wall_s r.wall_ops_per_sec
    (float_of_int (q 0.5) /. 1e3)
    (float_of_int (q 0.99) /. 1e3)
    r.router_stalls;
  Fmt.pf ppf
    "  modelled: %.0f ns makespan (max domain), %.0f ns total, %d fences@\n"
    r.sim_ns_max r.sim_ns_sum r.fences;
  List.iter
    (fun s ->
      Fmt.pf ppf "    shard %d (domain %d): %6d ops %5d batches %6d sealed@\n"
        s.d_shard s.d_domain s.d_ops s.d_batches s.d_sealed)
    r.per_shard
