(** Persistent chained hash table (int keys and values).

    Layout: header [nbuckets; count], bucket array of node pointers, nodes
    [key; value; next].  Pointer 0 is null (the pool's address 0 is the
    magic cell, never a node). *)

open Specpmt_pmem
open Specpmt_txn

type t = { header : Addr.t; buckets : Addr.t; nbuckets : int }

let node_bytes = 24

let create (ctx : Ctx.ctx) nbuckets =
  assert (nbuckets > 0);
  let header = ctx.Ctx.alloc 16 in
  let buckets = ctx.Ctx.alloc (nbuckets * 8) in
  ctx.Ctx.write header nbuckets;
  ctx.Ctx.write (header + 8) 0;
  for i = 0 to nbuckets - 1 do
    ctx.Ctx.write (buckets + (i * 8)) 0
  done;
  { header; buckets; nbuckets }

let length (ctx : Ctx.ctx) t = ctx.Ctx.read (t.header + 8)

let hash key =
  let h = key * 0x1E3779B97F4A7C15 in
  (h lsr 29) land max_int

let bucket_addr t key = t.buckets + (hash key mod t.nbuckets * 8)

let rec find_node (ctx : Ctx.ctx) node key =
  if node = 0 then 0
  else if ctx.Ctx.read node = key then node
  else find_node ctx (ctx.Ctx.read (node + 16)) key

let find (ctx : Ctx.ctx) t key =
  let node = find_node ctx (ctx.Ctx.read (bucket_addr t key)) key in
  if node = 0 then None else Some (ctx.Ctx.read (node + 8))

let mem ctx t key = find ctx t key <> None

(** Insert or overwrite; returns [true] when the key was absent. *)
let replace (ctx : Ctx.ctx) t key value =
  let b = bucket_addr t key in
  let head = ctx.Ctx.read b in
  let node = find_node ctx head key in
  if node <> 0 then begin
    ctx.Ctx.write (node + 8) value;
    false
  end
  else begin
    let n = ctx.Ctx.alloc node_bytes in
    ctx.Ctx.write n key;
    ctx.Ctx.write (n + 8) value;
    ctx.Ctx.write (n + 16) head;
    ctx.Ctx.write b n;
    ctx.Ctx.write (t.header + 8) (length ctx t + 1);
    true
  end

(** Insert only if absent; returns [true] when inserted. *)
let add_if_absent (ctx : Ctx.ctx) t key value =
  let b = bucket_addr t key in
  let head = ctx.Ctx.read b in
  if find_node ctx head key <> 0 then false
  else begin
    let n = ctx.Ctx.alloc node_bytes in
    ctx.Ctx.write n key;
    ctx.Ctx.write (n + 8) value;
    ctx.Ctx.write (n + 16) head;
    ctx.Ctx.write b n;
    ctx.Ctx.write (t.header + 8) (length ctx t + 1);
    true
  end

let remove (ctx : Ctx.ctx) t key =
  let b = bucket_addr t key in
  let rec go prev node =
    if node = 0 then false
    else if ctx.Ctx.read node = key then begin
      let next = ctx.Ctx.read (node + 16) in
      if prev = 0 then ctx.Ctx.write b next
      else ctx.Ctx.write (prev + 16) next;
      ctx.Ctx.free node;
      ctx.Ctx.write (t.header + 8) (length ctx t - 1);
      true
    end
    else go node (ctx.Ctx.read (node + 16))
  in
  go 0 (ctx.Ctx.read b)

let iter (ctx : Ctx.ctx) t f =
  for i = 0 to t.nbuckets - 1 do
    let node = ref (ctx.Ctx.read (t.buckets + (i * 8))) in
    while !node <> 0 do
      f (ctx.Ctx.read !node) (ctx.Ctx.read (!node + 8));
      node := ctx.Ctx.read (!node + 16)
    done
  done

let fold ctx t f acc =
  let acc = ref acc in
  iter ctx t (fun k v -> acc := f k v !acc);
  !acc
