lib/backends/raw.ml: Ctx Heap Pmem Specpmt_pmalloc Specpmt_pmem Specpmt_txn
