open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_svc

(* The service-level acceptance tests of the group-commit tentpole:
   fences/write falls with the batch size, admission sheds under
   pressure, and a kill in the middle of a batch loses nothing that was
   acknowledged while exposing nothing that was not. *)

let mk_svc ?(seed = 5) ?shadow cfg =
  let pm = Pmem.create ~seed Config.small in
  let heap = Heap.create pm in
  (pm, Service.create ?shadow heap cfg)

(* router hash: the directed regression for the precedence bug.  The
   old code computed [k * (2654435761 land 0xFFFFFFFF lsr 13)] — [lsr]
   binds tighter than [*] — i.e. [k * 324027].  324027 = 27 * 11 * 1091,
   so for any shard count dividing it (3, 9, 11, 27, 33, ...) every key
   landed on shard 0.  This test pins the fixed operator order: at
   shards = 3 a sequential key range must populate all three shards. *)

let test_route_prefix_bug () =
  let shards = 3 in
  let counts = Array.make shards 0 in
  for k = 0 to 999 do
    let s = Service.route ~shards k in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d gets keys (%d)" s c)
        true (c > 0))
    counts;
  (* the broken hash put all 1000 keys on shard 0 *)
  Alcotest.(check bool)
    (Printf.sprintf "shard 0 is not a sink (%d/1000)" counts.(0))
    true
    (counts.(0) < 600)

(* balance: for every shard count 2..16 the Fibonacci hash must spread
   both a sequential key range and a Zipf-drawn distinct key set with
   max/min population <= 1.3.  (Op-count balance under Zipf is a
   property of the skew, not the hash — the hash's job is to not
   correlate with the key distribution's support.) *)

let check_balance name keys shards =
  let counts = Array.make shards 0 in
  List.iter
    (fun k ->
      let s = Service.route ~shards k in
      counts.(s) <- counts.(s) + 1)
    keys;
  let mx = Array.fold_left max 0 counts
  and mn = Array.fold_left min max_int counts in
  Alcotest.(check bool)
    (Printf.sprintf "%s shards=%d max/min %d/%d <= 1.3" name shards mx mn)
    true
    (mn > 0 && float_of_int mx /. float_of_int mn <= 1.3)

let test_route_balance () =
  let sequential = List.init 4096 Fun.id in
  let zipf_distinct =
    let rng = Random.State.make [| 0xBA1; 7 |] in
    let draw = Loadgen.zipf_sampler ~n:4096 ~theta:0.9 rng in
    let seen = Hashtbl.create 1024 in
    for _ = 1 to 20_000 do
      Hashtbl.replace seen (draw ()) ()
    done;
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
  in
  Alcotest.(check bool) "zipf draw covers enough distinct keys" true
    (List.length zipf_distinct >= 512);
  for shards = 2 to 16 do
    check_balance "sequential" sequential shards;
    check_balance "zipf-distinct" zipf_distinct shards
  done

(* admission over-ack: a double ack (or a negative one) must raise, not
   silently unbound the inflight ceiling *)

let test_admission_overack () =
  let adm = Admission.create ~depth:4 in
  (match Admission.offer adm () with
  | Admission.Accepted -> ()
  | Admission.Rejected _ -> Alcotest.fail "first offer shed");
  (match Admission.offer adm () with
  | Admission.Accepted -> ()
  | Admission.Rejected _ -> Alcotest.fail "second offer shed");
  ignore (Admission.take_up_to adm 2);
  Alcotest.check_raises "over-ack raises"
    (Invalid_argument "Admission.ack: 3 acks with 2 inflight") (fun () ->
      Admission.ack adm 3);
  Alcotest.check_raises "negative ack raises"
    (Invalid_argument "Admission.ack: -1 acks with 2 inflight") (fun () ->
      Admission.ack adm (-1));
  (* the failed acks must not have consumed anything *)
  Alcotest.(check int) "inflight intact" 2 (Admission.inflight adm);
  Admission.ack adm 2;
  Alcotest.(check int) "exact ack drains" 0 (Admission.inflight adm)

(* router + admission *)

let test_router_and_admission () =
  let _, svc = mk_svc { Service.shards = 3; batch_max = 4; depth = 2; keys = 64 } in
  for k = 0 to 63 do
    let s = Service.shard_of_key svc k in
    Alcotest.(check bool) "shard in range" true (s >= 0 && s < 3);
    Alcotest.(check int) "routing is stable" s (Service.shard_of_key svc k)
  done;
  (* overrun one shard's depth-2 admission queue *)
  let on_shard0 =
    List.filter (fun k -> Service.shard_of_key svc k = 0)
      (List.init 64 Fun.id)
  in
  Alcotest.(check bool) "enough keys on shard 0" true
    (List.length on_shard0 >= 5);
  let verdicts =
    List.map
      (fun k -> Service.submit svc ~client:0 ~key:k (Service.Write k))
      on_shard0
  in
  let accepted, shed =
    List.partition (function Admission.Accepted -> true | _ -> false) verdicts
  in
  Alcotest.(check int) "depth bounds inflight" 2 (List.length accepted);
  Alcotest.(check int) "the rest are shed" (List.length on_shard0 - 2)
    (List.length shed);
  Alcotest.(check int) "sheds counted" (List.length shed)
    (Service.rejected svc);
  (* a drain frees the slots: the shed keys go through on retry *)
  let done1 = Service.drain svc in
  Alcotest.(check int) "accepted ops complete" 2 (List.length done1);
  List.iter
    (fun (v : Admission.verdict) ->
      match v with
      | Admission.Rejected { queued } ->
          Alcotest.failf "retry after drain still shed (queued %d)" queued
      | Admission.Accepted -> ())
    (List.filteri (fun i _ -> i < 2)
       (List.map
          (fun k -> Service.submit svc ~client:0 ~key:k (Service.Write k))
          (List.filteri (fun i _ -> i >= 2) on_shard0)))

(* fences/write falls monotonically with batch_max (toward 1/K) *)

let test_fences_per_write_monotone () =
  let fences_at batch_max =
    let _, svc =
      mk_svc ~seed:7
        { Service.shards = 2; batch_max; depth = 32; keys = 256 }
    in
    let r =
      Loadgen.run svc
        { Loadgen.clients = 16; ops = 400; read_frac = 0.0; skew = 0.0;
          seed = 11 }
    in
    Alcotest.(check int) "all ops completed" 400 r.Loadgen.total_ops;
    r.Loadgen.fences_per_write
  in
  let f1 = fences_at 1 and f4 = fences_at 4 and f8 = fences_at 8 in
  Alcotest.(check bool)
    (Printf.sprintf "batch 4 beats batch 1 (%.3f < %.3f)" f4 f1)
    true (f4 < f1);
  Alcotest.(check bool)
    (Printf.sprintf "batch 8 beats batch 4 (%.3f < %.3f)" f8 f4)
    true (f8 < f4);
  Alcotest.(check bool)
    (Printf.sprintf "batch 8 amortises below 1/2 (%.3f)" f8)
    true (f8 < 0.5)

(* mid-batch kill: acknowledged writes survive any crash, unacknowledged
   ones stay invisible (except a sealed prefix of the one batch whose
   fence was in flight).  A dry run sizes the drain's event window, then
   the same deterministic workload is killed at a spread of crash points
   under both drain-everything and drain-nothing persist choices. *)

(* The sweep runs at shards = 2 and — post hash fix — at shards = 3,
   the smallest count the broken router collapsed to a single shard. *)
let kill_cfg shards = { Service.shards; batch_max = 3; depth = 32; keys = 32 }

let kill_ops =
  (* 24 writes, keys repeat so later batches overwrite earlier ones *)
  List.init 24 (fun i -> (i * 5 mod 32, 1000 + i))

let run_kill ~cfg:kill_cfg ~fuse ~persist =
  let pm, svc = mk_svc ~seed:5 kill_cfg in
  let acked = Array.make kill_cfg.Service.keys 0 in
  let pending = Array.make kill_cfg.Service.keys [] in
  List.iter
    (fun (k, v) ->
      pending.(k) <- pending.(k) @ [ v ];
      match Service.submit svc ~client:0 ~key:k (Service.Write v) with
      | Admission.Accepted -> ()
      | Admission.Rejected _ -> Alcotest.fail "kill workload must fit depth")
    kill_ops;
  let on_ack (c : Service.completion) =
    match c.Service.c_op with
    | Service.Write v ->
        acked.(c.Service.c_key) <- v;
        pending.(c.Service.c_key) <-
          List.filter (fun v' -> v' <> v) pending.(c.Service.c_key)
    | Service.Read | Service.Rmw _ | Service.Scan _ -> ()
  in
  (match fuse with
  | Some f ->
      Pmem.set_fuse pm (Some f);
      (try ignore (Service.drain ~on_ack svc) with Pmem.Crash -> ())
  | None -> ignore (Service.drain ~on_ack svc));
  let sealing =
    Array.init kill_cfg.Service.shards (Service.sealing svc)
  in
  Pmem.crash_with pm ~persist:(fun _ -> persist);
  Service.recover svc;
  (* audit: every key shows its last acknowledged value, or — only on a
     shard whose seal was in flight — a submitted-but-unacked value
     (the durable prefix of the interrupted batch) *)
  for k = 0 to kill_cfg.Service.keys - 1 do
    let got = Service.peek svc k in
    let sealing_shard = sealing.(Service.shard_of_key svc k) in
    let ok =
      got = acked.(k) || (sealing_shard && List.mem got pending.(k))
    in
    if not ok then
      Alcotest.failf
        "fuse %s persist %b key %d: got %d, acked %d, pending %a (sealing %b)"
        (match fuse with Some f -> string_of_int f | None -> "-")
        persist k got acked.(k)
        Fmt.(Dump.list int)
        pending.(k) sealing_shard
  done;
  (* the recovered service keeps serving *)
  (match Service.submit svc ~client:9 ~key:0 (Service.Write 777_777) with
  | Admission.Accepted -> ()
  | Admission.Rejected _ -> Alcotest.fail "post-recovery submit shed");
  ignore (Service.drain svc);
  Alcotest.(check int) "post-recovery write lands" 777_777
    (Service.peek svc 0)

let test_mid_batch_kill shards () =
  let cfg = kill_cfg shards in
  (* dry run: count the drain's fuse-visible events *)
  let drain_events =
    let pm, svc = mk_svc ~seed:5 cfg in
    List.iter
      (fun (k, v) ->
        ignore (Service.submit svc ~client:0 ~key:k (Service.Write v)))
      kill_ops;
    let e0 = Pmem.events pm in
    ignore (Service.drain svc);
    Pmem.events pm - e0
  in
  Alcotest.(check bool) "drain does work" true (drain_events > 0);
  (* no-crash control: every write acknowledged and visible *)
  run_kill ~cfg ~fuse:None ~persist:true;
  let stride = max 1 (drain_events / 40) in
  let fuse = ref 1 in
  while !fuse <= drain_events do
    run_kill ~cfg ~fuse:(Some !fuse) ~persist:true;
    run_kill ~cfg ~fuse:(Some !fuse) ~persist:false;
    fuse := !fuse + stride
  done

(* odd shard counts get real load: a Zipf loadgen run at shards = 3
   must complete every op and give every shard a non-trivial share —
   with the broken hash shards 1 and 2 sat idle. *)

let test_odd_shard_coverage () =
  let _, svc =
    mk_svc ~seed:9 { Service.shards = 3; batch_max = 4; depth = 48; keys = 96 }
  in
  let r =
    Loadgen.run svc
      { Loadgen.clients = 24; ops = 600; read_frac = 0.3; skew = 0.9;
        seed = 13 }
  in
  Alcotest.(check int) "all ops completed" 600 r.Loadgen.total_ops;
  Alcotest.(check int) "three shard reports" 3 (List.length r.Loadgen.shards);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d serves ops (%d)" s.Loadgen.sh_id
           s.Loadgen.sh_ops)
        true
        (s.Loadgen.sh_ops >= 600 / 10);
      Alcotest.(check bool)
        (Printf.sprintf "shard %d seals batches" s.Loadgen.sh_id)
        true
        (s.Loadgen.sh_batches > 0))
    r.Loadgen.shards

(* ---------- SPSC handoff ring ---------- *)

(* the cursors are monotonically increasing ints masked into the slot
   array; run them many times around the ring across two domains and
   check that nothing is lost, duplicated or reordered *)
let test_spsc_wraparound () =
  let ring = Spsc.create ~dummy:(-1) ~capacity:6 in
  Alcotest.(check int) "capacity rounds up to a power of two" 8
    (Spsc.capacity ring);
  let n = (4 * Spsc.capacity ring) + 5 in
  let producer =
    Domain.spawn (fun () ->
        for v = 0 to n - 1 do
          while not (Spsc.try_push ring v) do
            Domain.cpu_relax ()
          done
        done)
  in
  let rec pop () =
    match Spsc.try_pop ring with
    | Some v -> v
    | None ->
        Domain.cpu_relax ();
        pop ()
  in
  for expect = 0 to n - 1 do
    let got = pop () in
    if got <> expect then
      Alcotest.failf "element %d arrived as %d" expect got
  done;
  Domain.join producer;
  Alcotest.(check int) "empty after drain" 0 (Spsc.length ring);
  (* [length] is exact within the owning domains, wraps included *)
  for v = 0 to 2 do
    Alcotest.(check bool) "push accepted" true (Spsc.try_push ring v)
  done;
  Alcotest.(check int) "length 3" 3 (Spsc.length ring);
  ignore (Spsc.try_pop ring);
  Alcotest.(check int) "length 2" 2 (Spsc.length ring)

(* ---------- allocation budget ---------- *)

(* the constant-cost tentpole in one number: steady-state committed
   writes on the serial service path must stay under a small minor-heap
   budget per op.  Measured baseline after the flat-buffer rework is
   ~167 words/op (completion records, latency observations and admission
   queueing legitimately allocate); the budget adds ~20% headroom but
   fails loudly if per-op closures, option boxing or hashtable churn
   creep back into the write path. *)
let test_alloc_budget_per_write () =
  let _, svc =
    mk_svc { Service.shards = 1; batch_max = 8; depth = 128; keys = 64 }
  in
  let round base =
    for i = 0 to 63 do
      match
        Service.submit svc ~client:0 ~key:(i mod 64)
          (Service.Write (base + i))
      with
      | Admission.Accepted -> ()
      | Admission.Rejected _ -> Alcotest.fail "unexpected shed"
    done;
    ignore (Service.drain svc)
  in
  (* warm-up: let the flat buffers (write set, span arrays, WPQ ring)
     reach steady-state capacity *)
  for r = 1 to 10 do
    round (r * 1000)
  done;
  let w0 = Gc.minor_words () in
  let rounds = 20 in
  for r = 1 to rounds do
    round (100_000 + (r * 1000))
  done;
  let per_op = (Gc.minor_words () -. w0) /. float_of_int (rounds * 64) in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f minor words per committed write <= 200" per_op)
    true (per_op <= 200.0)

(* ---------- descent-read budget (shadow mirror) ---------- *)

(* The read-side companion of the minor-words budget above: with the
   DRAM mirror on, a tree descent costs no device loads at all, so a
   Scan's loads are essentially its metered cell reads, and a len-1
   scan (the point-lookup shape) stays under a flat handful.  Asserted
   against the device counter AND the shadow counters, so a silent
   mirror regression (detached, stale, or bypassed — every fetch a
   miss) fails here and in CI before any perf number moves. *)
let scan_loads_probe ~shadow ~len ~rounds =
  let pm, svc =
    mk_svc ~shadow { Service.shards = 1; batch_max = 8; depth = 64; keys = 256 }
  in
  let chunk lo =
    for k = lo to lo + 63 do
      match Service.submit svc ~client:0 ~key:k (Service.Write (k * 3)) with
      | Admission.Accepted -> ()
      | Admission.Rejected _ -> Alcotest.fail "unexpected shed"
    done;
    ignore (Service.drain svc)
  in
  chunk 0;
  chunk 64;
  chunk 128;
  chunk 192;
  let l0 = (Pmem.stats pm).Stats.loads in
  for r = 0 to rounds - 1 do
    (match
       Service.submit svc ~client:0 ~key:(r * 37 mod 256) (Service.Scan len)
     with
    | Admission.Accepted -> ()
    | Admission.Rejected _ -> Alcotest.fail "unexpected shed");
    if r mod 32 = 31 then ignore (Service.drain svc)
  done;
  ignore (Service.drain svc);
  let loads = (Pmem.stats pm).Stats.loads - l0 in
  (float_of_int loads /. float_of_int rounds, svc)

let test_descent_read_budget () =
  let per_on, svc = scan_loads_probe ~shadow:true ~len:16 ~rounds:64 in
  let per_off, _ = scan_loads_probe ~shadow:false ~len:16 ~rounds:64 in
  Alcotest.(check bool)
    (Printf.sprintf "len-16 scan: %.1f device loads/op (mirror) <= 24" per_on)
    true (per_on <= 24.0);
  Alcotest.(check bool)
    (Printf.sprintf "mirror saves descent loads (%.1f < %.1f)" per_on per_off)
    true (per_on < per_off);
  match
    Specpmt_pstruct.Pbtree.shadow (Oindex.tree (Service.oindex svc) 0)
  with
  | None -> Alcotest.fail "shard 0 has no mirror"
  | Some sh ->
      let hits, misses, _ = Specpmt_pstruct.Shadow.totals sh in
      Alcotest.(check int) "no mirror misses" 0 misses;
      Alcotest.(check bool) "mirror served descents" true (hits > 0)

let test_point_lookup_budget () =
  let per_on, _ = scan_loads_probe ~shadow:true ~len:1 ~rounds:64 in
  Alcotest.(check bool)
    (Printf.sprintf "len-1 scan: %.1f device loads/op (mirror) <= 4" per_on)
    true (per_on <= 4.0)

(* ---------- shard-per-domain data plane ---------- *)

let mk_plane ?(shards = 4) ?(keys = 128) ~domains () =
  let pm = Pmem.create ~seed:21 Config.default in
  let heap = Heap.create pm in
  let cfg =
    {
      Dataplane.shards;
      domains;
      batch_max = 4;
      depth = 16;
      keys;
      log_region_bytes = 1 lsl 16;
    }
  in
  (cfg, Dataplane.create heap cfg)

let dp_stream ?(read_frac = 0.3) ?(ops = 800) cfg =
  Loadgen.op_stream
    { Loadgen.clients = 16; ops; read_frac; skew = 0.9; seed = 17 }
    ~keys:cfg.Dataplane.keys

(* the invariant half of a report must not depend on the domain count;
   4 shards on 3 domains is the deliberately lopsided placement *)

let invariant_fingerprint (r : Dataplane.report) =
  ( r.Dataplane.total_ops,
    r.Dataplane.reads,
    r.Dataplane.writes,
    r.Dataplane.reads_sum,
    r.Dataplane.table_crc,
    r.Dataplane.fences,
    r.Dataplane.batches,
    r.Dataplane.sealed_records,
    List.map
      (fun (s : Dataplane.shard_report) ->
        (s.Dataplane.d_shard, s.Dataplane.d_ops, s.Dataplane.d_batches,
         s.Dataplane.d_sealed))
      r.Dataplane.per_shard )

let test_dataplane_invariant_across_domains () =
  let run domains =
    let cfg, plane = mk_plane ~domains () in
    let r = Dataplane.run plane (dp_stream cfg) in
    Alcotest.(check bool) "clean run" false r.Dataplane.halted;
    invariant_fingerprint r
  in
  let fp1 = run 1 in
  Alcotest.(check bool) "1 vs 3 domains: invariant identical" true
    (fp1 = run 3);
  Alcotest.(check bool) "1 vs 4 domains: invariant identical" true
    (fp1 = run 4)

(* crash drill at shards = 3: halt mid-stream, discard every domain
   cache, recover through the parent — every acked write must still be
   visible, and any other visible value must come from a submitted
   write no older than the last acked one for that key *)

let test_dataplane_crash_audit () =
  let cfg, plane = mk_plane ~shards:3 ~keys:96 ~domains:3 () in
  let stream = dp_stream ~read_frac:0.2 ~ops:600 cfg in
  let keys = cfg.Dataplane.keys in
  let initial = Array.init keys (Dataplane.peek plane) in
  let last_acked = Array.make keys None in
  let last_acked_idx = Array.make keys (-1) in
  let on_ack ~idx ~value:_ =
    match stream.(idx) with
    | k, Service.Write v ->
        last_acked.(k) <- Some v;
        last_acked_idx.(k) <- idx
    | _, (Service.Read | Service.Rmw _ | Service.Scan _) -> ()
  in
  let r = Dataplane.run ~halt_after_batches:40 ~on_ack plane stream in
  Alcotest.(check bool) "run halted" true r.Dataplane.halted;
  Alcotest.(check bool) "some ops acked before the halt" true
    (r.Dataplane.total_ops > 0);
  Dataplane.crash plane;
  Dataplane.recover plane;
  for k = 0 to keys - 1 do
    let got = Dataplane.peek plane k in
    let ok =
      match last_acked.(k) with
      | Some v when got = v -> true
      | latest ->
          (* untouched, or a sealed-but-unacked later write *)
          (latest = None && got = initial.(k))
          || Array.exists
               (fun idx ->
                 idx > last_acked_idx.(k)
                 &&
                 match stream.(idx) with
                 | k', Service.Write v' -> k' = k && v' = got
                 | _ -> false)
               (Array.init (Array.length stream) Fun.id)
    in
    if not ok then
      Alcotest.failf "key %d: got %d, last acked %s" k got
        (match last_acked.(k) with
        | Some v -> string_of_int v
        | None -> "-")
  done;
  (* the recovered plane serves again *)
  let r2 = Dataplane.run plane (dp_stream ~ops:200 cfg) in
  Alcotest.(check bool) "post-recovery run clean" false r2.Dataplane.halted;
  Alcotest.(check int) "post-recovery ops served" 200 r2.Dataplane.total_ops

(* the scaling claim, on the deterministic modelled clock: spreading 4
   shards over 4 domains must at least halve the makespan of the
   write-heavy mix relative to 1 domain (measured wall clock is
   host-dependent and not asserted) *)

let test_dataplane_modelled_speedup () =
  let run domains =
    let cfg, plane = mk_plane ~domains () in
    let r = Dataplane.run plane (dp_stream ~read_frac:0.1 ~ops:1200 cfg) in
    r.Dataplane.sim_ns_max
  in
  let ns1 = run 1 and ns4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4-domain modelled makespan >= 2x better (%.2fx)"
       (ns1 /. ns4))
    true
    (ns1 >= 2.0 *. ns4)

let () =
  Alcotest.run "svc"
    [
      ( "router",
        [
          Alcotest.test_case "hash precedence bug: shards=3 not a sink" `Quick
            test_route_prefix_bug;
          Alcotest.test_case "balance <= 1.3 for shards 2..16" `Quick
            test_route_balance;
        ] );
      ( "service",
        [
          Alcotest.test_case "router + admission backpressure" `Quick
            test_router_and_admission;
          Alcotest.test_case "admission over-ack raises" `Quick
            test_admission_overack;
          Alcotest.test_case "fences/write falls with batch size" `Quick
            test_fences_per_write_monotone;
          Alcotest.test_case "odd shard count carries real load" `Quick
            test_odd_shard_coverage;
          Alcotest.test_case "mid-batch kill: acked durable, unacked invisible"
            `Slow (test_mid_batch_kill 2);
          Alcotest.test_case "mid-batch kill at shards=3" `Slow
            (test_mid_batch_kill 3);
        ] );
      ( "spsc",
        [
          Alcotest.test_case "wraparound past the capacity mask" `Quick
            test_spsc_wraparound;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "minor words per committed write" `Quick
            test_alloc_budget_per_write;
        ] );
      ( "reads",
        [
          Alcotest.test_case "device loads per scan under the mirror" `Quick
            test_descent_read_budget;
          Alcotest.test_case "device loads per point lookup" `Quick
            test_point_lookup_budget;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "invariant report identical across domains"
            `Quick test_dataplane_invariant_across_domains;
          Alcotest.test_case "crash drill: acked writes durable" `Quick
            test_dataplane_crash_audit;
          Alcotest.test_case "modelled makespan >= 2x at 4 domains" `Quick
            test_dataplane_modelled_speedup;
        ] );
    ]
