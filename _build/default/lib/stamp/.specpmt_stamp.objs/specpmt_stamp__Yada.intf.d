lib/stamp/yada.mli: Wtypes
