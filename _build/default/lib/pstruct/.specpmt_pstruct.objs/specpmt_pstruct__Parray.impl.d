lib/pstruct/parray.ml: Addr Ctx Fmt List Specpmt_pmem Specpmt_txn
