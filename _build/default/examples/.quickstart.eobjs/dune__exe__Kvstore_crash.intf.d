examples/kvstore_crash.mli:
