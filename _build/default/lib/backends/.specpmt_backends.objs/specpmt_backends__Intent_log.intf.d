lib/backends/intent_log.mli: Heap Specpmt_pmalloc
