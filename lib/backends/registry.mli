(** Construction of the software transaction schemes by name. *)

open Specpmt_pmalloc
open Specpmt_txn

type kind =
  | Raw  (** no crash consistency (Figure 1 baseline) *)
  | Pmdk  (** undo logging, the paper's software baseline *)
  | Kamino  (** Kamino-Tx upper bound *)
  | Spht  (** redo logging + background replayer *)
  | Spec_dp  (** software SpecPMT with forced data persistence *)
  | Spec  (** software SpecPMT *)
  | Hashlog  (** hash-table speculative log (Section 4 ablation) *)

val all : kind list
(** In presentation order of Figure 12 (plus the ablations). *)

val name : kind -> string
val of_name : string -> kind option

val spec_params : kind -> Spec_soft.params option
(** The scheme's default SpecPMT runtime parameters, or [None] for
    schemes that take none — the single source of truth for "is this a
    parameterisable SpecPMT variant?" used by the CLI, the bench driver
    and the service layer. *)

val create : ?spec_params:Spec_soft.params -> Heap.t -> kind -> Ctx.backend
(** Instantiate a scheme on a freshly formatted pool.  [spec_params]
    overrides the defaults of the SpecPMT schemes (reclamation policy,
    recovery mode, block size...); passing it for any other scheme raises
    [Invalid_argument]. *)
