(** Software SpecPMT — the paper's software-only speculative-logging
    transaction runtime (Sections 3 and 4).

    Inside a transaction every durable store is applied in place and
    speculatively logged ([splog]) with plain stores into the per-thread
    chained log ({!Specpmt_txn.Log_arena}); repeated stores to a cell
    freshen its single log entry in place (write-set indexing).  Commit
    persists the whole record with one flush run and a {e single} fence —
    no fence per update, and (unless [data_persist] is set) {e no data
    flushes at all}: after commit the record doubles as a redo log, so
    in-place data may drain to the media lazily.

    Recovery (Section 3.1) discards the torn record of an interrupted
    transaction via the checksum commit marker and replays the remaining
    records oldest-to-newest: stale records are overwritten by fresher
    ones, uncommitted in-place updates that leaked to the media are
    revoked, and committed updates that never drained are rebuilt.

    Background reclamation (Section 4.2) compacts the log when its
    footprint passes a threshold; its cost is charged to the background
    ledger, never the foreground critical path. *)

open Specpmt_pmem
open Specpmt_pmalloc
open Specpmt_txn

type params = {
  data_persist : bool;
      (** force data flushes + a second fence at commit — the paper's
          suboptimal SpecSPMT-DP used to isolate the gain of removing data
          persistence *)
  block_bytes : int;  (** log-block size (default 4096) *)
  reclaim_threshold : int;
      (** trigger background reclamation when the log footprint exceeds
          this many bytes *)
}

val default_params : params
val dp_params : params

type t

val create :
  ?head_slot:int -> ?tsc:Specpmt_txn.Tsc.t -> Heap.t -> params -> Ctx.backend * t
(** Fresh runtime on a formatted pool.  [head_slot] selects the root slot
    of this thread's log head; [tsc] shares a timestamp counter between
    the per-thread runtimes of a multi-threaded pool (the stand-in for
    rdtscp, Section 4.1). *)

val snapshot_region : t -> Addr.t -> int -> unit
(** Crash-consistent adoption of external data (Section 4.3.2): one
    committed transaction that logs the current value of every 8-byte cell
    of the range, without modifying it.  Until a datum has been logged at
    least once, speculative logging cannot revoke an uncommitted update to
    it. *)

val switch_out : t -> int
(** Leave speculative logging (Section 4.3.1): selectively flush every
    cell the live log covers, fence once, and durably invalidate the log
    ({!Specpmt_txn.Log_arena.reset}) — after this another
    crash-consistency mechanism (e.g. the PMDK backend) can run on the
    same pool, and no later replay of the speculative log can clobber
    that mechanism's committed data with the stale speculative values.
    Returns the number of cells persisted.  Must be called between
    transactions. *)

val reclaim_now : t -> Log_arena.compact_stats
(** Explicit reclamation trigger (the paper's API-triggered mode). *)

val reclaim_count : t -> int
(** Number of reclamation cycles run so far. *)

val reattach : t -> unit
(** Reattach the runtime to its log after an external replay (used by the
    multi-threaded recovery, which replays all threads' logs in global
    timestamp order first). *)

val recover_standalone :
  Pmem.t -> block_bytes:int -> (Addr.t, int) Hashtbl.t
(** Pure recovery routine: replay the valid log prefix on a crashed device
    and return the map of restored cells.  Exposed for recovery tests. *)
