(** Device and cost-model parameters (paper Table 1).

    All latencies are nanoseconds of simulated time.  The core runs at
    4 GHz, so one cycle is 0.25 ns.  The persistent-memory latencies follow
    Table 1 of the paper: 150 ns read, 500 ns write, a 512-byte (8-line)
    write-pending queue with 10 ns acceptance latency.  Sequential writes to
    persistent memory are cheaper than random ones (the paper's motivation
    for the sequential log, citing [78]); we model that with a discounted
    sequential-write latency.  Reads have the same asymmetry, and more of
    it: a dependent random read pays the full media latency, while a
    streaming scan (the recovery walk over the contiguous log chain) is
    limited by read bandwidth, with the per-line latency hidden by
    prefetching — on Optane DC the gap between random read latency and
    streaming read cost per line is roughly an order of magnitude.  We
    model that with a discounted sequential-read latency, applied when a
    miss lands on the line at or right after the previously read line. *)

type t = {
  mem_size : int;  (** size of the persistent media image, bytes *)
  cache_capacity_lines : int;
      (** volatile cache capacity in 64-byte lines; evictions past this
          write dirty lines back to the media *)
  l1_hit_ns : float;  (** load/store hit in the volatile hierarchy *)
  pm_read_ns : float;  (** persistent-media random read (cache miss) *)
  pm_seq_read_ns : float;
      (** persistent-media read when the miss lands on the line at or right
          after the previously read line (streaming scan: bandwidth-bound,
          latency hidden by prefetch) *)
  pm_write_ns : float;  (** persistent-media random line write *)
  pm_seq_write_ns : float;
      (** persistent-media line write when it lands on the line right after
          the previously persisted line (sequential stream) *)
  wpq_lines : int;  (** write-pending-queue capacity in lines *)
  wpq_accept_ns : float;  (** time for the WPQ to accept one line *)
  fence_ns : float;  (** fixed overhead of [sfence] beyond draining *)
  clwb_issue_ns : float;  (** core-side issue cost of a flush *)
  crash_word_persist_prob : float;
      (** at a crash, probability that any given dirty (un-flushed) 8-byte
          word has already drained to the media, modelling spontaneous cache
          evictions and in-flight stores *)
  eadr : bool;
      (** extended asynchronous DRAM refresh (paper Section 5.3.1): the
          persistence domain includes the CPU caches, so plain stores are
          durable on arrival, flushes are no-ops and a crash drains every
          dirty line deterministically.  The paper argues eADR adoption is
          limited by its hardware cost — this flag lets the benchmarks show
          what it would buy. *)
}

let default =
  {
    mem_size = 64 * 1024 * 1024;
    cache_capacity_lines = 32 * 1024 (* 2 MiB, Table 1's shared L2 *);
    l1_hit_ns = 0.5;
    pm_read_ns = 150.0;
    pm_seq_read_ns = 10.0 (* ~6.4 GB/s streaming, vs 150 ns dependent *);
    pm_write_ns = 500.0;
    pm_seq_write_ns = 100.0;
    wpq_lines = 8 (* 512 bytes *);
    wpq_accept_ns = 10.0;
    fence_ns = 5.0;
    clwb_issue_ns = 2.0;
    crash_word_persist_prob = 0.5;
    eadr = false;
  }

(** A smaller image for unit tests. *)
let small = { default with mem_size = 1024 * 1024; cache_capacity_lines = 256 }
