test/test_pmalloc.ml: Addr Alcotest Config Gen Heap Layout List Pmem QCheck QCheck_alcotest Specpmt_pmalloc Specpmt_pmem
