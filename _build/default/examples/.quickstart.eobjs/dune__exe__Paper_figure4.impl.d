examples/paper_figure4.ml: Array Ctx Heap Log_arena Pmem Pmem_config Printf Spec_soft Specpmt Specpmt_backends
