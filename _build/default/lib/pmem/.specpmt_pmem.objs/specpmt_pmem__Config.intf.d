lib/pmem/config.mli:
