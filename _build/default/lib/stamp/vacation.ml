(** vacation — travel reservation system (STAMP).

    An in-memory database of cars, rooms and flights (ordered maps keyed
    by item id, values packing [free; price]) and a customer table mapping
    each customer to a linked reservation list.  A transaction queries a
    few candidate items per table (ordered-map lookups), reserves the
    cheapest available one and appends it to the customer's list — the
    44–68 B write sets of the paper.  The low/high variants differ in
    queries per transaction and id-range breadth, like STAMP's -q/-u
    parameters. *)

open Specpmt_txn
open Specpmt_pstruct

type variant = { queries : int; span : int; rounds : int }

let sizes = function
  | Wtypes.Quick -> (64, 128)
  | Wtypes.Small -> (1024, 6 * 1024)
  | Wtypes.Full -> (8 * 1024, 48 * 1024)

let pack ~free ~price = (free lsl 20) lor price
let free_of v = v lsr 20
let price_of v = v land 0xFFFFF

let prepare ~variant scale heap (backend : Ctx.backend) =
  let relations, txs = sizes scale in
  let rng = Rng.create 0xACA710 in
  let tables, customers =
    backend.Ctx.run_tx (fun ctx ->
        let mk () =
          let t = Ptreap.create ctx in
          for id = 1 to relations do
            Ptreap.insert ctx t id
              (pack ~free:(1 + Rng.int rng 100) ~price:(50 + Rng.int rng 450))
          done;
          t
        in
        let cars = mk () and rooms = mk () and flights = mk () in
        let customers = Ptreap.create ctx in
        ([| cars; rooms; flights |], customers))
  in
  let actions =
    Array.init txs (fun i ->
        let kind = Rng.int rng 100 in
        let customer = 1 + Rng.int rng relations in
        let table = Rng.int rng 3 in
        let base_id = 1 + Rng.int rng relations in
        ignore i;
        (kind, customer, table, base_id))
  in
  let work () =
    Array.iter
      (fun (kind, customer, table, base_id) ->
        Wtypes.compute heap 350.0;
        backend.Ctx.run_tx (fun ctx ->
            if kind < 90 then
              (* make [rounds] reservations: probe [queries] candidate ids
                 each, pick the cheapest available *)
              for round = 0 to variant.rounds - 1 do
              let t = tables.((table + round) mod 3) in
              let best = ref None in
              for q = 0 to variant.queries - 1 do
                let id = 1 + ((base_id + (q * variant.span)) mod relations) in
                match Ptreap.find_ceiling ctx t id with
                | Some (k, v) when free_of v > 0 -> (
                    match !best with
                    | Some (_, bv) when price_of bv <= price_of v -> ()
                    | _ -> best := Some (k, v))
                | Some _ | None -> ()
              done;
              (match !best with
              | None -> ()
              | Some (id, v) ->
                  ignore
                    (Ptreap.update ctx t id
                       (pack ~free:(free_of v - 1) ~price:(price_of v)));
                  (* append to the customer's reservation list *)
                  let node = ctx.Ctx.alloc 16 in
                  ctx.Ctx.write node ((table * relations * 2) + id);
                  let head =
                    match Ptreap.find ctx customers customer with
                    | Some h -> h
                    | None -> 0
                  in
                  ctx.Ctx.write (node + 8) head;
                  if head = 0 then Ptreap.insert ctx customers customer node
                  else ignore (Ptreap.update ctx customers customer node))
              done
            else if kind < 95 then begin
              (* add capacity *)
              let t = tables.(table) in
              match Ptreap.find ctx t base_id with
              | Some v ->
                  ignore
                    (Ptreap.update ctx t base_id
                       (pack ~free:(free_of v + 1) ~price:(price_of v)))
              | None -> ()
            end
            else begin
              (* retire a customer: free the reservation list *)
              match Ptreap.find ctx customers customer with
              | None -> ()
              | Some head ->
                  let node = ref head in
                  while !node <> 0 do
                    let next = ctx.Ctx.read (!node + 8) in
                    ctx.Ctx.free !node;
                    node := next
                  done;
                  ignore (Ptreap.remove ctx customers customer)
            end))
      actions
  in
  let checksum () =
    let ctx = Ctx.raw_ctx heap in
    let acc = ref 0 in
    Array.iter
      (fun t -> Ptreap.iter ctx t (fun k v -> acc := Wtypes.mix !acc (k + v)))
      tables;
    Ptreap.iter ctx customers (fun c head ->
        acc := Wtypes.mix !acc c;
        let node = ref head in
        while !node <> 0 do
          acc := Wtypes.mix !acc (ctx.Ctx.read !node);
          node := ctx.Ctx.read (!node + 8)
        done);
    !acc
  in
  { Wtypes.work; checksum }

let low =
  {
    Wtypes.name = "vacation-low";
    description = "travel reservations, low contention (2 queries/tx)";
    prepare =
      (fun scale heap b ->
        prepare ~variant:{ queries = 2; span = 3; rounds = 1 } scale heap b);
  }

let high =
  {
    Wtypes.name = "vacation-high";
    description = "travel reservations, high contention (6 queries/tx)";
    prepare =
      (fun scale heap b ->
        prepare ~variant:{ queries = 6; span = 1; rounds = 2 } scale heap b);
  }
