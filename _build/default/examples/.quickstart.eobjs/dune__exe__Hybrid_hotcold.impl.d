examples/hybrid_hotcold.ml: Ctx Heap Hwconfig Pmem Pmem_config Printf Random Spec_hw Specpmt Stats
