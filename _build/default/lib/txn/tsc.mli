(** Logical timestamp counter — the stand-in for [rdtscp] (Section 4.1).

    Recovery needs a total order over transaction commits; multi-threaded
    pools share one counter ({!Specpmt_backends.Spec_mt}). *)

type t

val create : unit -> t

val next : t -> int
(** Strictly increasing, starting at 1. *)

val peek : t -> int
(** The value {!next} would return, without consuming it. *)

val restart_above : t -> int -> unit
(** After a crash: restart strictly above every timestamp that may live in
    persistent logs. *)
