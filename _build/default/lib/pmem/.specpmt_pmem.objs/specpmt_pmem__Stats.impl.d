lib/pmem/stats.ml: Addr Fmt
