(* Hardware SpecPMT's hybrid logging in action (paper Section 5).

     dune exec examples/hybrid_hotcold.exe

   A skewed workload updates one small "hot" region constantly and a large
   "cold" region sporadically.  The demo shows the TLB-driven cold-to-hot
   transitions, the epoch-based log reclamation bounding the speculative
   log, and the resulting persistence bill compared to hardware undo
   logging (EDE) on the same access pattern. *)

open Specpmt

let rounds = 3_000

let run_spec () =
  let pm = Pmem.create ~seed:3 Pmem_config.default in
  let heap = Heap.create pm in
  let backend, t =
    Spec_hw.create heap
      {
        Spec_hw.hw =
          { Hwconfig.default with Hwconfig.log_budget_bytes = 512 * 1024 };
        data_persist = false;
        hotness = Spec_hw.Tlb_counters;
      }
  in
  let hot = Heap.alloc heap 4096 in
  let cold = Heap.alloc heap (256 * 4096) in
  let rand = Random.State.make [| 5 |] in
  for r = 1 to rounds do
    backend.Ctx.run_tx (fun ctx ->
        (* hammer the hot page *)
        for i = 0 to 7 do
          ctx.Ctx.write (hot + (i * 8)) (r + i)
        done;
        (* occasionally touch a random cold page *)
        if r mod 7 = 0 then
          ctx.Ctx.write (cold + (Random.State.int rand (256 * 512) * 8)) r)
  done;
  let s = Pmem.stats pm in
  Printf.printf "SpecHPMT:\n";
  Printf.printf "  hot-page transitions (bulk copies): %d\n"
    (Spec_hw.transitions t);
  Printf.printf "  hot writes %d / cold writes %d\n" (Spec_hw.hot_writes t)
    (Spec_hw.cold_writes t);
  Printf.printf "  epochs started %d, reclamations %d\n"
    (Spec_hw.epochs_started t) (Spec_hw.reclaims t);
  Printf.printf "  speculative log: now %d KiB (peak %d KiB, budget 512 KiB)\n"
    (backend.Ctx.log_footprint () / 1024)
    (Spec_hw.peak_log_bytes t / 1024);
  Printf.printf "  %d fences, %d PM line writes, %.2f ms simulated\n"
    s.Stats.fences s.Stats.pm_write_lines (s.Stats.ns /. 1e6);
  s.Stats.ns

let run_ede () =
  let pm = Pmem.create ~seed:3 Pmem_config.default in
  let heap = Heap.create pm in
  let backend = create_scheme heap "EDE" in
  let hot = Heap.alloc heap 4096 in
  let cold = Heap.alloc heap (256 * 4096) in
  let rand = Random.State.make [| 5 |] in
  for r = 1 to rounds do
    backend.Ctx.run_tx (fun ctx ->
        for i = 0 to 7 do
          ctx.Ctx.write (hot + (i * 8)) (r + i)
        done;
        if r mod 7 = 0 then
          ctx.Ctx.write (cold + (Random.State.int rand (256 * 512) * 8)) r)
  done;
  let s = Pmem.stats pm in
  Printf.printf "EDE (hardware undo logging):\n";
  Printf.printf "  %d fences, %d PM line writes, %.2f ms simulated\n"
    s.Stats.fences s.Stats.pm_write_lines (s.Stats.ns /. 1e6);
  s.Stats.ns

let () =
  Printf.printf "skewed workload: 1 hot page + 1 MiB cold region, %d txs\n\n"
    rounds;
  let spec = run_spec () in
  print_newline ();
  let ede = run_ede () in
  Printf.printf "\nhybrid speculative logging is %.2fx faster here\n"
    (ede /. spec)
