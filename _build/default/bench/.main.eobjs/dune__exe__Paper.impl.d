bench/paper.ml:
