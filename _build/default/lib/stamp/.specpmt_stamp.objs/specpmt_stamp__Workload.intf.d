lib/stamp/workload.mli: Ctx Heap Specpmt_pmalloc Specpmt_txn
