lib/txn/tsc.mli:
