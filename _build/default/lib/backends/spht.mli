(** SPHT-style redo-logging transactions (paper Section 7.1.2): write
    intents are buffered (volatile snapshot semantics), persisted as one
    sequential redo record plus a commit marker at commit (two fences, no
    per-update fences, no data flushes), and applied to the persistent
    home locations by a background replayer that also prunes the log. *)

open Specpmt_pmalloc
open Specpmt_txn

val create : Heap.t -> Ctx.backend
