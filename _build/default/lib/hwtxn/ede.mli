(** EDE — Execution Dependence Extension (ISCA'21), the paper's hardware
    baseline: in-place updates with fence-free hardware undo logging
    (entries persist through the write-pending queue, ordered by the ISA's
    dependence tracking) and synchronous write-set persistence at
    commit. *)

open Specpmt_pmalloc
open Specpmt_txn

val create : Heap.t -> Ctx.backend
