(* Bounded admission per shard: a request is admitted iff the shard's
   inflight count (accepted but not yet acknowledged — queued plus
   executing) is below the depth limit.  Overload is shed at the door
   with a retry hint instead of growing the queue without bound. *)

type 'a t = {
  depth : int;
  q : 'a Queue.t;
  mutable inflight : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable acked : int;
  mutable max_inflight : int;
}

type verdict = Accepted | Rejected of { queued : int }

let create ~depth =
  if depth < 1 then invalid_arg "Admission.create: depth < 1";
  {
    depth;
    q = Queue.create ();
    inflight = 0;
    accepted = 0;
    rejected = 0;
    acked = 0;
    max_inflight = 0;
  }

let offer t x =
  if t.inflight >= t.depth then begin
    t.rejected <- t.rejected + 1;
    Rejected { queued = Queue.length t.q }
  end
  else begin
    Queue.add x t.q;
    t.inflight <- t.inflight + 1;
    t.accepted <- t.accepted + 1;
    if t.inflight > t.max_inflight then t.max_inflight <- t.inflight;
    Accepted
  end

let take_up_to t n =
  let rec go acc k =
    if k = 0 || Queue.is_empty t.q then List.rev acc
    else go (Queue.pop t.q :: acc) (k - 1)
  in
  go [] n

(* Acknowledged only once their batch's fence has retired.  The bounds
   check is a real runtime check, not an [assert]: compiled with
   [-noassert] a double-ack would silently drive [inflight] negative and
   the shard would admit without bound from then on. *)
let ack t n =
  if n < 0 || n > t.inflight then
    invalid_arg
      (Printf.sprintf "Admission.ack: %d acks with %d inflight" n t.inflight);
  t.inflight <- t.inflight - n;
  t.acked <- t.acked + n

let queued t = Queue.length t.q
let inflight t = t.inflight
let accepted t = t.accepted
let rejected t = t.rejected
let acked t = t.acked
let max_inflight t = t.max_inflight

(* post-crash: queued and executing requests died unacknowledged *)
let clear t =
  Queue.clear t.q;
  t.inflight <- 0
