(** Root-slot assignments for the hardware schemes (disjoint from the
    software backends' slots, see {!Specpmt_backends.Slots}). *)

let ede_region = 21
let ede_capacity = 22
let hoop_head = 23
let spec_head = 24
let spec_undo_region = 25
let spec_undo_capacity = 26
let hoop_map_head = 27

(* per-thread slot triples for multi-threaded hardware SpecPMT: log head,
   undo region pointer, undo capacity *)
let mt_head i =
  if i < 0 || i > 3 then invalid_arg "Hw_slots.mt_head";
  32 + (i * 3)

let mt_undo_region i = mt_head i + 1
let mt_undo_capacity i = mt_head i + 2
