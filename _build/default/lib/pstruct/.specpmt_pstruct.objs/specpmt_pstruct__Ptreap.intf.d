lib/pstruct/ptreap.mli: Addr Ctx Specpmt_pmem Specpmt_txn
